// lopass_cli — command-line driver for the low-power partitioner.
//
// Compiles a behavioral DSL file, installs a workload described on the
// command line, runs the full partitioning flow (Fig. 5) and prints the
// Table-1 style report, the chosen ASIC core, and optionally the IR,
// the SL32 disassembly, or a CSV row.
//
// Exit codes:
//   0  the flow completed and the result is trustworthy
//   1  a pipeline error: bad DSL input, a runtime fault in profiling or
//      simulation, or a degraded flow (a cluster/synthesis/re-simulation
//      failure was isolated — a valid fallback report is still printed,
//      but the requested partition was not produced)
//   2  a usage error (unknown option, malformed value, missing operand)
//
// Usage:
//   lopass_cli lint FILE.lp [options]
//     --entry NAME            entry function (default: main)
//     --unroll K              unroll eligible for-loops K times
//     --app NAME              lint a bundled application instead of a file
//     --list-codes            print the L-code registry and exit
//     --no-partition-checks   frontend + IR lints only (L1xx/L2xx)
//     -Wno-CODE               suppress a code or class (e.g. -Wno-L2xx)
//     -Werror[=CODE]          promote warnings (all, or one code/class)
//   Runs the whole-pipeline static analysis (docs/static_analysis.md):
//   IR verification, dataflow lints, partition/schedule/netlist
//   validators. Exit 0 clean (warnings allowed), 1 errors, 2 usage.
//
//   lopass_cli explore [options]
//     --journal PATH          checksummed JSONL journal to write
//     --resume JOURNAL        resume: replay committed records, run the rest
//     --apps A,B,...          applications to sweep (default: all six)
//     --scale N               workload scale (default 1)
//     --jobs N                worker threads draining the job queue
//                             (default 1; report stays byte-identical)
//     --deadline-ms N         per-job wall-clock deadline covering all
//                             attempts and backoff sleeps (0 = none)
//     --retries N             attempts per job incl. the first (default 3)
//     --backoff-ms N          retry backoff base; 0 disables sleeping
//     --chaos SEED            chaos mode: randomized one-shot fault schedules
//     --seed S                base PRNG seed folded into each job's seed
//     --shard I/M             process-level sharding: evaluate only the jobs
//                             whose queue index ≡ I (mod M), journaling them
//                             to <journal>.shard-I-of-M under a shard header
//   Runs the supervised design-space exploration (docs/robustness.md):
//   every completed evaluation is journaled and flushed, so a killed
//   sweep resumed with --resume reprints a byte-identical report. Exit
//   0 all jobs ok, 1 any degraded/failed job, 2 usage.
//
//   lopass_cli merge-journals [--out PATH] SHARD-JOURNAL...
//   Splices the shard journals of one sharded sweep back into the
//   canonical sequential-order journal (--out), byte-identical to a
//   single-process run when the set is complete, and prints the merged
//   report. Truncated shards merge with a loss note; malformed shard
//   sets (gaps, overlaps, mixed sweeps, duplicate jobs) are rejected
//   with FILE:line diagnostics. Exit 0 complete merge and all jobs ok,
//   1 incomplete merge or any degraded/failed job, 2 malformed set.
//
//   lopass_cli FILE.lp [options]
//     --entry NAME            entry function (default: main)
//     --arg VALUE             append an entry-function argument
//     --set NAME=VALUE        set a global scalar before each run
//     --fill NAME=rand:N:LO:HI[:SEED]   fill a global array randomly
//     --fill NAME=ramp:N[:STEP]         fill with 0,STEP,2*STEP,...
//     --opt                   run the IR optimization passes first
//     --unroll K              unroll eligible for-loops K times
//     --chaining              enable operator chaining in the scheduler
//     --peephole              run the SL32 peephole optimizer
//     --strategy lp|perf      low-power (default) or performance-driven
//     --max-cells N           hard hardware cap in cells
//     --max-clusters N        number of clusters to map (default 1)
//     --hotspots              print the software hotspot report
//     --csv                   emit a CSV row instead of tables
//     --dump-ir               print the IR after compilation
//     --dump-asm              print the SL32 program
//     --emit-verilog          print structural Verilog for the chosen cores
//
// Example:
//   lopass_cli examples/dsl/fir.lp --set n=1024 --fill coeff=ramp:16:2
//     --fill signal=rand:1024:-128:127

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/codes.h"
#include "analysis/manager.h"
#include "apps/app.h"
#include "asic/verilog.h"
#include "common/diag.h"
#include "core/hotspots.h"
#include "core/partitioner.h"
#include "core/report.h"
#include "dsl/lower.h"
#include "ir/print.h"
#include "isa/codegen.h"
#include "opt/passes.h"
#include "runner/explore.h"
#include "runner/merge.h"
#include "runner/shard.h"

namespace {

using namespace lopass;

struct ScalarSet {
  std::string name;
  std::int64_t value;
};

[[noreturn]] void Usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: lopass_cli FILE.lp [--entry NAME] [--arg V] [--set N=V]\n"
               "       [--fill N=rand:CNT:LO:HI[:SEED] | N=ramp:CNT[:STEP]]\n"
               "       [--opt] [--chaining] [--strategy lp|perf] [--max-cells N]\n"
               "       [--max-clusters N] [--csv] [--dump-ir] [--dump-asm]\n"
               "   or: lopass_cli lint FILE.lp [--entry NAME] [--unroll K]\n"
               "       [--app NAME] [--list-codes] [--no-partition-checks]\n"
               "       [-Wno-CODE] [-Werror[=CODE]]\n"
               "   or: lopass_cli explore [--journal PATH | --resume JOURNAL]\n"
               "       [--apps A,B,...] [--scale N] [--jobs N] [--deadline-ms N]\n"
               "       [--retries N] [--backoff-ms N] [--chaos SEED] [--seed S]\n"
               "       [--shard I/M]\n"
               "   or: lopass_cli merge-journals [--out PATH] SHARD-JOURNAL...\n"
               "exit codes: 0 ok, 1 pipeline error, 2 usage error\n");
  std::exit(2);
}

// Whole-string integer parse; a malformed value is a usage error.
std::int64_t ParseIntArg(const std::string& value, const char* what) {
  std::int64_t out = 0;
  const char* first = value.c_str();
  const char* last = first + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || ptr != last) {
    Usage((std::string(what) + " wants an integer, got '" + value + "'").c_str());
  }
  return out;
}

double ParseDoubleArg(const std::string& value, const char* what) {
  try {
    std::size_t used = 0;
    const double out = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return out;
  } catch (const std::exception&) {
    Usage((std::string(what) + " wants a number, got '" + value + "'").c_str());
  }
}

// FILE:line:col: severity: message [code] (line omitted when unknown,
// code when empty).
void PrintDiagnostic(const std::string& path, const Diagnostic& d) {
  const std::string tag = d.code.empty() ? "" : " [" + d.code + "]";
  if (d.loc.valid()) {
    std::fprintf(stderr, "%s:%d:%d: %s: %s%s\n", path.c_str(), d.loc.line, d.loc.col,
                 SeverityName(d.severity), d.message.c_str(), tag.c_str());
  } else {
    std::fprintf(stderr, "%s: %s: %s%s\n", path.c_str(), SeverityName(d.severity),
                 d.message.c_str(), tag.c_str());
  }
}

// `lopass_cli lint` — the whole-pipeline static analysis driver.
// argv is shifted so argv[0] is the verb itself.
int RunLint(int argc, char** argv) {
  std::string path;
  std::string app_name;
  analysis::AnalysisManager manager;
  analysis::LintOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--entry") {
      options.entry = next();
    } else if (a == "--unroll") {
      const std::int64_t k = ParseIntArg(next(), "--unroll");
      if (k < 1 || k > 1024) Usage("--unroll wants a factor in [1, 1024]");
      options.unroll = static_cast<int>(k);
    } else if (a == "--app") {
      app_name = next();
    } else if (a == "--no-partition-checks") {
      options.partition_checks = false;
    } else if (a == "--list-codes") {
      for (const analysis::CodeInfo& c : analysis::AllCodes()) {
        std::printf("%s  %-7s  %s\n", c.code,
                    c.default_severity == Severity::kWarning ? "warning" : "error",
                    c.summary);
      }
      return 0;
    } else if (a.rfind("-Wno-", 0) == 0) {
      const std::string code = a.substr(5);
      if (code.empty()) Usage("-Wno- needs a code (e.g. -Wno-L204, -Wno-L2xx)");
      manager.Disable(code);
    } else if (a == "-Werror") {
      manager.PromoteAllWarnings();
    } else if (a.rfind("-Werror=", 0) == 0) {
      const std::string code = a.substr(8);
      if (code.empty()) Usage("-Werror= needs a code");
      manager.Promote(code);
    } else if (!a.empty() && a[0] == '-') {
      Usage(("unknown lint option " + a).c_str());
    } else if (path.empty()) {
      path = a;
    } else {
      Usage(("unexpected operand " + a).c_str());
    }
  }
  if (path.empty() == app_name.empty()) {
    Usage("lint wants exactly one of FILE.lp or --app NAME");
  }

  std::string source;
  std::string display = path;
  if (!app_name.empty()) {
    try {
      const apps::Application app = apps::GetApplication(app_name);
      source = app.dsl_source;
      options.entry = app.options.entry;
      display = "app:" + app.name;
    } catch (const Error& e) {
      Usage(e.what());
    }
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  try {
    const analysis::LintReport report = analysis::LintProgram(source, manager, options);
    for (const Diagnostic& d : report.diagnostics) PrintDiagnostic(display, d);
    std::fprintf(stderr, "%s: %zu error(s), %zu warning(s)\n", display.c_str(),
                 report.errors, report.warnings);
    return report.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 1;
  }
}

// `lopass_cli explore` — the supervised design-space exploration
// runner. argv is shifted so argv[0] is the verb itself.
int RunExplore(int argc, char** argv) {
  runner::ExploreOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--journal") {
      options.journal_path = next();
    } else if (a == "--resume") {
      options.journal_path = next();
      options.resume = true;
    } else if (a == "--apps") {
      std::stringstream list(next());
      std::string name;
      while (std::getline(list, name, ',')) {
        if (!name.empty()) options.apps.push_back(name);
      }
    } else if (a == "--scale") {
      options.scale = static_cast<int>(ParseIntArg(next(), "--scale"));
      if (options.scale < 1) Usage("--scale wants a positive factor");
    } else if (a == "--jobs") {
      options.jobs = static_cast<int>(ParseIntArg(next(), "--jobs"));
      if (options.jobs < 1 || options.jobs > 256) {
        Usage("--jobs wants a worker count in [1, 256]");
      }
    } else if (a == "--deadline-ms") {
      options.deadline_ms = ParseIntArg(next(), "--deadline-ms");
    } else if (a == "--retries") {
      options.retry.max_attempts = static_cast<int>(ParseIntArg(next(), "--retries"));
      if (options.retry.max_attempts < 1) Usage("--retries wants at least 1 attempt");
    } else if (a == "--backoff-ms") {
      options.retry.base_ms = ParseIntArg(next(), "--backoff-ms");
      if (options.retry.base_ms < 0) Usage("--backoff-ms wants a non-negative value");
    } else if (a == "--chaos") {
      options.chaos = true;
      options.chaos_seed =
          static_cast<std::uint64_t>(ParseIntArg(next(), "--chaos"));
    } else if (a == "--seed") {
      options.base_seed = static_cast<std::uint64_t>(ParseIntArg(next(), "--seed"));
    } else if (a == "--shard") {
      const std::string spec = next();
      options.shard = runner::ParseShardSpec(spec);
      if (!options.shard.has_value()) {
        Usage(("--shard wants I/M with 0 <= I < M <= 1024, got '" + spec + "'").c_str());
      }
    } else {
      Usage(("unknown explore option " + a).c_str());
    }
  }

  try {
    const runner::ExploreReport report = runner::RunExplore(options);
    // Supervision notes (journal warnings, retries, breaker trips) go
    // to stderr; the stdout report must stay byte-identical across
    // clean, resumed, and chaos runs.
    for (const Diagnostic& d : report.notes) PrintDiagnostic("explore", d);
    std::printf("%s", report.Render().c_str());
    return report.degraded() + report.failed() > 0 ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 1;
  }
}

// `lopass_cli merge-journals` — splice shard journals back into the
// canonical sequential-order journal. argv is shifted so argv[0] is
// the verb itself. Exit contract mirrors lint: 0 clean, 1 incomplete
// merge or degraded/failed jobs, 2 malformed shard set (with FILE:line
// diagnostics).
int RunMergeJournals(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out") {
      if (i + 1 >= argc) Usage("missing value for --out");
      out_path = argv[++i];
    } else if (!a.empty() && a[0] == '-') {
      Usage(("unknown merge-journals option " + a).c_str());
    } else {
      shard_paths.push_back(a);
    }
  }
  if (shard_paths.empty()) Usage("merge-journals wants at least one shard journal");

  try {
    const runner::MergeResult merged = runner::MergeJournals(shard_paths);
    for (const runner::MergeFinding& f : merged.findings) {
      Diagnostic d;
      d.severity = f.fatal ? Severity::kError : Severity::kWarning;
      d.code = "runner.merge";
      d.loc = SourceLoc{static_cast<int>(f.line), f.line > 0 ? 1 : 0};
      d.message = f.message;
      PrintDiagnostic(f.file.empty() ? "merge-journals" : f.file, d);
    }
    if (merged.malformed()) {
      std::fprintf(stderr, "merge-journals: shard set rejected, nothing merged\n");
      return 2;
    }
    if (!out_path.empty()) runner::WriteMergedJournal(merged, out_path);
    std::fprintf(stderr, "merge-journals: %zu records from %d shards (%lld jobs)%s\n",
                 merged.records.size(), merged.header.shard.count,
                 static_cast<long long>(merged.header.total_jobs),
                 out_path.empty() ? "" : (" -> " + out_path).c_str());
    if (!merged.complete()) return 1;
    // A complete splice renders the exact report the sequential sweep
    // printed — same Render, same bytes.
    runner::ExploreReport report;
    report.jobs = merged.jobs;
    std::printf("%s", report.Render().c_str());
    return report.degraded() + report.failed() > 0 ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 1;
  }
}

constexpr const char* kVerbs[] = {"lint", "explore", "merge-journals"};

// Levenshtein distance, for the unknown-verb hint.
std::size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

// A bare word that names no existing file is a mistyped verb, not an
// input: report it as a usage error with a hint instead of falling
// through to the file pipeline's "cannot open" path.
[[noreturn]] void UnknownVerb(const std::string& word) {
  std::string hint;
  std::size_t best = 3;  // suggest only close matches
  for (const char* verb : kVerbs) {
    const std::size_t d = EditDistance(word, verb);
    if (d < best) {
      best = d;
      hint = verb;
    }
  }
  std::fprintf(stderr, "error: unknown verb '%s'", word.c_str());
  if (!hint.empty()) std::fprintf(stderr, " — did you mean '%s'?", hint.c_str());
  std::fprintf(stderr, "\nknown verbs:");
  for (const char* verb : kVerbs) std::fprintf(stderr, " %s", verb);
  std::fprintf(stderr, "; or pass a FILE.lp to run the partitioning pipeline\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  if (std::strcmp(argv[1], "lint") == 0) return RunLint(argc - 1, argv + 1);
  if (std::strcmp(argv[1], "explore") == 0) return RunExplore(argc - 1, argv + 1);
  if (std::strcmp(argv[1], "merge-journals") == 0) {
    return RunMergeJournals(argc - 1, argv + 1);
  }
  const std::string path = argv[1];
  // Distinguish a mistyped verb from a missing input file: a bare word
  // (no path separator, no extension) that doesn't exist on disk gets
  // the did-you-mean treatment and the usage exit code.
  if (!path.empty() && path[0] != '-' &&
      path.find('/') == std::string::npos && path.find('.') == std::string::npos &&
      !std::ifstream(path).good()) {
    UnknownVerb(path);
  }

  std::string entry = "main";
  std::vector<std::int64_t> args;
  std::vector<ScalarSet> sets;
  std::vector<core::FillSpec> fills;
  bool optimize = false, csv = false, dump_ir = false, dump_asm = false;
  bool hotspots = false, emit_verilog = false;
  int unroll = 1;
  core::PartitionOptions options;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--entry") {
      entry = next();
      options.entry = entry;
    } else if (a == "--arg") {
      args.push_back(ParseIntArg(next(), "--arg"));
    } else if (a == "--set") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos) Usage("--set needs NAME=VALUE");
      sets.push_back(
          {spec.substr(0, eq), ParseIntArg(spec.substr(eq + 1), "--set value")});
    } else if (a == "--fill") {
      Result<core::FillSpec> fill = core::ParseFillSpec(next());
      if (!fill.ok()) {
        for (const Diagnostic& d : fill.diagnostics()) PrintDiagnostic(path, d);
        Usage("invalid --fill spec");
      }
      fills.push_back(std::move(fill.value()));
    } else if (a == "--opt") {
      optimize = true;
    } else if (a == "--unroll") {
      unroll = static_cast<int>(ParseIntArg(next(), "--unroll"));
      if (unroll < 1 || unroll > 1024) Usage("--unroll wants a factor in [1, 1024]");
    } else if (a == "--chaining") {
      options.scheduler.enable_chaining = true;
    } else if (a == "--peephole") {
      options.peephole = true;
    } else if (a == "--strategy") {
      const std::string s = next();
      if (s == "lp") options.strategy = core::Strategy::kLowPower;
      else if (s == "perf") options.strategy = core::Strategy::kPerformance;
      else Usage("--strategy must be lp or perf");
    } else if (a == "--max-cells") {
      options.max_cells = ParseDoubleArg(next(), "--max-cells");
    } else if (a == "--max-clusters") {
      options.max_hw_clusters = static_cast<int>(ParseIntArg(next(), "--max-clusters"));
      if (options.max_hw_clusters < 1) Usage("--max-clusters wants a positive count");
    } else if (a == "--csv") {
      csv = true;
    } else if (a == "--hotspots") {
      hotspots = true;
    } else if (a == "--emit-verilog") {
      emit_verilog = true;
      options.include_interconnect = true;  // builds the datapath
    } else if (a == "--dump-ir") {
      dump_ir = true;
    } else if (a == "--dump-asm") {
      dump_asm = true;
    } else {
      Usage(("unknown option " + a).c_str());
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  try {
    Result<dsl::LoweredProgram> compiled = dsl::CompileToResult(buf.str(), unroll);
    for (const Diagnostic& d : compiled.diagnostics()) PrintDiagnostic(path, d);
    if (!compiled.ok()) return 1;
    dsl::LoweredProgram& program = compiled.value();

    if (optimize) {
      const opt::PassStats stats = opt::RunStandardPasses(program.module);
      if (!csv) std::printf("optimizer: %s\n", stats.ToString().c_str());
    }
    if (dump_ir) std::printf("%s\n", ir::ToString(program.module).c_str());
    if (dump_asm) {
      std::printf("%s\n", isa::ToString(isa::Generate(program.module)).c_str());
    }

    core::Workload workload;
    workload.entry = entry;
    workload.args = args;
    workload.setup = [&sets, &fills](core::DataTarget& t) {
      for (const ScalarSet& s : sets) t.SetScalar(s.name, s.value);
      for (const core::FillSpec& f : fills) t.FillArray(f.name, f.values);
    };

    core::Partitioner partitioner(program.module, program.regions, options);
    const core::PartitionResult result = partitioner.Run(workload);
    const core::AppRow row = result.ToRow(path);

    // Isolated per-cluster failures: the report below is still valid
    // (worst case the all-software baseline), but the flow is degraded
    // and the exit code must say so.
    for (const Diagnostic& d : result.diagnostics) PrintDiagnostic(path, d);
    const int exit_code = result.degraded() ? 1 : 0;

    if (csv) {
      std::printf("%s", core::ToCsv({row}).c_str());
      return exit_code;
    }

    if (hotspots) {
      std::printf("%s\n",
                  core::RenderHotspots(
                      core::ComputeHotspots(result.chain, result.initial_run))
                      .c_str());
    }
    std::printf("evaluated %zu cluster/resource-set pairings\n",
                result.evaluations.size());
    if (emit_verilog) {
      for (const core::PartitionDecision& d : result.selected) {
        // Rebuild the datapath for emission (mirrors the partitioner's
        // include_interconnect path).
        const core::Cluster& c =
            result.chain.clusters[static_cast<std::size_t>(d.cluster_id)];
        const auto rsets = options.resource_sets;
        const sched::ResourceSet* rs = nullptr;
        for (const sched::ResourceSet& set : rsets) {
          if (set.name == d.core.resource_set) rs = &set;
        }
        if (rs == nullptr) continue;
        std::vector<sched::BlockDfg> dfgs;
        std::vector<sched::BlockSchedule> schedules;
        std::vector<asic::ScheduledBlock> sblocks;
        for (const auto& [fn, b] : c.blocks) {
          dfgs.push_back(sched::BuildBlockDfg(program.module.function(fn).block(b)));
          schedules.push_back(sched::ListSchedule(dfgs.back(), *rs,
                                                  power::TechLibrary::Cmos6(),
                                                  options.scheduler));
        }
        for (std::size_t i = 0; i < c.blocks.size(); ++i) {
          sblocks.push_back(asic::ScheduledBlock{&dfgs[i], &schedules[i], 0});
        }
        const auto util = asic::ComputeUtilization(sblocks, *rs, power::TechLibrary::Cmos6());
        const auto dp = asic::BuildDatapath(sblocks, util, power::TechLibrary::Cmos6());
        std::printf("%s\n", asic::EmitVerilog(d.core, dp).c_str());
      }
    }
    for (const core::PartitionDecision& d : result.selected) {
      std::printf("mapped: %-14s %-10s %.0f cells  U_R=%.3f  clock %.1f ns\n",
                  d.cluster_label.c_str(), d.core.resource_set.c_str(), d.core.cells,
                  d.core.utilization, d.core.clock_period.nanoseconds());
    }
    if (!result.partitioned()) std::printf("no profitable partition found\n");
    std::printf("%s", core::RenderTable1({row}).ToString().c_str());
    std::printf("energy saving %s%%   execution-time change %s%%\n",
                FormatPercent(row.saving_percent()).c_str(),
                FormatPercent(row.time_change_percent()).c_str());
    return exit_code;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 1;
  }
  return 0;
}
