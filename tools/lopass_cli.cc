// lopass_cli — command-line driver for the low-power partitioner.
//
// Compiles a behavioral DSL file, installs a workload described on the
// command line, runs the full partitioning flow (Fig. 5) and prints the
// Table-1 style report, the chosen ASIC core, and optionally the IR,
// the SL32 disassembly, or a CSV row.
//
// Usage:
//   lopass_cli FILE.lp [options]
//     --entry NAME            entry function (default: main)
//     --arg VALUE             append an entry-function argument
//     --set NAME=VALUE        set a global scalar before each run
//     --fill NAME=rand:N:LO:HI[:SEED]   fill a global array randomly
//     --fill NAME=ramp:N[:STEP]         fill with 0,STEP,2*STEP,...
//     --opt                   run the IR optimization passes first
//     --unroll K              unroll eligible for-loops K times
//     --chaining              enable operator chaining in the scheduler
//     --peephole              run the SL32 peephole optimizer
//     --strategy lp|perf      low-power (default) or performance-driven
//     --max-cells N           hard hardware cap in cells
//     --max-clusters N        number of clusters to map (default 1)
//     --hotspots              print the software hotspot report
//     --csv                   emit a CSV row instead of tables
//     --dump-ir               print the IR after compilation
//     --dump-asm              print the SL32 program
//     --emit-verilog          print structural Verilog for the chosen cores
//
// Example:
//   lopass_cli examples/dsl/fir.lp --set n=1024 --fill coeff=ramp:16:2
//     --fill signal=rand:1024:-128:127

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/prng.h"
#include "core/partitioner.h"
#include "asic/verilog.h"
#include "core/hotspots.h"
#include "core/report.h"
#include "dsl/lower.h"
#include "ir/print.h"
#include "isa/codegen.h"
#include "opt/passes.h"

namespace {

using namespace lopass;

struct ScalarSet {
  std::string name;
  std::int64_t value;
};

struct ArrayFill {
  std::string name;
  std::vector<std::int64_t> values;
};

[[noreturn]] void Usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: lopass_cli FILE.lp [--entry NAME] [--arg V] [--set N=V]\n"
               "       [--fill N=rand:CNT:LO:HI[:SEED] | N=ramp:CNT[:STEP]]\n"
               "       [--opt] [--chaining] [--strategy lp|perf] [--max-cells N]\n"
               "       [--max-clusters N] [--csv] [--dump-ir] [--dump-asm]\n");
  std::exit(2);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) out.push_back(item);
  return out;
}

ArrayFill ParseFill(const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) Usage("--fill needs NAME=KIND:...");
  ArrayFill f;
  f.name = spec.substr(0, eq);
  const auto parts = Split(spec.substr(eq + 1), ':');
  if (parts.empty()) Usage("--fill needs a kind");
  if (parts[0] == "rand") {
    if (parts.size() < 4) Usage("--fill NAME=rand:COUNT:LO:HI[:SEED]");
    const long count = std::stol(parts[1]);
    const long lo = std::stol(parts[2]);
    const long hi = std::stol(parts[3]);
    const std::uint64_t seed = parts.size() > 4 ? std::stoull(parts[4]) : 0x10Fa55;
    Prng rng(seed);
    for (long i = 0; i < count; ++i) f.values.push_back(rng.next_in(lo, hi));
  } else if (parts[0] == "ramp") {
    if (parts.size() < 2) Usage("--fill NAME=ramp:COUNT[:STEP]");
    const long count = std::stol(parts[1]);
    const long step = parts.size() > 2 ? std::stol(parts[2]) : 1;
    for (long i = 0; i < count; ++i) f.values.push_back(i * step);
  } else {
    Usage("unknown fill kind (rand|ramp)");
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string path = argv[1];

  std::string entry = "main";
  std::vector<std::int64_t> args;
  std::vector<ScalarSet> sets;
  std::vector<ArrayFill> fills;
  bool optimize = false, csv = false, dump_ir = false, dump_asm = false;
  bool hotspots = false, emit_verilog = false;
  int unroll = 1;
  core::PartitionOptions options;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--entry") {
      entry = next();
      options.entry = entry;
    } else if (a == "--arg") {
      args.push_back(std::stoll(next()));
    } else if (a == "--set") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos) Usage("--set needs NAME=VALUE");
      sets.push_back({spec.substr(0, eq), std::stoll(spec.substr(eq + 1))});
    } else if (a == "--fill") {
      fills.push_back(ParseFill(next()));
    } else if (a == "--opt") {
      optimize = true;
    } else if (a == "--unroll") {
      unroll = std::stoi(next());
    } else if (a == "--chaining") {
      options.scheduler.enable_chaining = true;
    } else if (a == "--peephole") {
      options.peephole = true;
    } else if (a == "--strategy") {
      const std::string s = next();
      if (s == "lp") options.strategy = core::Strategy::kLowPower;
      else if (s == "perf") options.strategy = core::Strategy::kPerformance;
      else Usage("--strategy must be lp or perf");
    } else if (a == "--max-cells") {
      options.max_cells = std::stod(next());
    } else if (a == "--max-clusters") {
      options.max_hw_clusters = std::stoi(next());
    } else if (a == "--csv") {
      csv = true;
    } else if (a == "--hotspots") {
      hotspots = true;
    } else if (a == "--emit-verilog") {
      emit_verilog = true;
      options.include_interconnect = true;  // builds the datapath
    } else if (a == "--dump-ir") {
      dump_ir = true;
    } else if (a == "--dump-asm") {
      dump_asm = true;
    } else {
      Usage(("unknown option " + a).c_str());
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  try {
    dsl::LoweredProgram program =
        unroll > 1 ? dsl::CompileWithUnroll(buf.str(), unroll) : dsl::Compile(buf.str());
    if (optimize) {
      const opt::PassStats stats = opt::RunStandardPasses(program.module);
      if (!csv) std::printf("optimizer: %s\n", stats.ToString().c_str());
    }
    if (dump_ir) std::printf("%s\n", ir::ToString(program.module).c_str());
    if (dump_asm) {
      std::printf("%s\n", isa::ToString(isa::Generate(program.module)).c_str());
    }

    core::Workload workload;
    workload.entry = entry;
    workload.args = args;
    workload.setup = [&sets, &fills](core::DataTarget& t) {
      for (const ScalarSet& s : sets) t.SetScalar(s.name, s.value);
      for (const ArrayFill& f : fills) t.FillArray(f.name, f.values);
    };

    core::Partitioner partitioner(program.module, program.regions, options);
    const core::PartitionResult result = partitioner.Run(workload);
    const core::AppRow row = result.ToRow(path);

    if (csv) {
      std::printf("%s", core::ToCsv({row}).c_str());
      return 0;
    }

    if (hotspots) {
      std::printf("%s\n",
                  core::RenderHotspots(
                      core::ComputeHotspots(result.chain, result.initial_run))
                      .c_str());
    }
    std::printf("evaluated %zu cluster/resource-set pairings\n",
                result.evaluations.size());
    if (emit_verilog) {
      for (const core::PartitionDecision& d : result.selected) {
        // Rebuild the datapath for emission (mirrors the partitioner's
        // include_interconnect path).
        const core::Cluster& c =
            result.chain.clusters[static_cast<std::size_t>(d.cluster_id)];
        const auto sets = options.resource_sets;
        const sched::ResourceSet* rs = nullptr;
        for (const sched::ResourceSet& set : sets) {
          if (set.name == d.core.resource_set) rs = &set;
        }
        if (rs == nullptr) continue;
        std::vector<sched::BlockDfg> dfgs;
        std::vector<sched::BlockSchedule> schedules;
        std::vector<asic::ScheduledBlock> sblocks;
        for (const auto& [fn, b] : c.blocks) {
          dfgs.push_back(sched::BuildBlockDfg(program.module.function(fn).block(b)));
          schedules.push_back(sched::ListSchedule(dfgs.back(), *rs,
                                                  power::TechLibrary::Cmos6(),
                                                  options.scheduler));
        }
        for (std::size_t i = 0; i < c.blocks.size(); ++i) {
          sblocks.push_back(asic::ScheduledBlock{&dfgs[i], &schedules[i], 0});
        }
        const auto util = asic::ComputeUtilization(sblocks, *rs, power::TechLibrary::Cmos6());
        const auto dp = asic::BuildDatapath(sblocks, util, power::TechLibrary::Cmos6());
        std::printf("%s\n", asic::EmitVerilog(d.core, dp).c_str());
      }
    }
    for (const core::PartitionDecision& d : result.selected) {
      std::printf("mapped: %-14s %-10s %.0f cells  U_R=%.3f  clock %.1f ns\n",
                  d.cluster_label.c_str(), d.core.resource_set.c_str(), d.core.cells,
                  d.core.utilization, d.core.clock_period.nanoseconds());
    }
    if (!result.partitioned()) std::printf("no profitable partition found\n");
    std::printf("%s", core::RenderTable1({row}).ToString().c_str());
    std::printf("energy saving %s%%   execution-time change %s%%\n",
                FormatPercent(row.saving_percent()).c_str(),
                FormatPercent(row.time_change_percent()).c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
