#pragma once

// Textual dump of IR modules/functions for debugging and golden tests.

#include <string>

#include "ir/module.h"
#include "ir/region.h"

namespace lopass::ir {

std::string ToString(const Module& m);
std::string ToString(const Module& m, const Function& f);
std::string ToString(const Module& m, const Instr& in);
std::string ToString(const RegionTree& tree, FunctionId fn);

}  // namespace lopass::ir
