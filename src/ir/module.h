#pragma once

// Core IR data structures: symbols, instructions, basic blocks,
// functions, module. See ir/opcode.h for the operation set and
// ir/region.h for the structural region tree the clusterer consumes.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "ir/opcode.h"

namespace lopass::ir {

using SymbolId = std::int32_t;
using BlockId = std::int32_t;
using FunctionId = std::int32_t;
using VregId = std::int32_t;

constexpr SymbolId kNoSymbol = -1;
constexpr BlockId kNoBlock = -1;
constexpr VregId kNoVreg = -1;

// Kind of a named program entity.
enum class SymbolKind : std::uint8_t { kScalar, kArray, kFunction };

// One entry of the module-level symbol table. Scalars and arrays are
// statically allocated (embedded style, no recursion), so every symbol
// has a fixed word address assigned by Module::AssignAddresses().
struct Symbol {
  SymbolId id = kNoSymbol;
  std::string name;
  SymbolKind kind = SymbolKind::kScalar;
  // Array length in 32-bit words (1 for scalars, 0 for functions).
  std::uint32_t length = 1;
  // Owning function, or -1 for globals / functions themselves.
  FunctionId owner = -1;
  // Byte address in the flat data address space (set by AssignAddresses).
  std::uint32_t address = 0;
  // Initial value for scalars (DSL `var g = <const>;`). Arrays start
  // zeroed; workloads populate them through the interpreter/ISS APIs.
  std::int64_t init = 0;
  // 1-based DSL source line of the declaration (0 = unknown, e.g.
  // programmatically built modules).
  int decl_line = 0;
};

// An operand is either a virtual register or an immediate constant.
struct Operand {
  enum class Kind : std::uint8_t { kVreg, kImm } kind = Kind::kVreg;
  VregId vreg = kNoVreg;
  std::int64_t imm = 0;

  static Operand Vreg(VregId v) { return Operand{Kind::kVreg, v, 0}; }
  static Operand Imm(std::int64_t value) { return Operand{Kind::kImm, kNoVreg, value}; }
  bool is_vreg() const { return kind == Kind::kVreg; }
  bool is_imm() const { return kind == Kind::kImm; }
};

// One operation node of the graph G = {V, E}.
struct Instr {
  Opcode op = Opcode::kMov;
  VregId result = kNoVreg;       // destination vreg, or kNoVreg
  std::vector<Operand> args;     // value operands
  SymbolId sym = kNoSymbol;      // variable/array/function symbol, if any
  BlockId target0 = kNoBlock;    // kBr/kCondBr: taken target
  BlockId target1 = kNoBlock;    // kCondBr: fall-through target
  // 1-based DSL source line the operation was lowered from (0 =
  // unknown). Diagnostics from IR-level analyses anchor on it.
  int line = 0;
};

// A maximal straight-line sequence of operations ending in a terminator.
struct BasicBlock {
  BlockId id = kNoBlock;
  std::vector<Instr> instrs;

  const Instr& terminator() const {
    LOPASS_CHECK(!instrs.empty() && IsTerminator(instrs.back().op),
                 "block has no terminator");
    return instrs.back();
  }
  // Successor block ids in the CFG.
  std::vector<BlockId> successors() const;
};

struct Function {
  FunctionId id = -1;
  std::string name;
  SymbolId symbol = kNoSymbol;        // entry in the module symbol table
  std::vector<SymbolId> params;       // scalar parameters
  std::vector<BasicBlock> blocks;
  BlockId entry = kNoBlock;
  VregId next_vreg = 0;

  BasicBlock& block(BlockId b) {
    LOPASS_CHECK(b >= 0 && static_cast<std::size_t>(b) < blocks.size(), "bad block id");
    return blocks[static_cast<std::size_t>(b)];
  }
  const BasicBlock& block(BlockId b) const {
    LOPASS_CHECK(b >= 0 && static_cast<std::size_t>(b) < blocks.size(), "bad block id");
    return blocks[static_cast<std::size_t>(b)];
  }
  // Predecessor lists for all blocks (index = block id).
  std::vector<std::vector<BlockId>> ComputePredecessors() const;
};

class Module {
 public:
  // --- symbol table -----------------------------------------------------
  SymbolId AddScalar(const std::string& name, FunctionId owner = -1);
  SymbolId AddArray(const std::string& name, std::uint32_t length, FunctionId owner = -1);
  SymbolId AddFunctionSymbol(const std::string& name);

  const Symbol& symbol(SymbolId id) const;
  Symbol& symbol_mutable(SymbolId id);
  std::optional<SymbolId> FindSymbol(const std::string& name, FunctionId owner) const;
  std::size_t num_symbols() const { return symbols_.size(); }
  const std::vector<Symbol>& symbols() const { return symbols_; }

  // Assigns every scalar/array a word-aligned static address. Called
  // once after construction; idempotent. Returns total data size in
  // bytes.
  std::uint32_t AssignAddresses();
  std::uint32_t data_size_bytes() const { return data_size_; }

  // --- functions ---------------------------------------------------------
  FunctionId AddFunction(const std::string& name);
  Function& function(FunctionId id);
  const Function& function(FunctionId id) const;
  std::optional<FunctionId> FindFunction(const std::string& name) const;
  std::size_t num_functions() const { return functions_.size(); }
  const std::vector<Function>& functions() const { return functions_; }
  std::vector<Function>& functions_mutable() { return functions_; }

  // Total number of operation nodes in the module (|V| of G).
  std::size_t num_ops() const;

 private:
  std::vector<Symbol> symbols_;
  std::vector<Function> functions_;
  std::uint32_t data_size_ = 0;
  bool addresses_assigned_ = false;
};

// Convenience builder for constructing functions programmatically (the
// DSL frontend uses it too). Keeps track of the current block.
class FunctionBuilder {
 public:
  FunctionBuilder(Module& module, FunctionId fn);

  BlockId NewBlock();
  void SetBlock(BlockId b) { cur_ = b; }
  BlockId current_block() const { return cur_; }

  // Source line stamped onto subsequently emitted instructions (0 =
  // unknown). The DSL lowerer keeps this in sync with the AST.
  void SetLine(int line) { line_ = line; }
  int current_line() const { return line_; }

  VregId NewVreg();

  // Generic append; returns the result vreg (or kNoVreg).
  VregId Emit(Opcode op, std::vector<Operand> args, SymbolId sym = kNoSymbol);

  VregId EmitConst(std::int64_t value);
  VregId EmitReadVar(SymbolId var);
  void EmitWriteVar(SymbolId var, Operand value);
  VregId EmitLoadElem(SymbolId array, Operand index);
  void EmitStoreElem(SymbolId array, Operand index, Operand value);
  VregId EmitBinary(Opcode op, Operand a, Operand b);
  VregId EmitUnary(Opcode op, Operand a);
  VregId EmitCall(SymbolId fn, std::vector<Operand> args);
  void EmitRet();
  void EmitRet(Operand value);
  void EmitBr(BlockId target);
  void EmitCondBr(Operand cond, BlockId if_true, BlockId if_false);

  Module& module() { return module_; }
  Function& function() { return fn_; }

 private:
  Module& module_;
  Function& fn_;
  BlockId cur_ = kNoBlock;
  int line_ = 0;
};

}  // namespace lopass::ir
