#include "ir/infer_regions.h"

#include <algorithm>
#include <unordered_set>

#include "common/error.h"

namespace lopass::ir {

namespace {

// Reverse postorder over the CFG from the entry.
std::vector<BlockId> ReversePostorder(const Function& fn) {
  std::vector<BlockId> order;
  std::vector<int> state(fn.blocks.size(), 0);  // 0=unseen 1=open 2=done
  std::vector<std::pair<BlockId, std::size_t>> stack;
  stack.emplace_back(fn.entry, 0);
  state[static_cast<std::size_t>(fn.entry)] = 1;
  while (!stack.empty()) {
    auto& [b, idx] = stack.back();
    const auto succs = fn.block(b).successors();
    if (idx < succs.size()) {
      const BlockId s = succs[idx++];
      if (state[static_cast<std::size_t>(s)] == 0) {
        state[static_cast<std::size_t>(s)] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[static_cast<std::size_t>(b)] = 2;
      order.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

std::vector<BlockId> ComputeDominators(const Function& fn) {
  // Cooper/Harvey/Kennedy iterative algorithm.
  const auto rpo = ReversePostorder(fn);
  std::vector<int> rpo_index(fn.blocks.size(), -1);
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    rpo_index[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
  }
  const auto preds = fn.ComputePredecessors();

  std::vector<BlockId> idom(fn.blocks.size(), kNoBlock);
  idom[static_cast<std::size_t>(fn.entry)] = fn.entry;

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index[static_cast<std::size_t>(a)] > rpo_index[static_cast<std::size_t>(b)]) {
        a = idom[static_cast<std::size_t>(a)];
      }
      while (rpo_index[static_cast<std::size_t>(b)] > rpo_index[static_cast<std::size_t>(a)]) {
        b = idom[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == fn.entry) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId p : preds[static_cast<std::size_t>(b)]) {
        if (idom[static_cast<std::size_t>(p)] == kNoBlock) continue;  // not yet processed
        new_idom = new_idom == kNoBlock ? p : intersect(new_idom, p);
      }
      if (new_idom != kNoBlock && idom[static_cast<std::size_t>(b)] != new_idom) {
        idom[static_cast<std::size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

std::vector<NaturalLoop> FindNaturalLoops(const Function& fn) {
  const auto idom = ComputeDominators(fn);
  const auto preds = fn.ComputePredecessors();

  auto dominates = [&](BlockId a, BlockId b) {
    // Walk b's dominator chain up to the entry.
    BlockId cur = b;
    for (;;) {
      if (cur == a) return true;
      if (cur == fn.entry || cur == kNoBlock) return cur == a;
      cur = idom[static_cast<std::size_t>(cur)];
    }
  };

  // Collect loop bodies per header.
  std::vector<std::unordered_set<BlockId>> body_of(fn.blocks.size());
  std::vector<bool> is_header(fn.blocks.size(), false);
  for (const BasicBlock& b : fn.blocks) {
    if (idom[static_cast<std::size_t>(b.id)] == kNoBlock && b.id != fn.entry) {
      continue;  // unreachable
    }
    for (BlockId s : b.successors()) {
      if (!dominates(s, b.id)) continue;  // not a back edge
      // Natural loop of back edge b->s: everything reaching b without
      // passing through s.
      auto& body = body_of[static_cast<std::size_t>(s)];
      is_header[static_cast<std::size_t>(s)] = true;
      body.insert(s);
      std::vector<BlockId> work{b.id};
      while (!work.empty()) {
        const BlockId n = work.back();
        work.pop_back();
        if (!body.insert(n).second) continue;
        for (BlockId p : preds[static_cast<std::size_t>(n)]) work.push_back(p);
      }
    }
  }

  std::vector<NaturalLoop> loops;
  for (std::size_t h = 0; h < fn.blocks.size(); ++h) {
    if (!is_header[h]) continue;
    NaturalLoop l;
    l.header = static_cast<BlockId>(h);
    l.blocks.assign(body_of[h].begin(), body_of[h].end());
    std::sort(l.blocks.begin(), l.blocks.end());
    loops.push_back(std::move(l));
  }
  std::sort(loops.begin(), loops.end(), [](const NaturalLoop& a, const NaturalLoop& b) {
    if (a.blocks.size() != b.blocks.size()) return a.blocks.size() > b.blocks.size();
    return a.header < b.header;
  });
  return loops;
}

RegionTree InferRegions(const Module& module) {
  RegionTree tree;
  for (const Function& fn : module.functions()) {
    const RegionId root =
        tree.AddNode(RegionKind::kFunction, fn.id, kNoRegion, "func " + fn.name);
    tree.SetFunctionRoot(fn.id, root);

    const auto loops = FindNaturalLoops(fn);

    // loops_of[b]: indices of the loops containing b, outermost
    // (largest body) first.
    std::vector<std::vector<std::size_t>> loops_of(fn.blocks.size());
    for (std::size_t li = 0; li < loops.size(); ++li) {
      for (BlockId b : loops[li].blocks) {
        loops_of[static_cast<std::size_t>(b)].push_back(li);  // li sorted by size desc
      }
    }

    // Walk blocks in program (id) order so that top-level children of
    // the root — loops and leaves alike — appear in execution order
    // (the cluster chain relies on it). Loop regions are created
    // lazily when their first block is reached; inner loops become
    // children of the enclosing loop's region.
    std::vector<RegionId> loop_region(loops.size(), kNoRegion);
    RegionId open_leaf = kNoRegion;
    for (const BasicBlock& b : fn.blocks) {
      const auto& chain = loops_of[static_cast<std::size_t>(b.id)];
      if (chain.empty()) {
        if (open_leaf == kNoRegion) {
          open_leaf = tree.AddNode(RegionKind::kLeaf, fn.id, root, "leaf");
        }
        tree.AddBlock(open_leaf, b.id);
        continue;
      }
      open_leaf = kNoRegion;
      RegionId parent = root;
      for (std::size_t li : chain) {
        if (loop_region[li] == kNoRegion) {
          loop_region[li] = tree.AddNode(RegionKind::kLoop, fn.id, parent,
                                         "loop@bb" + std::to_string(loops[li].header));
        }
        parent = loop_region[li];
      }
      // `parent` is now the innermost loop's region.
      tree.AddBlock(parent, b.id);
    }
  }
  tree.ComputeLoopDepths();
  return tree;
}

}  // namespace lopass::ir
