#include "ir/module.h"

#include <algorithm>

namespace lopass::ir {

std::vector<BlockId> BasicBlock::successors() const {
  const Instr& t = terminator();
  switch (t.op) {
    case Opcode::kRet:
      return {};
    case Opcode::kBr:
      return {t.target0};
    case Opcode::kCondBr:
      return {t.target0, t.target1};
    default:
      return {};
  }
}

std::vector<std::vector<BlockId>> Function::ComputePredecessors() const {
  std::vector<std::vector<BlockId>> preds(blocks.size());
  for (const BasicBlock& b : blocks) {
    for (BlockId s : b.successors()) {
      LOPASS_CHECK(s >= 0 && static_cast<std::size_t>(s) < blocks.size(),
                   "successor out of range");
      preds[static_cast<std::size_t>(s)].push_back(b.id);
    }
  }
  return preds;
}

SymbolId Module::AddScalar(const std::string& name, FunctionId owner) {
  Symbol s;
  s.id = static_cast<SymbolId>(symbols_.size());
  s.name = name;
  s.kind = SymbolKind::kScalar;
  s.length = 1;
  s.owner = owner;
  symbols_.push_back(s);
  addresses_assigned_ = false;
  return s.id;
}

SymbolId Module::AddArray(const std::string& name, std::uint32_t length, FunctionId owner) {
  LOPASS_CHECK(length > 0, "array length must be positive");
  Symbol s;
  s.id = static_cast<SymbolId>(symbols_.size());
  s.name = name;
  s.kind = SymbolKind::kArray;
  s.length = length;
  s.owner = owner;
  symbols_.push_back(s);
  addresses_assigned_ = false;
  return s.id;
}

SymbolId Module::AddFunctionSymbol(const std::string& name) {
  Symbol s;
  s.id = static_cast<SymbolId>(symbols_.size());
  s.name = name;
  s.kind = SymbolKind::kFunction;
  s.length = 0;
  symbols_.push_back(s);
  return s.id;
}

const Symbol& Module::symbol(SymbolId id) const {
  LOPASS_CHECK(id >= 0 && static_cast<std::size_t>(id) < symbols_.size(), "bad symbol id");
  return symbols_[static_cast<std::size_t>(id)];
}

Symbol& Module::symbol_mutable(SymbolId id) {
  LOPASS_CHECK(id >= 0 && static_cast<std::size_t>(id) < symbols_.size(), "bad symbol id");
  return symbols_[static_cast<std::size_t>(id)];
}

std::optional<SymbolId> Module::FindSymbol(const std::string& name, FunctionId owner) const {
  // Function-local symbols shadow globals.
  for (const Symbol& s : symbols_) {
    if (s.owner == owner && s.name == name && s.kind != SymbolKind::kFunction) return s.id;
  }
  if (owner != -1) {
    for (const Symbol& s : symbols_) {
      if (s.owner == -1 && s.name == name && s.kind != SymbolKind::kFunction) return s.id;
    }
  }
  return std::nullopt;
}

std::uint32_t Module::AssignAddresses() {
  std::uint32_t addr = 0;
  for (Symbol& s : symbols_) {
    if (s.kind == SymbolKind::kFunction) continue;
    s.address = addr;
    addr += s.length * 4;
  }
  data_size_ = addr;
  addresses_assigned_ = true;
  return addr;
}

FunctionId Module::AddFunction(const std::string& name) {
  Function f;
  f.id = static_cast<FunctionId>(functions_.size());
  f.name = name;
  f.symbol = AddFunctionSymbol(name);
  functions_.push_back(std::move(f));
  return static_cast<FunctionId>(functions_.size() - 1);
}

Function& Module::function(FunctionId id) {
  LOPASS_CHECK(id >= 0 && static_cast<std::size_t>(id) < functions_.size(), "bad function id");
  return functions_[static_cast<std::size_t>(id)];
}

const Function& Module::function(FunctionId id) const {
  LOPASS_CHECK(id >= 0 && static_cast<std::size_t>(id) < functions_.size(), "bad function id");
  return functions_[static_cast<std::size_t>(id)];
}

std::optional<FunctionId> Module::FindFunction(const std::string& name) const {
  for (const Function& f : functions_) {
    if (f.name == name) return f.id;
  }
  return std::nullopt;
}

std::size_t Module::num_ops() const {
  std::size_t n = 0;
  for (const Function& f : functions_) {
    for (const BasicBlock& b : f.blocks) n += b.instrs.size();
  }
  return n;
}

FunctionBuilder::FunctionBuilder(Module& module, FunctionId fn)
    : module_(module), fn_(module.function(fn)) {}

BlockId FunctionBuilder::NewBlock() {
  BasicBlock b;
  b.id = static_cast<BlockId>(fn_.blocks.size());
  fn_.blocks.push_back(std::move(b));
  if (fn_.entry == kNoBlock) fn_.entry = static_cast<BlockId>(fn_.blocks.size() - 1);
  return static_cast<BlockId>(fn_.blocks.size() - 1);
}

VregId FunctionBuilder::NewVreg() { return fn_.next_vreg++; }

VregId FunctionBuilder::Emit(Opcode op, std::vector<Operand> args, SymbolId sym) {
  LOPASS_CHECK(cur_ != kNoBlock, "no current block");
  Instr in;
  in.op = op;
  in.args = std::move(args);
  in.sym = sym;
  in.line = line_;
  if (ProducesResult(op)) in.result = NewVreg();
  fn_.block(cur_).instrs.push_back(in);
  return in.result;
}

VregId FunctionBuilder::EmitConst(std::int64_t value) {
  return Emit(Opcode::kConst, {Operand::Imm(value)});
}

VregId FunctionBuilder::EmitReadVar(SymbolId var) {
  LOPASS_CHECK(module_.symbol(var).kind == SymbolKind::kScalar, "readvar needs scalar");
  return Emit(Opcode::kReadVar, {}, var);
}

void FunctionBuilder::EmitWriteVar(SymbolId var, Operand value) {
  LOPASS_CHECK(module_.symbol(var).kind == SymbolKind::kScalar, "writevar needs scalar");
  Emit(Opcode::kWriteVar, {value}, var);
}

VregId FunctionBuilder::EmitLoadElem(SymbolId array, Operand index) {
  LOPASS_CHECK(module_.symbol(array).kind == SymbolKind::kArray, "loadelem needs array");
  return Emit(Opcode::kLoadElem, {index}, array);
}

void FunctionBuilder::EmitStoreElem(SymbolId array, Operand index, Operand value) {
  LOPASS_CHECK(module_.symbol(array).kind == SymbolKind::kArray, "storeelem needs array");
  Emit(Opcode::kStoreElem, {index, value}, array);
}

VregId FunctionBuilder::EmitBinary(Opcode op, Operand a, Operand b) {
  LOPASS_CHECK(IsBinaryArith(op) || IsComparison(op), "not a binary op");
  return Emit(op, {a, b});
}

VregId FunctionBuilder::EmitUnary(Opcode op, Operand a) {
  LOPASS_CHECK(op == Opcode::kNeg || op == Opcode::kNot || op == Opcode::kMov,
               "not a unary op");
  return Emit(op, {a});
}

VregId FunctionBuilder::EmitCall(SymbolId fn, std::vector<Operand> args) {
  LOPASS_CHECK(module_.symbol(fn).kind == SymbolKind::kFunction, "call needs function");
  return Emit(Opcode::kCall, std::move(args), fn);
}

void FunctionBuilder::EmitRet() { Emit(Opcode::kRet, {}); }

void FunctionBuilder::EmitRet(Operand value) { Emit(Opcode::kRet, {value}); }

void FunctionBuilder::EmitBr(BlockId target) {
  LOPASS_CHECK(cur_ != kNoBlock, "no current block");
  Instr in;
  in.op = Opcode::kBr;
  in.target0 = target;
  in.line = line_;
  fn_.block(cur_).instrs.push_back(in);
}

void FunctionBuilder::EmitCondBr(Operand cond, BlockId if_true, BlockId if_false) {
  LOPASS_CHECK(cur_ != kNoBlock, "no current block");
  Instr in;
  in.op = Opcode::kCondBr;
  in.args = {cond};
  in.target0 = if_true;
  in.target1 = if_false;
  in.line = line_;
  fn_.block(cur_).instrs.push_back(in);
}

}  // namespace lopass::ir
