#include "ir/print.h"

#include <sstream>

namespace lopass::ir {

namespace {

std::string OperandStr(const Operand& a) {
  if (a.is_imm()) return std::to_string(a.imm);
  return "%" + std::to_string(a.vreg);
}

void PrintRegion(const RegionTree& tree, RegionId id, int indent, std::ostringstream& os) {
  const RegionNode& n = tree.node(id);
  os << std::string(static_cast<std::size_t>(indent) * 2, ' ') << RegionKindName(n.kind)
     << " '" << n.label << "'";
  if (!n.blocks.empty()) {
    os << " blocks[";
    for (std::size_t i = 0; i < n.blocks.size(); ++i) {
      if (i) os << ',';
      os << n.blocks[i];
    }
    os << ']';
  }
  os << '\n';
  for (RegionId c : n.children) PrintRegion(tree, c, indent + 1, os);
}

}  // namespace

std::string ToString(const Module& m, const Instr& in) {
  std::ostringstream os;
  if (in.result != kNoVreg) os << '%' << in.result << " = ";
  os << OpcodeName(in.op);
  if (in.sym != kNoSymbol) os << ' ' << m.symbol(in.sym).name;
  for (const Operand& a : in.args) os << ' ' << OperandStr(a);
  if (in.op == Opcode::kBr) os << " ->bb" << in.target0;
  if (in.op == Opcode::kCondBr) os << " ->bb" << in.target0 << " ->bb" << in.target1;
  return os.str();
}

std::string ToString(const Module& m, const Function& f) {
  std::ostringstream os;
  os << "func " << f.name << '(';
  for (std::size_t i = 0; i < f.params.size(); ++i) {
    if (i) os << ", ";
    os << m.symbol(f.params[i]).name;
  }
  os << ") entry=bb" << f.entry << '\n';
  for (const BasicBlock& b : f.blocks) {
    os << "bb" << b.id << ":\n";
    for (const Instr& in : b.instrs) os << "  " << ToString(m, in) << '\n';
  }
  return os.str();
}

std::string ToString(const Module& m) {
  std::ostringstream os;
  for (const Symbol& s : m.symbols()) {
    if (s.kind == SymbolKind::kArray) {
      os << "array " << s.name << '[' << s.length << "] @" << s.address << '\n';
    } else if (s.kind == SymbolKind::kScalar && s.owner == -1) {
      os << "global " << s.name << " @" << s.address << '\n';
    }
  }
  for (const Function& f : m.functions()) os << ToString(m, f);
  return os.str();
}

std::string ToString(const RegionTree& tree, FunctionId fn) {
  std::ostringstream os;
  PrintRegion(tree, tree.function_root(fn), 0, os);
  return os.str();
}

}  // namespace lopass::ir
