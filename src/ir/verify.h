#pragma once

// IR verifier — the first pass of the static-analysis stack (L1xx).
//
// Checks structural well-formedness of a Module and *accumulates* every
// violation into a DiagnosticSink instead of stopping at the first one,
// so a driver reports all structural problems of a bad module in a
// single pass. Each finding carries a stable L1xx code (catalogued in
// analysis/codes.h and docs/static_analysis.md) and, when the module
// was lowered from DSL source, the source line of the offending
// operation.

#include "common/diag.h"
#include "ir/module.h"

namespace lopass::ir {

// Verifies (all findings are errors):
//  - the module has at least one function            (L100)
//  - every function has blocks and an entry          (L101)
//  - every block ends in exactly one terminator      (L102, L103)
//  - operand arities match opcodes                   (L104)
//  - vreg operands are in range                      (L105)
//  - vreg operands are defined before use within their block; the
//    frontend never produces cross-block vreg liveness (L106)
//  - branch targets are in range                     (L107)
//  - readvar/writevar reference scalar symbols       (L108)
//  - loadelem/storeelem reference array symbols      (L109)
//  - call targets resolve to functions with a body   (L110)
//  - call arity matches the callee parameter count   (L111)
//
// Returns true when no error was added (the sink may have prior,
// unrelated entries; only diagnostics added by this call count).
bool Verify(const Module& m, DiagnosticSink& sink);

// Adapter for callers on the throwing path (Compile, the optimizer):
// runs Verify and throws lopass::Error with *all* findings joined when
// the module is malformed.
void VerifyOrThrow(const Module& m);

}  // namespace lopass::ir
