#pragma once

// IR verifier: checks structural well-formedness of a Module. Run
// after frontend lowering and before any analysis; throws lopass::Error
// with a descriptive message on the first violation.

#include "ir/module.h"

namespace lopass::ir {

// Verifies:
//  - every block ends in exactly one terminator (and has no terminator
//    in the middle),
//  - branch targets are in range,
//  - operand arities match opcodes,
//  - vreg operands are defined before use within their block or are
//    block-crossing values materialized through variables (the frontend
//    never produces cross-block vreg liveness; this is checked),
//  - symbols referenced by readvar/writevar/loadelem/storeelem/call
//    exist and have the right kind,
//  - call targets resolve to functions with matching arity.
void Verify(const Module& m);

}  // namespace lopass::ir
