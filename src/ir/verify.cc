#include "ir/verify.h"

#include <sstream>
#include <unordered_set>

namespace lopass::ir {

namespace {

[[noreturn]] void Fail(const Function& f, BlockId b, std::size_t idx,
                       const std::string& msg) {
  std::ostringstream os;
  os << "IR verification failed in function '" << f.name << "', block " << b
     << ", instr " << idx << ": " << msg;
  LOPASS_THROW(os.str());
}

void VerifyFunction(const Module& m, const Function& f) {
  if (f.blocks.empty()) {
    LOPASS_THROW("IR verification failed: function '" + f.name + "' has no blocks");
  }
  if (f.entry == kNoBlock) {
    LOPASS_THROW("IR verification failed: function '" + f.name + "' has no entry");
  }
  for (const BasicBlock& b : f.blocks) {
    if (b.instrs.empty() || !IsTerminator(b.instrs.back().op)) {
      Fail(f, b.id, b.instrs.size(), "block does not end in a terminator");
    }
    std::unordered_set<VregId> defined;
    for (std::size_t i = 0; i < b.instrs.size(); ++i) {
      const Instr& in = b.instrs[i];
      if (IsTerminator(in.op) && i + 1 != b.instrs.size()) {
        Fail(f, b.id, i, "terminator in the middle of a block");
      }
      const int arity = OpcodeArity(in.op);
      if (arity >= 0 && static_cast<int>(in.args.size()) != arity) {
        Fail(f, b.id, i, std::string("wrong arity for ") + OpcodeName(in.op));
      }
      if (in.op == Opcode::kRet && in.args.size() > 1) {
        Fail(f, b.id, i, "ret takes at most one operand");
      }
      for (const Operand& a : in.args) {
        if (a.is_vreg()) {
          if (a.vreg < 0 || a.vreg >= f.next_vreg) {
            Fail(f, b.id, i, "operand vreg out of range");
          }
          if (!defined.count(a.vreg)) {
            Fail(f, b.id, i, "vreg used before defined within block (cross-block "
                             "vreg liveness is not allowed; use variables)");
          }
        }
      }
      if (in.result != kNoVreg) defined.insert(in.result);

      // Branch targets.
      if (in.op == Opcode::kBr || in.op == Opcode::kCondBr) {
        auto check_target = [&](BlockId t) {
          if (t < 0 || static_cast<std::size_t>(t) >= f.blocks.size()) {
            Fail(f, b.id, i, "branch target out of range");
          }
        };
        check_target(in.target0);
        if (in.op == Opcode::kCondBr) check_target(in.target1);
      }

      // Symbol references.
      switch (in.op) {
        case Opcode::kReadVar:
        case Opcode::kWriteVar:
          if (in.sym == kNoSymbol || m.symbol(in.sym).kind != SymbolKind::kScalar) {
            Fail(f, b.id, i, "readvar/writevar needs a scalar symbol");
          }
          break;
        case Opcode::kLoadElem:
        case Opcode::kStoreElem:
          if (in.sym == kNoSymbol || m.symbol(in.sym).kind != SymbolKind::kArray) {
            Fail(f, b.id, i, "loadelem/storeelem needs an array symbol");
          }
          break;
        case Opcode::kCall: {
          if (in.sym == kNoSymbol || m.symbol(in.sym).kind != SymbolKind::kFunction) {
            Fail(f, b.id, i, "call needs a function symbol");
          }
          const auto callee = m.FindFunction(m.symbol(in.sym).name);
          if (!callee) Fail(f, b.id, i, "call target has no body");
          const Function& cf = m.function(*callee);
          if (cf.params.size() != in.args.size()) {
            Fail(f, b.id, i, "call arity does not match callee parameter count");
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

}  // namespace

void Verify(const Module& m) {
  if (m.num_functions() == 0) {
    LOPASS_THROW("IR verification failed: module has no functions");
  }
  for (const Function& f : m.functions()) VerifyFunction(m, f);
}

}  // namespace lopass::ir
