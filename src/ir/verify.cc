#include "ir/verify.h"

#include <sstream>
#include <unordered_set>

namespace lopass::ir {

namespace {

// Emits one L1xx finding. Locations: the instruction's DSL line when
// known; the message always names function/block/instr so findings in
// programmatic IR (line 0) stay actionable.
class Reporter {
 public:
  explicit Reporter(DiagnosticSink& sink) : sink_(sink) {}

  void Add(const char* code, const Function& f, BlockId b, std::size_t idx, int line,
           const std::string& msg) {
    std::ostringstream os;
    os << "function '" << f.name << "', block " << b << ", instr " << idx << ": " << msg;
    sink_.AddError(code, os.str(), SourceLoc{line, line > 0 ? 1 : 0});
    ++errors_;
  }

  void AddFn(const char* code, const std::string& msg) {
    sink_.AddError(code, msg);
    ++errors_;
  }

  std::size_t errors() const { return errors_; }

 private:
  DiagnosticSink& sink_;
  std::size_t errors_ = 0;
};

bool ValidSymbol(const Module& m, SymbolId sym) {
  return sym >= 0 && static_cast<std::size_t>(sym) < m.num_symbols();
}

void VerifyFunction(const Module& m, const Function& f, Reporter& rep) {
  if (f.blocks.empty()) {
    rep.AddFn("L101", "function '" + f.name + "' has no blocks");
    return;
  }
  if (f.entry == kNoBlock || static_cast<std::size_t>(f.entry) >= f.blocks.size()) {
    rep.AddFn("L101", "function '" + f.name + "' has no valid entry block");
  }
  for (const BasicBlock& b : f.blocks) {
    if (b.instrs.empty() || !IsTerminator(b.instrs.back().op)) {
      rep.Add("L102", f, b.id, b.instrs.size(),
              b.instrs.empty() ? 0 : b.instrs.back().line,
              "block does not end in a terminator");
    }
    std::unordered_set<VregId> defined;
    for (std::size_t i = 0; i < b.instrs.size(); ++i) {
      const Instr& in = b.instrs[i];
      if (IsTerminator(in.op) && i + 1 != b.instrs.size()) {
        rep.Add("L103", f, b.id, i, in.line, "terminator in the middle of a block");
      }
      const int arity = OpcodeArity(in.op);
      if (arity >= 0 && static_cast<int>(in.args.size()) != arity) {
        rep.Add("L104", f, b.id, i, in.line,
                std::string("wrong arity for ") + OpcodeName(in.op));
      }
      if (in.op == Opcode::kRet && in.args.size() > 1) {
        rep.Add("L104", f, b.id, i, in.line, "ret takes at most one operand");
      }
      for (const Operand& a : in.args) {
        if (!a.is_vreg()) continue;
        if (a.vreg < 0 || a.vreg >= f.next_vreg) {
          rep.Add("L105", f, b.id, i, in.line, "operand vreg out of range");
        } else if (!defined.count(a.vreg)) {
          rep.Add("L106", f, b.id, i, in.line,
                  "vreg used before defined within block (cross-block vreg "
                  "liveness is not allowed; use variables)");
        }
      }
      if (in.result != kNoVreg) defined.insert(in.result);

      // Branch targets.
      if (in.op == Opcode::kBr || in.op == Opcode::kCondBr) {
        auto check_target = [&](BlockId t) {
          if (t < 0 || static_cast<std::size_t>(t) >= f.blocks.size()) {
            rep.Add("L107", f, b.id, i, in.line, "branch target out of range");
          }
        };
        check_target(in.target0);
        if (in.op == Opcode::kCondBr) check_target(in.target1);
      }

      // Symbol references. Guard the id range first so a corrupt id is
      // itself a finding instead of a thrown LOPASS_CHECK — later
      // passes rely on every reported module being safely walkable.
      switch (in.op) {
        case Opcode::kReadVar:
        case Opcode::kWriteVar:
          if (!ValidSymbol(m, in.sym) || m.symbol(in.sym).kind != SymbolKind::kScalar) {
            rep.Add("L108", f, b.id, i, in.line, "readvar/writevar needs a scalar symbol");
          }
          break;
        case Opcode::kLoadElem:
        case Opcode::kStoreElem:
          if (!ValidSymbol(m, in.sym) || m.symbol(in.sym).kind != SymbolKind::kArray) {
            rep.Add("L109", f, b.id, i, in.line, "loadelem/storeelem needs an array symbol");
          }
          break;
        case Opcode::kCall: {
          if (!ValidSymbol(m, in.sym) || m.symbol(in.sym).kind != SymbolKind::kFunction) {
            rep.Add("L110", f, b.id, i, in.line, "call needs a function symbol");
            break;
          }
          const auto callee = m.FindFunction(m.symbol(in.sym).name);
          if (!callee) {
            rep.Add("L110", f, b.id, i, in.line, "call target has no body");
            break;
          }
          const Function& cf = m.function(*callee);
          if (cf.params.size() != in.args.size()) {
            rep.Add("L111", f, b.id, i, in.line,
                    "call arity does not match callee parameter count");
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

}  // namespace

bool Verify(const Module& m, DiagnosticSink& sink) {
  Reporter rep(sink);
  if (m.num_functions() == 0) {
    rep.AddFn("L100", "module has no functions");
  }
  for (const Function& f : m.functions()) VerifyFunction(m, f, rep);
  return rep.errors() == 0;
}

void VerifyOrThrow(const Module& m) {
  DiagnosticSink sink;
  if (!Verify(m, sink)) {
    throw Error("IR verification failed:\n" + sink.ToString());
  }
}

}  // namespace lopass::ir
