#include "ir/opcode.h"

namespace lopass::ir {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "const";
    case Opcode::kMov: return "mov";
    case Opcode::kReadVar: return "readvar";
    case Opcode::kWriteVar: return "writevar";
    case Opcode::kLoadElem: return "loadelem";
    case Opcode::kStoreElem: return "storeelem";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kMod: return "mod";
    case Opcode::kNeg: return "neg";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kNot: return "not";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kSar: return "sar";
    case Opcode::kCmpEq: return "cmpeq";
    case Opcode::kCmpNe: return "cmpne";
    case Opcode::kCmpLt: return "cmplt";
    case Opcode::kCmpLe: return "cmple";
    case Opcode::kCmpGt: return "cmpgt";
    case Opcode::kCmpGe: return "cmpge";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kCall: return "call";
    case Opcode::kRet: return "ret";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
  }
  return "?";
}

int OpcodeArity(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kReadVar:
    case Opcode::kBr:
      return 0;
    case Opcode::kMov:
    case Opcode::kWriteVar:
    case Opcode::kLoadElem:
    case Opcode::kNeg:
    case Opcode::kNot:
    case Opcode::kCondBr:
      return 1;
    case Opcode::kStoreElem:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSar:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpGt:
    case Opcode::kCmpGe:
    case Opcode::kMin:
    case Opcode::kMax:
      return 2;
    case Opcode::kRet:
      return -1;  // 0 or 1
    case Opcode::kCall:
      return -1;  // variadic
  }
  return -1;
}

bool IsTerminator(Opcode op) {
  return op == Opcode::kRet || op == Opcode::kBr || op == Opcode::kCondBr;
}

bool IsBinaryArith(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSar:
    case Opcode::kMin:
    case Opcode::kMax:
      return true;
    default:
      return false;
  }
}

bool IsComparison(Opcode op) {
  switch (op) {
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpGt:
    case Opcode::kCmpGe:
      return true;
    default:
      return false;
  }
}

bool ProducesResult(Opcode op) {
  switch (op) {
    case Opcode::kWriteVar:
    case Opcode::kStoreElem:
    case Opcode::kRet:
    case Opcode::kBr:
    case Opcode::kCondBr:
      return false;
    case Opcode::kCall:
      return true;  // may be unused; void calls use result vreg that is never read
    default:
      return true;
  }
}

}  // namespace lopass::ir
