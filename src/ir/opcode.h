#pragma once

// Operation set of the lopass intermediate representation.
//
// The paper's step 1 derives "a graph G = {V, E}" whose nodes represent
// operations (section 3.2). Our IR is that graph: functions of basic
// blocks of operations on virtual registers, with named-variable
// read/write operations that carry the gen/use information the
// bus-transfer estimator (Fig. 3) needs.

#include <cstdint>

namespace lopass::ir {

enum class Opcode : std::uint8_t {
  // Data movement.
  kConst,     // result <- imm
  kMov,       // result <- a
  kReadVar,   // result <- named scalar variable (sym)
  kWriteVar,  // named scalar variable (sym) <- a
  kLoadElem,  // result <- array sym [a]
  kStoreElem, // array sym [a] <- b

  // Arithmetic.
  kAdd, kSub, kMul, kDiv, kMod, kNeg,

  // Bitwise / shifts.
  kAnd, kOr, kXor, kNot, kShl, kShr, kSar,

  // Comparisons (result is 0/1).
  kCmpEq, kCmpNe, kCmpLt, kCmpLe, kCmpGt, kCmpGe,

  // Min/max (single-cycle ALU ops on DSP datapaths).
  kMin, kMax,

  // Control flow / calls.
  kCall,     // result <- call function sym(args...)
  kRet,      // return (optionally a)
  kBr,       // unconditional jump to target0
  kCondBr,   // if a != 0 goto target0 else target1
};

const char* OpcodeName(Opcode op);

// Number of value operands the opcode consumes (excluding block
// targets); kCall is variadic and returns -1.
int OpcodeArity(Opcode op);

bool IsTerminator(Opcode op);
bool IsBinaryArith(Opcode op);
bool IsComparison(Opcode op);
// True if the op produces a result value.
bool ProducesResult(Opcode op);

}  // namespace lopass::ir
