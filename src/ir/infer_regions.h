#pragma once

// Structural region inference for programmatic IR.
//
// The DSL frontend records the region tree while lowering; IR built
// directly through FunctionBuilder has none. This pass reconstructs the
// loop structure from the CFG — dominator analysis, back edges, natural
// loops, containment nesting — so cluster decomposition (and therefore
// the whole partitioner) works on hand-built modules too. If-then-else
// diamonds are not recovered (they remain part of the enclosing leaf or
// loop), which only reduces the candidate set; loops are what matter
// for the paper's workloads.

#include <vector>

#include "ir/module.h"
#include "ir/region.h"

namespace lopass::ir {

// Immediate dominators per block (entry's idom is itself). Index =
// block id; unreachable blocks get kNoBlock.
std::vector<BlockId> ComputeDominators(const Function& fn);

// A natural loop: header plus body (header included).
struct NaturalLoop {
  BlockId header = kNoBlock;
  std::vector<BlockId> blocks;  // sorted ascending, includes header
};

// Natural loops of `fn`, merged per header, sorted outermost first
// (larger bodies first).
std::vector<NaturalLoop> FindNaturalLoops(const Function& fn);

// Builds a region tree for the whole module from CFG structure alone.
RegionTree InferRegions(const Module& module);

}  // namespace lopass::ir
