#include "ir/region.h"

namespace lopass::ir {

const char* RegionKindName(RegionKind k) {
  switch (k) {
    case RegionKind::kFunction: return "function";
    case RegionKind::kSequence: return "sequence";
    case RegionKind::kLoop: return "loop";
    case RegionKind::kIfElse: return "ifelse";
    case RegionKind::kLeaf: return "leaf";
  }
  return "?";
}

RegionId RegionTree::AddNode(RegionKind kind, FunctionId fn, RegionId parent,
                             const std::string& label) {
  RegionNode n;
  n.id = static_cast<RegionId>(nodes_.size());
  n.kind = kind;
  n.function = fn;
  n.parent = parent;
  n.label = label;
  nodes_.push_back(std::move(n));
  const RegionId id = static_cast<RegionId>(nodes_.size() - 1);
  if (parent != kNoRegion) node_mutable(parent).children.push_back(id);
  return id;
}

void RegionTree::AddBlock(RegionId region, BlockId block) {
  node_mutable(region).blocks.push_back(block);
}

const RegionNode& RegionTree::node(RegionId id) const {
  LOPASS_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(), "bad region id");
  return nodes_[static_cast<std::size_t>(id)];
}

RegionNode& RegionTree::node_mutable(RegionId id) {
  LOPASS_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(), "bad region id");
  return nodes_[static_cast<std::size_t>(id)];
}

void RegionTree::SetFunctionRoot(FunctionId fn, RegionId root) {
  if (static_cast<std::size_t>(fn) >= function_roots_.size()) {
    function_roots_.resize(static_cast<std::size_t>(fn) + 1, kNoRegion);
  }
  function_roots_[static_cast<std::size_t>(fn)] = root;
}

RegionId RegionTree::function_root(FunctionId fn) const {
  LOPASS_CHECK(fn >= 0 && static_cast<std::size_t>(fn) < function_roots_.size(),
               "function has no region root");
  return function_roots_[static_cast<std::size_t>(fn)];
}

std::vector<BlockId> RegionTree::CoveredBlocks(RegionId id) const {
  std::vector<BlockId> out;
  std::vector<RegionId> stack{id};
  while (!stack.empty()) {
    const RegionId cur = stack.back();
    stack.pop_back();
    const RegionNode& n = node(cur);
    out.insert(out.end(), n.blocks.begin(), n.blocks.end());
    // Push children in reverse so program order is preserved.
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

void RegionTree::ComputeLoopDepths() {
  for (RegionNode& n : nodes_) {
    int depth = 0;
    RegionId p = n.parent;
    if (n.kind == RegionKind::kLoop) ++depth;
    while (p != kNoRegion) {
      if (node(p).kind == RegionKind::kLoop) ++depth;
      p = node(p).parent;
    }
    n.loop_depth = depth;
  }
}

}  // namespace lopass::ir
