#pragma once

// Structural region tree.
//
// The paper decomposes the application into clusters — "code segments
// like nested loops, if-then-else constructs, functions etc." — using
// "structural information of the initial behavioral description solely"
// (section 3.2). The DSL frontend therefore records, while lowering, a
// tree of structural regions over the basic blocks of each function.
// The clusterer (core/cluster.h) walks this tree.

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.h"

namespace lopass::ir {

using RegionId = std::int32_t;
constexpr RegionId kNoRegion = -1;

enum class RegionKind : std::uint8_t {
  kFunction,  // a whole function body
  kSequence,  // straight-line grouping of children
  kLoop,      // for/while loop (children = body)
  kIfElse,    // two-armed conditional (children = arms)
  kLeaf,      // one or more basic blocks with no inner structure
};

const char* RegionKindName(RegionKind k);

struct RegionNode {
  RegionId id = kNoRegion;
  RegionKind kind = RegionKind::kLeaf;
  FunctionId function = -1;
  RegionId parent = kNoRegion;
  std::string label;                // human-readable, e.g. "for@line12"
  std::vector<RegionId> children;   // in program order
  std::vector<BlockId> blocks;      // blocks owned *directly* by this node
  // Loop nesting depth (0 = not inside any loop).
  int loop_depth = 0;
};

class RegionTree {
 public:
  RegionId AddNode(RegionKind kind, FunctionId fn, RegionId parent,
                   const std::string& label);

  void AddBlock(RegionId region, BlockId block);

  const RegionNode& node(RegionId id) const;
  RegionNode& node_mutable(RegionId id);
  std::size_t num_nodes() const { return nodes_.size(); }
  const std::vector<RegionNode>& nodes() const { return nodes_; }

  void SetFunctionRoot(FunctionId fn, RegionId root);
  RegionId function_root(FunctionId fn) const;

  // All basic blocks covered by a region, including children, in
  // discovery order.
  std::vector<BlockId> CoveredBlocks(RegionId id) const;

  // Recomputes loop_depth for every node from the tree structure.
  void ComputeLoopDepths();

 private:
  std::vector<RegionNode> nodes_;
  std::vector<RegionId> function_roots_;
};

}  // namespace lopass::ir
