#include "iss/simulator.h"

#include <algorithm>
#include <string>

#include "common/error.h"
#include "common/fault.h"

namespace lopass::iss {

using isa::InstrClass;
using isa::SlInstr;
using isa::SlOp;

double SimResult::UtilizationOfBlocks(
    const std::vector<std::pair<ir::FunctionId, ir::BlockId>>& blocks) const {
  Cycles total = 0;
  std::array<std::uint64_t, kNumUpResources> active{};
  for (const auto& [fn, b] : blocks) {
    const BlockCost& c = block_costs[static_cast<std::size_t>(fn)][static_cast<std::size_t>(b)];
    total += c.cycles;
    for (int r = 0; r < kNumUpResources; ++r) active[static_cast<std::size_t>(r)] += c.active_cycles[static_cast<std::size_t>(r)];
  }
  if (total == 0) return 0.0;
  double sum = 0.0;
  for (int r = 0; r < kNumAveragedUpResources; ++r) {
    sum += static_cast<double>(active[static_cast<std::size_t>(r)]) / static_cast<double>(total);
  }
  return sum / kNumAveragedUpResources;
}

Simulator::Simulator(const ir::Module& module, const isa::SlProgram& program,
                     SystemConfig config, const power::TechLibrary& lib,
                     const TiwariModel& energy)
    : module_(module), program_(program), config_(config), lib_(lib), energy_(energy) {
  Reset();
}

void Simulator::Reset() {
  memory_.assign(program_.data_size_bytes / 4 + 1, 0);
  for (const ir::Symbol& s : module_.symbols()) {
    if (s.kind == ir::SymbolKind::kScalar && s.init != 0) {
      memory_[s.address / 4] = s.init;
    }
  }
}

ir::SymbolId Simulator::FindGlobal(const std::string& name) const {
  auto id = module_.FindSymbol(name, -1);
  if (!id) LOPASS_THROW("no global named '" + name + "'");
  return *id;
}

void Simulator::SetScalar(const std::string& name, std::int64_t value) {
  memory_[module_.symbol(FindGlobal(name)).address / 4] = value;
}

void Simulator::FillArray(const std::string& name, std::span<const std::int64_t> values) {
  const ir::Symbol& s = module_.symbol(FindGlobal(name));
  LOPASS_CHECK(s.kind == ir::SymbolKind::kArray, "FillArray needs an array");
  LOPASS_CHECK(values.size() <= s.length, "too many initializer values");
  std::copy(values.begin(), values.end(), memory_.begin() + s.address / 4);
}

std::int64_t Simulator::GetScalar(const std::string& name) const {
  return memory_[module_.symbol(FindGlobal(name)).address / 4];
}

SimResult Simulator::Run(const std::string& fn, std::span<const std::int64_t> args,
                         const HwPartition& partition, std::uint64_t max_instrs) {
  fault::MaybeInject("sim");
  const auto fid = module_.FindFunction(fn);
  if (!fid) LOPASS_THROW("no function named '" + fn + "'");
  const isa::FuncInfo& entry_fn = program_.function(*fid);
  const ir::Function& entry_ir = module_.function(*fid);
  LOPASS_CHECK(args.size() == entry_ir.params.size(), "argument count mismatch");
  for (std::size_t i = 0; i < args.size(); ++i) {
    memory_[module_.symbol(entry_ir.params[i]).address / 4] = args[i];
  }

  cache::CacheSim icache(config_.icache, cache::WritePolicy::kWriteBackAllocate);
  cache::CacheSim dcache(config_.dcache, config_.dcache_policy);
  const power::CacheEnergyModel icache_em(config_.icache, lib_.params());
  const power::CacheEnergyModel dcache_em(config_.dcache, lib_.params());
  const power::MemoryEnergyModel mem_em(config_.memory_bytes, lib_.params());
  const std::uint32_t i_line_words = config_.icache.line_bytes / 4;
  const std::uint32_t d_line_words = config_.dcache.line_bytes / 4;

  SimResult r;
  r.block_costs.resize(module_.num_functions());
  for (std::size_t f = 0; f < module_.num_functions(); ++f) {
    r.block_costs[f].assign(module_.function(static_cast<ir::FunctionId>(f)).blocks.size(),
                            BlockCost{});
  }
  r.cluster_entries.assign(partition.clusters.size(), 0);

  std::array<std::int64_t, isa::kNumRegs> regs{};
  std::vector<std::uint32_t> call_stack;
  Cycles next_sample = config_.timeline_interval_cycles;
  std::uint32_t pc = entry_fn.entry;
  InstrClass prev_class = InstrClass::kNop;
  int prev_cluster = -1;
  std::uint64_t executed = 0;

  // Boundary-transfer accounting: the µP deposits `words` to shared
  // memory (entry) or reads them back (exit); the ASIC core does the
  // mirrored access. Charged: µP load/store energy + cycles, two bus
  // transfers and two memory accesses per word (Fig. 2a scheme).
  auto account_entry = [&](int cluster) {
    const std::uint32_t w = partition.clusters[static_cast<std::size_t>(cluster)].entry_words;
    ++r.cluster_entries[static_cast<std::size_t>(cluster)];
    r.transfer_words_in += w;
    r.up_cycles = SaturatingAdd(r.up_cycles, static_cast<Cycles>(w) * 2);
    r.energy.up_core += energy_.base_energy(InstrClass::kStore) * static_cast<double>(w);
    r.energy.bus += (lib_.bus_write_energy() + lib_.bus_read_energy()) * static_cast<double>(w);
    r.energy.mem += (mem_em.write_energy() + mem_em.read_energy()) * static_cast<double>(w);
    r.mem_writes += w;
    r.mem_reads += w;
  };
  auto account_exit = [&](int cluster) {
    const std::uint32_t w = partition.clusters[static_cast<std::size_t>(cluster)].exit_words;
    r.transfer_words_out += w;
    r.up_cycles = SaturatingAdd(r.up_cycles, static_cast<Cycles>(w) * 2);
    r.energy.up_core += energy_.base_energy(InstrClass::kLoad) * static_cast<double>(w);
    r.energy.bus += (lib_.bus_write_energy() + lib_.bus_read_energy()) * static_cast<double>(w);
    r.energy.mem += (mem_em.write_energy() + mem_em.read_energy()) * static_cast<double>(w);
    r.mem_writes += w;
    r.mem_reads += w;
  };

  for (;;) {
    LOPASS_CHECK(pc < program_.code.size(), "pc out of range");
    const SlInstr& in = program_.code[pc];
    if (++executed > max_instrs) {
      LOPASS_THROW("simulator fuel exhausted after " + std::to_string(max_instrs) +
                   " instructions (non-terminating workload?)");
    }

    const int cluster = partition.empty() ? -1 : partition.ClusterOf(in.fn, in.block);
    if (cluster != prev_cluster) {
      if (prev_cluster >= 0) account_exit(prev_cluster);
      if (cluster >= 0) account_entry(cluster);
      prev_cluster = cluster;
    }
    const bool sw = cluster < 0;

    Cycles instr_cycles = 0;
    Energy instr_energy;
    const InstrClass cls = isa::ClassOf(in.op);

    if (sw) {
      ++r.instr_count;
      // Instruction fetch.
      if (!icache.Access(program_.FetchAddress(pc), /*is_write=*/false)) {
        const Cycles penalty = 3 + i_line_words;
        instr_cycles += penalty;
        instr_energy += energy_.stall_energy_per_cycle() * static_cast<double>(penalty);
        r.energy.bus += lib_.bus_read_energy() * static_cast<double>(i_line_words);
        r.energy.mem += mem_em.read_energy() * static_cast<double>(i_line_words);
        r.mem_reads += i_line_words;
      }
      instr_cycles += isa::BaseCycles(in.op);
      instr_energy += energy_.base_energy(cls) + energy_.overhead(prev_class, cls);
      prev_class = cls;
    }

    // --- functional execution -------------------------------------------
    auto rd_reg = [&](int idx) -> std::int64_t {
      return idx == isa::kZeroReg ? 0 : regs[static_cast<std::size_t>(idx)];
    };
    auto wr_reg = [&](int idx, std::int64_t v) {
      if (idx != isa::kZeroReg) regs[static_cast<std::size_t>(idx)] = v;
    };
    auto src2 = [&]() -> std::int64_t {
      return in.use_imm ? in.imm : rd_reg(in.rs2);
    };

    std::uint32_t next_pc = pc + 1;
    bool taken = false;
    switch (in.op) {
      case SlOp::kNop:
        break;
      case SlOp::kAdd: wr_reg(in.rd, WrapAdd(rd_reg(in.rs1), src2())); break;
      case SlOp::kSub: wr_reg(in.rd, WrapSub(rd_reg(in.rs1), src2())); break;
      case SlOp::kAnd: wr_reg(in.rd, rd_reg(in.rs1) & src2()); break;
      case SlOp::kOr: wr_reg(in.rd, rd_reg(in.rs1) | src2()); break;
      case SlOp::kXor: wr_reg(in.rd, rd_reg(in.rs1) ^ src2()); break;
      case SlOp::kSll: wr_reg(in.rd, WrapShl(rd_reg(in.rs1), src2())); break;
      case SlOp::kSrl:
        wr_reg(in.rd, static_cast<std::int64_t>(
                          static_cast<std::uint64_t>(rd_reg(in.rs1)) >> (src2() & 63)));
        break;
      case SlOp::kSra: wr_reg(in.rd, rd_reg(in.rs1) >> (src2() & 63)); break;
      case SlOp::kMul: wr_reg(in.rd, WrapMul(rd_reg(in.rs1), src2())); break;
      case SlOp::kDiv: {
        const std::int64_t d = src2();
        if (d == 0) LOPASS_THROW("division by zero in SL32 program");
        wr_reg(in.rd, rd_reg(in.rs1) / d);
        break;
      }
      case SlOp::kMod: {
        const std::int64_t d = src2();
        if (d == 0) LOPASS_THROW("modulo by zero in SL32 program");
        wr_reg(in.rd, rd_reg(in.rs1) % d);
        break;
      }
      case SlOp::kMin: wr_reg(in.rd, std::min(rd_reg(in.rs1), src2())); break;
      case SlOp::kMax: wr_reg(in.rd, std::max(rd_reg(in.rs1), src2())); break;
      case SlOp::kSeq: wr_reg(in.rd, rd_reg(in.rs1) == src2()); break;
      case SlOp::kSne: wr_reg(in.rd, rd_reg(in.rs1) != src2()); break;
      case SlOp::kSlt: wr_reg(in.rd, rd_reg(in.rs1) < src2()); break;
      case SlOp::kSle: wr_reg(in.rd, rd_reg(in.rs1) <= src2()); break;
      case SlOp::kSgt: wr_reg(in.rd, rd_reg(in.rs1) > src2()); break;
      case SlOp::kSge: wr_reg(in.rd, rd_reg(in.rs1) >= src2()); break;
      case SlOp::kLi: wr_reg(in.rd, in.imm); break;
      case SlOp::kLd:
      case SlOp::kSt: {
        const std::int64_t addr64 = rd_reg(in.rs1) + in.imm;
        LOPASS_CHECK(addr64 >= 0 && addr64 + 4 <= static_cast<std::int64_t>(memory_.size() * 4),
                     "data access out of range");
        const std::uint32_t addr = static_cast<std::uint32_t>(addr64);
        const bool is_write = in.op == SlOp::kSt;
        if (sw) {
          if (!dcache.Access(addr, is_write)) {
            const bool allocates = !is_write ||
                                   config_.dcache_policy == cache::WritePolicy::kWriteBackAllocate;
            if (allocates) {
              const Cycles penalty = 3 + d_line_words;
              instr_cycles += penalty;
              instr_energy += energy_.stall_energy_per_cycle() * static_cast<double>(penalty);
              r.energy.bus += lib_.bus_read_energy() * static_cast<double>(d_line_words);
              r.energy.mem += mem_em.read_energy() * static_cast<double>(d_line_words);
              r.mem_reads += d_line_words;
            }
          }
          if (is_write && config_.dcache_policy == cache::WritePolicy::kWriteThroughNoAllocate) {
            r.energy.bus += lib_.bus_write_energy();
            r.energy.mem += mem_em.write_energy();
            r.mem_writes += 1;
          }
        }
        if (is_write) {
          memory_[addr / 4] = rd_reg(in.rd);
        } else {
          wr_reg(in.rd, memory_[addr / 4]);
        }
        break;
      }
      case SlOp::kBeqz:
        if (rd_reg(in.rs1) == 0) { next_pc = static_cast<std::uint32_t>(in.target); taken = true; }
        break;
      case SlOp::kBnez:
        if (rd_reg(in.rs1) != 0) { next_pc = static_cast<std::uint32_t>(in.target); taken = true; }
        break;
      case SlOp::kJ:
        next_pc = static_cast<std::uint32_t>(in.target);
        break;
      case SlOp::kCall:
        call_stack.push_back(pc + 1);
        next_pc = static_cast<std::uint32_t>(in.target);
        break;
      case SlOp::kRet:
        if (call_stack.empty()) {
          // Program finished.
          r.return_value = regs[isa::kRetValReg];
          // Final accounting for this instruction below, then halt.
          if (sw) {
            r.up_cycles = SaturatingAdd(r.up_cycles, instr_cycles);
            r.energy.up_core += instr_energy;
            BlockCost& bc = r.block_costs[static_cast<std::size_t>(in.fn)][static_cast<std::size_t>(in.block)];
            bc.cycles = SaturatingAdd(bc.cycles, instr_cycles);
            bc.energy += instr_energy;
            ++bc.instrs;
          }
          if (prev_cluster >= 0) account_exit(prev_cluster);
          goto done;
        }
        next_pc = call_stack.back();
        call_stack.pop_back();
        break;
    }

    if (sw) {
      if (taken) {
        instr_cycles += 1;  // branch-taken pipeline bubble
      }
      r.up_cycles = SaturatingAdd(r.up_cycles, instr_cycles);
      r.energy.up_core += instr_energy;
      if (config_.timeline_interval_cycles > 0 &&
          r.up_cycles >= next_sample) {
        r.timeline.push_back(EnergySample{
            r.up_cycles, r.energy.up_core,
            r.energy.up_core + r.energy.bus + r.energy.mem});
        next_sample = r.up_cycles + config_.timeline_interval_cycles;
      }
      BlockCost& bc = r.block_costs[static_cast<std::size_t>(in.fn)][static_cast<std::size_t>(in.block)];
      bc.cycles = SaturatingAdd(bc.cycles, instr_cycles);
      bc.energy += instr_energy;
      ++bc.instrs;
      const std::uint32_t mask = energy_.active_resources(cls);
      const Cycles busy = isa::BaseCycles(in.op);
      for (int res = 0; res < kNumUpResources; ++res) {
        if (mask & (1u << res)) {
          r.active_cycles[static_cast<std::size_t>(res)] += busy;
          bc.active_cycles[static_cast<std::size_t>(res)] += busy;
        }
      }
    }
    pc = next_pc;
  }

done:
  // Dirty-line flush at program end is not charged (the paper measures
  // steady application execution).
  r.icache_stats = icache.stats();
  r.dcache_stats = dcache.stats();
  r.energy.icache = icache.TotalEnergy(icache_em);
  r.energy.dcache = dcache.TotalEnergy(dcache_em);
  // Dirty-line writebacks from the d-cache reach memory over the bus
  // (write-through words were charged per access above).
  const std::uint64_t wb_words =
      r.dcache_stats.writebacks * static_cast<std::uint64_t>(d_line_words);
  r.energy.bus += lib_.bus_write_energy() * static_cast<double>(wb_words);
  r.energy.mem += mem_em.write_energy() * static_cast<double>(wb_words);
  r.mem_writes += wb_words;

  if (r.up_cycles > 0) {
    double sum = 0.0;
    for (int res = 0; res < kNumAveragedUpResources; ++res) {
      sum += static_cast<double>(r.active_cycles[static_cast<std::size_t>(res)]) /
             static_cast<double>(r.up_cycles);
    }
    r.up_utilization = sum / kNumAveragedUpResources;
  }
  CheckEnergySane(r.energy.total(), "simulated system energy");
  return r;
}

}  // namespace lopass::iss
