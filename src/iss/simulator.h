#pragma once

// Cycle-level system simulator: SL32 µP core + I-cache + D-cache +
// main memory + shared bus (the architecture of Fig. 2a).
//
// This is the paper's "Core Energy Estimation" block (Fig. 5): an
// instruction set simulator with attached per-instruction energy
// calculation [12], feeding trace-driven cache simulators and the
// analytical memory/bus energy models.
//
// The simulator is partition-aware: blocks that the partitioner mapped
// to the ASIC core still execute *functionally* (the ASIC performs
// their computation), but their instruction fetches, data accesses,
// cycles and energy are not charged to the µP core or its caches.
// Cluster entry/exit triggers the additional shared-memory transfers of
// section 3.3 (the µP deposits/reads back data; Fig. 2a bus scheme).
// The ASIC core's own cycles/energy are modeled by asic/ and added by
// the partition evaluator in core/.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/cache_sim.h"
#include "common/units.h"
#include "ir/module.h"
#include "isa/isa.h"
#include "iss/energy_model.h"
#include "power/cache_energy.h"
#include "power/tech_library.h"

namespace lopass::iss {

// Cache + memory configuration of one system variant. The paper's
// footnote 4: the standard cores "have to be adapted efficiently (e.g.
// size of memory, size of caches, cache policy etc.) according to the
// particular hw/sw partitioning chosen" — hence a value type that a
// partition can override.
struct SystemConfig {
  power::CacheGeometry icache{2048, 16, 1, 32};
  power::CacheGeometry dcache{2048, 16, 1, 32};
  cache::WritePolicy dcache_policy = cache::WritePolicy::kWriteBackAllocate;
  std::uint32_t memory_bytes = 256 * 1024;
  // When > 0, SimResult.timeline records a cumulative energy sample
  // every N µP cycles (a power-over-time profile).
  lopass::Cycles timeline_interval_cycles = 0;
};

// Which blocks run on the ASIC core. Cluster indexes are dense ids
// assigned by the partitioner.
struct HwPartition {
  // block_cluster[fn][block] = cluster index, or -1 for software.
  std::vector<std::vector<int>> block_cluster;
  struct ClusterIo {
    // Additional shared-memory transfer words at cluster entry (µP ->
    // mem, Fig. 3 step 1/2) and exit (mem -> µP, step 3/4).
    std::uint32_t entry_words = 0;
    std::uint32_t exit_words = 0;
  };
  std::vector<ClusterIo> clusters;

  bool empty() const { return clusters.empty(); }
  int ClusterOf(ir::FunctionId fn, ir::BlockId b) const {
    if (block_cluster.empty()) return -1;
    return block_cluster[static_cast<std::size_t>(fn)][static_cast<std::size_t>(b)];
  }
};

// Energy of each core in the system (one Table 1 row-half).
struct CoreEnergies {
  Energy up_core;
  Energy icache;
  Energy dcache;
  Energy mem;
  Energy bus;
  Energy asic_core;  // filled in by the partition evaluator

  Energy total() const { return up_core + icache + dcache + mem + bus + asic_core; }
};

// Per-block attribution of software cost, used by the partitioner to
// estimate E_µP,c_i (Fig. 1 line 12) without re-simulating.
struct BlockCost {
  Cycles cycles = 0;
  Energy energy;
  std::uint64_t instrs = 0;
  std::array<std::uint64_t, kNumUpResources> active_cycles{};
};

// One point of the power-over-time profile.
struct EnergySample {
  lopass::Cycles cycle = 0;
  Energy up_core;   // cumulative µP core energy at this cycle
  Energy total;     // cumulative µP + bus + memory energy (caches are
                    // post-processed and excluded from the timeline)
};

struct SimResult {
  std::int64_t return_value = 0;
  std::uint64_t instr_count = 0;      // µP instructions executed (SW only)
  Cycles up_cycles = 0;               // µP busy cycles incl. stalls
  CoreEnergies energy;
  cache::CacheStats icache_stats;
  cache::CacheStats dcache_stats;
  // µP resource utilization (Eq. 1/4 applied to the µP core).
  std::array<std::uint64_t, kNumUpResources> active_cycles{};
  double up_utilization = 0.0;
  // Attribution per (function, block).
  std::vector<std::vector<BlockCost>> block_costs;
  // Cluster boundary event counts (partitioned runs).
  std::vector<std::uint64_t> cluster_entries;
  std::uint64_t transfer_words_in = 0;   // µP -> memory at entries
  std::uint64_t transfer_words_out = 0;  // memory -> µP at exits
  // Memory traffic in words (fills, writebacks, boundary transfers).
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
  // Sampled when SystemConfig::timeline_interval_cycles > 0.
  std::vector<EnergySample> timeline;

  // Average µP utilization restricted to a set of blocks (the paper's
  // U_µP^core for a candidate cluster).
  double UtilizationOfBlocks(
      const std::vector<std::pair<ir::FunctionId, ir::BlockId>>& blocks) const;
};

class Simulator {
 public:
  Simulator(const ir::Module& module, const isa::SlProgram& program,
            SystemConfig config,
            const power::TechLibrary& lib = power::TechLibrary::Cmos6(),
            const TiwariModel& energy = TiwariModel::Sparclite());

  // Pre-run data initialization (mirrors interp::Interpreter).
  void Reset();
  void SetScalar(const std::string& name, std::int64_t value);
  void FillArray(const std::string& name, std::span<const std::int64_t> values);
  std::int64_t GetScalar(const std::string& name) const;

  // Runs `fn(args...)` to completion and returns the system accounting.
  // `partition` marks ASIC-resident blocks (empty = all software).
  SimResult Run(const std::string& fn, std::span<const std::int64_t> args = {},
                const HwPartition& partition = HwPartition{},
                std::uint64_t max_instrs = 2'000'000'000);

 private:
  ir::SymbolId FindGlobal(const std::string& name) const;

  const ir::Module& module_;
  const isa::SlProgram& program_;
  SystemConfig config_;
  const power::TechLibrary& lib_;
  const TiwariModel& energy_;
  std::vector<std::int64_t> memory_;
};

}  // namespace lopass::iss
