#pragma once

// Instruction-level energy model of the SL32 (SPARClite-class) µP core,
// after Tiwari/Malik/Wolfe [12]: every instruction has a base energy
// cost, consecutive instructions of different classes pay a
// circuit-state overhead, and stall cycles (cache misses) have their
// own per-cycle energy. The original measured mA tables are not
// available; the values below reproduce the published magnitudes for a
// 0.8u 3.3V embedded core (~0.3-0.5 W at 25 MHz).

#include <array>
#include <cstdint>

#include "common/units.h"
#include "isa/isa.h"

namespace lopass::iss {

// Datapath resources inside the µP core whose utilization rates u_rs
// (Eq. 1) the partitioner compares against ASIC implementations.
enum class UpResource : std::uint8_t {
  kAlu = 0, kShifter, kMultiplier, kDivider, kMemPort, kRegFile, kCount,
};
constexpr int kNumUpResources = static_cast<int>(UpResource::kCount);
// The register file is tracked but excluded from the U_µP average so
// the comparison against U_R^core covers the same population (the ASIC
// side's register file is storage, not an averaged datapath operator).
constexpr int kNumAveragedUpResources = kNumUpResources - 1;

const char* UpResourceName(UpResource r);

class TiwariModel {
 public:
  // The default SL32/SPARClite-class characterization.
  static const TiwariModel& Sparclite();

  TiwariModel();

  // Base energy of one instruction of the given class (whole
  // instruction, i.e. across all of its base cycles).
  Energy base_energy(isa::InstrClass c) const {
    return base_[static_cast<std::size_t>(c)];
  }

  // Circuit-state overhead paid between consecutive instructions.
  // Tiwari's method measures a full pair matrix; ours is populated
  // with class-pair values (symmetric) — e.g. switching between the
  // ALU and the multiplier costs more than between two ALU ops.
  Energy overhead(isa::InstrClass prev, isa::InstrClass cur) const {
    return overhead_[static_cast<std::size_t>(prev)][static_cast<std::size_t>(cur)];
  }

  // Energy of one pipeline stall cycle (cache miss, bus wait).
  Energy stall_energy_per_cycle() const { return stall_; }

  // Which µP resources an instruction of class `c` keeps actively used
  // during its execution (bitmask over UpResource).
  std::uint32_t active_resources(isa::InstrClass c) const {
    return active_[static_cast<std::size_t>(c)];
  }

  // Mutators for calibration / ablation.
  TiwariModel& set_base_energy(isa::InstrClass c, Energy e);
  // Uniform overrides: same-class diagonal and all off-diagonal pairs.
  TiwariModel& set_overheads(Energy same_class, Energy switch_class);
  // One specific pair (set symmetrically).
  TiwariModel& set_pair_overhead(isa::InstrClass a, isa::InstrClass b, Energy e);
  TiwariModel& set_stall_energy(Energy e);

  // Uniformly scales every energy in the model (base, overhead matrix,
  // stall) — used together with TechLibrary::ScaledTo for technology-
  // node projections.
  TiwariModel ScaledBy(double energy_factor) const;

 private:
  std::array<Energy, 10> base_{};
  std::array<std::uint32_t, 10> active_{};
  std::array<std::array<Energy, 10>, 10> overhead_{};
  Energy stall_;
};

}  // namespace lopass::iss
