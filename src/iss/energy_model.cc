#include "iss/energy_model.h"

namespace lopass::iss {

using isa::InstrClass;

const char* UpResourceName(UpResource r) {
  switch (r) {
    case UpResource::kAlu: return "ALU";
    case UpResource::kShifter: return "shifter";
    case UpResource::kMultiplier: return "multiplier";
    case UpResource::kDivider: return "divider";
    case UpResource::kMemPort: return "memport";
    case UpResource::kRegFile: return "regfile";
    case UpResource::kCount: break;
  }
  return "?";
}

namespace {
constexpr std::uint32_t Bit(UpResource r) { return 1u << static_cast<int>(r); }
}  // namespace

TiwariModel::TiwariModel() : stall_(Energy::from_nanojoules(6.8)) {
  auto set = [&](InstrClass c, double nj, std::uint32_t mask) {
    base_[static_cast<std::size_t>(c)] = Energy::from_nanojoules(nj);
    active_[static_cast<std::size_t>(c)] = mask;
  };
  // Base energies for a ~0.4W @ 25MHz 0.8u core (≈13nJ/instr average).
  set(InstrClass::kAlu,    12.8, Bit(UpResource::kAlu) | Bit(UpResource::kRegFile));
  set(InstrClass::kShift,  13.4, Bit(UpResource::kShifter) | Bit(UpResource::kRegFile));
  set(InstrClass::kMul,    27.0, Bit(UpResource::kMultiplier) | Bit(UpResource::kRegFile));
  set(InstrClass::kDiv,    58.0, Bit(UpResource::kDivider) | Bit(UpResource::kRegFile));
  set(InstrClass::kLoad,   16.2, Bit(UpResource::kMemPort) | Bit(UpResource::kAlu) |
                                 Bit(UpResource::kRegFile));
  set(InstrClass::kStore,  15.6, Bit(UpResource::kMemPort) | Bit(UpResource::kAlu) |
                                 Bit(UpResource::kRegFile));
  set(InstrClass::kBranch, 12.1, Bit(UpResource::kAlu) | Bit(UpResource::kRegFile));
  set(InstrClass::kJump,   10.5, Bit(UpResource::kRegFile));
  set(InstrClass::kCall,   14.0, Bit(UpResource::kMemPort) | Bit(UpResource::kRegFile));
  set(InstrClass::kNop,     8.9, 0);

  // Circuit-state overhead matrix (nJ). Baseline: 0.15 on the diagonal
  // (same circuit state), 1.2 off-diagonal; pairs that swing large
  // functional units cost more, pairs within the load/store unit less.
  set_overheads(Energy::from_nanojoules(0.15), Energy::from_nanojoules(1.2));
  auto pair = [&](InstrClass a, InstrClass b, double nj) {
    set_pair_overhead(a, b, Energy::from_nanojoules(nj));
  };
  pair(InstrClass::kAlu, InstrClass::kMul, 1.8);
  pair(InstrClass::kAlu, InstrClass::kDiv, 2.2);
  pair(InstrClass::kShift, InstrClass::kMul, 1.9);
  pair(InstrClass::kMul, InstrClass::kDiv, 2.6);
  pair(InstrClass::kLoad, InstrClass::kStore, 0.6);
  pair(InstrClass::kAlu, InstrClass::kLoad, 0.9);
  pair(InstrClass::kAlu, InstrClass::kStore, 0.9);
  pair(InstrClass::kBranch, InstrClass::kAlu, 0.7);
  pair(InstrClass::kNop, InstrClass::kNop, 0.05);
}

const TiwariModel& TiwariModel::Sparclite() {
  static const TiwariModel m;
  return m;
}

TiwariModel& TiwariModel::set_base_energy(InstrClass c, Energy e) {
  base_[static_cast<std::size_t>(c)] = e;
  return *this;
}

TiwariModel& TiwariModel::set_overheads(Energy same_class, Energy switch_class) {
  for (std::size_t a = 0; a < overhead_.size(); ++a) {
    for (std::size_t b = 0; b < overhead_.size(); ++b) {
      overhead_[a][b] = a == b ? same_class : switch_class;
    }
  }
  return *this;
}

TiwariModel& TiwariModel::set_pair_overhead(isa::InstrClass a, isa::InstrClass b,
                                            Energy e) {
  overhead_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = e;
  overhead_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = e;
  return *this;
}

TiwariModel& TiwariModel::set_stall_energy(Energy e) {
  stall_ = e;
  return *this;
}

TiwariModel TiwariModel::ScaledBy(double energy_factor) const {
  TiwariModel out = *this;
  for (Energy& e : out.base_) e *= energy_factor;
  for (auto& row : out.overhead_) {
    for (Energy& e : row) e *= energy_factor;
  }
  out.stall_ *= energy_factor;
  return out;
}

}  // namespace lopass::iss
