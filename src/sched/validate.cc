#include "sched/validate.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace lopass::sched {

using power::ResourceType;

namespace {

class Reporter {
 public:
  Reporter(DiagnosticSink& sink, const std::string& where) : sink_(sink), where_(where) {}

  void Add(const char* code, const std::string& msg) {
    sink_.AddError(code, where_.empty() ? msg : where_ + ": " + msg);
    ++errors_;
  }

  std::size_t errors() const { return errors_; }

 private:
  DiagnosticSink& sink_;
  const std::string& where_;
  std::size_t errors_ = 0;
};

std::string NodeStr(std::size_t n, const BlockDfg& dfg) {
  std::ostringstream os;
  os << "node " << n << " (" << ir::OpcodeName(dfg.nodes[n].op) << ")";
  return os.str();
}

// Shared shape check: one schedule entry per DFG node, node indices a
// permutation of [0, dfg.size()).
bool CheckShape(const BlockDfg& dfg, std::size_t entries,
                const std::vector<std::size_t>& node_of_entry, Reporter& rep) {
  if (entries != dfg.size()) {
    std::ostringstream os;
    os << "schedule has " << entries << " ops but the DFG has " << dfg.size() << " nodes";
    rep.Add("L400", os.str());
    return false;
  }
  std::vector<char> seen(dfg.size(), 0);
  for (std::size_t i = 0; i < node_of_entry.size(); ++i) {
    const std::size_t n = node_of_entry[i];
    if (n >= dfg.size()) {
      std::ostringstream os;
      os << "schedule entry " << i << " references DFG node " << n << " (out of range)";
      rep.Add("L400", os.str());
      return false;
    }
    if (seen[n]) {
      std::ostringstream os;
      os << "DFG node " << n << " scheduled more than once";
      rep.Add("L400", os.str());
      return false;
    }
    seen[n] = 1;
  }
  return true;
}

}  // namespace

bool ValidateSchedule(const BlockDfg& dfg, const BlockSchedule& sched,
                      const ResourceSet& rs, const power::TechLibrary& lib,
                      DiagnosticSink& sink, bool chaining_enabled,
                      const std::string& where) {
  Reporter rep(sink, where);

  std::vector<std::size_t> nodes(sched.ops.size());
  for (std::size_t i = 0; i < sched.ops.size(); ++i) nodes[i] = sched.ops[i].node;
  // The list scheduler stores ops indexed by node and leaves .node == 0
  // for the node-0 slot; treat an all-default empty schedule of an
  // empty DFG as trivially valid.
  if (dfg.size() == 0) {
    if (!sched.ops.empty()) rep.Add("L400", "non-empty schedule for an empty DFG");
    if (sched.num_steps != 0) rep.Add("L403", "empty DFG must schedule to 0 steps");
    return rep.errors() == 0;
  }
  if (!CheckShape(dfg, sched.ops.size(), nodes, rep)) return false;

  // step/latency/type per node (ops are indexed by node, but re-index
  // defensively via .node so hand-built schedules are honored).
  std::vector<const ScheduledOp*> by_node(dfg.size(), nullptr);
  for (const ScheduledOp& op : sched.ops) by_node[op.node] = &op;

  std::uint32_t makespan = 0;
  for (std::size_t n = 0; n < dfg.size(); ++n) {
    const ScheduledOp& op = *by_node[n];

    // L404: type admissible for the opcode and latency from the library.
    const auto candidates = CandidateResources(dfg.nodes[n].op);
    if (std::find(candidates.begin(), candidates.end(), op.type) == candidates.end()) {
      rep.Add("L404", NodeStr(n, dfg) + " mapped to non-candidate resource " +
                          power::ResourceTypeName(op.type));
    } else if (op.latency != lib.spec(op.type).op_latency) {
      std::ostringstream os;
      os << NodeStr(n, dfg) << " latency " << op.latency << " does not match "
         << power::ResourceTypeName(op.type) << " library latency "
         << lib.spec(op.type).op_latency;
      rep.Add("L404", os.str());
    }
    if (op.latency < 1) {
      rep.Add("L404", NodeStr(n, dfg) + " has non-positive latency");
      continue;  // interval math below would be meaningless
    }
    makespan = std::max(makespan, op.step + static_cast<std::uint32_t>(op.latency));

    // L401: every predecessor finished, or legally chained.
    for (std::size_t p : dfg.nodes[n].preds) {
      const ScheduledOp& sp = *by_node[p];
      const std::uint32_t finish = sp.step + static_cast<std::uint32_t>(sp.latency);
      if (op.step >= finish) continue;
      const bool chained = chaining_enabled && op.step == sp.step && sp.latency == 1;
      if (!chained) {
        std::ostringstream os;
        os << NodeStr(n, dfg) << " starts at step " << op.step << " before predecessor "
           << NodeStr(p, dfg) << " finishes at step " << finish;
        rep.Add("L401", os.str());
      }
    }
  }

  // L402: per-type occupancy in every control step within the budget.
  // Chained ops still occupy their own instance (the scheduler reserves
  // one per op), so plain interval counting matches its accounting.
  for (int t = 0; t < power::kNumResourceTypes; ++t) {
    const ResourceType type = static_cast<ResourceType>(t);
    std::vector<int> occupancy(makespan, 0);
    for (std::size_t n = 0; n < dfg.size(); ++n) {
      const ScheduledOp& op = *by_node[n];
      if (op.type != type || op.latency < 1) continue;
      for (std::uint32_t s = op.step;
           s < op.step + static_cast<std::uint32_t>(op.latency) && s < makespan; ++s) {
        ++occupancy[s];
      }
    }
    const int budget = rs.of(type);
    for (std::uint32_t s = 0; s < makespan; ++s) {
      if (occupancy[s] > budget) {
        std::ostringstream os;
        os << occupancy[s] << " concurrent " << power::ResourceTypeName(type)
           << " ops in control step " << s << " but the resource set '" << rs.name
           << "' provides " << budget;
        rep.Add("L402", os.str());
        break;  // one finding per type is enough to flag the set
      }
    }
  }

  // L403: reported makespan must match the actual one (>= 1 even for a
  // register-transfer-only block whose DFG collapsed to depth 0).
  const std::uint32_t expect = std::max(makespan, 1u);
  if (sched.num_steps != expect) {
    std::ostringstream os;
    os << "schedule reports " << sched.num_steps << " control steps but ops span "
       << expect;
    rep.Add("L403", os.str());
  }

  return rep.errors() == 0;
}

bool ValidateFdsSchedule(const BlockDfg& dfg, const FdsSchedule& sched,
                         const power::TechLibrary& lib, DiagnosticSink& sink,
                         const std::string& where) {
  Reporter rep(sink, where);
  if (sched.step.size() != dfg.size() || sched.type.size() != dfg.size()) {
    std::ostringstream os;
    os << "FDS schedule covers " << sched.step.size() << "/" << sched.type.size()
       << " nodes but the DFG has " << dfg.size();
    rep.Add("L405", os.str());
    return false;
  }

  std::uint32_t makespan = 0;
  for (std::size_t n = 0; n < dfg.size(); ++n) {
    const std::uint32_t lat =
        static_cast<std::uint32_t>(lib.spec(sched.type[n]).op_latency);
    makespan = std::max(makespan, sched.step[n] + lat);
    for (std::size_t p : dfg.nodes[n].preds) {
      const std::uint32_t pfinish =
          sched.step[p] + static_cast<std::uint32_t>(lib.spec(sched.type[p]).op_latency);
      if (sched.step[n] < pfinish) {
        std::ostringstream os;
        os << NodeStr(n, dfg) << " starts at step " << sched.step[n]
           << " before predecessor " << NodeStr(p, dfg) << " finishes at step " << pfinish;
        rep.Add("L405", os.str());
      }
    }
  }
  if (dfg.size() > 0 && makespan > sched.latency) {
    std::ostringstream os;
    os << "FDS makespan " << makespan << " exceeds the latency budget " << sched.latency;
    rep.Add("L405", os.str());
  }

  // The reported allocation must cover the actual peak concurrency —
  // it is what the ablation benchmarks cost hardware by.
  for (int t = 0; t < power::kNumResourceTypes; ++t) {
    const ResourceType type = static_cast<ResourceType>(t);
    std::vector<int> occupancy(makespan, 0);
    int peak = 0;
    for (std::size_t n = 0; n < dfg.size(); ++n) {
      if (sched.type[n] != type) continue;
      const std::uint32_t lat =
          static_cast<std::uint32_t>(lib.spec(type).op_latency);
      for (std::uint32_t s = sched.step[n]; s < sched.step[n] + lat && s < makespan; ++s) {
        peak = std::max(peak, ++occupancy[s]);
      }
    }
    if (peak > sched.allocation[static_cast<std::size_t>(t)]) {
      std::ostringstream os;
      os << "FDS allocation lists " << sched.allocation[static_cast<std::size_t>(t)] << " "
         << power::ResourceTypeName(type) << " units but peak concurrency is " << peak;
      rep.Add("L405", os.str());
    }
  }

  return rep.errors() == 0;
}

}  // namespace lopass::sched
