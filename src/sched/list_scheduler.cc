#include "sched/list_scheduler.h"

#include <algorithm>

#include "common/error.h"
#include "common/fault.h"
#include "ir/opcode.h"
#include "sched/asap_alap.h"

namespace lopass::sched {

using power::ResourceType;

BlockSchedule ListSchedule(const BlockDfg& dfg, const ResourceSet& rs,
                           const power::TechLibrary& lib,
                           const SchedulerOptions& options) {
  fault::MaybeInject("schedule");
  BlockSchedule sched;
  sched.ops.resize(dfg.size());
  if (dfg.size() == 0) {
    sched.num_steps = 0;
    return sched;
  }

  const double period = options.clock_period.seconds > 0.0
                            ? options.clock_period.seconds
                            : lib.params().clock_period().seconds;

  // busy_until[type] holds, per instance, the first step it is free.
  std::array<std::vector<std::uint32_t>, power::kNumResourceTypes> busy_until;
  for (int t = 0; t < power::kNumResourceTypes; ++t) {
    busy_until[static_cast<std::size_t>(t)].assign(
        static_cast<std::size_t>(std::max(0, rs.count[static_cast<std::size_t>(t)])), 0);
  }

  // Priority key: depth (default) or negated mobility (least slack
  // first).
  std::vector<int> priority(dfg.size(), 0);
  if (options.priority == SchedulerOptions::Priority::kMobility) {
    const std::vector<std::uint32_t> mob = Mobility(dfg, lib);
    for (std::size_t n = 0; n < dfg.size(); ++n) {
      priority[n] = -static_cast<int>(mob[n]);
    }
  } else {
    for (std::size_t n = 0; n < dfg.size(); ++n) priority[n] = dfg.nodes[n].depth;
  }

  std::vector<int> unscheduled_preds(dfg.size());
  std::vector<bool> scheduled(dfg.size(), false);
  // Combinational delay accumulated within an op's final control step
  // (for chaining).
  std::vector<double> chain_delay(dfg.size(), 0.0);
  std::vector<std::size_t> ready;
  for (std::size_t n = 0; n < dfg.size(); ++n) {
    unscheduled_preds[n] = static_cast<int>(dfg.nodes[n].preds.size());
    if (unscheduled_preds[n] == 0) ready.push_back(n);
  }

  // Checks whether node n may start at `step`, given scheduled preds.
  // Returns the accumulated chain delay at n's step, or a negative
  // value if not allowed.
  auto admissible = [&](std::size_t n, std::uint32_t step, double own_delay) -> double {
    double chained = 0.0;
    for (std::size_t p : dfg.nodes[n].preds) {
      const ScheduledOp& sp = sched.ops[p];
      const std::uint32_t finish = sp.step + static_cast<std::uint32_t>(sp.latency);
      if (step >= finish) continue;  // pred result registered
      if (!options.enable_chaining) return -1.0;
      // Chaining: only through single-cycle preds in the same step.
      if (sp.latency != 1 || step != sp.step) return -1.0;
      chained = std::max(chained, chain_delay[p]);
    }
    const double total = chained + own_delay;
    if (chained > 0.0 && total > period) return -1.0;
    return total;
  };

  std::size_t remaining = dfg.size();
  std::uint32_t step = 0;
  std::uint32_t makespan = 0;

  while (remaining > 0) {
    CheckCancel(options.cancel, "list schedule");
    LOPASS_CHECK(step < 4'000'000,
                 "list scheduler iteration cap (4000000 steps) exceeded without "
                 "scheduling every op (resource set too small or cyclic DFG?)");
    // Highest priority first; ties by program order.
    std::sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
      if (priority[a] != priority[b]) return priority[a] > priority[b];
      return a < b;
    });

    std::vector<std::size_t> still_ready;
    std::vector<std::size_t> issued;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      std::vector<std::size_t> next_ready;
      for (std::size_t n : ready) {
        const auto candidates = CandidateResources(dfg.nodes[n].op);
        LOPASS_CHECK(!candidates.empty(),
                     std::string("operation not HW-mappable: ") +
                         ir::OpcodeName(dfg.nodes[n].op));
        bool placed = false;
        for (ResourceType t : candidates) {
          const double delay_ok =
              admissible(n, step, lib.spec(t).min_cycle_time.seconds);
          // Data not ready, or the chain would exceed the period with
          // this (slower) resource — a faster candidate might still fit.
          if (delay_ok < 0.0) continue;
          auto& inst = busy_until[static_cast<std::size_t>(t)];
          for (std::uint32_t i = 0; i < inst.size(); ++i) {
            if (inst[i] <= step) {
              const Cycles lat = lib.spec(t).op_latency;
              inst[i] = step + static_cast<std::uint32_t>(lat);
              ScheduledOp& so = sched.ops[n];
              so.node = n;
              so.step = step;
              so.type = t;
              so.latency = lat;
              chain_delay[n] = delay_ok;
              if (delay_ok > lib.spec(t).min_cycle_time.seconds) ++sched.chained_ops;
              makespan = std::max(makespan, step + static_cast<std::uint32_t>(lat));
              placed = true;
              break;
            }
          }
          if (placed) break;
        }
        if (!placed) {
          // Either data not ready, no free instance, or the set lacks
          // every candidate type (a configuration error).
          bool feasible = false;
          for (ResourceType t : candidates) {
            if (!busy_until[static_cast<std::size_t>(t)].empty()) feasible = true;
          }
          LOPASS_CHECK(feasible, std::string("resource set '") + rs.name +
                                     "' provides no resource for " +
                                     ir::OpcodeName(dfg.nodes[n].op));
          next_ready.push_back(n);
          continue;
        }
        scheduled[n] = true;
        issued.push_back(n);
        --remaining;
        for (std::size_t s : dfg.nodes[n].succs) {
          if (--unscheduled_preds[s] == 0) {
            // With chaining the successor may be schedulable in this
            // very step: put it in the current working set.
            next_ready.push_back(s);
            progressed = true;
          }
        }
      }
      ready = std::move(next_ready);
      // With chaining enabled, newly readied successors may issue in
      // the same step; loop again. Without chaining, one pass suffices
      // because admissible() rejects same-step dependents.
      if (!options.enable_chaining) break;
    }
    still_ready = std::move(ready);
    ready = std::move(still_ready);
    ++step;
  }

  sched.num_steps = std::max(makespan, 1u);
  return sched;
}

}  // namespace lopass::sched
