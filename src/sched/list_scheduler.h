#pragma once

// Resource-constrained list scheduler (Fig. 1 line 8: "a simple list
// schedule is performed on the current cluster").
//
// Ready operations are prioritized by their longest path to a sink and
// assigned to the smallest available candidate resource type of the
// designer's resource set, respecting per-type instance counts and
// multi-cycle latencies.

#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "power/tech_library.h"
#include "sched/dfg.h"
#include "sched/resource_set.h"

namespace lopass::sched {

struct ScheduledOp {
  std::size_t node = 0;                   // DFG node index
  std::uint32_t step = 0;                 // control step the op starts in
  power::ResourceType type = power::ResourceType::kAlu;
  lopass::Cycles latency = 1;
};

struct BlockSchedule {
  std::vector<ScheduledOp> ops;    // one entry per DFG node
  std::uint32_t num_steps = 0;     // makespan in control steps
  std::uint64_t chained_ops = 0;   // ops packed by operator chaining
};

struct SchedulerOptions {
  // Operator chaining: two data-dependent single-cycle operations may
  // share a control step when their combined combinational delay fits
  // the clock period (a classic HLS refinement; disabled by default to
  // match the paper's "simple list schedule").
  bool enable_chaining = false;
  // Clock period the chained delay must fit; zero means "use the
  // library's system clock period".
  Duration clock_period;
  // Ready-list priority: kDepth (longest path to sink, the default) or
  // kMobility (least ALAP-ASAP slack first).
  enum class Priority { kDepth, kMobility } priority = Priority::kDepth;
  // Cooperative cancellation: when set, the scheduler polls the token
  // at every control step and aborts with CancelledError once it fires
  // (the exploration runner's per-job deadline). Null = not cancellable.
  const CancelToken* cancel = nullptr;
};

// Schedules one block DFG under the resource set. Throws if an
// operation has no candidate resource (calls inside clusters must be
// filtered out by the caller) or the resource set provides none of the
// op's candidate types.
BlockSchedule ListSchedule(const BlockDfg& dfg, const ResourceSet& rs,
                           const power::TechLibrary& lib,
                           const SchedulerOptions& options = SchedulerOptions{});

}  // namespace lopass::sched
