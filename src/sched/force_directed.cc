#include "sched/force_directed.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "sched/asap_alap.h"
#include "sched/resource_set.h"

namespace lopass::sched {

namespace {

struct Frame {
  std::uint32_t lo = 0;  // earliest start
  std::uint32_t hi = 0;  // latest start
  std::uint32_t width() const { return hi - lo + 1; }
};

// Latency of the op on its preferred (smallest) resource.
Cycles LatOf(ir::Opcode op, const power::TechLibrary& lib) {
  const auto candidates = CandidateResources(op);
  LOPASS_CHECK(!candidates.empty(), "op has no candidate resource");
  return lib.spec(candidates[0]).op_latency;
}

}  // namespace

FdsSchedule ForceDirectedSchedule(const BlockDfg& dfg, const power::TechLibrary& lib,
                                  std::uint32_t latency, const CancelToken* cancel) {
  FdsSchedule out;
  const std::size_t n = dfg.size();
  out.step.assign(n, 0);
  out.type.assign(n, power::ResourceType::kAlu);
  if (n == 0) {
    out.latency = 0;
    return out;
  }

  const UnconstrainedSchedule asap = AsapSchedule(dfg, lib);
  if (latency == 0) latency = asap.makespan;
  LOPASS_CHECK(latency >= asap.makespan, "latency budget below the critical path");
  out.latency = latency;

  std::vector<Cycles> lat(n);
  for (std::size_t i = 0; i < n; ++i) {
    lat[i] = LatOf(dfg.nodes[i].op, lib);
    out.type[i] = CandidateResources(dfg.nodes[i].op)[0];
  }

  // Time frames: start with ASAP/ALAP against the budget.
  std::vector<Frame> frame(n);
  {
    // ALAP with the extended budget: reverse sweep.
    std::vector<std::uint32_t> alap(n, 0);
    for (std::size_t i = n; i-- > 0;) {
      std::uint32_t latest_finish = latency;
      for (std::size_t s : dfg.nodes[i].succs) {
        latest_finish = std::min(latest_finish, alap[s]);
      }
      LOPASS_CHECK(latest_finish >= lat[i], "ALAP underflow");
      alap[i] = latest_finish - static_cast<std::uint32_t>(lat[i]);
    }
    for (std::size_t i = 0; i < n; ++i) frame[i] = Frame{asap.step[i], alap[i]};
  }

  // Distribution graphs per resource type: expected occupancy per step.
  const auto dg_of = [&](const std::vector<Frame>& frames, power::ResourceType t,
                         std::uint32_t step_idx) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (out.type[i] != t) continue;
      const Frame& f = frames[i];
      const double p = 1.0 / f.width();
      // Op occupies [s, s+lat) for each possible start s in its frame.
      for (std::uint32_t s = f.lo; s <= f.hi; ++s) {
        if (step_idx >= s && step_idx < s + lat[i]) sum += p;
      }
    }
    return sum;
  };

  // Propagate frame tightening through the DAG after an assignment.
  // Every pass that reports `changed` raises a lo or lowers a hi, and
  // each of the n frames can move at most `latency` per bound, so the
  // loop is capped at 2*n*(latency+1) passes; exceeding the cap means
  // the frames oscillate (a malformed DFG) and we fail loudly instead
  // of hanging.
  auto tighten = [&](std::vector<Frame>& frames) {
    const std::uint64_t max_passes =
        2 * static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(latency) + 1) + 8;
    std::uint64_t passes = 0;
    bool changed = true;
    while (changed) {
      CheckCancel(cancel, "force-directed schedule (frame tightening)");
      LOPASS_CHECK(++passes <= max_passes,
                   "force-directed scheduler failed to converge while tightening "
                   "time frames (malformed DFG?)");
      changed = false;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t s : dfg.nodes[i].succs) {
          const std::uint32_t min_start = frames[i].lo + static_cast<std::uint32_t>(lat[i]);
          if (frames[s].lo < min_start) {
            frames[s].lo = min_start;
            changed = true;
          }
          const std::uint32_t max_start =
              frames[s].hi >= static_cast<std::uint32_t>(lat[i])
                  ? frames[s].hi - static_cast<std::uint32_t>(lat[i])
                  : 0;
          if (frames[i].hi > max_start) {
            frames[i].hi = max_start;
            changed = true;
          }
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      LOPASS_CHECK(frames[i].lo <= frames[i].hi, "infeasible frame after tightening");
    }
  };
  tighten(frame);

  std::vector<bool> placed(n, false);
  for (std::size_t round = 0; round < n; ++round) {
    CheckCancel(cancel, "force-directed schedule (placement)");
    // Pick the (op, step) pair with the minimum force among unplaced
    // ops. Force = sum over occupied steps of DG minus the op's own
    // average contribution (self force); successor effects enter
    // through the frame tightening after each placement.
    double best_force = std::numeric_limits<double>::infinity();
    std::size_t best_op = 0;
    std::uint32_t best_step = 0;

    for (std::size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      if (frame[i].width() == 1) {
        // Forced placement: do it immediately (cheapest and required).
        best_op = i;
        best_step = frame[i].lo;
        best_force = -std::numeric_limits<double>::infinity();
        break;
      }
      // Average DG over the frame for this op's type.
      double avg = 0.0;
      for (std::uint32_t s = frame[i].lo; s <= frame[i].hi; ++s) {
        for (std::uint32_t c = 0; c < lat[i]; ++c) avg += dg_of(frame, out.type[i], s + c);
      }
      avg /= frame[i].width();
      for (std::uint32_t s = frame[i].lo; s <= frame[i].hi; ++s) {
        double occupied = 0.0;
        for (std::uint32_t c = 0; c < lat[i]; ++c) occupied += dg_of(frame, out.type[i], s + c);
        const double force = occupied - avg;
        if (force < best_force) {
          best_force = force;
          best_op = i;
          best_step = s;
        }
      }
    }

    placed[best_op] = true;
    out.step[best_op] = best_step;
    frame[best_op] = Frame{best_step, best_step};
    tighten(frame);
  }

  // Implied allocation: peak concurrency per type.
  std::vector<std::array<int, power::kNumResourceTypes>> usage(latency + 1);
  for (auto& u : usage) u.fill(0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t c = 0; c < lat[i]; ++c) {
      usage[out.step[i] + c][static_cast<std::size_t>(static_cast<int>(out.type[i]))]++;
    }
  }
  out.allocation.fill(0);
  for (const auto& u : usage) {
    for (int t = 0; t < power::kNumResourceTypes; ++t) {
      out.allocation[static_cast<std::size_t>(t)] =
          std::max(out.allocation[static_cast<std::size_t>(t)], u[static_cast<std::size_t>(t)]);
    }
  }
  return out;
}

}  // namespace lopass::sched
