#pragma once

// Unconstrained ASAP/ALAP schedules and operation mobility.
//
// The classic companions of list scheduling: ASAP gives each op its
// earliest data-ready step ignoring resource limits, ALAP its latest
// step that still meets the ASAP critical path, and mobility their
// difference. They provide (a) a lower bound on any resource-
// constrained makespan (used as a property-test oracle) and (b) an
// alternative list-scheduler priority (least mobility first).

#include <cstdint>
#include <vector>

#include "power/tech_library.h"
#include "sched/dfg.h"

namespace lopass::sched {

struct UnconstrainedSchedule {
  std::vector<std::uint32_t> step;  // per DFG node
  std::uint32_t makespan = 0;       // critical-path length in steps
};

// Earliest start per op (resource-unconstrained), using each op's
// smallest candidate resource latency.
UnconstrainedSchedule AsapSchedule(const BlockDfg& dfg, const power::TechLibrary& lib);

// Latest start per op such that the ASAP critical path is met.
UnconstrainedSchedule AlapSchedule(const BlockDfg& dfg, const power::TechLibrary& lib);

// mobility[n] = alap.step[n] - asap.step[n] (>= 0).
std::vector<std::uint32_t> Mobility(const BlockDfg& dfg, const power::TechLibrary& lib);

}  // namespace lopass::sched
