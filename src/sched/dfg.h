#pragma once

// Dataflow graph over the operations of one basic block, the unit the
// list scheduler works on. Edges: virtual-register def-use plus
// variable/array ordering dependencies (RAW/WAR/WAW on symbols).

#include <cstdint>
#include <vector>

#include "ir/module.h"

namespace lopass::sched {

struct DfgNode {
  std::size_t instr_index = 0;   // index into the basic block
  ir::Opcode op = ir::Opcode::kMov;
  std::vector<std::size_t> preds;  // node indices this node depends on
  std::vector<std::size_t> succs;
  int depth = 0;  // longest path to any sink (scheduling priority)
};

struct BlockDfg {
  std::vector<DfgNode> nodes;

  std::size_t size() const { return nodes.size(); }
};

// Builds the DFG for a basic block. The terminator is excluded (it is
// realized by the ASIC core's controller, not the datapath), and so are
// pure register-transfer operations (const/mov/readvar/writevar): in a
// synthesized datapath those are register-file reads/writes and wiring,
// not scheduled operators. Their producers/consumers are connected
// directly (dependence contraction), so e.g. `writevar x; ...; readvar
// x` inside one block yields a producer->consumer edge.
// Remaining dependencies:
//  * def->use on virtual registers (through contracted copies),
//  * conservative ordering between stores and loads/stores on the same
//    array symbol (memory-port operations stay in the DFG).
BlockDfg BuildBlockDfg(const ir::BasicBlock& block);

// True for opcodes realized by the register file / interconnect rather
// than a scheduled datapath resource.
bool IsRegisterTransfer(ir::Opcode op);

}  // namespace lopass::sched
