#include "sched/asap_alap.h"

#include <algorithm>

#include "common/error.h"
#include "sched/resource_set.h"

namespace lopass::sched {

namespace {

// Latency of the op on its smallest (preferred) candidate resource.
Cycles MinLatency(ir::Opcode op, const power::TechLibrary& lib) {
  const auto candidates = CandidateResources(op);
  LOPASS_CHECK(!candidates.empty(), "op has no candidate resource");
  Cycles best = lib.spec(candidates[0]).op_latency;
  for (power::ResourceType t : candidates) {
    best = std::min(best, lib.spec(t).op_latency);
  }
  return best;
}

}  // namespace

UnconstrainedSchedule AsapSchedule(const BlockDfg& dfg, const power::TechLibrary& lib) {
  UnconstrainedSchedule s;
  s.step.assign(dfg.size(), 0);
  // Nodes are in program order = topological order.
  for (std::size_t n = 0; n < dfg.size(); ++n) {
    std::uint32_t start = 0;
    for (std::size_t p : dfg.nodes[n].preds) {
      const std::uint32_t finish =
          s.step[p] + static_cast<std::uint32_t>(MinLatency(dfg.nodes[p].op, lib));
      start = std::max(start, finish);
    }
    s.step[n] = start;
    s.makespan = std::max(
        s.makespan, start + static_cast<std::uint32_t>(MinLatency(dfg.nodes[n].op, lib)));
  }
  return s;
}

UnconstrainedSchedule AlapSchedule(const BlockDfg& dfg, const power::TechLibrary& lib) {
  const UnconstrainedSchedule asap = AsapSchedule(dfg, lib);
  UnconstrainedSchedule s;
  s.makespan = asap.makespan;
  s.step.assign(dfg.size(), 0);
  // Reverse topological sweep: latest finish bounded by successors'
  // latest starts (or the makespan for sinks).
  for (std::size_t n = dfg.size(); n-- > 0;) {
    const std::uint32_t lat = static_cast<std::uint32_t>(MinLatency(dfg.nodes[n].op, lib));
    std::uint32_t latest_finish = s.makespan;
    for (std::size_t succ : dfg.nodes[n].succs) {
      latest_finish = std::min(latest_finish, s.step[succ]);
    }
    LOPASS_CHECK(latest_finish >= lat, "ALAP underflow — inconsistent critical path");
    s.step[n] = latest_finish - lat;
  }
  return s;
}

std::vector<std::uint32_t> Mobility(const BlockDfg& dfg, const power::TechLibrary& lib) {
  const UnconstrainedSchedule asap = AsapSchedule(dfg, lib);
  const UnconstrainedSchedule alap = AlapSchedule(dfg, lib);
  std::vector<std::uint32_t> m(dfg.size(), 0);
  for (std::size_t n = 0; n < dfg.size(); ++n) {
    LOPASS_CHECK(alap.step[n] >= asap.step[n], "negative mobility");
    m[n] = alap.step[n] - asap.step[n];
  }
  return m;
}

}  // namespace lopass::sched
