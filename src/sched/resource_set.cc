#include "sched/resource_set.h"

namespace lopass::sched {

using power::ResourceType;

double ResourceSet::BudgetGeq(const power::TechLibrary& lib) const {
  double geq = 0.0;
  for (int t = 0; t < power::kNumResourceTypes; ++t) {
    geq += count[static_cast<std::size_t>(t)] *
           lib.spec(static_cast<ResourceType>(t)).geq;
  }
  return geq;
}

std::vector<ResourceType> CandidateResources(ir::Opcode op) {
  using ir::Opcode;
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kNeg:
      // An adder is smaller than a full ALU; prefer it.
      return {ResourceType::kAdder, ResourceType::kAlu};
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kNot:
    case Opcode::kMin:
    case Opcode::kMax:
      return {ResourceType::kAlu};
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpGt:
    case Opcode::kCmpGe:
      // A comparison is a subtraction plus flag logic: it can execute
      // on a dedicated comparator, a plain adder, or the ALU.
      return {ResourceType::kComparator, ResourceType::kAdder, ResourceType::kAlu};
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSar:
      return {ResourceType::kShifter};
    case Opcode::kMul:
      return {ResourceType::kMultiplier};
    case Opcode::kDiv:
    case Opcode::kMod:
      return {ResourceType::kDivider};
    case Opcode::kLoadElem:
    case Opcode::kStoreElem:
      return {ResourceType::kMemoryPort};
    case Opcode::kConst:
    case Opcode::kMov:
    case Opcode::kReadVar:
    case Opcode::kWriteVar:
      // Register transfers are contracted out of the DFG (see
      // sched/dfg.h); they never reach the scheduler.
      return {};
    case Opcode::kCall:
    case Opcode::kRet:
    case Opcode::kBr:
    case Opcode::kCondBr:
      return {};
  }
  return {};
}

std::vector<ResourceSet> DefaultDesignerSets() {
  // Deliberately lean budgets: one instance of each needed type keeps
  // per-instance utilization — and therefore U_R^core — high, which is
  // the premise of the whole approach (§3.1). Wider sets trade
  // utilization for speed and mostly lose on the objective function.
  std::vector<ResourceSet> sets;

  ResourceSet tiny;
  tiny.name = "rs-tiny";
  tiny.set(ResourceType::kAlu, 1)
      .set(ResourceType::kAdder, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMemoryPort, 1);
  sets.push_back(tiny);

  ResourceSet small;
  small.name = "rs-small";
  small.set(ResourceType::kAlu, 1)
      .set(ResourceType::kAdder, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMultiplier, 1)
      .set(ResourceType::kMemoryPort, 1);
  sets.push_back(small);

  ResourceSet medium;
  medium.name = "rs-medium";
  medium.set(ResourceType::kAlu, 1)
      .set(ResourceType::kAdder, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMultiplier, 1)
      .set(ResourceType::kDivider, 1)
      .set(ResourceType::kMemoryPort, 1);
  sets.push_back(medium);

  ResourceSet large;
  large.name = "rs-large";
  large.set(ResourceType::kAlu, 2)
      .set(ResourceType::kAdder, 2)
      .set(ResourceType::kComparator, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMultiplier, 2)
      .set(ResourceType::kDivider, 1)
      .set(ResourceType::kMemoryPort, 2);
  sets.push_back(large);

  return sets;
}

}  // namespace lopass::sched
