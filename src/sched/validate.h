#pragma once

// Post-scheduling validators (L4xx) — independent re-checks that a
// schedule produced by the list scheduler or the force-directed
// scheduler respects the DFG's precedence constraints and never
// oversubscribes the designer's resource set in any control step.
//
// Run from the partitioner when PartitionOptions::self_check is on and
// from the `lopass lint` driver. Findings accumulate in the sink; the
// validators never throw on a bad schedule.

#include <string>

#include "common/diag.h"
#include "sched/force_directed.h"
#include "sched/list_scheduler.h"

namespace lopass::sched {

// Validates a list schedule of `dfg` under resource set `rs`:
//  - every DFG node scheduled exactly once, indices in range   (L400)
//  - each edge p->n starts n after p finishes, or shares p's
//    step via legal operator chaining when enabled             (L401)
//  - per-type occupancy over [step, step+latency) never
//    exceeds rs (chained ops still claim their own instance)   (L402)
//  - num_steps equals the makespan (max finish step; >= 1 for
//    nonempty DFGs, 0 for empty ones)                          (L403)
//  - op latency/type match the library spec and the op's
//    candidate-resource list                                   (L404)
//
// `where` prefixes every message (e.g. "cluster 3, block 7").
// Returns true when this call added no finding.
bool ValidateSchedule(const BlockDfg& dfg, const BlockSchedule& sched,
                      const ResourceSet& rs, const power::TechLibrary& lib,
                      DiagnosticSink& sink, bool chaining_enabled = false,
                      const std::string& where = {});

// Validates a force-directed schedule (L405): makespan within the
// latency budget, precedence respected (FDS never chains), and the
// reported per-type allocation covering the actual peak concurrency.
bool ValidateFdsSchedule(const BlockDfg& dfg, const FdsSchedule& sched,
                         const power::TechLibrary& lib, DiagnosticSink& sink,
                         const std::string& where = {});

}  // namespace lopass::sched
