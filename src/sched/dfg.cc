#include "sched/dfg.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"

namespace lopass::sched {

using ir::Opcode;

bool IsRegisterTransfer(ir::Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kMov:
    case Opcode::kReadVar:
    case Opcode::kWriteVar:
      return true;
    default:
      return false;
  }
}

BlockDfg BuildBlockDfg(const ir::BasicBlock& block) {
  const std::size_t n = block.instrs.size();

  // Determines whether instruction i becomes a DFG node.
  auto is_node = [&](std::size_t i) {
    const ir::Instr& in = block.instrs[i];
    return !ir::IsTerminator(in.op) && !IsRegisterTransfer(in.op);
  };

  // effective_sources[i]: the DFG-visible producers instruction i
  // forwards (for register-transfer instrs) or depends on (for nodes).
  // Computed in program order; register-transfer instructions are
  // contracted by inheriting their producers' effective sources.
  std::vector<std::vector<std::size_t>> fwd(n);  // instr -> producing instr indices
  std::unordered_map<ir::VregId, std::size_t> def_of;       // vreg -> instr
  std::unordered_map<ir::SymbolId, std::size_t> var_value;  // scalar -> producing instr
  std::unordered_map<ir::SymbolId, std::size_t> last_array_store;
  std::unordered_map<ir::SymbolId, std::vector<std::size_t>> array_loads_since_store;

  // Resolves one producing instruction to DFG-visible sources.
  auto sources_of_instr = [&](std::size_t p, std::vector<std::size_t>& out) {
    if (is_node(p)) {
      out.push_back(p);
    } else {
      out.insert(out.end(), fwd[p].begin(), fwd[p].end());
    }
  };

  BlockDfg g;
  std::vector<int> node_of(n, -1);
  std::vector<std::vector<std::size_t>> node_srcs(n);

  for (std::size_t i = 0; i < n; ++i) {
    const ir::Instr& in = block.instrs[i];
    std::vector<std::size_t> srcs;
    for (const ir::Operand& a : in.args) {
      if (!a.is_vreg()) continue;
      auto it = def_of.find(a.vreg);
      if (it != def_of.end()) sources_of_instr(it->second, srcs);
    }
    if (in.op == Opcode::kReadVar) {
      // Value written earlier in this block flows through.
      auto it = var_value.find(in.sym);
      if (it != var_value.end()) sources_of_instr(it->second, srcs);
    }
    if (in.op == Opcode::kWriteVar && !in.args.empty() && in.args[0].is_imm()) {
      // Immediate store: no producers.
    }

    if (IsRegisterTransfer(in.op)) {
      // Contracted: remember what it forwards.
      std::sort(srcs.begin(), srcs.end());
      srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
      fwd[i] = srcs;
      if (in.op == Opcode::kWriteVar) var_value[in.sym] = i;
      if (in.result != ir::kNoVreg) def_of[in.result] = i;
      continue;
    }
    if (ir::IsTerminator(in.op)) continue;

    // Array ordering dependencies (memory-port ops stay scheduled).
    if (in.op == Opcode::kLoadElem) {
      auto it = last_array_store.find(in.sym);
      if (it != last_array_store.end()) srcs.push_back(it->second);
      array_loads_since_store[in.sym].push_back(i);
    } else if (in.op == Opcode::kStoreElem) {
      auto it = last_array_store.find(in.sym);
      if (it != last_array_store.end()) srcs.push_back(it->second);
      for (std::size_t ln : array_loads_since_store[in.sym]) srcs.push_back(ln);
      array_loads_since_store[in.sym].clear();
      last_array_store[in.sym] = i;
    }

    std::sort(srcs.begin(), srcs.end());
    srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());

    DfgNode node;
    node.instr_index = i;
    node.op = in.op;
    node_of[i] = static_cast<int>(g.nodes.size());
    node_srcs[i] = std::move(srcs);
    g.nodes.push_back(std::move(node));
    if (in.result != ir::kNoVreg) def_of[in.result] = i;
  }

  // Wire edges.
  for (std::size_t i = 0; i < n; ++i) {
    if (node_of[i] < 0) continue;
    const std::size_t to = static_cast<std::size_t>(node_of[i]);
    for (std::size_t src : node_srcs[i]) {
      LOPASS_CHECK(node_of[src] >= 0, "DFG source is not a node");
      const std::size_t from = static_cast<std::size_t>(node_of[src]);
      if (from == to) continue;
      auto& succs = g.nodes[from].succs;
      if (std::find(succs.begin(), succs.end(), to) != succs.end()) continue;
      succs.push_back(to);
      g.nodes[to].preds.push_back(from);
    }
  }

  // Longest path to sink (scheduling priority), reverse topological
  // sweep — node order is program order, all edges point forward.
  for (std::size_t k = g.nodes.size(); k-- > 0;) {
    int d = 0;
    for (std::size_t s : g.nodes[k].succs) d = std::max(d, g.nodes[s].depth + 1);
    g.nodes[k].depth = d;
  }
  return g;
}

}  // namespace lopass::sched
