#pragma once

// Designer-specified resource sets.
//
// Fig. 1 line 7 iterates over "all sets of resources where the set of
// different resource sets RS is specified by the designer. The designer
// tells the partitioning algorithm how much hardware (#ALUs,
// #multipliers, #shifters, ...) they are willing to spend"; "due to our
// design praxis 3 to 5 sets are given". DefaultDesignerSets() provides
// such reference sets; applications may supply their own.

#include <array>
#include <string>
#include <vector>

#include "ir/opcode.h"
#include "power/tech_library.h"

namespace lopass::sched {

// Maximum number of instances of each resource type the designer is
// willing to spend on one ASIC core.
struct ResourceSet {
  std::string name;
  std::array<int, power::kNumResourceTypes> count{};

  int of(power::ResourceType t) const { return count[static_cast<std::size_t>(t)]; }
  ResourceSet& set(power::ResourceType t, int n) {
    count[static_cast<std::size_t>(t)] = n;
    return *this;
  }
  // Total gate-equivalents if the full budget were instantiated.
  double BudgetGeq(const power::TechLibrary& lib) const;
};

// The resource types able to execute an IR operation, sorted by
// increasing size ("sorted according to the increasing size of a
// resource", Fig. 4 line 5) so that the smallest / most energy
// efficient candidate is preferred. Terminators and calls return an
// empty list (handled by the controller / not HW-mappable).
std::vector<power::ResourceType> CandidateResources(ir::Opcode op);

// 4 reference sets modeled after past designs, small to large.
std::vector<ResourceSet> DefaultDesignerSets();

}  // namespace lopass::sched
