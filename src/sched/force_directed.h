#pragma once

// Force-directed scheduling (Paulin & Knight, 1989).
//
// The classic *time-constrained* counterpart of the paper's
// resource-constrained list scheduler: given a latency budget, place
// every operation in the control step that best balances the expected
// concurrency ("distribution graph") of its resource type, thereby
// minimizing the number of functional-unit instances needed. Used here
// as an allocation estimator — bench_ablation_fds asks whether the
// designer resource sets the paper's flow relies on could have been
// derived automatically at the list schedule's latency.

#include <array>
#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "power/tech_library.h"
#include "sched/dfg.h"

namespace lopass::sched {

struct FdsSchedule {
  // Start step per DFG node.
  std::vector<std::uint32_t> step;
  // Resource type each op was mapped to (its smallest candidate).
  std::vector<power::ResourceType> type;
  std::uint32_t latency = 0;  // the budget actually used (makespan <= latency)
  // Peak concurrency per resource type = the implied allocation.
  std::array<int, power::kNumResourceTypes> allocation{};

  int total_units() const {
    int n = 0;
    for (int c : allocation) n += c;
    return n;
  }
};

// Schedules `dfg` within `latency` control steps (0 = use the critical
// path length). Throws if the budget is below the critical path. A
// non-null `cancel` token is polled in the inner loops (every frame
// tightening pass and every placement round) and aborts the schedule
// with CancelledError once it fires.
FdsSchedule ForceDirectedSchedule(const BlockDfg& dfg, const power::TechLibrary& lib,
                                  std::uint32_t latency = 0,
                                  const CancelToken* cancel = nullptr);

}  // namespace lopass::sched
