#include "common/error.h"

#include <sstream>

namespace lopass {

void ThrowError(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " (" << file << ":" << line << ")";
  throw Error(os.str());
}

namespace internal {

std::string FormatCheckMessage(const char* file, int line, const char* expr,
                               const std::string& detail) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr;
  if (!detail.empty()) os << " — " << detail;
  os << " (" << file << ":" << line << ")";
  return os.str();
}

}  // namespace internal
}  // namespace lopass
