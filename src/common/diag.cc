#include "common/diag.h"

#include <sstream>

namespace lopass {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityName(severity);
  if (!code.empty()) os << '[' << code << ']';
  if (loc.valid()) {
    os << ' ' << loc.line << ':' << loc.col;
  }
  os << ": " << message;
  return os.str();
}

void DiagnosticSink::Add(Diagnostic d) {
  if (d.severity == Severity::kError) ++error_count_;
  if (diagnostics_.size() >= max_diagnostics_) {
    ++dropped_;
    return;
  }
  diagnostics_.push_back(std::move(d));
}

void DiagnosticSink::AddError(std::string code, std::string message, SourceLoc loc) {
  Add(Diagnostic{Severity::kError, std::move(code), loc, std::move(message)});
}

void DiagnosticSink::AddWarning(std::string code, std::string message, SourceLoc loc) {
  Add(Diagnostic{Severity::kWarning, std::move(code), loc, std::move(message)});
}

void DiagnosticSink::AddNote(std::string code, std::string message, SourceLoc loc) {
  Add(Diagnostic{Severity::kNote, std::move(code), loc, std::move(message)});
}

void DiagnosticSink::clear() {
  diagnostics_.clear();
  error_count_ = 0;
  dropped_ = 0;
}

std::string DiagnosticSink::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    if (i) os << '\n';
    os << diagnostics_[i].ToString();
  }
  if (dropped_ > 0) {
    if (!diagnostics_.empty()) os << '\n';
    os << "note: " << dropped_ << " further diagnostic(s) suppressed";
  }
  return os.str();
}

std::vector<Diagnostic> DiagnosticSink::Take() {
  std::vector<Diagnostic> out = std::move(diagnostics_);
  clear();
  return out;
}

std::string JoinDiagnostics(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (i) os << '\n';
    os << diags[i].ToString();
  }
  if (diags.empty()) os << "operation failed (no diagnostics)";
  return os.str();
}

}  // namespace lopass
