#pragma once

// Cooperative cancellation with wall-clock deadlines.
//
// A CancelToken is the handle the exploration runner (src/runner) hands
// to a long-running pipeline stage: the owner arms it with Cancel() or
// a deadline, and the stage polls Check() at its loop heads — the list
// scheduler per control step, the force-directed scheduler per
// tightening pass, the partitioner between stages and candidates. An
// expired token throws CancelledError, which derives from Error so it
// rides the existing per-cluster isolation and CLI error paths; drivers
// that must distinguish "took too long" from "went wrong" catch the
// subclass.
//
// Polling is cheap (one relaxed atomic load; a steady_clock read only
// when a deadline is set), so a stage may check every iteration without
// measurable cost. A default-constructed token never fires, and every
// threaded-through call site accepts nullptr meaning "not cancellable",
// so non-runner callers pay nothing.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace lopass {

// Thrown by CancelToken::Check once the token is cancelled or its
// deadline has passed. Deliberately *not* a transient fault: the same
// job would hit the same deadline again, so retrying is wasted work —
// the runner's circuit breaker degrades the job instead.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  // Arms the token unconditionally (idempotent, thread-safe).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  // Arms the token to fire once `ms` of wall-clock time have elapsed
  // from now. Zero or negative disables the deadline.
  void SetDeadlineAfterMs(std::int64_t ms) {
    if (ms <= 0) {
      has_deadline_.store(false, std::memory_order_relaxed);
      return;
    }
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            (Clock::now() + std::chrono::milliseconds(ms)).time_since_epoch())
            .count(),
        std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_relaxed);
  }

  // Disarms flag and deadline so the token can be reused for the next
  // job (the runner keeps one token per sweep).
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    has_deadline_.store(false, std::memory_order_relaxed);
  }

  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_.load(std::memory_order_relaxed)) return false;
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count();
    return now_ns >= deadline_ns_.load(std::memory_order_relaxed);
  }

  // Throws CancelledError naming `where` (e.g. "list schedule") if the
  // token has fired. The message is what lands in diagnostics, so keep
  // the site names human-readable.
  void Check(const char* where) const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<std::int64_t> deadline_ns_{0};
};

// Convenience for call sites holding a possibly-null token pointer.
inline void CheckCancel(const CancelToken* token, const char* where) {
  if (token != nullptr) token->Check(where);
}

}  // namespace lopass
