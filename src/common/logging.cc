#include "common/logging.h"

#include <atomic>

namespace lopass {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

}  // namespace lopass
