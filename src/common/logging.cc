#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>

namespace lopass {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::once_flag g_env_once;

void ApplyEnvOnce() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("LOPASS_LOG");
    if (env != nullptr && *env != '\0') {
      g_level.store(LogLevelFromString(env, g_level.load(std::memory_order_relaxed)),
                    std::memory_order_relaxed);
    }
  });
}

}  // namespace

LogLevel GetLogLevel() {
  ApplyEnvOnce();
  return g_level.load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  ApplyEnvOnce();  // an explicit Set must not be overwritten by a later env read
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel LogLevelFromString(std::string_view name, LogLevel fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "silent") return LogLevel::kOff;
  return fallback;
}

}  // namespace lopass
