#include "common/fault.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace lopass::fault {

namespace {

struct Arm {
  // 0 = fire on every hit; otherwise fire only on this 1-based hit.
  std::uint64_t nth = 0;
  bool fired = false;
};

struct State {
  std::mutex mu;
  std::string spec;
  std::unordered_map<std::string, Arm> arms;
  std::unordered_map<std::string, std::uint64_t> hits;
};

State& GetState() {
  static State* s = new State();
  return *s;
}

std::atomic<bool> g_enabled{false};
std::once_flag g_env_once;

// Parses "site[:N],site[:N],..." into the arm table. Malformed entries
// are ignored (fault injection must never take the process down).
void InstallLocked(State& st, const std::string& spec) {
  st.spec = spec;
  st.arms.clear();
  st.hits.clear();
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    Arm arm;
    std::string site = entry;
    const auto colon = entry.find(':');
    if (colon != std::string::npos) {
      site = entry.substr(0, colon);
      const std::string nth = entry.substr(colon + 1);
      char* end = nullptr;
      const unsigned long long v = std::strtoull(nth.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v == 0) continue;
      arm.nth = v;
    }
    if (site.empty()) continue;
    st.arms[site] = arm;
  }
  g_enabled.store(!st.arms.empty(), std::memory_order_release);
}

void EnsureEnvLoaded() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("LOPASS_FAULT_INJECT");
    if (env != nullptr && *env != '\0') {
      State& st = GetState();
      std::lock_guard<std::mutex> lock(st.mu);
      InstallLocked(st, env);
    }
  });
}

}  // namespace

bool Enabled() {
  EnsureEnvLoaded();
  return g_enabled.load(std::memory_order_acquire);
}

std::string CurrentSpec() {
  EnsureEnvLoaded();
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.spec;
}

bool IsTransient(const std::exception& e) {
  return dynamic_cast<const InjectedFault*>(&e) != nullptr;
}

bool IsTransientMessage(const std::string& message) {
  return message.find("injected fault at site") != std::string::npos;
}

void MaybeInject(const char* site) {
  EnsureEnvLoaded();
  if (!g_enabled.load(std::memory_order_acquire)) return;
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  const std::uint64_t hit = ++st.hits[site];
  auto it = st.arms.find(site);
  if (it == st.arms.end()) return;
  Arm& arm = it->second;
  if (arm.nth != 0 && (arm.fired || hit != arm.nth)) return;
  arm.fired = true;
  std::ostringstream os;
  os << "injected fault at site '" << site << "' (hit " << hit << ")";
  throw InjectedFault(os.str());
}

void SetSpec(const std::string& spec) {
  EnsureEnvLoaded();  // so a later ReloadFromEnv is well-defined
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  InstallLocked(st, spec);
}

void ReloadFromEnv() {
  const char* env = std::getenv("LOPASS_FAULT_INJECT");
  SetSpec(env != nullptr ? env : "");
}

std::uint64_t HitCount(const char* site) {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.hits.find(site);
  return it == st.hits.end() ? 0 : it->second;
}

ScopedSpec::ScopedSpec(const std::string& spec) {
  EnsureEnvLoaded();
  {
    State& st = GetState();
    std::lock_guard<std::mutex> lock(st.mu);
    previous_ = st.spec;
  }
  SetSpec(spec);
}

ScopedSpec::~ScopedSpec() { SetSpec(previous_); }

}  // namespace lopass::fault
