#include "common/fault.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/prng.h"

namespace lopass::fault {

namespace {

struct Arm {
  // 0 = fire on every hit; otherwise fire only on this 1-based hit.
  std::uint64_t nth = 0;
  bool fired = false;
};

// One spec's worth of arms and counters. The global table is shared
// (mutex-protected); a JobScope owns a private, thread-local one.
struct SiteTable {
  std::string spec;
  std::unordered_map<std::string, Arm> arms;
  std::unordered_map<std::string, std::uint64_t> hits;
};

struct GlobalState {
  std::mutex mu;
  SiteTable table;
};

GlobalState& GetState() {
  static GlobalState* s = new GlobalState();
  return *s;
}

std::atomic<bool> g_enabled{false};
std::once_flag g_env_once;

// Parses "site[:N],site[:N],..." into a fresh table. Malformed entries
// are ignored (fault injection must never take the process down).
void InstallInto(SiteTable& table, const std::string& spec) {
  table.spec = spec;
  table.arms.clear();
  table.hits.clear();
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    Arm arm;
    std::string site = entry;
    const auto colon = entry.find(':');
    if (colon != std::string::npos) {
      site = entry.substr(0, colon);
      const std::string nth = entry.substr(colon + 1);
      char* end = nullptr;
      const unsigned long long v = std::strtoull(nth.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v == 0) continue;
      arm.nth = v;
    }
    if (site.empty()) continue;
    table.arms[site] = arm;
  }
}

// Records the hit and throws if `site` is armed for it. The caller
// owns whatever synchronization the table needs.
void InjectFrom(SiteTable& table, const char* site) {
  const std::uint64_t hit = ++table.hits[site];
  auto it = table.arms.find(site);
  if (it == table.arms.end()) return;
  Arm& arm = it->second;
  if (arm.nth != 0 && (arm.fired || hit != arm.nth)) return;
  arm.fired = true;
  std::ostringstream os;
  os << "injected fault at site '" << site << "' (hit " << hit << ")";
  throw InjectedFault(os.str());
}

void EnsureEnvLoaded() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("LOPASS_FAULT_INJECT");
    if (env != nullptr && *env != '\0') {
      GlobalState& st = GetState();
      std::lock_guard<std::mutex> lock(st.mu);
      InstallInto(st.table, env);
      g_enabled.store(!st.table.arms.empty(), std::memory_order_release);
    }
  });
}

}  // namespace

// The active thread-local scope, if any (innermost when nested). Plain
// pointer: each thread reads and writes only its own copy.
struct JobScope::State {
  SiteTable table;
  State* previous = nullptr;
};

namespace {
thread_local JobScope::State* t_scope = nullptr;
}  // namespace

bool Enabled() {
  if (const JobScope::State* sc = t_scope) return !sc->table.arms.empty();
  EnsureEnvLoaded();
  return g_enabled.load(std::memory_order_acquire);
}

std::string CurrentSpec() {
  if (const JobScope::State* sc = t_scope) return sc->table.spec;
  EnsureEnvLoaded();
  GlobalState& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.table.spec;
}

bool IsTransient(const std::exception& e) {
  return dynamic_cast<const InjectedFault*>(&e) != nullptr;
}

bool IsTransientMessage(const std::string& message) {
  return message.find("injected fault at site") != std::string::npos;
}

void MaybeInject(const char* site) {
  if (JobScope::State* sc = t_scope) {
    InjectFrom(sc->table, site);  // thread-local: no lock needed
    return;
  }
  EnsureEnvLoaded();
  if (!g_enabled.load(std::memory_order_acquire)) return;
  GlobalState& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  InjectFrom(st.table, site);
}

void SetSpec(const std::string& spec) {
  EnsureEnvLoaded();  // so a later ReloadFromEnv is well-defined
  GlobalState& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  InstallInto(st.table, spec);
  g_enabled.store(!st.table.arms.empty(), std::memory_order_release);
}

void ReloadFromEnv() {
  const char* env = std::getenv("LOPASS_FAULT_INJECT");
  SetSpec(env != nullptr ? env : "");
}

std::uint64_t HitCount(const char* site) {
  if (const JobScope::State* sc = t_scope) {
    auto it = sc->table.hits.find(site);
    return it == sc->table.hits.end() ? 0 : it->second;
  }
  GlobalState& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.table.hits.find(site);
  return it == st.table.hits.end() ? 0 : it->second;
}

std::string ChaosSchedule(std::uint64_t seed, std::string_view job_key,
                          const std::vector<std::string_view>& sites) {
  if (sites.empty()) return "";
  // FNV-1a folds the job key into the seed, so the schedule is a pure
  // function of (seed, key) — the shard-layout invariance the contract
  // in the header promises.
  std::uint64_t h = 14695981039346656037ull;
  for (const char ch : job_key) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  Prng rng(seed ^ h);
  const int arms = 1 + static_cast<int>(rng.next_below(2));
  std::string spec;
  for (int i = 0; i < arms; ++i) {
    const std::string_view site = sites[rng.next_below(sites.size())];
    const std::uint64_t hit = 1 + rng.next_below(3);
    if (!spec.empty()) spec += ",";
    spec += std::string(site) + ":" + std::to_string(hit);
  }
  return spec;
}

ScopedSpec::ScopedSpec(const std::string& spec) {
  EnsureEnvLoaded();
  {
    GlobalState& st = GetState();
    std::lock_guard<std::mutex> lock(st.mu);
    previous_ = st.table.spec;
  }
  SetSpec(spec);
}

ScopedSpec::~ScopedSpec() { SetSpec(previous_); }

JobScope::JobScope(const std::string& spec) : state_(new State()) {
  InstallInto(state_->table, spec);
  state_->previous = t_scope;
  t_scope = state_.get();
}

JobScope::~JobScope() { t_scope = state_->previous; }

}  // namespace lopass::fault
