#pragma once

// Very small leveled logger. The partitioner emits progress at Info
// level; noisy per-cluster detail goes to Debug. Tests run silent by
// default. The LOPASS_LOG environment variable
// (debug|info|warning|error|off) sets the initial threshold; an
// explicit SetLogLevel() afterwards wins. kError messages are always
// emitted regardless of the threshold — raising the level silences
// progress chatter, never failure reports.

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace lopass {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global log threshold; messages below it are dropped. The first call
// applies LOPASS_LOG from the environment, if set.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// "debug"/"info"/"warning" (or "warn")/"error"/"off", case-insensitive;
// anything else returns `fallback`.
LogLevel LogLevelFromString(std::string_view name, LogLevel fallback);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* tag) : level_(level) {
    stream_ << '[' << tag << "] ";
  }
  ~LogMessage() {
    if (level_ == LogLevel::kError || level_ >= GetLogLevel()) {
      std::cerr << stream_.str() << std::endl;
    }
  }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace lopass

#define LOPASS_LOG_DEBUG ::lopass::internal::LogMessage(::lopass::LogLevel::kDebug, "debug").stream()
#define LOPASS_LOG_INFO ::lopass::internal::LogMessage(::lopass::LogLevel::kInfo, "info").stream()
#define LOPASS_LOG_WARN ::lopass::internal::LogMessage(::lopass::LogLevel::kWarning, "warn").stream()
#define LOPASS_LOG_ERROR ::lopass::internal::LogMessage(::lopass::LogLevel::kError, "error").stream()
