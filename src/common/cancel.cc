#include "common/cancel.h"

namespace lopass {

void CancelToken::Check(const char* where) const {
  if (!cancelled()) return;
  const bool flagged = cancelled_.load(std::memory_order_relaxed);
  throw CancelledError(std::string(flagged ? "cancelled" : "deadline exceeded") +
                       " in " + where);
}

}  // namespace lopass
