#pragma once

// Deterministic pseudo-random number generator used by workload
// generators and the switching-activity model. A fixed, seedable
// xoshiro256** keeps experiment outputs reproducible across platforms
// (std::mt19937 would work too, but distributions are not portable).

#include <cstdint>

namespace lopass {

class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  // Uniform in [lo, hi] (inclusive).
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace lopass
