#pragma once

// Deterministic fault injection for robustness testing.
//
// The pipeline is instrumented with named sites (parse, alloc, profile,
// sim, schedule, synth, estimate); each calls fault::MaybeInject(site)
// on entry. When the LOPASS_FAULT_INJECT environment variable — or a
// programmatic spec installed with SetSpec()/ScopedSpec — arms a site,
// the call throws InjectedFault, which travels the same error paths a
// real failure would. Tests and the CLI fault-check harness use this to
// prove every stage degrades gracefully (diagnostic + fallback or a
// clean nonzero exit), never crashes or hangs.
//
// Spec grammar (comma-separated):
//   site        fire on every hit of `site`
//   site:N      fire only on the N-th hit (1-based), then disarm
// e.g. LOPASS_FAULT_INJECT=schedule        — every list schedule fails
//      LOPASS_FAULT_INJECT=synth:1,sim:3   — first synthesis and third
//                                            simulator run fail
//
// With no spec installed MaybeInject is a single relaxed atomic load.
//
// Concurrency: the global spec (SetSpec / LOPASS_FAULT_INJECT) and its
// hit counters are shared, mutex-protected state — safe to hit from
// any thread, but one-shot `site:N` arms are then consumed in whatever
// order threads reach them. Parallel drivers that need per-job
// determinism install a JobScope instead: a thread-local arm table and
// counter set that shadows the global spec on that thread only, so two
// concurrent jobs can never observe (or consume) each other's faults.

#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace lopass {

// Thrown by an armed fault site. Derives from Error so existing
// recovery paths treat it like any other failure, but stays
// distinguishable so the partitioner can report it at error severity
// instead of folding it into routine infeasibility.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

namespace fault {

// True if any site is armed (cheap; callers need not pre-check).
bool Enabled();

// The currently installed spec ("" when nothing is armed). Drivers
// record it next to their results so any failure report names the
// exact injection schedule that produced it.
std::string CurrentSpec();

// Transient-fault classification for retry policies. An InjectedFault
// models the transient class (a glitch that may not recur on retry);
// a CancelledError (deadline) or any other Error is permanent — the
// same input would fail the same way, so retrying wastes the budget.
bool IsTransient(const std::exception& e);

// Message-level variant for failures that were already flattened into
// a Diagnostic by an isolation layer (the partitioner stringifies the
// exception it caught). Matches the stable "injected fault at site"
// marker MaybeInject puts into every InjectedFault message.
bool IsTransientMessage(const std::string& message);

// Throws InjectedFault if `site` is armed for this hit. Every call
// increments the site's hit counter, armed or not.
void MaybeInject(const char* site);

// Installs a spec (see grammar above); empty string disarms everything
// and resets hit counters.
void SetSpec(const std::string& spec);

// Re-reads LOPASS_FAULT_INJECT (the env var is also read automatically
// on first use).
void ReloadFromEnv();

// Hits recorded for `site` since the last SetSpec/ReloadFromEnv.
std::uint64_t HitCount(const char* site);

// Derives one job's randomized chaos fault schedule: one or two
// one-shot `site:N` arms drawn from `sites`, in the spec grammar above.
// The draw depends on (seed, job_key) alone — never on process
// identity, shard layout, worker count, or evaluation order — so a
// chaos sweep composes deterministically with in-process parallelism
// (`explore --jobs N`) and process-level sharding (`explore --shard
// I/M`): every way of draining the same queue injects the same faults
// into the same jobs. One-shot arms are essential to the runners'
// convergence contract: the fault fires on a job's first attempt and is
// disarmed (inside that job's JobScope) before the retry, so a
// supervised chaos sweep must reproduce the clean run's exact report.
std::string ChaosSchedule(std::uint64_t seed, std::string_view job_key,
                          const std::vector<std::string_view>& sites);

// RAII spec installation for tests; restores the previous spec.
// Global: every thread sees it, and counters are shared.
class ScopedSpec {
 public:
  explicit ScopedSpec(const std::string& spec);
  ~ScopedSpec();
  ScopedSpec(const ScopedSpec&) = delete;
  ScopedSpec& operator=(const ScopedSpec&) = delete;

 private:
  std::string previous_;
};

// RAII thread-local fault scope for one parallel job. While alive,
// MaybeInject / CurrentSpec / Enabled / HitCount on the constructing
// thread use this scope's own arm table and hit counters exclusively;
// the global spec and every other thread are untouched. One-shot
// `site:N` arms therefore fire per job, never across jobs — the
// property the parallel exploration runner's chaos mode depends on.
// Scopes nest (the destructor restores the previous scope) and must be
// created and destroyed on the same thread. SetSpec/ReloadFromEnv keep
// addressing the global table even while a scope is active.
class JobScope {
 public:
  explicit JobScope(const std::string& spec);
  ~JobScope();
  JobScope(const JobScope&) = delete;
  JobScope& operator=(const JobScope&) = delete;

  struct State;  // opaque; defined in fault.cc

 private:
  std::unique_ptr<State> state_;
};

}  // namespace fault
}  // namespace lopass
