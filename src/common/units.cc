#include "common/units.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace lopass {

bool EnergyIsSane(Energy e) { return std::isfinite(e.joules); }

void CheckEnergySane(Energy e, const char* what) {
  if (!EnergyIsSane(e)) {
    LOPASS_THROW(std::string(what) +
                 " produced a non-finite energy value (model misconfiguration "
                 "or overflowing accumulation)");
  }
}

std::string FormatEnergy(Energy e) {
  const double j = e.joules;
  const double a = std::fabs(j);
  char buf[64];
  if (a == 0.0) {
    std::snprintf(buf, sizeof buf, "0.0");
  } else if (a >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3fJ", j);
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3fmJ", j * 1e3);
  } else if (a >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3fuJ", j * 1e6);
  } else if (a >= 1e-9) {
    std::snprintf(buf, sizeof buf, "%.3fnJ", j * 1e9);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fpJ", j * 1e12);
  }
  return buf;
}

std::string FormatPercent(double percent) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.2f", percent);
  return buf;
}

}  // namespace lopass
