#pragma once

// Minimal ASCII table printer used by the benchmark harness to emit
// paper-style tables (Table 1, Fig. 6 series, ablation sweeps).

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace lopass {

class TextTable {
 public:
  // Sets the header row. Column count is fixed by this call.
  void set_header(std::vector<std::string> cells);

  // Appends a data row; must match the header's column count.
  void add_row(std::vector<std::string> cells);

  // Appends a horizontal separator line.
  void add_separator();

  // Renders with column-aligned padding and | separators.
  std::string ToString() const;

  void Print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace lopass
