#pragma once

// Error handling for lopass.
//
// The library throws lopass::Error for all user-facing failures (parse
// errors, malformed IR, invalid configuration). LOPASS_CHECK is used
// for internal invariants whose violation indicates a bug in lopass
// itself; it also throws (rather than aborting) so tests can assert on
// invariant violations.

#include <stdexcept>
#include <string>

namespace lopass {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void ThrowError(const char* file, int line, const std::string& msg);

namespace internal {
std::string FormatCheckMessage(const char* file, int line, const char* expr,
                               const std::string& detail);
}  // namespace internal

}  // namespace lopass

// Internal invariant check. Example:
//   LOPASS_CHECK(idx < blocks_.size(), "block index out of range");
#define LOPASS_CHECK(cond, detail)                                             \
  do {                                                                          \
    if (!(cond)) {                                                              \
      throw ::lopass::Error(::lopass::internal::FormatCheckMessage(             \
          __FILE__, __LINE__, #cond, (detail)));                                \
    }                                                                           \
  } while (0)

// User-facing error with formatted message.
#define LOPASS_THROW(msg) ::lopass::ThrowError(__FILE__, __LINE__, (msg))
