#include "common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace lopass {

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  LOPASS_CHECK(header_.empty() || cells.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::ToString() const {
  const std::size_t ncol = header_.size();
  std::vector<std::size_t> width(ncol, 0);
  for (std::size_t c = 0; c < ncol; ++c) width[c] = header_[c].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }

  auto emit_sep = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t c = 0; c < ncol; ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < ncol; ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << ' ' << s << std::string(width[c] - s.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_sep(os);
  if (!header_.empty()) {
    emit_row(os, header_);
    emit_sep(os);
  }
  for (const Row& r : rows_) {
    if (r.separator) {
      emit_sep(os);
    } else {
      emit_row(os, r.cells);
    }
  }
  emit_sep(os);
  return os.str();
}

void TextTable::Print(std::ostream& os) const { os << ToString(); }

}  // namespace lopass
