#pragma once

// Physical unit helpers used throughout lopass.
//
// Energies are carried as plain doubles in joules, times in seconds and
// cycle counts as unsigned 64-bit integers. The strong-typedef wrappers
// below exist for the public API surface where confusing joules with
// watts (or ns with s) would be an easy mistake; internally, models may
// work on the raw doubles.

#include <cstdint>
#include <string>

namespace lopass {

using Cycles = std::uint64_t;

// Energy in joules.
struct Energy {
  double joules = 0.0;

  constexpr Energy() = default;
  constexpr explicit Energy(double j) : joules(j) {}

  static constexpr Energy from_millijoules(double mj) { return Energy{mj * 1e-3}; }
  static constexpr Energy from_microjoules(double uj) { return Energy{uj * 1e-6}; }
  static constexpr Energy from_nanojoules(double nj) { return Energy{nj * 1e-9}; }
  static constexpr Energy from_picojoules(double pj) { return Energy{pj * 1e-12}; }

  constexpr double millijoules() const { return joules * 1e3; }
  constexpr double microjoules() const { return joules * 1e6; }
  constexpr double nanojoules() const { return joules * 1e9; }
  constexpr double picojoules() const { return joules * 1e12; }

  constexpr Energy& operator+=(Energy o) { joules += o.joules; return *this; }
  constexpr Energy& operator-=(Energy o) { joules -= o.joules; return *this; }
  constexpr Energy& operator*=(double k) { joules *= k; return *this; }

  friend constexpr Energy operator+(Energy a, Energy b) { return Energy{a.joules + b.joules}; }
  friend constexpr Energy operator-(Energy a, Energy b) { return Energy{a.joules - b.joules}; }
  friend constexpr Energy operator*(Energy a, double k) { return Energy{a.joules * k}; }
  friend constexpr Energy operator*(double k, Energy a) { return Energy{a.joules * k}; }
  friend constexpr Energy operator/(Energy a, double k) { return Energy{a.joules / k}; }
  friend constexpr double operator/(Energy a, Energy b) { return a.joules / b.joules; }
  friend constexpr auto operator<=>(Energy a, Energy b) = default;
};

// Power in watts.
struct Power {
  double watts = 0.0;

  constexpr Power() = default;
  constexpr explicit Power(double w) : watts(w) {}

  static constexpr Power from_milliwatts(double mw) { return Power{mw * 1e-3}; }
  static constexpr Power from_microwatts(double uw) { return Power{uw * 1e-6}; }

  constexpr double milliwatts() const { return watts * 1e3; }

  friend constexpr Power operator+(Power a, Power b) { return Power{a.watts + b.watts}; }
  friend constexpr Power operator*(Power a, double k) { return Power{a.watts * k}; }
  friend constexpr auto operator<=>(Power a, Power b) = default;
};

// Time duration in seconds.
struct Duration {
  double seconds = 0.0;

  constexpr Duration() = default;
  constexpr explicit Duration(double s) : seconds(s) {}

  static constexpr Duration from_nanoseconds(double ns) { return Duration{ns * 1e-9}; }
  static constexpr Duration from_microseconds(double us) { return Duration{us * 1e-6}; }
  static constexpr Duration from_milliseconds(double ms) { return Duration{ms * 1e-3}; }

  constexpr double nanoseconds() const { return seconds * 1e9; }
  constexpr double microseconds() const { return seconds * 1e6; }
  constexpr double milliseconds() const { return seconds * 1e3; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.seconds + b.seconds}; }
  friend constexpr Duration operator*(Duration a, double k) { return Duration{a.seconds * k}; }
  friend constexpr auto operator<=>(Duration a, Duration b) = default;
};

// E = P * t
constexpr Energy operator*(Power p, Duration t) { return Energy{p.watts * t.seconds}; }
constexpr Energy operator*(Duration t, Power p) { return p * t; }

// --- guarded accumulation ---------------------------------------------
//
// Cycle counters are unsigned 64-bit; a pathological workload (or a
// corrupted model) must pin them at the ceiling rather than silently
// wrap around to a small value. Energies are doubles; they cannot wrap
// but can go non-finite (inf/NaN) through a misconfigured model — the
// sanity check below turns that into a diagnostic instead of letting
// NaNs poison every downstream comparison.

inline constexpr Cycles kCyclesCeiling = ~static_cast<Cycles>(0);

// a + b, clamped at kCyclesCeiling instead of wrapping.
constexpr Cycles SaturatingAdd(Cycles a, Cycles b) {
  return a > kCyclesCeiling - b ? kCyclesCeiling : a + b;
}

// a * b, clamped at kCyclesCeiling instead of wrapping.
constexpr Cycles SaturatingMul(Cycles a, Cycles b) {
  if (a == 0 || b == 0) return 0;
  return a > kCyclesCeiling / b ? kCyclesCeiling : a * b;
}

// Two's-complement wrapping arithmetic for *simulated program values*:
// the DSL/SL32 machine defines add/sub/mul/neg/shl to wrap at 64 bits,
// so the execution engines must not inherit C++'s undefined behavior on
// signed overflow. (Cycle/energy accounting saturates instead — see
// SaturatingAdd above.)
constexpr std::int64_t WrapAdd(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
constexpr std::int64_t WrapSub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
constexpr std::int64_t WrapMul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}
constexpr std::int64_t WrapNeg(std::int64_t a) {
  return static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(a));
}
constexpr std::int64_t WrapShl(std::int64_t a, std::int64_t sh) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                   << (static_cast<std::uint64_t>(sh) & 63));
}

// True when the energy value is finite (negative values are allowed:
// residual estimates may legitimately dip below zero by rounding).
bool EnergyIsSane(Energy e);

// Throws lopass::Error naming `what` if `e` is non-finite.
void CheckEnergySane(Energy e, const char* what);

// Formats an energy value the way the paper's Table 1 does: pick the
// most readable suffix among J / mJ / uJ / nJ / pJ.
std::string FormatEnergy(Energy e);

// Formats a relative change in percent, e.g. -35.21 -> "-35.21".
std::string FormatPercent(double percent);

}  // namespace lopass
