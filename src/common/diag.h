#pragma once

// Structured diagnostics for lopass.
//
// lopass::Error (common/error.h) is the low-level "something threw"
// channel. This header adds the layer library entry points use to talk
// to humans and drivers: a Diagnostic carries a severity, a stable
// machine-readable code (e.g. "parse.syntax", "fault.injected"), an
// optional source location and a message; a DiagnosticSink collects
// them for one run; Result<T> is the value-or-diagnostics boundary the
// parser, lowering and partitioner expose so callers get *all* the
// errors of a bad input, not just the first throw.

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"

namespace lopass {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

const char* SeverityName(Severity s);

// 1-based source position; line 0 means "no location".
struct SourceLoc {
  int line = 0;
  int col = 0;

  bool valid() const { return line > 0; }
};

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     // stable dotted identifier, e.g. "sched.no-resource"
  SourceLoc loc;        // where in the DSL source, if known
  std::string message;  // human-readable explanation

  // "error[parse.syntax] 3:7: expected ';', found '}'"
  std::string ToString() const;
};

// Collects the diagnostics of one run. Bounded: after `max_diagnostics`
// entries further ones are dropped (and counted) so a pathological
// input cannot flood memory; errors are always counted even when the
// entry itself is dropped.
class DiagnosticSink {
 public:
  explicit DiagnosticSink(std::size_t max_diagnostics = 64)
      : max_diagnostics_(max_diagnostics) {}

  void Add(Diagnostic d);
  void AddError(std::string code, std::string message, SourceLoc loc = {});
  void AddWarning(std::string code, std::string message, SourceLoc loc = {});
  void AddNote(std::string code, std::string message, SourceLoc loc = {});

  bool has_errors() const { return error_count_ > 0; }
  std::size_t error_count() const { return error_count_; }
  // Number of diagnostics dropped after the cap was reached.
  std::size_t dropped() const { return dropped_; }
  bool overflowed() const { return dropped_ > 0; }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  void clear();

  // All collected diagnostics, newline-joined (with a trailing summary
  // line when some were dropped).
  std::string ToString() const;

  // Moves the collected diagnostics out, leaving the sink empty.
  std::vector<Diagnostic> Take();

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t max_diagnostics_;
  std::size_t error_count_ = 0;
  std::size_t dropped_ = 0;
};

// Joins diagnostics into one lopass::Error message (used when a
// Result-returning entry point is consumed by a throwing caller).
std::string JoinDiagnostics(const std::vector<Diagnostic>& diags);

// Value-or-diagnostics. An ok() Result may still carry warnings/notes;
// a failed Result carries at least one error diagnostic.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(T value, std::vector<Diagnostic> diags)
      : value_(std::move(value)), diags_(std::move(diags)) {}

  // Failure.
  static Result Failure(std::vector<Diagnostic> diags) {
    Result r;
    r.diags_ = std::move(diags);
    if (r.diags_.empty()) {
      r.diags_.push_back(Diagnostic{Severity::kError, "internal.unspecified",
                                    SourceLoc{}, "operation failed"});
    }
    return r;
  }
  static Result Failure(Diagnostic d) {
    std::vector<Diagnostic> v;
    v.push_back(std::move(d));
    return Failure(std::move(v));
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  T& value() {
    LOPASS_CHECK(ok(), "Result::value() on a failed result");
    return *value_;
  }
  const T& value() const {
    LOPASS_CHECK(ok(), "Result::value() on a failed result");
    return *value_;
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  // Throws lopass::Error with all diagnostics joined if this is a
  // failure; otherwise returns the value.
  T& ValueOrThrow() {
    if (!ok()) throw Error(JoinDiagnostics(diags_));
    return *value_;
  }

 private:
  Result() = default;

  std::optional<T> value_;
  std::vector<Diagnostic> diags_;
};

}  // namespace lopass
