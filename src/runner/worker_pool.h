#pragma once

// Concurrency substrate for the parallel exploration runner
// (runner/explore.cc): a bounded multi-producer single-consumer queue,
// a self-dispatching worker pool, and a deterministic in-order merge.
//
// The design splits responsibilities so each piece is trivially
// verifiable under ThreadSanitizer (tests/test_runner_parallel.cc):
//
//  - N workers pull job indices from one atomic counter and evaluate
//    jobs concurrently — evaluation order is nondeterministic;
//  - every completion is pushed through a BoundedMpscQueue to exactly
//    one consumer (the committer). The bound applies backpressure: a
//    burst of fast workers blocks on Push until the committer drains,
//    so memory stays proportional to the worker count, not the sweep;
//  - the committer feeds an OrderedMerger, which buffers out-of-order
//    completions and releases them in job-index order. Everything
//    order-sensitive — the journal append sequence, the report rows,
//    the supervision notes — happens on the committer's side of the
//    queue, which is what makes an 8-worker sweep byte-identical to a
//    1-worker run regardless of completion interleaving.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lopass::runner {

// Bounded blocking MPSC queue. Any number of producers may Push
// concurrently; a single consumer Pops. Push blocks while the queue
// holds `capacity` items (backpressure); Pop blocks until an item
// arrives or the queue is closed and drained.
template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  // Blocks until there is room. Must not be called after Close().
  void Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_; });
    items_.push_back(std::move(item));
    not_empty_.notify_one();
  }

  // Returns false only once the queue is closed and fully drained.
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  // After Close, pending and future Pops drain the remaining items and
  // then return false.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

// Spawns `workers` threads that drain job indices [0, jobs) from a
// shared atomic counter, calling `job(index)` for each. Construction
// starts the threads; Join (or destruction) waits for all of them.
// `job` is invoked concurrently and must synchronize any shared state
// it touches; it must not throw.
class WorkerPool {
 public:
  WorkerPool(int workers, std::size_t jobs, std::function<void(std::size_t)> job);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void Join();

 private:
  std::atomic<std::size_t> next_{0};
  std::size_t jobs_ = 0;
  std::function<void(std::size_t)> job_;
  std::vector<std::thread> threads_;
};

// Reorders out-of-order completions into index order. Single-threaded
// (the committer owns it): Add buffers (index, value) and invokes
// `commit(index, value)` for every contiguous prefix now available,
// in strictly increasing index order starting at 0. Each index must be
// added exactly once.
template <typename T>
class OrderedMerger {
 public:
  template <typename Fn>
  void Add(std::size_t index, T value, Fn&& commit) {
    pending_.emplace(index, std::move(value));
    auto it = pending_.begin();
    while (it != pending_.end() && it->first == next_) {
      commit(it->first, std::move(it->second));
      it = pending_.erase(it);
      ++next_;
    }
  }

  // Indices committed so far (== the length of the released prefix).
  std::size_t committed() const { return next_; }
  // True when nothing is buffered waiting for a missing index.
  bool drained() const { return pending_.empty(); }

 private:
  std::map<std::size_t, T> pending_;
  std::size_t next_ = 0;
};

}  // namespace lopass::runner
