#include "runner/worker_pool.h"

#include <algorithm>

namespace lopass::runner {

WorkerPool::WorkerPool(int workers, std::size_t jobs,
                       std::function<void(std::size_t)> job)
    : jobs_(jobs), job_(std::move(job)) {
  const int n = std::max(1, workers);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] {
      while (true) {
        const std::size_t index = next_.fetch_add(1, std::memory_order_relaxed);
        if (index >= jobs_) return;
        job_(index);
      }
    });
  }
}

void WorkerPool::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

WorkerPool::~WorkerPool() { Join(); }

}  // namespace lopass::runner
