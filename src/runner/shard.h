#pragma once

// Process-level sharding for the exploration runner.
//
// A sweep's job queue (application × designer resource set, in registry
// order) is statically partitioned by job index: shard I of M evaluates
// exactly the jobs whose queue position is congruent to I modulo M.
// Each shard process journals only its own slice, to
// `<journal>.shard-I-of-M`, and the first line of that file is a shard
// header record (same CRC wrapper as every journal line) naming the
// shard and pinning the sweep configuration every shard must share —
// queue length, application list, scale, base seed, chaos seed. The
// header is what lets `lopass_cli merge-journals` validate that a set
// of shard files belongs to one sweep (no gaps, no overlaps, no
// mixed configurations) and splice the records back into canonical
// sequential order, byte-identical to a single-process run.
//
// Record-to-job mapping is positional, not stored: the data record on
// physical line L of a shard file (header on line H) is the shard's
// (L - H - 1)-th job, i.e. global queue index I + (L - H - 1) * M. A
// corrupt line therefore loses exactly its own job — later records
// keep their indices — which is what lets the splice salvage truncated
// or damaged shards without mis-attributing anything.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lopass::runner {

// One static 1-of-M slice of the job queue.
struct ShardSpec {
  int index = 0;
  int count = 1;
};

// Parses "I/M" (0 <= I < M, M in [1, 1024]). Nullopt on anything else.
std::optional<ShardSpec> ParseShardSpec(std::string_view text);

// `<journal>.shard-I-of-M` — the file shard I journals to.
std::string ShardJournalPath(const std::string& journal_path, const ShardSpec& spec);

// The configuration a shard ran under. Everything except `shard.index`
// must agree across the shard set of one sweep.
struct ShardHeader {
  ShardSpec shard;
  std::int64_t total_jobs = 0;  // full (unsharded) queue length
  std::string apps;             // swept applications, comma-separated
  int scale = 1;
  std::uint64_t base_seed = 0;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
};

// Deterministic serialization (fixed field order and formatting), so
// equal headers are byte-equal — resume validates by string compare.
std::string ShardHeaderJson(const ShardHeader& header);

// Cheap probe: does this record payload look like a shard header?
bool IsShardHeader(std::string_view record);

// Full parse; nullopt when a field is missing, malformed, or out of
// range (e.g. shard index outside [0, count)).
std::optional<ShardHeader> ParseShardHeader(std::string_view record);

}  // namespace lopass::runner
