#include "runner/shard.h"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "runner/journal.h"

namespace lopass::runner {
namespace {

std::string SeedHex(std::uint64_t seed) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(seed));
  return buf;
}

bool ParseInt(std::string_view text, int& out) {
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

std::optional<ShardSpec> ParseShardSpec(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  ShardSpec spec;
  if (!ParseInt(text.substr(0, slash), spec.index) ||
      !ParseInt(text.substr(slash + 1), spec.count)) {
    return std::nullopt;
  }
  if (spec.count < 1 || spec.count > 1024) return std::nullopt;
  if (spec.index < 0 || spec.index >= spec.count) return std::nullopt;
  return spec;
}

std::string ShardJournalPath(const std::string& journal_path, const ShardSpec& spec) {
  return journal_path + ".shard-" + std::to_string(spec.index) + "-of-" +
         std::to_string(spec.count);
}

std::string ShardHeaderJson(const ShardHeader& header) {
  std::ostringstream os;
  os << "{\"shard\":" << header.shard.index
     << ",\"shards\":" << header.shard.count
     << ",\"jobs\":" << header.total_jobs
     << ",\"apps\":\"" << JsonEscape(header.apps) << "\""
     << ",\"scale\":" << header.scale
     << ",\"seed\":\"" << SeedHex(header.base_seed) << "\""
     << ",\"chaos\":\""
     << (header.chaos ? std::to_string(header.chaos_seed) : std::string()) << "\"}";
  return os.str();
}

bool IsShardHeader(std::string_view record) {
  return record.rfind("{\"shard\":", 0) == 0;
}

std::optional<ShardHeader> ParseShardHeader(std::string_view record) {
  if (!IsShardHeader(record)) return std::nullopt;
  const auto shard = JsonIntField(record, "shard");
  const auto shards = JsonIntField(record, "shards");
  const auto jobs = JsonIntField(record, "jobs");
  const auto apps = JsonStringField(record, "apps");
  const auto scale = JsonIntField(record, "scale");
  const auto seed = JsonStringField(record, "seed");
  const auto chaos = JsonStringField(record, "chaos");
  if (!shard || !shards || !jobs || !apps || !scale || !seed || !chaos) {
    return std::nullopt;
  }
  ShardHeader header;
  header.shard.index = static_cast<int>(*shard);
  header.shard.count = static_cast<int>(*shards);
  if (header.shard.count < 1 || header.shard.count > 1024 ||
      header.shard.index < 0 || header.shard.index >= header.shard.count) {
    return std::nullopt;
  }
  header.total_jobs = *jobs;
  if (header.total_jobs < 0) return std::nullopt;
  header.apps = *apps;
  header.scale = static_cast<int>(*scale);
  header.base_seed = std::strtoull(seed->c_str(), nullptr, 16);
  header.chaos = !chaos->empty();
  header.chaos_seed = header.chaos ? std::strtoull(chaos->c_str(), nullptr, 10) : 0;
  return header;
}

}  // namespace lopass::runner
