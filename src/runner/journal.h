#pragma once

// Crash-safe append-only JSONL journal for the exploration runner.
//
// One line per completed candidate evaluation, each a self-validating
// JSON object:
//
//   {"crc32":"9ae4c1d2","record":{...}}
//
// where crc32 is the CRC-32 (IEEE) of the exact serialized `record`
// substring. The writer appends one line per record and flushes to the
// OS after every append, so a SIGKILL loses at most the line being
// written — and that torn line is detectable. The reader is built for
// hostile input: a truncated final line, a bit-flipped payload, or any
// other malformed line is skipped with a warning, never an exception —
// resume must always be able to salvage every intact record.
//
// The journal layer stores opaque record payloads; the schema (job
// keys, metrics, duplicate detection) belongs to the explorer
// (runner/explore.h). Small helpers for the flat JSON dialect the
// runner writes (string/int/double fields, no nesting inside records)
// live here so writer and reader stay in one place.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lopass::runner {

// CRC-32 (IEEE 802.3, reflected) of a byte string.
std::uint32_t Crc32(std::string_view data);

// JSON string escaping for the subset we emit (quotes, backslash,
// control characters).
std::string JsonEscape(std::string_view s);

// Field extraction from one flat record object (no nested objects /
// arrays inside). Returns nullopt when the key is missing or the value
// has the wrong shape.
std::optional<std::string> JsonStringField(std::string_view record, std::string_view key);
std::optional<double> JsonNumberField(std::string_view record, std::string_view key);
std::optional<std::int64_t> JsonIntField(std::string_view record, std::string_view key);

// Appends checksummed records to a journal file, flushing after every
// line. Throws lopass::Error if the file cannot be opened or written —
// losing the journal silently would defeat its purpose.
//
// Append is thread-safe: a mutex serializes the write+flush pair, so
// concurrent producers can never interleave bytes of two lines. (The
// parallel exploration runner still funnels every record through one
// committer thread for deterministic ordering; the lock is the safety
// net that keeps even a misuse from corrupting the journal, and what
// the concurrent-producer fuzz test hammers.)
class JournalWriter {
 public:
  // `truncate` starts a fresh journal; otherwise appends to what is
  // there (the resume path).
  JournalWriter(const std::string& path, bool truncate);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // `record_json` must be one serialized JSON object without newlines.
  void Append(const std::string& record_json);

  std::uint64_t lines_written() const {
    return lines_written_.load(std::memory_order_acquire);
  }

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  std::atomic<std::uint64_t> lines_written_{0};
};

struct JournalLoad {
  // Verified record payloads (the `record` substring of each line), in
  // file order, with the 1-based physical line each came from. The
  // line numbers are what positional consumers (the shard splice,
  // runner/merge.h) key on: a skipped line still consumes its line
  // number, so surviving records never shift position.
  std::vector<std::string> records;
  std::vector<std::size_t> record_lines;
  // One human-readable warning per skipped line (truncated tail,
  // checksum mismatch, malformed wrapper, byte-identical duplicate),
  // plus — whenever anything was skipped — one final summary line
  // ("skipped N corrupt / D duplicate records") so a resume reports
  // its total loss in one place. warning_lines is parallel (0 for the
  // summary, which belongs to no single line).
  std::vector<std::string> warnings;
  std::vector<std::size_t> warning_lines;
  // Skip counts behind the summary.
  std::size_t corrupt = 0;
  std::size_t duplicates = 0;
};

// Reads every line of the journal at `path`, verifying wrapper shape
// and checksum. A missing file yields an empty load (fresh start);
// corrupt lines are skipped and warned about, never fatal. A line that
// is byte-identical to the line directly before it (the
// double-append shape a crash between write and commit bookkeeping can
// leave behind) is skipped as a duplicate.
JournalLoad LoadJournal(const std::string& path);

// Serializes one wrapper line (checksum + record) the writer/reader
// agree on. Exposed for tests that need to craft corrupt journals.
std::string WrapRecord(const std::string& record_json);

}  // namespace lopass::runner
