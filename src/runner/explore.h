#pragma once

// Supervised design-space exploration runner.
//
// Drives the application × resource-set candidate space as a job
// queue. Each job runs the full partitioning flow for one application
// restricted to one designer resource set, under supervision:
//
//  - every completed evaluation is appended to a checksummed JSONL
//    journal (runner/journal.h) — PRNG seed, fault spec, attempt count,
//    objective-function inputs, diagnostics summary — and the journal
//    is flushed per record, so `--resume` after a SIGKILL replays the
//    committed prefix and re-runs only the rest, producing a report
//    byte-identical to an uninterrupted run;
//  - each job gets one wall-clock deadline spanning every attempt
//    *and* the backoff sleeps between them, enforced cooperatively via
//    CancelToken (common/cancel.h), threaded through the partitioner
//    and both schedulers — a retry can never overshoot its job's
//    deadline by sleeping;
//  - failures classified transient by common/fault (injected faults)
//    are retried with exponential backoff + deterministic jitter; a
//    job that keeps failing trips the circuit breaker and is recorded
//    degraded with whatever result survived (worst case the
//    all-software fallback) instead of sinking the whole sweep;
//  - chaos mode (--chaos SEED) composes a randomized schedule of
//    one-shot fault injections with any live LOPASS_FAULT_INJECT spec
//    and asserts the supervised run still converges — because every
//    chaos fault is one-shot and transient, the retried sweep must
//    produce the same report as a clean run.
//
// With --jobs N > 1 the queue is drained by a pool of N worker threads
// (runner/worker_pool.h). Each worker evaluates whole jobs — own PRNG
// seed, own CancelToken deadline, own retry/breaker state, and (under
// chaos) its own thread-local fault::JobScope, so concurrent jobs can
// never observe each other's injected faults. Completions flow through
// a bounded MPSC queue to a single committer that journals and reports
// them in job-queue order (OrderedMerger): the report, the journal
// bytes, and the committed prefix a later --resume replays are all
// byte-identical to a 1-worker run, regardless of completion order.
// The one semantic caveat: a *global* fault spec (LOPASS_FAULT_INJECT /
// SetSpec) with one-shot site:N arms is consumed in completion order
// under parallelism, which is inherently nondeterministic — per-job
// chaos schedules do not have this problem.
//
// All evaluations are deterministic (fixed per-job PRNG seeds, no
// wall-clock in any recorded field), which is what makes byte-identical
// resume testable.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/diag.h"
#include "runner/shard.h"

namespace lopass::runner {

struct RetryPolicy {
  // Attempts per job including the first (1 = no retry).
  int max_attempts = 3;
  // Backoff before retry k (1-based) is min(max_ms, base_ms << (k-1))
  // plus jitter in [0, base_ms), drawn from the job's own PRNG stream.
  // base_ms = 0 disables sleeping (tests).
  std::int64_t base_ms = 0;
  std::int64_t max_ms = 1000;
};

struct ExploreOptions {
  // Journal path; empty runs unjournaled (no resume possible).
  std::string journal_path;
  // Replay committed records from the journal instead of truncating it.
  bool resume = false;
  // Applications to sweep; empty = all six.
  std::vector<std::string> apps;
  // Workload scale; <= 0 uses each app's test-friendly scale 1.
  int scale = 1;
  // Worker threads draining the job queue; values < 1 mean 1
  // (sequential). The report and journal are byte-identical for every
  // value.
  int jobs = 1;
  // Per-job wall-clock deadline covering all attempts and the backoff
  // sleeps between them; <= 0 disables.
  std::int64_t deadline_ms = 0;
  RetryPolicy retry;
  // Chaos mode: derive a randomized one-shot fault schedule per job.
  bool chaos = false;
  std::uint64_t chaos_seed = 1;
  // Base seed XOR-folded with the job key into each job's PRNG seed.
  std::uint64_t base_seed = 0x9e3779b97f4a7c15ull;
  // Process-level sharding (runner/shard.h): when set, this process
  // evaluates only the jobs whose queue index ≡ shard->index (mod
  // shard->count), and journals them to
  // ShardJournalPath(journal_path, *shard) under a shard header record.
  // Everything a job computes — its seed, its chaos schedule, its
  // journal record bytes — depends on the job key alone, so the shard
  // journals splice (runner/merge.h) back into exactly the sequential
  // run's journal. Composes with --jobs (workers drain the shard's
  // slice) and --resume (the shard journal's committed prefix replays;
  // its header must match this sweep's configuration).
  std::optional<ShardSpec> shard;
};

// Final status of one job. kFailed means even the circuit-breaker
// fallback produced nothing usable (the job threw on every attempt).
enum class JobStatus { kOk, kDegraded, kFailed };

struct JobResult {
  std::string app;
  std::string resource_set;  // designer set this job was restricted to
  std::uint64_t seed = 0;
  JobStatus status = JobStatus::kFailed;
  int attempts = 0;
  bool replayed = false;  // satisfied from the journal on resume
  // Fault spec live while the job ran (its JobScope's composed spec
  // under chaos), captured on the evaluating thread for the journal.
  std::string fault_spec;
  // Objective-function inputs / Table-1 metrics of the evaluation.
  double initial_energy_j = 0.0;
  double partitioned_energy_j = 0.0;
  double saving_percent = 0.0;
  double time_change_percent = 0.0;
  std::int64_t errors = 0;  // error-severity diagnostics in the result
  std::string detail;       // first error message, or ""
};

struct ExploreReport {
  std::vector<JobResult> jobs;
  // Supervision metadata — journal warnings, retry notices, circuit
  // breaker trips. Deliberately excluded from Render() so a resumed or
  // chaos run stays byte-identical to a clean one.
  std::vector<Diagnostic> notes;

  int failed() const;
  int degraded() const;
  // Deterministic report over job outcomes only (stable ordering,
  // fixed float formatting, no timing, no attempt counts).
  std::string Render() const;
};

// The journal record schema for one job, shared by the runner's
// journaling/resume paths, the shard splice (runner/merge.h), and the
// tests that craft synthetic journals. JobRecordJson is deterministic
// (fixed field order, %.17g doubles that round-trip through strtod),
// which is what makes replayed and merged journals byte-exact.
std::string JobRecordJson(const JobResult& job);
// Parses one record payload; false when a required field is missing or
// malformed. Sets job.replayed.
bool ParseJobRecord(const std::string& record, JobResult& job);

// Runs the sweep. Throws lopass::Error only for unusable setup (bad
// app name, unwritable journal, a shard journal written by a different
// sweep); per-job failures land in the report.
ExploreReport RunExplore(const ExploreOptions& options);

}  // namespace lopass::runner
