#include "runner/explore.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "apps/app.h"
#include "common/cancel.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/prng.h"
#include "core/partitioner.h"
#include "dsl/lower.h"
#include "runner/journal.h"
#include "runner/worker_pool.h"

namespace lopass::runner {
namespace {

std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

std::string SeedHex(std::uint64_t seed) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(seed));
  return buf;
}

// %.17g round-trips every IEEE double through strtod exactly, so a
// value replayed from the journal renders identically to the live one.
std::string DoubleField(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* StatusName(JobStatus s) {
  switch (s) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kDegraded:
      return "degraded";
    case JobStatus::kFailed:
      return "failed";
  }
  return "failed";
}

JobStatus StatusFromName(const std::string& name) {
  if (name == "ok") return JobStatus::kOk;
  if (name == "degraded") return JobStatus::kDegraded;
  return JobStatus::kFailed;
}

// Fault sites the chaos scheduler (fault::ChaosSchedule) may arm. All
// are reached inside Partitioner::Run, so a one-shot arm is guaranteed
// to be consumed by the first attempt (and therefore disarmed before
// the retry) — which is what lets a chaos sweep converge to the clean
// run's exact report.
const std::vector<std::string_view> kChaosSites = {"alloc", "profile", "sim",
                                                   "schedule", "synth", "estimate"};

std::string ComposeSpec(const std::string& base, const std::string& extra) {
  if (base.empty()) return extra;
  if (extra.empty()) return base;
  return base + "," + extra;
}

}  // namespace

std::string JobRecordJson(const JobResult& job) {
  std::ostringstream os;
  os << "{\"app\":\"" << JsonEscape(job.app) << "\""
     << ",\"rs\":\"" << JsonEscape(job.resource_set) << "\""
     << ",\"seed\":\"" << SeedHex(job.seed) << "\""
     << ",\"status\":\"" << StatusName(job.status) << "\""
     << ",\"attempts\":" << job.attempts
     << ",\"fault_spec\":\"" << JsonEscape(job.fault_spec) << "\""
     << ",\"initial_j\":" << DoubleField(job.initial_energy_j)
     << ",\"partitioned_j\":" << DoubleField(job.partitioned_energy_j)
     << ",\"saving_pct\":" << DoubleField(job.saving_percent)
     << ",\"time_pct\":" << DoubleField(job.time_change_percent)
     << ",\"errors\":" << job.errors
     << ",\"detail\":\"" << JsonEscape(job.detail) << "\"}";
  return os.str();
}

bool ParseJobRecord(const std::string& record, JobResult& job) {
  const auto app = JsonStringField(record, "app");
  const auto rs = JsonStringField(record, "rs");
  const auto seed = JsonStringField(record, "seed");
  const auto status = JsonStringField(record, "status");
  const auto attempts = JsonIntField(record, "attempts");
  const auto initial = JsonNumberField(record, "initial_j");
  const auto partitioned = JsonNumberField(record, "partitioned_j");
  const auto saving = JsonNumberField(record, "saving_pct");
  const auto time_pct = JsonNumberField(record, "time_pct");
  const auto errors = JsonIntField(record, "errors");
  const auto detail = JsonStringField(record, "detail");
  if (!app || !rs || !seed || !status || !attempts || !initial || !partitioned ||
      !saving || !time_pct || !errors || !detail) {
    return false;
  }
  job.app = *app;
  job.resource_set = *rs;
  job.seed = std::strtoull(seed->c_str(), nullptr, 16);
  job.status = StatusFromName(*status);
  job.attempts = static_cast<int>(*attempts);
  job.replayed = true;
  job.fault_spec = JsonStringField(record, "fault_spec").value_or("");
  job.initial_energy_j = *initial;
  job.partitioned_energy_j = *partitioned;
  job.saving_percent = *saving;
  job.time_change_percent = *time_pct;
  job.errors = *errors;
  job.detail = *detail;
  return true;
}

namespace {

// Deterministic SIGKILL switch for the crash/resume ctest: when
// LOPASS_EXPLORE_KILL_AFTER=N is set, the process kills itself (no
// cleanup, no flush beyond the journal's own per-record flush) right
// after the N-th journal append of this run. An honest crash, not a
// simulated one — under --jobs it fires on the committer with workers
// still evaluating in flight.
void MaybeKillAfter(std::uint64_t appends) {
  static const std::int64_t kill_after = [] {
    const char* env = std::getenv("LOPASS_EXPLORE_KILL_AFTER");
    return env == nullptr ? std::int64_t{-1} : std::atoll(env);
  }();
  if (kill_after >= 0 && appends >= static_cast<std::uint64_t>(kill_after)) {
    std::raise(SIGKILL);
  }
}

// Sleeps `ms` in small slices, giving up as soon as the job's token
// fires. Returns false when the sleep was cut short by cancellation —
// a retry must not overshoot its job's deadline just because the
// backoff schedule said so.
bool SleepWithCancel(const CancelToken* token, std::int64_t ms) {
  constexpr std::int64_t kSliceMs = 5;
  std::int64_t remaining = ms;
  while (remaining > 0) {
    if (token != nullptr && token->cancelled()) return false;
    const std::int64_t slice = std::min(kSliceMs, remaining);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    remaining -= slice;
  }
  return token == nullptr || !token->cancelled();
}

struct Attempt {
  bool threw = false;
  bool transient = false;  // retry-worthy (injected fault)
  bool cancelled = false;  // deadline — permanent by design
  std::string error;
  core::PartitionResult result;
};

Attempt RunAttempt(const dsl::LoweredProgram& prog, const apps::Application& app,
                   const sched::ResourceSet& rs, std::uint64_t seed,
                   CancelToken* token, int scale) {
  Attempt attempt;
  core::PartitionOptions options = app.options;
  options.resource_sets = {rs};
  options.prng_seed = seed;
  options.cancel = token;
  try {
    core::Partitioner partitioner(prog.module, prog.regions, options);
    attempt.result = partitioner.Run(app.workload(scale));
  } catch (const CancelledError& e) {
    attempt.threw = true;
    attempt.cancelled = true;
    attempt.error = e.what();
  } catch (const Error& e) {
    attempt.threw = true;
    attempt.transient = fault::IsTransient(e);
    attempt.error = e.what();
  }
  return attempt;
}

// True when every error-severity diagnostic stems from an injected
// fault — the degradation would not recur on retry.
bool DegradedOnlyTransiently(const core::PartitionResult& result) {
  bool any = false;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.severity != Severity::kError) continue;
    any = true;
    if (!fault::IsTransientMessage(d.message)) return false;
  }
  return any;
}

void FillFromResult(JobResult& job, const core::PartitionResult& result,
                    const std::string& app_name) {
  const core::AppRow row = result.ToRow(app_name);
  job.initial_energy_j = row.initial.total().joules;
  job.partitioned_energy_j = row.partitioned.total().joules;
  job.saving_percent = row.saving_percent();
  job.time_change_percent = row.time_change_percent();
  job.errors = 0;
  job.detail.clear();
  for (const Diagnostic& d : result.diagnostics) {
    if (d.severity != Severity::kError) continue;
    if (job.errors == 0) job.detail = "[" + d.code + "] " + d.message;
    ++job.errors;
  }
  job.status = job.errors > 0 ? JobStatus::kDegraded : JobStatus::kOk;
}

// One queue entry: application × one of its designer resource sets.
// Pointers reach into the `apps` vector, which outlives the sweep.
struct JobSpec {
  const apps::Application* app = nullptr;
  const sched::ResourceSet* rs = nullptr;
  std::string key;  // "app/resource-set", the journal identity
};

// Everything one job hands back to the committer.
struct Completion {
  JobResult job;
  std::vector<Diagnostic> notes;
};

// Compiles each application once, shared across workers. Concurrent
// Get()s serialize on the mutex (compiles are cheap next to the
// partitioning flow); map nodes keep the returned pointers stable.
class CompileCache {
 public:
  // Returns the compiled program, or nullptr with `error` set when the
  // compile failed — every job of that app records the same permanent
  // failure.
  const dsl::LoweredProgram* Get(const apps::Application& app, std::string* error) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(app.name);
    if (it == entries_.end()) {
      Entry entry;
      try {
        entry.program.emplace(dsl::Compile(app.dsl_source));
      } catch (const Error& e) {
        entry.error = e.what();
      }
      it = entries_.emplace(app.name, std::move(entry)).first;
    }
    if (!it->second.program.has_value()) {
      *error = it->second.error;
      return nullptr;
    }
    return &*it->second.program;
  }

 private:
  struct Entry {
    std::optional<dsl::LoweredProgram> program;
    std::string error;
  };
  std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

// Runs one job end to end: compile lookup, chaos scope, the
// attempt/retry/breaker loop under the job's own deadline token.
// Called concurrently from workers; touches no shared mutable state
// beyond the (locked) compile cache and, without chaos, the global
// fault table.
Completion EvaluateJob(const JobSpec& spec, const ExploreOptions& options,
                       CompileCache& compiled, int scale) {
  Completion c;
  JobResult& job = c.job;
  job.app = spec.app->name;
  job.resource_set = spec.rs->name;
  job.seed = options.base_seed ^ Fnv1a(spec.key);

  // A compile failure is permanent by construction — it happens once
  // per app, outside the attempt loop, and every job of the app is
  // recorded failed without sinking the sweep.
  std::string compile_error;
  const dsl::LoweredProgram* prog = compiled.Get(*spec.app, &compile_error);
  if (prog == nullptr) {
    job.attempts = 1;
    job.status = JobStatus::kFailed;
    job.errors = 1;
    job.detail = compile_error;
    job.fault_spec = fault::CurrentSpec();
    c.notes.push_back(Diagnostic{
        Severity::kWarning, "runner.breaker", SourceLoc{},
        "job '" + spec.key + "': compile failed, circuit breaker open: " +
            compile_error});
    return c;
  }

  // Chaos faults compose with any operator-supplied spec inside a
  // thread-local JobScope, installed once per *job*: a one-shot arm
  // consumed by attempt 1 must stay disarmed for the retries, and a
  // concurrent job on another worker must never see (or consume) it.
  // The schedule is a pure function of (chaos seed, job key) — see
  // fault::ChaosSchedule — so it is identical no matter which worker,
  // process, or shard evaluates the job.
  const std::string chaos_spec =
      options.chaos ? fault::ChaosSchedule(options.chaos_seed, spec.key, kChaosSites)
                    : std::string();
  std::unique_ptr<fault::JobScope> scoped;
  if (!chaos_spec.empty()) {
    scoped = std::make_unique<fault::JobScope>(
        ComposeSpec(fault::CurrentSpec(), chaos_spec));
    c.notes.push_back(Diagnostic{
        Severity::kNote, "runner.chaos", SourceLoc{},
        "job '" + spec.key + "': chaos fault schedule '" + chaos_spec + "'"});
  }
  job.fault_spec = fault::CurrentSpec();

  // One deadline for the whole job: every attempt and every backoff
  // sleep runs under the same token.
  CancelToken token;
  CancelToken* token_ptr = nullptr;
  if (options.deadline_ms > 0) {
    token.SetDeadlineAfterMs(options.deadline_ms);
    token_ptr = &token;
  }

  Prng backoff_rng(job.seed);
  const int max_attempts = std::max(1, options.retry.max_attempts);
  bool recorded = false;
  std::string last_error;
  for (int attempt_no = 1; attempt_no <= max_attempts; ++attempt_no) {
    job.attempts = attempt_no;
    Attempt attempt = RunAttempt(*prog, *spec.app, *spec.rs, job.seed, token_ptr, scale);

    if (!attempt.threw) {
      if (DegradedOnlyTransiently(attempt.result) && attempt_no < max_attempts) {
        c.notes.push_back(Diagnostic{
            Severity::kNote, "runner.retry", SourceLoc{},
            "job '" + spec.key + "' attempt " + std::to_string(attempt_no) +
                " degraded by a transient fault; retrying"});
      } else {
        FillFromResult(job, attempt.result, spec.app->name);
        recorded = true;
        break;
      }
    } else {
      last_error = attempt.error;
      if (attempt.cancelled || !attempt.transient) {
        // Circuit breaker: permanent failure (deadline or a real
        // error) — retrying would burn the budget on a rerun that
        // fails identically.
        c.notes.push_back(Diagnostic{
            Severity::kWarning, "runner.breaker", SourceLoc{},
            "job '" + spec.key + "': permanent failure, circuit breaker open: " +
                attempt.error});
        break;
      }
      if (attempt_no == max_attempts) break;  // retries exhausted
      c.notes.push_back(Diagnostic{
          Severity::kNote, "runner.retry", SourceLoc{},
          "job '" + spec.key + "' attempt " + std::to_string(attempt_no) +
              " hit a transient fault; retrying: " + attempt.error});
    }

    if (options.retry.base_ms > 0) {
      const std::int64_t shifted =
          attempt_no >= 62 ? options.retry.max_ms
                           : options.retry.base_ms << (attempt_no - 1);
      const std::int64_t backoff = std::min(options.retry.max_ms, shifted) +
                                   static_cast<std::int64_t>(backoff_rng.next_below(
                                       static_cast<std::uint64_t>(options.retry.base_ms)));
      if (!SleepWithCancel(token_ptr, backoff)) {
        last_error = "deadline exceeded during retry backoff";
        c.notes.push_back(Diagnostic{
            Severity::kWarning, "runner.breaker", SourceLoc{},
            "job '" + spec.key +
                "': deadline exceeded during retry backoff, circuit breaker open"});
        break;
      }
    }
  }

  if (!recorded) {
    // The job threw on every permitted attempt: degrade to the
    // all-software answer space — there is no result to report, so
    // it is recorded failed with the last error for the operator.
    job.status = JobStatus::kFailed;
    job.errors = 1;
    job.detail = last_error;
  }
  return c;
}

}  // namespace

int ExploreReport::failed() const {
  return static_cast<int>(std::count_if(jobs.begin(), jobs.end(), [](const JobResult& j) {
    return j.status == JobStatus::kFailed;
  }));
}

int ExploreReport::degraded() const {
  return static_cast<int>(std::count_if(jobs.begin(), jobs.end(), [](const JobResult& j) {
    return j.status == JobStatus::kDegraded;
  }));
}

std::string ExploreReport::Render() const {
  std::ostringstream os;
  os << "exploration report (" << jobs.size() << " jobs)\n";
  os << "app      resource-set  status    saving%    dtime%  errors\n";
  for (const JobResult& job : jobs) {
    char line[256];
    std::snprintf(line, sizeof(line), "%-8s %-13s %-9s %8.3f  %8.3f  %6lld\n",
                  job.app.c_str(), job.resource_set.c_str(), StatusName(job.status),
                  job.saving_percent, job.time_change_percent,
                  static_cast<long long>(job.errors));
    os << line;
  }
  os << "summary: " << jobs.size() << " jobs, "
     << (jobs.size() - static_cast<std::size_t>(degraded() + failed())) << " ok, "
     << degraded() << " degraded, " << failed() << " failed\n";
  return os.str();
}

ExploreReport RunExplore(const ExploreOptions& options) {
  ExploreReport report;

  // Build the job queue: application × that application's designer
  // resource sets, in registry order (deterministic).
  std::vector<apps::Application> apps;
  if (options.apps.empty()) {
    apps = apps::AllApplications();
  } else {
    for (const std::string& name : options.apps) {
      apps.push_back(apps::GetApplication(name));  // throws on unknown
    }
  }

  const int scale = options.scale > 0 ? options.scale : 1;

  // Build the full job queue first — sharding below filters it, but the
  // shard header must pin the whole sweep it is a slice of.
  std::vector<JobSpec> queue;
  for (const apps::Application& app : apps) {
    for (const sched::ResourceSet& rs : app.options.resource_sets) {
      queue.push_back(JobSpec{&app, &rs, app.name + "/" + rs.name});
    }
  }

  // Sharding: this process owns the jobs congruent to shard->index
  // modulo shard->count; the journal moves to the shard file and opens
  // with a header record pinning the sweep configuration, which resume
  // validates and merge-journals uses to splice the set back together.
  std::string journal_path = options.journal_path;
  std::string header_json;
  if (options.shard.has_value()) {
    const ShardSpec& shard = *options.shard;
    ShardHeader header;
    header.shard = shard;
    header.total_jobs = static_cast<std::int64_t>(queue.size());
    for (const apps::Application& app : apps) {
      if (!header.apps.empty()) header.apps += ",";
      header.apps += app.name;
    }
    header.scale = scale;
    header.base_seed = options.base_seed;
    header.chaos = options.chaos;
    header.chaos_seed = options.chaos ? options.chaos_seed : 0;
    header_json = ShardHeaderJson(header);
    if (!journal_path.empty()) journal_path = ShardJournalPath(journal_path, shard);

    std::vector<JobSpec> mine;
    for (std::size_t i = static_cast<std::size_t>(shard.index); i < queue.size();
         i += static_cast<std::size_t>(shard.count)) {
      mine.push_back(std::move(queue[i]));
    }
    queue = std::move(mine);
  }

  // Replay the committed prefix on resume.
  std::unordered_map<std::string, JobResult> replayed;
  bool header_replayed = false;
  if (options.resume && !journal_path.empty()) {
    JournalLoad load = LoadJournal(journal_path);
    for (const std::string& warning : load.warnings) {
      report.notes.push_back(
          Diagnostic{Severity::kWarning, "runner.journal", SourceLoc{}, warning});
    }
    for (const std::string& record : load.records) {
      if (IsShardHeader(record)) {
        if (!options.shard.has_value()) {
          report.notes.push_back(Diagnostic{
              Severity::kWarning, "runner.journal", SourceLoc{},
              "journal '" + journal_path + "' holds a shard header — resuming a "
              "shard journal without --shard; skipping the header"});
          continue;
        }
        if (!header_replayed && record == header_json) {
          header_replayed = true;
          continue;
        }
        throw Error("shard journal '" + journal_path +
                    "' was written by a different sweep (expected header " +
                    header_json + ", found " + record + ")");
      }
      JobResult job;
      if (!ParseJobRecord(record, job)) {
        report.notes.push_back(Diagnostic{Severity::kWarning, "runner.journal",
                                          SourceLoc{},
                                          "unparseable record in journal '" +
                                              journal_path + "'; skipping"});
        continue;
      }
      const std::string key = job.app + "/" + job.resource_set;
      if (replayed.count(key) != 0) {
        report.notes.push_back(Diagnostic{
            Severity::kWarning, "runner.journal", SourceLoc{},
            "duplicate journal record for job '" + key + "'; keeping the first"});
        continue;
      }
      replayed.emplace(key, std::move(job));
    }
  }

  std::unique_ptr<JournalWriter> journal;
  if (!journal_path.empty()) {
    journal = std::make_unique<JournalWriter>(journal_path,
                                              /*truncate=*/!options.resume);
    // A shard journal always opens with its header: written on a fresh
    // run, and on a resume whose journal did not already hold one (a
    // crash before the very first flush, or a missing file).
    if (options.shard.has_value() && !header_replayed) {
      journal->Append(header_json);
      MaybeKillAfter(journal->lines_written());
    }
  }
  CompileCache compiled;

  // The commit path — the single place order-sensitive effects happen,
  // always in job-queue order: append the report row and notes, write
  // the journal line (replayed jobs are already in the file), and give
  // the crash-test kill switch its deterministic trigger point.
  const auto commit = [&](std::size_t, Completion&& done) {
    report.jobs.push_back(std::move(done.job));
    for (Diagnostic& d : done.notes) report.notes.push_back(std::move(d));
    if (journal != nullptr && !report.jobs.back().replayed) {
      journal->Append(JobRecordJson(report.jobs.back()));
      MaybeKillAfter(journal->lines_written());
    }
  };

  // Replay hits are resolved without a worker; the map is read-only
  // from here on, so workers may consult it concurrently.
  const auto resolve = [&](const JobSpec& spec) -> Completion {
    const auto hit = replayed.find(spec.key);
    if (hit != replayed.end()) return Completion{hit->second, {}};
    return EvaluateJob(spec, options, compiled, scale);
  };

  if (options.jobs <= 1) {
    // Sequential: evaluate and commit in queue order on this thread.
    for (const JobSpec& spec : queue) commit(0, resolve(spec));
    return report;
  }

  // Parallel: workers evaluate out of order and push completions into
  // the bounded queue; this thread is the single consumer, merging them
  // back into queue order before committing. Everything the workers
  // share — the compile cache, the fault tables, the journal — is
  // internally synchronized; the report is touched only here.
  struct Indexed {
    std::size_t index = 0;
    Completion completion;
  };
  const int workers = std::min(options.jobs, static_cast<int>(queue.size()));
  BoundedMpscQueue<Indexed> completions(2 * static_cast<std::size_t>(workers));
  WorkerPool pool(workers, queue.size(), [&](std::size_t index) {
    completions.Push(Indexed{index, resolve(queue[index])});
  });

  OrderedMerger<Completion> merger;
  for (std::size_t received = 0; received < queue.size(); ++received) {
    Indexed done;
    if (!completions.Pop(done)) break;  // unreachable: queue never closes early
    merger.Add(done.index, std::move(done.completion), commit);
  }
  pool.Join();
  return report;
}

}  // namespace lopass::runner
