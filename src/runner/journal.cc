#include "runner/journal.h"

#include <array>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/error.h"

namespace lopass::runner {
namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::string HexCrc(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

// Finds the start of `"key":` inside a flat record, returning the
// offset just past the colon (skipping spaces), or npos.
std::size_t FindValue(std::string_view record, std::string_view key) {
  const std::string needle = std::string("\"") + std::string(key) + "\":";
  const std::size_t at = record.find(needle);
  if (at == std::string_view::npos) return std::string_view::npos;
  std::size_t pos = at + needle.size();
  while (pos < record.size() && record[pos] == ' ') ++pos;
  return pos;
}

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> kTable = BuildCrcTable();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::optional<std::string> JsonStringField(std::string_view record, std::string_view key) {
  std::size_t pos = FindValue(record, key);
  if (pos == std::string_view::npos || pos >= record.size() || record[pos] != '"') {
    return std::nullopt;
  }
  ++pos;
  std::string out;
  while (pos < record.size() && record[pos] != '"') {
    char ch = record[pos];
    if (ch == '\\' && pos + 1 < record.size()) {
      ++pos;
      const char esc = record[pos];
      switch (esc) {
        case 'n':
          ch = '\n';
          break;
        case 'r':
          ch = '\r';
          break;
        case 't':
          ch = '\t';
          break;
        default:
          ch = esc;
      }
    }
    out += ch;
    ++pos;
  }
  if (pos >= record.size()) return std::nullopt;  // unterminated string
  return out;
}

std::optional<double> JsonNumberField(std::string_view record, std::string_view key) {
  const std::size_t pos = FindValue(record, key);
  if (pos == std::string_view::npos || pos >= record.size()) return std::nullopt;
  const char first = record[pos];
  if (first != '-' && std::isdigit(static_cast<unsigned char>(first)) == 0) {
    return std::nullopt;
  }
  const std::string text(record.substr(pos, 64));
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || errno == ERANGE) return std::nullopt;
  return value;
}

std::optional<std::int64_t> JsonIntField(std::string_view record, std::string_view key) {
  const std::size_t pos = FindValue(record, key);
  if (pos == std::string_view::npos || pos >= record.size()) return std::nullopt;
  const char first = record[pos];
  if (first != '-' && std::isdigit(static_cast<unsigned char>(first)) == 0) {
    return std::nullopt;
  }
  const std::string text(record.substr(pos, 32));
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || errno == ERANGE) return std::nullopt;
  return static_cast<std::int64_t>(value);
}

std::string WrapRecord(const std::string& record_json) {
  std::ostringstream line;
  line << "{\"crc32\":\"" << HexCrc(Crc32(record_json)) << "\",\"record\":" << record_json << "}";
  return line.str();
}

JournalWriter::JournalWriter(const std::string& path, bool truncate) : path_(path) {
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    throw Error("cannot open journal '" + path + "': " + std::strerror(errno));
  }
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JournalWriter::Append(const std::string& record_json) {
  const std::string line = WrapRecord(record_json) + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    throw Error("cannot append to journal '" + path_ + "': " + std::strerror(errno));
  }
  lines_written_.fetch_add(1, std::memory_order_acq_rel);
}

JournalLoad LoadJournal(const std::string& path) {
  JournalLoad load;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return load;  // no journal yet: fresh start

  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    content.append(buf, n);
  }
  std::fclose(file);

  std::size_t line_no = 0;
  std::size_t start = 0;
  std::string_view previous_line;  // previous non-empty line, for duplicate detection
  while (start < content.size()) {
    std::size_t end = content.find('\n', start);
    const bool torn = end == std::string::npos;  // no trailing newline: interrupted append
    if (torn) end = content.size();
    const std::string_view line(content.data() + start, end - start);
    ++line_no;
    start = end + 1;
    if (line.empty()) continue;

    const auto warn = [&](const std::string& why) {
      ++load.corrupt;
      load.warnings.push_back("journal '" + path + "' line " + std::to_string(line_no) +
                              ": " + why + "; skipping");
      load.warning_lines.push_back(line_no);
    };

    // A line byte-identical to the intact line right before it is the
    // double-append a crash between the journal flush and the caller's
    // commit bookkeeping leaves behind: zero information, skip it.
    if (!previous_line.empty() && line == previous_line) {
      ++load.duplicates;
      load.warnings.push_back("journal '" + path + "' line " + std::to_string(line_no) +
                              ": byte-identical duplicate of the previous record; "
                              "skipping");
      load.warning_lines.push_back(line_no);
      continue;
    }
    previous_line = line;

    // Wrapper shape: {"crc32":"xxxxxxxx","record":<payload>}
    static constexpr std::string_view kPrefix = "{\"crc32\":\"";
    static constexpr std::string_view kMid = "\",\"record\":";
    if (torn) {
      warn("truncated final line (no newline)");
      continue;
    }
    if (line.substr(0, kPrefix.size()) != kPrefix ||
        line.size() < kPrefix.size() + 8 + kMid.size() + 1 || line.back() != '}') {
      warn("malformed wrapper");
      continue;
    }
    const std::string_view crc_hex = line.substr(kPrefix.size(), 8);
    if (line.substr(kPrefix.size() + 8, kMid.size()) != kMid) {
      warn("malformed wrapper");
      continue;
    }
    const std::string_view record =
        line.substr(kPrefix.size() + 8 + kMid.size(),
                    line.size() - kPrefix.size() - 8 - kMid.size() - 1);
    std::uint32_t expect = 0;
    {
      const std::string hex(crc_hex);
      errno = 0;
      char* endp = nullptr;
      const unsigned long parsed = std::strtoul(hex.c_str(), &endp, 16);
      if (endp != hex.c_str() + 8 || errno == ERANGE) {
        warn("malformed checksum");
        continue;
      }
      expect = static_cast<std::uint32_t>(parsed);
    }
    if (Crc32(record) != expect) {
      warn("checksum mismatch (corrupt record)");
      continue;
    }
    load.records.emplace_back(record);
    load.record_lines.push_back(line_no);
  }
  if (load.corrupt + load.duplicates > 0) {
    load.warnings.push_back("journal '" + path + "': skipped " +
                            std::to_string(load.corrupt) + " corrupt / " +
                            std::to_string(load.duplicates) + " duplicate records");
    load.warning_lines.push_back(0);
  }
  return load;
}

}  // namespace lopass::runner
