#pragma once

// Journal splice: merges the shard journals of one sharded sweep
// (runner/shard.h) back into the canonical sequential-order journal.
//
// The contract the property tests pin down:
//
//  - a complete shard set (every shard 0..M-1 present, every record
//    intact) splices to a journal byte-identical to the one a
//    single-process `--jobs 1` run of the same sweep writes — same
//    records, same order, same wrapper bytes, no shard headers;
//  - truncated or damaged shards are salvaged, not rejected: every
//    intact record keeps its queue position (the mapping is positional,
//    see shard.h), the merged journal is the canonical-order
//    subsequence of what survived, and the loss is reported — such a
//    journal is still a valid `explore --resume` input that re-runs
//    exactly the missing jobs;
//  - a *malformed* shard set is rejected with FILE:line diagnostics,
//    never merged silently: a gap (missing shard index), an overlap
//    (two files claiming one shard), mixed sweep configurations,
//    records from a different queue (index beyond the sweep), or the
//    same job appearing twice.
//
// The CLI verb `lopass_cli merge-journals` wraps this with the lint
// exit-code contract: 0 complete merge and every job ok, 1 incomplete
// merge or degraded/failed jobs, 2 malformed shard set.

#include <cstdint>
#include <string>
#include <vector>

#include "runner/explore.h"
#include "runner/shard.h"

namespace lopass::runner {

// One merge finding. `fatal` findings make the shard set malformed
// (nothing is merged); non-fatal ones describe salvage decisions the
// operator should see. `file`/`line` locate the finding when it is
// tied to a journal line ("" / 0 for set-level findings).
struct MergeFinding {
  bool fatal = false;
  std::string file;
  std::size_t line = 0;
  std::string message;
};

struct MergeResult {
  // The sweep configuration the shard set agreed on (shard.index is
  // meaningless here). Valid only when !malformed().
  ShardHeader header;
  // Merged record payloads in canonical queue order, with the global
  // job index of each (indices[i] is the queue position of records[i]).
  std::vector<std::string> records;
  std::vector<std::int64_t> indices;
  // The same records parsed into job results, for report rendering.
  std::vector<JobResult> jobs;
  // Jobs of the sweep not covered by any intact record (truncation /
  // corruption loss). complete() means the merged journal is the whole
  // sweep and byte-identical to a sequential run's.
  std::int64_t missing = 0;
  std::vector<MergeFinding> findings;

  bool malformed() const {
    for (const MergeFinding& f : findings) {
      if (f.fatal) return true;
    }
    return false;
  }
  bool complete() const { return !malformed() && missing == 0; }
};

// Loads, validates and splices the given shard journals (any order).
// Never throws on bad input — every problem lands in findings.
MergeResult MergeJournals(const std::vector<std::string>& shard_paths);

// Writes the merged records to `path` in the standard journal format
// (one CRC-wrapped line per record, no shard header). Throws
// lopass::Error when the file cannot be written.
void WriteMergedJournal(const MergeResult& result, const std::string& path);

}  // namespace lopass::runner
