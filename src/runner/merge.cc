#include "runner/merge.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "runner/journal.h"

namespace lopass::runner {
namespace {

// One shard journal after loading: its header plus the data records
// that survived, each with its physical line number (the positional
// record-to-job mapping of shard.h needs the line, not the position in
// the salvaged list — a skipped line must still consume its job slot).
struct ShardFile {
  std::string path;
  ShardHeader header;
  std::size_t header_line = 0;
  std::vector<std::string> records;
  std::vector<std::size_t> lines;
};

// Everything two shards of one sweep must share: the header minus the
// shard's own index.
bool SameSweep(const ShardHeader& a, const ShardHeader& b) {
  return a.shard.count == b.shard.count && a.total_jobs == b.total_jobs &&
         a.apps == b.apps && a.scale == b.scale && a.base_seed == b.base_seed &&
         a.chaos == b.chaos && a.chaos_seed == b.chaos_seed;
}

}  // namespace

MergeResult MergeJournals(const std::vector<std::string>& shard_paths) {
  MergeResult result;
  const auto fatal = [&](const std::string& file, std::size_t line,
                         const std::string& msg) {
    result.findings.push_back(MergeFinding{true, file, line, msg});
  };
  const auto note = [&](const std::string& file, std::size_t line,
                        const std::string& msg) {
    result.findings.push_back(MergeFinding{false, file, line, msg});
  };

  if (shard_paths.empty()) {
    fatal("", 0, "no shard journals given");
    return result;
  }

  std::vector<ShardFile> files;
  for (const std::string& path : shard_paths) {
    // LoadJournal treats a missing file as a fresh start; for a splice
    // a named-but-absent input is an operator error, so probe first.
    std::FILE* probe = std::fopen(path.c_str(), "rb");
    if (probe == nullptr) {
      fatal(path, 0, "cannot open shard journal");
      continue;
    }
    std::fclose(probe);

    const JournalLoad load = LoadJournal(path);
    // The reader's salvage decisions (torn tail, checksum mismatches,
    // the skip summary) are worth the operator's eyes, but are never by
    // themselves a reason to reject the set — a crashed shard is
    // exactly what this tool exists to splice. Their messages already
    // carry path and line, so they pass through as set-level notes.
    for (const std::string& warning : load.warnings) note("", 0, warning);

    ShardFile file;
    file.path = path;
    bool have_header = false;
    bool rejected = false;
    for (std::size_t i = 0; i < load.records.size() && !rejected; ++i) {
      const std::string& record = load.records[i];
      const std::size_t line = load.record_lines[i];
      if (!have_header) {
        const auto header = ParseShardHeader(record);
        if (!header.has_value()) {
          fatal(path, line,
                IsShardHeader(record)
                    ? "malformed shard header"
                    : "first record is not a shard header (not a shard journal?)");
          rejected = true;
          break;
        }
        file.header = *header;
        file.header_line = line;
        have_header = true;
        continue;
      }
      if (IsShardHeader(record)) {
        fatal(path, line, "second shard header mid-journal");
        rejected = true;
        break;
      }
      file.records.push_back(record);
      file.lines.push_back(line);
    }
    if (rejected) continue;
    if (!have_header) {
      fatal(path, 1,
            "no intact shard header (empty, truncated before the header, or "
            "not a shard journal) — re-run this shard");
      continue;
    }
    files.push_back(std::move(file));
  }
  if (result.malformed()) return result;

  // Shard-set consistency: one sweep configuration, every shard index
  // 0..M-1 present exactly once, in any file order.
  const ShardHeader& ref = files.front().header;
  const int shards = ref.shard.count;
  std::map<int, const ShardFile*> by_index;
  for (const ShardFile& file : files) {
    if (!SameSweep(file.header, ref)) {
      fatal(file.path, file.header_line,
            "shard header disagrees with '" + files.front().path +
                "' (different sweep configuration; shards of one run must share "
                "queue, apps, scale, seed, and chaos settings)");
      continue;
    }
    const auto [it, inserted] = by_index.emplace(file.header.shard.index, &file);
    if (!inserted) {
      fatal(file.path, file.header_line,
            "overlap: shard " + std::to_string(file.header.shard.index) + "/" +
                std::to_string(shards) + " already provided by '" +
                it->second->path + "'");
    }
  }
  if (result.malformed()) return result;
  for (int i = 0; i < shards; ++i) {
    if (by_index.count(i) == 0) {
      fatal("", 0,
            "gap: shard " + std::to_string(i) + "/" + std::to_string(shards) +
                " is missing from the set — run it (or pass its journal) before "
                "merging");
    }
  }
  if (result.malformed()) return result;

  // Positional splice: the data record on physical line L of shard I
  // (header on line H) is global queue index I + (L - H - 1) * M.
  struct Entry {
    std::int64_t index = 0;
    const std::string* record = nullptr;
    const ShardFile* file = nullptr;
    std::size_t line = 0;
  };
  std::vector<Entry> entries;
  for (const auto& [shard_index, file] : by_index) {
    for (std::size_t j = 0; j < file->records.size(); ++j) {
      const std::int64_t ordinal =
          static_cast<std::int64_t>(file->lines[j]) -
          static_cast<std::int64_t>(file->header_line) - 1;
      const std::int64_t global = shard_index + ordinal * shards;
      if (global >= ref.total_jobs) {
        fatal(file->path, file->lines[j],
              "record maps beyond the sweep (job index " + std::to_string(global) +
                  " of " + std::to_string(ref.total_jobs) +
                  " jobs) — journal does not match its header");
        continue;
      }
      entries.push_back(Entry{global, &file->records[j], file, file->lines[j]});
    }
  }
  if (result.malformed()) return result;

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.index < b.index; });

  // Parse every record and reject duplicate jobs: two records claiming
  // one app/resource-set pair mean the shard files do not describe one
  // clean sweep, and a silent merge would hide whichever result lost.
  std::unordered_map<std::string, const Entry*> by_key;
  for (const Entry& entry : entries) {
    JobResult job;
    if (!ParseJobRecord(*entry.record, job)) {
      fatal(entry.file->path, entry.line,
            "checksummed record is not a job record (schema mismatch)");
      continue;
    }
    const std::string key = job.app + "/" + job.resource_set;
    const auto [it, inserted] = by_key.emplace(key, &entry);
    if (!inserted) {
      fatal(entry.file->path, entry.line,
            "duplicate job '" + key + "' (also at " + it->second->file->path + ":" +
                std::to_string(it->second->line) + ")");
      continue;
    }
    result.records.push_back(*entry.record);
    result.indices.push_back(entry.index);
    result.jobs.push_back(std::move(job));
  }
  if (result.malformed()) {
    result.records.clear();
    result.indices.clear();
    result.jobs.clear();
    return result;
  }

  result.header = ref;
  result.missing = ref.total_jobs - static_cast<std::int64_t>(result.records.size());
  if (result.missing > 0) {
    note("", 0,
         "merged " + std::to_string(result.records.size()) + " of " +
             std::to_string(ref.total_jobs) + " jobs; " +
             std::to_string(result.missing) +
             " lost to truncation or corruption — `explore --resume` the merged "
             "journal to re-run exactly the missing jobs");
  }
  return result;
}

void WriteMergedJournal(const MergeResult& result, const std::string& path) {
  JournalWriter writer(path, /*truncate=*/true);
  for (const std::string& record : result.records) writer.Append(record);
}

}  // namespace lopass::runner
