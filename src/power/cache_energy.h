#pragma once

// Analytical cache energy model.
//
// The paper feeds "analytical models for main memory energy consumption
// and caches ... with the output of a cache profiler" (section 3.5) and
// parameterizes them with "feature sizes, capacitances of a 0.8u CMOS
// process" (section 4). WARTS and the original models are unavailable;
// we reconstruct a Kamble/Ghose-style SRAM access-energy decomposition:
//
//   E_access = E_decode + E_wordline + E_bitline + E_senseamp + E_output
//
// with all capacitances derived from the TechParams of the library.
// The model is deliberately simple but monotone in the architectural
// parameters (capacity, line size, associativity), which is what the
// partitioner's per-partition re-estimation needs.

#include <cstdint>

#include "common/units.h"
#include "power/tech_library.h"

namespace lopass::power {

// Architectural description of one cache core.
struct CacheGeometry {
  std::uint32_t capacity_bytes = 2048;
  std::uint32_t line_bytes = 16;
  std::uint32_t associativity = 1;
  std::uint32_t address_bits = 32;

  std::uint32_t num_lines() const { return capacity_bytes / line_bytes; }
  std::uint32_t num_sets() const { return num_lines() / associativity; }
  std::uint32_t tag_bits() const;
};

class CacheEnergyModel {
 public:
  CacheEnergyModel(CacheGeometry geometry, const TechParams& params);

  // Energy of one hit access (read or write of one word).
  Energy read_hit_energy() const { return read_hit_; }
  Energy write_hit_energy() const { return write_hit_; }

  // Energy dissipated inside the cache when filling one line after a
  // miss (the main-memory and bus energy of the fill is accounted
  // separately by MemoryEnergyModel / TechLibrary::bus_*).
  Energy line_fill_energy() const { return line_fill_; }

  // Energy of writing one dirty line back (internal read of the line).
  Energy writeback_energy() const { return writeback_; }

  const CacheGeometry& geometry() const { return geometry_; }

 private:
  Energy AccessEnergy(std::uint32_t bits_accessed, bool write) const;

  CacheGeometry geometry_;
  TechParams params_;
  Energy read_hit_;
  Energy write_hit_;
  Energy line_fill_;
  Energy writeback_;
};

// Analytical main-memory energy model: a large on-chip (or die-stacked)
// SRAM/DRAM core whose per-access energy grows with the square root of
// its capacity (bitline/wordline lengths grow with array edge).
class MemoryEnergyModel {
 public:
  MemoryEnergyModel(std::uint32_t capacity_bytes, const TechParams& params);

  Energy read_energy() const { return read_; }    // one 32-bit word
  Energy write_energy() const { return write_; }  // one 32-bit word

  std::uint32_t capacity_bytes() const { return capacity_bytes_; }

 private:
  std::uint32_t capacity_bytes_;
  Energy read_;
  Energy write_;
};

}  // namespace lopass::power
