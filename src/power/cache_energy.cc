#include "power/cache_energy.h"

#include <cmath>

#include "common/error.h"

namespace lopass::power {

namespace {

bool IsPow2(std::uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint32_t Log2(std::uint32_t x) {
  std::uint32_t r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

}  // namespace

std::uint32_t CacheGeometry::tag_bits() const {
  const std::uint32_t offset_bits = Log2(line_bytes);
  const std::uint32_t index_bits = Log2(num_sets());
  return address_bits - offset_bits - index_bits;
}

CacheEnergyModel::CacheEnergyModel(CacheGeometry geometry, const TechParams& params)
    : geometry_(geometry), params_(params) {
  LOPASS_CHECK(IsPow2(geometry_.capacity_bytes), "cache capacity must be a power of two");
  LOPASS_CHECK(IsPow2(geometry_.line_bytes), "cache line size must be a power of two");
  LOPASS_CHECK(IsPow2(geometry_.associativity), "associativity must be a power of two");
  LOPASS_CHECK(geometry_.line_bytes >= 4, "line size must hold at least one word");
  LOPASS_CHECK(geometry_.capacity_bytes >= geometry_.line_bytes * geometry_.associativity,
               "cache must hold at least one set");

  // A word access reads `associativity` data words plus all tags of the
  // set; a line fill writes a whole line plus one tag.
  const std::uint32_t word_bits = 32;
  const std::uint32_t read_bits = geometry_.associativity * (word_bits + geometry_.tag_bits());
  read_hit_ = AccessEnergy(read_bits, /*write=*/false);
  write_hit_ = AccessEnergy(read_bits, /*write=*/true);
  line_fill_ = AccessEnergy(geometry_.line_bytes * 8 + geometry_.tag_bits(), /*write=*/true);
  writeback_ = AccessEnergy(geometry_.line_bytes * 8, /*write=*/false);
}

Energy CacheEnergyModel::AccessEnergy(std::uint32_t bits_accessed, bool write) const {
  const double vdd = params_.vdd;
  const double rows = geometry_.num_sets();
  const double cols_total =
      geometry_.associativity * (geometry_.line_bytes * 8.0 + geometry_.tag_bits());

  // Decoder: ~2 gate loads per address bit per decoder level.
  const double decode_c = 2.0 * std::log2(std::max(rows, 2.0)) * 6.0 * params_.gate_capacitance;
  const double e_decode = decode_c * vdd * vdd;

  // Wordline: one row's gate capacitances swing rail to rail.
  const double wl_c = cols_total * params_.wordline_cell_capacitance +
                      8.0 * params_.gate_capacitance;  // driver
  const double e_wordline = wl_c * vdd * vdd;

  // Bitlines: every column of the array is precharged and partially
  // discharged on a read (limited swing); writes drive accessed
  // columns rail to rail.
  const double bl_c_per_col = rows * params_.bitline_cell_capacitance;
  const double read_swing = params_.bitline_swing;
  double e_bitline;
  if (write) {
    const double e_driven = bits_accessed * 2.0 /*both rails*/ * bl_c_per_col * vdd * vdd;
    const double e_rest = (cols_total - bits_accessed) * bl_c_per_col * vdd * read_swing;
    e_bitline = e_driven + std::max(0.0, e_rest);
  } else {
    e_bitline = cols_total * bl_c_per_col * vdd * read_swing;
  }

  // Sense amplifiers fire on read columns only.
  const double e_sense = write ? 0.0 : bits_accessed * params_.sense_amp_energy;

  // Output drivers for the accessed bits.
  const double e_output = bits_accessed * 4.0 * params_.gate_capacitance * vdd * vdd;

  return Energy{e_decode + e_wordline + e_bitline + e_sense + e_output};
}

MemoryEnergyModel::MemoryEnergyModel(std::uint32_t capacity_bytes, const TechParams& params)
    : capacity_bytes_(capacity_bytes) {
  LOPASS_CHECK(capacity_bytes >= 1024, "memory capacity must be at least 1KB");
  // Treat the memory as a square array of banks: bitline/wordline
  // energies grow with the array edge ~ sqrt(capacity). Normalized so
  // that a 256KB memory costs ~9nJ per word read at 3.3V — a value in
  // line with 0.8u-era on-board SRAM figures.
  const double edge = std::sqrt(static_cast<double>(capacity_bytes));
  const double kReadCoeff = 17.6e-12;  // J per sqrt(byte) at 3.3V
  const double vscale = (params.vdd * params.vdd) / (3.3 * 3.3);
  read_ = Energy{kReadCoeff * edge * vscale};
  write_ = Energy{kReadCoeff * 1.25 * edge * vscale};
}

}  // namespace lopass::power
