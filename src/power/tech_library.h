#pragma once

// Reconstruction of the paper's "CMOS6" technology library.
//
// The paper derives, for every datapath resource type (ALU, multiplier,
// shifter, ...), an average power consumption P_av, a minimum cycle
// time T_cyc, a per-operation latency in cycles, and a hardware effort
// in gate equivalents GEQ (Fig. 1 line 11, Fig. 4 lines 16-18). The
// original NEC CMOS6 0.8u library is not available; the values below
// are reconstructed from 0.8u-era datapath literature and are chosen to
// preserve the *relative* magnitudes the algorithms depend on
// (multiplier >> ALU > shifter > comparator; see DESIGN.md section 2).

#include <array>
#include <cstdint>
#include <string>

#include "common/units.h"

namespace lopass::power {

// Datapath resource types an operation can be mapped to. Mirrors the
// paper's examples: "an ALU, a shifter, a multiplier etc." (footnote 10)
// plus registers and a memory port for loads/stores.
enum class ResourceType : std::uint8_t {
  kAlu = 0,        // add/sub/logic/compare capable 32-bit ALU
  kAdder,          // plain 32-bit carry-lookahead adder (add/sub only)
  kComparator,     // 32-bit magnitude comparator
  kShifter,        // 32-bit barrel shifter
  kMultiplier,     // 32x32 parallel multiplier
  kDivider,        // 32-bit sequential divider
  kRegister,       // 32-bit register (storage element)
  kMemoryPort,     // address generation + memory interface port
  kCount,
};

constexpr int kNumResourceTypes = static_cast<int>(ResourceType::kCount);

// Human-readable name, e.g. "ALU", "multiplier".
const char* ResourceTypeName(ResourceType t);

// Static characterization of one resource type in the library.
struct ResourceSpec {
  ResourceType type = ResourceType::kAlu;
  // Hardware effort in gate equivalents (2-input NAND equivalents).
  double geq = 0.0;
  // Average power consumed while the resource is clocked (Eq. 2's
  // P_av^rs), at the library's nominal voltage and frequency.
  Power average_power;
  // Minimum cycle time the resource can run at (Fig. 1 line 11 T_cyc).
  Duration min_cycle_time;
  // Latency of one operation in cycles (multiplier/divider are
  // multi-cycle; everything else completes in one).
  Cycles op_latency = 1;
  // Energy of one *active* operation at nominal conditions; used by the
  // gate-level-style refinement pass (Fig. 1 line 15).
  Energy energy_per_op;
};

// Global process/operating-point parameters of the 0.8u CMOS process
// the paper's experiments use ("parameters (feature sizes,
// capacitances) of a 0.8u CMOS process", section 4).
struct TechParams {
  double feature_um = 0.8;       // drawn feature size
  double vdd = 3.3;              // supply voltage [V]
  double clock_mhz = 25.0;       // nominal system clock
  // Interconnect/bus capacitance for one off-core bus line [F].
  double bus_line_capacitance = 12e-12;
  // Gate capacitance of a minimum inverter input [F]; basis of the
  // analytical cache model.
  double gate_capacitance = 15e-15;
  // SRAM bitline capacitance contributed by one cell [F].
  double bitline_cell_capacitance = 2.2e-15;
  // Wordline capacitance contributed by one cell [F].
  double wordline_cell_capacitance = 1.8e-15;
  // Bitline swing used during reads (sense amps limit the swing) [V].
  double bitline_swing = 0.9;
  // Energy of one sense amplifier activation [J].
  double sense_amp_energy = 2.0e-13;

  Duration clock_period() const { return Duration{1.0 / (clock_mhz * 1e6)}; }
};

// The technology library: resource specs + process parameters.
class TechLibrary {
 public:
  // The reconstructed CMOS6 0.8u library used by all experiments.
  static const TechLibrary& Cmos6();

  // Constant-field scaling of this library to another feature size
  // (classic Dennard rules, first order): with scale s = new/old,
  // voltage and capacitance scale by s, so switching energy scales by
  // s^3, delay by s, and power (at the faster clock) by s^2. Gate
  // counts are unchanged. Used to project the paper's 0.8µ results to
  // the intro's 0.18µ SOC node (bench_node_scaling).
  TechLibrary ScaledTo(double feature_um) const;

  const ResourceSpec& spec(ResourceType t) const;
  const TechParams& params() const { return params_; }

  // Energy consumed by resource `t` over `cycles` clock cycles while
  // clocked but *not* actively used (Eq. 2's wasted-energy term for one
  // resource). Non-gated resources burn a fixed fraction of their
  // active power switching idly.
  Energy idle_energy(ResourceType t, Cycles cycles) const;

  // Energy of `ops` active operations on resource `t` (used energy).
  Energy active_energy(ResourceType t, std::uint64_t ops) const;

  // Energy of a single read/write transfer over the shared system bus
  // of Fig. 2a (E_bus_read / E_bus_write of Fig. 3 step 5). Reads and
  // writes imply different amounts of energy (footnote 9): a write
  // drives the full bus plus the memory write circuitry.
  Energy bus_read_energy() const;
  Energy bus_write_energy() const;

  // Fraction of active power burned by an idle, non-clock-gated
  // resource (the premise of section 3.1).
  double idle_power_fraction() const { return idle_power_fraction_; }

  // Builder-style mutators for ablation studies / custom libraries.
  TechLibrary& set_spec(const ResourceSpec& s);
  TechLibrary& set_params(const TechParams& p);
  TechLibrary& set_idle_power_fraction(double f);

  TechLibrary();  // empty library with default params; use Cmos6() normally

 private:
  std::array<ResourceSpec, kNumResourceTypes> specs_{};
  TechParams params_{};
  double idle_power_fraction_ = 0.45;
};

}  // namespace lopass::power
