#include "power/tech_library.h"

#include "common/error.h"

namespace lopass::power {

const char* ResourceTypeName(ResourceType t) {
  switch (t) {
    case ResourceType::kAlu: return "ALU";
    case ResourceType::kAdder: return "adder";
    case ResourceType::kComparator: return "comparator";
    case ResourceType::kShifter: return "shifter";
    case ResourceType::kMultiplier: return "multiplier";
    case ResourceType::kDivider: return "divider";
    case ResourceType::kRegister: return "register";
    case ResourceType::kMemoryPort: return "memport";
    case ResourceType::kCount: break;
  }
  return "?";
}

TechLibrary::TechLibrary() = default;

namespace {

ResourceSpec MakeSpec(ResourceType type, double geq, double p_av_mw,
                      double t_cyc_ns, Cycles latency, double e_op_pj) {
  ResourceSpec s;
  s.type = type;
  s.geq = geq;
  s.average_power = Power::from_milliwatts(p_av_mw);
  s.min_cycle_time = Duration::from_nanoseconds(t_cyc_ns);
  s.op_latency = latency;
  s.energy_per_op = Energy::from_picojoules(e_op_pj);
  return s;
}

TechLibrary BuildCmos6() {
  TechLibrary lib;
  // Values reconstructed for a 0.8u, 3.3V standard-cell process
  // (see DESIGN.md). GEQ = 2-input NAND equivalents.
  //                      type                        GEQ    P_av   T_cyc lat  E/op
  //                                                         [mW]   [ns]       [pJ]
  lib.set_spec(MakeSpec(ResourceType::kAlu,         1450.0,  4.2,  22.0, 1,  420.0));
  lib.set_spec(MakeSpec(ResourceType::kAdder,        780.0,  2.3,  16.0, 1,  230.0));
  lib.set_spec(MakeSpec(ResourceType::kComparator,   310.0,  0.9,  10.0, 1,   90.0));
  lib.set_spec(MakeSpec(ResourceType::kShifter,      920.0,  2.6,  14.0, 1,  260.0));
  lib.set_spec(MakeSpec(ResourceType::kMultiplier,  7900.0, 26.0,  38.0, 2, 2600.0));
  // The CMOS6 datapath divider is an area-efficient radix-2 sequential
  // unit: long latency, modest power. (The SPARClite µP core's own
  // divide unit is faster; see iss/energy_model.h.)
  lib.set_spec(MakeSpec(ResourceType::kDivider,     9800.0, 18.0,  34.0, 32, 3100.0));
  lib.set_spec(MakeSpec(ResourceType::kRegister,     125.0,  0.5,   6.0, 1,   50.0));
  lib.set_spec(MakeSpec(ResourceType::kMemoryPort,   540.0,  1.8,  20.0, 1,  180.0));

  TechParams p;
  p.feature_um = 0.8;
  p.vdd = 3.3;
  p.clock_mhz = 25.0;
  lib.set_params(p);
  lib.set_idle_power_fraction(0.45);
  return lib;
}

}  // namespace

const TechLibrary& TechLibrary::Cmos6() {
  static const TechLibrary lib = BuildCmos6();
  return lib;
}

TechLibrary TechLibrary::ScaledTo(double feature_um) const {
  LOPASS_CHECK(feature_um > 0.0, "feature size must be positive");
  const double s = feature_um / params_.feature_um;  // < 1 when shrinking
  TechLibrary out = *this;

  TechParams p = params_;
  p.feature_um = feature_um;
  p.vdd = params_.vdd * s;
  p.clock_mhz = params_.clock_mhz / s;
  p.bus_line_capacitance = params_.bus_line_capacitance * s;
  p.gate_capacitance = params_.gate_capacitance * s;
  p.bitline_cell_capacitance = params_.bitline_cell_capacitance * s;
  p.wordline_cell_capacitance = params_.wordline_cell_capacitance * s;
  p.bitline_swing = params_.bitline_swing * s;
  p.sense_amp_energy = params_.sense_amp_energy * s * s * s;
  out.set_params(p);

  for (int t = 0; t < kNumResourceTypes; ++t) {
    ResourceSpec spec = specs_[static_cast<std::size_t>(t)];
    // P = E/t: energy ~ s^3, delay ~ s -> average power ~ s^2.
    spec.average_power = Power{spec.average_power.watts * s * s};
    spec.min_cycle_time = Duration{spec.min_cycle_time.seconds * s};
    spec.energy_per_op = Energy{spec.energy_per_op.joules * s * s * s};
    out.set_spec(spec);
  }
  return out;
}

const ResourceSpec& TechLibrary::spec(ResourceType t) const {
  const int idx = static_cast<int>(t);
  LOPASS_CHECK(idx >= 0 && idx < kNumResourceTypes, "bad resource type");
  return specs_[static_cast<std::size_t>(idx)];
}

Energy TechLibrary::idle_energy(ResourceType t, Cycles cycles) const {
  const ResourceSpec& s = spec(t);
  const Duration span{static_cast<double>(cycles) * params_.clock_period().seconds};
  return s.average_power * span * idle_power_fraction_;
}

Energy TechLibrary::active_energy(ResourceType t, std::uint64_t ops) const {
  const ResourceSpec& s = spec(t);
  return s.energy_per_op * static_cast<double>(ops);
}

Energy TechLibrary::bus_read_energy() const {
  // One 32-bit word + ~8 control/handshake lines swing rail to rail.
  const double lines = 32.0 + 8.0;
  const double e = 0.5 * params_.bus_line_capacitance * params_.vdd * params_.vdd * lines;
  return Energy{e};
}

Energy TechLibrary::bus_write_energy() const {
  // Writes additionally drive the memory write circuitry: the paper's
  // footnote 9 notes reads and writes imply different energies.
  return bus_read_energy() * 1.35;
}

TechLibrary& TechLibrary::set_spec(const ResourceSpec& s) {
  const int idx = static_cast<int>(s.type);
  LOPASS_CHECK(idx >= 0 && idx < kNumResourceTypes, "bad resource type");
  specs_[static_cast<std::size_t>(idx)] = s;
  return *this;
}

TechLibrary& TechLibrary::set_params(const TechParams& p) {
  params_ = p;
  return *this;
}

TechLibrary& TechLibrary::set_idle_power_fraction(double f) {
  LOPASS_CHECK(f >= 0.0 && f <= 1.0, "idle power fraction must be in [0,1]");
  idle_power_fraction_ = f;
  return *this;
}

}  // namespace lopass::power
