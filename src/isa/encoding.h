#pragma once

// SL32 binary encoding.
//
// The architectural instruction format is 32 bits wide:
//
//   ALU register   [31:26]=op [25]=0 [24:20]=rd [19:15]=rs1 [14:10]=rs2
//   ALU immediate  [31:26]=op [25]=1 [24:20]=rd [19:15]=rs1 [14:0]=simm15
//   LI             [31:26]=op [25:21]=rd [20:0]=simm21
//   LD/ST          [31:26]=op [25:21]=rd [20:16]=rs1 [15:0]=simm16 offset
//   BEQZ/BNEZ      [31:26]=op [25:21]=rs1 [20:0]=target (instr index)
//   J/CALL         [31:26]=op [25:0]=target
//   NOP/RET        [31:26]=op
//
// Values that do not fit their field use an *extended format*: bit
// patterns with the immediate field saturated to the sentinel minimum
// flag a second 32-bit extension word carrying the full value (the
// 68k-style escape). Encode() therefore emits one or two words per
// instruction; Decode() consumes them back. The ISS executes the
// in-memory SlInstr form; the encoder exists for image emission, size
// accounting and round-trip validation.

#include <cstdint>
#include <span>
#include <vector>

#include "isa/isa.h"

namespace lopass::isa {

// Encodes one instruction into 1 or 2 words appended to `out`.
// Returns the number of words emitted. Throws on unencodable fields
// (e.g. register out of range), which indicates a codegen bug.
int Encode(const SlInstr& in, std::vector<std::uint32_t>& out);

// Decodes one instruction starting at words[0]; sets `consumed` to 1 or
// 2. Attribution fields (fn/block) are not part of the architectural
// encoding and come back as defaults.
SlInstr Decode(std::span<const std::uint32_t> words, int& consumed);

struct EncodedProgram {
  std::vector<std::uint32_t> words;
  // word_of[i] = first word index of instruction i (for branch-target
  // fixups and size accounting).
  std::vector<std::uint32_t> word_of;

  std::size_t size_bytes() const { return words.size() * 4; }
};

// Encodes a whole program. Branch/call targets remain *instruction*
// indices (the decoder restores them as such).
EncodedProgram EncodeProgram(const SlProgram& program);

// Decodes an encoded image back into instruction form. The result
// compares equal to the original field-by-field except attribution.
std::vector<SlInstr> DecodeProgram(const EncodedProgram& image);

// True when the two instructions match in every architectural field
// (op, registers, immediate, target, imm-flag) — attribution ignored.
bool ArchEqual(const SlInstr& a, const SlInstr& b);

}  // namespace lopass::isa
