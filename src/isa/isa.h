#pragma once

// SL32: a SPARClite-class 32-bit RISC instruction set.
//
// The paper's software side runs on an LSI/Fujitsu SPARClite core with
// an instruction-level energy model in the style of Tiwari et al. [12].
// SL32 reconstructs that substrate: a small load/store RISC with the
// latency profile of an early-90s embedded core (single-cycle ALU,
// multi-cycle multiply/divide, blocking caches). Register conventions:
// r0 is hardwired zero, r2 carries return values, r8..r25 are
// caller-scratch temporaries used by the code generator.

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "ir/module.h"

namespace lopass::isa {

enum class SlOp : std::uint8_t {
  kNop,
  // ALU (rd, rs1, rs2/imm).
  kAdd, kSub, kAnd, kOr, kXor,
  kSll, kSrl, kSra,
  kMul, kDiv, kMod,
  kMin, kMax,               // DSP extension of the core
  kSeq, kSne, kSlt, kSle, kSgt, kSge,  // set-on-comparison
  kLi,                      // rd <- imm
  // Memory (rd/rs value, rs1 base, imm offset).
  kLd, kSt,
  // Control flow.
  kBeqz, kBnez,             // conditional branch on rs1, target
  kJ,                       // unconditional jump, target
  kCall,                    // call function whose entry is `target`
  kRet,
};

const char* SlOpName(SlOp op);

// Broad instruction class used by the energy model and the utilization
// analysis (which µP resources an instruction keeps busy).
enum class InstrClass : std::uint8_t {
  kAlu, kShift, kMul, kDiv, kLoad, kStore, kBranch, kJump, kCall, kNop,
};

InstrClass ClassOf(SlOp op);

// Base latency in cycles, excluding cache-miss stalls.
lopass::Cycles BaseCycles(SlOp op);

struct SlInstr {
  SlOp op = SlOp::kNop;
  std::int16_t rd = 0;
  std::int16_t rs1 = 0;
  std::int16_t rs2 = 0;
  bool use_imm = false;      // second ALU operand is `imm` instead of rs2
  std::int64_t imm = 0;      // immediate / memory offset
  std::int32_t target = -1;  // instruction index for branches/calls

  // Attribution: which IR block this instruction implements. This is
  // how the simulator knows whether an instruction belongs to a
  // cluster that has been moved to the ASIC core.
  ir::FunctionId fn = -1;
  ir::BlockId block = ir::kNoBlock;
};

// Register file size and conventions.
constexpr int kNumRegs = 32;
constexpr int kZeroReg = 0;
constexpr int kRetValReg = 2;
constexpr int kFirstTempReg = 8;
constexpr int kLastTempReg = 25;

struct FuncInfo {
  ir::FunctionId fn = -1;
  std::string name;
  std::uint32_t entry = 0;       // instruction index of the entry point
  std::uint32_t end = 0;         // one past the last instruction
  std::uint32_t spill_base = 0;  // byte address of this function's spill area
  std::uint32_t spill_words = 0;
};

// A fully linked SL32 program.
struct SlProgram {
  std::vector<SlInstr> code;
  std::vector<FuncInfo> functions;
  // Data space size including static data and spill areas.
  std::uint32_t data_size_bytes = 0;
  // Code base address (i-cache addresses = code_base + 4*index).
  std::uint32_t code_base = 0x0001'0000;

  const FuncInfo& function(ir::FunctionId fn) const;
  std::uint32_t FetchAddress(std::uint32_t index) const { return code_base + 4 * index; }
};

std::string ToString(const SlProgram& p);

}  // namespace lopass::isa
