#pragma once

// Code generator: lowers lopass IR to SL32.
//
// The generated code has the flavor of a non-optimizing embedded
// compiler of the paper's era: named variables are memory-resident
// (every readvar/writevar is a load/store), expression temporaries live
// in registers with block-local lifetimes, and a local spill area per
// function absorbs register pressure. Every emitted instruction is
// attributed to the IR basic block it implements, which lets the
// simulator account a hardware-mapped cluster's instructions to the
// ASIC core instead of the µP core.

#include "ir/module.h"
#include "isa/isa.h"

namespace lopass::isa {

// Generates a linked SL32 program for the whole module. Requires a
// verified module with assigned addresses. Throws lopass::Error on
// unsupported constructs.
SlProgram Generate(const ir::Module& module);

}  // namespace lopass::isa
