#include "isa/peephole.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace lopass::isa {

std::string PeepholeStats::ToString() const {
  std::ostringstream os;
  os << "self-moves=" << self_moves << " add-zero=" << add_zero
     << " store-load=" << store_load << " jump-to-next=" << jump_to_next;
  return os.str();
}

namespace {

bool IsSelfMove(const SlInstr& in) {
  // `or rd, rd, r0` and `or rd, r0, rd` copy rd onto itself.
  if (in.op != SlOp::kOr || in.use_imm) return false;
  if (in.rd == in.rs1 && in.rs2 == kZeroReg) return true;
  if (in.rd == in.rs2 && in.rs1 == kZeroReg) return true;
  return false;
}

bool IsAddZero(const SlInstr& in) {
  if (!in.use_imm || in.imm != 0 || in.rd != in.rs1) return false;
  switch (in.op) {
    case SlOp::kAdd:
    case SlOp::kSub:
    case SlOp::kOr:
    case SlOp::kXor:
      return true;
    default:
      return false;
  }
}

// One rewrite round. Returns true if anything changed.
bool Round(SlProgram& program, PeepholeStats& stats) {
  const std::size_t n = program.code.size();

  // Instruction indices that are control-flow targets (branches, calls,
  // function entries): a store-load fusion across such a boundary would
  // be unsound, and target instructions must survive remapping cleanly.
  std::vector<bool> is_target(n + 1, false);
  for (const SlInstr& in : program.code) {
    if (in.op == SlOp::kBeqz || in.op == SlOp::kBnez || in.op == SlOp::kJ ||
        in.op == SlOp::kCall) {
      is_target[static_cast<std::size_t>(in.target)] = true;
    }
  }
  for (const FuncInfo& f : program.functions) is_target[f.entry] = true;

  std::vector<bool> remove(n, false);
  bool changed = false;

  for (std::size_t i = 0; i < n; ++i) {
    SlInstr& in = program.code[i];
    if (IsSelfMove(in)) {
      remove[i] = true;
      ++stats.self_moves;
      changed = true;
      continue;
    }
    if (IsAddZero(in)) {
      remove[i] = true;
      ++stats.add_zero;
      changed = true;
      continue;
    }
    if (in.op == SlOp::kJ && static_cast<std::size_t>(in.target) == i + 1) {
      remove[i] = true;
      ++stats.jump_to_next;
      changed = true;
      continue;
    }
    // Adjacent store-load of the same address: forward the register.
    if (in.op == SlOp::kSt && i + 1 < n && !is_target[i + 1]) {
      SlInstr& next = program.code[i + 1];
      if (next.op == SlOp::kLd && next.rs1 == in.rs1 && next.imm == in.imm &&
          next.rs1 != next.rd /* base must survive */) {
        if (next.rd == in.rd) {
          remove[i + 1] = true;  // load of the just-stored register
        } else {
          next.op = SlOp::kOr;
          next.rs1 = in.rd;
          next.rs2 = kZeroReg;
          next.use_imm = false;
          next.imm = 0;
        }
        ++stats.store_load;
        changed = true;
      }
    }
  }
  if (!changed) return false;

  // Compact and re-link. new_index[i] = index of the first kept
  // instruction at or after i.
  std::vector<std::int32_t> new_index(n + 1, 0);
  std::int32_t next_kept = static_cast<std::int32_t>(n);
  // First pass: assign kept slots.
  std::vector<std::int32_t> slot(n, -1);
  std::int32_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!remove[i]) slot[i] = k++;
  }
  // Backward fill of "first kept at or after".
  new_index[n] = k;
  next_kept = k;
  for (std::size_t i = n; i-- > 0;) {
    if (!remove[i]) next_kept = slot[i];
    new_index[i] = next_kept;
  }

  std::vector<SlInstr> out;
  out.reserve(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    if (remove[i]) continue;
    SlInstr in = program.code[i];
    if (in.op == SlOp::kBeqz || in.op == SlOp::kBnez || in.op == SlOp::kJ ||
        in.op == SlOp::kCall) {
      in.target = new_index[static_cast<std::size_t>(in.target)];
    }
    out.push_back(in);
  }
  program.code = std::move(out);
  for (FuncInfo& f : program.functions) {
    f.entry = static_cast<std::uint32_t>(new_index[f.entry]);
    f.end = static_cast<std::uint32_t>(new_index[f.end]);
  }
  return true;
}

}  // namespace

PeepholeStats Peephole(SlProgram& program, int max_rounds) {
  PeepholeStats stats;
  for (int r = 0; r < max_rounds; ++r) {
    if (!Round(program, stats)) break;
  }
  return stats;
}

}  // namespace lopass::isa
