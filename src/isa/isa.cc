#include "isa/isa.h"

#include <sstream>

#include "common/error.h"

namespace lopass::isa {

const char* SlOpName(SlOp op) {
  switch (op) {
    case SlOp::kNop: return "nop";
    case SlOp::kAdd: return "add";
    case SlOp::kSub: return "sub";
    case SlOp::kAnd: return "and";
    case SlOp::kOr: return "or";
    case SlOp::kXor: return "xor";
    case SlOp::kSll: return "sll";
    case SlOp::kSrl: return "srl";
    case SlOp::kSra: return "sra";
    case SlOp::kMul: return "mul";
    case SlOp::kDiv: return "div";
    case SlOp::kMod: return "mod";
    case SlOp::kMin: return "min";
    case SlOp::kMax: return "max";
    case SlOp::kSeq: return "seq";
    case SlOp::kSne: return "sne";
    case SlOp::kSlt: return "slt";
    case SlOp::kSle: return "sle";
    case SlOp::kSgt: return "sgt";
    case SlOp::kSge: return "sge";
    case SlOp::kLi: return "li";
    case SlOp::kLd: return "ld";
    case SlOp::kSt: return "st";
    case SlOp::kBeqz: return "beqz";
    case SlOp::kBnez: return "bnez";
    case SlOp::kJ: return "j";
    case SlOp::kCall: return "call";
    case SlOp::kRet: return "ret";
  }
  return "?";
}

InstrClass ClassOf(SlOp op) {
  switch (op) {
    case SlOp::kNop: return InstrClass::kNop;
    case SlOp::kSll:
    case SlOp::kSrl:
    case SlOp::kSra: return InstrClass::kShift;
    case SlOp::kMul: return InstrClass::kMul;
    case SlOp::kDiv:
    case SlOp::kMod: return InstrClass::kDiv;
    case SlOp::kLd: return InstrClass::kLoad;
    case SlOp::kSt: return InstrClass::kStore;
    case SlOp::kBeqz:
    case SlOp::kBnez: return InstrClass::kBranch;
    case SlOp::kJ:
    case SlOp::kRet: return InstrClass::kJump;
    case SlOp::kCall: return InstrClass::kCall;
    default: return InstrClass::kAlu;
  }
}

Cycles BaseCycles(SlOp op) {
  switch (op) {
    case SlOp::kMul: return 3;
    // SPARClite's radix-4 divide step unit.
    case SlOp::kDiv:
    case SlOp::kMod: return 8;
    case SlOp::kBeqz:
    case SlOp::kBnez: return 1;  // +1 if taken (accounted by the simulator)
    case SlOp::kJ: return 2;
    case SlOp::kCall: return 2;
    case SlOp::kRet: return 2;
    default: return 1;
  }
}

const FuncInfo& SlProgram::function(ir::FunctionId fn) const {
  for (const FuncInfo& f : functions) {
    if (f.fn == fn) return f;
  }
  LOPASS_THROW("SL32 program has no function with id " + std::to_string(fn));
}

std::string ToString(const SlProgram& p) {
  std::ostringstream os;
  for (const FuncInfo& f : p.functions) {
    os << f.name << ":  ; entry=" << f.entry << " spill=" << f.spill_words << "w\n";
    for (std::uint32_t i = f.entry; i < f.end; ++i) {
      const SlInstr& in = p.code[i];
      os << "  " << i << ": " << SlOpName(in.op);
      switch (in.op) {
        case SlOp::kNop:
        case SlOp::kRet:
          break;
        case SlOp::kLi:
          os << " r" << in.rd << ", " << in.imm;
          break;
        case SlOp::kLd:
          os << " r" << in.rd << ", [r" << in.rs1 << '+' << in.imm << ']';
          break;
        case SlOp::kSt:
          os << " r" << in.rd << ", [r" << in.rs1 << '+' << in.imm << ']';
          break;
        case SlOp::kBeqz:
        case SlOp::kBnez:
          os << " r" << in.rs1 << ", @" << in.target;
          break;
        case SlOp::kJ:
        case SlOp::kCall:
          os << " @" << in.target;
          break;
        default:
          os << " r" << in.rd << ", r" << in.rs1 << ", ";
          if (in.use_imm) {
            os << in.imm;
          } else {
            os << 'r' << in.rs2;
          }
      }
      os << "   ; bb" << in.block << '\n';
    }
  }
  return os.str();
}

}  // namespace lopass::isa
