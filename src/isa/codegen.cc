#include "isa/codegen.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace lopass::isa {

namespace {

using ir::Opcode;
using ir::Operand;

// Immediate range usable directly in ALU-immediate forms (SPARC-style
// 13-bit signed simm).
bool FitsSimm13(std::int64_t v) { return v >= -4096 && v <= 4095; }

bool HasImmForm(SlOp op) {
  switch (op) {
    case SlOp::kAdd:
    case SlOp::kSub:
    case SlOp::kAnd:
    case SlOp::kOr:
    case SlOp::kXor:
    case SlOp::kSll:
    case SlOp::kSrl:
    case SlOp::kSra:
    case SlOp::kSeq:
    case SlOp::kSne:
    case SlOp::kSlt:
    case SlOp::kSle:
    case SlOp::kSgt:
    case SlOp::kSge:
      return true;
    default:
      return false;
  }
}

SlOp BinOpFor(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return SlOp::kAdd;
    case Opcode::kSub: return SlOp::kSub;
    case Opcode::kMul: return SlOp::kMul;
    case Opcode::kDiv: return SlOp::kDiv;
    case Opcode::kMod: return SlOp::kMod;
    case Opcode::kAnd: return SlOp::kAnd;
    case Opcode::kOr: return SlOp::kOr;
    case Opcode::kXor: return SlOp::kXor;
    case Opcode::kShl: return SlOp::kSll;
    case Opcode::kShr: return SlOp::kSrl;
    case Opcode::kSar: return SlOp::kSra;
    case Opcode::kMin: return SlOp::kMin;
    case Opcode::kMax: return SlOp::kMax;
    case Opcode::kCmpEq: return SlOp::kSeq;
    case Opcode::kCmpNe: return SlOp::kSne;
    case Opcode::kCmpLt: return SlOp::kSlt;
    case Opcode::kCmpLe: return SlOp::kSle;
    case Opcode::kCmpGt: return SlOp::kSgt;
    case Opcode::kCmpGe: return SlOp::kSge;
    default: LOPASS_THROW(std::string("no SL32 op for ") + ir::OpcodeName(op));
  }
}

// Per-function code generator with a block-local register allocator.
class FuncCodegen {
 public:
  FuncCodegen(const ir::Module& m, const ir::Function& f, std::vector<SlInstr>& code,
              FuncInfo& info, std::uint32_t spill_base)
      : mod_(m), fn_(f), code_(code), info_(info) {
    info_.spill_base = spill_base;
  }

  void Run() {
    info_.entry = static_cast<std::uint32_t>(code_.size());
    block_start_.assign(fn_.blocks.size(), 0);
    // Blocks are laid out in id order (the frontend creates them in
    // program order, which keeps fall-through frequent).
    for (const ir::BasicBlock& bb : fn_.blocks) {
      block_start_[static_cast<std::size_t>(bb.id)] = static_cast<std::uint32_t>(code_.size());
      GenBlock(bb);
    }
    info_.end = static_cast<std::uint32_t>(code_.size());
    PatchBranches();
    info_.spill_words = spill_words_;
  }

 private:
  // --- register allocation (block-local) --------------------------------

  struct VregState {
    int reg = -1;        // physical register, or -1
    int spill_slot = -1; // spill slot index, or -1
  };

  void ResetBlockState(const ir::BasicBlock& bb) {
    vreg_.clear();
    reg_owner_.assign(kNumRegs, -1);
    free_.clear();
    for (int r = kLastTempReg; r >= kFirstTempReg; --r) free_.push_back(r);
    pinned_.assign(kNumRegs, false);
    // Last use index per vreg within this block.
    last_use_.clear();
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      for (const Operand& a : bb.instrs[i].args) {
        if (a.is_vreg()) last_use_[a.vreg] = i;
      }
    }
  }

  int SpillSlotFor(ir::VregId v) {
    VregState& st = vreg_[v];
    if (st.spill_slot < 0) {
      st.spill_slot = static_cast<int>(spill_words_);
      ++spill_words_;
    }
    return st.spill_slot;
  }

  std::uint32_t SpillAddr(int slot) const {
    return info_.spill_base + 4 * static_cast<std::uint32_t>(slot);
  }

  // Frees registers owned by vregs whose last use is before `idx`.
  void ExpireOldValues(std::size_t idx) {
    for (int r = kFirstTempReg; r <= kLastTempReg; ++r) {
      const ir::VregId v = reg_owner_[static_cast<std::size_t>(r)];
      if (v < 0) continue;
      auto it = last_use_.find(v);
      if (it == last_use_.end() || it->second < idx) {
        reg_owner_[static_cast<std::size_t>(r)] = -1;
        vreg_[v].reg = -1;
        free_.push_back(r);
      }
    }
  }

  // Allocates a physical register, spilling the victim with the
  // farthest next use if necessary. Never evicts a pinned register.
  int AllocReg() {
    if (!free_.empty()) {
      const int r = free_.back();
      free_.pop_back();
      return r;
    }
    // Pick an unpinned victim with the farthest last use.
    int victim = -1;
    std::size_t farthest = 0;
    for (int r = kFirstTempReg; r <= kLastTempReg; ++r) {
      if (pinned_[static_cast<std::size_t>(r)]) continue;
      const ir::VregId v = reg_owner_[static_cast<std::size_t>(r)];
      if (v < 0) { victim = r; farthest = std::numeric_limits<std::size_t>::max(); break; }
      const std::size_t lu = last_use_.count(v) ? last_use_[v] : 0;
      if (victim < 0 || lu > farthest) { victim = r; farthest = lu; }
    }
    LOPASS_CHECK(victim >= 0, "register allocator ran out of unpinned registers");
    const ir::VregId v = reg_owner_[static_cast<std::size_t>(victim)];
    if (v >= 0) {
      // Spill the victim's value.
      const int slot = SpillSlotFor(v);
      EmitMem(SlOp::kSt, victim, kZeroReg, SpillAddr(slot));
      vreg_[v].reg = -1;
      reg_owner_[static_cast<std::size_t>(victim)] = -1;
    }
    return victim;
  }

  void BindReg(ir::VregId v, int r) {
    vreg_[v].reg = r;
    reg_owner_[static_cast<std::size_t>(r)] = v;
  }

  // Returns the register holding vreg v, reloading it if spilled.
  int RegOf(ir::VregId v) {
    auto it = vreg_.find(v);
    LOPASS_CHECK(it != vreg_.end(), "use of undefined vreg in codegen");
    if (it->second.reg >= 0) return it->second.reg;
    LOPASS_CHECK(it->second.spill_slot >= 0, "vreg neither in reg nor spilled");
    const int r = AllocReg();
    EmitMem(SlOp::kLd, r, kZeroReg, SpillAddr(it->second.spill_slot));
    BindReg(v, r);
    return r;
  }

  // Materializes an operand into a register; pins it. Immediate
  // operands get a transient register that is released by UnpinAll.
  int Materialize(const Operand& a, std::vector<int>& transient) {
    if (a.is_vreg()) {
      const int r = RegOf(a.vreg);
      pinned_[static_cast<std::size_t>(r)] = true;
      return r;
    }
    if (a.imm == 0) return kZeroReg;
    const int r = AllocReg();
    EmitLi(r, a.imm);
    pinned_[static_cast<std::size_t>(r)] = true;
    transient.push_back(r);
    return r;
  }

  void ReleaseTransients(std::vector<int>& transient) {
    for (int r : transient) {
      pinned_[static_cast<std::size_t>(r)] = false;
      if (reg_owner_[static_cast<std::size_t>(r)] < 0) free_.push_back(r);
    }
    transient.clear();
    for (int r = kFirstTempReg; r <= kLastTempReg; ++r) pinned_[static_cast<std::size_t>(r)] = false;
  }

  // --- emission helpers ---------------------------------------------------

  SlInstr& Emit(SlOp op) {
    SlInstr in;
    in.op = op;
    in.fn = fn_.id;
    in.block = cur_block_;
    code_.push_back(in);
    return code_.back();
  }

  void EmitAlu(SlOp op, int rd, int rs1, int rs2) {
    SlInstr& in = Emit(op);
    in.rd = static_cast<std::int16_t>(rd);
    in.rs1 = static_cast<std::int16_t>(rs1);
    in.rs2 = static_cast<std::int16_t>(rs2);
  }

  void EmitAluImm(SlOp op, int rd, int rs1, std::int64_t imm) {
    SlInstr& in = Emit(op);
    in.rd = static_cast<std::int16_t>(rd);
    in.rs1 = static_cast<std::int16_t>(rs1);
    in.use_imm = true;
    in.imm = imm;
  }

  void EmitLi(int rd, std::int64_t imm) {
    SlInstr& in = Emit(SlOp::kLi);
    in.rd = static_cast<std::int16_t>(rd);
    in.imm = imm;
  }

  void EmitMem(SlOp op, int rvalue, int rbase, std::int64_t offset) {
    SlInstr& in = Emit(op);
    in.rd = static_cast<std::int16_t>(rvalue);
    in.rs1 = static_cast<std::int16_t>(rbase);
    in.imm = offset;
  }

  void EmitBranch(SlOp op, int rcond, ir::BlockId target) {
    SlInstr& in = Emit(op);
    in.rs1 = static_cast<std::int16_t>(rcond);
    in.target = target;  // patched to an instruction index later
    pending_branches_.push_back(static_cast<std::uint32_t>(code_.size() - 1));
  }

  void EmitJump(ir::BlockId target) {
    SlInstr& in = Emit(SlOp::kJ);
    in.target = target;
    pending_branches_.push_back(static_cast<std::uint32_t>(code_.size() - 1));
  }

  void PatchBranches() {
    for (std::uint32_t i : pending_branches_) {
      SlInstr& in = code_[i];
      LOPASS_CHECK(in.target >= 0 &&
                       static_cast<std::size_t>(in.target) < block_start_.size(),
                   "branch target block out of range");
      in.target = static_cast<std::int32_t>(block_start_[static_cast<std::size_t>(in.target)]);
    }
  }

  // --- instruction selection ----------------------------------------------

  void GenBlock(const ir::BasicBlock& bb) {
    cur_block_ = bb.id;
    ResetBlockState(bb);
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      ExpireOldValues(i);
      GenInstr(bb, bb.instrs[i]);
    }
  }

  // True when `next` block is the fall-through successor in layout.
  bool IsNextBlock(ir::BlockId b) const {
    return b == cur_block_ + 1 &&
           static_cast<std::size_t>(b) < fn_.blocks.size();
  }

  void GenInstr(const ir::BasicBlock& bb, const ir::Instr& in) {
    std::vector<int> transient;
    switch (in.op) {
      case Opcode::kConst: {
        const int rd = AllocReg();
        EmitLi(rd, in.args[0].imm);
        BindReg(in.result, rd);
        break;
      }
      case Opcode::kMov: {
        const int rs = Materialize(in.args[0], transient);
        const int rd = AllocReg();
        EmitAlu(SlOp::kOr, rd, rs, kZeroReg);
        ReleaseTransients(transient);
        BindReg(in.result, rd);
        break;
      }
      case Opcode::kReadVar: {
        const int rd = AllocReg();
        EmitMem(SlOp::kLd, rd, kZeroReg, mod_.symbol(in.sym).address);
        BindReg(in.result, rd);
        break;
      }
      case Opcode::kWriteVar: {
        const int rs = Materialize(in.args[0], transient);
        EmitMem(SlOp::kSt, rs, kZeroReg, mod_.symbol(in.sym).address);
        ReleaseTransients(transient);
        break;
      }
      case Opcode::kLoadElem: {
        const ir::Symbol& s = mod_.symbol(in.sym);
        if (in.args[0].is_imm()) {
          const int rd = AllocReg();
          EmitMem(SlOp::kLd, rd, kZeroReg, s.address + 4 * in.args[0].imm);
          BindReg(in.result, rd);
        } else {
          const int ridx = Materialize(in.args[0], transient);
          const int raddr = AllocReg();
          pinned_[static_cast<std::size_t>(raddr)] = true;
          EmitAluImm(SlOp::kSll, raddr, ridx, 2);
          const int rd = AllocReg();
          EmitMem(SlOp::kLd, rd, raddr, s.address);
          if (reg_owner_[static_cast<std::size_t>(raddr)] < 0) free_.push_back(raddr);
          ReleaseTransients(transient);
          BindReg(in.result, rd);
        }
        break;
      }
      case Opcode::kStoreElem: {
        const ir::Symbol& s = mod_.symbol(in.sym);
        if (in.args[0].is_imm()) {
          const int rv = Materialize(in.args[1], transient);
          EmitMem(SlOp::kSt, rv, kZeroReg, s.address + 4 * in.args[0].imm);
        } else {
          const int ridx = Materialize(in.args[0], transient);
          const int raddr = AllocReg();
          pinned_[static_cast<std::size_t>(raddr)] = true;
          EmitAluImm(SlOp::kSll, raddr, ridx, 2);
          transient.push_back(raddr);
          const int rv = Materialize(in.args[1], transient);
          EmitMem(SlOp::kSt, rv, raddr, s.address);
        }
        ReleaseTransients(transient);
        break;
      }
      case Opcode::kNeg: {
        const int rs = Materialize(in.args[0], transient);
        const int rd = AllocReg();
        EmitAlu(SlOp::kSub, rd, kZeroReg, rs);
        ReleaseTransients(transient);
        BindReg(in.result, rd);
        break;
      }
      case Opcode::kNot: {
        const int rs = Materialize(in.args[0], transient);
        const int rd = AllocReg();
        EmitAluImm(SlOp::kXor, rd, rs, -1);
        ReleaseTransients(transient);
        BindReg(in.result, rd);
        break;
      }
      case Opcode::kCall: {
        // Write arguments into the callee's parameter slots.
        const auto callee_id = mod_.FindFunction(mod_.symbol(in.sym).name);
        LOPASS_CHECK(callee_id.has_value(), "call target missing");
        const ir::Function& callee = mod_.function(*callee_id);
        for (std::size_t a = 0; a < in.args.size(); ++a) {
          std::vector<int> t2;
          const int rv = Materialize(in.args[a], t2);
          EmitMem(SlOp::kSt, rv, kZeroReg, mod_.symbol(callee.params[a]).address);
          ReleaseTransients(t2);
        }
        // All temp registers are caller-scratch: spill live values.
        SpillAllLive();
        SlInstr& c = Emit(SlOp::kCall);
        c.target = *callee_id;  // patched at link time
        pending_calls_.push_back(static_cast<std::uint32_t>(code_.size() - 1));
        const int rd = AllocReg();
        EmitAlu(SlOp::kOr, rd, kRetValReg, kZeroReg);
        BindReg(in.result, rd);
        break;
      }
      case Opcode::kRet: {
        if (!in.args.empty()) {
          const int rv = Materialize(in.args[0], transient);
          EmitAlu(SlOp::kOr, kRetValReg, rv, kZeroReg);
          ReleaseTransients(transient);
        }
        Emit(SlOp::kRet);
        break;
      }
      case Opcode::kBr: {
        if (!IsNextBlock(in.target0)) EmitJump(in.target0);
        break;
      }
      case Opcode::kCondBr: {
        const int rc = Materialize(in.args[0], transient);
        if (IsNextBlock(in.target0)) {
          EmitBranch(SlOp::kBeqz, rc, in.target1);
        } else if (IsNextBlock(in.target1)) {
          EmitBranch(SlOp::kBnez, rc, in.target0);
        } else {
          EmitBranch(SlOp::kBnez, rc, in.target0);
          EmitJump(in.target1);
        }
        ReleaseTransients(transient);
        break;
      }
      default: {
        // Binary arithmetic / comparisons.
        const SlOp slop = BinOpFor(in.op);
        const Operand& a = in.args[0];
        const Operand& b = in.args[1];
        const int rs1 = Materialize(a, transient);
        int rd;
        if (b.is_imm() && HasImmForm(slop) && FitsSimm13(b.imm)) {
          rd = AllocReg();
          EmitAluImm(slop, rd, rs1, b.imm);
        } else {
          const int rs2 = Materialize(b, transient);
          rd = AllocReg();
          EmitAlu(slop, rd, rs1, rs2);
        }
        ReleaseTransients(transient);
        BindReg(in.result, rd);
        break;
      }
    }
    (void)bb;
  }

  // Spills every live vreg before a call (temps are caller-scratch).
  void SpillAllLive() {
    for (int r = kFirstTempReg; r <= kLastTempReg; ++r) {
      const ir::VregId v = reg_owner_[static_cast<std::size_t>(r)];
      if (v < 0) continue;
      const int slot = SpillSlotFor(v);
      EmitMem(SlOp::kSt, r, kZeroReg, SpillAddr(slot));
      vreg_[v].reg = -1;
      reg_owner_[static_cast<std::size_t>(r)] = -1;
      free_.push_back(r);
    }
  }

 public:
  std::vector<std::uint32_t> pending_calls_;  // call sites to link

 private:
  const ir::Module& mod_;
  const ir::Function& fn_;
  std::vector<SlInstr>& code_;
  FuncInfo& info_;

  ir::BlockId cur_block_ = ir::kNoBlock;
  std::vector<std::uint32_t> block_start_;
  std::vector<std::uint32_t> pending_branches_;

  std::unordered_map<ir::VregId, VregState> vreg_;
  std::unordered_map<ir::VregId, std::size_t> last_use_;
  std::vector<ir::VregId> reg_owner_;
  std::vector<int> free_;
  std::vector<bool> pinned_;
  std::uint32_t spill_words_ = 0;
};

}  // namespace

SlProgram Generate(const ir::Module& module) {
  LOPASS_CHECK(module.num_functions() > 0, "cannot generate code for empty module");
  SlProgram p;
  std::vector<std::uint32_t> all_call_sites;

  // Reserve spill space after static data, assigned per function as we
  // discover how much each needs. First pass uses a generous running
  // base; compacted afterwards.
  std::uint32_t spill_base = module.data_size_bytes();
  for (const ir::Function& f : module.functions()) {
    FuncInfo info;
    info.fn = f.id;
    info.name = f.name;
    FuncCodegen cg(module, f, p.code, info, spill_base);
    cg.Run();
    spill_base += info.spill_words * 4;
    p.functions.push_back(info);
    all_call_sites.insert(all_call_sites.end(), cg.pending_calls_.begin(),
                          cg.pending_calls_.end());
  }
  p.data_size_bytes = spill_base;

  // Link calls: target currently holds the callee FunctionId.
  for (std::uint32_t i : all_call_sites) {
    SlInstr& in = p.code[i];
    in.target = static_cast<std::int32_t>(
        p.functions[static_cast<std::size_t>(in.target)].entry);
  }
  return p;
}

}  // namespace lopass::isa
