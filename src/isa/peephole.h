#pragma once

// Peephole optimizer for generated SL32 code.
//
// The code generator is deliberately simple (memory-resident variables,
// block-local allocation); a peephole pass recovers some of the obvious
// slack, the way a production assembler-level optimizer would:
//
//   * self-moves    `or rd, rd, r0`                        -> removed
//   * add/sub zero  `add rd, rd, #0`                       -> removed
//   * store-load    `st rA,[rB+k]; ld rC,[rB+k]`           -> `or rC, rA, r0`
//   * jump-to-next  `j L` where L is the next instruction  -> removed
//
// Removing instructions renumbers the stream, so every branch/call
// target and every FuncInfo range is re-linked. Attribution (fn/block)
// is preserved. Semantics are identical (randomized ISS-equivalence
// tests assert it).

#include <cstdint>
#include <string>

#include "isa/isa.h"

namespace lopass::isa {

struct PeepholeStats {
  std::uint64_t self_moves = 0;
  std::uint64_t add_zero = 0;
  std::uint64_t store_load = 0;
  std::uint64_t jump_to_next = 0;

  std::uint64_t total() const {
    return self_moves + add_zero + store_load + jump_to_next;
  }
  std::string ToString() const;
};

// Rewrites `program` in place to a fixed point (bounded rounds).
PeepholeStats Peephole(SlProgram& program, int max_rounds = 4);

}  // namespace lopass::isa
