#include "isa/encoding.h"

#include "common/error.h"

namespace lopass::isa {

namespace {

constexpr std::uint32_t kOpShift = 26;
constexpr std::int64_t kSimm15Min = -(1 << 14);
constexpr std::int64_t kSimm15Max = (1 << 14) - 1;
constexpr std::int64_t kSimm21Min = -(1 << 20);
constexpr std::int64_t kSimm21Max = (1 << 20) - 1;
constexpr std::int64_t kSimm16Min = -(1 << 15);
constexpr std::int64_t kSimm16Max = (1 << 15) - 1;

// Field sentinel: the most negative representable value flags "value in
// the extension word".
constexpr std::int64_t kExt15 = kSimm15Min;
constexpr std::int64_t kExt21 = kSimm21Min;
constexpr std::int64_t kExt16 = kSimm16Min;

std::uint32_t Reg(int r) {
  LOPASS_CHECK(r >= 0 && r < kNumRegs, "register out of encodable range");
  return static_cast<std::uint32_t>(r);
}

std::uint32_t Field(std::int64_t v, int bits) {
  return static_cast<std::uint32_t>(v) & ((1u << bits) - 1u);
}

std::int64_t SignExtend(std::uint32_t v, int bits) {
  const std::uint32_t sign = 1u << (bits - 1);
  const std::uint32_t mask = (1u << bits) - 1u;
  std::uint32_t x = v & mask;
  if (x & sign) x |= ~mask;
  return static_cast<std::int32_t>(x);
}

bool IsAluForm(SlOp op) {
  switch (op) {
    case SlOp::kAdd:
    case SlOp::kSub:
    case SlOp::kAnd:
    case SlOp::kOr:
    case SlOp::kXor:
    case SlOp::kSll:
    case SlOp::kSrl:
    case SlOp::kSra:
    case SlOp::kMul:
    case SlOp::kDiv:
    case SlOp::kMod:
    case SlOp::kMin:
    case SlOp::kMax:
    case SlOp::kSeq:
    case SlOp::kSne:
    case SlOp::kSlt:
    case SlOp::kSle:
    case SlOp::kSgt:
    case SlOp::kSge:
      return true;
    default:
      return false;
  }
}

}  // namespace

int Encode(const SlInstr& in, std::vector<std::uint32_t>& out) {
  const std::uint32_t opw = static_cast<std::uint32_t>(in.op) << kOpShift;
  switch (in.op) {
    case SlOp::kNop:
    case SlOp::kRet:
      out.push_back(opw);
      return 1;
    case SlOp::kLi: {
      if (in.imm >= kSimm21Min + 1 && in.imm <= kSimm21Max) {
        out.push_back(opw | (Reg(in.rd) << 21) | Field(in.imm, 21));
        return 1;
      }
      LOPASS_CHECK(in.imm >= INT32_MIN && in.imm <= INT32_MAX,
                   "LI immediate exceeds 32 bits");
      out.push_back(opw | (Reg(in.rd) << 21) | Field(kExt21, 21));
      out.push_back(static_cast<std::uint32_t>(in.imm));
      return 2;
    }
    case SlOp::kLd:
    case SlOp::kSt: {
      if (in.imm >= kSimm16Min + 1 && in.imm <= kSimm16Max) {
        out.push_back(opw | (Reg(in.rd) << 21) | (Reg(in.rs1) << 16) |
                      Field(in.imm, 16));
        return 1;
      }
      LOPASS_CHECK(in.imm >= INT32_MIN && in.imm <= INT32_MAX,
                   "memory offset exceeds 32 bits");
      out.push_back(opw | (Reg(in.rd) << 21) | (Reg(in.rs1) << 16) | Field(kExt16, 16));
      out.push_back(static_cast<std::uint32_t>(in.imm));
      return 2;
    }
    case SlOp::kBeqz:
    case SlOp::kBnez: {
      LOPASS_CHECK(in.target >= 0 && in.target <= kSimm21Max,
                   "branch target out of range");
      out.push_back(opw | (Reg(in.rs1) << 21) | Field(in.target, 21));
      return 1;
    }
    case SlOp::kJ:
    case SlOp::kCall: {
      LOPASS_CHECK(in.target >= 0 && in.target < (1 << 26), "jump target out of range");
      out.push_back(opw | Field(in.target, 26));
      return 1;
    }
    default: {
      LOPASS_CHECK(IsAluForm(in.op), "unencodable opcode");
      if (!in.use_imm) {
        out.push_back(opw | (Reg(in.rd) << 20) | (Reg(in.rs1) << 15) |
                      (Reg(in.rs2) << 10));
        return 1;
      }
      const std::uint32_t base =
          opw | (1u << 25) | (Reg(in.rd) << 20) | (Reg(in.rs1) << 15);
      if (in.imm >= kSimm15Min + 1 && in.imm <= kSimm15Max) {
        out.push_back(base | Field(in.imm, 15));
        return 1;
      }
      LOPASS_CHECK(in.imm >= INT32_MIN && in.imm <= INT32_MAX,
                   "ALU immediate exceeds 32 bits");
      out.push_back(base | Field(kExt15, 15));
      out.push_back(static_cast<std::uint32_t>(in.imm));
      return 2;
    }
  }
}

SlInstr Decode(std::span<const std::uint32_t> words, int& consumed) {
  LOPASS_CHECK(!words.empty(), "decode needs at least one word");
  const std::uint32_t w = words[0];
  SlInstr in;
  in.op = static_cast<SlOp>(w >> kOpShift);
  consumed = 1;

  auto take_ext = [&]() -> std::int64_t {
    LOPASS_CHECK(words.size() >= 2, "truncated extended instruction");
    consumed = 2;
    return static_cast<std::int32_t>(words[1]);
  };

  switch (in.op) {
    case SlOp::kNop:
    case SlOp::kRet:
      return in;
    case SlOp::kLi: {
      in.rd = static_cast<std::int16_t>((w >> 21) & 31u);
      const std::int64_t f = SignExtend(w, 21);
      in.imm = (f == kExt21) ? take_ext() : f;
      return in;
    }
    case SlOp::kLd:
    case SlOp::kSt: {
      in.rd = static_cast<std::int16_t>((w >> 21) & 31u);
      in.rs1 = static_cast<std::int16_t>((w >> 16) & 31u);
      const std::int64_t f = SignExtend(w, 16);
      in.imm = (f == kExt16) ? take_ext() : f;
      return in;
    }
    case SlOp::kBeqz:
    case SlOp::kBnez:
      in.rs1 = static_cast<std::int16_t>((w >> 21) & 31u);
      in.target = static_cast<std::int32_t>(w & ((1u << 21) - 1u));
      return in;
    case SlOp::kJ:
    case SlOp::kCall:
      in.target = static_cast<std::int32_t>(w & ((1u << 26) - 1u));
      return in;
    default: {
      LOPASS_CHECK(IsAluForm(in.op), "undecodable opcode");
      in.rd = static_cast<std::int16_t>((w >> 20) & 31u);
      in.rs1 = static_cast<std::int16_t>((w >> 15) & 31u);
      if (w & (1u << 25)) {
        in.use_imm = true;
        const std::int64_t f = SignExtend(w, 15);
        in.imm = (f == kExt15) ? take_ext() : f;
      } else {
        in.rs2 = static_cast<std::int16_t>((w >> 10) & 31u);
      }
      return in;
    }
  }
}

EncodedProgram EncodeProgram(const SlProgram& program) {
  EncodedProgram image;
  image.word_of.reserve(program.code.size());
  for (const SlInstr& in : program.code) {
    image.word_of.push_back(static_cast<std::uint32_t>(image.words.size()));
    Encode(in, image.words);
  }
  return image;
}

std::vector<SlInstr> DecodeProgram(const EncodedProgram& image) {
  std::vector<SlInstr> out;
  std::size_t pos = 0;
  while (pos < image.words.size()) {
    int consumed = 0;
    out.push_back(Decode(std::span(image.words).subspan(pos), consumed));
    pos += static_cast<std::size_t>(consumed);
  }
  return out;
}

bool ArchEqual(const SlInstr& a, const SlInstr& b) {
  if (a.op != b.op || a.use_imm != b.use_imm) return false;
  switch (a.op) {
    case SlOp::kNop:
    case SlOp::kRet:
      return true;
    case SlOp::kLi:
      return a.rd == b.rd && a.imm == b.imm;
    case SlOp::kLd:
    case SlOp::kSt:
      return a.rd == b.rd && a.rs1 == b.rs1 && a.imm == b.imm;
    case SlOp::kBeqz:
    case SlOp::kBnez:
      return a.rs1 == b.rs1 && a.target == b.target;
    case SlOp::kJ:
    case SlOp::kCall:
      return a.target == b.target;
    default:
      if (a.rd != b.rd || a.rs1 != b.rs1) return false;
      return a.use_imm ? a.imm == b.imm : a.rs2 == b.rs2;
  }
}

}  // namespace lopass::isa
