#pragma once

// Lexer for the lopass behavioral DSL — the "behavioral description" an
// application arrives in (Fig. 5 box "Application"). The language is a
// small C subset: int scalars/arrays, functions, for/while/if,
// expressions with C operator precedence, plus min/max/abs builtins.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/diag.h"

namespace lopass::dsl {

enum class TokKind : std::uint8_t {
  kEof,
  kIdent,
  kInt,
  // Keywords.
  kFunc, kVar, kArray, kIf, kElse, kWhile, kFor, kReturn, kBreak, kContinue,
  // Punctuation / operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi,
  kAssign,                  // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kAmpAmp, kPipePipe,
  kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

const char* TokKindName(TokKind k);

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;        // identifier spelling
  std::int64_t value = 0;  // integer literal value
  int line = 0;
  int col = 0;
};

// Tokenizes `source`; throws lopass::Error on malformed input. `//` and
// `/* */` comments are skipped. Integer literals may be decimal or 0x hex.
std::vector<Token> Tokenize(std::string_view source);

// Recovery variant: malformed lexemes (unexpected characters, string
// literals, unterminated comments, bad hex literals) are reported to
// `sink` and skipped, so the parser can surface every problem in the
// file instead of only the first. Always returns a token stream ending
// in kEof.
std::vector<Token> Tokenize(std::string_view source, DiagnosticSink& sink);

}  // namespace lopass::dsl
