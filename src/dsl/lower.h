#pragma once

// Lowering from the DSL AST to the lopass IR.
//
// Produces (a) the operation graph G = {V, E} (Fig. 1 step 1) and (b)
// the structural region tree used for cluster decomposition (Fig. 1
// step 2). Expression temporaries become block-local virtual
// registers; named variables become module symbols so that the gen/use
// analysis of Fig. 3 sees exactly the program's variables and arrays.

#include <string_view>

#include "common/diag.h"
#include "dsl/ast.h"
#include "ir/module.h"
#include "ir/region.h"

namespace lopass::dsl {

struct LoweredProgram {
  ir::Module module;
  ir::RegionTree regions;
};

// Lowers a parsed program. Throws lopass::Error on semantic errors
// (undeclared identifiers, redeclaration, bad builtin arity, ...).
LoweredProgram Lower(const Program& ast);

// Convenience: parse + lower + verify + assign addresses.
LoweredProgram Compile(std::string_view source);

// Parse + AST transforms (loop unrolling) + lower + verify.
LoweredProgram CompileWithUnroll(std::string_view source, int unroll_factor,
                                 int max_body_stmts = 16);

// Diagnostic boundary for drivers: parse with error recovery (so every
// syntax error in the file is reported, with source locations), then
// lower + verify. Never throws for malformed input — all problems come
// back as diagnostics on the failed Result.
Result<LoweredProgram> CompileToResult(std::string_view source, int unroll_factor = 1,
                                       int max_body_stmts = 16);

}  // namespace lopass::dsl
