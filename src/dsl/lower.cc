#include "dsl/lower.h"

#include <memory>
#include <unordered_map>

#include "common/error.h"
#include "dsl/parser.h"
#include "dsl/transform.h"
#include "ir/verify.h"

namespace lopass::dsl {

namespace {

using ir::BlockId;
using ir::FunctionBuilder;
using ir::Opcode;
using ir::Operand;
using ir::RegionId;
using ir::RegionKind;
using ir::SymbolId;

class Lowerer {
 public:
  LoweredProgram Run(const Program& ast) {
    // Globals first so every function sees them.
    for (const StmtPtr& g : ast.globals) {
      if (g->kind == Stmt::Kind::kVarDecl) {
        CheckNewGlobal(g->name, g->line);
        const SymbolId id = mod_.AddScalar(g->name);
        if (g->value) mod_.symbol_mutable(id).init = g->value->value;
        mod_.symbol_mutable(id).decl_line = g->line;
        globals_[g->name] = id;
      } else {
        CheckNewGlobal(g->name, g->line);
        const SymbolId id = mod_.AddArray(g->name, g->array_len);
        mod_.symbol_mutable(id).decl_line = g->line;
        globals_[g->name] = id;
      }
    }
    // Declare all functions up front (forward references).
    for (const FuncDecl& f : ast.functions) {
      if (mod_.FindFunction(f.name)) {
        LOPASS_THROW("line " + std::to_string(f.line) + ": duplicate function '" +
                     f.name + "'");
      }
      const ir::FunctionId fid = mod_.AddFunction(f.name);
      mod_.symbol_mutable(mod_.function(fid).symbol).decl_line = f.line;
    }
    for (const FuncDecl& f : ast.functions) LowerFunction(f);

    mod_.AssignAddresses();
    regions_.ComputeLoopDepths();

    LoweredProgram out;
    out.module = std::move(mod_);
    out.regions = std::move(regions_);
    return out;
  }

 private:
  void CheckNewGlobal(const std::string& name, int line) {
    if (globals_.count(name)) {
      LOPASS_THROW("line " + std::to_string(line) + ": duplicate global '" + name + "'");
    }
  }

  [[noreturn]] void SemErr(int line, const std::string& msg) {
    LOPASS_THROW("line " + std::to_string(line) + ": " + msg);
  }

  SymbolId LookupVar(const std::string& name, int line) {
    if (auto it = locals_.find(name); it != locals_.end()) return it->second;
    if (auto it = globals_.find(name); it != globals_.end()) return it->second;
    SemErr(line, "undeclared identifier '" + name + "'");
  }

  void LowerFunction(const FuncDecl& f) {
    const ir::FunctionId fid = *mod_.FindFunction(f.name);
    ir::Function& fn = mod_.function(fid);
    FunctionBuilder fb(mod_, fid);
    fb_ = &fb;
    cur_fn_ = fid;
    locals_.clear();

    for (const std::string& p : f.params) {
      if (locals_.count(p)) SemErr(f.line, "duplicate parameter '" + p + "'");
      const SymbolId id = mod_.AddScalar(p, fid);
      mod_.symbol_mutable(id).decl_line = f.line;
      locals_[p] = id;
      fn.params.push_back(id);
    }
    fb.SetLine(f.line);

    const BlockId entry = fb.NewBlock();
    fb.SetBlock(entry);
    terminated_ = false;
    open_leaf_ = ir::kNoRegion;

    const RegionId root = regions_.AddNode(RegionKind::kFunction, fid, ir::kNoRegion,
                                           "func " + f.name);
    regions_.SetFunctionRoot(fid, root);
    cur_seq_ = root;

    LowerStmtList(f.body);

    if (!terminated_) {
      EnsureLeaf();
      fb.EmitRet();
    }
    fb_ = nullptr;
  }

  // Opens a leaf region owning the current block, if none is open.
  void EnsureLeaf() {
    if (open_leaf_ == ir::kNoRegion) {
      open_leaf_ = regions_.AddNode(RegionKind::kLeaf, cur_fn_, cur_seq_, "leaf");
      regions_.AddBlock(open_leaf_, fb_->current_block());
    }
  }

  // If the current block already ended (return), start a fresh
  // (unreachable) block so further emission stays well formed.
  void EnsureOpenBlock() {
    if (terminated_) {
      const BlockId b = fb_->NewBlock();
      fb_->SetBlock(b);
      open_leaf_ = ir::kNoRegion;
      terminated_ = false;
    }
  }

  void LowerStmtList(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& s : stmts) LowerStmt(*s);
  }

  void LowerStmt(const Stmt& s) {
    EnsureOpenBlock();
    if (s.line > 0) fb_->SetLine(s.line);
    switch (s.kind) {
      case Stmt::Kind::kVarDecl: {
        if (locals_.count(s.name)) SemErr(s.line, "redeclaration of '" + s.name + "'");
        const SymbolId id = mod_.AddScalar(s.name, cur_fn_);
        mod_.symbol_mutable(id).decl_line = s.line;
        locals_[s.name] = id;
        if (s.value) {
          EnsureLeaf();
          fb_->EmitWriteVar(id, LowerExpr(*s.value));
        }
        break;
      }
      case Stmt::Kind::kArrayDecl: {
        if (locals_.count(s.name)) SemErr(s.line, "redeclaration of '" + s.name + "'");
        const SymbolId id = mod_.AddArray(s.name, s.array_len, cur_fn_);
        mod_.symbol_mutable(id).decl_line = s.line;
        locals_[s.name] = id;
        break;
      }
      case Stmt::Kind::kAssign: {
        EnsureLeaf();
        const SymbolId id = LookupVar(s.name, s.line);
        if (mod_.symbol(id).kind != ir::SymbolKind::kScalar) {
          SemErr(s.line, "'" + s.name + "' is not a scalar");
        }
        fb_->EmitWriteVar(id, LowerExpr(*s.value));
        break;
      }
      case Stmt::Kind::kStore: {
        EnsureLeaf();
        const SymbolId id = LookupVar(s.name, s.line);
        if (mod_.symbol(id).kind != ir::SymbolKind::kArray) {
          SemErr(s.line, "'" + s.name + "' is not an array");
        }
        const Operand idx = LowerExpr(*s.index);
        const Operand val = LowerExpr(*s.value);
        fb_->EmitStoreElem(id, idx, val);
        break;
      }
      case Stmt::Kind::kIf:
        LowerIf(s);
        break;
      case Stmt::Kind::kWhile:
        LowerLoop(s, /*is_for=*/false);
        break;
      case Stmt::Kind::kFor:
        LowerLoop(s, /*is_for=*/true);
        break;
      case Stmt::Kind::kReturn: {
        EnsureLeaf();
        if (s.value) {
          fb_->EmitRet(LowerExpr(*s.value));
        } else {
          fb_->EmitRet();
        }
        terminated_ = true;
        break;
      }
      case Stmt::Kind::kBreak: {
        if (loop_stack_.empty()) SemErr(s.line, "'break' outside a loop");
        EnsureLeaf();
        fb_->EmitBr(loop_stack_.back().break_target);
        terminated_ = true;
        break;
      }
      case Stmt::Kind::kContinue: {
        if (loop_stack_.empty()) SemErr(s.line, "'continue' outside a loop");
        EnsureLeaf();
        fb_->EmitBr(loop_stack_.back().continue_target);
        terminated_ = true;
        break;
      }
      case Stmt::Kind::kExpr: {
        EnsureLeaf();
        (void)LowerExpr(*s.value);
        break;
      }
    }
  }

  void LowerIf(const Stmt& s) {
    EnsureLeaf();
    const Operand cond = LowerExpr(*s.cond);
    const BlockId cond_block = fb_->current_block();

    const RegionId if_region =
        regions_.AddNode(RegionKind::kIfElse, cur_fn_, cur_seq_,
                         "if@" + std::to_string(s.line));
    const RegionId saved_seq = cur_seq_;

    const BlockId then_bb = fb_->NewBlock();
    const BlockId join_bb_placeholder = ir::kNoBlock;
    BlockId else_bb = join_bb_placeholder;

    // Then arm.
    const RegionId then_seq = regions_.AddNode(RegionKind::kSequence, cur_fn_, if_region,
                                               "then@" + std::to_string(s.line));
    fb_->SetBlock(then_bb);
    cur_seq_ = then_seq;
    open_leaf_ = ir::kNoRegion;
    terminated_ = false;
    LowerStmtList(s.body);
    const BlockId then_end = fb_->current_block();
    const bool then_terminated = terminated_;

    // Else arm (if any).
    BlockId else_end = ir::kNoBlock;
    bool else_terminated = false;
    if (!s.else_body.empty()) {
      else_bb = fb_->NewBlock();
      const RegionId else_seq = regions_.AddNode(
          RegionKind::kSequence, cur_fn_, if_region, "else@" + std::to_string(s.line));
      fb_->SetBlock(else_bb);
      cur_seq_ = else_seq;
      open_leaf_ = ir::kNoRegion;
      terminated_ = false;
      LowerStmtList(s.else_body);
      else_end = fb_->current_block();
      else_terminated = terminated_;
    }

    // Join block, owned by the parent region's next leaf.
    const BlockId join_bb = fb_->NewBlock();

    // Wire the condition branch.
    fb_->SetBlock(cond_block);
    fb_->EmitCondBr(cond, then_bb, s.else_body.empty() ? join_bb : else_bb);

    if (!then_terminated) {
      fb_->SetBlock(then_end);
      fb_->EmitBr(join_bb);
    }
    if (!s.else_body.empty() && !else_terminated) {
      fb_->SetBlock(else_end);
      fb_->EmitBr(join_bb);
    }

    cur_seq_ = saved_seq;
    fb_->SetBlock(join_bb);
    open_leaf_ = ir::kNoRegion;
    terminated_ = false;
  }

  void LowerLoop(const Stmt& s, bool is_for) {
    EnsureLeaf();

    const RegionId loop_region = regions_.AddNode(
        RegionKind::kLoop, cur_fn_, cur_seq_,
        std::string(is_for ? "for@" : "while@") + std::to_string(s.line));
    const RegionId saved_seq = cur_seq_;

    // The for-init belongs to the loop construct: it runs in a leading
    // block owned by the loop region, so a for-loop cluster is fully
    // self-contained (its counter is generated inside the cluster).
    if (is_for && s.init) {
      const BlockId init_bb = fb_->NewBlock();
      fb_->EmitBr(init_bb);
      fb_->SetBlock(init_bb);
      const RegionId init_leaf =
          regions_.AddNode(RegionKind::kLeaf, cur_fn_, loop_region, "init");
      regions_.AddBlock(init_leaf, init_bb);
      open_leaf_ = init_leaf;
      terminated_ = false;
      LowerStepOnly(*s.init);
    }

    const BlockId cond_bb = fb_->NewBlock();
    regions_.AddBlock(loop_region, cond_bb);
    fb_->EmitBr(cond_bb);

    // Condition block.
    fb_->SetBlock(cond_bb);
    Operand cond = Operand::Imm(1);
    if (s.cond) cond = LowerExpr(*s.cond);
    const BlockId cond_end = fb_->current_block();

    // Pre-create the body entry, the step block (for-loops) and the
    // exit block so break/continue have stable targets.
    const BlockId body_bb = fb_->NewBlock();
    const bool has_step = is_for && s.step != nullptr;
    const BlockId step_bb = has_step ? fb_->NewBlock() : ir::kNoBlock;
    const BlockId exit_bb = fb_->NewBlock();

    loop_stack_.push_back(LoopContext{has_step ? step_bb : cond_bb, exit_bb});

    // Body.
    const RegionId body_seq = regions_.AddNode(RegionKind::kSequence, cur_fn_, loop_region,
                                               "body@" + std::to_string(s.line));
    fb_->SetBlock(body_bb);
    cur_seq_ = body_seq;
    open_leaf_ = ir::kNoRegion;
    terminated_ = false;
    LowerStmtList(s.body);
    loop_stack_.pop_back();
    // The body's final block (e.g. an if-join) may still be unowned.
    if (!terminated_) EnsureLeaf();

    // for-step runs in its own block owned by the loop region, so the
    // scheduler sees it as part of the loop cluster. continue jumps
    // into it.
    if (has_step) {
      if (!terminated_) fb_->EmitBr(step_bb);
      fb_->SetBlock(step_bb);
      terminated_ = false;
      const RegionId step_leaf =
          regions_.AddNode(RegionKind::kLeaf, cur_fn_, loop_region, "step");
      regions_.AddBlock(step_leaf, step_bb);
      open_leaf_ = step_leaf;
      cur_seq_ = loop_region;
      LowerStepOnly(*s.step);
    }
    if (!terminated_) fb_->EmitBr(cond_bb);

    // Wire the condition branch into the exit.
    fb_->SetBlock(cond_end);
    fb_->EmitCondBr(cond, body_bb, exit_bb);

    cur_seq_ = saved_seq;
    fb_->SetBlock(exit_bb);
    open_leaf_ = ir::kNoRegion;
    terminated_ = false;
  }

  // Lowers a for-step simple statement without opening a new leaf.
  void LowerStepOnly(const Stmt& s) {
    if (s.line > 0) fb_->SetLine(s.line);
    switch (s.kind) {
      case Stmt::Kind::kVarDecl: {
        if (locals_.count(s.name)) SemErr(s.line, "redeclaration of '" + s.name + "'");
        const SymbolId id = mod_.AddScalar(s.name, cur_fn_);
        mod_.symbol_mutable(id).decl_line = s.line;
        locals_[s.name] = id;
        if (s.value) fb_->EmitWriteVar(id, LowerExpr(*s.value));
        break;
      }
      case Stmt::Kind::kAssign: {
        const SymbolId id = LookupVar(s.name, s.line);
        fb_->EmitWriteVar(id, LowerExpr(*s.value));
        break;
      }
      case Stmt::Kind::kStore: {
        const SymbolId id = LookupVar(s.name, s.line);
        const Operand idx = LowerExpr(*s.index);
        const Operand val = LowerExpr(*s.value);
        fb_->EmitStoreElem(id, idx, val);
        break;
      }
      default:
        SemErr(s.line, "unsupported statement in for-step");
    }
  }

  Operand Normalize01(Operand a, int) {
    // x -> (x != 0)
    return Operand::Vreg(fb_->EmitBinary(Opcode::kCmpNe, a, Operand::Imm(0)));
  }

  Operand LowerExpr(const Expr& e) {
    if (e.line > 0) fb_->SetLine(e.line);
    switch (e.kind) {
      case Expr::Kind::kInt:
        return Operand::Imm(e.value);
      case Expr::Kind::kVar: {
        const SymbolId id = LookupVar(e.name, e.line);
        if (mod_.symbol(id).kind != ir::SymbolKind::kScalar) {
          SemErr(e.line, "'" + e.name + "' is not a scalar");
        }
        return Operand::Vreg(fb_->EmitReadVar(id));
      }
      case Expr::Kind::kIndex: {
        const SymbolId id = LookupVar(e.name, e.line);
        if (mod_.symbol(id).kind != ir::SymbolKind::kArray) {
          SemErr(e.line, "'" + e.name + "' is not an array");
        }
        const Operand idx = LowerExpr(*e.args[0]);
        return Operand::Vreg(fb_->EmitLoadElem(id, idx));
      }
      case Expr::Kind::kUnary: {
        const Operand a = LowerExpr(*e.args[0]);
        switch (e.un_op) {
          case UnOp::kNeg:
            if (a.is_imm()) return Operand::Imm(-a.imm);
            return Operand::Vreg(fb_->EmitUnary(Opcode::kNeg, a));
          case UnOp::kBitNot:
            if (a.is_imm()) return Operand::Imm(~a.imm);
            return Operand::Vreg(fb_->EmitUnary(Opcode::kNot, a));
          case UnOp::kLogicalNot:
            return Operand::Vreg(
                fb_->EmitBinary(Opcode::kCmpEq, a, Operand::Imm(0)));
        }
        break;
      }
      case Expr::Kind::kBinary: {
        const Operand a = LowerExpr(*e.args[0]);
        const Operand b = LowerExpr(*e.args[1]);
        switch (e.bin_op) {
          case BinOp::kAdd: return Operand::Vreg(fb_->EmitBinary(Opcode::kAdd, a, b));
          case BinOp::kSub: return Operand::Vreg(fb_->EmitBinary(Opcode::kSub, a, b));
          case BinOp::kMul: return Operand::Vreg(fb_->EmitBinary(Opcode::kMul, a, b));
          case BinOp::kDiv: return Operand::Vreg(fb_->EmitBinary(Opcode::kDiv, a, b));
          case BinOp::kMod: return Operand::Vreg(fb_->EmitBinary(Opcode::kMod, a, b));
          case BinOp::kAnd: return Operand::Vreg(fb_->EmitBinary(Opcode::kAnd, a, b));
          case BinOp::kOr: return Operand::Vreg(fb_->EmitBinary(Opcode::kOr, a, b));
          case BinOp::kXor: return Operand::Vreg(fb_->EmitBinary(Opcode::kXor, a, b));
          case BinOp::kShl: return Operand::Vreg(fb_->EmitBinary(Opcode::kShl, a, b));
          case BinOp::kShr: return Operand::Vreg(fb_->EmitBinary(Opcode::kSar, a, b));
          case BinOp::kEq: return Operand::Vreg(fb_->EmitBinary(Opcode::kCmpEq, a, b));
          case BinOp::kNe: return Operand::Vreg(fb_->EmitBinary(Opcode::kCmpNe, a, b));
          case BinOp::kLt: return Operand::Vreg(fb_->EmitBinary(Opcode::kCmpLt, a, b));
          case BinOp::kLe: return Operand::Vreg(fb_->EmitBinary(Opcode::kCmpLe, a, b));
          case BinOp::kGt: return Operand::Vreg(fb_->EmitBinary(Opcode::kCmpGt, a, b));
          case BinOp::kGe: return Operand::Vreg(fb_->EmitBinary(Opcode::kCmpGe, a, b));
          case BinOp::kLogicalAnd: {
            const Operand na = Normalize01(a, e.line);
            const Operand nb = Normalize01(b, e.line);
            return Operand::Vreg(fb_->EmitBinary(Opcode::kAnd, na, nb));
          }
          case BinOp::kLogicalOr: {
            const Operand na = Normalize01(a, e.line);
            const Operand nb = Normalize01(b, e.line);
            return Operand::Vreg(fb_->EmitBinary(Opcode::kOr, na, nb));
          }
        }
        break;
      }
      case Expr::Kind::kCall: {
        // Builtins first.
        if (e.name == "min" || e.name == "max") {
          if (e.args.size() != 2) SemErr(e.line, e.name + "() takes two arguments");
          const Operand a = LowerExpr(*e.args[0]);
          const Operand b = LowerExpr(*e.args[1]);
          return Operand::Vreg(fb_->EmitBinary(
              e.name == "min" ? Opcode::kMin : Opcode::kMax, a, b));
        }
        if (e.name == "abs") {
          if (e.args.size() != 1) SemErr(e.line, "abs() takes one argument");
          const Operand a = LowerExpr(*e.args[0]);
          const Operand na = Operand::Vreg(fb_->EmitUnary(Opcode::kNeg, a));
          return Operand::Vreg(fb_->EmitBinary(Opcode::kMax, a, na));
        }
        const auto callee = mod_.FindFunction(e.name);
        if (!callee) SemErr(e.line, "call to undeclared function '" + e.name + "'");
        std::vector<Operand> args;
        args.reserve(e.args.size());
        for (const ExprPtr& a : e.args) args.push_back(LowerExpr(*a));
        return Operand::Vreg(
            fb_->EmitCall(mod_.function(*callee).symbol, std::move(args)));
      }
    }
    LOPASS_THROW("unreachable expression kind");
  }

  ir::Module mod_;
  ir::RegionTree regions_;
  FunctionBuilder* fb_ = nullptr;
  ir::FunctionId cur_fn_ = -1;
  std::unordered_map<std::string, SymbolId> globals_;
  std::unordered_map<std::string, SymbolId> locals_;
  RegionId cur_seq_ = ir::kNoRegion;
  RegionId open_leaf_ = ir::kNoRegion;
  bool terminated_ = false;
  // Innermost-loop targets for break/continue.
  struct LoopContext {
    BlockId continue_target;
    BlockId break_target;
  };
  std::vector<LoopContext> loop_stack_;
};

}  // namespace

LoweredProgram Lower(const Program& ast) {
  Lowerer lw;
  return lw.Run(ast);
}

LoweredProgram Compile(std::string_view source) {
  LoweredProgram p = Lower(Parse(source));
  ir::VerifyOrThrow(p.module);
  return p;
}

LoweredProgram CompileWithUnroll(std::string_view source, int unroll_factor,
                                 int max_body_stmts) {
  Program ast = Parse(source);
  UnrollLoops(ast, unroll_factor, max_body_stmts);
  LoweredProgram p = Lower(ast);
  ir::VerifyOrThrow(p.module);
  return p;
}

namespace {

// Semantic errors are thrown as "line N: message" with a trailing
// " (src/file.cc:NNN)" origin appended by LOPASS_THROW; recover the
// source location and strip the internal origin so driver diagnostics
// stay structured and speak about the user's DSL file.
Diagnostic SemanticDiagnostic(std::string what) {
  const std::size_t paren = what.rfind(" (");
  if (paren != std::string::npos && what.size() > paren + 2 && what.back() == ')' &&
      what.find(".cc:", paren) != std::string::npos) {
    what.resize(paren);
  }
  Diagnostic d;
  d.severity = Severity::kError;
  d.code = "lower.semantic";
  d.message = what;
  if (what.rfind("line ", 0) == 0) {
    std::size_t pos = 5;
    int line = 0;
    while (pos < what.size() && what[pos] >= '0' && what[pos] <= '9') {
      line = line * 10 + (what[pos] - '0');
      ++pos;
    }
    if (line > 0 && pos + 1 < what.size() && what[pos] == ':') {
      d.loc = SourceLoc{line, 1};
      d.message = what.substr(pos + 2);
    }
  }
  return d;
}

}  // namespace

Result<LoweredProgram> CompileToResult(std::string_view source, int unroll_factor,
                                       int max_body_stmts) {
  DiagnosticSink sink;
  Program ast;
  try {
    ast = Parse(source, sink);
  } catch (const Error& e) {
    // Not a syntax error (those are recovered into the sink): an
    // injected fault or an internal invariant in the frontend.
    sink.AddError("parse.failed", e.what());
    return Result<LoweredProgram>::Failure(sink.Take());
  }
  if (sink.has_errors()) return Result<LoweredProgram>::Failure(sink.Take());
  try {
    if (unroll_factor > 1) UnrollLoops(ast, unroll_factor, max_body_stmts);
    LoweredProgram p = Lower(ast);
    // Accumulate every structural violation (L1xx) into the sink instead
    // of throwing on the first — the driver reports them all in one pass.
    if (!ir::Verify(p.module, sink)) {
      return Result<LoweredProgram>::Failure(sink.Take());
    }
    return Result<LoweredProgram>(std::move(p), sink.Take());
  } catch (const Error& e) {
    sink.Add(SemanticDiagnostic(e.what()));
    return Result<LoweredProgram>::Failure(sink.Take());
  }
}

}  // namespace lopass::dsl
