#pragma once

// Abstract syntax tree of the behavioral DSL.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lopass::dsl {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLogicalAnd, kLogicalOr,
};

enum class UnOp : std::uint8_t { kNeg, kBitNot, kLogicalNot };

struct Expr {
  enum class Kind : std::uint8_t {
    kInt,     // literal
    kVar,     // scalar reference
    kIndex,   // array[expr]
    kCall,    // callee(args...) — user function or builtin min/max/abs
    kUnary,
    kBinary,
  };

  Kind kind = Kind::kInt;
  int line = 0;

  std::int64_t value = 0;    // kInt
  std::string name;          // kVar / kIndex array name / kCall callee
  std::vector<ExprPtr> args; // kCall args; kIndex: [0]=index;
                             // kUnary: [0]; kBinary: [0],[1]
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    kVarDecl,    // var name (= init)?
    kArrayDecl,  // array name[len]
    kAssign,     // name = expr
    kStore,      // name[index] = expr
    kIf,         // cond, then_body, else_body
    kWhile,      // cond, body
    kFor,        // init(opt), cond(opt), step(opt), body
    kReturn,     // value(opt)
    kBreak,      // exit the innermost loop
    kContinue,   // next iteration of the innermost loop
    kExpr,       // expression statement (calls)
  };

  Kind kind = Kind::kVarDecl;
  int line = 0;

  std::string name;             // decl/assign/store target
  std::uint32_t array_len = 0;  // kArrayDecl
  ExprPtr value;                // init/assign/store value, return value, expr
  ExprPtr index;                // kStore index
  ExprPtr cond;                 // if/while/for condition
  StmtPtr init;                 // for init
  StmtPtr step;                 // for step
  std::vector<StmtPtr> body;    // if-then / while / for body
  std::vector<StmtPtr> else_body;
};

struct FuncDecl {
  std::string name;
  int line = 0;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
};

struct Program {
  // Global declarations (kVarDecl / kArrayDecl statements).
  std::vector<StmtPtr> globals;
  std::vector<FuncDecl> functions;
};

}  // namespace lopass::dsl
