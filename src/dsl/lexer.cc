#include "dsl/lexer.h"

#include <cctype>
#include <unordered_map>

#include "common/error.h"

namespace lopass::dsl {

const char* TokKindName(TokKind k) {
  switch (k) {
    case TokKind::kEof: return "<eof>";
    case TokKind::kIdent: return "identifier";
    case TokKind::kInt: return "integer";
    case TokKind::kFunc: return "'func'";
    case TokKind::kVar: return "'var'";
    case TokKind::kArray: return "'array'";
    case TokKind::kIf: return "'if'";
    case TokKind::kElse: return "'else'";
    case TokKind::kWhile: return "'while'";
    case TokKind::kFor: return "'for'";
    case TokKind::kReturn: return "'return'";
    case TokKind::kBreak: return "'break'";
    case TokKind::kContinue: return "'continue'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kComma: return "','";
    case TokKind::kSemi: return "';'";
    case TokKind::kAssign: return "'='";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kAmp: return "'&'";
    case TokKind::kPipe: return "'|'";
    case TokKind::kCaret: return "'^'";
    case TokKind::kTilde: return "'~'";
    case TokKind::kBang: return "'!'";
    case TokKind::kAmpAmp: return "'&&'";
    case TokKind::kPipePipe: return "'||'";
    case TokKind::kShl: return "'<<'";
    case TokKind::kShr: return "'>>'";
    case TokKind::kEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokKind>& Keywords() {
  static const std::unordered_map<std::string_view, TokKind> kw = {
      {"func", TokKind::kFunc},   {"var", TokKind::kVar},
      {"array", TokKind::kArray}, {"if", TokKind::kIf},
      {"else", TokKind::kElse},   {"while", TokKind::kWhile},
      {"for", TokKind::kFor},     {"return", TokKind::kReturn},
      {"break", TokKind::kBreak}, {"continue", TokKind::kContinue},
  };
  return kw;
}

// Shared scanner. With a sink, lexical errors are recorded and the scan
// continues past the offending characters; without one, the first error
// throws (the historical contract).
std::vector<Token> TokenizeImpl(std::string_view src, DiagnosticSink* sink) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1, col = 1;

  // Reports one lexical error; returns normally only in recovery mode.
  auto report = [&](int l, int c, const std::string& msg) {
    if (sink == nullptr) {
      LOPASS_THROW(msg + " at line " + std::to_string(l) + ":" + std::to_string(c));
    }
    sink->AddError("lex.invalid", msg, SourceLoc{l, c});
  };

  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };
  auto push = [&](TokKind k, int l, int c) {
    Token t;
    t.kind = k;
    t.line = l;
    t.col = c;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int l = line, cl = col;
      advance(2);
      while (i < src.size() && !(src[i] == '*' && peek(1) == '/')) advance();
      if (i >= src.size()) {
        report(l, cl, "unterminated block comment");
        continue;  // recovery: the comment swallowed the rest of the file
      }
      advance(2);
      continue;
    }
    if (c == '"') {
      // The DSL has no string type; scan the literal as a unit so the
      // diagnostic points at the opening quote and recovery resumes
      // after the closing one.
      const int l = line, cl = col;
      advance();
      while (i < src.size() && src[i] != '"') advance();
      if (i >= src.size()) {
        report(l, cl, "unterminated string literal");
      } else {
        advance();  // closing quote
        report(l, cl, "string literals are not supported in the lopass DSL");
      }
      continue;
    }
    const int l = line, cl = col;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) || src[j] == '_')) {
        ++j;
      }
      const std::string_view word = src.substr(i, j - i);
      Token t;
      auto it = Keywords().find(word);
      t.kind = it != Keywords().end() ? it->second : TokKind::kIdent;
      t.text = std::string(word);
      t.line = l;
      t.col = cl;
      out.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      std::int64_t value = 0;
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        j = i + 2;
        if (j >= src.size() || !std::isxdigit(static_cast<unsigned char>(src[j]))) {
          report(l, cl, "malformed hex literal");
          advance(2);  // recovery: skip the bare "0x" prefix
          continue;
        }
        while (j < src.size() && std::isxdigit(static_cast<unsigned char>(src[j]))) {
          const char d = src[j];
          const int dv = std::isdigit(static_cast<unsigned char>(d))
                             ? d - '0'
                             : std::tolower(static_cast<unsigned char>(d)) - 'a' + 10;
          value = value * 16 + dv;
          ++j;
        }
      } else {
        while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) {
          value = value * 10 + (src[j] - '0');
          ++j;
        }
      }
      Token t;
      t.kind = TokKind::kInt;
      t.value = value;
      t.line = l;
      t.col = cl;
      out.push_back(std::move(t));
      advance(j - i);
      continue;
    }

    auto two = [&](char second, TokKind kk) -> bool {
      if (peek(1) == second) {
        push(kk, l, cl);
        advance(2);
        return true;
      }
      return false;
    };
    switch (c) {
      case '(': push(TokKind::kLParen, l, cl); advance(); break;
      case ')': push(TokKind::kRParen, l, cl); advance(); break;
      case '{': push(TokKind::kLBrace, l, cl); advance(); break;
      case '}': push(TokKind::kRBrace, l, cl); advance(); break;
      case '[': push(TokKind::kLBracket, l, cl); advance(); break;
      case ']': push(TokKind::kRBracket, l, cl); advance(); break;
      case ',': push(TokKind::kComma, l, cl); advance(); break;
      case ';': push(TokKind::kSemi, l, cl); advance(); break;
      case '+': push(TokKind::kPlus, l, cl); advance(); break;
      case '-': push(TokKind::kMinus, l, cl); advance(); break;
      case '*': push(TokKind::kStar, l, cl); advance(); break;
      case '/': push(TokKind::kSlash, l, cl); advance(); break;
      case '%': push(TokKind::kPercent, l, cl); advance(); break;
      case '^': push(TokKind::kCaret, l, cl); advance(); break;
      case '~': push(TokKind::kTilde, l, cl); advance(); break;
      case '&':
        if (!two('&', TokKind::kAmpAmp)) { push(TokKind::kAmp, l, cl); advance(); }
        break;
      case '|':
        if (!two('|', TokKind::kPipePipe)) { push(TokKind::kPipe, l, cl); advance(); }
        break;
      case '=':
        if (!two('=', TokKind::kEq)) { push(TokKind::kAssign, l, cl); advance(); }
        break;
      case '!':
        if (!two('=', TokKind::kNe)) { push(TokKind::kBang, l, cl); advance(); }
        break;
      case '<':
        if (!two('<', TokKind::kShl) && !two('=', TokKind::kLe)) {
          push(TokKind::kLt, l, cl);
          advance();
        }
        break;
      case '>':
        if (!two('>', TokKind::kShr) && !two('=', TokKind::kGe)) {
          push(TokKind::kGt, l, cl);
          advance();
        }
        break;
      default:
        report(l, cl, std::string("unexpected character '") + c + "'");
        advance();  // recovery: drop the character
    }
  }
  Token eof;
  eof.kind = TokKind::kEof;
  eof.line = line;
  eof.col = col;
  out.push_back(eof);
  return out;
}

}  // namespace

std::vector<Token> Tokenize(std::string_view src) { return TokenizeImpl(src, nullptr); }

std::vector<Token> Tokenize(std::string_view src, DiagnosticSink& sink) {
  return TokenizeImpl(src, &sink);
}

}  // namespace lopass::dsl
