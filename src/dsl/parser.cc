#include "dsl/parser.h"

#include <utility>

#include "common/error.h"
#include "common/fault.h"
#include "dsl/lexer.h"

namespace lopass::dsl {

namespace {

// Internal unwind signal used in recovery mode: Fail() records the
// diagnostic, throws ParseAbort, and the nearest synchronization point
// (statement or top-level loop) resumes parsing.
struct ParseAbort {};

class Parser {
 public:
  explicit Parser(std::vector<Token> toks, DiagnosticSink* sink = nullptr)
      : toks_(std::move(toks)), sink_(sink) {}

  Program ParseProgram() {
    Program p;
    while (!At(TokKind::kEof)) {
      const std::size_t before = pos_;
      try {
        if (At(TokKind::kFunc)) {
          p.functions.push_back(ParseFunc());
        } else if (At(TokKind::kVar) || At(TokKind::kArray)) {
          p.globals.push_back(ParseDecl(/*global=*/true));
        } else {
          Fail("expected 'func', 'var' or 'array' at top level");
        }
      } catch (const ParseAbort&) {
        SyncTopLevel(before);
      }
    }
    return p;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  bool At(TokKind k) const { return Cur().kind == k; }

  Token Eat(TokKind k) {
    if (!At(k)) {
      Fail(std::string("expected ") + TokKindName(k) + ", found " +
           TokKindName(Cur().kind));
    }
    return toks_[pos_++];
  }

  bool Accept(TokKind k) {
    if (At(k)) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[noreturn]] void Fail(const std::string& msg) const {
    if (sink_ != nullptr) {
      sink_->AddError("parse.syntax", msg, SourceLoc{Cur().line, Cur().col});
      throw ParseAbort{};
    }
    LOPASS_THROW("parse error at line " + std::to_string(Cur().line) + ":" +
                 std::to_string(Cur().col) + ": " + msg);
  }

  // --- recovery synchronization -----------------------------------------

  // Guarantees forward progress after an error raised at `error_pos`.
  void EnsureProgress(std::size_t error_pos) {
    if (pos_ == error_pos && !At(TokKind::kEof)) ++pos_;
  }

  // Skips to just past the next ';', or stops at '}' / EOF, so the
  // enclosing block can continue with the next statement.
  void SyncStmt(std::size_t error_pos) {
    EnsureProgress(error_pos);
    while (!At(TokKind::kEof) && !At(TokKind::kRBrace)) {
      if (At(TokKind::kSemi)) {
        ++pos_;
        return;
      }
      ++pos_;
    }
  }

  // Skips to the next plausible top-level declaration.
  void SyncTopLevel(std::size_t error_pos) {
    EnsureProgress(error_pos);
    while (!At(TokKind::kEof) && !At(TokKind::kFunc) && !At(TokKind::kVar) &&
           !At(TokKind::kArray)) {
      ++pos_;
    }
  }

  FuncDecl ParseFunc() {
    FuncDecl f;
    f.line = Cur().line;
    Eat(TokKind::kFunc);
    f.name = Eat(TokKind::kIdent).text;
    Eat(TokKind::kLParen);
    if (!At(TokKind::kRParen)) {
      f.params.push_back(Eat(TokKind::kIdent).text);
      while (Accept(TokKind::kComma)) f.params.push_back(Eat(TokKind::kIdent).text);
    }
    Eat(TokKind::kRParen);
    f.body = ParseBlock();
    return f;
  }

  std::vector<StmtPtr> ParseBlock() {
    Eat(TokKind::kLBrace);
    std::vector<StmtPtr> body;
    while (!At(TokKind::kRBrace) && !At(TokKind::kEof)) {
      if (sink_ == nullptr) {
        body.push_back(ParseStmt());
        continue;
      }
      const std::size_t before = pos_;
      try {
        body.push_back(ParseStmt());
      } catch (const ParseAbort&) {
        SyncStmt(before);
      }
    }
    Eat(TokKind::kRBrace);
    return body;
  }

  StmtPtr ParseDecl(bool global) {
    auto s = std::make_unique<Stmt>();
    s->line = Cur().line;
    if (Accept(TokKind::kVar)) {
      s->kind = Stmt::Kind::kVarDecl;
      s->name = Eat(TokKind::kIdent).text;
      if (Accept(TokKind::kAssign)) {
        s->value = ParseExpr();
        if (global) {
          // Fold a leading unary minus so `var g = -5;` works.
          if (s->value->kind == Expr::Kind::kUnary && s->value->un_op == UnOp::kNeg &&
              s->value->args[0]->kind == Expr::Kind::kInt) {
            auto folded = std::make_unique<Expr>();
            folded->kind = Expr::Kind::kInt;
            folded->line = s->value->line;
            folded->value = -s->value->args[0]->value;
            s->value = std::move(folded);
          }
          if (s->value->kind != Expr::Kind::kInt) {
            Fail("global initializer must be an integer constant");
          }
        }
      }
    } else {
      Eat(TokKind::kArray);
      s->kind = Stmt::Kind::kArrayDecl;
      s->name = Eat(TokKind::kIdent).text;
      Eat(TokKind::kLBracket);
      const Token len = Eat(TokKind::kInt);
      if (len.value <= 0) Fail("array length must be positive");
      s->array_len = static_cast<std::uint32_t>(len.value);
      Eat(TokKind::kRBracket);
    }
    Eat(TokKind::kSemi);
    return s;
  }

  // A "simple" statement usable in for-init/for-step (no trailing ';').
  StmtPtr ParseSimple() {
    auto s = std::make_unique<Stmt>();
    s->line = Cur().line;
    if (Accept(TokKind::kVar)) {
      s->kind = Stmt::Kind::kVarDecl;
      s->name = Eat(TokKind::kIdent).text;
      Eat(TokKind::kAssign);
      s->value = ParseExpr();
      return s;
    }
    const std::string name = Eat(TokKind::kIdent).text;
    if (Accept(TokKind::kLBracket)) {
      s->kind = Stmt::Kind::kStore;
      s->name = name;
      s->index = ParseExpr();
      Eat(TokKind::kRBracket);
      Eat(TokKind::kAssign);
      s->value = ParseExpr();
      return s;
    }
    Eat(TokKind::kAssign);
    s->kind = Stmt::Kind::kAssign;
    s->name = name;
    s->value = ParseExpr();
    return s;
  }

  StmtPtr ParseIf() {
    auto s = std::make_unique<Stmt>();
    s->line = Cur().line;
    s->kind = Stmt::Kind::kIf;
    Eat(TokKind::kIf);
    Eat(TokKind::kLParen);
    s->cond = ParseExpr();
    Eat(TokKind::kRParen);
    s->body = ParseBlock();
    if (Accept(TokKind::kElse)) {
      if (At(TokKind::kIf)) {
        s->else_body.push_back(ParseIf());  // else-if chain
      } else {
        s->else_body = ParseBlock();
      }
    }
    return s;
  }

  StmtPtr ParseStmt() {
    if (At(TokKind::kVar) || At(TokKind::kArray)) return ParseDecl(/*global=*/false);
    if (At(TokKind::kIf)) return ParseIf();
    if (At(TokKind::kWhile)) {
      auto s = std::make_unique<Stmt>();
      s->line = Cur().line;
      s->kind = Stmt::Kind::kWhile;
      Eat(TokKind::kWhile);
      Eat(TokKind::kLParen);
      s->cond = ParseExpr();
      Eat(TokKind::kRParen);
      s->body = ParseBlock();
      return s;
    }
    if (At(TokKind::kFor)) {
      auto s = std::make_unique<Stmt>();
      s->line = Cur().line;
      s->kind = Stmt::Kind::kFor;
      Eat(TokKind::kFor);
      Eat(TokKind::kLParen);
      if (!At(TokKind::kSemi)) s->init = ParseSimple();
      Eat(TokKind::kSemi);
      if (!At(TokKind::kSemi)) s->cond = ParseExpr();
      Eat(TokKind::kSemi);
      if (!At(TokKind::kRParen)) s->step = ParseSimple();
      Eat(TokKind::kRParen);
      s->body = ParseBlock();
      return s;
    }
    if (At(TokKind::kBreak)) {
      auto s = std::make_unique<Stmt>();
      s->line = Cur().line;
      s->kind = Stmt::Kind::kBreak;
      Eat(TokKind::kBreak);
      Eat(TokKind::kSemi);
      return s;
    }
    if (At(TokKind::kContinue)) {
      auto s = std::make_unique<Stmt>();
      s->line = Cur().line;
      s->kind = Stmt::Kind::kContinue;
      Eat(TokKind::kContinue);
      Eat(TokKind::kSemi);
      return s;
    }
    if (At(TokKind::kReturn)) {
      auto s = std::make_unique<Stmt>();
      s->line = Cur().line;
      s->kind = Stmt::Kind::kReturn;
      Eat(TokKind::kReturn);
      if (!At(TokKind::kSemi)) s->value = ParseExpr();
      Eat(TokKind::kSemi);
      return s;
    }
    // Assignment, store or expression statement.
    if (At(TokKind::kIdent)) {
      const TokKind next = toks_[pos_ + 1].kind;
      if (next == TokKind::kAssign || next == TokKind::kLBracket) {
        // Could still be an rvalue index expression statement — but a
        // bare `a[i];` has no effect, so treat `ident[` as a store.
        auto s = ParseSimple();
        Eat(TokKind::kSemi);
        return s;
      }
    }
    auto s = std::make_unique<Stmt>();
    s->line = Cur().line;
    s->kind = Stmt::Kind::kExpr;
    s->value = ParseExpr();
    Eat(TokKind::kSemi);
    return s;
  }

  // --- expressions (C precedence) ---------------------------------------

  ExprPtr ParseExpr() { return ParseLogicalOr(); }

  ExprPtr MakeBin(BinOp op, ExprPtr a, ExprPtr b, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->bin_op = op;
    e->line = line;
    e->args.push_back(std::move(a));
    e->args.push_back(std::move(b));
    return e;
  }

  ExprPtr ParseLogicalOr() {
    auto e = ParseLogicalAnd();
    while (At(TokKind::kPipePipe)) {
      const int line = Cur().line;
      Eat(TokKind::kPipePipe);
      e = MakeBin(BinOp::kLogicalOr, std::move(e), ParseLogicalAnd(), line);
    }
    return e;
  }

  ExprPtr ParseLogicalAnd() {
    auto e = ParseBitOr();
    while (At(TokKind::kAmpAmp)) {
      const int line = Cur().line;
      Eat(TokKind::kAmpAmp);
      e = MakeBin(BinOp::kLogicalAnd, std::move(e), ParseBitOr(), line);
    }
    return e;
  }

  ExprPtr ParseBitOr() {
    auto e = ParseBitXor();
    while (At(TokKind::kPipe)) {
      const int line = Cur().line;
      Eat(TokKind::kPipe);
      e = MakeBin(BinOp::kOr, std::move(e), ParseBitXor(), line);
    }
    return e;
  }

  ExprPtr ParseBitXor() {
    auto e = ParseBitAnd();
    while (At(TokKind::kCaret)) {
      const int line = Cur().line;
      Eat(TokKind::kCaret);
      e = MakeBin(BinOp::kXor, std::move(e), ParseBitAnd(), line);
    }
    return e;
  }

  ExprPtr ParseBitAnd() {
    auto e = ParseEquality();
    while (At(TokKind::kAmp)) {
      const int line = Cur().line;
      Eat(TokKind::kAmp);
      e = MakeBin(BinOp::kAnd, std::move(e), ParseEquality(), line);
    }
    return e;
  }

  ExprPtr ParseEquality() {
    auto e = ParseRelational();
    while (At(TokKind::kEq) || At(TokKind::kNe)) {
      const int line = Cur().line;
      const BinOp op = Accept(TokKind::kEq) ? BinOp::kEq : (Eat(TokKind::kNe), BinOp::kNe);
      e = MakeBin(op, std::move(e), ParseRelational(), line);
    }
    return e;
  }

  ExprPtr ParseRelational() {
    auto e = ParseShift();
    while (At(TokKind::kLt) || At(TokKind::kLe) || At(TokKind::kGt) || At(TokKind::kGe)) {
      const int line = Cur().line;
      BinOp op;
      if (Accept(TokKind::kLt)) op = BinOp::kLt;
      else if (Accept(TokKind::kLe)) op = BinOp::kLe;
      else if (Accept(TokKind::kGt)) op = BinOp::kGt;
      else { Eat(TokKind::kGe); op = BinOp::kGe; }
      e = MakeBin(op, std::move(e), ParseShift(), line);
    }
    return e;
  }

  ExprPtr ParseShift() {
    auto e = ParseAdditive();
    while (At(TokKind::kShl) || At(TokKind::kShr)) {
      const int line = Cur().line;
      const BinOp op = Accept(TokKind::kShl) ? BinOp::kShl : (Eat(TokKind::kShr), BinOp::kShr);
      e = MakeBin(op, std::move(e), ParseAdditive(), line);
    }
    return e;
  }

  ExprPtr ParseAdditive() {
    auto e = ParseMultiplicative();
    while (At(TokKind::kPlus) || At(TokKind::kMinus)) {
      const int line = Cur().line;
      const BinOp op =
          Accept(TokKind::kPlus) ? BinOp::kAdd : (Eat(TokKind::kMinus), BinOp::kSub);
      e = MakeBin(op, std::move(e), ParseMultiplicative(), line);
    }
    return e;
  }

  ExprPtr ParseMultiplicative() {
    auto e = ParseUnary();
    while (At(TokKind::kStar) || At(TokKind::kSlash) || At(TokKind::kPercent)) {
      const int line = Cur().line;
      BinOp op;
      if (Accept(TokKind::kStar)) op = BinOp::kMul;
      else if (Accept(TokKind::kSlash)) op = BinOp::kDiv;
      else { Eat(TokKind::kPercent); op = BinOp::kMod; }
      e = MakeBin(op, std::move(e), ParseUnary(), line);
    }
    return e;
  }

  ExprPtr ParseUnary() {
    const int line = Cur().line;
    if (Accept(TokKind::kMinus)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->un_op = UnOp::kNeg;
      e->line = line;
      e->args.push_back(ParseUnary());
      return e;
    }
    if (Accept(TokKind::kTilde)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->un_op = UnOp::kBitNot;
      e->line = line;
      e->args.push_back(ParseUnary());
      return e;
    }
    if (Accept(TokKind::kBang)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->un_op = UnOp::kLogicalNot;
      e->line = line;
      e->args.push_back(ParseUnary());
      return e;
    }
    if (Accept(TokKind::kPlus)) return ParseUnary();
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    const int line = Cur().line;
    if (At(TokKind::kInt)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kInt;
      e->value = Eat(TokKind::kInt).value;
      e->line = line;
      return e;
    }
    if (Accept(TokKind::kLParen)) {
      auto e = ParseExpr();
      Eat(TokKind::kRParen);
      return e;
    }
    if (At(TokKind::kIdent)) {
      const std::string name = Eat(TokKind::kIdent).text;
      if (Accept(TokKind::kLParen)) {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kCall;
        e->name = name;
        e->line = line;
        if (!At(TokKind::kRParen)) {
          e->args.push_back(ParseExpr());
          while (Accept(TokKind::kComma)) e->args.push_back(ParseExpr());
        }
        Eat(TokKind::kRParen);
        return e;
      }
      if (Accept(TokKind::kLBracket)) {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kIndex;
        e->name = name;
        e->line = line;
        e->args.push_back(ParseExpr());
        Eat(TokKind::kRBracket);
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kVar;
      e->name = name;
      e->line = line;
      return e;
    }
    Fail(std::string("expected expression, found ") + TokKindName(Cur().kind));
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  DiagnosticSink* sink_ = nullptr;
};

}  // namespace

Program Parse(std::string_view source) {
  fault::MaybeInject("parse");
  Parser p(Tokenize(source));
  return p.ParseProgram();
}

Program Parse(std::string_view source, DiagnosticSink& sink) {
  fault::MaybeInject("parse");
  Parser p(Tokenize(source, sink), &sink);
  return p.ParseProgram();
}

}  // namespace lopass::dsl
