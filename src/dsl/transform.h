#pragma once

// AST-level program transformations.
//
// Loop unrolling is the classic HLS enabler for the paper's approach:
// replicating a loop body K times gives the list scheduler bigger
// dataflow blocks, which raises the achievable utilization rate U_R of
// an ASIC implementation (and amortizes the per-block controller
// cycle). The transform is trip-count agnostic — between replicas it
// re-checks the loop condition and breaks out — so it is semantics
// preserving for any `for` loop whose direct body contains no
// `continue` (which would skip the interleaved steps).
//
//   for (init; cond; step) { body }
//     =>
//   for (init; cond; step) {
//     body;  step;  if (!(cond)) { break; }
//     body;  step;  if (!(cond)) { break; }
//     body;                       // K-th copy; the loop's own step runs
//   }
//
// Variable/array declarations in replicas 2..K are rewritten to plain
// assignments (declarations are static in this frontend).

#include <string_view>

#include "dsl/ast.h"

namespace lopass::dsl {

// Deep copies (used by the transforms and available for tooling).
ExprPtr CloneExpr(const Expr& e);
StmtPtr CloneStmt(const Stmt& s);

// Unrolls every eligible `for` loop in the program by `factor`
// (factor >= 2; 1 is a no-op). Loops whose direct body contains
// `continue`, or whose body exceeds `max_body_stmts` statements, are
// left alone. Returns the number of loops unrolled.
int UnrollLoops(Program& program, int factor, int max_body_stmts = 16);

struct CompileOptions {
  int unroll_factor = 1;
};

// Parse + transform + lower + verify.
struct LoweredProgram;  // from dsl/lower.h

}  // namespace lopass::dsl
