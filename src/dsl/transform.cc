#include "dsl/transform.h"

#include "common/error.h"

namespace lopass::dsl {

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->line = e.line;
  out->value = e.value;
  out->name = e.name;
  out->bin_op = e.bin_op;
  out->un_op = e.un_op;
  out->args.reserve(e.args.size());
  for (const ExprPtr& a : e.args) out->args.push_back(CloneExpr(*a));
  return out;
}

StmtPtr CloneStmt(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  out->line = s.line;
  out->name = s.name;
  out->array_len = s.array_len;
  if (s.value) out->value = CloneExpr(*s.value);
  if (s.index) out->index = CloneExpr(*s.index);
  if (s.cond) out->cond = CloneExpr(*s.cond);
  if (s.init) out->init = CloneStmt(*s.init);
  if (s.step) out->step = CloneStmt(*s.step);
  out->body.reserve(s.body.size());
  for (const StmtPtr& b : s.body) out->body.push_back(CloneStmt(*b));
  out->else_body.reserve(s.else_body.size());
  for (const StmtPtr& b : s.else_body) out->else_body.push_back(CloneStmt(*b));
  return out;
}

namespace {

// True if a `continue` binds to the loop owning this statement list
// (does not descend into nested loops, whose continue binds to them).
bool HasDirectContinue(const std::vector<StmtPtr>& body) {
  for (const StmtPtr& s : body) {
    switch (s->kind) {
      case Stmt::Kind::kContinue:
        return true;
      case Stmt::Kind::kIf:
        if (HasDirectContinue(s->body) || HasDirectContinue(s->else_body)) return true;
        break;
      default:
        break;  // kWhile/kFor capture their own continue
    }
  }
  return false;
}

// Rewrites declarations into assignments for replicas 2..K.
void DeclsToAssigns(std::vector<StmtPtr>& body) {
  for (auto it = body.begin(); it != body.end();) {
    Stmt& s = **it;
    switch (s.kind) {
      case Stmt::Kind::kVarDecl:
        if (s.value) {
          s.kind = Stmt::Kind::kAssign;
          ++it;
        } else {
          it = body.erase(it);
        }
        break;
      case Stmt::Kind::kArrayDecl:
        it = body.erase(it);
        break;
      case Stmt::Kind::kIf:
        DeclsToAssigns(s.body);
        DeclsToAssigns(s.else_body);
        ++it;
        break;
      case Stmt::Kind::kWhile:
      case Stmt::Kind::kFor:
        DeclsToAssigns(s.body);
        // A decl in a nested for-init also re-declares.
        if (s.kind == Stmt::Kind::kFor && s.init &&
            s.init->kind == Stmt::Kind::kVarDecl) {
          s.init->kind = Stmt::Kind::kAssign;
        }
        ++it;
        break;
      default:
        ++it;
        break;
    }
  }
}

// `if (!(cond)) { break; }`
StmtPtr MakeGuard(const Expr& cond) {
  auto neg = std::make_unique<Expr>();
  neg->kind = Expr::Kind::kUnary;
  neg->un_op = UnOp::kLogicalNot;
  neg->line = cond.line;
  neg->args.push_back(CloneExpr(cond));

  auto brk = std::make_unique<Stmt>();
  brk->kind = Stmt::Kind::kBreak;
  brk->line = cond.line;

  auto guard = std::make_unique<Stmt>();
  guard->kind = Stmt::Kind::kIf;
  guard->line = cond.line;
  guard->cond = std::move(neg);
  guard->body.push_back(std::move(brk));
  return guard;
}

int UnrollStmtList(std::vector<StmtPtr>& body, int factor, int max_body_stmts);

int UnrollOne(Stmt& loop, int factor, int max_body_stmts) {
  // Recurse first so inner loops unroll before the outer body grows.
  int count = UnrollStmtList(loop.body, factor, max_body_stmts);

  if (loop.kind != Stmt::Kind::kFor || loop.cond == nullptr || loop.step == nullptr) {
    return count;
  }
  if (static_cast<int>(loop.body.size()) > max_body_stmts) return count;
  if (HasDirectContinue(loop.body)) return count;

  std::vector<StmtPtr> unrolled;
  for (int k = 0; k < factor; ++k) {
    std::vector<StmtPtr> replica;
    replica.reserve(loop.body.size());
    for (const StmtPtr& s : loop.body) replica.push_back(CloneStmt(*s));
    if (k > 0) DeclsToAssigns(replica);
    for (StmtPtr& s : replica) unrolled.push_back(std::move(s));
    if (k + 1 < factor) {
      unrolled.push_back(CloneStmt(*loop.step));
      unrolled.push_back(MakeGuard(*loop.cond));
    }
  }
  loop.body = std::move(unrolled);
  return count + 1;
}

int UnrollStmtList(std::vector<StmtPtr>& body, int factor, int max_body_stmts) {
  int count = 0;
  for (StmtPtr& s : body) {
    switch (s->kind) {
      case Stmt::Kind::kFor:
      case Stmt::Kind::kWhile:
        count += UnrollOne(*s, factor, max_body_stmts);
        break;
      case Stmt::Kind::kIf:
        count += UnrollStmtList(s->body, factor, max_body_stmts);
        count += UnrollStmtList(s->else_body, factor, max_body_stmts);
        break;
      default:
        break;
    }
  }
  return count;
}

}  // namespace

int UnrollLoops(Program& program, int factor, int max_body_stmts) {
  LOPASS_CHECK(factor >= 1, "unroll factor must be >= 1");
  if (factor == 1) return 0;
  int count = 0;
  for (FuncDecl& f : program.functions) {
    count += UnrollStmtList(f.body, factor, max_body_stmts);
  }
  return count;
}

}  // namespace lopass::dsl
