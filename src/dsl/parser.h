#pragma once

// Recursive-descent parser for the behavioral DSL.
//
// Grammar (EBNF, whitespace/comments elided):
//
//   program   := (gdecl | func)*
//   gdecl     := "var" ident ("=" constexpr)? ";"
//              | "array" ident "[" int "]" ";"
//   func      := "func" ident "(" [ident {"," ident}] ")" block
//   block     := "{" stmt* "}"
//   stmt      := "var" ident ("=" expr)? ";"
//              | "array" ident "[" int "]" ";"
//              | ident "=" expr ";"
//              | ident "[" expr "]" "=" expr ";"
//              | "if" "(" expr ")" block ["else" (block | ifstmt)]
//              | "while" "(" expr ")" block
//              | "for" "(" [simple] ";" [expr] ";" [simple] ")" block
//              | "return" [expr] ";"
//              | expr ";"
//   simple    := "var" ident "=" expr | ident "=" expr
//              | ident "[" expr "]" "=" expr
//
// Expressions use C precedence. `&&`/`||`/`!` are *arithmetic* (no
// short circuit): operands are normalized to 0/1 and combined, which
// matches the dataflow-graph view the partitioner needs.

#include <string_view>

#include "common/diag.h"
#include "dsl/ast.h"

namespace lopass::dsl {

// Parses `source` into an AST; throws lopass::Error with line/column
// information on syntax errors.
Program Parse(std::string_view source);

// Recovery variant: syntax errors are recorded in `sink` and the parser
// synchronizes (to the next ';' or '}' inside a block, to the next
// top-level declaration otherwise) so one malformed statement yields
// diagnostics for the whole file, not a single throw. Returns the
// (possibly partial) program; callers must treat it as unusable when
// sink.has_errors().
Program Parse(std::string_view source, DiagnosticSink& sink);

}  // namespace lopass::dsl
