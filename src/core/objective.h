#pragma once

// Objective function of the partitioning process (Fig. 1 line 13):
//
//   OF = F · (E_R^core + E_µP^core + E_rest) / E_0  +  G · GEQ / GEQ_0
//
// "F is a factor given by the designer to balance the objective
// function between energy consumption and possible other design
// constraints" (§3.2); the trailing "+ ..." of the paper is realized as
// a hardware-effort term, which is what makes the algorithm "reject
// clusters that would result in an unacceptably high hardware effort
// (due to factor F)" (§4).

#include "common/units.h"

namespace lopass::core {

struct ObjectiveParams {
  double f = 1.0;            // energy weight (designer's F)
  double g = 0.25;           // hardware-effort weight
  double geq_norm = 20000.0; // GEQ_0 normalization
};

inline double Objective(Energy total_energy, Energy e0, double geq,
                        const ObjectiveParams& p) {
  const double energy_term = e0.joules > 0.0 ? total_energy.joules / e0.joules : 0.0;
  return p.f * energy_term + p.g * (geq / p.geq_norm);
}

// OF of the unpartitioned design (E = E_0, no extra hardware).
inline double BaselineObjective(const ObjectiveParams& p) { return p.f; }

}  // namespace lopass::core
