#pragma once

// gen/use analysis and bus-transfer energy estimation (Fig. 3, §3.3).
//
// gen[·] and use[·] follow the Aho/Sethi/Ullman definitions [16],
// applied at cluster granularity over the program's named variables and
// arrays (with call closure for clusters that invoke functions). The
// additional shared-memory traffic caused by mapping cluster c_i to the
// ASIC core is
//
//   N_µP->mem  = |gen[C_pred]  ∩ use[c_i]|       (step 1)
//              - |gen[c_{i-1}] ∩ use[c_i]|       if c_{i-1} in ASIC (2)
//   N_ASIC->mem= |gen[c_i]     ∩ use[C_succ]|    (step 3)
//              - |gen[c_i]     ∩ use[c_{i+1}]|   if c_{i+1} in ASIC (4)
//   E_trans    = (N_µP->mem + N_ASIC->mem) × E_bus_read/write  (step 5)
//
// Set sizes are measured in 32-bit words (arrays weigh their length).

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/units.h"
#include "core/cluster.h"
#include "power/cache_energy.h"
#include "power/tech_library.h"

namespace lopass::core {

struct GenUse {
  std::unordered_set<ir::SymbolId> gen;
  std::unordered_set<ir::SymbolId> use;
};

// gen/use of an arbitrary block set; `include_calls` folds in the
// callee's sets (plus its parameters into gen, since the caller writes
// them at the call site).
GenUse ComputeGenUse(const ir::Module& module, const std::vector<BlockRef>& blocks,
                     bool include_calls = true);

struct Transfers {
  std::uint64_t up_to_mem_words = 0;    // entry: µP deposits for the ASIC
  std::uint64_t asic_to_mem_words = 0;  // exit: ASIC deposits for the µP
  Energy energy;                        // E_trans of Fig. 3 step 5

  std::uint64_t total_words() const { return up_to_mem_words + asic_to_mem_words; }
};

class BusTrafficAnalyzer {
 public:
  BusTrafficAnalyzer(const ir::Module& module, const ClusterChain& chain,
                     const power::TechLibrary& lib, std::uint32_t memory_bytes);

  // Transfer estimate for mapping `cluster` to the ASIC core.
  // `hw_clusters` holds ids of clusters already mapped (synergy terms
  // of Fig. 3 steps 2 and 4).
  Transfers Compute(const Cluster& cluster,
                    const std::unordered_set<int>& hw_clusters = {}) const;

  const GenUse& cluster_gen_use(int cluster_id) const;

 private:
  std::uint64_t WordsOfIntersection(const std::unordered_set<ir::SymbolId>& a,
                                    const std::unordered_set<ir::SymbolId>& b) const;
  bool ChainPosInHw(int pos, const std::unordered_set<int>& hw_clusters) const;

  const ir::Module& module_;
  const ClusterChain& chain_;
  Energy per_word_energy_;
  std::vector<GenUse> gen_use_;          // per cluster id (with call closure)
  std::vector<GenUse> own_gen_use_;      // per cluster id (without call closure)
};

}  // namespace lopass::core
