#pragma once

// Workload abstraction: how an application's input data ("input stimuli
// pattern", Fig. 5 footnote 18) is installed before a profiling or
// simulation run. Both execution engines (interp::Interpreter and
// iss::Simulator) are adapted to this interface so a single workload
// definition drives profiling, the initial run and partitioned re-runs.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace lopass::core {

// Anything data can be poured into before a run.
class DataTarget {
 public:
  virtual ~DataTarget() = default;
  virtual void SetScalar(const std::string& name, std::int64_t value) = 0;
  virtual void FillArray(const std::string& name, std::span<const std::int64_t> values) = 0;
};

struct Workload {
  std::string entry = "main";
  std::vector<std::int64_t> args;
  // Called before every run to install input data deterministically.
  std::function<void(DataTarget&)> setup;
};

}  // namespace lopass::core
