#pragma once

// Workload abstraction: how an application's input data ("input stimuli
// pattern", Fig. 5 footnote 18) is installed before a profiling or
// simulation run. Both execution engines (interp::Interpreter and
// iss::Simulator) are adapted to this interface so a single workload
// definition drives profiling, the initial run and partitioned re-runs.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/diag.h"

namespace lopass::core {

// Anything data can be poured into before a run.
class DataTarget {
 public:
  virtual ~DataTarget() = default;
  virtual void SetScalar(const std::string& name, std::int64_t value) = 0;
  virtual void FillArray(const std::string& name, std::span<const std::int64_t> values) = 0;
};

struct Workload {
  std::string entry = "main";
  std::vector<std::int64_t> args;
  // Called before every run to install input data deterministically.
  std::function<void(DataTarget&)> setup;
};

// A parsed `NAME=KIND:...` array-fill directive (the CLI's --fill).
struct FillSpec {
  std::string name;
  std::vector<std::int64_t> values;
};

// Parses a fill directive of the form
//   NAME=rand:COUNT:LO:HI[:SEED]   uniform values in [LO, HI]
//   NAME=ramp:COUNT[:STEP]         0, STEP, 2*STEP, ...
// Malformed specs (missing '=', unknown kind, non-numeric or
// out-of-range fields, LO > HI, negative COUNT) come back as error
// diagnostics with code "cli.fill" — never an exception or a crash.
Result<FillSpec> ParseFillSpec(std::string_view spec);

}  // namespace lopass::core
