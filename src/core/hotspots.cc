#include "core/hotspots.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/table.h"

namespace lopass::core {

std::vector<HotspotEntry> ComputeHotspots(const ClusterChain& chain,
                                          const iss::SimResult& initial) {
  std::vector<HotspotEntry> out;
  for (const Cluster& c : chain.clusters) {
    HotspotEntry e;
    e.cluster_id = c.id;
    e.label = c.label;
    e.hw_candidate = c.hw_candidate;
    for (const auto& [fn, b] : c.blocks) {
      const iss::BlockCost& bc =
          initial.block_costs[static_cast<std::size_t>(fn)][static_cast<std::size_t>(b)];
      e.cycles += bc.cycles;
      e.energy += bc.energy;
      e.instrs += bc.instrs;
    }
    if (initial.up_cycles > 0) {
      e.cycle_share = static_cast<double>(e.cycles) / static_cast<double>(initial.up_cycles);
    }
    if (initial.energy.up_core.joules > 0.0) {
      e.energy_share = e.energy.joules / initial.energy.up_core.joules;
    }
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(), [](const HotspotEntry& a, const HotspotEntry& b) {
    return a.energy.joules > b.energy.joules;
  });
  return out;
}

std::string RenderHotspots(const std::vector<HotspotEntry>& entries) {
  TextTable t;
  t.set_header({"cluster", "HW?", "cycles", "cycle%", "uP energy", "energy%",
                "instrs"});
  for (const HotspotEntry& e : entries) {
    char cyc_share[32], en_share[32];
    std::snprintf(cyc_share, sizeof cyc_share, "%.1f", 100.0 * e.cycle_share);
    std::snprintf(en_share, sizeof en_share, "%.1f", 100.0 * e.energy_share);
    t.add_row({e.label, e.hw_candidate ? "yes" : "no", std::to_string(e.cycles),
               cyc_share, FormatEnergy(e.energy), en_share, std::to_string(e.instrs)});
  }
  std::ostringstream os;
  os << "software hotspots (initial implementation, cluster granularity):\n"
     << t.ToString();
  return os.str();
}

}  // namespace lopass::core
