#include "core/cluster.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "common/fault.h"

namespace lopass::core {

using ir::Opcode;

namespace {

// Counts call sites per callee function across the whole module.
std::unordered_map<ir::FunctionId, int> CountCallSites(const ir::Module& m) {
  std::unordered_map<ir::FunctionId, int> sites;
  for (const ir::Function& f : m.functions()) {
    for (const ir::BasicBlock& b : f.blocks) {
      for (const ir::Instr& in : b.instrs) {
        if (in.op == Opcode::kCall) {
          const auto callee = m.FindFunction(m.symbol(in.sym).name);
          LOPASS_CHECK(callee.has_value(), "unresolved call");
          ++sites[*callee];
        }
      }
    }
  }
  return sites;
}

// Adds a function's blocks (transitively through calls) to `out`.
void CollectFunctionBlocks(const ir::Module& m, ir::FunctionId fn,
                           std::unordered_set<ir::FunctionId>& visited,
                           std::vector<BlockRef>& out) {
  if (!visited.insert(fn).second) return;
  const ir::Function& f = m.function(fn);
  for (const ir::BasicBlock& b : f.blocks) {
    out.emplace_back(fn, b.id);
    for (const ir::Instr& in : b.instrs) {
      if (in.op == Opcode::kCall) {
        const auto callee = m.FindFunction(m.symbol(in.sym).name);
        if (callee) CollectFunctionBlocks(m, *callee, visited, out);
      }
    }
  }
}

bool BlocksContainCalls(const ir::Module& m, const std::vector<BlockRef>& blocks) {
  for (const auto& [fn, b] : blocks) {
    for (const ir::Instr& in : m.function(fn).block(b).instrs) {
      if (in.op == Opcode::kCall) return true;
    }
  }
  return false;
}

// Returns the single call instruction of a region's blocks, if the
// region contains exactly one call and that callee is called exactly
// once module-wide; otherwise nullopt.
std::optional<ir::FunctionId> SingleCalleeOf(
    const ir::Module& m, const std::vector<BlockRef>& blocks,
    const std::unordered_map<ir::FunctionId, int>& call_sites) {
  std::optional<ir::FunctionId> callee;
  int calls = 0;
  for (const auto& [fn, b] : blocks) {
    for (const ir::Instr& in : m.function(fn).block(b).instrs) {
      if (in.op != Opcode::kCall) continue;
      ++calls;
      if (calls > 1) return std::nullopt;
      const auto c = m.FindFunction(m.symbol(in.sym).name);
      LOPASS_CHECK(c.has_value(), "unresolved call");
      callee = *c;
    }
  }
  if (!callee) return std::nullopt;
  const auto it = call_sites.find(*callee);
  if (it == call_sites.end() || it->second != 1) return std::nullopt;
  return callee;
}

}  // namespace

const Cluster& ClusterChain::at_chain_pos(int pos) const {
  for (const Cluster& c : clusters) {
    if (c.chain_pos == pos && c.id < chain_length) return c;
  }
  LOPASS_THROW("no cluster at chain position " + std::to_string(pos));
}

ClusterChain DecomposeIntoClusters(const ir::Module& module, const ir::RegionTree& regions,
                                   const std::string& entry) {
  fault::MaybeInject("alloc");
  const auto entry_fn = module.FindFunction(entry);
  if (!entry_fn) LOPASS_THROW("no entry function named '" + entry + "'");

  const auto call_sites = CountCallSites(module);
  ClusterChain chain;

  const ir::RegionId root = regions.function_root(*entry_fn);
  const ir::RegionNode& root_node = regions.node(root);

  // Chain members: the entry function's top-level regions in order.
  // Blocks owned directly by the function root (if any) become leading
  // leaf members.
  auto add_chain_cluster = [&](ir::RegionId region, ir::RegionKind kind,
                               const std::string& label, std::vector<BlockRef> blocks) {
    Cluster c;
    c.id = static_cast<int>(chain.clusters.size());
    c.label = label;
    c.kind = kind;
    c.region = region;
    c.blocks = std::move(blocks);
    c.chain_pos = static_cast<int>(chain.clusters.size());
    c.contains_calls = BlocksContainCalls(module, c.blocks);
    c.hw_candidate = (kind == ir::RegionKind::kLoop || kind == ir::RegionKind::kIfElse) &&
                     !c.contains_calls && !c.blocks.empty();
    chain.clusters.push_back(std::move(c));
  };

  // A leaf that holds no operations (only unconditional branches —
  // loop-exit bridge blocks) carries no work and no gen/use sets; it is
  // skipped so that consecutive loops stay adjacent in the chain (the
  // synergy tests of Fig. 3 steps 2/4 look at c_{i-1} / c_{i+1}).
  auto has_real_ops = [&](const std::vector<BlockRef>& blocks) {
    for (const auto& [fn, b] : blocks) {
      for (const ir::Instr& in : module.function(fn).block(b).instrs) {
        if (in.op != Opcode::kBr) return true;
      }
    }
    return false;
  };

  for (ir::RegionId child : root_node.children) {
    const ir::RegionNode& n = regions.node(child);
    std::vector<BlockRef> blocks;
    for (ir::BlockId b : regions.CoveredBlocks(child)) blocks.emplace_back(*entry_fn, b);
    if (blocks.empty()) continue;
    if (n.kind == ir::RegionKind::kLeaf && !has_real_ops(blocks)) continue;
    add_chain_cluster(child, n.kind, n.label, std::move(blocks));
  }
  // If the function root owns blocks directly (it does not in frontend
  // output, but programmatic IR may differ), append them as one leaf.
  if (!root_node.blocks.empty()) {
    std::vector<BlockRef> blocks;
    for (ir::BlockId b : root_node.blocks) blocks.emplace_back(*entry_fn, b);
    add_chain_cluster(root, ir::RegionKind::kLeaf, "root-blocks", std::move(blocks));
  }
  chain.chain_length = static_cast<int>(chain.clusters.size());

  // Function-cluster candidates: chain leaves with exactly one call to
  // a once-called function.
  for (int pos = 0; pos < chain.chain_length; ++pos) {
    const Cluster& member = chain.clusters[static_cast<std::size_t>(pos)];
    if (!member.contains_calls) continue;
    const auto callee = SingleCalleeOf(module, member.blocks, call_sites);
    if (!callee) continue;
    std::vector<BlockRef> blocks;
    std::unordered_set<ir::FunctionId> visited;
    CollectFunctionBlocks(module, *callee, visited, blocks);
    Cluster c;
    c.id = static_cast<int>(chain.clusters.size());
    c.label = "func " + module.function(*callee).name;
    c.kind = ir::RegionKind::kFunction;
    c.region = regions.function_root(*callee);
    c.blocks = std::move(blocks);
    c.chain_pos = pos;
    c.contains_calls = BlocksContainCalls(module, c.blocks);
    c.hw_candidate = !c.contains_calls && !c.blocks.empty();
    c.callee = *callee;
    chain.clusters.push_back(std::move(c));
  }

  return chain;
}

}  // namespace lopass::core
