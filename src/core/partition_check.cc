#include "core/partition_check.h"

#include <cmath>
#include <sstream>
#include <vector>

namespace lopass::core {

using ir::Opcode;

namespace {

std::string ClusterStr(const Cluster& c) {
  std::ostringstream os;
  os << "cluster " << c.id << " ('" << c.label << "')";
  return os.str();
}

bool ValidBlockRef(const ir::Module& m, const BlockRef& ref) {
  const auto& [fn, b] = ref;
  if (fn < 0 || static_cast<std::size_t>(fn) >= m.num_functions()) return false;
  return b >= 0 && static_cast<std::size_t>(b) < m.function(fn).blocks.size();
}

// Worklist-based gen/use with call closure — deliberately a different
// algorithm than dataflow.cc's memoized per-function recursion, so the
// two implementations cross-check each other.
GenUse RecomputeGenUse(const ir::Module& m, const std::vector<BlockRef>& blocks) {
  GenUse gu;
  std::vector<ir::FunctionId> worklist;
  std::unordered_set<ir::FunctionId> enqueued;

  auto scan = [&](const ir::BasicBlock& b) {
    for (const ir::Instr& in : b.instrs) {
      switch (in.op) {
        case Opcode::kReadVar:
        case Opcode::kLoadElem:
          gu.use.insert(in.sym);
          break;
        case Opcode::kWriteVar:
        case Opcode::kStoreElem:
          gu.gen.insert(in.sym);
          break;
        case Opcode::kCall: {
          const auto callee = m.FindFunction(m.symbol(in.sym).name);
          if (callee && enqueued.insert(*callee).second) worklist.push_back(*callee);
          break;
        }
        default:
          break;
      }
    }
  };

  for (const auto& [fn, b] : blocks) scan(m.function(fn).block(b));
  while (!worklist.empty()) {
    const ir::FunctionId fn = worklist.back();
    worklist.pop_back();
    for (ir::SymbolId p : m.function(fn).params) gu.gen.insert(p);
    for (const ir::BasicBlock& b : m.function(fn).blocks) scan(b);
  }
  return gu;
}

std::string SetDiff(const ir::Module& m, const std::unordered_set<ir::SymbolId>& got,
                    const std::unordered_set<ir::SymbolId>& want) {
  std::ostringstream os;
  for (ir::SymbolId s : want) {
    if (!got.count(s)) os << " -" << m.symbol(s).name;
  }
  for (ir::SymbolId s : got) {
    if (!want.count(s)) os << " +" << m.symbol(s).name;
  }
  return os.str();
}

}  // namespace

bool ValidateClusterChain(const ir::Module& module, const ClusterChain& chain,
                          DiagnosticSink& sink) {
  std::size_t before = sink.diagnostics().size();

  if (chain.chain_length < 0 ||
      static_cast<std::size_t>(chain.chain_length) > chain.clusters.size()) {
    sink.AddError("L301", "chain_length exceeds the number of clusters");
    return false;
  }

  for (std::size_t i = 0; i < chain.clusters.size(); ++i) {
    const Cluster& c = chain.clusters[i];
    if (c.id != static_cast<int>(i)) {
      sink.AddError("L301", ClusterStr(c) + " stored at index " + std::to_string(i));
    }
    const bool is_chain_member = c.id >= 0 && c.id < chain.chain_length;
    if (is_chain_member && c.chain_pos != c.id) {
      std::ostringstream os;
      os << ClusterStr(c) << " is a chain member but sits at chain position "
         << c.chain_pos << " instead of " << c.id;
      sink.AddError("L301", os.str());
    }
    if (!is_chain_member &&
        (c.chain_pos < 0 || c.chain_pos >= chain.chain_length ||
         c.kind != ir::RegionKind::kFunction)) {
      sink.AddError("L301", ClusterStr(c) +
                                " is not a chain member yet is no function cluster "
                                "shadowing a valid chain position");
    }

    bool refs_ok = true;
    for (const BlockRef& ref : c.blocks) {
      if (!ValidBlockRef(module, ref)) {
        std::ostringstream os;
        os << ClusterStr(c) << " references nonexistent block (function " << ref.first
           << ", block " << ref.second << ")";
        sink.AddError("L300", os.str());
        refs_ok = false;
      }
    }
    if (!refs_ok) continue;

    // L306: flags must agree with an independent block scan.
    bool calls = false;
    for (const auto& [fn, b] : c.blocks) {
      for (const ir::Instr& in : module.function(fn).block(b).instrs) {
        if (in.op == Opcode::kCall) calls = true;
      }
    }
    if (calls != c.contains_calls) {
      sink.AddError("L306", ClusterStr(c) + " contains_calls flag is " +
                                (c.contains_calls ? "set" : "clear") +
                                " but the blocks say otherwise");
    }
    const bool want_candidate =
        is_chain_member
            ? ((c.kind == ir::RegionKind::kLoop || c.kind == ir::RegionKind::kIfElse) &&
               !calls && !c.blocks.empty())
            : (!calls && !c.blocks.empty());
    if (c.hw_candidate != want_candidate) {
      sink.AddError("L306", ClusterStr(c) + " hw_candidate flag is inconsistent with "
                                            "its kind/calls/blocks");
    }
  }

  // L302: chain members must not share blocks (function clusters *do*
  // overlap their host leaf's callee by design, so only ids <
  // chain_length participate).
  std::unordered_set<std::uint64_t> owner;
  for (const Cluster& c : chain.clusters) {
    if (c.id < 0 || c.id >= chain.chain_length) continue;
    for (const BlockRef& ref : c.blocks) {
      if (!ValidBlockRef(module, ref)) continue;
      const std::uint64_t key = (static_cast<std::uint64_t>(
                                     static_cast<std::uint32_t>(ref.first))
                                 << 32) |
                                static_cast<std::uint32_t>(ref.second);
      if (!owner.insert(key).second) {
        std::ostringstream os;
        os << ClusterStr(c) << " covers function " << ref.first << " block " << ref.second
           << " already owned by an earlier chain member";
        sink.AddError("L302", os.str());
      }
    }
  }

  return sink.diagnostics().size() == before;
}

bool ValidateGenUse(const ir::Module& module, const ClusterChain& chain,
                    const BusTrafficAnalyzer& analyzer, DiagnosticSink& sink) {
  std::size_t before = sink.diagnostics().size();
  for (const Cluster& c : chain.clusters) {
    bool refs_ok = true;
    for (const BlockRef& ref : c.blocks) refs_ok = refs_ok && ValidBlockRef(module, ref);
    if (!refs_ok) continue;  // L300 already covers this
    const GenUse expect = RecomputeGenUse(module, c.blocks);
    const GenUse& got = analyzer.cluster_gen_use(c.id);
    if (got.gen != expect.gen) {
      sink.AddError("L303", ClusterStr(c) + " gen set disagrees with recomputation:" +
                                SetDiff(module, got.gen, expect.gen));
    }
    if (got.use != expect.use) {
      sink.AddError("L303", ClusterStr(c) + " use set disagrees with recomputation:" +
                                SetDiff(module, got.use, expect.use));
    }
  }
  return sink.diagnostics().size() == before;
}

bool ValidateTransfers(const ir::Module& module, const Cluster& cluster,
                       const Transfers& t, DiagnosticSink& sink) {
  std::size_t before = sink.diagnostics().size();

  std::uint64_t total_words = 0;
  for (const ir::Symbol& s : module.symbols()) {
    if (s.kind != ir::SymbolKind::kFunction) total_words += s.length;
  }
  // A function cluster moves its return value as one extra word.
  const std::uint64_t bound =
      total_words + (cluster.kind == ir::RegionKind::kFunction ? 1 : 0);
  if (t.up_to_mem_words > bound || t.asic_to_mem_words > bound) {
    std::ostringstream os;
    os << ClusterStr(cluster) << " transfer estimate (" << t.up_to_mem_words << " up, "
       << t.asic_to_mem_words
       << " down words) exceeds the module's total static data of " << bound
       << " words (likely an underflow in the synergy terms)";
    sink.AddError("L304", os.str());
  }
  if (!std::isfinite(t.energy.joules) || t.energy.joules < 0.0) {
    sink.AddError("L304", ClusterStr(cluster) + " transfer energy is negative or "
                                                "non-finite");
  }
  return sink.diagnostics().size() == before;
}

bool ValidateHwSelection(const ClusterChain& chain,
                         const std::unordered_set<int>& hw_clusters,
                         DiagnosticSink& sink) {
  std::size_t before = sink.diagnostics().size();
  std::unordered_set<int> mapped_pos;
  for (int id : hw_clusters) {
    if (id < 0 || static_cast<std::size_t>(id) >= chain.clusters.size()) {
      sink.AddError("L305", "HW selection references nonexistent cluster id " +
                                std::to_string(id));
      continue;
    }
    const Cluster& c = chain.clusters[static_cast<std::size_t>(id)];
    if (!c.hw_candidate) {
      sink.AddError("L305", ClusterStr(c) + " is mapped to the ASIC but is not a "
                                            "hardware candidate");
    }
    if (!mapped_pos.insert(c.chain_pos).second) {
      std::ostringstream os;
      os << ClusterStr(c) << " maps chain position " << c.chain_pos
         << " to the ASIC a second time (a function cluster and its host leaf are "
            "mutually exclusive)";
      sink.AddError("L305", os.str());
    }
  }
  return sink.diagnostics().size() == before;
}

}  // namespace lopass::core
