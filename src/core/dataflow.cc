#include "core/dataflow.h"

#include <unordered_map>

#include "common/error.h"

namespace lopass::core {

using ir::Opcode;

namespace {

// Memoized per-function gen/use summaries (transitive over calls).
struct FunctionSummaries {
  const ir::Module& m;
  std::unordered_map<ir::FunctionId, GenUse> cache;
  std::unordered_set<ir::FunctionId> in_progress;

  const GenUse& Of(ir::FunctionId fn) {
    auto it = cache.find(fn);
    if (it != cache.end()) return it->second;
    LOPASS_CHECK(in_progress.insert(fn).second, "recursive call in gen/use analysis");
    GenUse gu;
    const ir::Function& f = m.function(fn);
    for (const ir::BasicBlock& b : f.blocks) {
      for (const ir::Instr& in : b.instrs) {
        switch (in.op) {
          case Opcode::kReadVar:
          case Opcode::kLoadElem:
            gu.use.insert(in.sym);
            break;
          case Opcode::kWriteVar:
          case Opcode::kStoreElem:
            gu.gen.insert(in.sym);
            break;
          case Opcode::kCall: {
            const auto callee = m.FindFunction(m.symbol(in.sym).name);
            LOPASS_CHECK(callee.has_value(), "unresolved call");
            const GenUse& cs = Of(*callee);
            gu.gen.insert(cs.gen.begin(), cs.gen.end());
            gu.use.insert(cs.use.begin(), cs.use.end());
            for (ir::SymbolId p : m.function(*callee).params) gu.gen.insert(p);
            break;
          }
          default:
            break;
        }
      }
    }
    in_progress.erase(fn);
    return cache.emplace(fn, std::move(gu)).first->second;
  }
};

}  // namespace

GenUse ComputeGenUse(const ir::Module& module, const std::vector<BlockRef>& blocks,
                     bool include_calls) {
  FunctionSummaries summaries{module, {}, {}};
  GenUse gu;
  for (const auto& [fn, b] : blocks) {
    for (const ir::Instr& in : module.function(fn).block(b).instrs) {
      switch (in.op) {
        case Opcode::kReadVar:
        case Opcode::kLoadElem:
          gu.use.insert(in.sym);
          break;
        case Opcode::kWriteVar:
        case Opcode::kStoreElem:
          gu.gen.insert(in.sym);
          break;
        case Opcode::kCall: {
          if (!include_calls) break;
          const auto callee = module.FindFunction(module.symbol(in.sym).name);
          LOPASS_CHECK(callee.has_value(), "unresolved call");
          const GenUse& cs = summaries.Of(*callee);
          gu.gen.insert(cs.gen.begin(), cs.gen.end());
          gu.use.insert(cs.use.begin(), cs.use.end());
          for (ir::SymbolId p : module.function(*callee).params) gu.gen.insert(p);
          break;
        }
        default:
          break;
      }
    }
  }
  return gu;
}

BusTrafficAnalyzer::BusTrafficAnalyzer(const ir::Module& module, const ClusterChain& chain,
                                       const power::TechLibrary& lib,
                                       std::uint32_t memory_bytes)
    : module_(module), chain_(chain) {
  // Cost of moving one word through the shared memory of Fig. 2a: the
  // producer writes it (bus + memory write) and the consumer reads it
  // back (bus + memory read). Reads and writes differ (footnote 9).
  const power::MemoryEnergyModel mem(memory_bytes, lib.params());
  per_word_energy_ = lib.bus_write_energy() + mem.write_energy() + lib.bus_read_energy() +
                     mem.read_energy();

  gen_use_.reserve(chain_.clusters.size());
  own_gen_use_.reserve(chain_.clusters.size());
  for (const Cluster& c : chain_.clusters) {
    gen_use_.push_back(ComputeGenUse(module_, c.blocks, /*include_calls=*/true));
    own_gen_use_.push_back(ComputeGenUse(module_, c.blocks, /*include_calls=*/false));
  }
}

const GenUse& BusTrafficAnalyzer::cluster_gen_use(int cluster_id) const {
  LOPASS_CHECK(cluster_id >= 0 &&
                   static_cast<std::size_t>(cluster_id) < gen_use_.size(),
               "bad cluster id");
  return gen_use_[static_cast<std::size_t>(cluster_id)];
}

std::uint64_t BusTrafficAnalyzer::WordsOfIntersection(
    const std::unordered_set<ir::SymbolId>& a,
    const std::unordered_set<ir::SymbolId>& b) const {
  std::uint64_t words = 0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  for (ir::SymbolId s : small) {
    if (large.count(s)) words += module_.symbol(s).length;
  }
  return words;
}

bool BusTrafficAnalyzer::ChainPosInHw(int pos,
                                      const std::unordered_set<int>& hw_clusters) const {
  if (pos < 0 || pos >= chain_.chain_length) return false;
  for (const Cluster& c : chain_.clusters) {
    if (c.chain_pos == pos && hw_clusters.count(c.id)) return true;
  }
  return false;
}

Transfers BusTrafficAnalyzer::Compute(const Cluster& cluster,
                                      const std::unordered_set<int>& hw_clusters) const {
  const int pos = cluster.chain_pos;
  const GenUse& c_gu = gen_use_[static_cast<std::size_t>(cluster.id)];

  // gen[C_pred]: everything generated before the cluster's chain
  // position. For function clusters the call leaf's own operations
  // (argument evaluation) also precede the callee body.
  std::unordered_set<ir::SymbolId> pred_gen;
  for (int q = 0; q < pos; ++q) {
    for (const Cluster& m : chain_.clusters) {
      if (m.chain_pos == q && m.id < chain_.chain_length) {
        const GenUse& gu = gen_use_[static_cast<std::size_t>(m.id)];
        pred_gen.insert(gu.gen.begin(), gu.gen.end());
      }
    }
  }
  if (cluster.kind == ir::RegionKind::kFunction) {
    const Cluster& host = chain_.at_chain_pos(pos);
    const GenUse& own = own_gen_use_[static_cast<std::size_t>(host.id)];
    pred_gen.insert(own.gen.begin(), own.gen.end());
    // The caller also writes the callee's parameters.
    if (cluster.callee >= 0) {
      for (ir::SymbolId p : module_.function(cluster.callee).params) pred_gen.insert(p);
    }
  }

  // use[C_succ]: everything used after the cluster.
  std::unordered_set<ir::SymbolId> succ_use;
  for (int q = pos + 1; q < chain_.chain_length; ++q) {
    for (const Cluster& m : chain_.clusters) {
      if (m.chain_pos == q && m.id < chain_.chain_length) {
        const GenUse& gu = gen_use_[static_cast<std::size_t>(m.id)];
        succ_use.insert(gu.use.begin(), gu.use.end());
      }
    }
  }
  if (cluster.kind == ir::RegionKind::kFunction) {
    const Cluster& host = chain_.at_chain_pos(pos);
    const GenUse& own = own_gen_use_[static_cast<std::size_t>(host.id)];
    succ_use.insert(own.use.begin(), own.use.end());
  }

  Transfers t;
  // Step 1.
  t.up_to_mem_words = WordsOfIntersection(pred_gen, c_gu.use);
  // Step 2: synergy with a preceding ASIC-mapped cluster.
  if (pos > 0 && ChainPosInHw(pos - 1, hw_clusters)) {
    const Cluster& prev = chain_.at_chain_pos(pos - 1);
    t.up_to_mem_words -= WordsOfIntersection(
        gen_use_[static_cast<std::size_t>(prev.id)].gen, c_gu.use);
  }
  // Step 3.
  t.asic_to_mem_words = WordsOfIntersection(c_gu.gen, succ_use);
  // Step 4: synergy with a succeeding ASIC-mapped cluster.
  if (ChainPosInHw(pos + 1, hw_clusters)) {
    const Cluster& next = chain_.at_chain_pos(pos + 1);
    t.asic_to_mem_words -= WordsOfIntersection(
        c_gu.gen, gen_use_[static_cast<std::size_t>(next.id)].use);
  }
  // Function clusters additionally pass the return value back.
  if (cluster.kind == ir::RegionKind::kFunction) t.asic_to_mem_words += 1;

  // Step 5.
  t.energy = per_word_energy_ * static_cast<double>(t.total_words());
  return t;
}

}  // namespace lopass::core
