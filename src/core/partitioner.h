#pragma once

// The low-power hardware/software partitioner — the driver implementing
// Fig. 1 (the partition process) and Fig. 5 (the design flow).
//
// Pipeline:
//   1. build graph / code generation            (Fig. 1 line 1)
//   2. decompose into clusters                  (line 2)
//   3. bus-transfer energy per cluster          (lines 3-4, Fig. 3)
//   4. pre-select N_max clusters                (line 5)
//   5. per cluster × designer resource set:
//        list schedule                          (line 8)
//        utilization rate U_R^core, GEQ_RS      (line 9, Fig. 4)
//        energy estimates + objective function  (lines 10-13)
//   6. synthesize the best core(s)              (line 14)
//   7. gate-level-style energy estimation and
//      whole-system partitioned re-simulation   (line 15)

#include <optional>
#include <string>
#include <vector>

#include "asic/synthesis.h"
#include "asic/utilization.h"
#include "common/cancel.h"
#include "common/diag.h"
#include "core/cluster.h"
#include "core/dataflow.h"
#include "core/objective.h"
#include "core/report.h"
#include "core/workload.h"
#include "dsl/lower.h"
#include "iss/simulator.h"
#include "sched/resource_set.h"

namespace lopass::core {

// What the partitioner optimizes for.
//
// kLowPower is the paper's approach (utilization-gated, energy-driven
// objective). kPerformance is the classic baseline the related work
// ([4]-[9]) pursues: move the cluster that buys the most execution
// time, ignoring energy and the utilization test. Comparing both on
// the same applications shows what the paper's energy-first objective
// changes (bench_baseline_comparison).
enum class Strategy { kLowPower, kPerformance };

struct PartitionOptions {
  std::string entry = "main";
  Strategy strategy = Strategy::kLowPower;
  // N_max^c: number of clusters surviving pre-selection (Fig. 1 line 5).
  int max_preselect = 8;
  // How many clusters may be mapped to the ASIC core (greedy).
  int max_hw_clusters = 1;
  ObjectiveParams objective;
  // Hard cap on additional hardware, in cells (0 disables the cap; the
  // OF's hardware term applies regardless).
  double max_cells = 0.0;
  // Designer resource sets ("3 to 5 sets are given", §3.2).
  std::vector<sched::ResourceSet> resource_sets = sched::DefaultDesignerSets();
  // List-scheduler refinements (operator chaining etc.).
  sched::SchedulerOptions scheduler;
  // Run the SL32 peephole optimizer on the generated program (affects
  // the software side of every comparison; see bench_ablation_compiler).
  bool peephole = false;
  iss::SystemConfig initial_config;
  // Adapted standard cores for the partitioned system (footnote 4);
  // defaults to initial_config.
  std::optional<iss::SystemConfig> partitioned_config;
  // Ablations.
  bool use_synergy = true;            // Fig. 3 steps 2/4
  bool weighted_utilization = false;  // weight u_rs by resource size (§3.4)
  // Fold the steering-network (mux) area/energy into synthesized cores
  // (a cost Fig. 4's GEQ omits; see bench_ablation_mux).
  bool include_interconnect = false;
  // Guard rails: fuel for the profiling interpreter and the cycle
  // simulator. Hitting either limit aborts the flow with a clear error
  // instead of hanging on a non-terminating workload.
  std::uint64_t max_interp_steps = 500'000'000;
  std::uint64_t max_sim_instrs = 2'000'000'000;
  // Run the static validators (L3xx partition invariants, L4xx schedule
  // checks, L5xx datapath checks under include_interconnect) on every
  // intermediate artifact. Cheap next to simulation; findings land in
  // PartitionResult::diagnostics as errors (-> degraded()), and a
  // schedule that fails validation rejects its candidate.
  bool self_check = true;
  // Reproducibility header: the PRNG seed the workload/driver used
  // (defaults to lopass::Prng's default seed). Recorded — together
  // with the live LOPASS_FAULT_INJECT spec — as the leading note
  // diagnostic of every PartitionResult, so any failure report is
  // reproducible from its own text.
  std::uint64_t prng_seed = 0x9e3779b97f4a7c15ull;
  // Cooperative cancellation / per-job deadline (see common/cancel.h).
  // Polled between stages, before every candidate evaluation, and
  // inside the schedulers. A fired token aborts Run() with
  // CancelledError — deliberately NOT absorbed by the per-cluster
  // isolation layers, since a deadline hit mid-candidate would
  // otherwise cancel every remaining candidate one diagnostic at a
  // time. Null = not cancellable.
  const CancelToken* cancel = nullptr;
};

// Outcome of evaluating one (cluster, resource set) pair.
struct ClusterEvaluation {
  int cluster_id = -1;
  std::string cluster_label;
  std::string resource_set;
  double u_asic = 0.0;   // U_R^core
  double u_up = 0.0;     // U_µP^core over the cluster's blocks
  double geq = 0.0;      // incl. controller
  lopass::Cycles asic_cycles = 0;
  lopass::Cycles sw_cycles = 0;      // cycles the cluster costs in software
  Energy e_asic_estimate;            // Fig. 1 line 11
  Energy e_up_residual;              // line 12
  Energy e_rest;                     // caches + memory + bus (+ E_trans)
  Energy e_trans;                    // Fig. 3 step 5
  double objective = 0.0;
  bool feasible = false;
  std::string reject_reason;
  asic::UtilizationResult util;      // kept for synthesis of the winner
  Transfers transfers;
};

struct PartitionDecision {
  int cluster_id = -1;
  std::string cluster_label;
  asic::AsicCore core;
  Transfers transfers;
};

struct PartitionResult {
  iss::SimResult initial_run;
  iss::SimResult partitioned_run;  // equals initial_run when nothing selected
  std::vector<PartitionDecision> selected;
  lopass::Cycles asic_cycles = 0;
  Energy asic_energy;
  std::vector<ClusterEvaluation> evaluations;
  ClusterChain chain;
  // Per-cluster failures isolated during the flow (a candidate whose
  // scheduling/synthesis failed, a partitioned re-simulation that had
  // to fall back, ...). The flow still returns a valid partition —
  // worst case the all-software baseline — but drivers should surface
  // these and treat any error-severity entry as a degraded (nonzero
  // exit) run.
  std::vector<Diagnostic> diagnostics;

  bool partitioned() const { return !selected.empty(); }
  // True when any isolated failure was recorded (the result is still
  // valid but the flow did not complete as requested).
  bool degraded() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::kError) return true;
    }
    return false;
  }
  double total_cells() const;
  // Builds the Table 1 row for this application.
  AppRow ToRow(const std::string& app_name) const;
};

class Partitioner {
 public:
  Partitioner(const ir::Module& module, const ir::RegionTree& regions,
              PartitionOptions options = PartitionOptions{},
              const power::TechLibrary& lib = power::TechLibrary::Cmos6(),
              const iss::TiwariModel& up_model = iss::TiwariModel::Sparclite());

  // Runs the full flow of Fig. 5 on the given workload. Throws
  // CancelledError if options().cancel fires mid-flow; every other
  // per-candidate failure is isolated into the result's diagnostics.
  PartitionResult Run(const Workload& workload) const;

  const PartitionOptions& options() const { return options_; }

 private:
  const ir::Module& module_;
  const ir::RegionTree& regions_;
  PartitionOptions options_;
  const power::TechLibrary& lib_;
  const iss::TiwariModel& up_model_;
};

}  // namespace lopass::core
