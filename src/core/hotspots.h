#pragma once

// Hotspot report: where the software implementation spends its cycles
// and energy, at cluster granularity.
//
// This is the designer-facing view behind the pre-selection step
// (Fig. 1 line 5): the ranking "expected to yield high energy savings"
// starts from each cluster's share of the initial software cost. The
// CLI exposes it as --hotspots.

#include <string>
#include <vector>

#include "core/cluster.h"
#include "iss/simulator.h"

namespace lopass::core {

struct HotspotEntry {
  int cluster_id = -1;
  std::string label;
  bool hw_candidate = false;
  lopass::Cycles cycles = 0;
  Energy energy;
  std::uint64_t instrs = 0;
  double cycle_share = 0.0;   // of the whole run
  double energy_share = 0.0;  // of the µP core energy
};

// Attributes the initial run's per-block costs to the chain's clusters
// (including shadowing function clusters), sorted by energy descending.
std::vector<HotspotEntry> ComputeHotspots(const ClusterChain& chain,
                                          const iss::SimResult& initial);

// ASCII table of the report.
std::string RenderHotspots(const std::vector<HotspotEntry>& entries);

}  // namespace lopass::core
