#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace lopass::core {

namespace {

std::string Cyc(Cycles c) {
  // Groups digits like the paper: 5,167,958.
  std::string raw = std::to_string(c);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace

TextTable RenderTable1(const std::vector<AppRow>& rows) {
  TextTable t;
  t.set_header({"App.", "", "i-cache", "d-cache", "mem", "uP core", "ASIC core",
                "total", "Sav%", "uP cyc", "ASIC cyc", "total cyc", "Chg%"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AppRow& r = rows[i];
    // The paper folds bus energy into the "mem" column.
    const Energy mem_i = r.initial.mem + r.initial.bus;
    const Energy mem_p = r.partitioned.mem + r.partitioned.bus;
    t.add_row({r.app, "I", FormatEnergy(r.initial.icache), FormatEnergy(r.initial.dcache),
               FormatEnergy(mem_i), FormatEnergy(r.initial.up_core), "n/a",
               FormatEnergy(r.initial.total()), FormatPercent(r.saving_percent()),
               Cyc(r.initial_time.up_cycles), "n/a", Cyc(r.initial_time.total()),
               FormatPercent(r.time_change_percent())});
    t.add_row({"", "P", FormatEnergy(r.partitioned.icache),
               FormatEnergy(r.partitioned.dcache), FormatEnergy(mem_p),
               FormatEnergy(r.partitioned.up_core), FormatEnergy(r.partitioned.asic_core),
               FormatEnergy(r.partitioned.total()), "",
               Cyc(r.partitioned_time.up_cycles), Cyc(r.partitioned_time.asic_cycles),
               Cyc(r.partitioned_time.total()), ""});
    if (i + 1 < rows.size()) t.add_separator();
  }
  return t;
}

std::string RenderFig6(const std::vector<AppRow>& rows) {
  std::ostringstream os;
  os << "Fig. 6: energy savings and change of total execution time\n";
  TextTable t;
  t.set_header({"App.", "Energy Sav%", "Exec-time Chg%", "ASIC cells", "U_R",
                "resource set", "cluster"});
  for (const AppRow& r : rows) {
    char cells[32];
    std::snprintf(cells, sizeof cells, "%.0f", r.asic_cells);
    char util[32];
    std::snprintf(util, sizeof util, "%.3f", r.asic_utilization);
    t.add_row({r.app, FormatPercent(r.saving_percent()),
               FormatPercent(r.time_change_percent()), cells, util, r.resource_set,
               r.cluster});
  }
  os << t.ToString();

  // ASCII bar chart, one row per app, |####| scaled to 100%.
  os << "\n  (bars: '#' energy saving, '%' exec-time reduction, '+' exec-time increase)\n";
  for (const AppRow& r : rows) {
    const int sav = static_cast<int>(std::lround(std::fabs(r.saving_percent())));
    const double chg = r.time_change_percent();
    const int chg_mag = static_cast<int>(std::lround(std::min(100.0, std::fabs(chg))));
    os << "  " << r.app << std::string(r.app.size() < 8 ? 8 - r.app.size() : 1, ' ')
       << "E " << std::string(static_cast<std::size_t>(sav / 2), '#') << ' '
       << FormatPercent(r.saving_percent()) << "%\n";
    os << "  " << std::string(8, ' ') << "T "
       << std::string(static_cast<std::size_t>(chg_mag / 2), chg <= 0 ? '%' : '+') << ' '
       << FormatPercent(chg) << "%\n";
  }
  return os.str();
}

std::string ToCsv(const std::vector<AppRow>& rows) {
  std::ostringstream os;
  os << "app,icache_i,dcache_i,mem_i,bus_i,up_i,total_i,"
        "icache_p,dcache_p,mem_p,bus_p,up_p,asic_p,total_p,"
        "cycles_i,up_cycles_p,asic_cycles_p,saving_pct,time_change_pct,"
        "asic_cells,asic_utilization,resource_set,cluster\n";
  os.precision(9);
  for (const AppRow& r : rows) {
    os << r.app << ',' << r.initial.icache.joules << ',' << r.initial.dcache.joules
       << ',' << r.initial.mem.joules << ',' << r.initial.bus.joules << ','
       << r.initial.up_core.joules << ',' << r.initial.total().joules << ','
       << r.partitioned.icache.joules << ',' << r.partitioned.dcache.joules << ','
       << r.partitioned.mem.joules << ',' << r.partitioned.bus.joules << ','
       << r.partitioned.up_core.joules << ',' << r.partitioned.asic_core.joules << ','
       << r.partitioned.total().joules << ',' << r.initial_time.total() << ','
       << r.partitioned_time.up_cycles << ',' << r.partitioned_time.asic_cycles << ','
       << r.saving_percent() << ',' << r.time_change_percent() << ',' << r.asic_cells
       << ',' << r.asic_utilization << ',' << r.resource_set << ",\"" << r.cluster
       << "\"\n";
  }
  return os.str();
}

}  // namespace lopass::core
