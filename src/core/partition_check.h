#pragma once

// Partition-invariant checkers (L3xx) — independent re-verification of
// the cluster decomposition, the gen/use sets behind the bus-traffic
// model, and the final HW/SW mapping.
//
// Each checker recomputes the property it guards with a *different*
// algorithm than the production code (e.g. an explicit worklist for
// call closure instead of dataflow.cc's memoized recursion), so a bug
// in either side surfaces as a mismatch. Run from the partitioner when
// PartitionOptions::self_check is on and from the `lopass lint`
// driver. Findings accumulate; the checkers never throw.

#include <string>
#include <unordered_set>

#include "common/diag.h"
#include "core/cluster.h"
#include "core/dataflow.h"

namespace lopass::core {

// Structural invariants of the decomposition (§3.2, Fig. 2b):
//  - every BlockRef names an existing function/block            (L300)
//  - chain members occupy ids == chain_pos == 0..len-1; extra
//    function clusters follow with a valid shadowed position    (L301)
//  - chain members cover pairwise-disjoint block sets           (L302)
//  - hw_candidate / contains_calls flags agree with an
//    independent scan of the cluster's blocks                   (L306)
bool ValidateClusterChain(const ir::Module& module, const ClusterChain& chain,
                          DiagnosticSink& sink);

// Re-derives each cluster's gen/use sets with a worklist-based call
// closure and compares against the analyzer's cached sets (L303).
bool ValidateGenUse(const ir::Module& module, const ClusterChain& chain,
                    const BusTrafficAnalyzer& analyzer, DiagnosticSink& sink);

// Bounds of one transfer estimate (Fig. 3 step 5): word counts within
// the module's total static data (+1 word for a function cluster's
// return value) and finite, non-negative energy (L304).
bool ValidateTransfers(const ir::Module& module, const Cluster& cluster,
                       const Transfers& t, DiagnosticSink& sink);

// The selected HW set maps each chain position at most once — a
// function cluster and the chain leaf hosting its call site shadow the
// same position and must not both go to the ASIC — and every id is a
// real hw_candidate (L305).
bool ValidateHwSelection(const ClusterChain& chain,
                         const std::unordered_set<int>& hw_clusters,
                         DiagnosticSink& sink);

}  // namespace lopass::core
