#include "core/workload.h"

#include <charconv>
#include <limits>

#include "common/prng.h"

namespace lopass::core {

namespace {

// Parses a decimal (optionally signed) integer field; rejects trailing
// junk and out-of-range values.
bool ParseInt(std::string_view field, std::int64_t& out) {
  const char* first = field.data();
  const char* last = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::vector<std::string_view> SplitFields(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

Result<FillSpec> Bad(std::string message) {
  return Result<FillSpec>::Failure(
      Diagnostic{Severity::kError, "cli.fill", SourceLoc{}, std::move(message)});
}

// Arrays in the DSL are bounded well below this, and a larger COUNT is
// certainly a typo — cap it so a bad spec cannot balloon memory.
constexpr std::int64_t kMaxFillCount = 1 << 24;

}  // namespace

Result<FillSpec> ParseFillSpec(std::string_view spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string_view::npos) {
    return Bad("fill spec '" + std::string(spec) + "' is missing '=' (want NAME=KIND:...)");
  }
  FillSpec f;
  f.name = std::string(spec.substr(0, eq));
  if (f.name.empty()) {
    return Bad("fill spec '" + std::string(spec) + "' has an empty array name");
  }
  const auto fields = SplitFields(spec.substr(eq + 1), ':');
  const std::string_view kind = fields[0];

  if (kind == "rand") {
    if (fields.size() < 4 || fields.size() > 5) {
      return Bad("rand fill for '" + f.name + "' wants rand:COUNT:LO:HI[:SEED], got '" +
                 std::string(spec.substr(eq + 1)) + "'");
    }
    std::int64_t count = 0, lo = 0, hi = 0;
    std::int64_t seed = 0x10Fa55;
    if (!ParseInt(fields[1], count)) {
      return Bad("rand fill for '" + f.name + "': COUNT '" + std::string(fields[1]) +
                 "' is not an integer");
    }
    if (count < 0 || count > kMaxFillCount) {
      return Bad("rand fill for '" + f.name + "': COUNT " + std::to_string(count) +
                 " out of range [0, " + std::to_string(kMaxFillCount) + "]");
    }
    if (!ParseInt(fields[2], lo) || !ParseInt(fields[3], hi)) {
      return Bad("rand fill for '" + f.name + "': LO/HI must be integers, got '" +
                 std::string(fields[2]) + "' and '" + std::string(fields[3]) + "'");
    }
    if (lo > hi) {
      return Bad("rand fill for '" + f.name + "': LO " + std::to_string(lo) +
                 " exceeds HI " + std::to_string(hi));
    }
    if (fields.size() == 5 && !ParseInt(fields[4], seed)) {
      return Bad("rand fill for '" + f.name + "': SEED '" + std::string(fields[4]) +
                 "' is not an integer");
    }
    Prng rng(static_cast<std::uint64_t>(seed));
    f.values.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) f.values.push_back(rng.next_in(lo, hi));
    return f;
  }

  if (kind == "ramp") {
    if (fields.size() < 2 || fields.size() > 3) {
      return Bad("ramp fill for '" + f.name + "' wants ramp:COUNT[:STEP], got '" +
                 std::string(spec.substr(eq + 1)) + "'");
    }
    std::int64_t count = 0, step = 1;
    if (!ParseInt(fields[1], count)) {
      return Bad("ramp fill for '" + f.name + "': COUNT '" + std::string(fields[1]) +
                 "' is not an integer");
    }
    if (count < 0 || count > kMaxFillCount) {
      return Bad("ramp fill for '" + f.name + "': COUNT " + std::to_string(count) +
                 " out of range [0, " + std::to_string(kMaxFillCount) + "]");
    }
    if (fields.size() == 3 && !ParseInt(fields[2], step)) {
      return Bad("ramp fill for '" + f.name + "': STEP '" + std::string(fields[2]) +
                 "' is not an integer");
    }
    f.values.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) f.values.push_back(i * step);
    return f;
  }

  return Bad("unknown fill kind '" + std::string(kind) + "' for '" + f.name +
             "' (want rand or ramp)");
}

}  // namespace lopass::core
