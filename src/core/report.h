#pragma once

// Result structures mirroring the paper's Table 1 and Fig. 6, plus
// their ASCII renderers used by the benchmark harness.

#include <string>
#include <vector>

#include "common/table.h"
#include "common/units.h"

namespace lopass::core {

// Energy of every core in the system for one implementation (one half
// of a Table 1 application row). The paper's table folds the bus into
// the "mem" column; `bus` is kept separate here and folded at print
// time.
struct EnergyBreakdown {
  Energy icache;
  Energy dcache;
  Energy mem;
  Energy bus;
  Energy up_core;
  Energy asic_core;

  Energy total() const { return icache + dcache + mem + bus + up_core + asic_core; }
};

struct ExecTime {
  Cycles up_cycles = 0;
  Cycles asic_cycles = 0;
  Cycles total() const { return up_cycles + asic_cycles; }
};

// One application row of Table 1 (initial "I" + partitioned "P").
struct AppRow {
  std::string app;
  EnergyBreakdown initial;
  EnergyBreakdown partitioned;
  ExecTime initial_time;
  ExecTime partitioned_time;
  double asic_cells = 0.0;       // hardware overhead of the ASIC core
  double asic_utilization = 0.0; // U_R^core of the synthesized core
  std::string resource_set;      // designer set chosen
  std::string cluster;           // cluster(s) mapped to hardware

  double saving_percent() const {
    const double e0 = initial.total().joules;
    return e0 <= 0.0 ? 0.0 : (partitioned.total().joules / e0 - 1.0) * 100.0;
  }
  double time_change_percent() const {
    const double t0 = static_cast<double>(initial_time.total());
    return t0 <= 0.0 ? 0.0
                     : (static_cast<double>(partitioned_time.total()) / t0 - 1.0) * 100.0;
  }
};

// Renders the rows in the layout of the paper's Table 1.
TextTable RenderTable1(const std::vector<AppRow>& rows);

// Renders the Fig. 6 series (energy saving % and execution-time change
// % per application) as a table plus an ASCII bar chart.
std::string RenderFig6(const std::vector<AppRow>& rows);

// Machine-readable export: one CSV line per row (energies in joules,
// times in cycles), with a header line. For plotting scripts.
std::string ToCsv(const std::vector<AppRow>& rows);

}  // namespace lopass::core
