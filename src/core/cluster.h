#pragma once

// Cluster decomposition (Fig. 1 step 2).
//
// "A cluster in our definition is a set of operations which represents
// code segments like nested loops, if-then-else constructs, functions
// etc. ... Decomposition is done by structural information of the
// initial behavioral description solely." (§3.2)
//
// The program is decomposed into a *chain* of clusters (Fig. 2b): the
// top-level regions of the entry function, in program order. Loops and
// if-then-else regions are hardware candidates; plain leaves are
// software-only chain members. A chain leaf whose only operation of
// note is a single call to a function that is called exactly once in
// the whole program additionally yields a *function cluster* candidate
// covering the callee's body (the paper's "functions" clusters).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ir/module.h"
#include "ir/region.h"

namespace lopass::core {

using BlockRef = std::pair<ir::FunctionId, ir::BlockId>;

struct Cluster {
  int id = -1;
  std::string label;
  ir::RegionKind kind = ir::RegionKind::kLeaf;
  ir::RegionId region = ir::kNoRegion;
  // Blocks covered by the cluster (function clusters reference callee
  // blocks; the transitive closure over calls is included).
  std::vector<BlockRef> blocks;
  // Position in the program-order chain of the entry function.
  int chain_pos = -1;
  // True for loops / if-else constructs / single-call functions —
  // clusters the partitioner may map to the ASIC core.
  bool hw_candidate = false;
  // True if the cluster body contains call operations (not
  // HW-mappable: the datapath cannot call software).
  bool contains_calls = false;
  // For function clusters: the callee whose body this cluster covers.
  ir::FunctionId callee = -1;
};

struct ClusterChain {
  // All clusters; chain members first (chain_pos 0..n-1 in order),
  // followed by extra function-cluster candidates that shadow a chain
  // position.
  std::vector<Cluster> clusters;
  int chain_length = 0;

  const Cluster& at_chain_pos(int pos) const;
};

// Decomposes the program rooted at `entry` into the cluster chain.
ClusterChain DecomposeIntoClusters(const ir::Module& module, const ir::RegionTree& regions,
                                   const std::string& entry = "main");

}  // namespace lopass::core
