#include "core/partitioner.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "asic/netlist_check.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/logging.h"
#include "core/partition_check.h"
#include "interp/interpreter.h"
#include "isa/codegen.h"
#include "isa/peephole.h"
#include "sched/dfg.h"
#include "sched/list_scheduler.h"
#include "sched/validate.h"

namespace lopass::core {

namespace {

// Adapters binding the two execution engines to the Workload interface.
class InterpTarget : public DataTarget {
 public:
  explicit InterpTarget(interp::Interpreter& it) : it_(it) {}
  void SetScalar(const std::string& name, std::int64_t value) override {
    it_.SetScalar(name, value);
  }
  void FillArray(const std::string& name, std::span<const std::int64_t> values) override {
    it_.FillArray(name, values);
  }

 private:
  interp::Interpreter& it_;
};

class SimTarget : public DataTarget {
 public:
  explicit SimTarget(iss::Simulator& sim) : sim_(sim) {}
  void SetScalar(const std::string& name, std::int64_t value) override {
    sim_.SetScalar(name, value);
  }
  void FillArray(const std::string& name, std::span<const std::int64_t> values) override {
    sim_.FillArray(name, values);
  }

 private:
  iss::Simulator& sim_;
};

// U_R weighted by resource size (the variant §3.4 reports does *not*
// improve partitions — kept for the ablation bench).
double WeightedUtilization(const asic::UtilizationResult& util,
                           const power::TechLibrary& lib) {
  if (util.total_cycles == 0 || util.instance_util.empty()) return 0.0;
  double num = 0.0, den = 0.0;
  for (const asic::InstanceUtil& u : util.instance_util) {
    const double w = lib.spec(u.type).geq;
    num += w * static_cast<double>(u.active_cycles) / static_cast<double>(util.total_cycles);
    den += w;
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace

double PartitionResult::total_cells() const {
  double cells = 0.0;
  for (const PartitionDecision& d : selected) cells += d.core.cells;
  return cells;
}

AppRow PartitionResult::ToRow(const std::string& app_name) const {
  AppRow row;
  row.app = app_name;
  row.initial.icache = initial_run.energy.icache;
  row.initial.dcache = initial_run.energy.dcache;
  row.initial.mem = initial_run.energy.mem;
  row.initial.bus = initial_run.energy.bus;
  row.initial.up_core = initial_run.energy.up_core;
  row.initial_time.up_cycles = initial_run.up_cycles;

  const iss::SimResult& part = partitioned() ? partitioned_run : initial_run;
  row.partitioned.icache = part.energy.icache;
  row.partitioned.dcache = part.energy.dcache;
  row.partitioned.mem = part.energy.mem;
  row.partitioned.bus = part.energy.bus;
  row.partitioned.up_core = part.energy.up_core;
  row.partitioned.asic_core = asic_energy;
  row.partitioned_time.up_cycles = part.up_cycles;
  row.partitioned_time.asic_cycles = asic_cycles;

  row.asic_cells = total_cells();
  if (!selected.empty()) {
    row.asic_utilization = selected.front().core.utilization;
    row.resource_set = selected.front().core.resource_set;
    std::string labels;
    for (const PartitionDecision& d : selected) {
      if (!labels.empty()) labels += " + ";
      labels += d.cluster_label;
    }
    row.cluster = labels;
  } else {
    row.cluster = "(none)";
  }
  return row;
}

Partitioner::Partitioner(const ir::Module& module, const ir::RegionTree& regions,
                         PartitionOptions options, const power::TechLibrary& lib,
                         const iss::TiwariModel& up_model)
    : module_(module),
      regions_(regions),
      options_(std::move(options)),
      lib_(lib),
      up_model_(up_model) {
  LOPASS_CHECK(!options_.resource_sets.empty(), "at least one resource set required");
}

PartitionResult Partitioner::Run(const Workload& workload) const {
  PartitionResult result;

  // Reproducibility header: the first diagnostic of every run names the
  // PRNG seed and the live fault-injection spec, so a failure report
  // carries everything needed to replay it.
  {
    char seed_hex[32];
    std::snprintf(seed_hex, sizeof(seed_hex), "0x%llx",
                  static_cast<unsigned long long>(options_.prng_seed));
    const std::string spec = fault::CurrentSpec();
    result.diagnostics.push_back(Diagnostic{
        Severity::kNote, "run.context", SourceLoc{},
        std::string("run context: prng seed ") + seed_hex + ", fault spec '" +
            spec + "'"});
  }
  CheckCancel(options_.cancel, "partitioner (startup)");

  // Scheduler options with the run's cancel token threaded through, so
  // a deadline also interrupts a long list schedule mid-cluster.
  sched::SchedulerOptions sched_opts = options_.scheduler;
  if (options_.cancel != nullptr) sched_opts.cancel = options_.cancel;

  // --- Fig. 1 line 1: the graph is the IR; build the SL32 program. ----
  isa::SlProgram program = isa::Generate(module_);
  if (options_.peephole) isa::Peephole(program);

  // --- profiling (#ex_times, Fig. 4 footnote 14) -----------------------
  CheckCancel(options_.cancel, "partitioner (profiling)");
  interp::Interpreter profiler(module_);
  if (workload.setup) {
    InterpTarget t(profiler);
    workload.setup(t);
  }
  profiler.Run(workload.entry, workload.args, options_.max_interp_steps);
  const interp::Profile& profile = profiler.profile();

  // --- initial whole-system simulation ---------------------------------
  CheckCancel(options_.cancel, "partitioner (initial simulation)");
  iss::Simulator sim(module_, program, options_.initial_config, lib_, up_model_);
  if (workload.setup) {
    SimTarget t(sim);
    workload.setup(t);
  }
  result.initial_run = sim.Run(workload.entry, workload.args, iss::HwPartition{},
                               options_.max_sim_instrs);
  const Energy e0 = result.initial_run.energy.total();

  // --- Fig. 1 line 2: cluster decomposition ----------------------------
  // Isolation boundary: if decomposition fails, the all-software
  // baseline is still a valid answer — record the failure and return it.
  try {
    result.chain = DecomposeIntoClusters(module_, regions_, options_.entry);
  } catch (const CancelledError&) {
    throw;  // deadlines abort the whole run, not one stage
  } catch (const Error& e) {
    result.diagnostics.push_back(
        Diagnostic{Severity::kError, "partition.cluster",
                   SourceLoc{},
                   std::string("cluster decomposition failed (all-software fallback): ") +
                       e.what()});
    result.partitioned_run = result.initial_run;
    return result;
  }
  const ClusterChain& chain = result.chain;

  // --- Fig. 1 lines 3-4: bus-transfer energy (Fig. 3) ------------------
  BusTrafficAnalyzer traffic(module_, chain, lib_,
                             options_.initial_config.memory_bytes);

  // Self-check: the decomposition and the gen/use sets behind the
  // traffic model are the foundation every later estimate rests on.
  if (options_.self_check) {
    DiagnosticSink sc;
    ValidateClusterChain(module_, chain, sc);
    ValidateGenUse(module_, chain, traffic, sc);
    for (Diagnostic& d : sc.Take()) result.diagnostics.push_back(std::move(d));
  }

  // --- Fig. 1 line 5: pre-selection ------------------------------------
  struct Ranked {
    const Cluster* cluster;
    double benefit;  // SW energy of the cluster minus transfer energy
  };
  std::vector<Ranked> ranked;
  for (const Cluster& c : chain.clusters) {
    if (!c.hw_candidate) continue;
    Energy sw_energy;
    for (const auto& [fn, b] : c.blocks) {
      sw_energy += result.initial_run
                       .block_costs[static_cast<std::size_t>(fn)][static_cast<std::size_t>(b)]
                       .energy;
    }
    const Transfers t = traffic.Compute(c);
    ranked.push_back(Ranked{&c, sw_energy.joules - t.energy.joules});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.benefit > b.benefit; });
  if (static_cast<int>(ranked.size()) > options_.max_preselect) {
    ranked.resize(static_cast<std::size_t>(options_.max_preselect));
  }

  // --- Fig. 1 lines 6-13: evaluate cluster × resource set --------------
  const Energy rest0 = result.initial_run.energy.icache + result.initial_run.energy.dcache +
                       result.initial_run.energy.mem + result.initial_run.energy.bus;

  auto evaluate = [&](const Cluster& c, const sched::ResourceSet& rs,
                      const std::unordered_set<int>& hw_now, Energy up_removed,
                      Energy asic_added, double geq_added) -> ClusterEvaluation {
    ClusterEvaluation ev;
    ev.cluster_id = c.id;
    ev.cluster_label = c.label;
    ev.resource_set = rs.name;
    ev.transfers = traffic.Compute(c, options_.use_synergy ? hw_now
                                                           : std::unordered_set<int>{});
    ev.e_trans = ev.transfers.energy;

    // Schedule every block of the cluster (Fig. 1 line 8). A resource
    // set that cannot implement some operation (e.g. no multiplier for
    // a mul-heavy cluster) makes this pairing infeasible.
    std::vector<sched::BlockDfg> dfgs;
    std::vector<sched::BlockSchedule> schedules;
    std::vector<asic::ScheduledBlock> sblocks;
    dfgs.reserve(c.blocks.size());
    schedules.reserve(c.blocks.size());
    try {
      for (const auto& [fn, b] : c.blocks) {
        dfgs.push_back(sched::BuildBlockDfg(module_.function(fn).block(b)));
        schedules.push_back(
            sched::ListSchedule(dfgs.back(), rs, lib_, sched_opts));
      }
    } catch (const InjectedFault&) {
      throw;  // injected faults must reach the per-cluster isolation layer
    } catch (const CancelledError&) {
      throw;  // deadlines abort the whole run
    } catch (const Error& e) {
      ev.feasible = false;
      ev.reject_reason = e.what();
      return ev;
    }
    for (std::size_t i = 0; i < c.blocks.size(); ++i) {
      asic::ScheduledBlock sb;
      sb.dfg = &dfgs[i];
      sb.schedule = &schedules[i];
      sb.ex_times = profile.BlockCount(c.blocks[i].first, c.blocks[i].second);
      sblocks.push_back(sb);
    }
    // Self-check: prove each schedule respects precedence and resource
    // limits, and the transfer estimate its bounds, before any energy
    // math uses them. A failing candidate is rejected, not synthesized.
    if (options_.self_check) {
      DiagnosticSink sc;
      for (std::size_t i = 0; i < c.blocks.size(); ++i) {
        sched::ValidateSchedule(dfgs[i], schedules[i], rs, lib_, sc,
                                options_.scheduler.enable_chaining,
                                "cluster '" + c.label + "', block " +
                                    std::to_string(i) + ", set '" + rs.name + "'");
      }
      ValidateTransfers(module_, c, ev.transfers, sc);
      const bool bad = sc.has_errors();
      for (Diagnostic& d : sc.Take()) result.diagnostics.push_back(std::move(d));
      if (bad) {
        ev.feasible = false;
        ev.reject_reason = "self-check: schedule/transfer validation failed";
        return ev;
      }
    }
    ev.util = asic::ComputeUtilization(sblocks, rs, lib_);
    ev.u_asic = options_.weighted_utilization ? WeightedUtilization(ev.util, lib_)
                                              : ev.util.u_core;
    ev.u_up = result.initial_run.UtilizationOfBlocks(c.blocks);
    ev.asic_cycles = ev.util.total_cycles;
    ev.geq = ev.util.geq * 1.10;  // controller share, cf. SynthesisOptions

    // µP-clock-equivalent ASIC cycles (the core runs at the speed of
    // its slowest instantiated resource).
    double asic_period = 8e-9;
    for (int t = 0; t < power::kNumResourceTypes; ++t) {
      if (ev.util.instances[static_cast<std::size_t>(t)] == 0) continue;
      asic_period = std::max(
          asic_period,
          lib_.spec(static_cast<power::ResourceType>(t)).min_cycle_time.seconds);
    }
    const double up_equiv_cycles = static_cast<double>(ev.util.total_cycles) *
                                   asic_period /
                                   lib_.params().clock_period().seconds;

    Energy cluster_sw;
    lopass::Cycles cluster_cycles = 0;
    std::uint64_t cluster_instrs = 0;
    for (const auto& [fn, b] : c.blocks) {
      const iss::BlockCost& bc =
          result.initial_run.block_costs[static_cast<std::size_t>(fn)][static_cast<std::size_t>(b)];
      cluster_sw += bc.energy;
      cluster_cycles += bc.cycles;
      cluster_instrs += bc.instrs;
    }
    ev.sw_cycles = cluster_cycles;

    // Line 9: utilization test (the low-power strategy's gate; the
    // performance baseline does not use it).
    if (options_.strategy == Strategy::kLowPower && ev.u_asic <= ev.u_up) {
      ev.feasible = false;
      ev.reject_reason = "U_R <= U_uP";
      return ev;
    }
    // Optional hard hardware cap.
    if (options_.max_cells > 0.0 && ev.geq + geq_added > options_.max_cells) {
      ev.feasible = false;
      ev.reject_reason = "exceeds cell cap";
      return ev;
    }

    // Lines 11-12: energy estimates.
    ev.e_asic_estimate = asic::EstimateEnergy(ev.util, lib_) + asic_added;
    ev.e_up_residual = result.initial_run.energy.up_core - up_removed - cluster_sw;
    const double instr_frac =
        result.initial_run.instr_count == 0
            ? 0.0
            : static_cast<double>(cluster_instrs) /
                  static_cast<double>(result.initial_run.instr_count);
    ev.e_rest = rest0 * (1.0 - std::min(1.0, instr_frac)) + ev.e_trans;

    if (options_.strategy == Strategy::kPerformance) {
      // Baseline objective: estimated execution time, normalized, plus
      // the same hardware term.
      const double transfer_cycles = 2.0 * static_cast<double>(ev.transfers.total_words());
      const double est_cycles =
          static_cast<double>(result.initial_run.up_cycles) -
          static_cast<double>(cluster_cycles) + up_equiv_cycles + transfer_cycles;
      const double time_term =
          est_cycles / static_cast<double>(result.initial_run.up_cycles);
      ev.objective = options_.objective.f * time_term +
                     options_.objective.g * ((ev.geq + geq_added) / options_.objective.geq_norm);
      ev.feasible = true;
      return ev;
    }

    // Line 13: objective function.
    const Energy total_est = ev.e_asic_estimate + ev.e_up_residual + ev.e_rest;
    ev.objective = Objective(total_est, e0, ev.geq + geq_added, options_.objective);
    ev.feasible = true;
    return ev;
  };

  // Greedy selection of up to max_hw_clusters clusters.
  std::unordered_set<int> selected_ids;
  std::unordered_set<int> occupied_chain_pos;
  Energy up_removed;    // µP energy removed by already selected clusters
  Energy asic_added;    // estimate energy of already selected cores
  double geq_added = 0.0;
  double current_of = BaselineObjective(options_.objective);
  std::vector<const ClusterEvaluation*> winners;
  std::vector<ClusterEvaluation> kept;  // stable storage for winners
  kept.reserve(ranked.size() * options_.resource_sets.size() *
               static_cast<std::size_t>(options_.max_hw_clusters));

  for (int round = 0; round < options_.max_hw_clusters; ++round) {
    std::optional<ClusterEvaluation> best;
    for (const Ranked& r : ranked) {
      const Cluster& c = *r.cluster;
      if (selected_ids.count(c.id) || occupied_chain_pos.count(c.chain_pos)) continue;
      for (const sched::ResourceSet& rs : options_.resource_sets) {
        ClusterEvaluation ev;
        // Per-cluster isolation: a candidate whose evaluation throws
        // (rather than reporting infeasibility) is recorded and
        // skipped; the flow continues with the remaining candidates
        // and, worst case, falls back to the all-software baseline.
        CheckCancel(options_.cancel, "partitioner (candidate evaluation)");
        try {
          ev = evaluate(c, rs, selected_ids, up_removed, asic_added, geq_added);
        } catch (const CancelledError&) {
          throw;  // a fired deadline would cancel every remaining
                  // candidate too — abort instead of flooding diagnostics
        } catch (const Error& e) {
          ev.cluster_id = c.id;
          ev.cluster_label = c.label;
          ev.resource_set = rs.name;
          ev.feasible = false;
          ev.reject_reason = e.what();
          result.diagnostics.push_back(Diagnostic{
              Severity::kError, "partition.evaluate", SourceLoc{},
              "evaluation of cluster '" + c.label + "' with resource set '" + rs.name +
                  "' failed (candidate skipped): " + e.what()});
          LOPASS_LOG_WARN << "cluster '" << c.label << "' x '" << rs.name
                             << "' evaluation failed: " << e.what();
        }
        if (round == 0) result.evaluations.push_back(ev);
        if (!ev.feasible) continue;
        if (!best || ev.objective < best->objective) best = std::move(ev);
      }
    }
    if (!best || best->objective >= current_of) break;

    // Accept.
    const Cluster& c = chain.clusters[static_cast<std::size_t>(best->cluster_id)];
    selected_ids.insert(best->cluster_id);
    occupied_chain_pos.insert(c.chain_pos);
    Energy cluster_sw;
    for (const auto& [fn, b] : c.blocks) {
      cluster_sw += result.initial_run
                        .block_costs[static_cast<std::size_t>(fn)][static_cast<std::size_t>(b)]
                        .energy;
    }
    up_removed += cluster_sw;
    asic_added += asic::EstimateEnergy(best->util, lib_);
    geq_added += best->geq;
    current_of = best->objective;
    kept.push_back(std::move(*best));
    LOPASS_LOG_INFO << "selected cluster '" << kept.back().cluster_label << "' with "
                    << kept.back().resource_set << " (OF=" << kept.back().objective << ")";
  }

  if (kept.empty()) {
    result.partitioned_run = result.initial_run;
    return result;
  }

  // Self-check: the greedy selection must never map one chain position
  // twice (a function cluster and the leaf hosting its call site
  // shadow each other) and only real hardware candidates.
  if (options_.self_check) {
    DiagnosticSink sc;
    ValidateHwSelection(chain, selected_ids, sc);
    for (Diagnostic& d : sc.Take()) result.diagnostics.push_back(std::move(d));
  }

  // --- Fig. 1 line 14: synthesize the winning cores --------------------
  for (const ClusterEvaluation& ev : kept) {
    CheckCancel(options_.cancel, "partitioner (synthesis)");
    try {
    PartitionDecision d;
    d.cluster_id = ev.cluster_id;
    d.cluster_label = ev.cluster_label;
    d.transfers = traffic.Compute(chain.clusters[static_cast<std::size_t>(ev.cluster_id)],
                                  options_.use_synergy ? selected_ids
                                                       : std::unordered_set<int>{});
    // Register file: one register per scalar the cluster touches, plus
    // pipeline temporaries.
    const GenUse& gu = traffic.cluster_gen_use(ev.cluster_id);
    int regs = 2;
    std::unordered_set<ir::SymbolId> scalars;
    for (ir::SymbolId s : gu.gen) {
      if (module_.symbol(s).kind == ir::SymbolKind::kScalar) scalars.insert(s);
    }
    for (ir::SymbolId s : gu.use) {
      if (module_.symbol(s).kind == ir::SymbolKind::kScalar) scalars.insert(s);
    }
    regs += static_cast<int>(scalars.size());
    if (options_.include_interconnect) {
      // Rebuild the winner's scheduled blocks to derive its datapath
      // (the evaluation keeps only the utilization result).
      const Cluster& c = chain.clusters[static_cast<std::size_t>(ev.cluster_id)];
      const sched::ResourceSet* rs = nullptr;
      for (const sched::ResourceSet& s : options_.resource_sets) {
        if (s.name == ev.resource_set) rs = &s;
      }
      LOPASS_CHECK(rs != nullptr, "winning resource set disappeared");
      std::vector<sched::BlockDfg> dfgs;
      std::vector<sched::BlockSchedule> schedules;
      std::vector<asic::ScheduledBlock> sblocks;
      for (const auto& [fn, b] : c.blocks) {
        dfgs.push_back(sched::BuildBlockDfg(module_.function(fn).block(b)));
        schedules.push_back(
            sched::ListSchedule(dfgs.back(), *rs, lib_, sched_opts));
      }
      for (std::size_t i = 0; i < c.blocks.size(); ++i) {
        sblocks.push_back(asic::ScheduledBlock{&dfgs[i], &schedules[i], 0});
      }
      const asic::Datapath dp = asic::BuildDatapath(sblocks, ev.util, lib_);
      if (options_.self_check) {
        DiagnosticSink sc;
        asic::ValidateDatapath(sblocks, ev.util, dp, sc,
                               "cluster '" + ev.cluster_label + "', set '" +
                                   ev.resource_set + "'");
        for (Diagnostic& diag : sc.Take()) {
          result.diagnostics.push_back(std::move(diag));
        }
      }
      d.core = asic::Synthesize(ev.cluster_label, ev.resource_set, ev.util, lib_, regs,
                                asic::SynthesisOptions{}, &dp);
    } else {
      d.core = asic::Synthesize(ev.cluster_label, ev.resource_set, ev.util, lib_, regs);
    }
    result.asic_cycles += d.core.cycles;
    result.asic_energy += d.core.refined_energy;
    result.selected.push_back(std::move(d));
    } catch (const CancelledError&) {
      throw;
    } catch (const Error& e) {
      // Isolation: a core that fails to synthesize is dropped — its
      // cluster simply stays in software.
      result.diagnostics.push_back(Diagnostic{
          Severity::kError, "partition.synthesize", SourceLoc{},
          "synthesis of core for cluster '" + ev.cluster_label +
              "' failed (cluster stays in software): " + e.what()});
      LOPASS_LOG_WARN << "synthesis failed for cluster '" << ev.cluster_label
                         << "': " << e.what();
    }
  }
  if (result.selected.empty()) {
    result.asic_cycles = 0;
    result.asic_energy = Energy{};
    result.partitioned_run = result.initial_run;
    return result;
  }

  // --- Fig. 1 line 15: whole-system partitioned re-estimation ----------
  iss::HwPartition partition;
  partition.block_cluster.resize(module_.num_functions());
  for (std::size_t f = 0; f < module_.num_functions(); ++f) {
    partition.block_cluster[f].assign(
        module_.function(static_cast<ir::FunctionId>(f)).blocks.size(), -1);
  }
  for (std::size_t k = 0; k < result.selected.size(); ++k) {
    const PartitionDecision& d = result.selected[k];
    const Cluster& c = chain.clusters[static_cast<std::size_t>(d.cluster_id)];
    for (const auto& [fn, b] : c.blocks) {
      partition.block_cluster[static_cast<std::size_t>(fn)][static_cast<std::size_t>(b)] =
          static_cast<int>(k);
    }
    iss::HwPartition::ClusterIo io;
    io.entry_words = static_cast<std::uint32_t>(d.transfers.up_to_mem_words);
    io.exit_words = static_cast<std::uint32_t>(d.transfers.asic_to_mem_words);
    partition.clusters.push_back(io);
  }

  const iss::SystemConfig part_config =
      options_.partitioned_config.value_or(options_.initial_config);
  iss::Simulator part_sim(module_, program, part_config, lib_, up_model_);
  if (workload.setup) {
    SimTarget t(part_sim);
    workload.setup(t);
  }
  CheckCancel(options_.cancel, "partitioner (partitioned re-simulation)");
  try {
    result.partitioned_run =
        part_sim.Run(workload.entry, workload.args, partition, options_.max_sim_instrs);
  } catch (const CancelledError&) {
    throw;
  } catch (const Error& e) {
    // Isolation: if the partitioned re-simulation fails, fall back to
    // the (already validated) all-software result rather than crash.
    result.diagnostics.push_back(Diagnostic{
        Severity::kError, "partition.resim", SourceLoc{},
        std::string("partitioned re-simulation failed (all-software fallback): ") +
            e.what()});
    result.selected.clear();
    result.asic_cycles = 0;
    result.asic_energy = Energy{};
    result.partitioned_run = result.initial_run;
  }
  return result;
}

}  // namespace lopass::core
