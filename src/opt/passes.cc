#include "opt/passes.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "ir/verify.h"

namespace lopass::opt {

using ir::BasicBlock;
using ir::Instr;
using ir::Opcode;
using ir::Operand;

std::string PassStats::ToString() const {
  std::ostringstream os;
  os << "folded=" << folded_ops << " operand-folds=" << folded_operands
     << " cse=" << cse_reused << " dce=" << dce_removed
     << " branches=" << branches_simplified;
  return os.str();
}

namespace {

// Evaluates a pure operation on constant operands. Returns false for
// non-foldable cases (division by zero stays a runtime trap).
bool Evaluate(Opcode op, std::int64_t a, std::int64_t b, std::int64_t& out) {
  switch (op) {
    case Opcode::kAdd: out = a + b; return true;
    case Opcode::kSub: out = a - b; return true;
    case Opcode::kMul: out = a * b; return true;
    case Opcode::kDiv:
      if (b == 0) return false;
      out = a / b;
      return true;
    case Opcode::kMod:
      if (b == 0) return false;
      out = a % b;
      return true;
    case Opcode::kAnd: out = a & b; return true;
    case Opcode::kOr: out = a | b; return true;
    case Opcode::kXor: out = a ^ b; return true;
    case Opcode::kShl: out = a << (b & 63); return true;
    case Opcode::kShr:
      out = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >> (b & 63));
      return true;
    case Opcode::kSar: out = a >> (b & 63); return true;
    case Opcode::kMin: out = std::min(a, b); return true;
    case Opcode::kMax: out = std::max(a, b); return true;
    case Opcode::kCmpEq: out = a == b; return true;
    case Opcode::kCmpNe: out = a != b; return true;
    case Opcode::kCmpLt: out = a < b; return true;
    case Opcode::kCmpLe: out = a <= b; return true;
    case Opcode::kCmpGt: out = a > b; return true;
    case Opcode::kCmpGe: out = a >= b; return true;
    default:
      return false;
  }
}

}  // namespace

PassStats ConstantFold(ir::Module& module) {
  PassStats stats;
  for (ir::Function& fn : module.functions_mutable()) {
    for (BasicBlock& bb : fn.blocks) {
      // vreg -> known constant value within this block.
      std::unordered_map<ir::VregId, std::int64_t> known;
      // vreg -> canonical source vreg (copy propagation through movs).
      std::unordered_map<ir::VregId, ir::VregId> alias;
      auto canonical = [&](ir::VregId v) {
        auto it = alias.find(v);
        return it == alias.end() ? v : it->second;
      };
      for (Instr& in : bb.instrs) {
        // Propagate copies and constants into operand slots.
        for (Operand& a : in.args) {
          if (!a.is_vreg()) continue;
          const ir::VregId c = canonical(a.vreg);
          if (c != a.vreg) {
            a = Operand::Vreg(c);
            ++stats.folded_operands;
          }
          auto it = known.find(a.vreg);
          if (it != known.end()) {
            a = Operand::Imm(it->second);
            ++stats.folded_operands;
          }
        }
        switch (in.op) {
          case Opcode::kConst:
            known[in.result] = in.args[0].imm;
            break;
          case Opcode::kMov:
            if (in.args[0].is_imm()) {
              known[in.result] = in.args[0].imm;
              in.op = Opcode::kConst;
              ++stats.folded_ops;
            } else {
              alias[in.result] = canonical(in.args[0].vreg);
            }
            break;
          case Opcode::kNeg:
            if (in.args[0].is_imm()) {
              const std::int64_t v = -in.args[0].imm;
              known[in.result] = v;
              in.op = Opcode::kConst;
              in.args = {Operand::Imm(v)};
              ++stats.folded_ops;
            }
            break;
          case Opcode::kNot:
            if (in.args[0].is_imm()) {
              const std::int64_t v = ~in.args[0].imm;
              known[in.result] = v;
              in.op = Opcode::kConst;
              in.args = {Operand::Imm(v)};
              ++stats.folded_ops;
            }
            break;
          case Opcode::kCondBr:
            if (in.args[0].is_imm()) {
              const ir::BlockId target = in.args[0].imm != 0 ? in.target0 : in.target1;
              in.op = Opcode::kBr;
              in.args.clear();
              in.target0 = target;
              in.target1 = ir::kNoBlock;
              ++stats.branches_simplified;
            }
            break;
          default:
            if (ir::IsBinaryArith(in.op) || ir::IsComparison(in.op)) {
              if (in.args[0].is_imm() && in.args[1].is_imm()) {
                std::int64_t v;
                if (Evaluate(in.op, in.args[0].imm, in.args[1].imm, v)) {
                  known[in.result] = v;
                  in.op = Opcode::kConst;
                  in.args = {Operand::Imm(v)};
                  ++stats.folded_ops;
                }
              }
            }
            break;
        }
      }
    }
  }
  return stats;
}

PassStats LocalCse(ir::Module& module) {
  PassStats stats;
  for (ir::Function& fn : module.functions_mutable()) {
    for (BasicBlock& bb : fn.blocks) {
      // Key: opcode | sym | operand list -> result vreg.
      struct Key {
        Opcode op;
        ir::SymbolId sym;
        std::vector<std::pair<bool, std::int64_t>> args;  // (is_imm, value/vreg)
        bool operator<(const Key& o) const {
          if (op != o.op) return op < o.op;
          if (sym != o.sym) return sym < o.sym;
          return args < o.args;
        }
      };
      std::map<Key, ir::VregId> available;
      // Invalidate readvar entries on writevar, loadelem entries on
      // storeelem of the same symbol.
      auto invalidate_sym = [&](Opcode op, ir::SymbolId sym) {
        for (auto it = available.begin(); it != available.end();) {
          if (it->first.op == op && it->first.sym == sym) {
            it = available.erase(it);
          } else {
            ++it;
          }
        }
      };

      for (Instr& in : bb.instrs) {
        const bool pure = ir::IsBinaryArith(in.op) || ir::IsComparison(in.op) ||
                          in.op == Opcode::kNeg || in.op == Opcode::kNot ||
                          in.op == Opcode::kReadVar || in.op == Opcode::kLoadElem;
        if (in.op == Opcode::kWriteVar) {
          invalidate_sym(Opcode::kReadVar, in.sym);
          continue;
        }
        if (in.op == Opcode::kStoreElem) {
          invalidate_sym(Opcode::kLoadElem, in.sym);
          continue;
        }
        if (in.op == Opcode::kCall) {
          // Calls may write any variable/array: flush everything that
          // depends on memory.
          for (auto it = available.begin(); it != available.end();) {
            if (it->first.op == Opcode::kReadVar || it->first.op == Opcode::kLoadElem) {
              it = available.erase(it);
            } else {
              ++it;
            }
          }
          continue;
        }
        if (!pure) continue;

        Key key;
        key.op = in.op;
        key.sym = in.sym;
        for (const Operand& a : in.args) {
          key.args.emplace_back(a.is_imm(), a.is_imm() ? a.imm : a.vreg);
        }
        auto it = available.find(key);
        if (it != available.end()) {
          // Replace with a copy of the earlier result.
          in.op = Opcode::kMov;
          in.sym = ir::kNoSymbol;
          in.args = {Operand::Vreg(it->second)};
          ++stats.cse_reused;
        } else {
          available.emplace(std::move(key), in.result);
        }
      }
    }
  }
  return stats;
}

PassStats DeadCodeElim(ir::Module& module) {
  PassStats stats;
  for (ir::Function& fn : module.functions_mutable()) {
    for (BasicBlock& bb : fn.blocks) {
      std::unordered_set<ir::VregId> used;
      for (const Instr& in : bb.instrs) {
        for (const Operand& a : in.args) {
          if (a.is_vreg()) used.insert(a.vreg);
        }
      }
      auto has_side_effect = [&module](const Instr& in) {
        switch (in.op) {
          case Opcode::kWriteVar:
          case Opcode::kStoreElem:
          case Opcode::kCall:
          case Opcode::kRet:
          case Opcode::kBr:
          case Opcode::kCondBr:
            return true;
          case Opcode::kDiv:
          case Opcode::kMod:
            // May trap on zero: keep unless the divisor is a nonzero
            // constant.
            return !(in.args[1].is_imm() && in.args[1].imm != 0);
          case Opcode::kLoadElem:
            // May trap on an out-of-range index: removable only when
            // the index is a constant provably inside the array.
            return !(in.args[0].is_imm() && in.args[0].imm >= 0 &&
                     in.args[0].imm <
                         static_cast<std::int64_t>(module.symbol(in.sym).length));
          default:
            return false;
        }
      };
      const std::size_t before = bb.instrs.size();
      bb.instrs.erase(
          std::remove_if(bb.instrs.begin(), bb.instrs.end(),
                         [&](const Instr& in) {
                           if (has_side_effect(in)) return false;
                           if (in.result == ir::kNoVreg) return false;
                           return !used.count(in.result);
                         }),
          bb.instrs.end());
      stats.dce_removed += before - bb.instrs.size();
    }
  }
  return stats;
}

PassStats RunStandardPasses(ir::Module& module, int max_rounds) {
  PassStats total;
  for (int round = 0; round < max_rounds; ++round) {
    PassStats s;
    const PassStats f = ConstantFold(module);
    const PassStats c = LocalCse(module);
    const PassStats d = DeadCodeElim(module);
    s.folded_ops = f.folded_ops;
    s.folded_operands = f.folded_operands;
    s.branches_simplified = f.branches_simplified;
    s.cse_reused = c.cse_reused;
    s.dce_removed = d.dce_removed;
    total.folded_ops += s.folded_ops;
    total.folded_operands += s.folded_operands;
    total.branches_simplified += s.branches_simplified;
    total.cse_reused += s.cse_reused;
    total.dce_removed += s.dce_removed;
    if (s.total() == 0) break;
  }
  ir::VerifyOrThrow(module);
  return total;
}

}  // namespace lopass::opt
