#pragma once

// IR optimization passes.
//
// The paper's behavioral descriptions pass through a "behavioral
// compilation tool" before synthesis (Fig. 5); on the software side the
// code quality of the compiler shifts the HW/SW break-even point. This
// module provides the classic block-local scalar optimizations —
// constant folding, local common-subexpression elimination and dead
// code elimination — so both sides of the partition are measured on
// reasonably compiled code. The passes preserve program semantics
// exactly (asserted by randomized equivalence tests) and never change
// the block structure, so the structural region tree stays valid.

#include <cstdint>
#include <string>

#include "ir/module.h"

namespace lopass::opt {

struct PassStats {
  std::uint64_t folded_ops = 0;       // ops replaced by constants
  std::uint64_t folded_operands = 0;  // vreg operands replaced by immediates
  std::uint64_t cse_reused = 0;       // ops replaced by an earlier identical op
  std::uint64_t dce_removed = 0;      // dead ops removed
  std::uint64_t branches_simplified = 0;  // condbr with constant condition

  std::uint64_t total() const {
    return folded_ops + cse_reused + dce_removed + branches_simplified;
  }
  std::string ToString() const;
};

// Folds operations whose operands are all compile-time constants and
// propagates constants into operand slots (so `x = 2 + 3; y = x << 1`
// becomes `y = 10`). Conditional branches on constants become
// unconditional. Runs to a fixed point within each block.
PassStats ConstantFold(ir::Module& module);

// Replaces a pure operation that recomputes an earlier, still-valid
// expression in the same block with a copy of that result. readvar is
// treated as pure until the next writevar of the same symbol, loadelem
// until the next storeelem of the same array.
PassStats LocalCse(ir::Module& module);

// Removes operations whose results are never used and that have no
// side effects (stores, calls, writes and terminators are kept).
PassStats DeadCodeElim(ir::Module& module);

// ConstantFold + LocalCse + DeadCodeElim to a fixed point (bounded
// number of rounds). Verifies the module afterwards.
PassStats RunStandardPasses(ir::Module& module, int max_rounds = 4);

}  // namespace lopass::opt
