#pragma once

// ASIC core synthesis and energy estimation (Fig. 1 lines 11, 14, 15).
//
// "Synthesis" here means fixing the allocation/binding produced by the
// utilization analysis, adding the controller, and producing the two
// energy estimates the flow uses:
//   * the quick estimate E_R = U_R · Σ (P_av · N_cyc · T_cyc) that
//     drives the objective function (line 11), and
//   * a gate-level-style refined estimate (line 15) that separately
//     accounts each instance's active switching energy and the idle
//     (not-actively-used) energy of Eq. 2, plus controller overhead.

#include <array>
#include <string>

#include "asic/datapath.h"
#include "asic/utilization.h"
#include "common/units.h"
#include "power/tech_library.h"

namespace lopass::asic {

struct SynthesisOptions {
  // Controller adds area and burns power every cycle.
  double controller_geq_fraction = 0.10;
  double controller_energy_fraction = 0.10;
  // Conversion from gate equivalents to the paper's "cells" metric.
  double cells_per_geq = 1.0;
};

// A synthesized application-specific core.
struct AsicCore {
  std::string name;
  std::string resource_set;
  double utilization = 0.0;       // U_R^core
  double geq = 0.0;               // incl. controller
  double cells = 0.0;             // paper's "k cells" metric
  // The core is clocked at the speed of its slowest instantiated
  // resource (its critical path), independent of the µP clock.
  Duration clock_period;
  lopass::Cycles control_steps = 0;  // native ASIC cycles
  // Execution time expressed in µP-clock-equivalent cycles, so Table 1
  // can sum µP and ASIC contributions (the paper's "Exec. Time
  // [cycles]" columns do exactly that).
  lopass::Cycles cycles = 0;
  Energy estimate_energy;         // Fig. 1 line 11
  Energy refined_energy;          // Fig. 1 line 15 (used for Table 1)
  std::array<int, power::kNumResourceTypes> instances{};
};

// Builds the core from a utilization/binding result. The ASIC's clock
// period is the max min_cycle_time among instantiated resources.
// `datapath_registers` sizes the register file (scalar values the
// cluster keeps locally); it contributes area and is clocked — hence
// burns power — every cycle.
// When `datapath` is given, the steering network (input muxes) derived
// from the binding is folded into area and energy — a cost Fig. 4's
// GEQ_RS omits (see bench_ablation_mux).
AsicCore Synthesize(const std::string& name, const std::string& resource_set,
                    const UtilizationResult& util, const power::TechLibrary& lib,
                    int datapath_registers = 8,
                    const SynthesisOptions& options = SynthesisOptions{},
                    const Datapath* datapath = nullptr);

// The quick estimate alone (Fig. 1 line 11), usable without synthesis.
Energy EstimateEnergy(const UtilizationResult& util, const power::TechLibrary& lib);

}  // namespace lopass::asic
