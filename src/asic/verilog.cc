#include "asic/verilog.h"

#include <cctype>
#include <cmath>
#include <sstream>

namespace lopass::asic {

namespace {

std::string Sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'u');
  }
  return out;
}

const char* UnitModule(power::ResourceType t) {
  switch (t) {
    case power::ResourceType::kAlu: return "sl_alu32";
    case power::ResourceType::kAdder: return "sl_add32";
    case power::ResourceType::kComparator: return "sl_cmp32";
    case power::ResourceType::kShifter: return "sl_bshift32";
    case power::ResourceType::kMultiplier: return "sl_mul32x32";
    case power::ResourceType::kDivider: return "sl_divseq32";
    case power::ResourceType::kRegister: return "sl_reg32";
    case power::ResourceType::kMemoryPort: return "sl_memport";
    case power::ResourceType::kCount: break;
  }
  return "sl_unit";
}

int Clog2(std::uint32_t v) {
  int bits = 1;
  while ((1u << bits) < v) ++bits;
  return bits;
}

}  // namespace

std::string EmitVerilog(const AsicCore& core, const Datapath& datapath,
                        const VerilogOptions& options) {
  const std::string name =
      options.module_name.empty() ? Sanitize("core_" + core.name) : options.module_name;
  const int w = options.data_width;
  const int state_bits = Clog2(std::max(2u, datapath.fsm_states));

  std::ostringstream os;
  os << "// Structural skeleton emitted by lopass (asic::EmitVerilog).\n"
     << "// " << core.resource_set << ", " << core.cells << " cells, U_R="
     << core.utilization << ", clock " << core.clock_period.nanoseconds() << " ns\n"
     << "module " << name << " (\n"
     << "  input  wire        clk,\n"
     << "  input  wire        rst_n,\n"
     << "  // Shared-bus handshake (Fig. 2a): the uP core starts the job,\n"
     << "  // the core fetches/deposits operands in shared memory.\n"
     << "  input  wire        start,\n"
     << "  output reg         done,\n"
     << "  output reg         bus_req,\n"
     << "  input  wire        bus_gnt,\n"
     << "  output reg  [" << w - 1 << ":0] bus_addr,\n"
     << "  inout  wire [" << w - 1 << ":0] bus_data,\n"
     << "  output reg         bus_we\n"
     << ");\n\n";

  os << "  // Controller FSM: " << datapath.fsm_states << " states.\n"
     << "  reg [" << state_bits - 1 << ":0] state;\n"
     << "  localparam S_IDLE = " << state_bits << "'d0;\n\n";

  os << "  // Datapath registers (register file + pipeline temporaries).\n";
  os << "  // Interconnect: " << datapath.total_mux_legs << " mux legs, "
     << datapath.mux_geq << " GEQ of steering logic.\n\n";

  for (const DatapathUnit& u : datapath.units) {
    const std::string inst =
        std::string(power::ResourceTypeName(u.type)) + "_" + std::to_string(u.instance);
    os << "  wire [" << w - 1 << ":0] " << inst << "_a, " << inst << "_b, " << inst
       << "_y;\n";
    if (u.mux_legs() > 1) {
      os << "  // " << u.mux_legs() << ":1 input steering for " << inst << " (sources:";
      for (int p : u.producers) {
        if (p < 0) {
          os << " regfile";
        } else {
          os << ' '
             << power::ResourceTypeName(static_cast<power::ResourceType>(p / 256)) << '_'
             << (p % 256);
        }
      }
      os << ")\n";
      os << "  /* mux tree for " << inst << "_a / " << inst << "_b elided */\n";
    }
    os << "  " << UnitModule(u.type) << " " << inst << " (.a(" << inst << "_a), .b("
       << inst << "_b), .y(" << inst << "_y));\n\n";
  }

  os << "  always @(posedge clk or negedge rst_n) begin\n"
     << "    if (!rst_n) begin\n"
     << "      state  <= S_IDLE;\n"
     << "      done   <= 1'b0;\n"
     << "      bus_req<= 1'b0;\n"
     << "      bus_we <= 1'b0;\n"
     << "      bus_addr <= " << w << "'d0;\n"
     << "    end else begin\n"
     << "      /* per-state control word table (" << datapath.fsm_states
     << " states) elided */\n"
     << "    end\n"
     << "  end\n\n"
     << "endmodule\n";
  return os.str();
}

}  // namespace lopass::asic
