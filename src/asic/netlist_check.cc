#include "asic/netlist_check.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace lopass::asic {

using power::ResourceType;

namespace {

constexpr int kMaxMuxLegs = 32;

int UnitKey(ResourceType t, int instance) {
  return static_cast<int>(t) * 256 + instance;
}

std::string UnitStr(int key) {
  std::ostringstream os;
  os << power::ResourceTypeName(static_cast<ResourceType>(key / 256)) << '#'
     << (key % 256);
  return os.str();
}

std::string Prefixed(const std::string& where, const std::string& msg) {
  return where.empty() ? msg : where + ": " + msg;
}

// Mirrors verilog.cc's state-register sizing.
int Clog2(std::uint32_t v) {
  int bits = 1;
  while ((1u << bits) < v) ++bits;
  return bits;
}

}  // namespace

bool ValidateDatapath(const std::vector<ScheduledBlock>& blocks,
                      const UtilizationResult& util, const Datapath& datapath,
                      DiagnosticSink& sink, const std::string& where) {
  std::size_t errors_before = 0;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.severity == Severity::kError) ++errors_before;
  }
  auto error_count = [&sink]() {
    std::size_t n = 0;
    for (const Diagnostic& d : sink.diagnostics()) {
      if (d.severity == Severity::kError) ++n;
    }
    return n;
  };

  // L502: unit table free of duplicates.
  std::set<int> unit_keys;
  for (const DatapathUnit& u : datapath.units) {
    const int key = UnitKey(u.type, u.instance);
    if (!unit_keys.insert(key).second) {
      sink.AddError("L502", Prefixed(where, "functional unit " + UnitStr(key) +
                                                " instantiated twice"));
    }
  }

  // L502: each (block, node) bound at most once.
  std::map<std::pair<std::size_t, std::size_t>, int> bound;
  for (const OpBinding& b : util.bindings) {
    const int key = UnitKey(b.type, b.instance);
    if (!bound.emplace(std::make_pair(b.block, b.node), key).second) {
      std::ostringstream os;
      os << "block " << b.block << " node " << b.node << " bound to more than one unit";
      sink.AddError("L502", Prefixed(where, os.str()));
    }
    if (!unit_keys.count(key)) {
      sink.AddError("L503", Prefixed(where, "binding references unit " + UnitStr(key) +
                                                " absent from the datapath"));
    }
  }

  // L503: producer keys resolve; working units have an input source.
  for (const DatapathUnit& u : datapath.units) {
    for (int p : u.producers) {
      if (p >= 0 && !unit_keys.count(p)) {
        sink.AddError("L503",
                      Prefixed(where, "unit " + UnitStr(UnitKey(u.type, u.instance)) +
                                          " lists dangling producer " + UnitStr(p)));
      }
    }
    if (u.ops > 0 && u.producers.empty()) {
      sink.AddError("L503",
                    Prefixed(where, "unit " + UnitStr(UnitKey(u.type, u.instance)) +
                                        " executes operations but has no input source"));
    }
    // L504: steering fan-in must stay implementable (warning: the mux
    // model stays valid, the layout just gets slow).
    if (u.mux_legs() > kMaxMuxLegs) {
      std::ostringstream os;
      os << "unit " << UnitStr(UnitKey(u.type, u.instance)) << " input mux has "
         << u.mux_legs() << " legs (bound " << kMaxMuxLegs << ")";
      sink.AddWarning("L504", Prefixed(where, os.str()));
    }
  }

  // L500: within one control step of one block, the chained unit graph
  // must stay acyclic (a registered edge crosses steps; a same-step
  // edge is a combinational pass-through).
  std::uint32_t expected_states = 1;  // idle
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const sched::BlockDfg* dfg = blocks[bi].dfg;
    const sched::BlockSchedule* sch = blocks[bi].schedule;
    if (dfg == nullptr || sch == nullptr) {
      sink.AddError("L500", Prefixed(where, "scheduled block " + std::to_string(bi) +
                                                " is missing its DFG or schedule"));
      continue;
    }
    expected_states += std::max(sch->num_steps, 1u);
    if (sch->ops.size() != dfg->size()) continue;  // L400 territory

    std::vector<std::uint32_t> step(dfg->size(), 0);
    for (const sched::ScheduledOp& op : sch->ops) {
      if (op.node < step.size()) step[op.node] = op.step;
    }
    // Same-step unit adjacency, grouped by step.
    std::map<std::uint32_t, std::map<int, std::set<int>>> adj;
    for (std::size_t n = 0; n < dfg->size(); ++n) {
      const auto nb = bound.find({bi, n});
      if (nb == bound.end()) continue;
      for (std::size_t p : dfg->nodes[n].preds) {
        if (step[p] != step[n]) continue;
        const auto pb = bound.find({bi, p});
        if (pb == bound.end()) continue;
        adj[step[n]][pb->second].insert(nb->second);
      }
    }
    for (const auto& [s, graph] : adj) {
      // Iterative DFS cycle check over the small per-step graph.
      std::map<int, int> color;  // 0 new, 1 on stack, 2 done
      bool cyclic = false;
      for (const auto& [start, _] : graph) {
        if (color[start] != 0) continue;
        std::vector<std::pair<int, bool>> stack{{start, false}};
        while (!stack.empty() && !cyclic) {
          auto [u, leaving] = stack.back();
          stack.pop_back();
          if (leaving) {
            color[u] = 2;
            continue;
          }
          if (color[u] == 1) continue;
          color[u] = 1;
          stack.push_back({u, true});
          const auto it = graph.find(u);
          if (it == graph.end()) continue;
          for (int v : it->second) {
            if (color[v] == 1) {
              cyclic = true;
              break;
            }
            if (color[v] == 0) stack.push_back({v, false});
          }
        }
        if (cyclic) break;
      }
      if (cyclic) {
        std::ostringstream os;
        os << "block " << bi << " control step " << s
           << ": combinational loop through chained functional units";
        sink.AddError("L500", Prefixed(where, os.str()));
      }
    }
  }

  // L505: FSM sized exactly for the schedule.
  if (datapath.fsm_states != expected_states) {
    std::ostringstream os;
    os << "controller has " << datapath.fsm_states << " FSM states but the schedules"
       << " require " << expected_states << " (incl. idle)";
    sink.AddError("L505", Prefixed(where, os.str()));
  }

  return error_count() == errors_before;
}

bool ValidateVerilog(const std::string& verilog, const Datapath& datapath,
                     int data_width, DiagnosticSink& sink, const std::string& where) {
  std::size_t before = sink.diagnostics().size();
  const int state_bits = Clog2(std::max(2u, datapath.fsm_states));

  // L501: every vector declaration carries the datapath width, except
  // the FSM state register which is sized by the state count.
  std::istringstream is(verilog);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t lb = line.find('[');
    if (lb == std::string::npos) continue;
    const std::size_t colon = line.find(":0]", lb);
    if (colon == std::string::npos) continue;
    // Declarations only (wire/reg); expressions like 32'd0 have no [.
    const bool is_decl = line.find("wire") != std::string::npos ||
                         line.find("reg") != std::string::npos;
    if (!is_decl || line.find("//") < lb) continue;
    int msb = -1;
    try {
      msb = std::stoi(line.substr(lb + 1, colon - lb - 1));
    } catch (...) {
      continue;
    }
    const bool is_state = line.find(" state;") != std::string::npos;
    const int want = is_state ? state_bits - 1 : data_width - 1;
    if (msb != want) {
      std::ostringstream os;
      os << "vector declared [" << msb << ":0] but "
         << (is_state ? "the FSM state register needs [" : "the datapath width needs [")
         << want << ":0]";
      sink.AddError("L501", Prefixed(where, os.str()), SourceLoc{lineno, 1});
    }
  }

  // Every datapath unit must be instantiated exactly once (text level).
  for (const DatapathUnit& u : datapath.units) {
    const std::string inst = std::string(power::ResourceTypeName(u.type)) + "_" +
                             std::to_string(u.instance);
    const std::string pattern = " " + inst + " (.a(";
    std::size_t count = 0;
    for (std::size_t pos = verilog.find(pattern); pos != std::string::npos;
         pos = verilog.find(pattern, pos + 1)) {
      ++count;
    }
    if (count == 0) {
      sink.AddError("L503", Prefixed(where, "unit " + inst +
                                                " is missing from the emitted Verilog"));
    } else if (count > 1) {
      sink.AddError("L502", Prefixed(where, "unit " + inst + " instantiated " +
                                                std::to_string(count) + " times"));
    }
  }

  return sink.diagnostics().size() == before;
}

}  // namespace lopass::asic
