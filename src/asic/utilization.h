#pragma once

// Utilization rate U_R^core and hardware effort GEQ_RS of a candidate
// cluster — the algorithm of Fig. 4.
//
// Works on the list-scheduled basic blocks of a cluster, weighted by
// profiling counts (#ex_times, footnote 14). The binding walks each
// operation's sorted candidate-resource list and reuses an already
// instantiated instance when one is free ("tested whether they are
// instantiated in a previous control step"); otherwise the first —
// smallest, therefore most energy-efficient (footnote 13) — candidate
// type is instantiated, preferring types whose designer budget is not
// yet exhausted.

#include <array>
#include <cstdint>
#include <vector>

#include "ir/module.h"
#include "power/tech_library.h"
#include "sched/dfg.h"
#include "sched/list_scheduler.h"
#include "sched/resource_set.h"

namespace lopass::asic {

// One scheduled basic block of the cluster plus its execution count.
struct ScheduledBlock {
  const sched::BlockDfg* dfg = nullptr;
  const sched::BlockSchedule* schedule = nullptr;
  std::uint64_t ex_times = 0;  // #ex_times from profiling
};

// Binding of one operation to a resource instance.
struct OpBinding {
  std::size_t block = 0;  // index into the ScheduledBlock span
  std::size_t node = 0;   // DFG node
  power::ResourceType type = power::ResourceType::kAlu;
  int instance = 0;       // instance index within the type
};

struct InstanceUtil {
  power::ResourceType type = power::ResourceType::kAlu;
  int instance = 0;
  std::uint64_t active_cycles = 0;  // Σ latency × ex_times (util[rs][is])
  std::uint64_t ops = 0;            // dynamic operation count
};

struct UtilizationResult {
  // U_R^core per Eq. 4: mean over instances of active/total cycles.
  double u_core = 0.0;
  // GEQ_RS: gate equivalents of all instantiated datapath resources
  // (Fig. 4 lines 16-18), excluding the controller.
  double geq = 0.0;
  // N_cyc^c: cycles to execute the whole cluster on the ASIC core.
  lopass::Cycles total_cycles = 0;
  std::array<int, power::kNumResourceTypes> instances{};
  std::vector<InstanceUtil> instance_util;
  std::vector<OpBinding> bindings;

  int total_instances() const {
    int n = 0;
    for (int c : instances) n += c;
    return n;
  }
};

// Computes U_R^core and GEQ_RS for the scheduled cluster. `rs` is the
// designer resource set used for the schedule (caps preferred
// allocation). Throws on malformed inputs.
UtilizationResult ComputeUtilization(const std::vector<ScheduledBlock>& blocks,
                                     const sched::ResourceSet& rs,
                                     const power::TechLibrary& lib);

}  // namespace lopass::asic
