#pragma once

// Structural netlist lints (L5xx) for the synthesized ASIC core: the
// datapath/binding structure produced by BuildDatapath and the
// structural Verilog emitted from it.
//
// Run from the partitioner when PartitionOptions::self_check is on
// (with include_interconnect) and from the `lopass lint` driver.
// Findings accumulate; the checkers never throw.

#include <string>
#include <vector>

#include "asic/datapath.h"
#include "common/diag.h"

namespace lopass::asic {

// Validates the datapath against the schedule/binding it came from:
//  - no combinational loop among units within one control step
//    (operator chaining must stay acyclic per step)              (L500)
//  - no duplicate (type, instance) unit and no DFG node bound
//    more than once                                              (L502)
//  - every producer key resolves to an instantiated unit; a unit
//    executing operations has at least one input source          (L503)
//  - steering mux fan-in stays implementable (<= 32 legs;
//    warning)                                                    (L504)
//  - FSM state count == sum over blocks of max(num_steps, 1)
//    plus the idle state                                         (L505)
//
// `where` prefixes every message. Returns true when this call added
// no *error* (L504 is a warning and does not fail the check).
bool ValidateDatapath(const std::vector<ScheduledBlock>& blocks,
                      const UtilizationResult& util, const Datapath& datapath,
                      DiagnosticSink& sink, const std::string& where = {});

// Lints the emitted structural Verilog text against the datapath:
// every vector declaration must be data_width wide except the FSM
// state register, which is sized by the state count (L501); every
// unit instance printed by the datapath must appear exactly once
// (L502/L503 at the text level).
bool ValidateVerilog(const std::string& verilog, const Datapath& datapath,
                     int data_width, DiagnosticSink& sink,
                     const std::string& where = {});

}  // namespace lopass::asic
