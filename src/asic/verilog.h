#pragma once

// Structural Verilog skeleton emitter for synthesized ASIC cores.
//
// Fig. 5's hardware branch ends in RTL logic synthesis; this emitter
// produces the structural shell a behavioral-compilation backend would
// hand to it: the core's module interface (shared-bus handshake of
// Fig. 2a), one instance per allocated functional unit, the steering
// multiplexers implied by the binding, the register file and the FSM
// state register sized for the schedule. Functional-unit innards and
// the per-state control word table are left as `/* ... */` holes — the
// datapath *structure* (what Fig. 4's GEQ counts) is complete and
// consistent with the energy/area accounting.

#include <string>

#include "asic/datapath.h"
#include "asic/synthesis.h"

namespace lopass::asic {

struct VerilogOptions {
  int data_width = 32;
  std::string module_name;  // defaults to a sanitized core name
};

// Emits the structural skeleton for `core` with its `datapath`.
std::string EmitVerilog(const AsicCore& core, const Datapath& datapath,
                        const VerilogOptions& options = VerilogOptions{});

}  // namespace lopass::asic
