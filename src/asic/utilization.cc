#include "asic/utilization.h"

#include <algorithm>

#include "common/error.h"

namespace lopass::asic {

using power::ResourceType;

namespace {

// Tracks, per type, the step at which each allocated instance becomes
// free within the current block's schedule timeline.
struct InstancePool {
  std::array<std::vector<std::uint32_t>, power::kNumResourceTypes> free_at;

  int count(ResourceType t) const {
    return static_cast<int>(free_at[static_cast<std::size_t>(t)].size());
  }
  void ResetTimeline() {
    for (auto& v : free_at) std::fill(v.begin(), v.end(), 0u);
  }
  // Finds an allocated instance of `t` free at `step`; -1 if none.
  int FindFree(ResourceType t, std::uint32_t step) const {
    const auto& v = free_at[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] <= step) return static_cast<int>(i);
    }
    return -1;
  }
  int Allocate(ResourceType t) {
    auto& v = free_at[static_cast<std::size_t>(t)];
    v.push_back(0);
    return static_cast<int>(v.size() - 1);
  }
  void Occupy(ResourceType t, int inst, std::uint32_t until) {
    free_at[static_cast<std::size_t>(t)][static_cast<std::size_t>(inst)] = until;
  }
};

}  // namespace

UtilizationResult ComputeUtilization(const std::vector<ScheduledBlock>& blocks,
                                     const sched::ResourceSet& rs,
                                     const power::TechLibrary& lib) {
  UtilizationResult r;
  InstancePool pool;
  // instance_util indexed via [type][instance].
  std::array<std::vector<std::size_t>, power::kNumResourceTypes> util_index;

  auto util_of = [&](ResourceType t, int inst) -> InstanceUtil& {
    auto& idx = util_index[static_cast<std::size_t>(t)];
    while (static_cast<int>(idx.size()) <= inst) {
      InstanceUtil u;
      u.type = t;
      u.instance = static_cast<int>(idx.size());
      idx.push_back(r.instance_util.size());
      r.instance_util.push_back(u);
    }
    return r.instance_util[idx[static_cast<std::size_t>(inst)]];
  };

  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const ScheduledBlock& sb = blocks[b];
    LOPASS_CHECK(sb.dfg != nullptr && sb.schedule != nullptr, "unscheduled block");
    LOPASS_CHECK(sb.schedule->ops.size() == sb.dfg->size(), "schedule/DFG size mismatch");
    // The controller spends at least one cycle sequencing through a
    // block, even an empty one (bare branch).
    r.total_cycles +=
        static_cast<Cycles>(std::max(sb.schedule->num_steps, 1u)) * sb.ex_times;
    if (sb.dfg->size() == 0) continue;

    // Each block executes on the shared datapath with a fresh timeline.
    pool.ResetTimeline();

    // Process ops in control-step order (stable by node index).
    std::vector<std::size_t> order(sb.schedule->ops.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
      if (sb.schedule->ops[a].step != sb.schedule->ops[c].step) {
        return sb.schedule->ops[a].step < sb.schedule->ops[c].step;
      }
      return a < c;
    });

    for (std::size_t n : order) {
      const sched::ScheduledOp& op = sb.schedule->ops[n];
      const auto candidates = sched::CandidateResources(sb.dfg->nodes[n].op);
      LOPASS_CHECK(!candidates.empty(), "op without candidate resources in cluster");

      // Fig. 4 lines 7-13: reuse an instantiated, currently free
      // instance, walking candidates from smallest to largest.
      ResourceType chosen = candidates[0];
      int inst = -1;
      for (ResourceType t : candidates) {
        const int free_inst = pool.FindFree(t, op.step);
        if (free_inst >= 0) {
          chosen = t;
          inst = free_inst;
          break;
        }
      }
      if (inst < 0) {
        // Instantiate: prefer the smallest candidate whose designer
        // budget is not exhausted; fall back to the smallest overall.
        ResourceType alloc_type = candidates[0];
        for (ResourceType t : candidates) {
          if (pool.count(t) < rs.of(t)) {
            alloc_type = t;
            break;
          }
        }
        chosen = alloc_type;
        inst = pool.Allocate(alloc_type);
      }
      const Cycles lat = lib.spec(chosen).op_latency;
      pool.Occupy(chosen, inst, op.step + static_cast<std::uint32_t>(lat));

      InstanceUtil& u = util_of(chosen, inst);
      u.active_cycles += static_cast<std::uint64_t>(lat) * sb.ex_times;  // #ex_cycs × #ex_times
      u.ops += sb.ex_times;

      OpBinding binding;
      binding.block = b;
      binding.node = n;
      binding.type = chosen;
      binding.instance = inst;
      r.bindings.push_back(binding);
    }
  }

  // GEQ_RS (Fig. 4 lines 16-18).
  for (int t = 0; t < power::kNumResourceTypes; ++t) {
    const int n = pool.count(static_cast<ResourceType>(t));
    r.instances[static_cast<std::size_t>(t)] = n;
    r.geq += n * lib.spec(static_cast<ResourceType>(t)).geq;
  }

  // U_R^core (Fig. 4 line 24 / Eq. 4): mean instance utilization.
  if (r.total_cycles > 0 && !r.instance_util.empty()) {
    double sum = 0.0;
    for (const InstanceUtil& u : r.instance_util) {
      sum += static_cast<double>(u.active_cycles) / static_cast<double>(r.total_cycles);
    }
    r.u_core = sum / static_cast<double>(r.instance_util.size());
  }
  return r;
}

}  // namespace lopass::asic
