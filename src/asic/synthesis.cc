#include "asic/synthesis.h"

#include <cmath>

#include "common/error.h"
#include "common/fault.h"
#include "common/units.h"

namespace lopass::asic {

Energy EstimateEnergy(const UtilizationResult& util, const power::TechLibrary& lib) {
  fault::MaybeInject("estimate");
  // E_R^core = U_R^core · Σ_rs (P_av^rs · N_cyc^rs · T_cyc^rs)  (line 11),
  // with T_cyc^rs "the minimum cycle time the resource can run at".
  Energy sum;
  for (const InstanceUtil& u : util.instance_util) {
    const power::ResourceSpec& spec = lib.spec(u.type);
    sum += spec.average_power *
           Duration{static_cast<double>(u.active_cycles) * spec.min_cycle_time.seconds};
  }
  return sum * util.u_core;
}

AsicCore Synthesize(const std::string& name, const std::string& resource_set,
                    const UtilizationResult& util, const power::TechLibrary& lib,
                    int datapath_registers, const SynthesisOptions& options,
                    const Datapath* datapath) {
  fault::MaybeInject("synth");
  AsicCore core;
  core.name = name;
  core.resource_set = resource_set;
  core.utilization = util.u_core;
  core.control_steps = util.total_cycles;
  core.instances = util.instances;

  // The controller's state register chain is never the critical path;
  // the slowest instantiated datapath resource sets the clock.
  Duration period = Duration::from_nanoseconds(8.0);  // controller floor
  for (int t = 0; t < power::kNumResourceTypes; ++t) {
    if (util.instances[static_cast<std::size_t>(t)] == 0) continue;
    const power::ResourceSpec& spec = lib.spec(static_cast<power::ResourceType>(t));
    if (spec.min_cycle_time > period) period = spec.min_cycle_time;
  }
  core.clock_period = period;

  // Express execution time in µP-clock-equivalent cycles so both cores
  // can be summed in one "Exec. Time [cycles]" column.
  const double scale = period.seconds / lib.params().clock_period().seconds;
  core.cycles = static_cast<lopass::Cycles>(
      std::ceil(static_cast<double>(util.total_cycles) * scale));

  const power::ResourceSpec& reg_spec = lib.spec(power::ResourceType::kRegister);
  core.geq = (util.geq + datapath_registers * reg_spec.geq) *
             (1.0 + options.controller_geq_fraction);
  core.cells = core.geq * options.cells_per_geq;
  core.estimate_energy = EstimateEnergy(util, lib);

  // Gate-level-style refined estimate: per instance, active switching
  // energy for executed ops plus idle energy while clocked but not
  // actively used (Eq. 2), at the core's own clock period, plus
  // controller overhead.
  Energy datapath_energy;
  for (const InstanceUtil& u : util.instance_util) {
    datapath_energy += lib.active_energy(u.type, u.ops);
    const Cycles idle =
        util.total_cycles > u.active_cycles ? util.total_cycles - u.active_cycles : 0;
    const power::ResourceSpec& spec = lib.spec(u.type);
    datapath_energy += spec.average_power *
                       Duration{static_cast<double>(idle) * period.seconds} *
                       lib.idle_power_fraction();
  }
  // The register file is clocked every cycle.
  datapath_energy += reg_spec.average_power * static_cast<double>(datapath_registers) *
                     Duration{static_cast<double>(util.total_cycles) * period.seconds} *
                     lib.idle_power_fraction();
  // Interconnect: steering area plus per-operand mux switching energy.
  if (datapath != nullptr) {
    core.geq += datapath->mux_geq * (1.0 + options.controller_geq_fraction);
    core.cells = core.geq * options.cells_per_geq;
    std::uint64_t routed_operands = 0;
    for (const DatapathUnit& u : datapath->units) {
      if (u.mux_legs() > 1) routed_operands += 2 * u.ops;
    }
    datapath_energy += datapath->mux_energy_per_op * static_cast<double>(routed_operands);
  }
  core.refined_energy = datapath_energy * (1.0 + options.controller_energy_fraction);
  CheckEnergySane(core.estimate_energy, "ASIC estimate energy");
  CheckEnergySane(core.refined_energy, "ASIC refined energy");
  return core;
}

}  // namespace lopass::asic
