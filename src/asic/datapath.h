#pragma once

// Structural view of the synthesized ASIC core.
//
// Fig. 1 line 14 "synthesize[s] a core": from the binding produced by
// the utilization analysis this module derives the datapath structure a
// behavioral-synthesis backend would emit — functional-unit instances,
// the steering logic (input multiplexers) each instance needs, and the
// controller FSM's state count — and renders it as a readable netlist.
//
// The interconnect model also quantifies what Fig. 4's GEQ omits: every
// distinct producer feeding an instance input adds a mux leg, costing
// area and switching energy. SynthesisOptions can fold this into the
// core (see bench_ablation_mux).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "asic/utilization.h"
#include "power/tech_library.h"

namespace lopass::asic {

// One functional-unit instance and its steering requirements.
struct DatapathUnit {
  power::ResourceType type = power::ResourceType::kAlu;
  int instance = 0;
  std::uint64_t ops = 0;              // dynamic operations executed
  std::uint64_t active_cycles = 0;
  // Distinct producer units feeding this unit's inputs (drives the mux
  // width in front of it). Producer key: type*256+instance, -1 = from
  // the register file.
  std::vector<int> producers;

  int mux_legs() const { return static_cast<int>(producers.size()); }
};

struct Datapath {
  std::vector<DatapathUnit> units;
  // FSM states = total distinct control steps across the cluster's
  // blocks (one state per step plus one idle state).
  std::uint32_t fsm_states = 0;
  // Interconnect totals.
  int total_mux_legs = 0;
  double mux_geq = 0.0;      // area of the steering network
  Energy mux_energy_per_op;  // average steering energy per routed operand

  std::string ToString(const power::TechLibrary& lib) const;
};

// Derives the datapath structure from a utilization/binding result and
// the scheduled blocks it was computed from.
Datapath BuildDatapath(const std::vector<ScheduledBlock>& blocks,
                       const UtilizationResult& util, const power::TechLibrary& lib);

}  // namespace lopass::asic
