#include "asic/datapath.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.h"

namespace lopass::asic {

namespace {

int UnitKey(power::ResourceType t, int instance) {
  return static_cast<int>(t) * 256 + instance;
}

}  // namespace

Datapath BuildDatapath(const std::vector<ScheduledBlock>& blocks,
                       const UtilizationResult& util, const power::TechLibrary& lib) {
  Datapath dp;

  // Unit table from the utilization result.
  std::map<int, std::size_t> unit_index;  // UnitKey -> index in dp.units
  for (const InstanceUtil& u : util.instance_util) {
    DatapathUnit unit;
    unit.type = u.type;
    unit.instance = u.instance;
    unit.ops = u.ops;
    unit.active_cycles = u.active_cycles;
    unit_index[UnitKey(u.type, u.instance)] = dp.units.size();
    dp.units.push_back(std::move(unit));
  }

  // Per (block, node) -> bound unit.
  std::map<std::pair<std::size_t, std::size_t>, int> bound;
  for (const OpBinding& b : util.bindings) {
    bound[{b.block, b.node}] = UnitKey(b.type, b.instance);
  }

  // Walk the DFGs: every edge producer->consumer adds a steering leg at
  // the consumer; ops without producers read the register file.
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const sched::BlockDfg* dfg = blocks[bi].dfg;
    LOPASS_CHECK(dfg != nullptr, "datapath needs the scheduled DFGs");
    for (std::size_t n = 0; n < dfg->size(); ++n) {
      const auto it = bound.find({bi, n});
      if (it == bound.end()) continue;
      DatapathUnit& consumer = dp.units[unit_index.at(it->second)];
      if (dfg->nodes[n].preds.empty()) {
        if (std::find(consumer.producers.begin(), consumer.producers.end(), -1) ==
            consumer.producers.end()) {
          consumer.producers.push_back(-1);
        }
      }
      for (std::size_t p : dfg->nodes[n].preds) {
        const auto pit = bound.find({bi, p});
        const int key = pit == bound.end() ? -1 : pit->second;
        if (std::find(consumer.producers.begin(), consumer.producers.end(), key) ==
            consumer.producers.end()) {
          consumer.producers.push_back(key);
        }
      }
    }
    dp.fsm_states += std::max(blocks[bi].schedule->num_steps, 1u);
  }
  dp.fsm_states += 1;  // idle state

  // Interconnect cost: a k-leg 32-bit mux is ~25 GEQ per leg beyond the
  // first; steering one operand through it costs ~15 pJ at 3.3V.
  for (const DatapathUnit& u : dp.units) {
    const int extra_legs = std::max(0, u.mux_legs() - 1);
    dp.total_mux_legs += u.mux_legs();
    dp.mux_geq += 25.0 * extra_legs;
  }
  dp.mux_energy_per_op = Energy::from_picojoules(15.0);
  (void)lib;
  return dp;
}

std::string Datapath::ToString(const power::TechLibrary& lib) const {
  std::ostringstream os;
  os << "datapath: " << units.size() << " functional units, FSM " << fsm_states
     << " states, interconnect " << total_mux_legs << " mux legs (" << mux_geq
     << " GEQ)\n";
  for (const DatapathUnit& u : units) {
    os << "  " << power::ResourceTypeName(u.type) << '#' << u.instance << "  ops="
       << u.ops << " active=" << u.active_cycles << "cyc  inputs from {";
    for (std::size_t i = 0; i < u.producers.size(); ++i) {
      if (i) os << ", ";
      if (u.producers[i] < 0) {
        os << "regfile";
      } else {
        os << power::ResourceTypeName(
                  static_cast<power::ResourceType>(u.producers[i] / 256))
           << '#' << (u.producers[i] % 256);
      }
    }
    os << "}\n";
  }
  (void)lib;
  return os.str();
}

}  // namespace lopass::asic
