#include "analysis/dataflow_lint.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace lopass::analysis {

using ir::BlockId;
using ir::FunctionId;
using ir::Opcode;
using ir::SymbolId;

namespace {

SourceLoc LocOf(int line) { return SourceLoc{line, line > 0 ? 1 : 0}; }

// First reference (line of first read / first write) per symbol across
// the whole module, and the call-site count per function.
struct ModuleRefs {
  std::unordered_map<SymbolId, int> first_read;   // sym -> line
  std::unordered_map<SymbolId, int> first_write;  // sym -> line
  std::unordered_map<FunctionId, int> call_sites;
};

ModuleRefs CollectRefs(const ir::Module& m) {
  ModuleRefs refs;
  auto note = [](std::unordered_map<SymbolId, int>& map, SymbolId s, int line) {
    auto [it, inserted] = map.emplace(s, line);
    if (!inserted && it->second == 0 && line > 0) it->second = line;
  };
  for (const ir::Function& f : m.functions()) {
    for (const ir::BasicBlock& b : f.blocks) {
      for (const ir::Instr& in : b.instrs) {
        switch (in.op) {
          case Opcode::kReadVar:
          case Opcode::kLoadElem:
            note(refs.first_read, in.sym, in.line);
            break;
          case Opcode::kWriteVar:
          case Opcode::kStoreElem:
            note(refs.first_write, in.sym, in.line);
            break;
          case Opcode::kCall: {
            const auto callee = m.FindFunction(m.symbol(in.sym).name);
            if (callee) ++refs.call_sites[*callee];
            break;
          }
          default:
            break;
        }
      }
    }
  }
  return refs;
}

// Transitive use closure of a function (symbols any call to it may
// read), memoized across the lint run.
class UseClosure {
 public:
  explicit UseClosure(const ir::Module& m) : m_(m) {}

  const std::unordered_set<SymbolId>& Of(FunctionId fn) {
    auto it = cache_.find(fn);
    if (it != cache_.end()) return it->second;
    // Insert an empty placeholder first so (malformed) recursive call
    // graphs terminate.
    auto& out = cache_[fn];
    std::unordered_set<SymbolId> acc;
    for (const ir::BasicBlock& b : m_.function(fn).blocks) {
      for (const ir::Instr& in : b.instrs) {
        switch (in.op) {
          case Opcode::kReadVar:
          case Opcode::kLoadElem:
            acc.insert(in.sym);
            break;
          case Opcode::kCall: {
            const auto callee = m_.FindFunction(m_.symbol(in.sym).name);
            if (callee && *callee != fn) {
              const auto& cs = Of(*callee);
              acc.insert(cs.begin(), cs.end());
            }
            break;
          }
          default:
            break;
        }
      }
    }
    // Of() may have rehashed the map; reacquire the slot.
    auto& slot = cache_[fn];
    slot = std::move(acc);
    (void)out;
    return slot;
  }

 private:
  const ir::Module& m_;
  std::unordered_map<FunctionId, std::unordered_set<SymbolId>> cache_;
};

bool IsParam(const ir::Function& f, SymbolId s) {
  return std::find(f.params.begin(), f.params.end(), s) != f.params.end();
}

// --- L200 / L202 / L203 / L206: reference census ----------------------

void LintReferences(const ir::Module& m, const ModuleRefs& refs,
                    const std::string& entry, DiagnosticSink& sink) {
  for (const ir::Symbol& s : m.symbols()) {
    if (s.kind == ir::SymbolKind::kFunction) continue;
    const bool read = refs.first_read.count(s.id) > 0;
    const bool written = refs.first_write.count(s.id) > 0;
    const bool is_param =
        s.owner >= 0 && IsParam(m.function(s.owner), s.id);
    if (is_param) continue;  // written implicitly at every call site

    if (!read && !written) {
      const char* code = s.kind == ir::SymbolKind::kArray ? "L203" : "L202";
      const char* what = s.kind == ir::SymbolKind::kArray ? "array" : "variable";
      std::ostringstream os;
      os << what << " '" << s.name << "' is never used";
      sink.AddWarning(code, os.str(), LocOf(s.decl_line));
      continue;
    }
    // L200: a read local scalar with no assignment anywhere. Globals
    // are exempt — they carry initializers and workloads populate them
    // externally; locals start zeroed but a never-written local read is
    // almost always a logic error.
    if (s.kind == ir::SymbolKind::kScalar && s.owner >= 0 && read && !written) {
      std::ostringstream os;
      os << "local variable '" << s.name << "' is read but never assigned";
      sink.AddWarning("L200", os.str(), LocOf(refs.first_read.at(s.id)));
    }
  }

  for (const ir::Function& f : m.functions()) {
    if (f.name == entry) continue;
    if (refs.call_sites.count(f.id)) continue;
    std::ostringstream os;
    os << "function '" << f.name << "' is never called";
    sink.AddWarning("L206", os.str(), LocOf(m.symbol(f.symbol).decl_line));
  }
}

// --- L204: reachability ------------------------------------------------

// Lowering scaffolding: blocks carrying no user operations (only bare
// branches or a valueless return) — join/bridge blocks the frontend
// fabricates. Unreachable ones are structural noise, not user code.
bool IsScaffolding(const ir::BasicBlock& b) {
  for (const ir::Instr& in : b.instrs) {
    if (in.op == Opcode::kBr) continue;
    if (in.op == Opcode::kRet && in.args.empty()) continue;
    return false;
  }
  return true;
}

void LintReachability(const ir::Function& f, DiagnosticSink& sink) {
  if (f.blocks.empty() || f.entry == ir::kNoBlock) return;
  std::vector<char> reached(f.blocks.size(), 0);
  std::vector<BlockId> stack{f.entry};
  while (!stack.empty()) {
    const BlockId b = stack.back();
    stack.pop_back();
    if (b < 0 || static_cast<std::size_t>(b) >= f.blocks.size()) continue;
    if (reached[static_cast<std::size_t>(b)]) continue;
    reached[static_cast<std::size_t>(b)] = 1;
    const ir::BasicBlock& bb = f.blocks[static_cast<std::size_t>(b)];
    if (bb.instrs.empty() || !ir::IsTerminator(bb.instrs.back().op)) continue;
    for (BlockId s : bb.successors()) stack.push_back(s);
  }
  for (const ir::BasicBlock& b : f.blocks) {
    if (reached[static_cast<std::size_t>(b.id)]) continue;
    if (b.instrs.empty() || IsScaffolding(b)) continue;
    std::ostringstream os;
    os << "unreachable code in function '" << f.name << "' (block " << b.id << ")";
    sink.AddWarning("L204", os.str(), LocOf(b.instrs.front().line));
  }
}

// --- L205 / L207: per-block constant propagation -----------------------
//
// One forward walk per block tracks which vregs hold compile-time
// constants — and, where the arithmetic folds, their concrete values
// (mirroring the interpreter's wrapping semantics so the proof matches
// what would actually execute). Const-ness feeds the constant-branch
// lint (L205); concrete values feed the array-bounds proof (L207).

// Folds a pure op whose inputs are all known. Returns nullopt when the
// value cannot be determined (e.g. division by zero — constant, but the
// "value" is a runtime error).
std::optional<std::int64_t> FoldPure(
    Opcode op, const std::vector<std::optional<std::int64_t>>& vals) {
  for (const auto& v : vals) {
    if (!v.has_value()) return std::nullopt;
  }
  switch (op) {
    case Opcode::kConst:
    case Opcode::kMov:
      return vals[0];
    case Opcode::kNeg:
      return WrapNeg(*vals[0]);
    case Opcode::kNot:
      return ~*vals[0];
    default:
      break;
  }
  if (vals.size() != 2) return std::nullopt;
  const std::int64_t a = *vals[0];
  const std::int64_t b = *vals[1];
  switch (op) {
    case Opcode::kAdd: return WrapAdd(a, b);
    case Opcode::kSub: return WrapSub(a, b);
    case Opcode::kMul: return WrapMul(a, b);
    case Opcode::kDiv: return b == 0 ? std::nullopt : std::optional<std::int64_t>(a / b);
    case Opcode::kMod: return b == 0 ? std::nullopt : std::optional<std::int64_t>(a % b);
    case Opcode::kAnd: return a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    case Opcode::kShl: return WrapShl(a, b);
    case Opcode::kShr:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >> (b & 63));
    case Opcode::kSar: return a >> (b & 63);
    case Opcode::kMin: return std::min(a, b);
    case Opcode::kMax: return std::max(a, b);
    case Opcode::kCmpEq: return static_cast<std::int64_t>(a == b);
    case Opcode::kCmpNe: return static_cast<std::int64_t>(a != b);
    case Opcode::kCmpLt: return static_cast<std::int64_t>(a < b);
    case Opcode::kCmpLe: return static_cast<std::int64_t>(a <= b);
    case Opcode::kCmpGt: return static_cast<std::int64_t>(a > b);
    case Opcode::kCmpGe: return static_cast<std::int64_t>(a >= b);
    default: return std::nullopt;
  }
}

void LintBlockConstants(const ir::Module& m, const ir::Function& f,
                        DiagnosticSink& sink) {
  for (const ir::BasicBlock& b : f.blocks) {
    // Vregs that are compile-time constants within this block; the
    // mapped value is the folded constant where determinable.
    std::unordered_map<ir::VregId, std::optional<std::int64_t>> consts;
    auto is_known = [&](const ir::Operand& a) {
      return a.is_imm() || (a.is_vreg() && consts.count(a.vreg));
    };
    auto value_of = [&](const ir::Operand& a) -> std::optional<std::int64_t> {
      if (a.is_imm()) return a.imm;
      if (a.is_vreg()) {
        const auto it = consts.find(a.vreg);
        if (it != consts.end()) return it->second;
      }
      return std::nullopt;
    };
    for (const ir::Instr& in : b.instrs) {
      // L207: a constant array index must stay inside the declared
      // length (the interpreter would fault; the schedulers and the
      // bus-traffic model would silently mis-estimate).
      if ((in.op == Opcode::kLoadElem || in.op == Opcode::kStoreElem) &&
          !in.args.empty() && in.sym != ir::kNoSymbol) {
        const std::optional<std::int64_t> idx = value_of(in.args[0]);
        const ir::Symbol& s = m.symbol(in.sym);
        if (idx.has_value() && s.kind == ir::SymbolKind::kArray &&
            (*idx < 0 || *idx >= static_cast<std::int64_t>(s.length))) {
          std::ostringstream os;
          os << "constant index " << *idx << " is out of bounds for array '"
             << s.name << "' of length " << s.length;
          sink.AddWarning("L207", os.str(), LocOf(in.line));
        }
        continue;
      }
      if (in.op == Opcode::kCondBr) {
        if (in.args.empty()) continue;  // L104 territory
        if (is_known(in.args[0])) {
          std::ostringstream os;
          os << "branch condition in function '" << f.name
             << "' is constant — the branch always goes the same way";
          sink.AddWarning("L205", os.str(), LocOf(in.line));
        }
        continue;
      }
      if (in.result == ir::kNoVreg) continue;
      const bool pure = in.op == Opcode::kConst || in.op == Opcode::kMov ||
                        in.op == Opcode::kNeg || in.op == Opcode::kNot ||
                        ir::IsBinaryArith(in.op) || ir::IsComparison(in.op);
      const bool inputs_const =
          std::all_of(in.args.begin(), in.args.end(), is_known);
      if (pure && inputs_const) {
        std::vector<std::optional<std::int64_t>> vals;
        vals.reserve(in.args.size());
        for (const ir::Operand& a : in.args) vals.push_back(value_of(a));
        consts[in.result] = FoldPure(in.op, vals);
      }
    }
  }
}

// --- L201: dead stores (liveness with the persistence edge) ------------

void LintDeadStores(const ir::Module& m, const ir::Function& f, UseClosure& closures,
                    DiagnosticSink& sink) {
  if (f.blocks.empty() || f.entry == ir::kNoBlock) return;

  // Scalars tracked precisely; arrays are element-granular and never
  // killed, so they need no liveness at all here.
  std::unordered_set<SymbolId> globals;  // global scalars: live at exit
  for (const ir::Symbol& s : m.symbols()) {
    if (s.kind == ir::SymbolKind::kScalar && s.owner < 0) globals.insert(s.id);
  }
  auto is_local_scalar = [&](SymbolId s) {
    return s >= 0 && static_cast<std::size_t>(s) < m.num_symbols() &&
           m.symbol(s).kind == ir::SymbolKind::kScalar && m.symbol(s).owner == f.id;
  };

  const std::size_t nblocks = f.blocks.size();
  std::vector<std::unordered_set<SymbolId>> live_in(nblocks), live_out(nblocks);

  // Backward transfer of one block starting from `live`; optionally
  // reports dead stores.
  auto transfer = [&](const ir::BasicBlock& b, std::unordered_set<SymbolId> live,
                      bool report) {
    for (auto it = b.instrs.rbegin(); it != b.instrs.rend(); ++it) {
      const ir::Instr& in = *it;
      switch (in.op) {
        case Opcode::kWriteVar:
          if (report && is_local_scalar(in.sym) && !IsParam(f, in.sym) &&
              !live.count(in.sym)) {
            std::ostringstream os;
            os << "value stored to '" << m.symbol(in.sym).name << "' is never read";
            sink.AddWarning("L201", os.str(), LocOf(in.line));
          }
          live.erase(in.sym);
          break;
        case Opcode::kReadVar:
        case Opcode::kLoadElem:
          live.insert(in.sym);
          break;
        case Opcode::kCall: {
          // The callee may read anything in its use closure; kill
          // nothing (its writes are conditional from here).
          const auto callee = m.FindFunction(m.symbol(in.sym).name);
          if (callee) {
            const auto& use = closures.Of(*callee);
            live.insert(use.begin(), use.end());
          }
          break;
        }
        default:
          break;
      }
    }
    return live;
  };

  // Fixpoint. Exit blocks see every global scalar live plus — the
  // persistence edge — the locals live at function entry (statics carry
  // values into the next invocation).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = nblocks; i-- > 0;) {
      const ir::BasicBlock& b = f.blocks[i];
      std::unordered_set<SymbolId> out;
      const bool has_term = !b.instrs.empty() && ir::IsTerminator(b.instrs.back().op);
      if (has_term && b.instrs.back().op == Opcode::kRet) {
        out = globals;
        for (SymbolId s :
             live_in[static_cast<std::size_t>(f.entry)]) {
          if (is_local_scalar(s)) out.insert(s);
        }
      } else if (has_term) {
        for (BlockId s : b.successors()) {
          if (s < 0 || static_cast<std::size_t>(s) >= nblocks) continue;
          const auto& in_s = live_in[static_cast<std::size_t>(s)];
          out.insert(in_s.begin(), in_s.end());
        }
      }
      std::unordered_set<SymbolId> in = transfer(b, out, /*report=*/false);
      if (out != live_out[i]) {
        live_out[i] = std::move(out);
        changed = true;
      }
      if (in != live_in[i]) {
        live_in[i] = std::move(in);
        changed = true;
      }
    }
  }

  for (std::size_t i = 0; i < nblocks; ++i) {
    (void)transfer(f.blocks[i], live_out[i], /*report=*/true);
  }
}

}  // namespace

void RunDataflowLints(const ir::Module& module, DiagnosticSink& sink,
                      const DataflowLintOptions& options) {
  const ModuleRefs refs = CollectRefs(module);
  LintReferences(module, refs, options.entry, sink);
  UseClosure closures(module);
  for (const ir::Function& f : module.functions()) {
    LintReachability(f, sink);
    LintBlockConstants(module, f, sink);
    LintDeadStores(module, f, closures, sink);
  }
}

}  // namespace lopass::analysis
