#pragma once

// AnalysisManager — pass orchestration and diagnostic policy for the
// static-analysis stack — plus LintProgram, the whole-pipeline driver
// behind `lopass lint`.
//
// LintProgram exercises every stage the partitioner would run, purely
// statically (no workload, no simulation): frontend + IR verification
// (L1xx), dataflow lints (L2xx), cluster decomposition + partition
// invariants (L3xx), list/force-directed scheduling of every hardware
// candidate across the designer resource sets + schedule validation
// (L4xx), and utilization/datapath/Verilog synthesis + netlist lints
// (L5xx). A defect anywhere in the pipeline comes back as one
// diagnostic with a stable L-code in a single pass.

#include <string>
#include <string_view>
#include <vector>

#include "analysis/codes.h"
#include "common/diag.h"

namespace lopass::analysis {

// Diagnostic policy: which codes are suppressed, which warnings are
// promoted to errors, and the final presentation order.
class AnalysisManager {
 public:
  // -Wno-CODE. Accepts exact codes ("L204") and classes ("L2xx").
  void Disable(std::string pattern) { disabled_.push_back(std::move(pattern)); }
  // -Werror / -Werror=CODE.
  void PromoteAllWarnings() { promote_all_ = true; }
  void Promote(std::string pattern) { promoted_.push_back(std::move(pattern)); }

  bool IsDisabled(std::string_view code) const;
  bool IsPromoted(std::string_view code) const;

  // Applies the policy: drops disabled codes, promotes warnings, and
  // sorts by (line, col, code) so reports are deterministic and follow
  // the source.
  std::vector<Diagnostic> Apply(std::vector<Diagnostic> diags) const;

 private:
  std::vector<std::string> disabled_;
  std::vector<std::string> promoted_;
  bool promote_all_ = false;
};

struct LintOptions {
  std::string entry = "main";
  int unroll = 1;
  // Drive decomposition/scheduling/synthesis and run the L3xx-L5xx
  // validators. Off limits linting to the frontend + IR (L1xx/L2xx).
  bool partition_checks = true;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;  // after policy
  std::size_t errors = 0;
  std::size_t warnings = 0;

  bool clean() const { return errors == 0; }
};

// Lints one DSL program through the whole pipeline. Never throws for
// bad input — every problem is a diagnostic.
LintReport LintProgram(std::string_view source, const AnalysisManager& manager,
                       const LintOptions& options = {});

}  // namespace lopass::analysis
