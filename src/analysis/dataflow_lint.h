#pragma once

// IR dataflow lints (L2xx) — warnings about suspicious-but-legal
// programs, computed over the module's named variables with the same
// gen/use machinery vocabulary as the Fig. 3 bus-traffic analysis.
//
// lopass memory semantics matter here: scalars and arrays are
// *statically allocated* and persist across calls (embedded style, no
// recursion). A local may therefore legally carry a value from one
// invocation of its function to the next — e.g. a filter's ring-buffer
// index that is read before it is written in every call after the
// first. The lints account for that:
//  - L200 only fires for locals that are never assigned *anywhere*,
//  - the L201 liveness problem adds a persistence edge from every exit
//    back to the entry (a local live at function entry is live at every
//    return).

#include <string>

#include "common/diag.h"
#include "ir/module.h"

namespace lopass::analysis {

struct DataflowLintOptions {
  // Entry function; exempt from the unused-function lint (L206).
  std::string entry = "main";
};

// Runs all L2xx lints over the module, appending findings (warnings)
// to the sink:
//   L200 read of a local scalar that is never assigned
//   L201 store to a local scalar whose value is never read (liveness
//        with the persistence edge; calls conservatively use their
//        callee's full use closure)
//   L202 variable never referenced
//   L203 array never referenced
//   L204 unreachable block (lowering scaffolding — bare branches and
//        valueless returns — is exempt)
//   L205 branch condition is constant
//   L206 function never called (entry exempt)
//   L207 constant array index out of bounds (per-block constant
//        propagation folds index arithmetic with the interpreter's
//        wrapping semantics, then proves 0 <= index < length)
void RunDataflowLints(const ir::Module& module, DiagnosticSink& sink,
                      const DataflowLintOptions& options = {});

}  // namespace lopass::analysis
