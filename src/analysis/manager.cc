#include "analysis/manager.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <tuple>

#include "analysis/dataflow_lint.h"
#include "asic/datapath.h"
#include "asic/netlist_check.h"
#include "asic/synthesis.h"
#include "asic/utilization.h"
#include "asic/verilog.h"
#include "common/error.h"
#include "core/cluster.h"
#include "core/dataflow.h"
#include "core/partition_check.h"
#include "dsl/lower.h"
#include "power/tech_library.h"
#include "sched/dfg.h"
#include "sched/force_directed.h"
#include "sched/list_scheduler.h"
#include "sched/resource_set.h"
#include "sched/validate.h"

namespace lopass::analysis {

bool AnalysisManager::IsDisabled(std::string_view code) const {
  for (const std::string& p : disabled_) {
    if (CodeMatchesPattern(code, p)) return true;
  }
  return false;
}

bool AnalysisManager::IsPromoted(std::string_view code) const {
  if (promote_all_) return true;
  for (const std::string& p : promoted_) {
    if (CodeMatchesPattern(code, p)) return true;
  }
  return false;
}

std::vector<Diagnostic> AnalysisManager::Apply(std::vector<Diagnostic> diags) const {
  std::vector<Diagnostic> out;
  out.reserve(diags.size());
  for (Diagnostic& d : diags) {
    if (IsDisabled(d.code)) continue;
    if (d.severity == Severity::kWarning && IsPromoted(d.code)) {
      d.severity = Severity::kError;
    }
    out.push_back(std::move(d));
  }
  std::stable_sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.loc.line, a.loc.col, a.code) <
           std::tie(b.loc.line, b.loc.col, b.code);
  });
  return out;
}

namespace {

// Statically drives decomposition, scheduling and synthesis over every
// hardware-candidate cluster and runs the L3xx-L5xx validators on the
// artifacts. Mirrors the partitioner's evaluation loop, minus anything
// needing a workload (the validators check structure, not energy).
void DrivePartitionChecks(const dsl::LoweredProgram& prog, const std::string& entry,
                          DiagnosticSink& sink) {
  const ir::Module& module = prog.module;
  const power::TechLibrary& lib = power::TechLibrary::Cmos6();

  core::ClusterChain chain;
  try {
    chain = core::DecomposeIntoClusters(module, prog.regions, entry);
  } catch (const Error& e) {
    sink.AddError("analysis.pipeline",
                  std::string("cluster decomposition failed: ") + e.what());
    return;
  }
  core::ValidateClusterChain(module, chain, sink);

  const core::BusTrafficAnalyzer traffic(module, chain, lib, 256 * 1024);
  core::ValidateGenUse(module, chain, traffic, sink);

  const std::vector<sched::ResourceSet> sets = sched::DefaultDesignerSets();

  for (const core::Cluster& c : chain.clusters) {
    if (!c.hw_candidate) continue;
    std::ostringstream cl;
    cl << "cluster " << c.id << " ('" << c.label << "')";
    const std::string cluster_str = cl.str();

    core::ValidateTransfers(module, c, traffic.Compute(c, {}), sink);
    core::ValidateHwSelection(chain, {c.id}, sink);

    // Stable storage for the DFGs/schedules ScheduledBlock points into.
    std::deque<sched::BlockDfg> dfgs;
    for (const auto& [fn, bid] : c.blocks) {
      dfgs.push_back(sched::BuildBlockDfg(module.function(fn).block(bid)));
    }

    // Force-directed schedules are resource-set independent.
    for (std::size_t i = 0; i < dfgs.size(); ++i) {
      if (dfgs[i].size() == 0) continue;
      try {
        const sched::FdsSchedule fds = sched::ForceDirectedSchedule(dfgs[i], lib, 0);
        sched::ValidateFdsSchedule(dfgs[i], fds, lib, sink,
                                   cluster_str + ", block " + std::to_string(i) +
                                       " (force-directed)");
      } catch (const Error& e) {
        sink.AddNote("analysis.pipeline",
                     cluster_str + ": force-directed scheduling skipped: " + e.what());
      }
    }

    for (const sched::ResourceSet& rs : sets) {
      std::deque<sched::BlockSchedule> schedules;
      std::vector<asic::ScheduledBlock> blocks;
      bool feasible = true;
      for (std::size_t i = 0; i < dfgs.size(); ++i) {
        try {
          schedules.push_back(sched::ListSchedule(dfgs[i], rs, lib));
        } catch (const Error& e) {
          // An op with no resource in this set: the partitioner treats
          // the candidate as infeasible under this set, not as an error.
          sink.AddNote("analysis.pipeline", cluster_str + " infeasible under set '" +
                                                rs.name + "': " + e.what());
          feasible = false;
          break;
        }
        sched::ValidateSchedule(dfgs[i], schedules.back(), rs, lib, sink,
                                /*chaining_enabled=*/false,
                                cluster_str + ", block " + std::to_string(i) +
                                    ", set '" + rs.name + "'");
        blocks.push_back(asic::ScheduledBlock{&dfgs[i], &schedules.back(), 1});
      }
      if (!feasible || blocks.empty()) continue;

      try {
        const asic::UtilizationResult util = asic::ComputeUtilization(blocks, rs, lib);
        const asic::Datapath dp = asic::BuildDatapath(blocks, util, lib);
        asic::ValidateDatapath(blocks, util, dp, sink,
                               cluster_str + ", set '" + rs.name + "'");
        const asic::AsicCore core =
            asic::Synthesize(c.label, rs.name, util, lib, 8, asic::SynthesisOptions{},
                             &dp);
        const std::string verilog = asic::EmitVerilog(core, dp);
        asic::ValidateVerilog(verilog, dp, 32, sink,
                              cluster_str + ", set '" + rs.name + "'");
      } catch (const Error& e) {
        sink.AddError("analysis.pipeline",
                      cluster_str + ": synthesis drive failed: " + e.what());
      }
    }
  }
}

}  // namespace

LintReport LintProgram(std::string_view source, const AnalysisManager& manager,
                       const LintOptions& options) {
  DiagnosticSink sink;

  auto finish = [&]() {
    LintReport report;
    report.diagnostics = manager.Apply(sink.Take());
    for (const Diagnostic& d : report.diagnostics) {
      if (d.severity == Severity::kError) ++report.errors;
      if (d.severity == Severity::kWarning) ++report.warnings;
    }
    return report;
  };

  // Frontend: parse (with recovery) + lower + sink-based IR verify, so
  // syntax errors, semantic errors and L1xx findings all land here.
  auto compiled = dsl::CompileToResult(source, options.unroll);
  for (const Diagnostic& d : compiled.diagnostics()) sink.Add(d);
  if (!compiled.ok()) return finish();

  const dsl::LoweredProgram& prog = compiled.value();
  RunDataflowLints(prog.module, sink, DataflowLintOptions{options.entry});

  if (options.partition_checks && prog.module.FindFunction(options.entry)) {
    DrivePartitionChecks(prog, options.entry, sink);
  }
  return finish();
}

}  // namespace lopass::analysis
