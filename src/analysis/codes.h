#pragma once

// Registry of the stable diagnostic codes (Lxxx) emitted by the static
// analysis stack. One entry per code: class, default severity, a short
// summary and a fix hint — the catalogue behind `lopass lint
// --list-codes` and docs/static_analysis.md.
//
// Classes:
//   L1xx  IR structural verification        (ir/verify.cc)
//   L2xx  IR dataflow lints                 (analysis/dataflow_lint.cc)
//   L3xx  partition / cluster invariants    (core/partition_check.cc)
//   L4xx  schedule validation               (sched/validate.cc)
//   L5xx  netlist / datapath / Verilog      (asic/netlist_check.cc)

#include <string>
#include <string_view>
#include <vector>

#include "common/diag.h"

namespace lopass::analysis {

struct CodeInfo {
  const char* code;            // "L201"
  Severity default_severity;   // before -Werror promotion
  const char* summary;         // one line, what the finding means
  const char* fix_hint;        // one line, how to address it
};

// All registered codes, ascending.
const std::vector<CodeInfo>& AllCodes();

// Lookup; nullptr when unknown.
const CodeInfo* FindCode(std::string_view code);

// True for "L204" (exact) and for class patterns "L2xx".
bool CodeMatchesPattern(std::string_view code, std::string_view pattern);

}  // namespace lopass::analysis
