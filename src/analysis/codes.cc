#include "analysis/codes.h"

namespace lopass::analysis {

const std::vector<CodeInfo>& AllCodes() {
  static const std::vector<CodeInfo> kCodes = {
      // --- L1xx: IR structural verification --------------------------
      {"L100", Severity::kError, "module has no functions",
       "define at least one function (the entry, usually 'main')"},
      {"L101", Severity::kError, "function has no blocks or no valid entry block",
       "give the function a body; the first block becomes the entry"},
      {"L102", Severity::kError, "block does not end in a terminator",
       "end every block with ret, br or condbr"},
      {"L103", Severity::kError, "terminator in the middle of a block",
       "split the block; instructions after a terminator never execute"},
      {"L104", Severity::kError, "operand count does not match the opcode",
       "emit the operation with the arity ir/opcode.h specifies"},
      {"L105", Severity::kError, "operand vreg out of range",
       "allocate vregs through FunctionBuilder::NewVreg"},
      {"L106", Severity::kError, "vreg used before defined within its block",
       "cross-block values must flow through named variables, not vregs"},
      {"L107", Severity::kError, "branch target out of range",
       "create the target block before emitting the branch"},
      {"L108", Severity::kError, "readvar/writevar does not name a scalar symbol",
       "use loadelem/storeelem for arrays; check the symbol id"},
      {"L109", Severity::kError, "loadelem/storeelem does not name an array symbol",
       "use readvar/writevar for scalars; check the symbol id"},
      {"L110", Severity::kError, "call target is not a function with a body",
       "declare the callee before lowering call sites to it"},
      {"L111", Severity::kError, "call arity does not match the callee",
       "pass exactly one argument per callee parameter"},

      // --- L2xx: IR dataflow lints ----------------------------------
      {"L200", Severity::kWarning, "local scalar is read but never assigned",
       "assign the variable before reading it (locals start at zero, but a "
       "never-written local is usually a logic error)"},
      {"L201", Severity::kWarning, "value stored to a local scalar is never read",
       "remove the dead store or use the stored value"},
      {"L202", Severity::kWarning, "variable is never used",
       "remove the declaration"},
      {"L203", Severity::kWarning, "array is never used",
       "remove the declaration"},
      {"L204", Severity::kWarning, "block is unreachable",
       "remove code after return/break, or fix the branch that skips it"},
      {"L205", Severity::kWarning, "branch condition is a constant",
       "the branch always goes one way; simplify the condition or drop the if"},
      {"L206", Severity::kWarning, "function is never called",
       "remove the function or call it from the entry"},
      {"L207", Severity::kWarning, "constant array index out of bounds",
       "a compile-time-constant index must satisfy 0 <= index < length; the "
       "interpreter would fault on it at run time"},

      // --- L3xx: partition / cluster invariants ---------------------
      {"L300", Severity::kError, "cluster references a nonexistent block",
       "decomposition bug: cluster block lists must index real blocks"},
      {"L301", Severity::kError, "cluster chain ordering broken",
       "chain members must occupy ids 0..len-1 equal to their chain position"},
      {"L302", Severity::kError, "chain members overlap",
       "each entry-function block belongs to exactly one chain member"},
      {"L303", Severity::kError, "cached gen/use sets disagree with recomputation",
       "dataflow bug: gen/use must match an independent worklist recomputation"},
      {"L304", Severity::kError, "bus-transfer estimate out of bounds",
       "transfer words must stay within the module's static data; check the "
       "synergy subtraction of Fig. 3 steps 2/4"},
      {"L305", Severity::kError, "HW selection is not exclusive",
       "a chain position may be mapped to the ASIC at most once, and only "
       "hardware candidates may be selected"},
      {"L306", Severity::kError, "cluster candidate flags inconsistent",
       "hw_candidate/contains_calls must agree with the cluster's blocks"},

      // --- L4xx: schedule validation --------------------------------
      {"L400", Severity::kError, "schedule does not cover the DFG exactly once",
       "scheduler bug: one scheduled op per DFG node"},
      {"L401", Severity::kError, "schedule violates a data dependence",
       "an op may not start before its predecessors finish (or chain legally)"},
      {"L402", Severity::kError, "schedule oversubscribes the resource set",
       "per-type concurrent ops must fit the designer's instance budget"},
      {"L403", Severity::kError, "reported control-step count wrong",
       "num_steps must equal the schedule's makespan"},
      {"L404", Severity::kError, "op latency/resource inconsistent with the library",
       "latency must come from the library spec of an admissible resource type"},
      {"L405", Severity::kError, "force-directed schedule invalid",
       "FDS must respect precedence, its latency budget and report a "
       "peak-covering allocation"},

      // --- L5xx: netlist / datapath / Verilog -----------------------
      {"L500", Severity::kError, "combinational loop through chained units",
       "operator chaining within one control step must stay acyclic"},
      {"L501", Severity::kError, "Verilog vector width mismatch",
       "declare datapath vectors [width-1:0]; the FSM state register is sized "
       "by the state count"},
      {"L502", Severity::kError, "unit instantiated or node bound more than once",
       "binding bug: one instance per (type, instance), one unit per op"},
      {"L503", Severity::kError, "unconnected or dangling unit",
       "every producer key must resolve and every working unit needs an input"},
      {"L504", Severity::kWarning, "input mux fan-in very large",
       "more than 32 steering legs; consider a bigger resource set so fewer "
       "ops share one instance"},
      {"L505", Severity::kError, "FSM state count wrong",
       "controller states must equal the schedules' steps plus one idle state"},
  };
  return kCodes;
}

const CodeInfo* FindCode(std::string_view code) {
  for (const CodeInfo& c : AllCodes()) {
    if (code == c.code) return &c;
  }
  return nullptr;
}

bool CodeMatchesPattern(std::string_view code, std::string_view pattern) {
  if (code == pattern) return true;
  // Class pattern "L2xx" matches every code sharing the hundreds digit.
  if (pattern.size() == 4 && code.size() == 4 && pattern[2] == 'x' && pattern[3] == 'x') {
    return code[0] == pattern[0] && code[1] == pattern[1];
  }
  return false;
}

}  // namespace lopass::analysis
