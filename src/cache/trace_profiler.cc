#include "cache/trace_profiler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/table.h"

namespace lopass::cache {

TraceProfiler::TraceProfiler(const power::TechLibrary& lib, std::uint32_t memory_bytes)
    : lib_(lib), memory_bytes_(memory_bytes) {}

GeometryResult TraceProfiler::Replay(const AccessTrace& trace,
                                     power::CacheGeometry geometry, WritePolicy policy,
                                     ReplacementPolicy replacement) const {
  GeometryResult r;
  r.geometry = geometry;
  r.policy = policy;

  CacheSim sim(geometry, policy, replacement);
  for (const AccessTrace::Access& a : trace.accesses) {
    sim.Access(a.address, a.is_write);
  }
  r.stats = sim.stats();

  const power::CacheEnergyModel cache_model(geometry, lib_.params());
  const power::MemoryEnergyModel mem_model(memory_bytes_, lib_.params());
  r.cache_energy = sim.TotalEnergy(cache_model);
  r.memory_energy =
      mem_model.read_energy() * static_cast<double>(sim.words_read_from_memory()) +
      mem_model.write_energy() * static_cast<double>(sim.words_written_to_memory()) +
      lib_.bus_read_energy() * static_cast<double>(sim.words_read_from_memory()) +
      lib_.bus_write_energy() * static_cast<double>(sim.words_written_to_memory());
  return r;
}

std::vector<GeometryResult> TraceProfiler::Sweep(const AccessTrace& trace,
                                                 std::uint32_t min_capacity,
                                                 std::uint32_t max_capacity,
                                                 std::uint32_t line_bytes) const {
  std::vector<GeometryResult> out;
  for (std::uint32_t cap = min_capacity; cap <= max_capacity; cap *= 2) {
    for (std::uint32_t assoc : {1u, 2u, 4u}) {
      if (cap < line_bytes * assoc) continue;
      out.push_back(Replay(trace, power::CacheGeometry{cap, line_bytes, assoc, 32}));
    }
  }
  std::sort(out.begin(), out.end(), [](const GeometryResult& a, const GeometryResult& b) {
    return a.total() < b.total();
  });
  return out;
}

std::string TraceProfiler::Render(const std::vector<GeometryResult>& results) {
  TextTable t;
  t.set_header({"capacity", "assoc", "miss rate", "cache E", "mem+bus E", "total E"});
  for (const GeometryResult& r : results) {
    char cap[32], mr[32];
    std::snprintf(cap, sizeof cap, "%uB", r.geometry.capacity_bytes);
    std::snprintf(mr, sizeof mr, "%.2f%%", 100.0 * r.stats.miss_rate());
    t.add_row({cap, std::to_string(r.geometry.associativity), mr,
               FormatEnergy(r.cache_energy), FormatEnergy(r.memory_energy),
               FormatEnergy(r.total())});
  }
  std::ostringstream os;
  os << "cache design-space sweep (sorted by total energy):\n" << t.ToString();
  return os.str();
}

}  // namespace lopass::cache
