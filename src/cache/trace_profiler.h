#pragma once

// Trace-driven cache design-space profiler.
//
// The paper's design flow (Fig. 5) feeds a "Cache Profiler" preceded by
// a "Trace Tool" (both from the WARTS suite [17]) into analytical cache
// energy models. This module reproduces that pair as a standalone
// utility: record a program's data-access trace once (via
// interp::TraceSink or any address stream), then replay it over a
// family of cache geometries to find the energy-optimal configuration
// for a given partition — exactly the per-partition cache adaptation
// footnote 4 calls for.

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_sim.h"
#include "power/cache_energy.h"
#include "power/tech_library.h"

namespace lopass::cache {

// A recorded word-granular access trace.
struct AccessTrace {
  struct Access {
    std::uint32_t address;
    bool is_write;
  };
  std::vector<Access> accesses;

  void Record(std::uint32_t address, bool is_write) {
    accesses.push_back({address, is_write});
  }
  std::size_t size() const { return accesses.size(); }
};

// Result of replaying a trace over one geometry.
struct GeometryResult {
  power::CacheGeometry geometry;
  WritePolicy policy = WritePolicy::kWriteBackAllocate;
  CacheStats stats;
  // Cache-internal energy plus next-level (memory + bus) energy for the
  // traffic the cache generated.
  Energy cache_energy;
  Energy memory_energy;
  Energy total() const { return cache_energy + memory_energy; }
};

class TraceProfiler {
 public:
  explicit TraceProfiler(const power::TechLibrary& lib = power::TechLibrary::Cmos6(),
                         std::uint32_t memory_bytes = 256 * 1024);

  // Replays `trace` over one configuration.
  GeometryResult Replay(const AccessTrace& trace, power::CacheGeometry geometry,
                        WritePolicy policy = WritePolicy::kWriteBackAllocate,
                        ReplacementPolicy replacement = ReplacementPolicy::kLru) const;

  // Sweeps capacities (powers of two within [min,max]) × associativity
  // {1,2,4}; returns all results sorted by total energy ascending.
  std::vector<GeometryResult> Sweep(const AccessTrace& trace,
                                    std::uint32_t min_capacity = 256,
                                    std::uint32_t max_capacity = 16384,
                                    std::uint32_t line_bytes = 16) const;

  // ASCII table of sweep results.
  static std::string Render(const std::vector<GeometryResult>& results);

 private:
  const power::TechLibrary& lib_;
  std::uint32_t memory_bytes_;
};

}  // namespace lopass::cache
