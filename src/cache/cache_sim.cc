#include "cache/cache_sim.h"

#include "common/error.h"

namespace lopass::cache {

namespace {
std::uint32_t Log2(std::uint32_t x) {
  std::uint32_t r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}
}  // namespace

CacheSim::CacheSim(power::CacheGeometry geometry, WritePolicy policy,
                   ReplacementPolicy replacement)
    : geometry_(geometry), policy_(policy), replacement_(replacement) {
  const std::uint32_t sets = geometry_.num_sets();
  LOPASS_CHECK(sets > 0, "cache must have at least one set");
  lines_.assign(static_cast<std::size_t>(sets) * geometry_.associativity, Line{});
  fifo_next_.assign(sets, 0);
  offset_bits_ = Log2(geometry_.line_bytes);
  index_bits_ = Log2(sets);
}

void CacheSim::Reset() {
  for (Line& l : lines_) l = Line{};
  std::fill(fifo_next_.begin(), fifo_next_.end(), 0u);
  stats_ = CacheStats{};
  tick_ = 0;
  rng_state_ = 0x243f6a8885a308d3ull;
  words_from_mem_ = 0;
  words_to_mem_ = 0;
}

bool CacheSim::Access(std::uint32_t address, bool is_write) {
  ++tick_;
  const std::uint32_t set = (address >> offset_bits_) & ((1u << index_bits_) - 1u);
  const std::uint32_t tag = address >> (offset_bits_ + index_bits_);
  Line* base = &lines_[static_cast<std::size_t>(set) * geometry_.associativity];
  const std::uint32_t words_per_line = geometry_.line_bytes / 4;

  // Lookup.
  for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.lru = tick_;
      if (is_write) {
        ++stats_.write_hits;
        if (policy_ == WritePolicy::kWriteBackAllocate) {
          l.dirty = true;
        } else {
          words_to_mem_ += 1;  // write-through
        }
      } else {
        ++stats_.read_hits;
      }
      return true;
    }
  }

  // Miss.
  if (is_write) {
    ++stats_.write_misses;
  } else {
    ++stats_.read_misses;
  }

  if (is_write && policy_ == WritePolicy::kWriteThroughNoAllocate) {
    words_to_mem_ += 1;
    return false;  // no allocation
  }

  // Choose a victim: invalid lines first, then per the replacement
  // policy.
  Line* victim = nullptr;
  for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
  }
  if (victim == nullptr) {
    switch (replacement_) {
      case ReplacementPolicy::kLru: {
        victim = base;
        for (std::uint32_t w = 1; w < geometry_.associativity; ++w) {
          if (base[w].lru < victim->lru) victim = &base[w];
        }
        break;
      }
      case ReplacementPolicy::kFifo: {
        std::uint32_t& ptr = fifo_next_[set];
        victim = &base[ptr];
        ptr = (ptr + 1) % geometry_.associativity;
        break;
      }
      case ReplacementPolicy::kRandom: {
        // xorshift64*: deterministic, portable.
        rng_state_ ^= rng_state_ >> 12;
        rng_state_ ^= rng_state_ << 25;
        rng_state_ ^= rng_state_ >> 27;
        const std::uint64_t r = rng_state_ * 0x2545F4914F6CDD1Dull;
        victim = &base[r % geometry_.associativity];
        break;
      }
    }
  }
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    words_to_mem_ += words_per_line;
  }
  victim->valid = true;
  victim->dirty = is_write && policy_ == WritePolicy::kWriteBackAllocate;
  victim->tag = tag;
  victim->lru = tick_;
  ++stats_.line_fills;
  words_from_mem_ += words_per_line;
  return false;
}

Energy CacheSim::TotalEnergy(const power::CacheEnergyModel& model) const {
  Energy e;
  e += model.read_hit_energy() * static_cast<double>(stats_.read_hits + stats_.read_misses);
  e += model.write_hit_energy() * static_cast<double>(stats_.write_hits + stats_.write_misses);
  e += model.line_fill_energy() * static_cast<double>(stats_.line_fills);
  e += model.writeback_energy() * static_cast<double>(stats_.writebacks);
  return e;
}

}  // namespace lopass::cache
