#pragma once

// Trace-driven set-associative cache simulator.
//
// Replaces the paper's WARTS-based cache profiler [17]: the instruction
// set simulator feeds it every fetch/data access, and the analytical
// energy model (power/cache_energy.h) converts the resulting access and
// miss counts into the per-core cache energies of Table 1.

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "power/cache_energy.h"

namespace lopass::cache {

enum class WritePolicy : std::uint8_t { kWriteBackAllocate, kWriteThroughNoAllocate };

enum class ReplacementPolicy : std::uint8_t {
  kLru,     // least recently used (the default, what the era's caches did)
  kFifo,    // round-robin per set
  kRandom,  // pseudo-random way (deterministic xorshift)
};

struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t writebacks = 0;   // dirty line evictions
  std::uint64_t line_fills = 0;

  std::uint64_t accesses() const {
    return read_hits + read_misses + write_hits + write_misses;
  }
  std::uint64_t misses() const { return read_misses + write_misses; }
  double miss_rate() const {
    const std::uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses()) / static_cast<double>(a);
  }
};

class CacheSim {
 public:
  CacheSim(power::CacheGeometry geometry, WritePolicy policy,
           ReplacementPolicy replacement = ReplacementPolicy::kLru);

  // Simulates one word access; returns true on hit. Miss bookkeeping
  // (fill, eviction, writeback) is recorded in stats().
  bool Access(std::uint32_t address, bool is_write);

  void Reset();

  const CacheStats& stats() const { return stats_; }
  const power::CacheGeometry& geometry() const { return geometry_; }
  WritePolicy policy() const { return policy_; }
  ReplacementPolicy replacement() const { return replacement_; }

  // Total energy dissipated inside this cache core for the recorded
  // access stream, under the given energy model.
  Energy TotalEnergy(const power::CacheEnergyModel& model) const;

  // Words transferred to/from the next memory level (line fills +
  // writebacks + write-throughs); used for memory/bus accounting.
  std::uint64_t words_read_from_memory() const { return words_from_mem_; }
  std::uint64_t words_written_to_memory() const { return words_to_mem_; }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint32_t tag = 0;
    std::uint64_t lru = 0;  // last-touch stamp
  };

  power::CacheGeometry geometry_;
  WritePolicy policy_;
  ReplacementPolicy replacement_;
  std::vector<Line> lines_;  // sets * assoc, row-major by set
  std::vector<std::uint32_t> fifo_next_;  // per-set round-robin pointer
  CacheStats stats_;
  std::uint64_t tick_ = 0;
  std::uint64_t rng_state_ = 0x243f6a8885a308d3ull;  // for kRandom
  std::uint32_t offset_bits_ = 0;
  std::uint32_t index_bits_ = 0;
  std::uint64_t words_from_mem_ = 0;
  std::uint64_t words_to_mem_ = 0;
};

}  // namespace lopass::cache
