#include "apps/app.h"

#include "common/prng.h"

namespace lopass::apps {

// "an engine control algorithm" — a closed control loop per timestep:
// sensor FIR filtering (the hot kernel, factored into a function so it
// forms a *function cluster*, §3.2), ignition-advance map lookup with
// bilinear interpolation, and a PID controller with saturation logic.
// Paper: -31.27% energy, -24.26% time — the most modest win of the
// suite, because the hot cluster is only ~1/3 of the application.

namespace {

const char* kSource = R"dsl(
// --- engine: sensor filter + map interpolation + PID ----------------
var steps;
var sseed;
array fir[16];      // filter coefficients (Q8)
array advmap[256];  // 16x16 ignition advance map
var kp; var ki; var kd;
var integ; var preverr; var u;
var outsum;

func filter(sample) {
  // 8-tap FIR over a ring window kept local to the filter core. The
  // taps are unrolled (fixed filter length), giving the synthesized
  // datapath one dense block with high resource utilization.
  array win[8];
  var wi;
  var acc;
  win[wi] = sample;
  wi = (wi + 1) & 7;
  acc = win[wi] * fir[0]
      + win[(wi + 1) & 7] * fir[1]
      + win[(wi + 2) & 7] * fir[2]
      + win[(wi + 3) & 7] * fir[3]
      + win[(wi + 4) & 7] * fir[4]
      + win[(wi + 5) & 7] * fir[5]
      + win[(wi + 6) & 7] * fir[6]
      + win[(wi + 7) & 7] * fir[7];
  return acc >> 8;
}

func main() {
  var t;
  for (t = 0; t < steps; t = t + 1) {
    var sample; var f;
    var rpm; var load; var xi; var yi; var fx; var fy;
    var a00; var a01; var a10; var a11; var top; var bot; var adv;
    var err; var deriv;

    // Sensor input (noisy synthetic channel).
    sseed = (sseed * 75 + 74) & 65535;
    sample = sseed & 1023;

    // Hot function cluster: FIR filtering.
    f = filter(sample);

    // Ignition-advance map with bilinear interpolation.
    rpm = f & 255;
    load = (f >> 2) & 255;
    xi = rpm >> 4;
    fx = rpm & 15;
    yi = load >> 4;
    fy = load & 15;
    a00 = advmap[(yi << 4) + xi];
    a01 = advmap[(yi << 4) + min(xi + 1, 15)];
    a10 = advmap[(min(yi + 1, 15) << 4) + xi];
    a11 = advmap[(min(yi + 1, 15) << 4) + min(xi + 1, 15)];
    top = a00 * (16 - fx) + a01 * fx;
    bot = a10 * (16 - fx) + a11 * fx;
    adv = (top * (16 - fy) + bot * fy) >> 8;

    // PID with saturation.
    err = adv - u;
    integ = integ + err;
    if (integ > 4096) { integ = 4096; }
    if (integ < 0 - 4096) { integ = 0 - 4096; }
    deriv = err - preverr;
    preverr = err;
    u = (kp * err + (ki * integ) / 16 + kd * deriv) >> 4;
    if (u > 255) { u = 255; }
    if (u < 0 - 255) { u = 0 - 255; }

    // Lambda (air/fuel) correction: software-only trim logic.
    var lam; var trim;
    lam = (sample * 147) / (abs(u) + 32);
    trim = lam - 450;
    if (trim > 64) { trim = 64; }
    if (trim < 0 - 64) { trim = 0 - 64; }
    outsum = outsum + u + trim / 4;
  }
  return outsum;
}
)dsl";

}  // namespace

Application MakeEngine() {
  Application app;
  app.name = "engine";
  app.description = "engine control: sensor FIR + ignition map interpolation + PID";
  app.dsl_source = kSource;
  app.full_scale = 2;
  app.workload = [](int scale) {
    core::Workload w;
    w.setup = [scale](core::DataTarget& t) {
      t.SetScalar("steps", 150 * scale);
      t.SetScalar("sseed", 0x5eed);
      t.SetScalar("kp", 22);
      t.SetScalar("ki", 5);
      t.SetScalar("kd", 9);
      // Low-pass FIR (Q8, sums to ~256).
      std::vector<std::int64_t> fir = {9, 24, 41, 54, 54, 41, 24, 9};
      t.FillArray("fir", fir);
      Prng rng(0xe791e);
      std::vector<std::int64_t> map;
      for (int y = 0; y < 16; ++y) {
        for (int x = 0; x < 16; ++x) {
          map.push_back(10 + x * 3 + y * 2 + rng.next_in(0, 5));
        }
      }
      t.FillArray("advmap", map);
    };
    return w;
  };
  app.paper = {-31.27, -24.26};
  return app;
}

}  // namespace lopass::apps
