#pragma once

// The benchmark applications of the paper's evaluation (§4):
//   3d     — 3D vector computation for motion pictures
//   MPG    — MPEG-II encoder kernels
//   ckey   — complex chroma-key algorithm
//   digs   — smoothing algorithm for digital images
//   engine — engine control algorithm
//   trick  — trick animation algorithm
//
// The originals are proprietary NEC applications; these are
// re-implementations in the lopass behavioral DSL whose *profile
// shapes* (hot-cluster fraction, memory intensity, operation mix,
// cluster granularity) reproduce what the paper reports for each
// application (see DESIGN.md §2 and EXPERIMENTS.md).

#include <functional>
#include <string>
#include <vector>

#include "core/partitioner.h"
#include "core/workload.h"

namespace lopass::apps {

// Paper-reported numbers for one application (Table 1).
struct PaperReference {
  double saving_percent = 0.0;      // energy, e.g. -35.21
  double time_change_percent = 0.0; // execution time, e.g. -17.29
};

struct Application {
  std::string name;
  std::string description;
  std::string dsl_source;
  // Builds the input workload; `scale` >= 1 multiplies the problem
  // size (tests use small scales, the Table 1 bench uses full_scale).
  std::function<core::Workload(int scale)> workload;
  int full_scale = 1;
  // Per-application partitioner settings (designer interaction: F
  // factor, resource sets, cache adaptation; §3.5 last paragraph).
  core::PartitionOptions options;
  PaperReference paper;
};

// Individual applications.
Application Make3d();
Application MakeMpg();
Application MakeCkey();
Application MakeDigs();
Application MakeEngine();
Application MakeTrick();

// All six, in the paper's Table 1 order.
std::vector<Application> AllApplications();

// Finds one by name; throws if unknown.
Application GetApplication(const std::string& name);

// Compiles the app, runs the full partitioning flow at the given scale
// and returns the result.
core::PartitionResult RunApplication(const Application& app, int scale = 0);

}  // namespace lopass::apps
