#include "apps/app.h"

#include <algorithm>

#include "common/prng.h"

namespace lopass::apps {

// "an MPEGII encoder" — the encoder's three compute kernels: full-
// search block motion estimation (hot, SAD over a +-1 window), an 8x8
// separable transform (DCT stand-in with a Q10 coefficient matrix) and
// coefficient quantization. Profile shape: motion estimation carries
// roughly half the energy. Paper: -43.20% energy, -52.90% time.

namespace {

const char* kSource = R"dsl(
// --- MPG: MPEG-II encoder kernels on a 64x64 luma frame -------------
var mbs;      // number of 16x16 macroblocks (4x4 grid)
var range;    // motion search range (+-range)
var qp;       // quantizer step
var bits;

array cur[4096];
array ref[4096];
array mvx[16];
array mvy[16];
array blk[64];
array tmp[64];
array coef[4096];
array ctab[64];   // 8x8 transform matrix, Q10

func main() {
  var mb;

  // Cluster 1 (loop): full-search motion estimation (hot).
  for (mb = 0; mb < mbs; mb = mb + 1) {
    var mbx; var mby; var bestsad; var bestdx; var bestdy;
    var dy; var dx; var py; var px;
    mbx = (mb & 3) << 4;
    mby = (mb >> 2) << 4;
    bestsad = 16777215;
    bestdx = 0;
    bestdy = 0;
    for (dy = 0 - range; dy <= range; dy = dy + 1) {
      for (dx = 0 - range; dx <= range; dx = dx + 1) {
        var sad;
        sad = 0;
        for (py = 0; py < 16; py = py + 1) {
          var crow; var rrow;
          crow = (mby + py) << 6;
          rrow = min(max(mby + py + dy, 0), 63) << 6;
          for (px = 0; px < 16; px = px + 1) {
            var cx; var rx;
            cx = mbx + px;
            rx = min(max(cx + dx, 0), 63);
            sad = sad + abs(cur[crow + cx] - ref[rrow + rx]);
          }
        }
        if (sad < bestsad) {
          bestsad = sad;
          bestdx = dx;
          bestdy = dy;
        }
      }
    }
    mvx[mb] = bestdx;
    mvy[mb] = bestdy;
  }

  // Cluster 2 (loop): separable 8x8 transform over the frame.
  var b;
  for (b = 0; b < 64; b = b + 1) {
    var bx; var by; var i; var j; var k;
    bx = (b & 7) << 3;
    by = (b >> 3) << 3;
    for (i = 0; i < 8; i = i + 1) {
      for (j = 0; j < 8; j = j + 1) {
        blk[(i << 3) + j] = cur[((by + i) << 6) + bx + j];
      }
    }
    // Row pass: tmp = C * blk.
    for (i = 0; i < 8; i = i + 1) {
      for (j = 0; j < 8; j = j + 1) {
        var s;
        s = 0;
        for (k = 0; k < 8; k = k + 1) {
          s = s + ctab[(i << 3) + k] * blk[(k << 3) + j];
        }
        tmp[(i << 3) + j] = s >> 10;
      }
    }
    // Column pass: out = tmp * C^T.
    for (i = 0; i < 8; i = i + 1) {
      for (j = 0; j < 8; j = j + 1) {
        var s2;
        s2 = 0;
        for (k = 0; k < 8; k = k + 1) {
          s2 = s2 + tmp[(i << 3) + k] * ctab[(j << 3) + k];
        }
        coef[((by + i) << 6) + bx + j] = s2 >> 10;
      }
    }
  }

  // Cluster 3 (loop): quantization and rate estimate.
  var q;
  bits = 0;
  for (q = 0; q < 4096; q = q + 1) {
    var c; var lvl;
    c = coef[q];
    lvl = c / qp;
    if (lvl < 0) {
      lvl = 0 - lvl;
    }
    bits = bits + min(lvl, 31);
    coef[q] = lvl * qp;
  }

  // Cluster 4 (loop): reconstruction (inverse transform) for the
  // encoder's local decode loop.
  var rb;
  for (rb = 0; rb < 64; rb = rb + 1) {
    var rbx; var rby; var ri; var rj; var rk;
    rbx = (rb & 7) << 3;
    rby = (rb >> 3) << 3;
    for (ri = 0; ri < 8; ri = ri + 1) {
      for (rj = 0; rj < 8; rj = rj + 1) {
        blk[(ri << 3) + rj] = coef[((rby + ri) << 6) + rbx + rj];
      }
    }
    for (ri = 0; ri < 8; ri = ri + 1) {
      for (rj = 0; rj < 8; rj = rj + 1) {
        var rs;
        rs = 0;
        for (rk = 0; rk < 8; rk = rk + 1) {
          rs = rs + ctab[(rk << 3) + ri] * blk[(rk << 3) + rj];
        }
        tmp[(ri << 3) + rj] = rs >> 10;
      }
    }
    for (ri = 0; ri < 8; ri = ri + 1) {
      for (rj = 0; rj < 8; rj = rj + 1) {
        var rs2;
        rs2 = 0;
        for (rk = 0; rk < 8; rk = rk + 1) {
          rs2 = rs2 + tmp[(ri << 3) + rk] * ctab[(rk << 3) + rj];
        }
        ref[((rby + ri) << 6) + rbx + rj] = min(max(rs2 >> 10, 0), 255);
      }
    }
  }
  return bits;
}
)dsl";

}  // namespace

Application MakeMpg() {
  Application app;
  app.name = "MPG";
  app.description = "MPEG-II encoder kernels (motion estimation, transform, quantization)";
  app.dsl_source = kSource;
  app.full_scale = 4;
  app.workload = [](int scale) {
    core::Workload w;
    w.setup = [scale](core::DataTarget& t) {
      t.SetScalar("mbs", std::min(16, 4 * scale));
      t.SetScalar("range", 2);
      t.SetScalar("qp", 12);
      Prng rng(0x4d5047);
      std::vector<std::int64_t> c, r;
      for (int i = 0; i < 4096; ++i) {
        const std::int64_t v = rng.next_in(0, 255);
        c.push_back(v);
        // Reference frame: the same content shifted with noise, so the
        // motion search has a real optimum.
        r.push_back(std::clamp<std::int64_t>(v + rng.next_in(-12, 12), 0, 255));
      }
      t.FillArray("cur", c);
      t.FillArray("ref", r);
      // A DCT-like symmetric Q10 matrix.
      std::vector<std::int64_t> ct;
      for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < 8; ++j) {
          const int base = (i == 0) ? 362 : 512;
          const int sign = ((i * (2 * j + 1) / 8) % 2 == 0) ? 1 : -1;
          ct.push_back(sign * (base - 16 * ((i * (2 * j + 1)) % 8)));
        }
      }
      t.FillArray("ctab", ct);
    };
    return w;
  };
  app.paper = {-43.20, -52.90};
  return app;
}

}  // namespace lopass::apps
