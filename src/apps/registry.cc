#include "apps/app.h"

#include "common/error.h"
#include "dsl/lower.h"

namespace lopass::apps {

std::vector<Application> AllApplications() {
  std::vector<Application> apps;
  apps.push_back(Make3d());
  apps.push_back(MakeMpg());
  apps.push_back(MakeCkey());
  apps.push_back(MakeDigs());
  apps.push_back(MakeEngine());
  apps.push_back(MakeTrick());
  return apps;
}

Application GetApplication(const std::string& name) {
  for (Application& a : AllApplications()) {
    if (a.name == name) return a;
  }
  LOPASS_THROW("unknown application '" + name + "'");
}

core::PartitionResult RunApplication(const Application& app, int scale) {
  if (scale <= 0) scale = app.full_scale;
  dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);
  core::Partitioner partitioner(prog.module, prog.regions, app.options);
  return partitioner.Run(app.workload(scale));
}

}  // namespace lopass::apps
