#include "apps/app.h"

#include <algorithm>

#include "common/prng.h"

namespace lopass::apps {

// "a complex chroma-key algorithm" — per-pixel soft keying of a
// procedurally generated foreground against a generated background.
// The paper notes ckey is the least memory-intensive application (its
// cache/memory energy contribution "could be neglected"): pixels are
// produced and consumed in registers, there is no frame buffer. The
// keying loop carries ~85% of the energy; a separate spill-suppression
// pass stays in software. Paper: -76.81% energy, -74.98% time.

namespace {

const char* kSource = R"dsl(
// --- ckey: soft chroma keying on a procedural pixel stream ----------
var npix;
var kr; var kg; var kb;       // key color
var tol1; var tol2;           // inner/outer tolerance (squared distance)
var inv;                      // 65536 / (tol2 - tol1), precomputed
var seed1; var seed2;
var acc;
var spill;

func main() {
  var i;

  // Cluster 1 (leaf): derived constants.
  inv = 65536 / (tol2 - tol1);

  // Cluster 2 (loop): the keying kernel (hot).
  for (i = 0; i < npix; i = i + 1) {
    var r; var g; var b;
    var br; var bg; var bb;
    var dr; var dg; var db;
    var dist; var alpha; var ialpha;

    // Procedural foreground and background pixels (LCG streams).
    seed1 = (seed1 * 1103515245 + 12345) & 2147483647;
    r = (seed1 >> 16) & 255;
    g = (seed1 >> 8) & 255;
    b = seed1 & 255;
    seed2 = (seed2 * 69069 + 1) & 2147483647;
    br = (seed2 >> 16) & 255;
    bg = (seed2 >> 8) & 255;
    bb = seed2 & 255;

    // Squared chroma distance to the key color.
    dr = r - kr;
    dg = g - kg;
    db = b - kb;
    dist = dr * dr + dg * dg + db * db;

    // Soft alpha ramp between tol1 and tol2.
    if (dist < tol1) {
      alpha = 0;
    } else {
      if (dist > tol2) {
        alpha = 256;
      } else {
        alpha = ((dist - tol1) * inv) >> 16;
      }
    }
    ialpha = 256 - alpha;

    // Blend foreground over background, accumulate the output checksum.
    acc = acc + ((alpha * r + ialpha * br) >> 8)
              + ((alpha * g + ialpha * bg) >> 8)
              + ((alpha * b + ialpha * bb) >> 8);
  }

  // Cluster 3 (loop): spill suppression statistics pass (software).
  spill = 0;
  for (i = 0; i < npix; i = i + 1) {
    var s; var gg; var m;
    seed1 = (seed1 * 1103515245 + 12345) & 2147483647;
    s = seed1 & 255;
    gg = (seed1 >> 8) & 255;
    m = max(s, gg);
    if (gg > s) {
      spill = spill + (gg - s) * m;
    } else {
      spill = spill + (s - gg);
    }
  }
  return acc + spill;
}
)dsl";

}  // namespace

Application MakeCkey() {
  Application app;
  app.name = "ckey";
  app.description = "complex chroma-key algorithm on a procedural pixel stream";
  app.dsl_source = kSource;
  app.full_scale = 16;
  app.workload = [](int scale) {
    core::Workload w;
    w.setup = [scale](core::DataTarget& t) {
      t.SetScalar("npix", 4096 * scale);
      t.SetScalar("kr", 30);
      t.SetScalar("kg", 200);
      t.SetScalar("kb", 40);
      t.SetScalar("tol1", 2500);
      t.SetScalar("tol2", 14400);
      t.SetScalar("seed1", 0x1234567);
      t.SetScalar("seed2", 0x89abcd);
    };
    return w;
  };
  app.paper = {-76.81, -74.98};
  return app;
}

}  // namespace lopass::apps
