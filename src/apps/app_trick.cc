#include "apps/app.h"

namespace lopass::apps {

// "a trick animation algorithm" — a parametric camera/object chase
// animation evaluated per frame: critically damped easing toward a
// moving target, nonlinear friction, and perspective projection. The
// frame loop is one long *serial* division chain, so the whole
// application is a single big cluster with no small high-U_R
// sub-clusters — exactly the case the paper reports for "trick": huge
// energy savings (-94.79%) at the cost of a *slower* execution
// (+69.64%), because the ASIC's area-efficient sequential divider
// serializes the recurrence.

namespace {

const char* kSource = R"dsl(
// --- trick: parametric chase animation, one divide-chain per frame --
var frames;
var x; var y; var z;
var vx; var vy; var vz;
var tx; var ty; var tz;
var damp; var zbase;
var chk;
var sx; var sy;

func main() {
  var f;
  for (f = 0; f < frames; f = f + 1) {
    var d; var dd;

    // Damped chase toward the target (three divides).
    vx = vx + (tx - x) / damp;
    vy = vy + (ty - y) / damp;
    vz = vz + (tz - z) / damp;

    // Friction on the velocity chain (three divides).
    vx = vx - vx / 8;
    vy = vy - vy / 8;
    vz = vz - vz / 8;

    x = x + vx;
    y = y + vy;
    z = z + vz;

    // The target itself eases toward the object (three divides).
    tx = tx + (x - tx) / 64;
    ty = ty + (y - ty) / 64;
    tz = tz + (z - tz) / 64;

    // Perspective projection (three divides).
    d = z + zbase;
    if (d < 8) {
      d = 8;
    }
    dd = d / 128 + 1;
    sx = x / dd;
    sy = y / dd;
    chk = chk + sx - sy;
  }
  return chk;
}
)dsl";

}  // namespace

Application MakeTrick() {
  Application app;
  app.name = "trick";
  app.description = "trick animation: damped chase with perspective projection";
  app.dsl_source = kSource;
  app.full_scale = 8;
  app.workload = [](int scale) {
    core::Workload w;
    w.setup = [scale](core::DataTarget& t) {
      t.SetScalar("frames", 1000 * scale);
      t.SetScalar("x", 0); t.SetScalar("y", 0); t.SetScalar("z", 4096);
      t.SetScalar("tx", 900); t.SetScalar("ty", -500); t.SetScalar("tz", 1400);
      t.SetScalar("damp", 24);
      t.SetScalar("zbase", 256);
    };
    return w;
  };
  app.paper = {-94.79, 69.64};
  return app;
}

}  // namespace lopass::apps
