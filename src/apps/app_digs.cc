#include "apps/app.h"

#include <algorithm>

#include "common/prng.h"

namespace lopass::apps {

// "a smoothing algorithm for digital images" — a 3x3 weighted
// convolution over a 128-wide image, plus a border pass and a checksum
// pass. The convolution nest is essentially the whole application
// (paper: -94.12% energy at the largest hardware cost of the suite,
// just under 16k cells, and -42.64% time).

namespace {

const char* kSource = R"dsl(
// --- digs: 3x3 weighted smoothing, 128xH image, Q4 kernel ----------
var w;          // fixed at 128 (row stride uses << 7)
var h;
var k0; var k1; var k2;
var k3; var k4; var k5;
var k6; var k7; var k8;

array img[16384];
array out[16384];
var checksum;

func main() {
  var x; var y;

  // Cluster 1 (loop): copy the border rows/columns unchanged.
  for (x = 0; x < w; x = x + 1) {
    out[x] = img[x];
    out[((h - 1) << 7) + x] = img[((h - 1) << 7) + x];
  }

  // Cluster 2 (loop): the smoothing nest (hot).
  for (y = 1; y < h - 1; y = y + 1) {
    var row; var up; var dn;
    row = y << 7;
    up = row - 128;
    dn = row + 128;
    for (x = 1; x < w - 1; x = x + 1) {
      var acc;
      acc = img[up + x - 1] * k0 + img[up + x] * k1 + img[up + x + 1] * k2;
      acc = acc + img[row + x - 1] * k3 + img[row + x] * k4 + img[row + x + 1] * k5;
      acc = acc + img[dn + x - 1] * k6 + img[dn + x] * k7 + img[dn + x + 1] * k8;
      out[row + x] = acc >> 4;
    }
  }

  // Cluster 3 (loop): sparse checksum of the interior (strided).
  checksum = 0;
  for (y = 1; y < h - 1; y = y + 1) {
    var row2;
    row2 = y << 7;
    for (x = 1; x < w - 1; x = x + 8) {
      checksum = checksum + out[row2 + x];
    }
  }
  return checksum;
}
)dsl";

}  // namespace

Application MakeDigs() {
  Application app;
  app.name = "digs";
  app.description = "3x3 smoothing filter for digital images";
  app.dsl_source = kSource;
  app.full_scale = 4;
  app.workload = [](int scale) {
    core::Workload w;
    w.setup = [scale](core::DataTarget& t) {
      const int h = std::min(128, 24 * scale);
      t.SetScalar("w", 128);
      t.SetScalar("h", h);
      // Gaussian-ish Q4 kernel (sums to 16).
      t.SetScalar("k0", 1); t.SetScalar("k1", 2); t.SetScalar("k2", 1);
      t.SetScalar("k3", 2); t.SetScalar("k4", 4); t.SetScalar("k5", 2);
      t.SetScalar("k6", 1); t.SetScalar("k7", 2); t.SetScalar("k8", 1);
      Prng rng(0xd195);
      std::vector<std::int64_t> pix;
      for (int i = 0; i < 128 * h; ++i) pix.push_back(rng.next_in(0, 255));
      t.FillArray("img", pix);
    };
    return w;
  };
  app.paper = {-94.12, -42.64};
  return app;
}

}  // namespace lopass::apps
