#include "apps/app.h"

#include <algorithm>

#include "common/prng.h"

namespace lopass::apps {

// "an algorithm for computing 3D vectors of a motion picture" — a
// fixed-point 3D vertex pipeline: rotate/translate a vertex set (hot,
// multiplier-rich, data parallel), perspective-project it (division
// per vertex) and compute the screen bounding box (min/max scan).
// Profile shape: the rotation cluster carries roughly 40% of the
// energy; paper result: -35.21% energy, -17.29% time.

namespace {

const char* kSource = R"dsl(
// --- 3d: fixed-point 3D vertex transformation (Q12 arithmetic) ------
var n;
var m00; var m01; var m02;
var m10; var m11; var m12;
var m20; var m21; var m22;
var tx; var ty; var tz;
var zoom; var zbase;

array px[512]; array py[512]; array pz[512];
array rx[512]; array ry[512]; array rz[512];
array sx[512]; array sy[512];

var minx; var maxx; var miny; var maxy;

func main() {
  var i;

  // Cluster 1 (loop): rotate + translate every vertex. 3x3 matrix in
  // Q12; nine multiplies per vertex, fully data parallel.
  for (i = 0; i < n; i = i + 1) {
    var x; var y; var z;
    x = px[i];
    y = py[i];
    z = pz[i];
    rx[i] = ((m00 * x + m01 * y + m02 * z) >> 12) + tx;
    ry[i] = ((m10 * x + m11 * y + m12 * z) >> 12) + ty;
    rz[i] = ((m20 * x + m21 * y + m22 * z) >> 12) + tz;
  }

  // Cluster 2 (loop): perspective projection, one divide per axis.
  for (i = 0; i < n; i = i + 1) {
    var d;
    d = rz[i] + zbase;
    if (d < 16) {
      d = 16;
    }
    sx[i] = (rx[i] * zoom) / d;
    sy[i] = (ry[i] * zoom) / d;
  }

  // Cluster 3 (loop): per-vertex diffuse lighting term (divides).
  for (i = 0; i < n; i = i + 1) {
    var nz; var lum;
    nz = rz[i] - tz;
    if (nz < 1) {
      nz = 1;
    }
    lum = (255 * 4096) / (nz * 16 + 4096);
    sx[i] = (sx[i] * lum) >> 8;
    sy[i] = (sy[i] * lum) >> 8;
  }

  // Cluster 4 (loop): screen-space bounding box.
  minx = 8388607; maxx = 0 - 8388607;
  miny = 8388607; maxy = 0 - 8388607;
  for (i = 0; i < n; i = i + 1) {
    minx = min(minx, sx[i]);
    maxx = max(maxx, sx[i]);
    miny = min(miny, sy[i]);
    maxy = max(maxy, sy[i]);
  }
  return (maxx - minx) + (maxy - miny);
}
)dsl";

}  // namespace

Application Make3d() {
  Application app;
  app.name = "3d";
  app.description = "3D vector computation for a motion picture (fixed point)";
  app.dsl_source = kSource;
  app.full_scale = 1;
  app.workload = [](int scale) {
    core::Workload w;
    w.setup = [scale](core::DataTarget& t) {
      const int n = std::min(512, 256 * scale);
      Prng rng(0x3d3d3d);
      t.SetScalar("n", n);
      // A Q12 rotation-ish matrix (rows roughly unit length).
      t.SetScalar("m00", 3547); t.SetScalar("m01", -2048); t.SetScalar("m02", 0);
      t.SetScalar("m10", 2048); t.SetScalar("m11", 3547);  t.SetScalar("m12", 0);
      t.SetScalar("m20", 0);    t.SetScalar("m21", 0);     t.SetScalar("m22", 4096);
      t.SetScalar("tx", 120); t.SetScalar("ty", -64); t.SetScalar("tz", 4000);
      t.SetScalar("zoom", 1024);
      t.SetScalar("zbase", 512);
      std::vector<std::int64_t> xs, ys, zs;
      for (int i = 0; i < n; ++i) {
        xs.push_back(rng.next_in(-2000, 2000));
        ys.push_back(rng.next_in(-2000, 2000));
        zs.push_back(rng.next_in(100, 2000));
      }
      t.FillArray("px", xs);
      t.FillArray("py", ys);
      t.FillArray("pz", zs);
    };
    return w;
  };
  app.paper = {-35.21, -17.29};
  return app;
}

}  // namespace lopass::apps
