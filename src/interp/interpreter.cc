#include "interp/interpreter.h"

#include <algorithm>

#include "common/error.h"
#include "common/fault.h"
#include "common/units.h"

namespace lopass::interp {

using ir::Opcode;
using ir::Operand;
using ir::Symbol;
using ir::SymbolKind;

Interpreter::Interpreter(const ir::Module& module) : module_(module) {
  LOPASS_CHECK(module_.data_size_bytes() % 4 == 0, "data space must be word aligned");
  Reset();
}

void Interpreter::Reset() {
  memory_.assign(module_.data_size_bytes() / 4, 0);
  for (const Symbol& s : module_.symbols()) {
    if (s.kind == SymbolKind::kScalar && s.init != 0) {
      memory_[s.address / 4] = s.init;
    }
  }
  profile_.block_counts.clear();
  profile_.block_counts.resize(module_.num_functions());
  for (std::size_t f = 0; f < module_.num_functions(); ++f) {
    profile_.block_counts[f].assign(
        module_.function(static_cast<ir::FunctionId>(f)).blocks.size(), 0);
  }
  profile_.total_dynamic_ops = 0;
  profile_.call_count = 0;
  steps_ = 0;
}

void Interpreter::SetScalar(ir::SymbolId sym, std::int64_t value) {
  const Symbol& s = module_.symbol(sym);
  LOPASS_CHECK(s.kind == SymbolKind::kScalar, "SetScalar needs a scalar");
  memory_[s.address / 4] = value;
}

std::int64_t Interpreter::GetScalar(ir::SymbolId sym) const {
  const Symbol& s = module_.symbol(sym);
  LOPASS_CHECK(s.kind == SymbolKind::kScalar, "GetScalar needs a scalar");
  return memory_[s.address / 4];
}

void Interpreter::FillArray(ir::SymbolId sym, std::span<const std::int64_t> values) {
  const Symbol& s = module_.symbol(sym);
  LOPASS_CHECK(s.kind == SymbolKind::kArray, "FillArray needs an array");
  LOPASS_CHECK(values.size() <= s.length, "too many initializer values");
  std::copy(values.begin(), values.end(), memory_.begin() + s.address / 4);
}

std::int64_t Interpreter::GetArrayElem(ir::SymbolId sym, std::uint32_t index) const {
  const Symbol& s = module_.symbol(sym);
  LOPASS_CHECK(s.kind == SymbolKind::kArray, "GetArrayElem needs an array");
  LOPASS_CHECK(index < s.length, "array index out of range");
  return memory_[s.address / 4 + index];
}

namespace {
ir::SymbolId FindGlobal(const ir::Module& m, const std::string& name) {
  auto id = m.FindSymbol(name, -1);
  if (!id) LOPASS_THROW("no global named '" + name + "'");
  return *id;
}
}  // namespace

void Interpreter::SetScalar(const std::string& name, std::int64_t value) {
  SetScalar(FindGlobal(module_, name), value);
}

void Interpreter::FillArray(const std::string& name, std::span<const std::int64_t> values) {
  FillArray(FindGlobal(module_, name), values);
}

std::int64_t Interpreter::GetScalar(const std::string& name) const {
  return GetScalar(FindGlobal(module_, name));
}

RunResult Interpreter::Run(const std::string& fn, std::span<const std::int64_t> args,
                           std::uint64_t max_steps) {
  fault::MaybeInject("profile");
  const auto fid = module_.FindFunction(fn);
  if (!fid) LOPASS_THROW("no function named '" + fn + "'");
  step_limit_ = max_steps;
  steps_ = 0;
  call_depth_ = 0;
  RunResult r;
  r.return_value = Exec(module_.function(*fid), args);
  r.steps = steps_;
  return r;
}

std::int64_t Interpreter::Eval(const Operand& op, const std::vector<std::int64_t>& vregs) const {
  if (op.is_imm()) return op.imm;
  LOPASS_CHECK(op.vreg >= 0 && static_cast<std::size_t>(op.vreg) < vregs.size(),
               "vreg out of range");
  return vregs[static_cast<std::size_t>(op.vreg)];
}

std::int64_t Interpreter::Exec(const ir::Function& fn, std::span<const std::int64_t> args) {
  LOPASS_CHECK(args.size() == fn.params.size(), "argument count mismatch");
  if (++call_depth_ > 64) LOPASS_THROW("call depth limit exceeded (recursion?)");
  ++profile_.call_count;

  for (std::size_t i = 0; i < args.size(); ++i) {
    memory_[module_.symbol(fn.params[i]).address / 4] = args[i];
  }

  std::vector<std::int64_t> vregs(static_cast<std::size_t>(fn.next_vreg), 0);
  ir::BlockId cur = fn.entry;
  std::int64_t ret = 0;

  for (;;) {
    ++profile_.block_counts[static_cast<std::size_t>(fn.id)][static_cast<std::size_t>(cur)];
    const ir::BasicBlock& bb = fn.block(cur);
    bool jumped = false;
    for (const ir::Instr& in : bb.instrs) {
      if (++steps_ > step_limit_) {
        LOPASS_THROW("interpreter fuel exhausted after " + std::to_string(step_limit_) +
                     " steps (non-terminating workload?)");
      }
      ++profile_.total_dynamic_ops;
      switch (in.op) {
        case Opcode::kConst:
          vregs[static_cast<std::size_t>(in.result)] = in.args[0].imm;
          break;
        case Opcode::kMov:
          vregs[static_cast<std::size_t>(in.result)] = Eval(in.args[0], vregs);
          break;
        case Opcode::kReadVar: {
          const Symbol& s = module_.symbol(in.sym);
          vregs[static_cast<std::size_t>(in.result)] = memory_[s.address / 4];
          break;
        }
        case Opcode::kWriteVar: {
          const Symbol& s = module_.symbol(in.sym);
          memory_[s.address / 4] = Eval(in.args[0], vregs);
          break;
        }
        case Opcode::kLoadElem: {
          const Symbol& s = module_.symbol(in.sym);
          const std::int64_t idx = Eval(in.args[0], vregs);
          if (idx < 0 || idx >= static_cast<std::int64_t>(s.length)) {
            LOPASS_THROW("array index out of range on load of '" + s.name + "' (" +
                         std::to_string(idx) + " of " + std::to_string(s.length) + ")");
          }
          const std::uint32_t addr = s.address + static_cast<std::uint32_t>(idx) * 4;
          if (trace_) trace_->OnDataAccess(addr, /*is_write=*/false);
          vregs[static_cast<std::size_t>(in.result)] = memory_[addr / 4];
          break;
        }
        case Opcode::kStoreElem: {
          const Symbol& s = module_.symbol(in.sym);
          const std::int64_t idx = Eval(in.args[0], vregs);
          if (idx < 0 || idx >= static_cast<std::int64_t>(s.length)) {
            LOPASS_THROW("array index out of range on store to '" + s.name + "' (" +
                         std::to_string(idx) + " of " + std::to_string(s.length) + ")");
          }
          const std::uint32_t addr = s.address + static_cast<std::uint32_t>(idx) * 4;
          if (trace_) trace_->OnDataAccess(addr, /*is_write=*/true);
          memory_[addr / 4] = Eval(in.args[1], vregs);
          break;
        }
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
        case Opcode::kDiv:
        case Opcode::kMod:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kShr:
        case Opcode::kSar:
        case Opcode::kMin:
        case Opcode::kMax:
        case Opcode::kCmpEq:
        case Opcode::kCmpNe:
        case Opcode::kCmpLt:
        case Opcode::kCmpLe:
        case Opcode::kCmpGt:
        case Opcode::kCmpGe: {
          const std::int64_t a = Eval(in.args[0], vregs);
          const std::int64_t b = Eval(in.args[1], vregs);
          std::int64_t r = 0;
          switch (in.op) {
            case Opcode::kAdd: r = WrapAdd(a, b); break;
            case Opcode::kSub: r = WrapSub(a, b); break;
            case Opcode::kMul: r = WrapMul(a, b); break;
            case Opcode::kDiv:
              if (b == 0) LOPASS_THROW("division by zero");
              r = a / b;
              break;
            case Opcode::kMod:
              if (b == 0) LOPASS_THROW("modulo by zero");
              r = a % b;
              break;
            case Opcode::kAnd: r = a & b; break;
            case Opcode::kOr: r = a | b; break;
            case Opcode::kXor: r = a ^ b; break;
            case Opcode::kShl: r = WrapShl(a, b); break;
            case Opcode::kShr:
              r = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >> (b & 63));
              break;
            case Opcode::kSar: r = a >> (b & 63); break;
            case Opcode::kMin: r = std::min(a, b); break;
            case Opcode::kMax: r = std::max(a, b); break;
            case Opcode::kCmpEq: r = a == b; break;
            case Opcode::kCmpNe: r = a != b; break;
            case Opcode::kCmpLt: r = a < b; break;
            case Opcode::kCmpLe: r = a <= b; break;
            case Opcode::kCmpGt: r = a > b; break;
            case Opcode::kCmpGe: r = a >= b; break;
            default: break;
          }
          vregs[static_cast<std::size_t>(in.result)] = r;
          break;
        }
        case Opcode::kNeg:
          vregs[static_cast<std::size_t>(in.result)] = WrapNeg(Eval(in.args[0], vregs));
          break;
        case Opcode::kNot:
          vregs[static_cast<std::size_t>(in.result)] = ~Eval(in.args[0], vregs);
          break;
        case Opcode::kCall: {
          const Symbol& s = module_.symbol(in.sym);
          const auto callee = module_.FindFunction(s.name);
          LOPASS_CHECK(callee.has_value(), "call target missing");
          std::vector<std::int64_t> call_args;
          call_args.reserve(in.args.size());
          for (const Operand& a : in.args) call_args.push_back(Eval(a, vregs));
          vregs[static_cast<std::size_t>(in.result)] =
              Exec(module_.function(*callee), call_args);
          break;
        }
        case Opcode::kRet:
          ret = in.args.empty() ? 0 : Eval(in.args[0], vregs);
          --call_depth_;
          return ret;
        case Opcode::kBr:
          cur = in.target0;
          jumped = true;
          break;
        case Opcode::kCondBr:
          cur = Eval(in.args[0], vregs) != 0 ? in.target0 : in.target1;
          jumped = true;
          break;
      }
      if (jumped) break;
    }
    LOPASS_CHECK(jumped, "block fell through without terminator");
  }
}

}  // namespace lopass::interp
