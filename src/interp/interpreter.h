#pragma once

// IR-level interpreter and profiler.
//
// Plays the role of the paper's "Trace Tool" + "Cache Profiler" input
// stage (Fig. 5) and supplies #ex_times — "obtained through profiling"
// (Fig. 4, footnote 14): it executes the behavioral description on a
// concrete workload and records how often every basic block (and hence
// every control step of a cluster schedule) is invoked, plus a data
// access trace.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ir/module.h"

namespace lopass::interp {

// Per-module execution profile.
struct Profile {
  // block_counts[fn][block] = number of times the block was entered.
  std::vector<std::vector<std::uint64_t>> block_counts;
  // op_counts[fn][block] accumulated dynamic operation count.
  std::uint64_t total_dynamic_ops = 0;
  std::uint64_t call_count = 0;

  std::uint64_t BlockCount(ir::FunctionId fn, ir::BlockId b) const {
    return block_counts[static_cast<std::size_t>(fn)][static_cast<std::size_t>(b)];
  }
};

// Receives the dynamic data-access trace (word-granular).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  // `address` is a byte address in the module's flat data space.
  virtual void OnDataAccess(std::uint32_t address, bool is_write) = 0;
};

struct RunResult {
  std::int64_t return_value = 0;
  std::uint64_t steps = 0;  // dynamic operations executed
};

class Interpreter {
 public:
  explicit Interpreter(const ir::Module& module);

  // Direct access to the flat data memory (symbol initial values are
  // applied on construction and by Reset()).
  void Reset();
  void SetScalar(ir::SymbolId sym, std::int64_t value);
  std::int64_t GetScalar(ir::SymbolId sym) const;
  void FillArray(ir::SymbolId sym, std::span<const std::int64_t> values);
  std::int64_t GetArrayElem(ir::SymbolId sym, std::uint32_t index) const;

  // Convenience lookups by name (globals only).
  void SetScalar(const std::string& name, std::int64_t value);
  void FillArray(const std::string& name, std::span<const std::int64_t> values);
  std::int64_t GetScalar(const std::string& name) const;

  // Runs `fn(args...)`; throws lopass::Error on runtime faults
  // (out-of-bounds index, division by zero, step-limit exceeded).
  RunResult Run(const std::string& fn, std::span<const std::int64_t> args = {},
                std::uint64_t max_steps = 500'000'000);

  const Profile& profile() const { return profile_; }
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

 private:
  std::int64_t Exec(const ir::Function& fn, std::span<const std::int64_t> args);
  std::int64_t Eval(const ir::Operand& op, const std::vector<std::int64_t>& vregs) const;

  const ir::Module& module_;
  std::vector<std::int64_t> memory_;  // one word per 4 bytes of data space
  Profile profile_;
  TraceSink* trace_ = nullptr;
  std::uint64_t step_limit_ = 0;
  std::uint64_t steps_ = 0;
  int call_depth_ = 0;
};

}  // namespace lopass::interp
