// Example: the designer-in-the-loop exploration of §3.5.
//
// "the designer does have manifold possibilities of interaction like
// defining several sets of resources, defining constraints like the
// total number of clusters to be selected or to modify the objective
// function according to the peculiarities of an application."
//
// This example sweeps (a) custom resource sets and (b) the objective
// function's hardware weight for the paper's "3d" application, and
// prints the resulting design-space table a designer would iterate on.
//
// Build & run: cmake --build build && ./build/examples/design_space

#include <cstdio>

#include "apps/app.h"
#include "common/table.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  using power::ResourceType;

  const apps::Application app = apps::GetApplication("3d");
  dsl::LoweredProgram program = dsl::Compile(app.dsl_source);

  // Three hand-built resource sets a designer might try for a
  // multiply-accumulate dominated vertex pipeline.
  sched::ResourceSet mac1;
  mac1.name = "1xMAC";
  mac1.set(ResourceType::kMultiplier, 1)
      .set(ResourceType::kAdder, 1)
      .set(ResourceType::kAlu, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMemoryPort, 1);
  sched::ResourceSet mac2 = mac1;
  mac2.name = "2xMAC";
  mac2.set(ResourceType::kMultiplier, 2).set(ResourceType::kAdder, 2);
  sched::ResourceSet mac3 = mac2;
  mac3.name = "3xMAC+2port";
  mac3.set(ResourceType::kMultiplier, 3)
      .set(ResourceType::kAdder, 3)
      .set(ResourceType::kMemoryPort, 2);

  TextTable t;
  t.set_header({"resource set", "G weight", "selected", "U_R", "cells", "ASIC cyc",
                "Sav%", "Chg%"});
  for (const sched::ResourceSet& rs : {mac1, mac2, mac3}) {
    for (double g : {0.25, 1.0}) {
      core::PartitionOptions opts;
      opts.resource_sets = {rs};
      opts.objective.g = g;
      core::Partitioner part(program.module, program.regions, opts);
      const core::PartitionResult r = part.Run(app.workload(app.full_scale));
      const core::AppRow row = r.ToRow("3d");
      char util[32], cells[32];
      std::snprintf(util, sizeof util, "%.3f", row.asic_utilization);
      std::snprintf(cells, sizeof cells, "%.0f", row.asic_cells);
      t.add_row({rs.name, std::to_string(g), row.cluster, util, cells,
                 std::to_string(r.asic_cycles), FormatPercent(row.saving_percent()),
                 FormatPercent(row.time_change_percent())});
    }
  }
  std::printf("design space for '3d' (vertex transform pipeline):\n%s",
              t.ToString().c_str());
  std::printf(
      "\nReading the table like the paper's designer: wider MAC datapaths cut\n"
      "ASIC cycles but lower the utilization rate U_R and add cells; a higher\n"
      "hardware weight G in the objective function pushes the choice back\n"
      "toward the leaner datapath.\n");
  return 0;
}
