// Example: using the substrates below the partitioner directly —
// compile a DSL kernel to SL32, run the instruction-level energy
// simulator (Tiwari-style, [12]) and inspect the whole-system energy
// breakdown and cache behaviour, like the paper's "Core Energy
// Estimation" block in isolation.
//
// Build & run: cmake --build build && ./build/examples/energy_iss

#include <cstdio>

#include "dsl/lower.h"
#include "isa/codegen.h"
#include "iss/simulator.h"

namespace {

const char* kKernel = R"dsl(
var n;
array data[2048];
var sum; var sumsq;

func main() {
  var i;
  sum = 0;
  sumsq = 0;
  for (i = 0; i < n; i = i + 1) {
    var v;
    v = data[i];
    sum = sum + v;
    sumsq = sumsq + v * v;
  }
  // variance * n^2 = n*sumsq - sum^2
  return n * sumsq - sum * sum;
}
)dsl";

}  // namespace

int main() {
  using namespace lopass;

  dsl::LoweredProgram program = dsl::Compile(kKernel);
  const isa::SlProgram code = isa::Generate(program.module);
  std::printf("SL32 program: %zu instructions, %u bytes of data\n\n", code.code.size(),
              code.data_size_bytes);

  // Two system variants: a comfortable cache and a tiny one.
  for (const std::uint32_t dcache_bytes : {2048u, 128u}) {
    iss::SystemConfig config;
    config.dcache.capacity_bytes = dcache_bytes;

    iss::Simulator sim(program.module, code, config);
    sim.SetScalar("n", 2048);
    std::vector<std::int64_t> vals;
    for (int i = 0; i < 2048; ++i) vals.push_back((i * 31) % 199);
    sim.FillArray("data", vals);

    const iss::SimResult r = sim.Run("main");
    std::printf("d-cache %u B: result=%lld\n", dcache_bytes,
                static_cast<long long>(r.return_value));
    std::printf("  %llu instructions, %llu cycles (CPI %.2f)\n",
                static_cast<unsigned long long>(r.instr_count),
                static_cast<unsigned long long>(r.up_cycles),
                static_cast<double>(r.up_cycles) / static_cast<double>(r.instr_count));
    std::printf("  d-cache: %llu accesses, miss rate %.2f%%\n",
                static_cast<unsigned long long>(r.dcache_stats.accesses()),
                100.0 * r.dcache_stats.miss_rate());
    std::printf("  energy: uP %s, i$ %s, d$ %s, mem %s, bus %s -> total %s\n",
                FormatEnergy(r.energy.up_core).c_str(),
                FormatEnergy(r.energy.icache).c_str(),
                FormatEnergy(r.energy.dcache).c_str(),
                FormatEnergy(r.energy.mem).c_str(), FormatEnergy(r.energy.bus).c_str(),
                FormatEnergy(r.energy.total()).c_str());
    std::printf("  uP datapath utilization U_uP = %.3f\n\n", r.up_utilization);
  }

  std::printf(
      "The tiny d-cache turns array reads into memory traffic: more stall\n"
      "cycles, more bus/memory energy — the whole-system effect the paper's\n"
      "partitioner re-estimates for every candidate partition.\n");
  return 0;
}
