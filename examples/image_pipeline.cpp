// Example: low-power partitioning of an image-processing pipeline —
// the class of "computation and memory intensive applications like
// those found in ... cell phones, digital cameras" the paper targets.
//
// The pipeline: white-balance -> 3x3 sharpen -> gamma-ish tone map ->
// histogram. The sharpen stage is the natural ASIC candidate. The
// example also demonstrates footnote 4: the standard cores (caches) of
// the partitioned system are adapted, shrinking the i-cache for the
// small residual software.
//
// Build & run: cmake --build build && ./build/examples/image_pipeline

#include <cstdio>

#include "common/prng.h"
#include "core/partitioner.h"
#include "core/report.h"
#include "dsl/lower.h"

namespace {

const char* kPipeline = R"dsl(
var w;         // 64 (row stride uses << 6)
var h;
var gain_r;    // white balance gains, Q8
var hist_peak;

array img[8192];
array sharp[8192];
array hist[64];

func main() {
  var x; var y;

  // Stage 1: white balance (per-pixel multiply).
  for (y = 0; y < h; y = y + 1) {
    var row;
    row = y << 6;
    for (x = 0; x < w; x = x + 1) {
      img[row + x] = min((img[row + x] * gain_r) >> 8, 255);
    }
  }

  // Stage 2: 3x3 sharpen (hot candidate).
  for (y = 1; y < h - 1; y = y + 1) {
    var srow; var up; var dn;
    srow = y << 6;
    up = srow - 64;
    dn = srow + 64;
    for (x = 1; x < w - 1; x = x + 1) {
      var acc;
      acc = img[srow + x] * 9
          - img[up + x] - img[dn + x]
          - img[srow + x - 1] - img[srow + x + 1]
          - img[up + x - 1] - img[up + x + 1]
          - img[dn + x - 1] - img[dn + x + 1];
      sharp[srow + x] = min(max(acc, 0), 255);
    }
  }

  // Stage 3: tone map (table-free, shift/add curve).
  for (y = 1; y < h - 1; y = y + 1) {
    var row2;
    row2 = y << 6;
    for (x = 1; x < w - 1; x = x + 1) {
      var v;
      v = sharp[row2 + x];
      sharp[row2 + x] = v - ((v * v) >> 9);
    }
  }

  // Stage 4: histogram.
  for (y = 1; y < h - 1; y = y + 1) {
    var row3;
    row3 = y << 6;
    for (x = 1; x < w - 1; x = x + 1) {
      var bin;
      bin = sharp[row3 + x] >> 2;
      hist[min(bin, 63)] = hist[min(bin, 63)] + 1;
    }
  }
  hist_peak = 0;
  for (x = 0; x < 64; x = x + 1) {
    hist_peak = max(hist_peak, hist[x]);
  }
  return hist_peak;
}
)dsl";

}  // namespace

int main() {
  using namespace lopass;

  dsl::LoweredProgram program = dsl::Compile(kPipeline);

  core::Workload workload;
  workload.setup = [](core::DataTarget& t) {
    t.SetScalar("w", 64);
    t.SetScalar("h", 96);
    t.SetScalar("gain_r", 290);
    Prng rng(0x1111);
    std::vector<std::int64_t> pix;
    for (int i = 0; i < 64 * 96; ++i) pix.push_back(rng.next_in(0, 255));
    t.FillArray("img", pix);
  };

  // Designer interaction (§3.5): adapt the partitioned system's caches.
  core::PartitionOptions options;
  options.partitioned_config = iss::SystemConfig{};
  options.partitioned_config->icache.capacity_bytes = 1024;
  options.partitioned_config->dcache.capacity_bytes = 1024;

  core::Partitioner partitioner(program.module, program.regions, options);
  const core::PartitionResult result = partitioner.Run(workload);

  std::printf("candidate evaluations (cluster x resource set):\n");
  for (const core::ClusterEvaluation& ev : result.evaluations) {
    std::printf("  %-10s x %-10s  %s  U_R=%.3f U_uP=%.3f\n", ev.cluster_label.c_str(),
                ev.resource_set.c_str(), ev.feasible ? "feasible  " : "infeasible",
                ev.u_asic, ev.u_up);
  }

  if (!result.partitioned()) {
    std::printf("\nno profitable partition found.\n");
    return 0;
  }

  const core::PartitionDecision& d = result.selected.front();
  std::printf("\nmapped to ASIC core: %s (%s, %.0f cells, U_R=%.3f, %.1f ns clock)\n",
              d.cluster_label.c_str(), d.core.resource_set.c_str(), d.core.cells,
              d.core.utilization, d.core.clock_period.nanoseconds());
  std::printf("boundary transfers: %llu words in, %llu words out\n",
              static_cast<unsigned long long>(d.transfers.up_to_mem_words),
              static_cast<unsigned long long>(d.transfers.asic_to_mem_words));

  std::vector<core::AppRow> rows{result.ToRow("imgpipe")};
  std::printf("\n%s", core::RenderTable1(rows).ToString().c_str());
  std::printf("energy saving %s%%, execution-time change %s%%\n",
              FormatPercent(rows[0].saving_percent()).c_str(),
              FormatPercent(rows[0].time_change_percent()).c_str());
  return 0;
}
