// Example: power-over-time profile of a partitioned system.
//
// Uses the simulator's energy-timeline sampling to compare the µP
// core's power draw before and after partitioning the digs application:
// the initial run draws steady power through the whole convolution; the
// partitioned run shows the short software prologue, the long
// quiet stretch while the ASIC core owns the computation (the µP is
// shut down — Eq. 3's premise), and the software epilogue.
//
// Output: a CSV (cycle, average power in mW per interval) per variant,
// ready for any plotting tool.
//
// Build & run: cmake --build build && ./build/examples/power_profile

#include <cstdio>

#include "apps/app.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;

  const apps::Application app = apps::GetApplication("digs");
  dsl::LoweredProgram program = dsl::Compile(app.dsl_source);

  core::PartitionOptions options = app.options;
  options.initial_config.timeline_interval_cycles = 20000;
  options.partitioned_config = options.initial_config;

  core::Partitioner partitioner(program.module, program.regions, options);
  const core::PartitionResult result = partitioner.Run(app.workload(app.full_scale));

  const Duration period = power::TechLibrary::Cmos6().params().clock_period();
  auto emit = [&](const char* label, const iss::SimResult& run) {
    std::printf("\n# %s: cycle, avg uP power [mW] over the preceding interval\n",
                label);
    std::printf("cycle,up_power_mw\n");
    Energy prev;
    Cycles prev_cycle = 0;
    for (const iss::EnergySample& s : run.timeline) {
      const double interval_s =
          static_cast<double>(s.cycle - prev_cycle) * period.seconds;
      if (interval_s > 0.0) {
        std::printf("%llu,%.3f\n", static_cast<unsigned long long>(s.cycle),
                    (s.up_core - prev).joules / interval_s * 1e3);
      }
      prev = s.up_core;
      prev_cycle = s.cycle;
    }
  };

  emit("initial (everything on the uP core)", result.initial_run);
  emit("partitioned (convolution on the ASIC core)", result.partitioned_run);

  std::printf(
      "\nThe partitioned profile has far fewer samples: the uP core is only\n"
      "busy for the prologue/epilogue (%llu cycles vs %llu initially);\n"
      "in between, the ASIC core computes and the uP is shut down.\n",
      static_cast<unsigned long long>(result.partitioned_run.up_cycles),
      static_cast<unsigned long long>(result.initial_run.up_cycles));
  return 0;
}
