// Quickstart: partition a small DSP application for low power.
//
// Demonstrates the whole lopass API surface end to end:
//   1. write a behavioral description in the DSL,
//   2. compile it,
//   3. run the low-power hardware/software partitioner on a workload,
//   4. inspect what was mapped to the ASIC core and what it bought.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/partitioner.h"
#include "dsl/lower.h"

namespace {

// A small FIR-filter application: one hot convolution loop plus a
// lightweight post-processing scan.
const char* kSource = R"dsl(
var n;
array signal[2048];
array coeff[16];
array out[2048];
var peak;

func main() {
  var i; var j;
  // Hot loop: 16-tap FIR over the signal.
  for (i = 0; i < n - 16; i = i + 1) {
    var acc;
    acc = 0;
    for (j = 0; j < 16; j = j + 1) {
      acc = acc + signal[i + j] * coeff[j];
    }
    out[i] = acc >> 8;
  }
  // Cold loop: peak detection.
  peak = 0;
  for (i = 0; i < n - 16; i = i + 1) {
    peak = max(peak, abs(out[i]));
  }
  return peak;
}
)dsl";

}  // namespace

int main() {
  using namespace lopass;

  // 1-2. Compile the behavioral description to the IR + region tree.
  dsl::LoweredProgram program = dsl::Compile(kSource);
  std::printf("compiled: %zu functions, %zu operations\n",
              program.module.num_functions(), program.module.num_ops());

  // 3. Describe the workload (the "input stimuli pattern").
  core::Workload workload;
  workload.setup = [](core::DataTarget& t) {
    t.SetScalar("n", 1024);
    std::vector<std::int64_t> sig, co;
    for (int i = 0; i < 1024; ++i) sig.push_back((i * 37) % 256 - 128);
    for (int i = 0; i < 16; ++i) co.push_back(16 - (i - 8) * (i - 8) / 4);
    t.FillArray("signal", sig);
    t.FillArray("coeff", co);
  };

  // 4. Run the partitioner (Fig. 1 / Fig. 5 of the paper).
  core::Partitioner partitioner(program.module, program.regions);
  core::PartitionResult result = partitioner.Run(workload);

  std::printf("\ninitial design:     %s total, %llu cycles\n",
              FormatEnergy(result.initial_run.energy.total()).c_str(),
              static_cast<unsigned long long>(result.initial_run.up_cycles));

  if (!result.partitioned()) {
    std::printf("partitioner kept everything in software.\n");
    return 0;
  }
  for (const core::PartitionDecision& d : result.selected) {
    std::printf("mapped to ASIC core: %s  (resource set %s, %.0f cells, U_R=%.3f)\n",
                d.cluster_label.c_str(), d.core.resource_set.c_str(), d.core.cells,
                d.core.utilization);
  }

  const core::AppRow row = result.ToRow("quickstart");
  std::printf("partitioned design: %s total, %llu cycles (uP %llu + ASIC %llu)\n",
              FormatEnergy(row.partitioned.total()).c_str(),
              static_cast<unsigned long long>(row.partitioned_time.total()),
              static_cast<unsigned long long>(row.partitioned_time.up_cycles),
              static_cast<unsigned long long>(row.partitioned_time.asic_cycles));
  std::printf("energy saving: %s%%   execution-time change: %s%%\n",
              FormatPercent(row.saving_percent()).c_str(),
              FormatPercent(row.time_change_percent()).c_str());
  return 0;
}
