// Example: driving the partitioner without the DSL frontend.
//
// Some users generate IR from their own tools. This example builds a
// dot-product kernel directly with ir::FunctionBuilder, reconstructs
// the structural regions from the CFG (dominators → natural loops), and
// runs the full low-power partitioning flow on it.
//
// Build & run: cmake --build build && ./build/examples/programmatic_ir

#include <cstdio>

#include "core/partitioner.h"
#include "ir/infer_regions.h"
#include "ir/print.h"
#include "ir/verify.h"

int main() {
  using namespace lopass;
  using ir::Opcode;
  using ir::Operand;

  // --- build the module by hand -----------------------------------------
  ir::Module m;
  const ir::SymbolId n = m.AddScalar("n");
  const ir::SymbolId acc = m.AddScalar("acc");
  const ir::SymbolId i = m.AddScalar("i");
  const ir::SymbolId xs = m.AddArray("xs", 256);
  const ir::SymbolId ys = m.AddArray("ys", 256);

  const ir::FunctionId f = m.AddFunction("main");
  ir::FunctionBuilder fb(m, f);
  const ir::BlockId entry = fb.NewBlock();
  const ir::BlockId cond = fb.NewBlock();
  const ir::BlockId body = fb.NewBlock();
  const ir::BlockId exit = fb.NewBlock();

  fb.SetBlock(entry);
  fb.EmitWriteVar(i, Operand::Imm(0));
  fb.EmitWriteVar(acc, Operand::Imm(0));
  fb.EmitBr(cond);

  fb.SetBlock(cond);
  const ir::VregId vi = fb.EmitReadVar(i);
  const ir::VregId vn = fb.EmitReadVar(n);
  const ir::VregId lt = fb.EmitBinary(Opcode::kCmpLt, Operand::Vreg(vi), Operand::Vreg(vn));
  fb.EmitCondBr(Operand::Vreg(lt), body, exit);

  fb.SetBlock(body);
  const ir::VregId bi = fb.EmitReadVar(i);
  const ir::VregId idx = fb.EmitBinary(Opcode::kAnd, Operand::Vreg(bi), Operand::Imm(255));
  const ir::VregId x = fb.EmitLoadElem(xs, Operand::Vreg(idx));
  const ir::VregId y = fb.EmitLoadElem(ys, Operand::Vreg(idx));
  const ir::VregId prod = fb.EmitBinary(Opcode::kMul, Operand::Vreg(x), Operand::Vreg(y));
  const ir::VregId a0 = fb.EmitReadVar(acc);
  const ir::VregId a1 = fb.EmitBinary(Opcode::kAdd, Operand::Vreg(a0), Operand::Vreg(prod));
  fb.EmitWriteVar(acc, Operand::Vreg(a1));
  const ir::VregId inc = fb.EmitBinary(Opcode::kAdd, Operand::Vreg(bi), Operand::Imm(1));
  fb.EmitWriteVar(i, Operand::Vreg(inc));
  fb.EmitBr(cond);

  fb.SetBlock(exit);
  const ir::VregId r = fb.EmitReadVar(acc);
  fb.EmitRet(Operand::Vreg(r));

  m.AssignAddresses();
  ir::VerifyOrThrow(m);
  std::printf("hand-built IR:\n%s\n", ir::ToString(m).c_str());

  // --- infer regions from the CFG ----------------------------------------
  const ir::RegionTree regions = ir::InferRegions(m);
  std::printf("inferred regions:\n%s\n", ir::ToString(regions, f).c_str());

  // --- partition ----------------------------------------------------------
  core::Workload w;
  w.setup = [](core::DataTarget& t) {
    t.SetScalar("n", 8000);
    std::vector<std::int64_t> a, b;
    for (int k = 0; k < 256; ++k) {
      a.push_back(k % 31 - 15);
      b.push_back((k * 7) % 29 - 14);
    }
    t.FillArray("xs", a);
    t.FillArray("ys", b);
  };
  core::Partitioner part(m, regions);
  const core::PartitionResult result = part.Run(w);
  const core::AppRow row = result.ToRow("dotprod");
  std::printf("partitioned: %s   saving %s%%   time %s%%\n",
              row.cluster.c_str(), FormatPercent(row.saving_percent()).c_str(),
              FormatPercent(row.time_change_percent()).c_str());
  return 0;
}
