// Ablation: the pre-selection width N_max^c (Fig. 1 line 5).
//
// The paper: "it is necessary to reduce the number of all clusters
// since the following steps 6 to 12 are performed for all remaining
// clusters" — and the expensive synthesis/gate-level steps run per
// surviving cluster. This sweep shows how many cluster×resource-set
// evaluations each width costs and whether result quality suffers.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: pre-selection width N_max^c (app: MPG)");

  const apps::Application app = apps::GetApplication("MPG");
  const dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);

  TextTable t;
  t.set_header({"N_max", "evaluations", "selected cluster", "Sav%", "Chg%"});
  for (int nmax : {1, 2, 3, 4, 8}) {
    core::PartitionOptions opts = app.options;
    opts.max_preselect = nmax;
    core::Partitioner part(prog.module, prog.regions, opts);
    const core::PartitionResult r = part.Run(app.workload(app.full_scale));
    const core::AppRow row = r.ToRow(app.name);
    t.add_row({std::to_string(nmax), std::to_string(r.evaluations.size()), row.cluster,
               FormatPercent(row.saving_percent()),
               FormatPercent(row.time_change_percent())});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nNote: a width of 1 already finds MPG's winning cluster because the\n"
      "pre-selection ranks by software energy minus transfer energy; wider\n"
      "settings only add evaluation work here.\n");
  return 0;
}
