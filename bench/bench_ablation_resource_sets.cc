// Ablation: designer resource sets (Fig. 1 line 7).
//
// "The designer tells the partitioning algorithm how much hardware
// (#ALUs, #multipliers, #shifters, ...) they are willing to spend";
// "3 to 5 sets are given". This sweep runs each application with each
// single designer set and with the full family, showing how the set
// choice moves utilization, area and the result.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"
#include "sched/resource_set.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: designer resource sets (app: digs)");

  const apps::Application app = apps::GetApplication("digs");
  const dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);
  const auto sets = sched::DefaultDesignerSets();

  TextTable t;
  t.set_header({"resource set(s)", "partitioned", "U_R", "cells", "Sav%", "Chg%"});
  auto run_with = [&](const std::string& label, std::vector<sched::ResourceSet> rs) {
    core::PartitionOptions opts = app.options;
    opts.resource_sets = std::move(rs);
    core::Partitioner part(prog.module, prog.regions, opts);
    const core::PartitionResult r = part.Run(app.workload(app.full_scale));
    const core::AppRow row = r.ToRow(app.name);
    char util[32], cells[32];
    std::snprintf(util, sizeof util, "%.3f", row.asic_utilization);
    std::snprintf(cells, sizeof cells, "%.0f", row.asic_cells);
    t.add_row({label, r.partitioned() ? "yes" : "no", util, cells,
               FormatPercent(row.saving_percent()),
               FormatPercent(row.time_change_percent())});
  };

  for (const sched::ResourceSet& rs : sets) run_with(rs.name + " only", {rs});
  run_with("all four (paper praxis)", sets);
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nSets without a multiplier cannot implement the convolution cluster\n"
      "at all; oversized sets lower the utilization rate U_R and can fail\n"
      "the U_R > U_uP test (Fig. 1 line 9).\n");
  return 0;
}
