// Extension experiment: combining partitioning with voltage scaling.
//
// The related work [10] (Hong/Kirovski et al., DAC'98) lowers system
// power with a multiple-voltage supply. Voltage scaling needs *slack*:
// at iso-deadline the initial design has none, so DVS alone saves
// nothing. Partitioning, however, usually makes the system faster —
// slack that a variable-voltage implementation could convert into
// additional savings (E ~ V^2, delay ~ 1/V to first order).
//
// For every application that got faster, this bench scales the
// partitioned system's voltage down until its execution time returns to
// the initial deadline, and reports the combined saving. trick, which
// got slower, has no slack and gains nothing.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Extension: partitioning + voltage scaling (iso-deadline)");

  TextTable t;
  t.set_header({"App.", "slack", "V' / V", "Sav% partition", "Sav% + DVS"});
  for (const bench::AppRun& r : bench::RunAllApps()) {
    const double t0 = static_cast<double>(r.row.initial_time.total());
    const double t1 = static_cast<double>(r.row.partitioned_time.total());
    const double e0 = r.row.initial.total().joules;
    const double e1 = r.row.partitioned.total().joules;
    // delay ~ 1/V  =>  V' = V * t1/t0 (clamped: the 0.8u process needs
    // roughly half nominal to stay functional).
    const double vscale = std::max(0.5, std::min(1.0, t1 / t0));
    const double e_dvs = e1 * vscale * vscale;
    char slack[32], vs[32];
    std::snprintf(slack, sizeof slack, "%.1f%%", 100.0 * (1.0 - t1 / t0));
    std::snprintf(vs, sizeof vs, "%.2f", vscale);
    t.add_row({r.app.name, slack, vs, FormatPercent(100.0 * (e1 / e0 - 1.0)),
               FormatPercent(100.0 * (e_dvs / e0 - 1.0))});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nFirst-order model (E ~ V^2, delay ~ 1/V, V floor at 0.5x nominal).\n"
      "Partitioning and voltage scaling compose: the speedup the ASIC core\n"
      "buys can be traded back for voltage headroom, pushing MPG and digs\n"
      "well past their partition-only savings.\n");
  return 0;
}
