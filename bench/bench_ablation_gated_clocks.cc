// Ablation: the gated-clock premise (§3.1).
//
// The whole approach rests on resources that keep switching while "not
// actively used": "In case the processor does not feature the technique
// of gated clocks to shut down all non-used resources clock cycle per
// clock cycle, those non actively used resources will still consume
// energy" — "actually the case for most today's [1999] processors
// deployed in embedded systems".
//
// Sweeping the idle-power fraction of the CMOS6 library shows how the
// ASIC core's energy (and hence the achievable saving) depends on that
// premise: with perfect gating (fraction 0) only active switching
// remains; at 1.0 an idle resource burns like an active one.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: idle (non-gated) power fraction (app: trick)");

  const apps::Application app = apps::GetApplication("trick");
  const dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);

  TextTable t;
  t.set_header({"idle fraction", "ASIC core E", "total P E", "Sav%"});
  for (double frac : {0.0, 0.2, 0.45, 0.7, 1.0}) {
    power::TechLibrary lib = power::TechLibrary::Cmos6();
    lib.set_idle_power_fraction(frac);
    core::Partitioner part(prog.module, prog.regions, app.options, lib);
    const core::PartitionResult r = part.Run(app.workload(app.full_scale));
    const core::AppRow row = r.ToRow(app.name);
    char f[32];
    std::snprintf(f, sizeof f, "%.2f", frac);
    t.add_row({f, FormatEnergy(row.partitioned.asic_core),
               FormatEnergy(row.partitioned.total()),
               FormatPercent(row.saving_percent())});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nEven at fraction 1.0 the partition pays for trick — its divider is\n"
      "busy ~95%% of the time, which is precisely why the utilization-rate\n"
      "criterion selected it. Clusters with low U_R lose their advantage as\n"
      "the idle fraction grows.\n");
  return 0;
}
