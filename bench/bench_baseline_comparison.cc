// Baseline comparison: the paper's low-power partitioning vs the
// classic performance-driven partitioning of the related work ([4]-[9],
// whose "objective is to meet performance constraints while keeping
// the system cost as low as possible ... none of them provide power
// related optimization").
//
// Both strategies run on the same six applications with the same
// designer resource sets; the table contrasts what each buys.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  bench::PrintHeader(
      "Baseline: low-power (paper) vs performance-driven partitioning");

  TextTable t;
  t.set_header({"App.", "strategy", "cluster", "rs", "cells", "Sav%", "Chg%"});
  for (const apps::Application& app : apps::AllApplications()) {
    const dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);
    for (const core::Strategy strategy :
         {core::Strategy::kLowPower, core::Strategy::kPerformance}) {
      core::PartitionOptions opts = app.options;
      opts.strategy = strategy;
      core::Partitioner part(prog.module, prog.regions, opts);
      const core::PartitionResult r = part.Run(app.workload(app.full_scale));
      const core::AppRow row = r.ToRow(app.name);
      char cells[32];
      std::snprintf(cells, sizeof cells, "%.0f", row.asic_cells);
      t.add_row({app.name,
                 strategy == core::Strategy::kLowPower ? "low-power" : "performance",
                 row.cluster, row.resource_set, cells,
                 FormatPercent(row.saving_percent()),
                 FormatPercent(row.time_change_percent())});
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nThe performance baseline never accepts a slower ASIC, so it leaves\n"
      "trick unpartitioned and forfeits its ~93%% energy saving; where both\n"
      "strategies fire, the low-power choice favors leaner, better-utilized\n"
      "cores over the fastest ones.\n");
  return 0;
}
