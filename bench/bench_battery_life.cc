// Derived experiment: battery life ("mobility").
//
// The paper's introduction motivates the whole approach with mobile
// devices: "minimizing the power consumption of those systems means to
// increase the device's mobility — an important factor for a purchase
// decision". This bench converts Table 1's per-run energies into
// battery life for a typical 1999 handheld cell (e.g. a single Li-Ion
// cell: 3.6 V x 800 mAh ≈ 10.4 kJ), assuming the application runs
// back-to-back (frame after frame).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Derived: battery life improvement (3.6V x 800mAh Li-Ion)");

  const double battery_joules = 3.6 * 0.8 * 3600.0;  // V * Ah * s/h
  const double clock_hz = power::TechLibrary::Cmos6().params().clock_mhz * 1e6;

  TextTable t;
  t.set_header({"App.", "runs/charge initial", "runs/charge partitioned", "gain",
                "hours initial", "hours partitioned"});
  for (const bench::AppRun& r : bench::RunAllApps()) {
    const double e0 = r.row.initial.total().joules;
    const double e1 = r.row.partitioned.total().joules;
    const double runs0 = battery_joules / e0;
    const double runs1 = battery_joules / e1;
    // Wall-clock life if the device loops the workload continuously.
    const double t0 = static_cast<double>(r.row.initial_time.total()) / clock_hz;
    const double t1 = static_cast<double>(r.row.partitioned_time.total()) / clock_hz;
    char c0[32], c1[32], g[32], h0[32], h1[32];
    std::snprintf(c0, sizeof c0, "%.3g", runs0);
    std::snprintf(c1, sizeof c1, "%.3g", runs1);
    std::snprintf(g, sizeof g, "%.1fx", runs1 / runs0);
    std::snprintf(h0, sizeof h0, "%.1f", runs0 * t0 / 3600.0);
    std::snprintf(h1, sizeof h1, "%.1f", runs1 * t1 / 3600.0);
    t.add_row({r.app.name, c0, c1, g, h0, h1});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\n'runs/charge' counts how many times the workload completes before\n"
      "the battery empties; 'hours' assumes the device loops it\n"
      "continuously. digs and trick run ~12-15x longer per charge.\n");
  return 0;
}
