// Ablation: adapting the standard cores to the partition (footnote 4).
//
// "those other cores have to be adapted efficiently (e.g. size of
// memory, size of caches, cache policy etc.) according to the
// particular hw/sw partitioning chosen. This is because the access
// pattern may change when a different hw/sw partition is used."
//
// After digs' convolution nest moves to the ASIC, the residual software
// is tiny; this sweep re-estimates the partitioned system with smaller
// caches and different d-cache policies.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: cache adaptation of the partitioned system (app: digs)");

  const apps::Application app = apps::GetApplication("digs");
  const dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);

  TextTable t;
  t.set_header({"partitioned caches", "i-cache E", "d-cache E", "total E", "Sav%",
                "Chg%"});
  struct Variant {
    const char* label;
    std::uint32_t icache, dcache;
    cache::WritePolicy policy;
  };
  const Variant variants[] = {
      {"2KB/2KB WB (same as initial)", 2048, 2048,
       cache::WritePolicy::kWriteBackAllocate},
      {"1KB/1KB WB", 1024, 1024, cache::WritePolicy::kWriteBackAllocate},
      {"512B/512B WB", 512, 512, cache::WritePolicy::kWriteBackAllocate},
      {"512B/512B WT", 512, 512, cache::WritePolicy::kWriteThroughNoAllocate},
      {"256B/256B WB", 256, 256, cache::WritePolicy::kWriteBackAllocate},
  };
  for (const Variant& v : variants) {
    core::PartitionOptions opts = app.options;
    iss::SystemConfig cfg = opts.initial_config;
    cfg.icache.capacity_bytes = v.icache;
    cfg.dcache.capacity_bytes = v.dcache;
    cfg.dcache_policy = v.policy;
    opts.partitioned_config = cfg;
    core::Partitioner part(prog.module, prog.regions, opts);
    const core::PartitionResult r = part.Run(app.workload(app.full_scale));
    const core::AppRow row = r.ToRow(app.name);
    t.add_row({v.label, FormatEnergy(row.partitioned.icache),
               FormatEnergy(row.partitioned.dcache),
               FormatEnergy(row.partitioned.total()),
               FormatPercent(row.saving_percent()),
               FormatPercent(row.time_change_percent())});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nSmaller caches spend less energy per access; as long as the shrunken\n"
      "residual working set still fits, adaptation increases the saving.\n");
  return 0;
}
