// Extension experiment: does the approach survive technology scaling?
//
// The paper's experiments use a 0.8µ process, but its introduction is
// about 0.18µ SOCs ("today's feature sizes of 0.18µ that allow to
// integrate more than 100Mio transistors"). Under first-order
// constant-field scaling every switching energy shrinks by s^3 for both
// the µP core and the ASIC core, so the *relative* savings — which is
// what the method optimizes — should be invariant, while the absolute
// joules collapse. This bench scales the CMOS6 library and the
// SPARClite energy model to 0.5µ, 0.35µ and 0.18µ and re-runs digs and
// trick.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Extension: constant-field technology scaling");

  TextTable t;
  t.set_header({"App.", "node", "Vdd", "clock", "initial E", "Sav%", "Chg%"});
  for (const char* name : {"digs", "trick"}) {
    const apps::Application app = apps::GetApplication(name);
    const dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);
    for (double node : {0.8, 0.5, 0.35, 0.18}) {
      const power::TechLibrary lib = power::TechLibrary::Cmos6().ScaledTo(node);
      const double s = node / 0.8;
      const iss::TiwariModel up = iss::TiwariModel::Sparclite().ScaledBy(s * s * s);
      core::Partitioner part(prog.module, prog.regions, app.options, lib, up);
      const core::PartitionResult r = part.Run(app.workload(app.full_scale));
      const core::AppRow row = r.ToRow(app.name);
      char nodebuf[32], vdd[32], clk[32];
      std::snprintf(nodebuf, sizeof nodebuf, "%.2fu", node);
      std::snprintf(vdd, sizeof vdd, "%.2fV", lib.params().vdd);
      std::snprintf(clk, sizeof clk, "%.0fMHz", lib.params().clock_mhz);
      t.add_row({app.name, nodebuf, vdd, clk, FormatEnergy(row.initial.total()),
                 FormatPercent(row.saving_percent()),
                 FormatPercent(row.time_change_percent())});
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nAbsolute energies collapse ~s^3 per node while the relative savings\n"
      "and execution-time shape stay put: the utilization argument (Eq. 1-4)\n"
      "is technology independent, as the paper's premise requires.\n");
  return 0;
}
