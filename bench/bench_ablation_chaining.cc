// Ablation: operator chaining in the list scheduler.
//
// The paper performs "a simple list schedule" (Fig. 1 line 8). A
// standard HLS refinement is operator chaining — packing dependent
// single-cycle operations into one control step when their combined
// combinational delay fits the clock. This sweep shows what chaining
// would have bought: fewer ASIC control steps (faster cores) at the
// same allocation, and its effect on the utilization rate and savings.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: operator chaining in the ASIC schedule");

  TextTable t;
  t.set_header({"App.", "chaining", "ASIC cyc", "U_R", "Sav%", "Chg%"});
  for (const char* name : {"3d", "ckey", "digs"}) {
    const apps::Application app = apps::GetApplication(name);
    const dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);
    for (const bool chain : {false, true}) {
      core::PartitionOptions opts = app.options;
      opts.scheduler.enable_chaining = chain;
      core::Partitioner part(prog.module, prog.regions, opts);
      const core::PartitionResult r = part.Run(app.workload(app.full_scale));
      const core::AppRow row = r.ToRow(app.name);
      char util[32];
      std::snprintf(util, sizeof util, "%.3f", row.asic_utilization);
      t.add_row({app.name, chain ? "on" : "off (paper)",
                 std::to_string(r.asic_cycles), util,
                 FormatPercent(row.saving_percent()),
                 FormatPercent(row.time_change_percent())});
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nChaining compresses dependent add/compare chains into fewer control\n"
      "steps: ASIC cycles drop and the idle-energy share shrinks slightly.\n");
  return 0;
}
