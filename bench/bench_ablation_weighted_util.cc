// Ablation: size-weighted vs unweighted utilization rate (§3.4).
//
// The paper: "all resources contribute to U_R in the same way, no
// matter whether they are large or small ... our experiments have shown
// that an according distinction does not result in better partitions
// though the individual values of U_R are different. Reason is that the
// relative values of U_R of different clusters are actually responsible
// for deciding." This bench reproduces that observation.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: size-weighted vs unweighted U_R (all apps)");

  TextTable t;
  t.set_header({"App.", "variant", "selected cluster", "U value", "Sav%"});
  for (const apps::Application& app : apps::AllApplications()) {
    const dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);
    for (const bool weighted : {false, true}) {
      core::PartitionOptions opts = app.options;
      opts.weighted_utilization = weighted;
      core::Partitioner part(prog.module, prog.regions, opts);
      const core::PartitionResult r = part.Run(app.workload(app.full_scale));
      const core::AppRow row = r.ToRow(app.name);
      double u = 0.0;
      for (const core::ClusterEvaluation& ev : r.evaluations) {
        if (r.partitioned() && ev.cluster_id == r.selected.front().cluster_id &&
            ev.feasible) {
          u = ev.u_asic;
          break;
        }
      }
      char ub[32];
      std::snprintf(ub, sizeof ub, "%.3f", u);
      t.add_row({app.name, weighted ? "weighted" : "unweighted (paper)", row.cluster,
                 ub, FormatPercent(row.saving_percent())});
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nThe U values differ, but the *selected clusters* (and therefore the\n"
      "partitions) should largely coincide — the paper's stated reason for\n"
      "keeping the unweighted form.\n");
  return 0;
}
