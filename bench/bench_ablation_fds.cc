// Ablation: could the designer's resource sets have been derived
// automatically?
//
// The paper relies on 3-5 designer-provided resource sets "based on
// reference designs" (§3.2 line 7). Force-directed scheduling (Paulin &
// Knight) solves the inverse problem: given the latency the chosen list
// schedule achieved, estimate the minimum allocation. This bench runs
// FDS on every winning cluster's hottest block at the list schedule's
// latency and compares the implied datapath against the designer set
// the partitioner picked.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"
#include "sched/force_directed.h"
#include "sched/list_scheduler.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: FDS-derived allocation vs designer resource sets");

  TextTable t;
  t.set_header({"App.", "hot-block ops", "list steps", "designer units used",
                "FDS units", "FDS allocation"});
  for (const bench::AppRun& r : bench::RunAllApps()) {
    if (!r.result.partitioned()) continue;
    const dsl::LoweredProgram prog = dsl::Compile(r.app.dsl_source);
    const core::Cluster& c = r.result.chain.clusters[static_cast<std::size_t>(
        r.result.selected.front().cluster_id)];
    // Hottest (largest) block of the winning cluster.
    sched::BlockDfg dfg;
    for (const auto& [fn, b] : c.blocks) {
      sched::BlockDfg g = sched::BuildBlockDfg(prog.module.function(fn).block(b));
      if (g.size() > dfg.size()) dfg = std::move(g);
    }
    if (dfg.size() == 0) continue;
    // The designer set the partitioner chose (apps use the defaults).
    const auto sets = sched::DefaultDesignerSets();
    const sched::ResourceSet* rs = nullptr;
    for (const sched::ResourceSet& s : sets) {
      if (s.name == r.result.selected.front().core.resource_set) rs = &s;
    }
    if (rs == nullptr) continue;

    const sched::BlockSchedule ls =
        sched::ListSchedule(dfg, *rs, power::TechLibrary::Cmos6());
    const sched::FdsSchedule fds =
        sched::ForceDirectedSchedule(dfg, power::TechLibrary::Cmos6(), ls.num_steps);

    // Units the list schedule actually used (distinct instances).
    int used = 0;
    for (int ty = 0; ty < power::kNumResourceTypes; ++ty) {
      int peak = 0;
      for (std::uint32_t step = 0; step < ls.num_steps; ++step) {
        int now = 0;
        for (const sched::ScheduledOp& op : ls.ops) {
          if (static_cast<int>(op.type) == ty && step >= op.step &&
              step < op.step + op.latency) {
            ++now;
          }
        }
        peak = std::max(peak, now);
      }
      used += peak;
    }

    std::string alloc;
    for (int ty = 0; ty < power::kNumResourceTypes; ++ty) {
      const int cnt = fds.allocation[static_cast<std::size_t>(ty)];
      if (cnt == 0) continue;
      if (!alloc.empty()) alloc += " ";
      alloc += std::to_string(cnt) + "x" +
               power::ResourceTypeName(static_cast<power::ResourceType>(ty));
    }
    t.add_row({r.app.name, std::to_string(dfg.size()), std::to_string(ls.num_steps),
               std::to_string(used), std::to_string(fds.total_units()), alloc});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nAt the same latency, force-directed scheduling derives datapaths of\n"
      "comparable (often identical) size to the designer sets — the paper's\n"
      "reference-design praxis is close to what automatic allocation finds.\n");
  return 0;
}
