// Regenerates the paper's Table 1: per-application energy of every core
// (i-cache, d-cache, memory+bus, µP core, ASIC core) and execution
// time in cycles, for the initial (I) and partitioned (P) designs,
// plus the savings / time-change percentages.
//
// Absolute joules differ from the paper (all models are reconstructed,
// DESIGN.md §2/§5); the comparison targets are the *shape*: savings in
// the 35..94% band with the paper's ordering, time improvements except
// for trick, hardware < ~16k cells.

#include <cstdio>

#include "bench_util.h"
#include "core/report.h"

int main() {
  using namespace lopass;
  bench::PrintHeader(
      "Table 1: energy dissipation and execution time, initial (I) vs partitioned (P)");

  std::vector<core::AppRow> rows;
  std::vector<bench::AppRun> runs = bench::RunAllApps();
  for (const bench::AppRun& r : runs) rows.push_back(r.row);

  TextTable table = core::RenderTable1(rows);
  std::printf("%s", table.ToString().c_str());

  bench::PrintHeader("Paper reference vs measured (shape comparison)");
  TextTable cmp;
  cmp.set_header({"App.", "Sav% paper", "Sav% measured", "Chg% paper", "Chg% measured",
                  "ASIC cells", "cluster", "resource set"});
  for (const bench::AppRun& r : runs) {
    char cells[32];
    std::snprintf(cells, sizeof cells, "%.0f", r.row.asic_cells);
    cmp.add_row({r.app.name, FormatPercent(r.app.paper.saving_percent),
                 FormatPercent(r.row.saving_percent()),
                 FormatPercent(r.app.paper.time_change_percent),
                 FormatPercent(r.row.time_change_percent()), cells, r.row.cluster,
                 r.row.resource_set});
  }
  std::printf("%s", cmp.ToString().c_str());

  // Headline claims of the abstract.
  double min_sav = 0.0, max_sav = -100.0, max_cells = 0.0;
  for (const bench::AppRun& r : runs) {
    min_sav = std::min(min_sav, r.row.saving_percent());
    max_sav = std::max(max_sav, r.row.saving_percent());
    max_cells = std::max(max_cells, r.row.asic_cells);
  }
  std::printf(
      "\nHeadline: energy savings between %.1f%% and %.1f%% "
      "(paper: 35%%..94%%), largest core %.0f cells (paper: <16k).\n",
      -max_sav, -min_sav, max_cells);
  return 0;
}
