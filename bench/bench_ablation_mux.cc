// Ablation: the interconnect (steering network) cost that Fig. 4's
// GEQ_RS omits.
//
// The paper counts functional-unit gate equivalents only; real
// behavioral synthesis also pays for the multiplexers that steer each
// unit's inputs, and sharing one unit across many producers grows that
// network. This sweep re-synthesizes every application's winning core
// with the binding-derived mux network folded into area and energy.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: interconnect (mux) cost in the synthesized core");

  TextTable t;
  t.set_header({"App.", "interconnect", "cells", "ASIC E", "Sav%"});
  for (const apps::Application& app : apps::AllApplications()) {
    const dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);
    for (const bool mux : {false, true}) {
      core::PartitionOptions opts = app.options;
      opts.include_interconnect = mux;
      core::Partitioner part(prog.module, prog.regions, opts);
      const core::PartitionResult r = part.Run(app.workload(app.full_scale));
      const core::AppRow row = r.ToRow(app.name);
      char cells[32];
      std::snprintf(cells, sizeof cells, "%.0f", row.asic_cells);
      t.add_row({app.name, mux ? "modeled" : "ignored (paper)", cells,
                 FormatEnergy(row.partitioned.asic_core),
                 FormatPercent(row.saving_percent())});
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nThe steering network adds a few percent of area and energy — enough\n"
      "to matter for the <16k-cells headline, not enough to change any\n"
      "partitioning decision.\n");
  return 0;
}
