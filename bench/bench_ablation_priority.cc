// Ablation: list-scheduler priority function.
//
// The paper's "simple list schedule" leaves the priority open; the two
// classic choices are longest-path-to-sink (depth) and least mobility
// (ALAP - ASAP slack). This sweep compares them across the suite's
// winning clusters.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: list-scheduler priority (depth vs mobility)");

  TextTable t;
  t.set_header({"App.", "priority", "ASIC cyc", "U_R", "Sav%", "Chg%"});
  for (const char* name : {"3d", "MPG", "digs", "trick"}) {
    const apps::Application app = apps::GetApplication(name);
    const dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);
    for (const auto pr : {sched::SchedulerOptions::Priority::kDepth,
                          sched::SchedulerOptions::Priority::kMobility}) {
      core::PartitionOptions opts = app.options;
      opts.scheduler.priority = pr;
      core::Partitioner part(prog.module, prog.regions, opts);
      const core::PartitionResult r = part.Run(app.workload(app.full_scale));
      const core::AppRow row = r.ToRow(app.name);
      char util[32];
      std::snprintf(util, sizeof util, "%.3f", row.asic_utilization);
      t.add_row({app.name,
                 pr == sched::SchedulerOptions::Priority::kDepth ? "depth" : "mobility",
                 std::to_string(r.asic_cycles), util,
                 FormatPercent(row.saving_percent()),
                 FormatPercent(row.time_change_percent())});
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nOn these dataflow-dense clusters the two priorities produce nearly\n"
      "identical schedules — the resource budget, not the ordering, binds.\n");
  return 0;
}
