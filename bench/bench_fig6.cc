// Regenerates the paper's Fig. 6: per-application energy savings and
// execution-time change, as a series table and an ASCII bar chart.

#include <cstdio>

#include "bench_util.h"
#include "core/report.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Fig. 6: achieved energy savings and change of execution time");

  std::vector<core::AppRow> rows;
  for (const bench::AppRun& r : bench::RunAllApps()) rows.push_back(r.row);
  std::printf("%s", core::RenderFig6(rows).c_str());
  return 0;
}
