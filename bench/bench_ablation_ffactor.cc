// Ablation: the objective-function balance (Fig. 1 line 13).
//
// OF = F · E/E_0 + G · GEQ/GEQ_0. "F is a factor given by the designer
// to balance the objective function between energy consumption and
// possible other design constraints"; §4 notes the algorithm "rejects
// clusters that would result in an unacceptably high hardware effort
// (due to factor F)". Sweeping the hardware weight G relative to F
// shows the veto kicking in.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: objective-function hardware weight (app: trick)");

  const apps::Application app = apps::GetApplication("trick");
  const dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);

  TextTable t;
  t.set_header({"F", "G", "partitioned", "cells", "Sav%", "Chg%", "OF(best)"});
  for (double g : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    core::PartitionOptions opts = app.options;
    opts.objective.f = 1.0;
    opts.objective.g = g;
    core::Partitioner part(prog.module, prog.regions, opts);
    const core::PartitionResult r = part.Run(app.workload(app.full_scale));
    const core::AppRow row = r.ToRow(app.name);
    double best_of = 0.0;
    for (const core::ClusterEvaluation& ev : r.evaluations) {
      if (ev.feasible && (best_of == 0.0 || ev.objective < best_of)) {
        best_of = ev.objective;
      }
    }
    char cells[32], of[32];
    std::snprintf(cells, sizeof cells, "%.0f", row.asic_cells);
    std::snprintf(of, sizeof of, "%.3f", best_of);
    t.add_row({"1.0", std::to_string(g), r.partitioned() ? "yes" : "no", cells,
               FormatPercent(row.saving_percent()),
               FormatPercent(row.time_change_percent()), of});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\ntrick's only cluster needs a divider-equipped core (~16k cells);\n"
      "once G makes that hardware term exceed the energy term's gain, the\n"
      "cluster is rejected and the design stays in software.\n");
  return 0;
}
