// Infrastructure micro-benchmarks (google-benchmark): throughput of the
// substrates the partitioner is built on — the instruction-set
// simulator, the cache simulator, the list scheduler and the end-to-end
// partitioning flow.

#include <benchmark/benchmark.h>

#include "apps/app.h"
#include "cache/cache_sim.h"
#include "common/prng.h"
#include "core/partitioner.h"
#include "dsl/lower.h"
#include "interp/interpreter.h"
#include "isa/codegen.h"
#include "iss/simulator.h"
#include "sched/dfg.h"
#include "sched/list_scheduler.h"

namespace {

using namespace lopass;

const char* kKernel = R"(
var n;
array a[4096];
var acc;
func main() {
  var i;
  acc = 0;
  for (i = 0; i < n; i = i + 1) {
    acc = acc + a[i & 4095] * 3 + (a[(i * 7) & 4095] >> 2);
  }
  return acc;
})";

void BM_IssThroughput(benchmark::State& state) {
  const dsl::LoweredProgram p = dsl::Compile(kKernel);
  const isa::SlProgram prog = isa::Generate(p.module);
  const std::int64_t n = state.range(0);
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    iss::Simulator sim(p.module, prog, iss::SystemConfig{});
    sim.SetScalar("n", n);
    const iss::SimResult r = sim.Run("main");
    instrs += r.instr_count;
    benchmark::DoNotOptimize(r.return_value);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssThroughput)->Arg(10000)->Arg(100000);

void BM_InterpreterThroughput(benchmark::State& state) {
  const dsl::LoweredProgram p = dsl::Compile(kKernel);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    interp::Interpreter it(p.module);
    it.SetScalar("n", state.range(0));
    ops += it.Run("main").steps;
  }
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput)->Arg(10000);

void BM_CacheSim(benchmark::State& state) {
  cache::CacheSim c(power::CacheGeometry{static_cast<std::uint32_t>(state.range(0)),
                                          16, 2, 32},
                    cache::WritePolicy::kWriteBackAllocate);
  Prng rng(42);
  std::vector<std::uint32_t> trace;
  for (int i = 0; i < 4096; ++i) trace.push_back(static_cast<std::uint32_t>(rng.next_below(1 << 16)) & ~3u);
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    for (std::uint32_t a : trace) benchmark::DoNotOptimize(c.Access(a, (a & 4u) != 0));
    accesses += trace.size();
  }
  state.counters["access/s"] = benchmark::Counter(
      static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheSim)->Arg(1024)->Arg(8192);

void BM_ListSchedulerScaling(benchmark::State& state) {
  // Synthetic block: a long expression over array loads.
  std::string expr = "a";
  for (int i = 0; i < state.range(0); ++i) {
    expr = "(" + expr + " + m[(a + " + std::to_string(i) + ") & 255] * " +
           std::to_string(i % 9 + 1) + ")";
  }
  const dsl::LoweredProgram p =
      dsl::Compile("array m[256];\nfunc main(a) { return " + expr + "; }");
  // Find the biggest block.
  sched::BlockDfg dfg;
  for (const ir::BasicBlock& b : p.module.function(0).blocks) {
    sched::BlockDfg g = sched::BuildBlockDfg(b);
    if (g.size() > dfg.size()) dfg = std::move(g);
  }
  const auto sets = sched::DefaultDesignerSets();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::ListSchedule(dfg, sets[1], power::TechLibrary::Cmos6()).num_steps);
  }
  state.counters["ops"] = static_cast<double>(dfg.size());
}
BENCHMARK(BM_ListSchedulerScaling)->Arg(16)->Arg(64)->Arg(256);

void BM_PartitionerEndToEnd(benchmark::State& state) {
  const apps::Application app = apps::GetApplication("3d");
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::RunApplication(app, 1).partitioned());
  }
}
BENCHMARK(BM_PartitionerEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
