// Ablation: software code quality and the HW/SW break-even point.
//
// The paper's energy comparison implicitly depends on how well the µP
// side is compiled: better software shrinks the cluster's software
// energy and makes hardware look *less* attractive. This sweep runs the
// suite with (a) the baseline non-optimizing flow, (b) IR-level
// optimization (constant folding + CSE + DCE), and (c) IR optimization
// plus the SL32 peephole pass, and reports how the savings move.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"
#include "opt/passes.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: compiler quality (IR passes + peephole)");

  TextTable t;
  t.set_header({"App.", "compiler", "initial cyc", "initial E", "Sav%", "Chg%"});
  for (const char* name : {"3d", "digs", "trick"}) {
    const apps::Application app = apps::GetApplication(name);
    for (int level = 0; level < 3; ++level) {
      dsl::LoweredProgram prog = dsl::Compile(app.dsl_source);
      if (level >= 1) opt::RunStandardPasses(prog.module);
      core::PartitionOptions opts = app.options;
      opts.peephole = level >= 2;
      core::Partitioner part(prog.module, prog.regions, opts);
      const core::PartitionResult r = part.Run(app.workload(app.full_scale));
      const core::AppRow row = r.ToRow(app.name);
      static const char* kLevels[] = {"-O0 (paper runs)", "-O1 (IR passes)",
                                      "-O1 + peephole"};
      t.add_row({app.name, kLevels[level], std::to_string(r.initial_run.up_cycles),
                 FormatEnergy(row.initial.total()),
                 FormatPercent(row.saving_percent()),
                 FormatPercent(row.time_change_percent())});
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nBetter software compilation shrinks the baseline energy, so the\n"
      "*relative* saving of the partition decreases slightly — but the hot\n"
      "clusters stay profitable: the paper's conclusion is robust to the\n"
      "compiler.\n");
  return 0;
}
