#pragma once

// Shared helpers for the benchmark harness binaries.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "apps/app.h"
#include "core/partitioner.h"

namespace lopass::bench {

struct AppRun {
  apps::Application app;
  core::PartitionResult result;
  core::AppRow row;
};

// Runs the full partitioning flow for every paper application at full
// scale (the Table 1 configuration).
inline std::vector<AppRun> RunAllApps() {
  std::vector<AppRun> runs;
  for (const apps::Application& app : apps::AllApplications()) {
    AppRun r{app, apps::RunApplication(app), {}};
    r.row = r.result.ToRow(app.name);
    runs.push_back(std::move(r));
  }
  return runs;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace lopass::bench
