// Negative-result experiment: control-dominated systems.
//
// The paper's conclusion: "Further work will concentrate on deriving
// low-power methods for control-dominated systems." — the published
// method is "tailored especially to computation and memory intensive
// applications". This bench shows the two structural reasons on a
// protocol/state-machine workload:
//
//  1. Real control code factors its actions into handler routines that
//     are invoked from several states. Clusters containing calls are
//     not hardware-mappable, and multi-site callees do not form
//     function clusters — the decomposition finds *no candidate at
//     all* (the common case).
//  2. Even a flattened, call-free dispatcher offers only sparse
//     dataflow: each branch arm exercises a different resource, so any
//     candidate core idles most instances and U_R barely clears (or
//     fails) the U_R > U_uP gate; when it does clear it, it is the
//     stream-parser character of the loop (loads + checksum xors) that
//     pays, not the control structure.

#include <cstdio>

#include "core/partitioner.h"
#include "dsl/lower.h"
#include "bench_util.h"

namespace {

// Variant 1: idiomatic control code — shared handler routines invoked
// from multiple states.
const char* kFactored = R"(
var nbytes;
var state; var good; var bad; var csum; var len;
array pkt[4096];

func accept() {
  good = good + 1;
  state = 0;
  return 0;
}
func reject() {
  bad = bad + 1;
  state = 0;
  return 0;
}

func main() {
  var i;
  for (i = 0; i < nbytes; i = i + 1) {
    var byte;
    byte = pkt[i & 4095];
    if (state == 0) {
      if (byte == 126) { state = 1; csum = 0; len = 0; }
    } else {
      if (state == 1) {
        if (byte > 200) { reject(); }
        else { len = byte; state = 2; }
      } else {
        if (byte == 125) { csum = csum ^ 32; }
        else {
          csum = csum ^ byte;
          len = len - 1;
          if (len <= 0) {
            if (csum == 0) { accept(); } else { reject(); }
          }
        }
      }
    }
  }
  return good * 1000 + bad;
})";

lopass::core::Workload MakeWorkload() {
  lopass::core::Workload w;
  w.setup = [](lopass::core::DataTarget& t) {
    t.SetScalar("nbytes", 20000);
    std::vector<std::int64_t> pkt;
    std::uint32_t x = 0xbeef;
    for (int i = 0; i < 4096; ++i) {
      x = x * 1103515245u + 12345u;
      pkt.push_back((x >> 7) % 16 == 0 ? 126 : (x >> 9) & 255);
    }
    t.FillArray("pkt", pkt);
  };
  return w;
}

}  // namespace

int main() {
  using namespace lopass;
  bench::PrintHeader("Control-dominated system (paper's declared future work)");

  const dsl::LoweredProgram prog = dsl::Compile(kFactored);
  core::Partitioner part(prog.module, prog.regions);
  const core::PartitionResult r = part.Run(MakeWorkload());

  std::printf("cluster decomposition of the factored state machine:\n");
  int candidates = 0;
  for (const core::Cluster& c : r.chain.clusters) {
    std::printf("  %-12s kind=%-8s hw-candidate=%s%s\n", c.label.c_str(),
                ir::RegionKindName(c.kind), c.hw_candidate ? "yes" : "no",
                c.contains_calls ? "  (contains calls)" : "");
    if (c.hw_candidate) ++candidates;
  }
  const core::AppRow row = r.ToRow("protocol");
  std::printf("\nhardware candidates: %d   partitioned: %s   saving %s%%\n",
              candidates, r.partitioned() ? "yes" : "no",
              FormatPercent(row.saving_percent()).c_str());
  std::printf(
      "\nThe hot loop invokes accept()/reject() from several states: it is\n"
      "not hardware-mappable, the handlers are multi-site callees (no\n"
      "function cluster), and the decomposition yields zero candidates —\n"
      "the method, as the paper anticipates, has nothing to offer\n"
      "control-dominated code at this granularity. (A fully flattened,\n"
      "call-free parser *is* accepted, but as a stream-processing loop:\n"
      "its loads and checksum arithmetic, not its control, carry the win.)\n");
  return r.partitioned() ? 1 : 0;
}
