// Ablation: loop unrolling as a U_R booster.
//
// The utilization rate U_R of a candidate cluster suffers from small
// basic blocks: each control step keeps only a few of the allocated
// units busy, and every block costs a controller cycle. Unrolling the
// hot loop enlarges its dataflow block, letting the binding keep units
// busier. This sweep partitions the digs smoothing kernel at unroll
// factors 1..8 and reports the utilization, hardware and savings trend.

#include <cstdio>

#include "bench_util.h"
#include "dsl/lower.h"

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: hot-loop unrolling (app: digs)");

  const apps::Application app = apps::GetApplication("digs");

  TextTable t;
  t.set_header({"unroll", "U_R", "cells", "ASIC cyc", "Sav%", "Chg%"});
  for (int factor : {1, 2, 4, 8}) {
    dsl::LoweredProgram prog =
        dsl::CompileWithUnroll(app.dsl_source, factor, /*max_body_stmts=*/32);
    core::Partitioner part(prog.module, prog.regions, app.options);
    const core::PartitionResult r = part.Run(app.workload(app.full_scale));
    const core::AppRow row = r.ToRow(app.name);
    char util[32], cells[32];
    std::snprintf(util, sizeof util, "%.3f", row.asic_utilization);
    std::snprintf(cells, sizeof cells, "%.0f", row.asic_cells);
    t.add_row({std::to_string(factor), util, cells, std::to_string(r.asic_cycles),
               FormatPercent(row.saving_percent()),
               FormatPercent(row.time_change_percent())});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nUnrolling raises the memory-port and multiplier utilization of the\n"
      "convolution core and amortizes the per-block controller cycle; the\n"
      "returns diminish once the single memory port saturates.\n");
  return 0;
}
