// Ablation: the synergy terms of the bus-transfer estimator (Fig. 3
// steps 2 and 4) and multi-cluster selection.
//
// When two adjacent clusters both move to the ASIC core, the data
// flowing between them never crosses the shared memory, so the
// estimator subtracts those words. This bench uses a three-stage
// pipeline whose middle stages are both profitable and compares
// selection with and without the synergy terms.

#include <cstdio>

#include "core/partitioner.h"
#include "dsl/lower.h"
#include "bench_util.h"

namespace {

const char* kPipeline = R"(
var n;
array raw[2048];
array filt[2048];
array grad[2048];
var edges;

func main() {
  var i;
  // Stage 1: denoise (adjacent-sample average).
  for (i = 1; i < n - 1; i = i + 1) {
    filt[i] = (raw[i - 1] + raw[i] * 2 + raw[i + 1]) >> 2;
  }
  // Stage 2: gradient.
  for (i = 1; i < n - 1; i = i + 1) {
    grad[i] = abs(filt[i + 1] - filt[i - 1]) * 3;
  }
  // Stage 3: edge count (software).
  edges = 0;
  for (i = 1; i < n - 1; i = i + 1) {
    if (grad[i] > 96) { edges = edges + 1; }
  }
  return edges;
})";

}  // namespace

int main() {
  using namespace lopass;
  bench::PrintHeader("Ablation: Fig. 3 synergy terms with 2 HW clusters (pipeline)");

  const dsl::LoweredProgram prog = dsl::Compile(kPipeline);
  core::Workload w;
  w.setup = [](core::DataTarget& t) {
    t.SetScalar("n", 2048);
    std::vector<std::int64_t> raw;
    for (int i = 0; i < 2048; ++i) raw.push_back((i * 7919) % 251);
    t.FillArray("raw", raw);
  };

  TextTable t;
  t.set_header({"synergy", "clusters selected", "entry words", "exit words",
                "E_trans", "Sav%"});
  for (const bool synergy : {true, false}) {
    core::PartitionOptions opts;
    opts.max_hw_clusters = 2;
    opts.use_synergy = synergy;
    core::Partitioner part(prog.module, prog.regions, opts);
    const core::PartitionResult r = part.Run(w);
    std::uint64_t in = 0, out = 0;
    Energy e;
    std::string names;
    for (const core::PartitionDecision& d : r.selected) {
      in += d.transfers.up_to_mem_words;
      out += d.transfers.asic_to_mem_words;
      e += d.transfers.energy;
      if (!names.empty()) names += " + ";
      names += d.cluster_label;
    }
    const core::AppRow row = r.ToRow("pipeline");
    t.add_row({synergy ? "on (paper)" : "off", names, std::to_string(in),
               std::to_string(out), FormatEnergy(e),
               FormatPercent(row.saving_percent())});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nWith the synergy terms, mapping both adjacent stages drops the\n"
      "intermediate array from the transfer estimate (steps 2/4 of Fig. 3).\n");
  return 0;
}
