#include "sched/force_directed.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "dsl/lower.h"
#include "sched/asap_alap.h"
#include "sched/list_scheduler.h"

namespace lopass::sched {
namespace {

using power::ResourceType;
using power::TechLibrary;

BlockDfg HotDfg(const std::string& src, std::size_t min_ops) {
  const dsl::LoweredProgram p = dsl::Compile(src);
  BlockDfg best;
  for (const ir::BasicBlock& b : p.module.function(0).blocks) {
    BlockDfg g = BuildBlockDfg(b);
    if (g.size() >= min_ops && g.size() > best.size()) best = std::move(g);
  }
  return best;
}

void ValidateFds(const BlockDfg& g, const FdsSchedule& s,
                 const TechLibrary& lib = TechLibrary::Cmos6()) {
  ASSERT_EQ(s.step.size(), g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    const Cycles lat = lib.spec(s.type[i]).op_latency;
    EXPECT_LE(s.step[i] + lat, s.latency) << i;
    for (std::size_t p : g.nodes[i].preds) {
      const Cycles plat = lib.spec(s.type[p]).op_latency;
      EXPECT_GE(s.step[i], s.step[p] + plat) << i << " before pred " << p;
    }
  }
}

TEST(ForceDirected, ChainIsForced) {
  // A pure dependency chain at critical-path latency has no freedom.
  const BlockDfg g = HotDfg("func main(a) { return (((a + 1) + 2) + 3) + 4; }", 4);
  const FdsSchedule s = ForceDirectedSchedule(g, TechLibrary::Cmos6());
  ValidateFds(g, s);
  const auto asap = AsapSchedule(g, TechLibrary::Cmos6());
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(s.step[i], asap.step[i]);
  EXPECT_EQ(s.allocation[static_cast<int>(ResourceType::kAdder)], 1);
}

TEST(ForceDirected, BalancesParallelWorkAcrossSlack) {
  // Four independent adds feeding a balanced reduction: the critical
  // path is 3 add-steps, so some adds have slack. With a budget of 4,
  // FDS should spread them onto <= 2 concurrent adders instead of the
  // ASAP peak of 4.
  const BlockDfg g = HotDfg(
      "func main(a, b, c, d) { return ((a + 1) + (b + 2)) + ((c + 3) + (d + 4)); }", 7);
  const auto asap = AsapSchedule(g, TechLibrary::Cmos6());
  const FdsSchedule tight = ForceDirectedSchedule(g, TechLibrary::Cmos6(), asap.makespan);
  const FdsSchedule relaxed =
      ForceDirectedSchedule(g, TechLibrary::Cmos6(), asap.makespan + 2);
  ValidateFds(g, tight);
  ValidateFds(g, relaxed);
  EXPECT_LE(relaxed.allocation[static_cast<int>(ResourceType::kAdder)],
            tight.allocation[static_cast<int>(ResourceType::kAdder)]);
  EXPECT_LE(relaxed.allocation[static_cast<int>(ResourceType::kAdder)], 2);
}

TEST(ForceDirected, RejectsInfeasibleBudget) {
  const BlockDfg g = HotDfg("func main(a) { return a * a * a; }", 2);
  EXPECT_THROW(ForceDirectedSchedule(g, TechLibrary::Cmos6(), 1), Error);
}

TEST(ForceDirected, EmptyDfg) {
  const FdsSchedule s = ForceDirectedSchedule(BlockDfg{}, TechLibrary::Cmos6());
  EXPECT_EQ(s.latency, 0u);
  EXPECT_EQ(s.total_units(), 0);
}

TEST(ForceDirected, AllocationNeverBelowListSchedulerNeeds) {
  // At the same latency the list scheduler achieved with a one-of-each
  // set, FDS's allocation estimate must be a valid datapath: replaying
  // its placements never exceeds its own reported peaks (consistency),
  // and the makespan budget is honored.
  const char* src = R"(
    array m[32];
    func main(a, b) {
      var t;
      t = m[a & 31] * b + m[b & 31] * a + (a << 2) + (b >> 1) + abs(a - b)
        + m[(a + b) & 31] - (a & b);
      m[0] = t;
      return t;
    })";
  const BlockDfg g = HotDfg(src, 10);
  ResourceSet rs;
  rs.name = "one";
  rs.set(ResourceType::kAlu, 1)
      .set(ResourceType::kAdder, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMultiplier, 1)
      .set(ResourceType::kMemoryPort, 1);
  const BlockSchedule ls = ListSchedule(g, rs, TechLibrary::Cmos6());
  const FdsSchedule fds = ForceDirectedSchedule(g, TechLibrary::Cmos6(), ls.num_steps);
  ValidateFds(g, fds);
  EXPECT_LE(fds.latency, ls.num_steps);
  // Sanity: FDS used at least one unit of some type.
  EXPECT_GE(fds.total_units(), 1);
}

TEST(ForceDirected, MultiCycleOpsOccupyTheirSpan) {
  // Two independent multiplies (2 cycles each) with budget 4: one
  // multiplier suffices only if they are staggered 2 apart.
  const BlockDfg g =
      HotDfg("func main(a, b) { return 0 * (a * a) + (b * b); }", 3);
  const auto asap = AsapSchedule(g, TechLibrary::Cmos6());
  const FdsSchedule s =
      ForceDirectedSchedule(g, TechLibrary::Cmos6(), asap.makespan + 2);
  ValidateFds(g, s);
  EXPECT_LE(s.allocation[static_cast<int>(ResourceType::kMultiplier)], 2);
}

}  // namespace
}  // namespace lopass::sched
