# Drives lopass_cli under fault injection (or with malformed input)
# and asserts on the exit code and the diagnostics on stderr.
#
# Arguments (via -D):
#   CLI          path to the lopass_cli binary
#   CLI_ARGS     semicolon-separated argument list
#   FAULT_SPEC   value for LOPASS_FAULT_INJECT ("" = no injection)
#   EXPECT_RC    required exit code
#   EXPECT_ERR   substring that must appear on stderr ("" = skip check)
#
# The invocation is wrapped in a timeout by the caller (ctest TIMEOUT),
# so a hang also fails — "exits with a diagnostic, never crashes or
# hangs" is checked end to end, on the real binary.

if(NOT DEFINED CLI OR NOT DEFINED EXPECT_RC)
  message(FATAL_ERROR "cli_fault_check.cmake needs -DCLI=... and -DEXPECT_RC=...")
endif()

set(ENV{LOPASS_FAULT_INJECT} "${FAULT_SPEC}")
execute_process(
  COMMAND ${CLI} ${CLI_ARGS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)

if(NOT rc STREQUAL "${EXPECT_RC}")
  message(FATAL_ERROR
    "expected exit code ${EXPECT_RC}, got '${rc}'\n"
    "spec: '${FAULT_SPEC}'  args: ${CLI_ARGS}\nstdout:\n${out}\nstderr:\n${err}")
endif()

if(EXPECT_ERR)
  string(FIND "${err}" "${EXPECT_ERR}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "stderr does not contain '${EXPECT_ERR}'\nstderr was:\n${err}")
  endif()
endif()
