#include "dsl/lower.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "ir/print.h"
#include "ir/verify.h"

namespace lopass::dsl {
namespace {

using ir::RegionKind;

TEST(Lower, CompileVerifiesAndAssignsAddresses) {
  const LoweredProgram p = Compile(R"(
    var g = 7;
    array a[4];
    func main() { return g; }
  )");
  EXPECT_EQ(p.module.num_functions(), 1u);
  EXPECT_GT(p.module.data_size_bytes(), 0u);
  // Word-aligned, distinct addresses.
  const auto g = p.module.FindSymbol("g", -1);
  const auto a = p.module.FindSymbol("a", -1);
  ASSERT_TRUE(g && a);
  EXPECT_EQ(p.module.symbol(*g).address % 4, 0u);
  EXPECT_NE(p.module.symbol(*g).address, p.module.symbol(*a).address);
  EXPECT_EQ(p.module.symbol(*g).init, 7);
}

TEST(Lower, FunctionRegionTreeForLoops) {
  const LoweredProgram p = Compile(R"(
    func main() {
      var i; var s;
      s = 0;
      for (i = 0; i < 4; i = i + 1) { s = s + i; }
      return s;
    })");
  const ir::RegionId root = p.regions.function_root(0);
  const ir::RegionNode& rn = p.regions.node(root);
  EXPECT_EQ(rn.kind, RegionKind::kFunction);
  // Children: leading leaf, the loop, trailing leaf.
  bool saw_loop = false;
  for (ir::RegionId c : rn.children) {
    if (p.regions.node(c).kind == RegionKind::kLoop) saw_loop = true;
  }
  EXPECT_TRUE(saw_loop);
}

TEST(Lower, NestedLoopsNestInRegionTree) {
  const LoweredProgram p = Compile(R"(
    func main() {
      var i; var j; var s;
      for (i = 0; i < 3; i = i + 1) {
        for (j = 0; j < 3; j = j + 1) { s = s + 1; }
      }
      return s;
    })");
  // Find the outer loop region and check an inner loop lives below it.
  const ir::RegionId root = p.regions.function_root(0);
  int outer_loops = 0;
  int inner_loops = 0;
  for (const ir::RegionNode& n : p.regions.nodes()) {
    if (n.kind != RegionKind::kLoop) continue;
    if (n.loop_depth == 1) ++outer_loops;
    if (n.loop_depth == 2) ++inner_loops;
  }
  EXPECT_EQ(outer_loops, 1);
  EXPECT_EQ(inner_loops, 1);
  (void)root;
}

TEST(Lower, IfElseRegions) {
  const LoweredProgram p = Compile(R"(
    func main(a) {
      var r;
      if (a > 0) { r = 1; } else { r = 2; }
      return r;
    })");
  int ifelse = 0;
  for (const ir::RegionNode& n : p.regions.nodes()) {
    if (n.kind == RegionKind::kIfElse) ++ifelse;
  }
  EXPECT_EQ(ifelse, 1);
}

TEST(Lower, EveryBlockOwnedByExactlyOneRegion) {
  const LoweredProgram p = Compile(R"(
    func main(a) {
      var i; var s;
      if (a > 0) { s = 1; } else { s = 2; }
      for (i = 0; i < a; i = i + 1) { s = s + i; if (s > 10) { s = 0; } }
      while (s > 0) { s = s - 1; }
      return s;
    })");
  std::vector<int> owners(p.module.function(0).blocks.size(), 0);
  for (const ir::RegionNode& n : p.regions.nodes()) {
    for (ir::BlockId b : n.blocks) ++owners[static_cast<std::size_t>(b)];
  }
  for (std::size_t i = 0; i < owners.size(); ++i) {
    EXPECT_EQ(owners[i], 1) << "block " << i;
  }
}

TEST(Lower, LogicalOpsAreArithmetic) {
  // `a && b` lowers to (a != 0) & (b != 0); both sides evaluate.
  const LoweredProgram p = Compile(R"(
    func main(a, b) { return (a && b) + (a || b) + !a; })");
  const std::string text = ir::ToString(p.module, p.module.function(0));
  EXPECT_NE(text.find("cmpne"), std::string::npos);
  EXPECT_NE(text.find("and"), std::string::npos);
  EXPECT_NE(text.find("or"), std::string::npos);
}

TEST(Lower, AbsBecomesNegMax) {
  const LoweredProgram p = Compile("func main(a) { return abs(a); }");
  const std::string text = ir::ToString(p.module, p.module.function(0));
  EXPECT_NE(text.find("neg"), std::string::npos);
  EXPECT_NE(text.find("max"), std::string::npos);
}

TEST(Lower, StatementsAfterReturnAreUnreachableButValid) {
  EXPECT_NO_THROW(Compile("func main() { return 1; var x; x = 2; }"));
}

TEST(Lower, MissingReturnGetsImplicitOne) {
  const LoweredProgram p = Compile("func main() { var x; x = 1; }");
  EXPECT_NO_THROW(ir::VerifyOrThrow(p.module));
}

TEST(Lower, LocalShadowsGlobal) {
  const LoweredProgram p = Compile(R"(
    var x = 9;
    func main() { var x; x = 1; return x; }
  )");
  // Two distinct symbols named x.
  int count = 0;
  for (const ir::Symbol& s : p.module.symbols()) {
    if (s.name == "x") ++count;
  }
  EXPECT_EQ(count, 2);
}

class LowerErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(LowerErrors, Throws) { EXPECT_THROW(Compile(GetParam()), lopass::Error); }

INSTANTIATE_TEST_SUITE_P(
    SemanticErrors, LowerErrors,
    ::testing::Values(
        "func main() { return y; }",                        // undeclared
        "func main() { var x; var x; }",                    // redeclaration
        "var g = 1; var g = 2; func main() { return 0; }",  // dup global
        "func f() { return 0; } func f() { return 1; }",    // dup function
        "func main() { return f(1); }",                     // unknown callee
        "array a[4]; func main() { return a; }",            // array as scalar
        "var s; func main() { return s[0]; }",              // scalar as array
        "func main() { return min(1); }",                   // builtin arity
        "func main() { return abs(1, 2); }",                // builtin arity
        "func main(a, a) { return 0; }",                    // dup param
        "func main() { break; }",                           // break outside loop
        "func main() { continue; return 0; }"               // continue outside loop
        ));

}  // namespace
}  // namespace lopass::dsl
