#include "iss/simulator.h"

#include <gtest/gtest.h>

#include "dsl/lower.h"
#include "isa/codegen.h"

namespace lopass::iss {
namespace {

struct Prepared {
  dsl::LoweredProgram prog;
  isa::SlProgram code;
};

Prepared Prepare(const std::string& src) {
  Prepared p{dsl::Compile(src), {}};
  p.code = isa::Generate(p.prog.module);
  return p;
}

const char* kLoopy = R"(
var sink;
array data[64];
func main(n) {
  var i; var s;
  s = 0;
  for (i = 0; i < n; i = i + 1) {
    data[i & 63] = i * 3;
    s = s + data[(i * 7) & 63];
  }
  sink = s;
  return s;
})";

TEST(Simulator, CountsCyclesAndInstructions) {
  Prepared p = Prepare(kLoopy);
  Simulator sim(p.prog.module, p.code, SystemConfig{});
  const std::vector<std::int64_t> args{100};
  const SimResult r = sim.Run("main", args);
  EXPECT_GT(r.instr_count, 100u);
  // Cycles >= instructions (every instruction takes >= 1 cycle).
  EXPECT_GE(r.up_cycles, r.instr_count);
  EXPECT_GT(r.energy.up_core.joules, 0.0);
  EXPECT_GT(r.energy.icache.joules, 0.0);
  EXPECT_GT(r.energy.dcache.joules, 0.0);
}

TEST(Simulator, MoreWorkMoreCyclesAndEnergy) {
  Prepared p = Prepare(kLoopy);
  Simulator a(p.prog.module, p.code, SystemConfig{});
  const std::vector<std::int64_t> small{50};
  const SimResult ra = a.Run("main", small);
  Simulator b(p.prog.module, p.code, SystemConfig{});
  const std::vector<std::int64_t> big{500};
  const SimResult rb = b.Run("main", big);
  EXPECT_GT(rb.up_cycles, ra.up_cycles);
  EXPECT_GT(rb.energy.total(), ra.energy.total());
}

TEST(Simulator, CacheStatsArePopulated) {
  Prepared p = Prepare(kLoopy);
  Simulator sim(p.prog.module, p.code, SystemConfig{});
  const std::vector<std::int64_t> args{200};
  const SimResult r = sim.Run("main", args);
  EXPECT_EQ(r.icache_stats.accesses(), r.instr_count);
  EXPECT_GT(r.dcache_stats.accesses(), 0u);
  // Loops fit in the i-cache: the miss rate must be tiny.
  EXPECT_LT(r.icache_stats.miss_rate(), 0.05);
}

TEST(Simulator, SmallerICacheMissesMore) {
  Prepared p = Prepare(kLoopy);
  SystemConfig small_cfg;
  small_cfg.icache.capacity_bytes = 64;
  Simulator a(p.prog.module, p.code, small_cfg);
  const std::vector<std::int64_t> args{200};
  const SimResult ra = a.Run("main", args);
  Simulator b(p.prog.module, p.code, SystemConfig{});
  const SimResult rb = b.Run("main", args);
  EXPECT_GE(ra.icache_stats.misses(), rb.icache_stats.misses());
}

TEST(Simulator, BlockCostsSumToTotals) {
  Prepared p = Prepare(kLoopy);
  Simulator sim(p.prog.module, p.code, SystemConfig{});
  const std::vector<std::int64_t> args{100};
  const SimResult r = sim.Run("main", args);
  Cycles cyc = 0;
  double energy = 0.0;
  std::uint64_t instrs = 0;
  for (const auto& fn_costs : r.block_costs) {
    for (const BlockCost& c : fn_costs) {
      cyc += c.cycles;
      energy += c.energy.joules;
      instrs += c.instrs;
    }
  }
  EXPECT_EQ(cyc, r.up_cycles);
  EXPECT_EQ(instrs, r.instr_count);
  EXPECT_NEAR(energy, r.energy.up_core.joules, 1e-12);
}

TEST(Simulator, UtilizationIsAFraction) {
  Prepared p = Prepare(kLoopy);
  Simulator sim(p.prog.module, p.code, SystemConfig{});
  const std::vector<std::int64_t> args{100};
  const SimResult r = sim.Run("main", args);
  EXPECT_GT(r.up_utilization, 0.0);
  EXPECT_LT(r.up_utilization, 1.0);
  for (int res = 0; res < kNumUpResources; ++res) {
    EXPECT_LE(r.active_cycles[static_cast<std::size_t>(res)], r.up_cycles);
  }
}

TEST(Simulator, HwPartitionMovesCostOffTheUp) {
  Prepared p = Prepare(kLoopy);
  Simulator base(p.prog.module, p.code, SystemConfig{});
  const std::vector<std::int64_t> args{300};
  const SimResult r0 = base.Run("main", args);

  // Mark the loop blocks (the hottest ones) as hardware.
  HwPartition part;
  part.block_cluster.resize(p.prog.module.num_functions());
  part.block_cluster[0].assign(p.prog.module.function(0).blocks.size(), -1);
  // Find blocks with the largest instruction counts: the loop.
  std::uint64_t best = 0;
  for (const BlockCost& c : r0.block_costs[0]) best = std::max(best, c.instrs);
  for (std::size_t b = 0; b < r0.block_costs[0].size(); ++b) {
    if (r0.block_costs[0][b].instrs >= best / 2) {
      part.block_cluster[0][b] = 0;
    }
  }
  part.clusters.push_back(HwPartition::ClusterIo{4, 2});

  Simulator sim(p.prog.module, p.code, SystemConfig{});
  const SimResult r1 = sim.Run("main", args, part);
  // Same functional result.
  EXPECT_EQ(r1.return_value, r0.return_value);
  // Software cost shrinks.
  EXPECT_LT(r1.up_cycles, r0.up_cycles);
  EXPECT_LT(r1.instr_count, r0.instr_count);
  EXPECT_LT(r1.energy.up_core, r0.energy.up_core);
  EXPECT_LT(r1.energy.icache, r0.energy.icache);
  // Boundary transfers were accounted.
  EXPECT_GT(r1.cluster_entries[0], 0u);
  EXPECT_EQ(r1.transfer_words_in, r1.cluster_entries[0] * 4);
}

TEST(Simulator, TransferWordsChargeBusAndMemory) {
  Prepared p = Prepare("func main() { return 7; }");
  HwPartition none;
  Simulator a(p.prog.module, p.code, SystemConfig{});
  const SimResult r0 = a.Run("main", {}, none);
  EXPECT_EQ(r0.transfer_words_in, 0u);
  EXPECT_EQ(r0.return_value, 7);
}

TEST(Simulator, UtilizationOfBlocksMatchesManualSum) {
  Prepared p = Prepare(kLoopy);
  Simulator sim(p.prog.module, p.code, SystemConfig{});
  const std::vector<std::int64_t> args{100};
  const SimResult r = sim.Run("main", args);
  std::vector<std::pair<ir::FunctionId, ir::BlockId>> all;
  for (std::size_t b = 0; b < r.block_costs[0].size(); ++b) {
    all.emplace_back(0, static_cast<ir::BlockId>(b));
  }
  EXPECT_NEAR(r.UtilizationOfBlocks(all), r.up_utilization, 1e-12);
}

TEST(Simulator, WorkloadApiMirrorsInterpreter) {
  Prepared p = Prepare(R"(
    var k;
    array v[4];
    func main() { return k + v[2]; })");
  Simulator sim(p.prog.module, p.code, SystemConfig{});
  sim.SetScalar("k", 40);
  const std::vector<std::int64_t> vals{0, 0, 2, 0};
  sim.FillArray("v", vals);
  EXPECT_EQ(sim.Run("main").return_value, 42);
}

TEST(Simulator, InstructionLimitGuard) {
  Prepared p = Prepare("func main() { while (1) { } return 0; }");
  Simulator sim(p.prog.module, p.code, SystemConfig{});
  EXPECT_THROW(sim.Run("main", {}, HwPartition{}, 1000), Error);
}


TEST(Simulator, EnergyTimelineSampling) {
  Prepared p = Prepare(kLoopy);
  SystemConfig cfg;
  cfg.timeline_interval_cycles = 500;
  Simulator sim(p.prog.module, p.code, cfg);
  const std::vector<std::int64_t> args{400};
  const SimResult r = sim.Run("main", args);
  ASSERT_GT(r.timeline.size(), 2u);
  // Samples are monotone in cycle and energy, spaced >= interval.
  for (std::size_t i = 1; i < r.timeline.size(); ++i) {
    EXPECT_GT(r.timeline[i].cycle, r.timeline[i - 1].cycle);
    EXPECT_GE(r.timeline[i].cycle - r.timeline[i - 1].cycle, 500u);
    EXPECT_GE(r.timeline[i].up_core.joules, r.timeline[i - 1].up_core.joules);
    EXPECT_GE(r.timeline[i].total.joules, r.timeline[i].up_core.joules);
  }
  // The last sample never exceeds the final totals.
  EXPECT_LE(r.timeline.back().up_core.joules, r.energy.up_core.joules);
  // Disabled by default.
  Simulator sim2(p.prog.module, p.code, SystemConfig{});
  EXPECT_TRUE(sim2.Run("main", args).timeline.empty());
}

TEST(TiwariModel, ClassEnergiesAreOrdered) {
  const TiwariModel& m = TiwariModel::Sparclite();
  // Divide costs the most; nop the least.
  EXPECT_GT(m.base_energy(isa::InstrClass::kDiv), m.base_energy(isa::InstrClass::kMul));
  EXPECT_GT(m.base_energy(isa::InstrClass::kMul), m.base_energy(isa::InstrClass::kAlu));
  EXPECT_LT(m.base_energy(isa::InstrClass::kNop), m.base_energy(isa::InstrClass::kAlu));
  // Circuit-state overhead is larger between different classes.
  EXPECT_GT(m.overhead(isa::InstrClass::kAlu, isa::InstrClass::kMul),
            m.overhead(isa::InstrClass::kAlu, isa::InstrClass::kAlu));
}


TEST(TiwariModel, UniformEnergyScaling) {
  const TiwariModel& base = TiwariModel::Sparclite();
  const TiwariModel scaled = base.ScaledBy(0.125);
  for (auto c : {isa::InstrClass::kAlu, isa::InstrClass::kMul, isa::InstrClass::kDiv,
                 isa::InstrClass::kLoad, isa::InstrClass::kNop}) {
    EXPECT_NEAR(scaled.base_energy(c).joules, base.base_energy(c).joules * 0.125,
                1e-18);
  }
  EXPECT_NEAR(scaled.stall_energy_per_cycle().joules,
              base.stall_energy_per_cycle().joules * 0.125, 1e-18);
  EXPECT_NEAR(
      scaled.overhead(isa::InstrClass::kAlu, isa::InstrClass::kMul).joules,
      base.overhead(isa::InstrClass::kAlu, isa::InstrClass::kMul).joules * 0.125,
      1e-18);
  // Resource-activation masks are untouched.
  EXPECT_EQ(scaled.active_resources(isa::InstrClass::kMul),
            base.active_resources(isa::InstrClass::kMul));
}

TEST(TiwariModel, PairOverheadMatrixIsAsymmetricallyConfigurable) {
  TiwariModel m;
  m.set_pair_overhead(isa::InstrClass::kAlu, isa::InstrClass::kShift,
                      Energy::from_nanojoules(9.0));
  EXPECT_NEAR(m.overhead(isa::InstrClass::kAlu, isa::InstrClass::kShift).nanojoules(),
              9.0, 1e-12);
  // Set symmetrically.
  EXPECT_NEAR(m.overhead(isa::InstrClass::kShift, isa::InstrClass::kAlu).nanojoules(),
              9.0, 1e-12);
  // Specific pairs of the default model differ from the generic value.
  const TiwariModel& d = TiwariModel::Sparclite();
  EXPECT_GT(d.overhead(isa::InstrClass::kMul, isa::InstrClass::kDiv),
            d.overhead(isa::InstrClass::kLoad, isa::InstrClass::kStore));
}

TEST(TiwariModel, ActiveResourceMasks) {
  const TiwariModel& m = TiwariModel::Sparclite();
  const std::uint32_t mul_mask = m.active_resources(isa::InstrClass::kMul);
  EXPECT_TRUE(mul_mask & (1u << static_cast<int>(UpResource::kMultiplier)));
  EXPECT_FALSE(mul_mask & (1u << static_cast<int>(UpResource::kDivider)));
  const std::uint32_t ld_mask = m.active_resources(isa::InstrClass::kLoad);
  EXPECT_TRUE(ld_mask & (1u << static_cast<int>(UpResource::kMemPort)));
}

}  // namespace
}  // namespace lopass::iss
