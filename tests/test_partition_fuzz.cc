// Differential fuzzing of the partition machinery: for randomly
// generated loop-bearing programs and randomized partitioner options,
// the partitioned system must compute exactly what the initial system
// computed (Eq. 3 moves work between cores, never changes it).

#include <gtest/gtest.h>

#include <sstream>

#include "common/fault.h"
#include "common/prng.h"
#include "core/partitioner.h"
#include "dsl/lower.h"

namespace lopass::core {
namespace {

std::string GenerateProgram(Prng& rng) {
  std::ostringstream os;
  os << "var g0; var g1;\n";
  os << "array a[32]; array b[32];\n";
  os << "func main(p) {\n  var i; var t;\n  t = p;\n";

  const int nloops = 2 + static_cast<int>(rng.next_below(2));
  for (int l = 0; l < nloops; ++l) {
    const int trip = static_cast<int>(rng.next_in(40, 400));
    os << "  for (i = 0; i < " << trip << "; i = i + 1) {\n";
    switch (rng.next_below(4)) {
      case 0:  // MAC over arrays
        os << "    a[i & 31] = b[i & 31] * " << rng.next_in(1, 7) << " + t;\n"
           << "    t = t + a[(i * 3) & 31];\n";
        break;
      case 1:  // scalar recurrence with division
        os << "    t = t + (1000 - t) / " << rng.next_in(3, 17) << ";\n"
           << "    g0 = g0 + (t & 15);\n";
        break;
      case 2:  // branchy accumulation
        os << "    if ((i & 3) == 1) { g1 = g1 + b[i & 31]; }\n"
           << "    else { t = t ^ (i << 1); }\n";
        break;
      default:  // shifts and min/max
        os << "    t = max(t, b[i & 31] << 1) - min(i, 100);\n"
           << "    b[i & 31] = t & 255;\n";
        break;
    }
    os << "  }\n";
  }
  os << "  return t + g0 * 3 - g1;\n}\n";
  return os.str();
}

class PartitionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PartitionFuzz, PartitionedSystemIsFunctionallyIdentical) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 1442695040888963407ull + 11);
  const std::string src = GenerateProgram(rng);
  SCOPED_TRACE(src);

  const dsl::LoweredProgram p = dsl::Compile(src);

  Workload w;
  const std::int64_t arg = rng.next_in(-100, 100);
  w.args = {arg};
  w.setup = [&rng](DataTarget& t) {
    // Deterministic per-seed data.
    Prng data(0xdada);
    std::vector<std::int64_t> va, vb;
    for (int i = 0; i < 32; ++i) {
      va.push_back(data.next_in(-50, 50));
      vb.push_back(data.next_in(-50, 50));
    }
    t.FillArray("a", va);
    t.FillArray("b", vb);
  };

  PartitionOptions opts;
  opts.max_hw_clusters = 1 + static_cast<int>(rng.next_below(2));
  opts.scheduler.enable_chaining = rng.next_below(2) == 1;
  opts.use_synergy = rng.next_below(2) == 1;
  opts.peephole = rng.next_below(2) == 1;
  if (rng.next_below(3) == 0) opts.strategy = Strategy::kPerformance;

  Partitioner part(p.module, p.regions, opts);
  const PartitionResult r = part.Run(w);
  EXPECT_EQ(r.initial_run.return_value, r.partitioned_run.return_value);
  // The initial run must itself match the interpreter-computed result
  // indirectly: re-running the partitioner is deterministic.
  Partitioner part2(p.module, p.regions, opts);
  const PartitionResult r2 = part2.Run(w);
  EXPECT_EQ(r.initial_run.return_value, r2.initial_run.return_value);
  EXPECT_EQ(r.partitioned() ? r.selected.front().cluster_id : -1,
            r2.partitioned() ? r2.selected.front().cluster_id : -1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionFuzz, ::testing::Range(0, 30));

// Fault-injection fuzzing: arm a random site on a random hit for each
// generated program. Whatever stage fails, the flow must either fail
// fast with InjectedFault or return a result that is still functionally
// identical to the unpartitioned system — never crash, hang, or report
// a partition whose simulation diverges.
TEST_P(PartitionFuzz, InjectedFaultsNeverCorruptResults) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ull + 7);
  const std::string src = GenerateProgram(rng);

  Workload w;
  w.args = {rng.next_in(-100, 100)};
  w.setup = [](DataTarget& t) {
    Prng data(0xdada);
    std::vector<std::int64_t> va, vb;
    for (int i = 0; i < 32; ++i) {
      va.push_back(data.next_in(-50, 50));
      vb.push_back(data.next_in(-50, 50));
    }
    t.FillArray("a", va);
    t.FillArray("b", vb);
  };

  PartitionOptions opts;
  opts.max_hw_clusters = 1 + static_cast<int>(rng.next_below(2));
  opts.use_synergy = rng.next_below(2) == 1;

  const dsl::LoweredProgram p = dsl::Compile(src);
  Partitioner part(p.module, p.regions, opts);
  const std::int64_t expected = part.Run(w).initial_run.return_value;

  const char* kSites[] = {"alloc", "profile", "sim", "schedule", "synth", "estimate"};
  const char* site = kSites[rng.next_below(6)];
  const std::int64_t nth = rng.next_in(1, 3);
  SCOPED_TRACE(std::string(site) + ":" + std::to_string(nth) + "\n" + src);
  fault::ScopedSpec spec(std::string(site) + ":" + std::to_string(nth));
  try {
    const PartitionResult r = part.Run(w);
    EXPECT_EQ(r.initial_run.return_value, expected);
    EXPECT_EQ(r.partitioned_run.return_value, expected);
    // Beyond the always-present run-context note, any recorded
    // diagnostic must be a degradation.
    if (r.diagnostics.size() > 1) {
      EXPECT_TRUE(r.degraded());
    }
    EXPECT_EQ(r.diagnostics[0].code, "run.context");
  } catch (const InjectedFault&) {
    // Fail-fast before a usable baseline exists is the other legal
    // outcome (profiling or the initial simulation was hit).
  }
}

}  // namespace
}  // namespace lopass::core
