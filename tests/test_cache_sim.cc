#include "cache/cache_sim.h"

#include <gtest/gtest.h>

#include "common/prng.h"
#include "power/tech_library.h"

namespace lopass::cache {
namespace {

using power::CacheGeometry;

CacheSim MakeDm() {
  return CacheSim(CacheGeometry{256, 16, 1, 32}, WritePolicy::kWriteBackAllocate);
}

TEST(CacheSim, ColdMissThenHit) {
  CacheSim c = MakeDm();
  EXPECT_FALSE(c.Access(0x100, false));
  EXPECT_TRUE(c.Access(0x100, false));
  EXPECT_TRUE(c.Access(0x104, false));  // same line
  EXPECT_EQ(c.stats().read_misses, 1u);
  EXPECT_EQ(c.stats().read_hits, 2u);
  EXPECT_EQ(c.stats().line_fills, 1u);
}

TEST(CacheSim, ConflictMissesInDirectMapped) {
  CacheSim c = MakeDm();  // 16 sets of 16B
  // Two addresses that map to the same set (differ by cache size).
  c.Access(0x000, false);
  c.Access(0x100, false);  // evicts 0x000
  EXPECT_FALSE(c.Access(0x000, false));
  EXPECT_EQ(c.stats().read_misses, 3u);
}

TEST(CacheSim, TwoWayAssociativityAvoidsThatConflict) {
  CacheSim c(CacheGeometry{256, 16, 2, 32}, WritePolicy::kWriteBackAllocate);
  c.Access(0x000, false);
  c.Access(0x100, false);
  EXPECT_TRUE(c.Access(0x000, false));
  EXPECT_TRUE(c.Access(0x100, false));
}

TEST(CacheSim, LruEviction) {
  CacheSim c(CacheGeometry{64, 16, 2, 32}, WritePolicy::kWriteBackAllocate);  // 2 sets
  // Fill both ways of set 0, touch the first again, add a third line:
  // the second (least recently used) must be evicted.
  c.Access(0x00, false);   // set 0, tag A
  c.Access(0x40, false);   // set 0, tag B
  c.Access(0x00, false);   // touch A
  c.Access(0x80, false);   // set 0, tag C -> evicts B
  EXPECT_TRUE(c.Access(0x00, false));
  EXPECT_FALSE(c.Access(0x40, false));
}

TEST(CacheSim, WritebackOnDirtyEviction) {
  CacheSim c = MakeDm();
  c.Access(0x000, true);   // write miss, allocate, dirty
  c.Access(0x100, false);  // evicts dirty line
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_EQ(c.words_written_to_memory(), 4u);  // one 16B line
}

TEST(CacheSim, CleanEvictionDoesNotWriteBack) {
  CacheSim c = MakeDm();
  c.Access(0x000, false);
  c.Access(0x100, false);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(CacheSim, WriteThroughNoAllocate) {
  CacheSim c(CacheGeometry{256, 16, 1, 32}, WritePolicy::kWriteThroughNoAllocate);
  c.Access(0x40, true);                  // write miss: no allocation
  EXPECT_FALSE(c.Access(0x40, false));   // still a read miss
  c.Access(0x40, true);                  // write hit: still goes through
  EXPECT_EQ(c.words_written_to_memory(), 2u);
  EXPECT_EQ(c.stats().line_fills, 1u);   // only from the read miss
}

TEST(CacheSim, ResetClearsEverything) {
  CacheSim c = MakeDm();
  c.Access(0x0, true);
  c.Reset();
  EXPECT_EQ(c.stats().accesses(), 0u);
  EXPECT_FALSE(c.Access(0x0, false));  // cold again
}

TEST(CacheSim, EnergyAccumulatesPerEvent) {
  const power::CacheEnergyModel model(CacheGeometry{256, 16, 1, 32},
                                      power::TechLibrary::Cmos6().params());
  CacheSim c = MakeDm();
  c.Access(0x0, false);  // miss: read + fill
  const Energy e1 = c.TotalEnergy(model);
  c.Access(0x0, false);  // hit: read only
  const Energy e2 = c.TotalEnergy(model);
  EXPECT_GT(e2, e1);
  EXPECT_NEAR((e2 - e1).joules, model.read_hit_energy().joules, 1e-18);
}

// Parameterized sweep over geometries and policies: structural
// invariants that must hold for any access stream.
class CacheSimSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, int>> {};

TEST_P(CacheSimSweep, InvariantsUnderRandomTraffic) {
  const auto [capacity, assoc, policy] = GetParam();
  CacheSim c(CacheGeometry{capacity, 16, assoc, 32},
             static_cast<WritePolicy>(policy));
  Prng rng(capacity * 131 + assoc);
  std::uint64_t accesses = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t addr = static_cast<std::uint32_t>(rng.next_below(8192)) & ~3u;
    c.Access(addr, rng.next_below(4) == 0);
    ++accesses;
  }
  const CacheStats& s = c.stats();
  EXPECT_EQ(s.accesses(), accesses);
  EXPECT_EQ(s.read_hits + s.read_misses + s.write_hits + s.write_misses, accesses);
  // Fills never exceed misses.
  EXPECT_LE(s.line_fills, s.misses());
  // Writebacks only under write-back policy.
  if (static_cast<WritePolicy>(policy) == WritePolicy::kWriteThroughNoAllocate) {
    EXPECT_EQ(s.writebacks, 0u);
  }
  EXPECT_GE(s.miss_rate(), 0.0);
  EXPECT_LE(s.miss_rate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSimSweep,
    ::testing::Combine(::testing::Values(256u, 1024u, 4096u),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(0, 1)));


TEST(CacheSim, FifoEvictsInInsertionOrder) {
  CacheSim c(CacheGeometry{64, 16, 2, 32}, WritePolicy::kWriteBackAllocate,
             ReplacementPolicy::kFifo);  // 2 sets x 2 ways
  c.Access(0x00, false);   // set 0: insert A (way 0)
  c.Access(0x40, false);   // set 0: insert B (way 1)
  c.Access(0x00, false);   // touch A — irrelevant for FIFO
  c.Access(0x80, false);   // insert C -> evicts A (first in), ways = {C, B}
  EXPECT_FALSE(c.Access(0x00, false));  // A gone; refill evicts B -> {C, A}
  EXPECT_TRUE(c.Access(0x80, false));   // C survived (LRU would have evicted it)
  EXPECT_FALSE(c.Access(0x40, false));  // B was the FIFO victim of A's refill
}

TEST(CacheSim, RandomReplacementIsDeterministicPerSeed) {
  auto run = [] {
    CacheSim c(CacheGeometry{256, 16, 4, 32}, WritePolicy::kWriteBackAllocate,
               ReplacementPolicy::kRandom);
    Prng rng(5);
    std::uint64_t misses = 0;
    for (int i = 0; i < 5000; ++i) {
      c.Access(static_cast<std::uint32_t>(rng.next_below(4096)) & ~3u,
               rng.next_below(4) == 0);
    }
    misses = c.stats().misses();
    return misses;
  };
  EXPECT_EQ(run(), run());
}

TEST(CacheSim, PoliciesAgreeOnDirectMapped) {
  // With one way there is no replacement choice: all policies see the
  // same stream of hits and misses.
  Prng rng(123);
  std::vector<std::pair<std::uint32_t, bool>> trace;
  for (int i = 0; i < 8000; ++i) {
    trace.emplace_back(static_cast<std::uint32_t>(rng.next_below(8192)) & ~3u,
                       rng.next_below(3) == 0);
  }
  std::uint64_t misses[3];
  int k = 0;
  for (auto pol : {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
                   ReplacementPolicy::kRandom}) {
    CacheSim c(CacheGeometry{1024, 16, 1, 32}, WritePolicy::kWriteBackAllocate, pol);
    for (auto [a, w] : trace) c.Access(a, w);
    misses[k++] = c.stats().misses();
  }
  EXPECT_EQ(misses[0], misses[1]);
  EXPECT_EQ(misses[1], misses[2]);
}

// A bigger cache can only reduce misses on the same (read-only) trace.
TEST(CacheSim, BiggerCacheNeverMissesMoreOnReadTrace) {
  Prng rng(99);
  std::vector<std::uint32_t> trace;
  for (int i = 0; i < 30000; ++i) {
    // Zipf-ish locality: mostly small working set with occasional far
    // references.
    const bool local = rng.next_below(10) < 8;
    trace.push_back((local ? rng.next_below(1024) : rng.next_below(65536)) & ~3u);
  }
  std::uint64_t prev_misses = ~0ull;
  for (std::uint32_t cap : {512u, 2048u, 8192u, 32768u}) {
    CacheSim c(CacheGeometry{cap, 16, 1, 32}, WritePolicy::kWriteBackAllocate);
    for (std::uint32_t a : trace) c.Access(a, false);
    EXPECT_LE(c.stats().misses(), prev_misses) << cap;
    prev_misses = c.stats().misses();
  }
}

}  // namespace
}  // namespace lopass::cache
