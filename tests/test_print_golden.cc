// Golden-stability tests for the human-facing printers: the exact IR
// dump and SL32 disassembly of a fixed program. These catch accidental
// format or lowering churn that the semantic tests would not notice.

#include <algorithm>

#include <gtest/gtest.h>

#include "dsl/lower.h"
#include "ir/print.h"
#include "isa/codegen.h"

namespace lopass {
namespace {

const char* kFixed = R"(
var g = 3;
func main(a) {
  var x;
  x = a * g;
  if (x > 10) { x = x - 1; }
  return x;
})";

TEST(GoldenPrint, IrDump) {
  const dsl::LoweredProgram p = dsl::Compile(kFixed);
  const std::string text = ir::ToString(p.module);
  const char* expected =
      "global g @0\n"
      "func main(a) entry=bb0\n"
      "bb0:\n"
      "  %0 = readvar a\n"
      "  %1 = readvar g\n"
      "  %2 = mul %0 %1\n"
      "  writevar x %2\n"
      "  %3 = readvar x\n"
      "  %4 = cmpgt %3 10\n"
      "  condbr %4 ->bb1 ->bb2\n"
      "bb1:\n"
      "  %5 = readvar x\n"
      "  %6 = sub %5 1\n"
      "  writevar x %6\n"
      "  br ->bb2\n"
      "bb2:\n"
      "  %7 = readvar x\n"
      "  ret %7\n";
  EXPECT_EQ(text, expected);
}

TEST(GoldenPrint, RegionDump) {
  const dsl::LoweredProgram p = dsl::Compile(kFixed);
  const std::string text = ir::ToString(p.regions, 0);
  // Stable structure: function root, a leading leaf, the if region with
  // one arm, and a trailing leaf.
  EXPECT_NE(text.find("function 'func main'"), std::string::npos);
  EXPECT_NE(text.find("ifelse"), std::string::npos);
  // Fixed shape: root + leading leaf + if + then-sequence + then-leaf
  // + trailing leaf = 6 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
}

TEST(GoldenPrint, DisassemblyShape) {
  const dsl::LoweredProgram p = dsl::Compile(kFixed);
  const isa::SlProgram prog = isa::Generate(p.module);
  const std::string text = isa::ToString(prog);
  // Structure rather than exact register numbers: one function header,
  // the multiply, the compare-and-branch, the final ret.
  EXPECT_NE(text.find("main:"), std::string::npos);
  EXPECT_NE(text.find("mul "), std::string::npos);
  EXPECT_NE(text.find("sgt "), std::string::npos);
  EXPECT_NE(text.find("beqz "), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
  // Every line is attributed to a basic block.
  std::size_t lines = 0, attributed = 0, pos = 0;
  while ((pos = text.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  pos = 0;
  while ((pos = text.find("; bb", pos)) != std::string::npos) {
    ++attributed;
    ++pos;
  }
  EXPECT_EQ(attributed + 1 /* function header line */, lines);
}

}  // namespace
}  // namespace lopass
