// Concurrency suite for the parallel exploration runner, written to
// run under ThreadSanitizer (the `tsan` preset): the bounded MPSC
// queue (FIFO, backpressure, close), the worker pool, the
// deterministic in-order merge, per-job thread-local fault scoping
// (two concurrent jobs must never observe each other's injected
// faults), the thread-safe journal writer under concurrent producers,
// and the headline identities — an N-worker sweep renders a report
// and writes a journal byte-identical to a 1-worker run, clean, under
// chaos, and across a resume.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "runner/explore.h"
#include "runner/journal.h"
#include "runner/worker_pool.h"

namespace lopass::runner {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "lopass_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// --- BoundedMpscQueue -------------------------------------------------

TEST(BoundedMpscQueueTest, FifoSingleThread) {
  BoundedMpscQueue<int> q(8);
  q.Push(1);
  q.Push(2);
  q.Push(3);
  int v = 0;
  ASSERT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 3);
  q.Close();
  EXPECT_FALSE(q.Pop(v));
}

TEST(BoundedMpscQueueTest, CloseDrainsRemainingItemsFirst) {
  BoundedMpscQueue<int> q(4);
  q.Push(7);
  q.Push(8);
  q.Close();
  int v = 0;
  ASSERT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 7);
  ASSERT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(q.Pop(v));
  EXPECT_FALSE(q.Pop(v));  // stays drained
}

TEST(BoundedMpscQueueTest, BackpressureBlocksProducerUntilConsumed) {
  BoundedMpscQueue<int> q(2);
  q.Push(0);
  q.Push(1);  // queue now full
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.Push(2);  // must block until the consumer makes room
    third_pushed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load(std::memory_order_acquire))
      << "Push must block while the queue is at capacity";
  int v = 0;
  ASSERT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 0);
  producer.join();
  EXPECT_TRUE(third_pushed.load(std::memory_order_acquire));
  ASSERT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedMpscQueueTest, ManyProducersOneConsumerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedMpscQueue<int> q(3);  // tiny bound: constant backpressure
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  std::vector<int> seen;
  seen.reserve(kProducers * kPerProducer);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    int v = 0;
    ASSERT_TRUE(q.Pop(v));
    seen.push_back(v);
  }
  for (std::thread& t : producers) t.join();
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)], i) << "lost or duplicated item";
  }
}

// --- WorkerPool -------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryJobExactlyOnce) {
  constexpr std::size_t kJobs = 1000;
  std::vector<std::atomic<int>> runs(kJobs);
  for (auto& r : runs) r.store(0);
  {
    WorkerPool pool(8, kJobs, [&](std::size_t i) {
      runs[i].fetch_add(1, std::memory_order_relaxed);
    });
    pool.Join();
  }
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "job " << i;
  }
}

TEST(WorkerPoolTest, MoreWorkersThanJobsIsFine) {
  std::atomic<int> total{0};
  WorkerPool pool(16, 3, [&](std::size_t) { total.fetch_add(1); });
  pool.Join();
  EXPECT_EQ(total.load(), 3);
}

// --- OrderedMerger ----------------------------------------------------

TEST(OrderedMergerTest, ReleasesShuffledCompletionsInIndexOrder) {
  // A worst-case completion order: all high indices first.
  const std::vector<std::size_t> arrival = {9, 7, 8, 3, 5, 4, 6, 0, 2, 1};
  OrderedMerger<std::size_t> merger;
  std::vector<std::size_t> committed;
  for (const std::size_t index : arrival) {
    merger.Add(index, index * 10, [&](std::size_t i, std::size_t&& v) {
      EXPECT_EQ(v, i * 10);
      committed.push_back(i);
    });
  }
  EXPECT_TRUE(merger.drained());
  EXPECT_EQ(merger.committed(), 10u);
  for (std::size_t i = 0; i < committed.size(); ++i) EXPECT_EQ(committed[i], i);
}

TEST(OrderedMergerTest, HoldsBackUntilTheMissingIndexArrives) {
  OrderedMerger<int> merger;
  int commits = 0;
  const auto count = [&](std::size_t, int&&) { ++commits; };
  merger.Add(1, 10, count);
  merger.Add(2, 20, count);
  EXPECT_EQ(commits, 0) << "nothing may commit before index 0 exists";
  EXPECT_FALSE(merger.drained());
  merger.Add(0, 0, count);
  EXPECT_EQ(commits, 3);
  EXPECT_TRUE(merger.drained());
}

// --- per-job fault scoping (satellite: concurrent jobs must never ----
// --- observe each other's injected faults) ----------------------------

TEST(JobScopeTest, ShadowsTheGlobalSpecOnThisThreadOnly) {
  ASSERT_EQ(fault::CurrentSpec(), "");
  fault::JobScope scope("sim:1");
  EXPECT_EQ(fault::CurrentSpec(), "sim:1");
  EXPECT_TRUE(fault::Enabled());
  std::string other_thread_spec = "unset";
  std::thread([&] { other_thread_spec = fault::CurrentSpec(); }).join();
  EXPECT_EQ(other_thread_spec, "") << "a JobScope must not leak across threads";
}

TEST(JobScopeTest, NestsAndRestores) {
  fault::JobScope outer("alloc");
  EXPECT_EQ(fault::CurrentSpec(), "alloc");
  {
    fault::JobScope inner("sim:2");
    EXPECT_EQ(fault::CurrentSpec(), "sim:2");
    // The inner scope has its own counters: first sim hit is hit 1.
    EXPECT_NO_THROW(fault::MaybeInject("sim"));
    EXPECT_THROW(fault::MaybeInject("sim"), InjectedFault);
  }
  EXPECT_EQ(fault::CurrentSpec(), "alloc");
  EXPECT_THROW(fault::MaybeInject("alloc"), InjectedFault);
}

TEST(JobScopeTest, OneShotArmFiresOncePerScope) {
  for (int round = 0; round < 3; ++round) {
    fault::JobScope scope("synth:2");
    EXPECT_NO_THROW(fault::MaybeInject("synth"));
    EXPECT_THROW(fault::MaybeInject("synth"), InjectedFault);
    EXPECT_NO_THROW(fault::MaybeInject("synth"));  // fired, stays disarmed
    EXPECT_EQ(fault::HitCount("synth"), 3u);
  }
}

TEST(JobScopeTest, ConcurrentJobsNeverObserveEachOthersFaults) {
  // Job A arms `sim` on every hit; job B arms `alloc:5` only. Both
  // hammer both sites in lockstep: A must see every sim hit fire and
  // no alloc fault; B the exact opposite, with its one-shot landing
  // precisely on its own 5th hit — regardless of interleaving.
  constexpr int kHits = 2000;
  std::barrier sync(2);
  std::atomic<int> a_sim_faults{0}, a_alloc_faults{0};
  std::atomic<int> b_sim_faults{0}, b_alloc_faults{0};
  std::atomic<std::uint64_t> b_fault_hit{0};

  std::thread job_a([&] {
    fault::JobScope scope("sim");
    sync.arrive_and_wait();  // overlap the hot loops
    for (int i = 0; i < kHits; ++i) {
      try {
        fault::MaybeInject("sim");
      } catch (const InjectedFault&) {
        a_sim_faults.fetch_add(1, std::memory_order_relaxed);
      }
      try {
        fault::MaybeInject("alloc");
      } catch (const InjectedFault&) {
        a_alloc_faults.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread job_b([&] {
    fault::JobScope scope("alloc:5");
    sync.arrive_and_wait();
    for (int i = 0; i < kHits; ++i) {
      try {
        fault::MaybeInject("sim");
      } catch (const InjectedFault&) {
        b_sim_faults.fetch_add(1, std::memory_order_relaxed);
      }
      try {
        fault::MaybeInject("alloc");
      } catch (const InjectedFault&) {
        b_alloc_faults.fetch_add(1, std::memory_order_relaxed);
        b_fault_hit.store(fault::HitCount("alloc"), std::memory_order_relaxed);
      }
    }
  });
  job_a.join();
  job_b.join();

  EXPECT_EQ(a_sim_faults.load(), kHits);
  EXPECT_EQ(a_alloc_faults.load(), 0) << "job A observed job B's fault";
  EXPECT_EQ(b_sim_faults.load(), 0) << "job B observed job A's fault";
  EXPECT_EQ(b_alloc_faults.load(), 1);
  EXPECT_EQ(b_fault_hit.load(), 5u) << "one-shot must land on B's own 5th hit";
  // Neither scope touched the global table.
  EXPECT_EQ(fault::CurrentSpec(), "");
  EXPECT_EQ(fault::HitCount("sim"), 0u);
  EXPECT_EQ(fault::HitCount("alloc"), 0u);
}

// --- thread-safe journal writer ---------------------------------------

TEST(ParallelJournalTest, ConcurrentProducersNeverTearRecords) {
  const std::string path = TempPath("journal_concurrent.jsonl");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  {
    JournalWriter writer(path, /*truncate=*/true);
    std::vector<std::thread> producers;
    producers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      producers.emplace_back([&writer, t] {
        for (int i = 0; i < kPerThread; ++i) {
          writer.Append("{\"thread\":" + std::to_string(t) + ",\"i\":" +
                        std::to_string(i) + "}");
        }
      });
    }
    for (std::thread& t : producers) t.join();
    EXPECT_EQ(writer.lines_written(), static_cast<std::uint64_t>(kThreads * kPerThread));
  }
  const JournalLoad load = LoadJournal(path);
  EXPECT_TRUE(load.warnings.empty()) << "interleaved bytes corrupted a record";
  ASSERT_EQ(load.records.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Every record intact and each thread's records in its program order.
  std::vector<int> next_index(kThreads, 0);
  for (const std::string& record : load.records) {
    const auto thread = JsonIntField(record, "thread");
    const auto index = JsonIntField(record, "i");
    ASSERT_TRUE(thread.has_value() && index.has_value());
    const int t = static_cast<int>(*thread);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    EXPECT_EQ(*index, next_index[static_cast<std::size_t>(t)]++)
        << "thread " << t << " records out of order";
  }
  std::remove(path.c_str());
}

// --- the headline identities ------------------------------------------

ExploreOptions EngineSweep() {
  ExploreOptions options;
  options.apps = {"engine"};
  options.scale = 1;
  return options;
}

TEST(ParallelExploreTest, ReportIsIdenticalAcrossWorkerCounts) {
  ExploreOptions sequential = EngineSweep();
  const ExploreReport baseline = RunExplore(sequential);
  ASSERT_EQ(baseline.jobs.size(), 4u);
  for (const int jobs : {2, 4, 8}) {
    ExploreOptions parallel = EngineSweep();
    parallel.jobs = jobs;
    const ExploreReport report = RunExplore(parallel);
    EXPECT_EQ(report.Render(), baseline.Render()) << "--jobs " << jobs;
    ASSERT_EQ(report.jobs.size(), baseline.jobs.size());
    for (std::size_t i = 0; i < report.jobs.size(); ++i) {
      EXPECT_EQ(report.jobs[i].seed, baseline.jobs[i].seed) << "job " << i;
      EXPECT_EQ(report.jobs[i].attempts, baseline.jobs[i].attempts) << "job " << i;
    }
  }
}

TEST(ParallelExploreTest, JournalBytesAreIdenticalAcrossWorkerCounts) {
  const std::string seq_path = TempPath("parallel_journal_seq.jsonl");
  const std::string par_path = TempPath("parallel_journal_par.jsonl");
  ExploreOptions sequential = EngineSweep();
  sequential.journal_path = seq_path;
  const ExploreReport a = RunExplore(sequential);
  ExploreOptions parallel = EngineSweep();
  parallel.journal_path = par_path;
  parallel.jobs = 8;
  const ExploreReport b = RunExplore(parallel);
  EXPECT_EQ(a.Render(), b.Render());
  EXPECT_EQ(ReadFile(seq_path), ReadFile(par_path))
      << "the committer must journal completions in job-queue order";
  std::remove(seq_path.c_str());
  std::remove(par_path.c_str());
}

TEST(ParallelExploreTest, ChaosUnderParallelismMatchesTheCleanSequentialRun) {
  const ExploreReport clean = RunExplore(EngineSweep());
  for (const std::uint64_t chaos_seed : {7ull, 99ull}) {
    ExploreOptions options = EngineSweep();
    options.jobs = 4;
    options.chaos = true;
    options.chaos_seed = chaos_seed;
    options.retry.max_attempts = 4;  // room to absorb two one-shot faults
    const ExploreReport chaos = RunExplore(options);
    EXPECT_EQ(chaos.Render(), clean.Render()) << "chaos seed " << chaos_seed;
    bool scheduled = false;
    for (const Diagnostic& d : chaos.notes) scheduled |= d.code == "runner.chaos";
    EXPECT_TRUE(scheduled);
  }
}

TEST(ParallelExploreTest, ResumeOfAParallelSweepIsByteIdentical) {
  const std::string path = TempPath("parallel_resume.jsonl");
  ExploreOptions options = EngineSweep();
  options.journal_path = path;
  options.jobs = 4;
  const ExploreReport full = RunExplore(options);
  ASSERT_EQ(full.jobs.size(), 4u);

  // Keep the first two committed lines — in-order commit guarantees
  // they are jobs 0 and 1 even though 4 workers raced — then resume
  // with a different worker count.
  std::istringstream journal(ReadFile(path));
  std::string line1, line2;
  std::getline(journal, line1);
  std::getline(journal, line2);
  WriteFile(path, line1 + "\n" + line2 + "\n");

  ExploreOptions resume = options;
  resume.resume = true;
  resume.jobs = 8;
  const ExploreReport resumed = RunExplore(resume);
  ASSERT_EQ(resumed.jobs.size(), 4u);
  EXPECT_TRUE(resumed.jobs[0].replayed);
  EXPECT_TRUE(resumed.jobs[1].replayed);
  EXPECT_FALSE(resumed.jobs[2].replayed);
  EXPECT_EQ(resumed.Render(), full.Render());
  EXPECT_EQ(LoadJournal(path).records.size(), 4u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lopass::runner
