#include "cache/trace_profiler.h"

#include <gtest/gtest.h>

#include "common/prng.h"
#include "dsl/lower.h"
#include "interp/interpreter.h"

namespace lopass::cache {
namespace {

// Bridges the interpreter's trace sink to an AccessTrace.
struct Recorder : interp::TraceSink {
  AccessTrace trace;
  void OnDataAccess(std::uint32_t address, bool is_write) override {
    trace.Record(address, is_write);
  }
};

AccessTrace TraceOf(const std::string& src, std::int64_t arg) {
  const dsl::LoweredProgram p = dsl::Compile(src);
  interp::Interpreter it(p.module);
  Recorder rec;
  it.set_trace_sink(&rec);
  const std::vector<std::int64_t> args{arg};
  it.Run("main", args);
  return std::move(rec.trace);
}

const char* kStreaming = R"(
  array data[4096];
  func main(n) {
    var i; var s;
    s = 0;
    for (i = 0; i < n; i = i + 1) {
      data[i & 4095] = i;
      s = s + data[i & 4095];
    }
    return s;
  })";

TEST(TraceProfiler, ReplayMatchesDirectSimulation) {
  const AccessTrace trace = TraceOf(kStreaming, 2000);
  ASSERT_GT(trace.size(), 0u);
  TraceProfiler prof;
  const GeometryResult r =
      prof.Replay(trace, power::CacheGeometry{2048, 16, 1, 32});
  // Same stream through a bare CacheSim must agree exactly.
  CacheSim sim(power::CacheGeometry{2048, 16, 1, 32}, WritePolicy::kWriteBackAllocate);
  for (const AccessTrace::Access& a : trace.accesses) sim.Access(a.address, a.is_write);
  EXPECT_EQ(r.stats.accesses(), sim.stats().accesses());
  EXPECT_EQ(r.stats.misses(), sim.stats().misses());
  EXPECT_GT(r.cache_energy.joules, 0.0);
  EXPECT_GT(r.memory_energy.joules, 0.0);
}

TEST(TraceProfiler, SweepIsSortedByTotalEnergy) {
  const AccessTrace trace = TraceOf(kStreaming, 3000);
  TraceProfiler prof;
  const auto results = prof.Sweep(trace);
  ASSERT_GT(results.size(), 4u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].total().joules, results[i].total().joules);
  }
}

TEST(TraceProfiler, OptimumBalancesMissesAndAccessCost) {
  // A small hot working set: tiny caches thrash (memory energy), huge
  // caches overpay per access — the optimum is in between.
  const char* hot = R"(
    array data[64];
    func main(n) {
      var i; var s;
      s = 0;
      for (i = 0; i < n; i = i + 1) { s = s + data[i & 63]; }
      return s;
    })";
  const AccessTrace trace = TraceOf(hot, 20000);
  TraceProfiler prof;
  const auto results = prof.Sweep(trace, 256, 16384);
  // The best configuration is neither the smallest nor the largest.
  const auto& best = results.front();
  EXPECT_GE(best.geometry.capacity_bytes, 256u);
  EXPECT_LT(best.geometry.capacity_bytes, 16384u);
  // And its miss rate is essentially zero (the 256B working set fits).
  EXPECT_LT(best.stats.miss_rate(), 0.01);
}

TEST(TraceProfiler, RenderListsConfigurations) {
  const AccessTrace trace = TraceOf(kStreaming, 500);
  TraceProfiler prof;
  const auto results = prof.Sweep(trace, 256, 1024);
  const std::string text = TraceProfiler::Render(results);
  EXPECT_NE(text.find("capacity"), std::string::npos);
  EXPECT_NE(text.find("256B"), std::string::npos);
  EXPECT_NE(text.find("1024B"), std::string::npos);
}

TEST(TraceProfiler, WritePolicyChangesTraffic) {
  const AccessTrace trace = TraceOf(kStreaming, 2000);
  TraceProfiler prof;
  const GeometryResult wb = prof.Replay(trace, power::CacheGeometry{512, 16, 1, 32},
                                        WritePolicy::kWriteBackAllocate);
  const GeometryResult wt = prof.Replay(trace, power::CacheGeometry{512, 16, 1, 32},
                                        WritePolicy::kWriteThroughNoAllocate);
  // Every write goes to memory under write-through: more memory energy
  // on this write-heavy stream.
  EXPECT_GT(wt.memory_energy, wb.memory_energy);
}

}  // namespace
}  // namespace lopass::cache
