#include "isa/peephole.h"

#include <gtest/gtest.h>

#include "apps/app.h"
#include "common/prng.h"
#include "dsl/lower.h"
#include "interp/interpreter.h"
#include "isa/codegen.h"
#include "iss/simulator.h"

namespace lopass::isa {
namespace {

// Runs src through the ISS with and without peephole; both must agree
// with the interpreter, and the peepholed program must not be longer.
void ExpectEquivalentAndNoLonger(const std::string& src,
                                 std::vector<std::int64_t> args = {}) {
  const dsl::LoweredProgram p = dsl::Compile(src);
  interp::Interpreter it(p.module);
  const std::int64_t want = it.Run("main", args).return_value;

  SlProgram plain = Generate(p.module);
  SlProgram opt = Generate(p.module);
  const PeepholeStats stats = Peephole(opt);
  EXPECT_LE(opt.code.size(), plain.code.size());
  (void)stats;

  iss::Simulator sim_plain(p.module, plain, iss::SystemConfig{});
  iss::Simulator sim_opt(p.module, opt, iss::SystemConfig{});
  const iss::SimResult rp = sim_plain.Run("main", args);
  const iss::SimResult ro = sim_opt.Run("main", args);
  EXPECT_EQ(rp.return_value, want);
  EXPECT_EQ(ro.return_value, want);
  // Fewer or equal instructions executed.
  EXPECT_LE(ro.instr_count, rp.instr_count);
}

TEST(Peephole, RemovesStoreLoadPairs) {
  // writevar x; readvar x back-to-back becomes st;ld on the same
  // address — the classic peephole win for memory-resident variables.
  const dsl::LoweredProgram p = dsl::Compile(R"(
    var x;
    func main(a) {
      x = a * 3;
      return x + 1;
    })");
  SlProgram prog = Generate(p.module);
  const std::size_t before = prog.code.size();
  const PeepholeStats stats = Peephole(prog);
  EXPECT_GT(stats.store_load, 0u);
  EXPECT_LE(prog.code.size(), before);
}

TEST(Peephole, ProgramStillLinksAfterRemoval) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    var x;
    func helper(v) { x = v; return x * 2; }
    func main(a) {
      var s; var i;
      s = 0;
      for (i = 0; i < a; i = i + 1) { s = s + helper(i); }
      return s;
    })");
  SlProgram prog = Generate(p.module);
  Peephole(prog);
  // Every target is in range and function ranges are consistent.
  for (const SlInstr& in : prog.code) {
    if (in.op == SlOp::kBeqz || in.op == SlOp::kBnez || in.op == SlOp::kJ ||
        in.op == SlOp::kCall) {
      EXPECT_GE(in.target, 0);
      EXPECT_LT(static_cast<std::size_t>(in.target), prog.code.size());
    }
  }
  std::size_t covered = 0;
  for (const FuncInfo& f : prog.functions) {
    EXPECT_LE(f.entry, f.end);
    covered += f.end - f.entry;
  }
  EXPECT_EQ(covered, prog.code.size());
}

TEST(Peephole, Equivalence) {
  ExpectEquivalentAndNoLonger(R"(
    var x; var y;
    func main(a, b) {
      x = a + b;
      y = x * 2;
      x = y - a;
      return x + y;
    })", {12, -7});
  ExpectEquivalentAndNoLonger(R"(
    array m[32];
    func main(n) {
      var i; var s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        m[i & 31] = s;
        s = m[i & 31] + i;
      }
      return s;
    })", {77});
}

class PeepholeRandom : public ::testing::TestWithParam<int> {};

TEST_P(PeepholeRandom, RandomProgramsStayEquivalent) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 2);
  std::ostringstream os;
  os << "var g;\narray m[8];\nfunc main(a, b) {\n  var t; var i;\n";
  os << "  t = a;\n";
  os << "  for (i = 0; i < " << rng.next_in(2, 9) << "; i = i + 1) {\n";
  os << "    g = t + i;\n";
  os << "    t = g * " << rng.next_in(1, 5) << ";\n";
  os << "    m[i & 7] = t;\n";
  os << "    t = m[i & 7] - b;\n";
  os << "  }\n  return t + g;\n}\n";
  ExpectEquivalentAndNoLonger(os.str(), {rng.next_in(-40, 40), rng.next_in(-40, 40)});
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeepholeRandom, ::testing::Range(0, 15));

TEST(Peephole, AppsShrinkAndStillPartition) {
  // The six applications all contain writevar/readvar sequences; the
  // peephole must find work in each.
  for (const char* name : {"3d", "ckey", "trick"}) {
    const apps::Application app = apps::GetApplication(name);
    const dsl::LoweredProgram p = dsl::Compile(app.dsl_source);
    SlProgram prog = Generate(p.module);
    const std::size_t before = prog.code.size();
    const PeepholeStats stats = Peephole(prog);
    EXPECT_GT(stats.total(), 0u) << name;
    EXPECT_LT(prog.code.size(), before) << name;
  }
}

TEST(Peephole, StatsToString) {
  PeepholeStats s;
  s.store_load = 4;
  EXPECT_NE(s.ToString().find("store-load=4"), std::string::npos);
}

}  // namespace
}  // namespace lopass::isa
