#include "sched/asap_alap.h"

#include <gtest/gtest.h>

#include "common/prng.h"
#include "dsl/lower.h"
#include "sched/list_scheduler.h"

namespace lopass::sched {
namespace {

using power::ResourceType;
using power::TechLibrary;

BlockDfg HotDfg(const std::string& src, std::size_t min_ops) {
  const dsl::LoweredProgram p = dsl::Compile(src);
  BlockDfg best;
  for (const ir::BasicBlock& b : p.module.function(0).blocks) {
    BlockDfg g = BuildBlockDfg(b);
    if (g.size() >= min_ops && g.size() > best.size()) best = std::move(g);
  }
  return best;
}

ResourceSet OneOfEach() {
  ResourceSet rs;
  rs.name = "one-of-each";
  rs.set(ResourceType::kAlu, 1)
      .set(ResourceType::kAdder, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMultiplier, 1)
      .set(ResourceType::kDivider, 1)
      .set(ResourceType::kMemoryPort, 1);
  return rs;
}

TEST(AsapAlap, ChainSchedulesSequentially) {
  // a*a*a*a: three dependent muls, 2 cycles each.
  const BlockDfg g = HotDfg("func main(a) { return a * a * a * a; }", 3);
  const UnconstrainedSchedule asap = AsapSchedule(g, TechLibrary::Cmos6());
  EXPECT_EQ(asap.makespan, 6u);
  const UnconstrainedSchedule alap = AlapSchedule(g, TechLibrary::Cmos6());
  EXPECT_EQ(alap.makespan, asap.makespan);
  // A pure chain has zero mobility everywhere.
  for (std::uint32_t m : Mobility(g, TechLibrary::Cmos6())) EXPECT_EQ(m, 0u);
}

TEST(AsapAlap, ParallelWorkHasMobility) {
  // (a+b) + (c*d): the add can slide, the mul is critical.
  const BlockDfg g = HotDfg("func main(a, b, c, d) { return (a + b) + c * d; }", 3);
  const auto mob = Mobility(g, TechLibrary::Cmos6());
  bool any_slack = false;
  for (std::uint32_t m : mob) {
    if (m > 0) any_slack = true;
  }
  EXPECT_TRUE(any_slack);
}

TEST(AsapAlap, AlapNeverBeforeAsap) {
  const BlockDfg g = HotDfg(R"(
    array m[16];
    func main(a, b) {
      var t;
      t = m[a & 15] * b + (a << 2) - m[b & 15] / 3;
      m[0] = t;
      return t;
    })", 6);
  const auto asap = AsapSchedule(g, TechLibrary::Cmos6());
  const auto alap = AlapSchedule(g, TechLibrary::Cmos6());
  for (std::size_t n = 0; n < g.size(); ++n) {
    EXPECT_LE(asap.step[n], alap.step[n]) << n;
  }
}

TEST(AsapAlap, AsapIsALowerBoundForListScheduling) {
  Prng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::string expr = "a";
    const char* ops[] = {" + ", " - ", " * ", " ^ "};
    for (int i = 0; i < 16; ++i) {
      expr = "(" + expr + ops[rng.next_below(4)] + "(b + " + std::to_string(i) + "))";
    }
    const BlockDfg g = HotDfg("func main(a, b) { return " + expr + "; }", 8);
    const auto asap = AsapSchedule(g, TechLibrary::Cmos6());
    const BlockSchedule s = ListSchedule(g, OneOfEach(), TechLibrary::Cmos6());
    EXPECT_GE(s.num_steps, asap.makespan);
  }
}

TEST(AsapAlap, MobilityPriorityProducesValidSchedules) {
  const BlockDfg g = HotDfg(R"(
    array m[32];
    func main(a, b) {
      var t;
      t = m[a & 31] * b + m[b & 31] * a + (a << 2) + (b >> 1) + abs(a - b);
      m[0] = t;
      return t;
    })", 8);
  SchedulerOptions mob_opts;
  mob_opts.priority = SchedulerOptions::Priority::kMobility;
  const BlockSchedule s_mob = ListSchedule(g, OneOfEach(), TechLibrary::Cmos6(), mob_opts);
  const BlockSchedule s_depth = ListSchedule(g, OneOfEach(), TechLibrary::Cmos6());
  // Both are legal (precedence respected) and complete.
  ASSERT_EQ(s_mob.ops.size(), g.size());
  for (std::size_t n = 0; n < g.size(); ++n) {
    for (std::size_t p : g.nodes[n].preds) {
      EXPECT_GE(s_mob.ops[n].step, s_mob.ops[p].step + s_mob.ops[p].latency);
    }
  }
  // Same lower bound applies.
  const auto asap = AsapSchedule(g, TechLibrary::Cmos6());
  EXPECT_GE(s_mob.num_steps, asap.makespan);
  EXPECT_GE(s_depth.num_steps, asap.makespan);
}

TEST(AsapAlap, EmptyDfg) {
  BlockDfg g;
  const auto asap = AsapSchedule(g, TechLibrary::Cmos6());
  EXPECT_EQ(asap.makespan, 0u);
  EXPECT_TRUE(Mobility(g, TechLibrary::Cmos6()).empty());
}

}  // namespace
}  // namespace lopass::sched
