#include "asic/utilization.h"

#include <gtest/gtest.h>

#include "dsl/lower.h"
#include "sched/list_scheduler.h"

namespace lopass::asic {
namespace {

using power::ResourceType;
using power::TechLibrary;

struct Scheduled {
  std::vector<sched::BlockDfg> dfgs;
  std::vector<sched::BlockSchedule> schedules;
  std::vector<ScheduledBlock> blocks;
};

// Schedules every block of function 0 and attaches uniform ex_times.
Scheduled ScheduleAll(const std::string& src, const sched::ResourceSet& rs,
                      std::uint64_t ex_times = 1) {
  const dsl::LoweredProgram p = dsl::Compile(src);
  Scheduled out;
  for (const ir::BasicBlock& b : p.module.function(0).blocks) {
    out.dfgs.push_back(sched::BuildBlockDfg(b));
  }
  for (const sched::BlockDfg& g : out.dfgs) {
    out.schedules.push_back(sched::ListSchedule(g, rs, TechLibrary::Cmos6()));
  }
  for (std::size_t i = 0; i < out.dfgs.size(); ++i) {
    out.blocks.push_back(ScheduledBlock{&out.dfgs[i], &out.schedules[i], ex_times});
  }
  return out;
}

sched::ResourceSet LeanSet() {
  sched::ResourceSet rs;
  rs.name = "lean";
  rs.set(ResourceType::kAlu, 1)
      .set(ResourceType::kAdder, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMultiplier, 1)
      .set(ResourceType::kDivider, 1)
      .set(ResourceType::kMemoryPort, 1);
  return rs;
}

TEST(Utilization, BasicInvariants) {
  Scheduled s = ScheduleAll(R"(
    array m[16];
    func main(a, b) {
      var t;
      t = m[a & 15] * b + m[b & 15] - (a << 1);
      m[1] = t;
      return t;
    })", LeanSet());
  const UtilizationResult r = ComputeUtilization(s.blocks, LeanSet(), TechLibrary::Cmos6());
  EXPECT_GT(r.u_core, 0.0);
  EXPECT_LE(r.u_core, 1.0);
  EXPECT_GT(r.geq, 0.0);
  EXPECT_GT(r.total_cycles, 0u);
  EXPECT_GT(r.total_instances(), 0);
  // Every instance's active cycles never exceed the total.
  for (const InstanceUtil& u : r.instance_util) {
    EXPECT_LE(u.active_cycles, r.total_cycles);
    EXPECT_GT(u.ops, 0u);
  }
  // Every scheduled op has a binding.
  std::size_t ops = 0;
  for (const sched::BlockDfg& g : s.dfgs) ops += g.size();
  EXPECT_EQ(r.bindings.size(), ops);
}

TEST(Utilization, GeqMatchesInstances) {
  Scheduled s = ScheduleAll("func main(a, b) { return a * b + a - b; }", LeanSet());
  const UtilizationResult r = ComputeUtilization(s.blocks, LeanSet(), TechLibrary::Cmos6());
  double geq = 0.0;
  for (int t = 0; t < power::kNumResourceTypes; ++t) {
    geq += r.instances[static_cast<std::size_t>(t)] *
           TechLibrary::Cmos6().spec(static_cast<ResourceType>(t)).geq;
  }
  EXPECT_DOUBLE_EQ(r.geq, geq);
}

TEST(Utilization, ReuseAcrossBlocksAllocatesOnce) {
  // The compare allocates an adder (no comparator in the set); the
  // adds in both if/else arms then *reuse* that same instance (Fig. 4's
  // cross-step reuse), so exactly one add-class instance exists.
  Scheduled s = ScheduleAll(R"(
    func main(a, b) {
      var r;
      if (a > 0) { r = a + 1; } else { r = b + 2; }
      return r;
    })", LeanSet());
  const UtilizationResult r = ComputeUtilization(s.blocks, LeanSet(), TechLibrary::Cmos6());
  const int adders = r.instances[static_cast<int>(ResourceType::kAdder)];
  const int alus = r.instances[static_cast<int>(ResourceType::kAlu)];
  EXPECT_EQ(adders + alus, 1);
  EXPECT_EQ(adders, 1);
}

TEST(Utilization, CrossTypeReuseAvoidsNewInstance) {
  // Fig. 4 lines 7-13: a comparison can reuse an already instantiated
  // ALU instead of instantiating a comparator, when the ALU is free.
  Scheduled s = ScheduleAll(R"(
    func main(a, b) {
      var x;
      x = a & b;        // allocates the ALU
      var c;
      if (x < b) { c = 1; } else { c = 2; }  // cmp in another block
      return c;
    })", LeanSet());
  const UtilizationResult r = ComputeUtilization(s.blocks, LeanSet(), TechLibrary::Cmos6());
  EXPECT_EQ(r.instances[static_cast<int>(ResourceType::kComparator)], 0);
  EXPECT_GE(r.instances[static_cast<int>(ResourceType::kAlu)], 1);
}

TEST(Utilization, ExTimesWeightsCycles) {
  Scheduled s1 = ScheduleAll("func main(a) { return a * a + 1; }", LeanSet(), 1);
  Scheduled s10 = ScheduleAll("func main(a) { return a * a + 1; }", LeanSet(), 10);
  const UtilizationResult r1 = ComputeUtilization(s1.blocks, LeanSet(), TechLibrary::Cmos6());
  const UtilizationResult r10 =
      ComputeUtilization(s10.blocks, LeanSet(), TechLibrary::Cmos6());
  EXPECT_EQ(r10.total_cycles, 10 * r1.total_cycles);
  // Utilization is scale-invariant.
  EXPECT_NEAR(r10.u_core, r1.u_core, 1e-12);
  EXPECT_DOUBLE_EQ(r10.geq, r1.geq);
}

TEST(Utilization, DenseBlockBeatsSparseBlock) {
  // A block packed with dependent work on one resource utilizes it
  // better than one with a single op amid unrelated steps.
  Scheduled dense = ScheduleAll(
      "func main(a) { return a * a * a * a * a * a * a * a; }", LeanSet());
  Scheduled sparse = ScheduleAll(
      "func main(a) { return (a * a) + (a << 1) + (a >> 2) + (a & 7) + (a / 3); }",
      LeanSet());
  const UtilizationResult rd =
      ComputeUtilization(dense.blocks, LeanSet(), TechLibrary::Cmos6());
  const UtilizationResult rs =
      ComputeUtilization(sparse.blocks, LeanSet(), TechLibrary::Cmos6());
  EXPECT_GT(rd.u_core, rs.u_core);
}

TEST(Utilization, EmptyBlocksStillCostControllerCycles) {
  // `return 0;` has no datapath ops, but the controller sequences
  // through its block: total_cycles >= 1.
  Scheduled s = ScheduleAll("func main() { return 0; }", LeanSet());
  const UtilizationResult r = ComputeUtilization(s.blocks, LeanSet(), TechLibrary::Cmos6());
  EXPECT_GE(r.total_cycles, 1u);
  EXPECT_EQ(r.u_core, 0.0);  // nothing is ever active
}

TEST(Utilization, BindingsReferenceValidInstances) {
  Scheduled s = ScheduleAll(R"(
    array m[8];
    func main(a) {
      var i; var t;
      t = 0;
      for (i = 0; i < 8; i = i + 1) { t = t + m[i] * a; }
      return t;
    })", LeanSet(), 5);
  const UtilizationResult r = ComputeUtilization(s.blocks, LeanSet(), TechLibrary::Cmos6());
  for (const OpBinding& b : r.bindings) {
    EXPECT_LT(b.instance, r.instances[static_cast<std::size_t>(static_cast<int>(b.type))]);
    EXPECT_LT(b.block, s.blocks.size());
  }
}

}  // namespace
}  // namespace lopass::asic
