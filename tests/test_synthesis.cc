#include "asic/synthesis.h"

#include <cmath>
#include <gtest/gtest.h>

#include "dsl/lower.h"
#include "sched/list_scheduler.h"

namespace lopass::asic {
namespace {

using power::ResourceType;
using power::TechLibrary;

struct Built {
  std::vector<sched::BlockDfg> dfgs;
  std::vector<sched::BlockSchedule> schedules;
  std::vector<ScheduledBlock> blocks;
  UtilizationResult util;
};

Built Build(const std::string& src, const sched::ResourceSet& rs,
            std::uint64_t ex_times = 100) {
  const dsl::LoweredProgram p = dsl::Compile(src);
  Built out;
  for (const ir::BasicBlock& b : p.module.function(0).blocks) {
    out.dfgs.push_back(sched::BuildBlockDfg(b));
  }
  for (const sched::BlockDfg& g : out.dfgs) {
    out.schedules.push_back(sched::ListSchedule(g, rs, TechLibrary::Cmos6()));
  }
  for (std::size_t i = 0; i < out.dfgs.size(); ++i) {
    out.blocks.push_back(ScheduledBlock{&out.dfgs[i], &out.schedules[i], ex_times});
  }
  out.util = ComputeUtilization(out.blocks, rs, TechLibrary::Cmos6());
  return out;
}

sched::ResourceSet LeanSet() {
  sched::ResourceSet rs;
  rs.name = "lean";
  rs.set(ResourceType::kAlu, 1)
      .set(ResourceType::kAdder, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMultiplier, 1)
      .set(ResourceType::kDivider, 1)
      .set(ResourceType::kMemoryPort, 1);
  return rs;
}

TEST(Synthesis, CoreCarriesUtilizationAndArea) {
  Built b = Build("func main(a, b) { return a * b + (a << 2); }", LeanSet());
  const AsicCore core = Synthesize("test", "lean", b.util, TechLibrary::Cmos6(), 8);
  EXPECT_EQ(core.name, "test");
  EXPECT_DOUBLE_EQ(core.utilization, b.util.u_core);
  // Controller + register file make the core bigger than the bare
  // datapath.
  EXPECT_GT(core.geq, b.util.geq);
  EXPECT_GT(core.cells, 0.0);
  EXPECT_GT(core.refined_energy.joules, 0.0);
  EXPECT_GT(core.estimate_energy.joules, 0.0);
}

TEST(Synthesis, ClockPeriodIsSlowedByTheSlowestResource) {
  // A multiplier-free core clocks faster than one with a multiplier.
  Built fast = Build("func main(a, b) { return (a + b) << 1; }", LeanSet());
  Built slow = Build("func main(a, b) { return (a * b) << 1; }", LeanSet());
  const AsicCore cf = Synthesize("f", "lean", fast.util, TechLibrary::Cmos6());
  const AsicCore cs = Synthesize("s", "lean", slow.util, TechLibrary::Cmos6());
  EXPECT_LT(cf.clock_period, cs.clock_period);
  EXPECT_EQ(cs.clock_period,
            TechLibrary::Cmos6().spec(ResourceType::kMultiplier).min_cycle_time);
}

TEST(Synthesis, CyclesAreUpClockEquivalents) {
  Built b = Build("func main(a, b) { return a + b; }", LeanSet(), 1000);
  const AsicCore core = Synthesize("c", "lean", b.util, TechLibrary::Cmos6());
  const double scale = core.clock_period.seconds /
                       TechLibrary::Cmos6().params().clock_period().seconds;
  EXPECT_EQ(core.cycles, static_cast<Cycles>(std::ceil(
                             static_cast<double>(core.control_steps) * scale)));
  // An adder-class core runs faster than the 25 MHz system clock.
  EXPECT_LT(core.cycles, core.control_steps);
}

TEST(Synthesis, DividerCoreIsSlowerThanTheSystemClockWouldSuggest) {
  // The sequential divider's 32-cycle latency dominates: many control
  // steps per executed division.
  Built b = Build("func main(a, b) { return a / (b + 1) / 3 / 5; }", LeanSet(), 10);
  const AsicCore core = Synthesize("d", "lean", b.util, TechLibrary::Cmos6());
  const Cycles div_lat = TechLibrary::Cmos6().spec(ResourceType::kDivider).op_latency;
  EXPECT_GE(core.control_steps, 3 * div_lat * 10);
}

TEST(Synthesis, MoreRegistersMoreAreaAndEnergy) {
  Built b = Build("func main(a, b) { return a * b; }", LeanSet());
  const AsicCore small = Synthesize("s", "lean", b.util, TechLibrary::Cmos6(), 4);
  const AsicCore big = Synthesize("b", "lean", b.util, TechLibrary::Cmos6(), 32);
  EXPECT_GT(big.geq, small.geq);
  EXPECT_GT(big.refined_energy, small.refined_energy);
}

TEST(Synthesis, EstimateFormulaMatchesLine11) {
  // E_R = U_R * sum(P_av * N_cyc * T_cyc) over instances.
  Built b = Build("func main(a, b) { return a * b + a - b; }", LeanSet(), 7);
  const TechLibrary& lib = TechLibrary::Cmos6();
  double sum = 0.0;
  for (const InstanceUtil& u : b.util.instance_util) {
    const power::ResourceSpec& spec = lib.spec(u.type);
    sum += spec.average_power.watts * static_cast<double>(u.active_cycles) *
           spec.min_cycle_time.seconds;
  }
  EXPECT_NEAR(EstimateEnergy(b.util, lib).joules, b.util.u_core * sum, 1e-15);
}

TEST(Synthesis, RefinedEnergyGrowsWithIdleFraction) {
  Built b = Build("func main(a) { return (a * a) + (a / 3); }", LeanSet(), 50);
  power::TechLibrary hot = TechLibrary::Cmos6();
  hot.set_idle_power_fraction(0.9);
  power::TechLibrary cold = TechLibrary::Cmos6();
  cold.set_idle_power_fraction(0.1);
  const AsicCore ch = Synthesize("h", "lean", b.util, hot);
  const AsicCore cc = Synthesize("c", "lean", b.util, cold);
  EXPECT_GT(ch.refined_energy, cc.refined_energy);
}

TEST(Synthesis, ControllerOptionsScaleArea) {
  Built b = Build("func main(a) { return a + 1; }", LeanSet());
  SynthesisOptions big_ctrl;
  big_ctrl.controller_geq_fraction = 0.5;
  const AsicCore base = Synthesize("a", "lean", b.util, TechLibrary::Cmos6(), 8);
  const AsicCore wide = Synthesize("b", "lean", b.util, TechLibrary::Cmos6(), 8, big_ctrl);
  EXPECT_GT(wide.geq, base.geq);
}

}  // namespace
}  // namespace lopass::asic
