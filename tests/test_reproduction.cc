// Reproduction gate: the full-scale runs of all six applications must
// land in the paper's bands (Table 1 / Fig. 6). Absolute joules are
// not comparable (the models are reconstructed, see DESIGN.md §5), so
// the assertions check the paper's qualitative and quantitative *shape*:
//   * every application saves substantial energy (30..96%),
//   * the per-application savings ordering matches the paper,
//   * execution time improves for all applications except trick, which
//     gets slower,
//   * the additional hardware stays in the "less than ~16k cells" band,
//   * whole-system accounting: cache energies collapse when the hot
//     cluster moves to the ASIC core.

#include <gtest/gtest.h>

#include <map>

#include "apps/app.h"

namespace lopass::apps {
namespace {

struct Measured {
  core::AppRow row;
  PaperReference paper;
};

const std::map<std::string, Measured>& RunAll() {
  static const std::map<std::string, Measured>* results = [] {
    auto* m = new std::map<std::string, Measured>();
    for (const Application& app : AllApplications()) {
      const core::PartitionResult r = RunApplication(app);
      (*m)[app.name] = Measured{r.ToRow(app.name), app.paper};
    }
    return m;
  }();
  return *results;
}

TEST(Reproduction, EveryApplicationIsPartitioned) {
  for (const auto& [name, m] : RunAll()) {
    EXPECT_NE(m.row.cluster, "(none)") << name;
  }
}

TEST(Reproduction, SavingsFallInThePaperBand) {
  // Paper: "high reductions of power consumption between 35% and 94%".
  for (const auto& [name, m] : RunAll()) {
    EXPECT_LT(m.row.saving_percent(), -20.0) << name;
    EXPECT_GT(m.row.saving_percent(), -97.0) << name;
    // Within 12 percentage points of the paper's value.
    EXPECT_NEAR(m.row.saving_percent(), m.paper.saving_percent, 12.0) << name;
  }
}

TEST(Reproduction, SavingsOrderingMatchesPaper) {
  const auto& all = RunAll();
  auto sav = [&](const char* n) { return all.at(n).row.saving_percent(); };
  // engine < 3d < MPG < ckey < digs/trick (more negative = better).
  EXPECT_GT(sav("engine"), sav("3d"));
  EXPECT_GT(sav("3d"), sav("MPG"));
  EXPECT_GT(sav("MPG"), sav("ckey"));
  EXPECT_GT(sav("ckey"), sav("digs"));
  EXPECT_GT(sav("ckey"), sav("trick"));
}

TEST(Reproduction, ExecutionTimeSigns) {
  // "we achieved high energy savings but not at the cost of
  // performance (except for one case)" — trick slows down, the rest
  // speed up.
  for (const auto& [name, m] : RunAll()) {
    if (name == "trick") {
      EXPECT_GT(m.row.time_change_percent(), 30.0) << name;
    } else {
      EXPECT_LT(m.row.time_change_percent(), -10.0) << name;
    }
  }
}

TEST(Reproduction, HardwareOverheadBand) {
  // "The largest (but still small) additional hardware effort accounted
  // for slightly less than 16k cells."
  for (const auto& [name, m] : RunAll()) {
    EXPECT_GT(m.row.asic_cells, 1000.0) << name;
    EXPECT_LT(m.row.asic_cells, 17000.0) << name;
  }
}

TEST(Reproduction, WholeSystemAccounting) {
  // The i-cache/d-cache energies drop dramatically for the apps whose
  // hot cluster is nearly the whole program (the paper highlights
  // trick: 5.58mJ -> 12.59uJ).
  const auto& all = RunAll();
  for (const char* name : {"trick", "digs"}) {
    const Measured& m = all.at(name);
    EXPECT_LT(m.row.partitioned.icache.joules, 0.05 * m.row.initial.icache.joules)
        << name;
    EXPECT_LT(m.row.partitioned.dcache.joules, 0.05 * m.row.initial.dcache.joules)
        << name;
  }
}

TEST(Reproduction, CkeyIsTheLeastMemoryIntensive) {
  // Paper: for ckey "the contribution to total energy consumption
  // could be neglected" for caches/memory. Our reconstruction cannot
  // reach literal zero (fetches exist), but ckey must have the smallest
  // memory-subsystem share of the suite.
  const auto& all = RunAll();
  auto mem_share = [](const core::AppRow& r) {
    const double total = r.initial.total().joules;
    return (r.initial.mem.joules + r.initial.bus.joules + r.initial.dcache.joules) /
           total;
  };
  const double ckey_share = mem_share(all.at("ckey").row);
  int larger = 0;
  for (const auto& [name, m] : all) {
    if (name == "ckey") continue;
    if (mem_share(m.row) >= ckey_share) ++larger;
  }
  // At least four of the five others are more memory intensive, and
  // ckey's memory-subsystem share is negligible in absolute terms.
  EXPECT_GE(larger, 4);
  EXPECT_LT(ckey_share, 0.05);
}

TEST(Reproduction, UtilizationGateHeld) {
  // The chosen cores achieved a higher utilization rate than the µP on
  // the same blocks — the core premise (§3.1).
  for (const auto& [name, m] : RunAll()) {
    EXPECT_GT(m.row.asic_utilization, 0.2) << name;
    EXPECT_LE(m.row.asic_utilization, 1.0) << name;
  }
}

TEST(Reproduction, TimeChangeMagnitudesRoughlyMatch) {
  // Looser band than energy (the substrate's µP/ASIC speed ratio is
  // reconstructed): within 35 percentage points.
  for (const auto& [name, m] : RunAll()) {
    EXPECT_NEAR(m.row.time_change_percent(), m.paper.time_change_percent, 35.0)
        << name;
  }
}

}  // namespace
}  // namespace lopass::apps
