# Golden-reference comparison for one application (ctest -L golden).
#
#   cmake -DGOLDEN=path/to/golden_report -DAPP=name
#         -DFIXTURE=tests/data/golden/name.txt [-DREGEN=1] -P golden_check.cmake
#
# Runs the golden_report binary and byte-compares its stdout with the
# checked-in fixture. REGEN=1 rewrites the fixture instead (the
# regen-golden build target) — review the diff before committing it.

foreach(var GOLDEN APP FIXTURE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "golden_check.cmake needs -D${var}=...")
  endif()
endforeach()

execute_process(COMMAND ${GOLDEN} ${APP}
                OUTPUT_VARIABLE actual
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "golden_report ${APP} exited ${rc}:\n${err}")
endif()

if(REGEN)
  file(WRITE "${FIXTURE}" "${actual}")
  message(STATUS "regenerated ${FIXTURE}")
  return()
endif()

if(NOT EXISTS "${FIXTURE}")
  message(FATAL_ERROR
          "missing golden fixture ${FIXTURE} — generate it with:\n"
          "  cmake --build build -t regen-golden")
endif()

file(READ "${FIXTURE}" expected)
if(NOT actual STREQUAL expected)
  # Show the first diverging lines so the failure is readable in ctest
  # output without re-running anything.
  string(REPLACE "\n" ";" actual_lines "${actual}")
  string(REPLACE "\n" ";" expected_lines "${expected}")
  set(diff "")
  list(LENGTH actual_lines a_len)
  list(LENGTH expected_lines e_len)
  set(shown 0)
  math(EXPR last "${a_len} - 1")
  if(e_len GREATER a_len)
    math(EXPR last "${e_len} - 1")
  endif()
  foreach(i RANGE ${last})
    set(a_line "<eof>")
    set(e_line "<eof>")
    if(i LESS a_len)
      list(GET actual_lines ${i} a_line)
    endif()
    if(i LESS e_len)
      list(GET expected_lines ${i} e_line)
    endif()
    if(NOT a_line STREQUAL e_line)
      math(EXPR lineno "${i} + 1")
      string(APPEND diff "line ${lineno}:\n  expected: ${e_line}\n  actual:   ${a_line}\n")
      math(EXPR shown "${shown} + 1")
      if(shown EQUAL 8)
        string(APPEND diff "  ...\n")
        break()
      endif()
    endif()
  endforeach()
  message(FATAL_ERROR
          "golden mismatch for '${APP}' vs ${FIXTURE}:\n${diff}"
          "If the model change is intentional, regenerate with:\n"
          "  cmake --build build -t regen-golden")
endif()
