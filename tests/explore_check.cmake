# End-to-end crash/chaos contract for `lopass_cli explore`, on the real
# binary:
#
#   MODE=kill_resume  arm LOPASS_EXPLORE_KILL_AFTER so the process
#                     SIGKILLs itself after N journal appends, then
#                     resume from the journal and require the resumed
#                     report to be byte-identical to an uninterrupted
#                     run's.
#   MODE=chaos        run under a randomized one-shot fault schedule
#                     (--chaos SEED) and require exit 0 and a report
#                     byte-identical to the clean run's.
#
# Arguments (via -D):
#   CLI           path to the lopass_cli binary
#   MODE          kill_resume | chaos
#   WORKDIR       scratch directory for journals and captured reports
#   APPS          --apps value for the sweep
#   KILL_AFTER    (kill_resume) append count before the self-SIGKILL
#   CHAOS_SEED    (chaos) seed for the fault schedule

if(NOT DEFINED CLI OR NOT DEFINED MODE OR NOT DEFINED WORKDIR OR NOT DEFINED APPS)
  message(FATAL_ERROR "explore_check.cmake needs -DCLI, -DMODE, -DWORKDIR, -DAPPS")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
set(ENV{LOPASS_FAULT_INJECT} "")

# The uninterrupted reference sweep.
execute_process(
  COMMAND ${CLI} explore --apps ${APPS}
  RESULT_VARIABLE clean_rc
  OUTPUT_VARIABLE clean_out
  ERROR_VARIABLE clean_err
)
if(NOT clean_rc STREQUAL "0")
  message(FATAL_ERROR "clean explore run failed (rc=${clean_rc})\n${clean_err}")
endif()

if(MODE STREQUAL "kill_resume")
  if(NOT DEFINED KILL_AFTER)
    message(FATAL_ERROR "kill_resume mode needs -DKILL_AFTER=N")
  endif()
  set(journal "${WORKDIR}/kill_resume.jsonl")
  file(REMOVE "${journal}")

  # Crash the sweep for real: SIGKILL after N committed records.
  set(ENV{LOPASS_EXPLORE_KILL_AFTER} "${KILL_AFTER}")
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${journal}
    RESULT_VARIABLE kill_rc
    OUTPUT_VARIABLE kill_out
    ERROR_VARIABLE kill_err
  )
  unset(ENV{LOPASS_EXPLORE_KILL_AFTER})
  if(kill_rc STREQUAL "0")
    message(FATAL_ERROR
      "expected the armed kill switch to terminate the sweep, but it exited 0; "
      "raise KILL_AFTER below the job count")
  endif()
  if(NOT EXISTS "${journal}")
    message(FATAL_ERROR "no journal survived the kill")
  endif()

  # Resume: replay the committed prefix, run the rest.
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --resume ${journal}
    RESULT_VARIABLE resume_rc
    OUTPUT_VARIABLE resume_out
    ERROR_VARIABLE resume_err
  )
  if(NOT resume_rc STREQUAL "0")
    message(FATAL_ERROR "resumed explore run failed (rc=${resume_rc})\n${resume_err}")
  endif()
  if(NOT resume_out STREQUAL clean_out)
    message(FATAL_ERROR
      "resumed report is not byte-identical to the uninterrupted run\n"
      "--- uninterrupted ---\n${clean_out}\n--- resumed ---\n${resume_out}")
  endif()
elseif(MODE STREQUAL "chaos")
  if(NOT DEFINED CHAOS_SEED)
    message(FATAL_ERROR "chaos mode needs -DCHAOS_SEED=N")
  endif()
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --chaos ${CHAOS_SEED} --retries 4
    RESULT_VARIABLE chaos_rc
    OUTPUT_VARIABLE chaos_out
    ERROR_VARIABLE chaos_err
  )
  if(NOT chaos_rc STREQUAL "0")
    message(FATAL_ERROR "chaos explore run failed (rc=${chaos_rc})\n${chaos_err}")
  endif()
  if(NOT chaos_out STREQUAL clean_out)
    message(FATAL_ERROR
      "chaos report is not byte-identical to the clean run (seed ${CHAOS_SEED})\n"
      "--- clean ---\n${clean_out}\n--- chaos ---\n${chaos_out}")
  endif()
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
