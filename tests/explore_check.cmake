# End-to-end crash/chaos contract for `lopass_cli explore`, on the real
# binary:
#
#   MODE=kill_resume    arm LOPASS_EXPLORE_KILL_AFTER so the process
#                       SIGKILLs itself after N journal appends, then
#                       resume from the journal and require the resumed
#                       report to be byte-identical to an uninterrupted
#                       run's.
#   MODE=chaos          run under a randomized one-shot fault schedule
#                       (--chaos SEED) and require exit 0 and a report
#                       byte-identical to the clean run's.
#   MODE=jobs_identity  run the sweep with --jobs 1 and --jobs ${JOBS},
#                       both journaled, and require stdout AND journal
#                       bytes to be identical — the parallel runner's
#                       determinism contract on the real binary.
#   MODE=shard_identity the multi-process acceptance identity: run the
#                       sweep as three shard processes (--shard i/3) —
#                       one of them SIGKILLed mid-journal and resumed,
#                       one with in-process workers — then splice with
#                       `merge-journals` (shard files passed out of
#                       order) and require the merged journal AND the
#                       merged report to be byte-identical to a
#                       sequential --jobs 1 run. A second pass repeats
#                       the splice with every shard under --chaos: the
#                       merged journal must equal the sequential chaos
#                       journal, and the merged report the clean one.
#
# Arguments (via -D):
#   CLI           path to the lopass_cli binary
#   MODE          kill_resume | chaos | jobs_identity | shard_identity
#   WORKDIR       scratch directory for journals and captured reports
#   APPS          --apps value for the sweep
#   JOBS          worker count for the non-reference runs (default 1);
#                 the clean reference always runs sequentially, so
#                 kill_resume/chaos with JOBS>1 also prove the parallel
#                 runs match the sequential report byte-for-byte
#   KILL_AFTER    (kill_resume, shard_identity) append count before the
#                 self-SIGKILL
#   CHAOS_SEED    (chaos, shard_identity) seed for the fault schedule

if(NOT DEFINED CLI OR NOT DEFINED MODE OR NOT DEFINED WORKDIR OR NOT DEFINED APPS)
  message(FATAL_ERROR "explore_check.cmake needs -DCLI, -DMODE, -DWORKDIR, -DAPPS")
endif()
if(NOT DEFINED JOBS)
  set(JOBS 1)
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
set(ENV{LOPASS_FAULT_INJECT} "")

# The uninterrupted sequential reference sweep.
execute_process(
  COMMAND ${CLI} explore --apps ${APPS}
  RESULT_VARIABLE clean_rc
  OUTPUT_VARIABLE clean_out
  ERROR_VARIABLE clean_err
)
if(NOT clean_rc STREQUAL "0")
  message(FATAL_ERROR "clean explore run failed (rc=${clean_rc})\n${clean_err}")
endif()

if(MODE STREQUAL "kill_resume")
  if(NOT DEFINED KILL_AFTER)
    message(FATAL_ERROR "kill_resume mode needs -DKILL_AFTER=N")
  endif()
  set(journal "${WORKDIR}/kill_resume.jsonl")
  file(REMOVE "${journal}")

  # Crash the sweep for real: SIGKILL after N committed records, with
  # ${JOBS} workers in flight.
  set(ENV{LOPASS_EXPLORE_KILL_AFTER} "${KILL_AFTER}")
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${journal} --jobs ${JOBS}
    RESULT_VARIABLE kill_rc
    OUTPUT_VARIABLE kill_out
    ERROR_VARIABLE kill_err
  )
  unset(ENV{LOPASS_EXPLORE_KILL_AFTER})
  if(kill_rc STREQUAL "0")
    message(FATAL_ERROR
      "expected the armed kill switch to terminate the sweep, but it exited 0; "
      "raise KILL_AFTER below the job count")
  endif()
  if(NOT EXISTS "${journal}")
    message(FATAL_ERROR "no journal survived the kill")
  endif()

  # Resume: replay the committed prefix, run the rest.
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --resume ${journal} --jobs ${JOBS}
    RESULT_VARIABLE resume_rc
    OUTPUT_VARIABLE resume_out
    ERROR_VARIABLE resume_err
  )
  if(NOT resume_rc STREQUAL "0")
    message(FATAL_ERROR "resumed explore run failed (rc=${resume_rc})\n${resume_err}")
  endif()
  if(NOT resume_out STREQUAL clean_out)
    message(FATAL_ERROR
      "resumed report is not byte-identical to the uninterrupted run\n"
      "--- uninterrupted ---\n${clean_out}\n--- resumed ---\n${resume_out}")
  endif()
elseif(MODE STREQUAL "chaos")
  if(NOT DEFINED CHAOS_SEED)
    message(FATAL_ERROR "chaos mode needs -DCHAOS_SEED=N")
  endif()
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --chaos ${CHAOS_SEED} --retries 4
            --jobs ${JOBS}
    RESULT_VARIABLE chaos_rc
    OUTPUT_VARIABLE chaos_out
    ERROR_VARIABLE chaos_err
  )
  if(NOT chaos_rc STREQUAL "0")
    message(FATAL_ERROR "chaos explore run failed (rc=${chaos_rc})\n${chaos_err}")
  endif()
  if(NOT chaos_out STREQUAL clean_out)
    message(FATAL_ERROR
      "chaos report is not byte-identical to the clean run (seed ${CHAOS_SEED})\n"
      "--- clean ---\n${clean_out}\n--- chaos ---\n${chaos_out}")
  endif()
elseif(MODE STREQUAL "jobs_identity")
  set(journal_seq "${WORKDIR}/identity_seq.jsonl")
  set(journal_par "${WORKDIR}/identity_par.jsonl")
  file(REMOVE "${journal_seq}" "${journal_par}")

  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${journal_seq} --jobs 1
    RESULT_VARIABLE seq_rc
    OUTPUT_VARIABLE seq_out
    ERROR_VARIABLE seq_err
  )
  if(NOT seq_rc STREQUAL "0")
    message(FATAL_ERROR "sequential journaled run failed (rc=${seq_rc})\n${seq_err}")
  endif()
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${journal_par} --jobs ${JOBS}
    RESULT_VARIABLE par_rc
    OUTPUT_VARIABLE par_out
    ERROR_VARIABLE par_err
  )
  if(NOT par_rc STREQUAL "0")
    message(FATAL_ERROR
      "--jobs ${JOBS} journaled run failed (rc=${par_rc})\n${par_err}")
  endif()
  if(NOT par_out STREQUAL seq_out)
    message(FATAL_ERROR
      "--jobs ${JOBS} report is not byte-identical to --jobs 1\n"
      "--- jobs 1 ---\n${seq_out}\n--- jobs ${JOBS} ---\n${par_out}")
  endif()
  file(READ "${journal_seq}" seq_journal)
  file(READ "${journal_par}" par_journal)
  if(NOT par_journal STREQUAL seq_journal)
    message(FATAL_ERROR
      "--jobs ${JOBS} journal is not byte-identical to --jobs 1\n"
      "--- jobs 1 ---\n${seq_journal}\n--- jobs ${JOBS} ---\n${par_journal}")
  endif()
elseif(MODE STREQUAL "shard_identity")
  if(NOT DEFINED KILL_AFTER)
    set(KILL_AFTER 3)
  endif()
  if(NOT DEFINED CHAOS_SEED)
    set(CHAOS_SEED 7)
  endif()

  # The sequential journaled reference: the bytes every splice below
  # must reproduce exactly.
  set(journal_seq "${WORKDIR}/shard_seq.jsonl")
  file(REMOVE "${journal_seq}")
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${journal_seq} --jobs 1
    RESULT_VARIABLE seq_rc
    OUTPUT_VARIABLE seq_out
    ERROR_VARIABLE seq_err
  )
  if(NOT seq_rc STREQUAL "0")
    message(FATAL_ERROR "sequential reference run failed (rc=${seq_rc})\n${seq_err}")
  endif()
  file(READ "${journal_seq}" seq_journal)

  # --- pass 1: clean shards, one crashed-and-resumed, one parallel ----
  set(base "${WORKDIR}/shard_clean.jsonl")
  file(REMOVE "${base}.shard-0-of-3" "${base}.shard-1-of-3" "${base}.shard-2-of-3")

  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${base} --shard 0/3
    RESULT_VARIABLE s0_rc
    OUTPUT_VARIABLE s0_out
    ERROR_VARIABLE s0_err
  )
  if(NOT s0_rc STREQUAL "0")
    message(FATAL_ERROR "shard 0/3 failed (rc=${s0_rc})\n${s0_err}")
  endif()

  # Shard 1 is killed for real mid-journal, then resumed.
  set(ENV{LOPASS_EXPLORE_KILL_AFTER} "${KILL_AFTER}")
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${base} --shard 1/3
    RESULT_VARIABLE kill_rc
    OUTPUT_VARIABLE kill_out
    ERROR_VARIABLE kill_err
  )
  unset(ENV{LOPASS_EXPLORE_KILL_AFTER})
  if(kill_rc STREQUAL "0")
    message(FATAL_ERROR
      "expected the armed kill switch to terminate shard 1/3, but it exited 0; "
      "lower KILL_AFTER below the shard's append count")
  endif()
  if(NOT EXISTS "${base}.shard-1-of-3")
    message(FATAL_ERROR "no shard journal survived the kill")
  endif()
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --resume ${base} --shard 1/3
    RESULT_VARIABLE s1_rc
    OUTPUT_VARIABLE s1_out
    ERROR_VARIABLE s1_err
  )
  if(NOT s1_rc STREQUAL "0")
    message(FATAL_ERROR "resumed shard 1/3 failed (rc=${s1_rc})\n${s1_err}")
  endif()

  # Shard 2 drains its slice with in-process workers.
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${base} --shard 2/3 --jobs ${JOBS}
    RESULT_VARIABLE s2_rc
    OUTPUT_VARIABLE s2_out
    ERROR_VARIABLE s2_err
  )
  if(NOT s2_rc STREQUAL "0")
    message(FATAL_ERROR "shard 2/3 failed (rc=${s2_rc})\n${s2_err}")
  endif()

  # Splice — shard files deliberately out of order.
  set(merged "${WORKDIR}/shard_clean_merged.jsonl")
  execute_process(
    COMMAND ${CLI} merge-journals --out ${merged}
            ${base}.shard-2-of-3 ${base}.shard-0-of-3 ${base}.shard-1-of-3
    RESULT_VARIABLE merge_rc
    OUTPUT_VARIABLE merge_out
    ERROR_VARIABLE merge_err
  )
  if(NOT merge_rc STREQUAL "0")
    message(FATAL_ERROR "merge-journals failed (rc=${merge_rc})\n${merge_err}")
  endif()
  file(READ "${merged}" merged_journal)
  if(NOT merged_journal STREQUAL seq_journal)
    message(FATAL_ERROR
      "merged journal is not byte-identical to the sequential --jobs 1 journal\n"
      "--- sequential ---\n${seq_journal}\n--- merged ---\n${merged_journal}")
  endif()
  if(NOT merge_out STREQUAL seq_out)
    message(FATAL_ERROR
      "merged report is not byte-identical to the sequential report\n"
      "--- sequential ---\n${seq_out}\n--- merged ---\n${merge_out}")
  endif()

  # --- pass 2: every shard under chaos --------------------------------
  # Chaos journals record attempts and fault specs, so the reference is
  # a sequential run under the SAME chaos seed; the report must still
  # equal the clean sequential one (one-shot faults are absorbed by the
  # retries).
  set(journal_chaos "${WORKDIR}/shard_chaos_seq.jsonl")
  file(REMOVE "${journal_chaos}")
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${journal_chaos} --jobs 1
            --chaos ${CHAOS_SEED} --retries 4
    RESULT_VARIABLE cseq_rc
    OUTPUT_VARIABLE cseq_out
    ERROR_VARIABLE cseq_err
  )
  if(NOT cseq_rc STREQUAL "0")
    message(FATAL_ERROR
      "sequential chaos reference failed (rc=${cseq_rc})\n${cseq_err}")
  endif()
  file(READ "${journal_chaos}" chaos_journal)

  set(cbase "${WORKDIR}/shard_chaos.jsonl")
  file(REMOVE "${cbase}.shard-0-of-3" "${cbase}.shard-1-of-3" "${cbase}.shard-2-of-3")
  foreach(i RANGE 2)
    execute_process(
      COMMAND ${CLI} explore --apps ${APPS} --journal ${cbase} --shard ${i}/3
              --chaos ${CHAOS_SEED} --retries 4 --jobs ${JOBS}
      RESULT_VARIABLE ci_rc
      OUTPUT_VARIABLE ci_out
      ERROR_VARIABLE ci_err
    )
    if(NOT ci_rc STREQUAL "0")
      message(FATAL_ERROR "chaos shard ${i}/3 failed (rc=${ci_rc})\n${ci_err}")
    endif()
  endforeach()

  set(cmerged "${WORKDIR}/shard_chaos_merged.jsonl")
  execute_process(
    COMMAND ${CLI} merge-journals --out ${cmerged}
            ${cbase}.shard-1-of-3 ${cbase}.shard-2-of-3 ${cbase}.shard-0-of-3
    RESULT_VARIABLE cmerge_rc
    OUTPUT_VARIABLE cmerge_out
    ERROR_VARIABLE cmerge_err
  )
  if(NOT cmerge_rc STREQUAL "0")
    message(FATAL_ERROR "chaos merge-journals failed (rc=${cmerge_rc})\n${cmerge_err}")
  endif()
  file(READ "${cmerged}" cmerged_journal)
  if(NOT cmerged_journal STREQUAL chaos_journal)
    message(FATAL_ERROR
      "chaos merged journal is not byte-identical to the sequential chaos journal\n"
      "--- sequential chaos ---\n${chaos_journal}\n--- merged ---\n${cmerged_journal}")
  endif()
  if(NOT cmerge_out STREQUAL seq_out)
    message(FATAL_ERROR
      "chaos merged report is not byte-identical to the clean sequential report\n"
      "--- clean ---\n${seq_out}\n--- chaos merged ---\n${cmerge_out}")
  endif()
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
