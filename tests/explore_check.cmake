# End-to-end crash/chaos contract for `lopass_cli explore`, on the real
# binary:
#
#   MODE=kill_resume    arm LOPASS_EXPLORE_KILL_AFTER so the process
#                       SIGKILLs itself after N journal appends, then
#                       resume from the journal and require the resumed
#                       report to be byte-identical to an uninterrupted
#                       run's.
#   MODE=chaos          run under a randomized one-shot fault schedule
#                       (--chaos SEED) and require exit 0 and a report
#                       byte-identical to the clean run's.
#   MODE=jobs_identity  run the sweep with --jobs 1 and --jobs ${JOBS},
#                       both journaled, and require stdout AND journal
#                       bytes to be identical — the parallel runner's
#                       determinism contract on the real binary.
#
# Arguments (via -D):
#   CLI           path to the lopass_cli binary
#   MODE          kill_resume | chaos | jobs_identity
#   WORKDIR       scratch directory for journals and captured reports
#   APPS          --apps value for the sweep
#   JOBS          worker count for the non-reference runs (default 1);
#                 the clean reference always runs sequentially, so
#                 kill_resume/chaos with JOBS>1 also prove the parallel
#                 runs match the sequential report byte-for-byte
#   KILL_AFTER    (kill_resume) append count before the self-SIGKILL
#   CHAOS_SEED    (chaos) seed for the fault schedule

if(NOT DEFINED CLI OR NOT DEFINED MODE OR NOT DEFINED WORKDIR OR NOT DEFINED APPS)
  message(FATAL_ERROR "explore_check.cmake needs -DCLI, -DMODE, -DWORKDIR, -DAPPS")
endif()
if(NOT DEFINED JOBS)
  set(JOBS 1)
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
set(ENV{LOPASS_FAULT_INJECT} "")

# The uninterrupted sequential reference sweep.
execute_process(
  COMMAND ${CLI} explore --apps ${APPS}
  RESULT_VARIABLE clean_rc
  OUTPUT_VARIABLE clean_out
  ERROR_VARIABLE clean_err
)
if(NOT clean_rc STREQUAL "0")
  message(FATAL_ERROR "clean explore run failed (rc=${clean_rc})\n${clean_err}")
endif()

if(MODE STREQUAL "kill_resume")
  if(NOT DEFINED KILL_AFTER)
    message(FATAL_ERROR "kill_resume mode needs -DKILL_AFTER=N")
  endif()
  set(journal "${WORKDIR}/kill_resume.jsonl")
  file(REMOVE "${journal}")

  # Crash the sweep for real: SIGKILL after N committed records, with
  # ${JOBS} workers in flight.
  set(ENV{LOPASS_EXPLORE_KILL_AFTER} "${KILL_AFTER}")
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${journal} --jobs ${JOBS}
    RESULT_VARIABLE kill_rc
    OUTPUT_VARIABLE kill_out
    ERROR_VARIABLE kill_err
  )
  unset(ENV{LOPASS_EXPLORE_KILL_AFTER})
  if(kill_rc STREQUAL "0")
    message(FATAL_ERROR
      "expected the armed kill switch to terminate the sweep, but it exited 0; "
      "raise KILL_AFTER below the job count")
  endif()
  if(NOT EXISTS "${journal}")
    message(FATAL_ERROR "no journal survived the kill")
  endif()

  # Resume: replay the committed prefix, run the rest.
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --resume ${journal} --jobs ${JOBS}
    RESULT_VARIABLE resume_rc
    OUTPUT_VARIABLE resume_out
    ERROR_VARIABLE resume_err
  )
  if(NOT resume_rc STREQUAL "0")
    message(FATAL_ERROR "resumed explore run failed (rc=${resume_rc})\n${resume_err}")
  endif()
  if(NOT resume_out STREQUAL clean_out)
    message(FATAL_ERROR
      "resumed report is not byte-identical to the uninterrupted run\n"
      "--- uninterrupted ---\n${clean_out}\n--- resumed ---\n${resume_out}")
  endif()
elseif(MODE STREQUAL "chaos")
  if(NOT DEFINED CHAOS_SEED)
    message(FATAL_ERROR "chaos mode needs -DCHAOS_SEED=N")
  endif()
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --chaos ${CHAOS_SEED} --retries 4
            --jobs ${JOBS}
    RESULT_VARIABLE chaos_rc
    OUTPUT_VARIABLE chaos_out
    ERROR_VARIABLE chaos_err
  )
  if(NOT chaos_rc STREQUAL "0")
    message(FATAL_ERROR "chaos explore run failed (rc=${chaos_rc})\n${chaos_err}")
  endif()
  if(NOT chaos_out STREQUAL clean_out)
    message(FATAL_ERROR
      "chaos report is not byte-identical to the clean run (seed ${CHAOS_SEED})\n"
      "--- clean ---\n${clean_out}\n--- chaos ---\n${chaos_out}")
  endif()
elseif(MODE STREQUAL "jobs_identity")
  set(journal_seq "${WORKDIR}/identity_seq.jsonl")
  set(journal_par "${WORKDIR}/identity_par.jsonl")
  file(REMOVE "${journal_seq}" "${journal_par}")

  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${journal_seq} --jobs 1
    RESULT_VARIABLE seq_rc
    OUTPUT_VARIABLE seq_out
    ERROR_VARIABLE seq_err
  )
  if(NOT seq_rc STREQUAL "0")
    message(FATAL_ERROR "sequential journaled run failed (rc=${seq_rc})\n${seq_err}")
  endif()
  execute_process(
    COMMAND ${CLI} explore --apps ${APPS} --journal ${journal_par} --jobs ${JOBS}
    RESULT_VARIABLE par_rc
    OUTPUT_VARIABLE par_out
    ERROR_VARIABLE par_err
  )
  if(NOT par_rc STREQUAL "0")
    message(FATAL_ERROR
      "--jobs ${JOBS} journaled run failed (rc=${par_rc})\n${par_err}")
  endif()
  if(NOT par_out STREQUAL seq_out)
    message(FATAL_ERROR
      "--jobs ${JOBS} report is not byte-identical to --jobs 1\n"
      "--- jobs 1 ---\n${seq_out}\n--- jobs ${JOBS} ---\n${par_out}")
  endif()
  file(READ "${journal_seq}" seq_journal)
  file(READ "${journal_par}" par_journal)
  if(NOT par_journal STREQUAL seq_journal)
    message(FATAL_ERROR
      "--jobs ${JOBS} journal is not byte-identical to --jobs 1\n"
      "--- jobs 1 ---\n${seq_journal}\n--- jobs ${JOBS} ---\n${par_journal}")
  endif()
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
