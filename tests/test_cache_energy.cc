#include "power/cache_energy.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "power/tech_library.h"

namespace lopass::power {
namespace {

const TechParams& Params() { return TechLibrary::Cmos6().params(); }

TEST(CacheGeometry, DerivedQuantities) {
  CacheGeometry g{2048, 16, 1, 32};
  EXPECT_EQ(g.num_lines(), 128u);
  EXPECT_EQ(g.num_sets(), 128u);
  EXPECT_EQ(g.tag_bits(), 32u - 4u - 7u);

  CacheGeometry g2{4096, 32, 2, 32};
  EXPECT_EQ(g2.num_lines(), 128u);
  EXPECT_EQ(g2.num_sets(), 64u);
  EXPECT_EQ(g2.tag_bits(), 32u - 5u - 6u);
}

TEST(CacheEnergyModel, ValidatesGeometry) {
  EXPECT_THROW(CacheEnergyModel({1000, 16, 1, 32}, Params()), lopass::Error);
  EXPECT_THROW(CacheEnergyModel({2048, 12, 1, 32}, Params()), lopass::Error);
  EXPECT_THROW(CacheEnergyModel({2048, 16, 3, 32}, Params()), lopass::Error);
  EXPECT_THROW(CacheEnergyModel({16, 16, 4, 32}, Params()), lopass::Error);
  EXPECT_NO_THROW(CacheEnergyModel({2048, 16, 1, 32}, Params()));
}

TEST(CacheEnergyModel, PerAccessEnergyInPlausibleRange) {
  // 0.8u-era small SRAM: a read should land in the 0.1..20 nJ band.
  const CacheEnergyModel m({2048, 16, 1, 32}, Params());
  EXPECT_GT(m.read_hit_energy().nanojoules(), 0.1);
  EXPECT_LT(m.read_hit_energy().nanojoules(), 20.0);
}

TEST(CacheEnergyModel, BiggerCachesCostMorePerAccess) {
  const CacheEnergyModel small({1024, 16, 1, 32}, Params());
  const CacheEnergyModel big({16384, 16, 1, 32}, Params());
  EXPECT_LT(small.read_hit_energy(), big.read_hit_energy());
  EXPECT_LT(small.write_hit_energy(), big.write_hit_energy());
}

TEST(CacheEnergyModel, HigherAssociativityCostsMorePerAccess) {
  const CacheEnergyModel dm({4096, 16, 1, 32}, Params());
  const CacheEnergyModel sa({4096, 16, 4, 32}, Params());
  // More ways are read in parallel per access.
  EXPECT_LT(dm.read_hit_energy(), sa.read_hit_energy());
}

TEST(CacheEnergyModel, LineFillCostsMoreThanWordAccess) {
  const CacheEnergyModel m({2048, 32, 1, 32}, Params());
  EXPECT_GT(m.line_fill_energy(), m.read_hit_energy());
  EXPECT_GT(m.writeback_energy().joules, 0.0);
}

TEST(MemoryEnergyModel, ScalesWithSqrtCapacity) {
  const MemoryEnergyModel m64(64 * 1024, Params());
  const MemoryEnergyModel m256(256 * 1024, Params());
  // 4x capacity => 2x per-access energy (array edge doubles).
  EXPECT_NEAR(m256.read_energy().joules / m64.read_energy().joules, 2.0, 1e-9);
}

TEST(MemoryEnergyModel, WriteCostsMoreThanRead) {
  const MemoryEnergyModel m(256 * 1024, Params());
  EXPECT_GT(m.write_energy(), m.read_energy());
}

TEST(MemoryEnergyModel, MainMemoryCostsMoreThanCache) {
  // The hierarchy only saves energy if this holds.
  const CacheEnergyModel cache({2048, 16, 1, 32}, Params());
  const MemoryEnergyModel mem(256 * 1024, Params());
  EXPECT_GT(mem.read_energy(), cache.read_hit_energy());
}

TEST(MemoryEnergyModel, RejectsTinyMemories) {
  EXPECT_THROW(MemoryEnergyModel(512, Params()), lopass::Error);
}

TEST(MemoryEnergyModel, VoltageScalingIsQuadratic) {
  TechParams p = Params();
  p.vdd = 3.3;
  const MemoryEnergyModel a(65536, p);
  p.vdd = 1.65;
  const MemoryEnergyModel b(65536, p);
  EXPECT_NEAR(a.read_energy().joules / b.read_energy().joules, 4.0, 1e-9);
}

// Parameterized sweep: the per-access energy must be monotone in
// capacity for every (line size, associativity) combination the system
// configs use.
class CacheEnergySweep : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(CacheEnergySweep, MonotoneInCapacity) {
  const auto [line, assoc] = GetParam();
  double prev = 0.0;
  for (std::uint32_t cap = 1024; cap <= 32768; cap *= 2) {
    if (cap < line * assoc) continue;
    const CacheEnergyModel m({cap, line, assoc, 32}, Params());
    EXPECT_GT(m.read_hit_energy().joules, prev)
        << "cap=" << cap << " line=" << line << " assoc=" << assoc;
    prev = m.read_hit_energy().joules;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheEnergySweep,
                         ::testing::Combine(::testing::Values(8u, 16u, 32u),
                                            ::testing::Values(1u, 2u, 4u)));

}  // namespace
}  // namespace lopass::power
