// Property test: the SL32 code generator + system simulator must agree
// with the IR interpreter on program semantics — same return value and
// same final global state — for hand-written kernels and for a family
// of randomly generated programs.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/prng.h"
#include "dsl/lower.h"
#include "interp/interpreter.h"
#include "isa/codegen.h"
#include "iss/simulator.h"

namespace lopass {
namespace {

struct EquivResult {
  std::int64_t interp_value = 0;
  std::int64_t iss_value = 0;
  std::vector<std::pair<std::string, std::int64_t>> interp_globals;
  std::vector<std::pair<std::string, std::int64_t>> iss_globals;
};

EquivResult RunBoth(const std::string& src, std::vector<std::int64_t> args = {}) {
  const dsl::LoweredProgram p = dsl::Compile(src);
  EquivResult r;

  interp::Interpreter it(p.module);
  r.interp_value = it.Run("main", args).return_value;

  const isa::SlProgram prog = isa::Generate(p.module);
  iss::Simulator sim(p.module, prog, iss::SystemConfig{});
  r.iss_value = sim.Run("main", args).return_value;

  for (const ir::Symbol& s : p.module.symbols()) {
    if (s.kind == ir::SymbolKind::kScalar && s.owner == -1) {
      r.interp_globals.emplace_back(s.name, it.GetScalar(s.id));
      r.iss_globals.emplace_back(s.name, sim.GetScalar(s.name));
    }
  }
  return r;
}

void ExpectEquivalent(const std::string& src, std::vector<std::int64_t> args = {}) {
  const EquivResult r = RunBoth(src, std::move(args));
  EXPECT_EQ(r.interp_value, r.iss_value) << src;
  EXPECT_EQ(r.interp_globals, r.iss_globals) << src;
}

TEST(Equivalence, StraightLine) {
  ExpectEquivalent("func main(a, b) { return (a * 7 - b) << 2; }", {13, 5});
  ExpectEquivalent("func main(a) { return a / 3 + a % 3; }", {-17});
  ExpectEquivalent("func main() { return min(4, 9) * max(-1, -7) + abs(-12); }");
  ExpectEquivalent("func main(a) { return ~a ^ (a | 0x0F) & 0xF0; }", {1234});
}

TEST(Equivalence, ControlFlow) {
  ExpectEquivalent(R"(
    func main(n) {
      var s; var i;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        if (i % 3 == 0) { s = s + i; }
        else { if (i % 3 == 1) { s = s - i; } else { s = s ^ i; } }
      }
      return s;
    })", {57});
  ExpectEquivalent(R"(
    func main(n) {
      while (n > 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
      }
      return n;
    })", {97});
}

TEST(Equivalence, ArraysAndGlobals) {
  ExpectEquivalent(R"(
    var acc = 3;
    array buf[32];
    func main(n) {
      var i;
      for (i = 0; i < n; i = i + 1) { buf[i] = i * i - 4; }
      for (i = 0; i < n; i = i + 1) { acc = acc + buf[n - 1 - i] * i; }
      return acc;
    })", {32});
}

TEST(Equivalence, FunctionsAndCalls) {
  ExpectEquivalent(R"(
    var depth = 0;
    func square(x) { depth = depth + 1; return x * x; }
    func poly(x, a, b) { return square(x) * a + x * b; }
    func main(x) { return poly(x, 3, -2) + poly(x + 1, 1, 1) + depth; })", {6});
}

TEST(Equivalence, SpillHeavyExpression) {
  // Right-nested to force spills (see test_isa.cc).
  std::string expr = "(a + 24)";
  for (int i = 23; i >= 1; --i) {
    expr = "((a ^ " + std::to_string(i) + ") * " + expr + ")";
  }
  ExpectEquivalent("func main(a) { return " + expr + "; }", {77});
}


TEST(Equivalence, BreakAndContinue) {
  ExpectEquivalent(R"(
    func main(n) {
      var i; var j; var s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        if (i == 13) { break; }
        for (j = 0; j < 8; j = j + 1) {
          if ((i + j) % 3 == 0) { continue; }
          s = s + i * j;
        }
      }
      while (s > 100) {
        s = s - 37;
        if (s % 5 == 0) { break; }
      }
      return s;
    })", {20});
}

// ---------------------------------------------------------------------
// Randomized program family. A seeded generator emits structured
// programs (nested arithmetic, loops with bounded trip counts, array
// traffic with masked indices, safe divisors); each seed must agree
// between the two engines.
class RandomProgramGen {
 public:
  explicit RandomProgramGen(std::uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    std::ostringstream os;
    os << "var g0 = " << rng_.next_in(-50, 50) << ";\n";
    os << "var g1 = " << rng_.next_in(-50, 50) << ";\n";
    os << "array mem[16];\n";
    os << "func main(a, b) {\n";
    os << "  var t0; var t1; var i;\n";
    os << "  t0 = " << Expr(3) << ";\n";
    os << "  t1 = " << Expr(3) << ";\n";
    // One or two bounded loops.
    const int loops = 1 + static_cast<int>(rng_.next_below(2));
    for (int l = 0; l < loops; ++l) {
      os << "  for (i = 0; i < " << rng_.next_in(3, 12) << "; i = i + 1) {\n";
      os << "    mem[(" << Expr(2) << ") & 15] = " << Expr(2) << ";\n";
      if (rng_.next_below(2)) {
        os << "    if ((" << Expr(2) << ") > 0) { g0 = g0 + " << Expr(1)
           << "; } else { g1 = g1 - " << Expr(1) << "; }\n";
      }
      os << "    t0 = t0 + mem[(t1 + i) & 15];\n";
      os << "  }\n";
    }
    os << "  return t0 ^ t1 + g0 - g1;\n";
    os << "}\n";
    return os.str();
  }

 private:
  std::string Atom() {
    switch (rng_.next_below(6)) {
      case 0: return "a";
      case 1: return "b";
      case 2: return "t0";
      case 3: return "t1";
      case 4: return "g0";
      default: return std::to_string(rng_.next_in(-20, 20));
    }
  }

  std::string Expr(int depth) {
    if (depth == 0) return Atom();
    switch (rng_.next_below(10)) {
      case 0: return "(" + Expr(depth - 1) + " + " + Expr(depth - 1) + ")";
      case 1: return "(" + Expr(depth - 1) + " - " + Expr(depth - 1) + ")";
      case 2: return "(" + Expr(depth - 1) + " * " + Atom() + ")";
      case 3: return "(" + Expr(depth - 1) + " / ((" + Atom() + " & 7) + 1))";
      case 4: return "(" + Expr(depth - 1) + " % ((" + Atom() + " & 7) + 2))";
      case 5: return "(" + Expr(depth - 1) + " ^ " + Expr(depth - 1) + ")";
      case 6: return "(" + Expr(depth - 1) + " << (" + Atom() + " & 3))";
      case 7: return "(" + Expr(depth - 1) + " >> (" + Atom() + " & 3))";
      case 8: return "min(" + Expr(depth - 1) + ", " + Expr(depth - 1) + ")";
      default: return "max(" + Expr(depth - 1) + ", abs(" + Expr(depth - 1) + "))";
    }
  }

  Prng rng_;
};

class RandomizedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedEquivalence, InterpreterAndIssAgree) {
  RandomProgramGen gen(static_cast<std::uint64_t>(GetParam()) * 0x9e3779b9ull + 1);
  const std::string src = gen.Generate();
  Prng argrng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const std::vector<std::int64_t> args{argrng.next_in(-100, 100),
                                       argrng.next_in(-100, 100)};
  SCOPED_TRACE(src);
  ExpectEquivalent(src, args);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalence, ::testing::Range(0, 40));

}  // namespace
}  // namespace lopass
