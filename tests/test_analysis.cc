// Whole-pipeline static analysis: the L2xx lint corpus (table-driven
// over tests/data/lint/), the diagnostic policy (-Wno / -Werror), and
// the L3xx-L5xx validators against hand-broken chains, schedules and
// netlists — including the acceptance case that a corrupted schedule
// is rejected, not silently synthesized.

#include "analysis/manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/codes.h"
#include "asic/datapath.h"
#include "asic/netlist_check.h"
#include "asic/synthesis.h"
#include "asic/utilization.h"
#include "asic/verilog.h"
#include "common/diag.h"
#include "core/cluster.h"
#include "core/dataflow.h"
#include "core/partition_check.h"
#include "dsl/lower.h"
#include "power/tech_library.h"
#include "sched/dfg.h"
#include "sched/list_scheduler.h"
#include "sched/resource_set.h"
#include "sched/validate.h"

namespace lopass {
namespace {

std::string ReadData(const std::string& name) {
  const std::string path = std::string(LOPASS_TEST_DATA_DIR) + "/lint/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing corpus file " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

analysis::LintReport Lint(const std::string& source,
                          const analysis::AnalysisManager& manager = {}) {
  return analysis::LintProgram(source, manager);
}

bool HasCode(const std::vector<Diagnostic>& diags, const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

bool SinkHas(DiagnosticSink& sink, const std::string& code) {
  return HasCode(sink.diagnostics(), code);
}

// ---------------------------------------------------------------------
// L2xx corpus: one reproducer per code, each firing exactly its code
// with a real source location; each clean twin staying silent.

struct CorpusCase {
  const char* file;
  const char* code;
};

TEST(LintCorpus, EachReproducerFiresExactlyItsCode) {
  const CorpusCase cases[] = {
      {"l200_read_never_assigned.lp", "L200"},
      {"l201_dead_store.lp", "L201"},
      {"l202_unused_var.lp", "L202"},
      {"l203_unused_array.lp", "L203"},
      {"l204_unreachable.lp", "L204"},
      {"l205_constant_branch.lp", "L205"},
      {"l206_uncalled_function.lp", "L206"},
      {"l207_oob_index.lp", "L207"},
  };
  for (const CorpusCase& c : cases) {
    const analysis::LintReport r = Lint(ReadData(c.file));
    EXPECT_EQ(r.errors, 0u) << c.file;
    EXPECT_EQ(r.warnings, 1u) << c.file;
    ASSERT_TRUE(HasCode(r.diagnostics, c.code)) << c.file;
    for (const Diagnostic& d : r.diagnostics) {
      if (d.code != c.code) continue;
      EXPECT_GT(d.loc.line, 0) << c.file << " finding has no location";
    }
  }
}

TEST(LintCorpus, CleanTwinsStayClean) {
  const char* twins[] = {"l200_clean.lp", "l201_clean.lp", "l202_clean.lp",
                         "l203_clean.lp", "l204_clean.lp", "l205_clean.lp",
                         "l206_clean.lp", "l207_clean.lp"};
  for (const char* file : twins) {
    const analysis::LintReport r = Lint(ReadData(file));
    EXPECT_EQ(r.errors, 0u) << file;
    EXPECT_EQ(r.warnings, 0u) << file;
  }
}

TEST(LintCorpus, MultiDefectFileReportsEverythingInOnePass) {
  const analysis::LintReport r = Lint(ReadData("lint_multi.lp"));
  EXPECT_EQ(r.errors, 0u);
  for (const char* code : {"L200", "L201", "L202", "L203", "L205", "L206"}) {
    EXPECT_TRUE(HasCode(r.diagnostics, code)) << code << " missing from single pass";
  }
  // Policy sorts findings by source position.
  for (std::size_t i = 1; i < r.diagnostics.size(); ++i) {
    EXPECT_LE(r.diagnostics[i - 1].loc.line, r.diagnostics[i].loc.line);
  }
}

TEST(LintCorpus, SyntaxErrorSurfacesAsError) {
  const analysis::LintReport r = Lint("func main( {");
  EXPECT_GT(r.errors, 0u);
  EXPECT_FALSE(r.clean());
}

// ---------------------------------------------------------------------
// Diagnostic policy: suppression and promotion, exact and by class.

TEST(LintPolicy, DisableByClassSilencesTheCorpus) {
  analysis::AnalysisManager m;
  m.Disable("L2xx");
  const analysis::LintReport r = Lint(ReadData("lint_multi.lp"), m);
  EXPECT_EQ(r.warnings, 0u);
  EXPECT_EQ(r.errors, 0u);
}

TEST(LintPolicy, PromoteAllTurnsWarningsIntoErrors) {
  analysis::AnalysisManager m;
  m.PromoteAllWarnings();
  const analysis::LintReport r = Lint(ReadData("lint_multi.lp"), m);
  EXPECT_EQ(r.warnings, 0u);
  EXPECT_EQ(r.errors, 6u);
  EXPECT_FALSE(r.clean());
}

TEST(LintPolicy, PromoteOneCodeLeavesTheRestWarnings) {
  analysis::AnalysisManager m;
  m.Promote("L205");
  const analysis::LintReport r = Lint(ReadData("lint_multi.lp"), m);
  EXPECT_EQ(r.errors, 1u);
  EXPECT_EQ(r.warnings, 5u);
}

TEST(LintPolicy, CodeRegistryCoversEveryFamily) {
  for (const char* code : {"L100", "L200", "L300", "L400", "L500"}) {
    EXPECT_NE(analysis::FindCode(code), nullptr) << code;
  }
  EXPECT_TRUE(analysis::CodeMatchesPattern("L204", "L2xx"));
  EXPECT_FALSE(analysis::CodeMatchesPattern("L304", "L2xx"));
}

// ---------------------------------------------------------------------
// L3xx: partition invariants against a hand-corrupted cluster chain.

const char* kLoopProgram = R"(
  var n;
  array a[64];
  var s;
  func main() {
    var i;
    s = 0;
    for (i = 0; i < n; i = i + 1) {
      s = s + a[i] * 3;
    }
    return s;
  })";

struct CompiledChain {
  dsl::LoweredProgram prog;
  core::ClusterChain chain;
};

CompiledChain MakeChain() {
  CompiledChain cc{dsl::Compile(kLoopProgram), {}};
  cc.chain = core::DecomposeIntoClusters(cc.prog.module, cc.prog.regions, "main");
  return cc;
}

int FirstHwCandidate(const core::ClusterChain& chain) {
  for (const core::Cluster& c : chain.clusters) {
    if (c.hw_candidate) return c.id;
  }
  return -1;
}

TEST(PartitionCheck, ValidChainPasses) {
  CompiledChain cc = MakeChain();
  DiagnosticSink sink;
  EXPECT_TRUE(core::ValidateClusterChain(cc.prog.module, cc.chain, sink));
  EXPECT_FALSE(sink.has_errors());
}

TEST(PartitionCheck, DanglingBlockRefIsL300) {
  CompiledChain cc = MakeChain();
  cc.chain.clusters[0].blocks.push_back({ir::FunctionId{0}, ir::BlockId{999}});
  DiagnosticSink sink;
  EXPECT_FALSE(core::ValidateClusterChain(cc.prog.module, cc.chain, sink));
  EXPECT_TRUE(SinkHas(sink, "L300"));
}

TEST(PartitionCheck, CorruptedClusterIdIsL301) {
  CompiledChain cc = MakeChain();
  cc.chain.clusters[0].id = 42;
  DiagnosticSink sink;
  EXPECT_FALSE(core::ValidateClusterChain(cc.prog.module, cc.chain, sink));
  EXPECT_TRUE(SinkHas(sink, "L301"));
}

TEST(PartitionCheck, OverlappingChainMembersAreL302) {
  CompiledChain cc = MakeChain();
  ASSERT_GE(cc.chain.chain_length, 2);
  // Give chain member 1 a block chain member 0 already covers.
  ASSERT_FALSE(cc.chain.clusters[0].blocks.empty());
  cc.chain.clusters[1].blocks.push_back(cc.chain.clusters[0].blocks.front());
  DiagnosticSink sink;
  EXPECT_FALSE(core::ValidateClusterChain(cc.prog.module, cc.chain, sink));
  EXPECT_TRUE(SinkHas(sink, "L302"));
}

TEST(PartitionCheck, StaleGenUseIsL303) {
  CompiledChain cc = MakeChain();
  const int hw = FirstHwCandidate(cc.chain);
  ASSERT_GE(hw, 0);
  const core::BusTrafficAnalyzer analyzer(cc.prog.module, cc.chain,
                                          power::TechLibrary::Cmos6(), 256 * 1024);
  // The analyzer cached gen/use for the original chain; empty the
  // cluster so an independent recomputation disagrees.
  cc.chain.clusters[static_cast<std::size_t>(hw)].blocks.clear();
  DiagnosticSink sink;
  EXPECT_FALSE(core::ValidateGenUse(cc.prog.module, cc.chain, analyzer, sink));
  EXPECT_TRUE(SinkHas(sink, "L303"));
}

TEST(PartitionCheck, AbsurdTransferEstimateIsL304) {
  CompiledChain cc = MakeChain();
  const int hw = FirstHwCandidate(cc.chain);
  ASSERT_GE(hw, 0);
  const core::Cluster& c = cc.chain.clusters[static_cast<std::size_t>(hw)];
  core::Transfers t;
  t.up_to_mem_words = 1'000'000;  // far beyond the module's static data
  DiagnosticSink sink;
  EXPECT_FALSE(core::ValidateTransfers(cc.prog.module, c, t, sink));
  EXPECT_TRUE(SinkHas(sink, "L304"));

  core::Transfers neg;
  neg.energy = Energy{-1.0};
  DiagnosticSink sink2;
  EXPECT_FALSE(core::ValidateTransfers(cc.prog.module, c, neg, sink2));
  EXPECT_TRUE(SinkHas(sink2, "L304"));
}

TEST(PartitionCheck, SelectingANonCandidateIsL305) {
  CompiledChain cc = MakeChain();
  int leaf = -1;
  for (const core::Cluster& c : cc.chain.clusters) {
    if (!c.hw_candidate) leaf = c.id;
  }
  ASSERT_GE(leaf, 0);
  DiagnosticSink sink;
  EXPECT_FALSE(core::ValidateHwSelection(cc.chain, {leaf}, sink));
  EXPECT_TRUE(SinkHas(sink, "L305"));
}

TEST(PartitionCheck, FlippedCandidateFlagIsL306) {
  CompiledChain cc = MakeChain();
  const int hw = FirstHwCandidate(cc.chain);
  ASSERT_GE(hw, 0);
  cc.chain.clusters[static_cast<std::size_t>(hw)].hw_candidate = false;
  DiagnosticSink sink;
  EXPECT_FALSE(core::ValidateClusterChain(cc.prog.module, cc.chain, sink));
  EXPECT_TRUE(SinkHas(sink, "L306"));
}

// ---------------------------------------------------------------------
// L4xx: schedule validation, including the hand-broken acceptance case.

struct ScheduledFixture {
  dsl::LoweredProgram prog;
  sched::BlockDfg dfg;
  sched::BlockSchedule sched;
  sched::ResourceSet rs;
};

// Builds the largest block DFG of kLoopProgram (the loop body: loads,
// a multiply, adds, stores) and list-schedules it under the first
// designer set that can implement it.
ScheduledFixture MakeSchedule() {
  ScheduledFixture f{dsl::Compile(kLoopProgram), {}, {}, {}};
  const ir::Function& fn = f.prog.module.function(*f.prog.module.FindFunction("main"));
  std::size_t best = 0;
  for (const ir::BasicBlock& b : fn.blocks) {
    sched::BlockDfg d = sched::BuildBlockDfg(b);
    if (d.size() > best) {
      best = d.size();
      f.dfg = std::move(d);
    }
  }
  EXPECT_GE(f.dfg.size(), 3u);
  const power::TechLibrary& lib = power::TechLibrary::Cmos6();
  for (const sched::ResourceSet& rs : sched::DefaultDesignerSets()) {
    try {
      f.sched = sched::ListSchedule(f.dfg, rs, lib);
      f.rs = rs;
      return f;
    } catch (const Error&) {
      continue;
    }
  }
  ADD_FAILURE() << "no designer set schedules the loop body";
  return f;
}

TEST(ScheduleCheck, ValidSchedulePasses) {
  ScheduledFixture f = MakeSchedule();
  DiagnosticSink sink;
  EXPECT_TRUE(sched::ValidateSchedule(f.dfg, f.sched, f.rs,
                                      power::TechLibrary::Cmos6(), sink));
  EXPECT_FALSE(sink.has_errors());
}

TEST(ScheduleCheck, HandBrokenScheduleIsRejected) {
  ScheduledFixture f = MakeSchedule();
  // Collapse every op onto step 0: precedence (and typically resource
  // occupancy) must be flagged — the acceptance case for L4xx.
  sched::BlockSchedule broken = f.sched;
  for (sched::ScheduledOp& op : broken.ops) op.step = 0;
  broken.num_steps = 1;
  DiagnosticSink sink;
  EXPECT_FALSE(sched::ValidateSchedule(f.dfg, broken, f.rs,
                                       power::TechLibrary::Cmos6(), sink));
  EXPECT_TRUE(SinkHas(sink, "L401"));
}

TEST(ScheduleCheck, MissingOpIsL400) {
  ScheduledFixture f = MakeSchedule();
  sched::BlockSchedule broken = f.sched;
  ASSERT_FALSE(broken.ops.empty());
  broken.ops.pop_back();
  DiagnosticSink sink;
  EXPECT_FALSE(sched::ValidateSchedule(f.dfg, broken, f.rs,
                                       power::TechLibrary::Cmos6(), sink));
  EXPECT_TRUE(SinkHas(sink, "L400"));
}

TEST(ScheduleCheck, WrongMakespanIsL403) {
  ScheduledFixture f = MakeSchedule();
  sched::BlockSchedule broken = f.sched;
  broken.num_steps += 3;
  DiagnosticSink sink;
  EXPECT_FALSE(sched::ValidateSchedule(f.dfg, broken, f.rs,
                                       power::TechLibrary::Cmos6(), sink));
  EXPECT_TRUE(SinkHas(sink, "L403"));
}

TEST(ScheduleCheck, ForgedResourceTypeIsL404) {
  ScheduledFixture f = MakeSchedule();
  sched::BlockSchedule broken = f.sched;
  // Claim an absurd latency for the first op; the library spec check
  // must catch the forgery.
  ASSERT_FALSE(broken.ops.empty());
  broken.ops.front().latency = 99;
  DiagnosticSink sink;
  EXPECT_FALSE(sched::ValidateSchedule(f.dfg, broken, f.rs,
                                       power::TechLibrary::Cmos6(), sink));
  EXPECT_TRUE(SinkHas(sink, "L404"));
}

// ---------------------------------------------------------------------
// L5xx: structural netlist lint on a real datapath, then on sabotage.

struct NetlistFixture {
  ScheduledFixture sf;
  std::vector<asic::ScheduledBlock> blocks;
  asic::UtilizationResult util;
  asic::Datapath dp;
};

NetlistFixture MakeNetlist() {
  NetlistFixture n{MakeSchedule(), {}, {}, {}};
  n.blocks.push_back(asic::ScheduledBlock{&n.sf.dfg, &n.sf.sched, 1});
  const power::TechLibrary& lib = power::TechLibrary::Cmos6();
  n.util = asic::ComputeUtilization(n.blocks, n.sf.rs, lib);
  n.dp = asic::BuildDatapath(n.blocks, n.util, lib);
  return n;
}

TEST(NetlistCheck, ValidDatapathPasses) {
  NetlistFixture n = MakeNetlist();
  DiagnosticSink sink;
  EXPECT_TRUE(asic::ValidateDatapath(n.blocks, n.util, n.dp, sink));
  EXPECT_FALSE(sink.has_errors());
}

TEST(NetlistCheck, DuplicateUnitIsL502) {
  NetlistFixture n = MakeNetlist();
  ASSERT_FALSE(n.dp.units.empty());
  n.dp.units.push_back(n.dp.units.front());
  DiagnosticSink sink;
  EXPECT_FALSE(asic::ValidateDatapath(n.blocks, n.util, n.dp, sink));
  EXPECT_TRUE(SinkHas(sink, "L502"));
}

TEST(NetlistCheck, MissingUnitIsL503) {
  NetlistFixture n = MakeNetlist();
  ASSERT_FALSE(n.dp.units.empty());
  n.dp.units.pop_back();
  DiagnosticSink sink;
  EXPECT_FALSE(asic::ValidateDatapath(n.blocks, n.util, n.dp, sink));
  EXPECT_TRUE(SinkHas(sink, "L503"));
}

TEST(NetlistCheck, WrongFsmStateCountIsL505) {
  NetlistFixture n = MakeNetlist();
  n.dp.fsm_states += 2;
  DiagnosticSink sink;
  EXPECT_FALSE(asic::ValidateDatapath(n.blocks, n.util, n.dp, sink));
  EXPECT_TRUE(SinkHas(sink, "L505"));
}

TEST(NetlistCheck, ValidVerilogPassesAndTamperedWidthIsL501) {
  NetlistFixture n = MakeNetlist();
  const power::TechLibrary& lib = power::TechLibrary::Cmos6();
  const asic::AsicCore core =
      asic::Synthesize("loop", n.sf.rs.name, n.util, lib, 8,
                       asic::SynthesisOptions{}, &n.dp);
  const std::string verilog = asic::EmitVerilog(core, n.dp);

  DiagnosticSink ok;
  EXPECT_TRUE(asic::ValidateVerilog(verilog, n.dp, 32, ok));

  std::string tampered = verilog;
  const std::size_t pos = tampered.find("[31:0]");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 6, "[30:0]");
  DiagnosticSink bad;
  EXPECT_FALSE(asic::ValidateVerilog(tampered, n.dp, 32, bad));
  EXPECT_TRUE(SinkHas(bad, "L501"));
}

}  // namespace
}  // namespace lopass
