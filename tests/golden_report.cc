// Golden-reference report: runs the full partitioning flow for one
// bundled application at the test scale and prints every Table-1
// quantity with fixed formatting. The output is compared byte-for-byte
// against tests/data/golden/<app>.txt (golden_check.cmake), so any
// change to the objective function, the schedulers, the energy model,
// or the cluster chain shows up as a diff in review instead of a
// silent drift. Regenerate intentionally with:
//
//   cmake --build build -t regen-golden
//
// Formatting notes: percents and utilization print with %.6f, energies
// in microjoules with %.6f, GEQ (gate-equivalent cells) with %.1f —
// wide enough that a real model change always moves a digit, fixed so
// the bytes are platform-stable (all inputs are deterministic).

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/app.h"
#include "core/partitioner.h"
#include "core/report.h"

namespace {

void PrintEnergy(const char* label, const lopass::core::EnergyBreakdown& e) {
  const auto uj = [](lopass::Energy v) { return v.joules * 1e6; };
  std::printf("%s.icache_uJ: %.6f\n", label, uj(e.icache));
  std::printf("%s.dcache_uJ: %.6f\n", label, uj(e.dcache));
  std::printf("%s.mem_uJ: %.6f\n", label, uj(e.mem));
  std::printf("%s.bus_uJ: %.6f\n", label, uj(e.bus));
  std::printf("%s.up_core_uJ: %.6f\n", label, uj(e.up_core));
  std::printf("%s.asic_core_uJ: %.6f\n", label, uj(e.asic_core));
  std::printf("%s.total_uJ: %.6f\n", label, uj(e.total()));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: golden_report APP\n");
    return 2;
  }
  try {
    const lopass::apps::Application app = lopass::apps::GetApplication(argv[1]);
    const lopass::core::PartitionResult result =
        lopass::apps::RunApplication(app, /*scale=*/1);
    const lopass::core::AppRow row = result.ToRow(app.name);

    std::printf("app: %s\n", row.app.c_str());
    std::printf("resource_set: %s\n", row.resource_set.c_str());
    std::printf("cluster: %s\n", row.cluster.c_str());
    std::printf("U_R: %.6f\n", row.asic_utilization);
    std::printf("GEQ: %.1f\n", row.asic_cells);
    PrintEnergy("I", row.initial);
    PrintEnergy("P", row.partitioned);
    std::printf("I.cycles: %lld\n",
                static_cast<long long>(row.initial_time.total()));
    std::printf("P.up_cycles: %lld\n",
                static_cast<long long>(row.partitioned_time.up_cycles));
    std::printf("P.asic_cycles: %lld\n",
                static_cast<long long>(row.partitioned_time.asic_cycles));
    std::printf("saving_percent: %.6f\n", row.saving_percent());
    std::printf("time_change_percent: %.6f\n", row.time_change_percent());
    return result.degraded() ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
