#include "asic/verilog.h"

#include <gtest/gtest.h>

#include "dsl/lower.h"
#include "sched/list_scheduler.h"

namespace lopass::asic {
namespace {

using power::ResourceType;
using power::TechLibrary;

struct Built {
  std::vector<sched::BlockDfg> dfgs;
  std::vector<sched::BlockSchedule> schedules;
  std::vector<ScheduledBlock> blocks;
  UtilizationResult util;
  Datapath dp;
  AsicCore core;
};

Built Build(const std::string& src) {
  sched::ResourceSet rs;
  rs.name = "lean";
  rs.set(ResourceType::kAlu, 1)
      .set(ResourceType::kAdder, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMultiplier, 1)
      .set(ResourceType::kDivider, 1)
      .set(ResourceType::kMemoryPort, 1);
  const dsl::LoweredProgram p = dsl::Compile(src);
  Built out;
  for (const ir::BasicBlock& b : p.module.function(0).blocks) {
    out.dfgs.push_back(sched::BuildBlockDfg(b));
  }
  for (const sched::BlockDfg& g : out.dfgs) {
    out.schedules.push_back(sched::ListSchedule(g, rs, TechLibrary::Cmos6()));
  }
  for (std::size_t i = 0; i < out.dfgs.size(); ++i) {
    out.blocks.push_back(ScheduledBlock{&out.dfgs[i], &out.schedules[i], 50});
  }
  out.util = ComputeUtilization(out.blocks, rs, TechLibrary::Cmos6());
  out.dp = BuildDatapath(out.blocks, out.util, TechLibrary::Cmos6());
  out.core = Synthesize("fir kernel", "lean", out.util, TechLibrary::Cmos6(), 8,
                        SynthesisOptions{}, &out.dp);
  return out;
}

TEST(Verilog, StructuralShellIsComplete) {
  Built b = Build(R"(
    array sig[64]; array co[8];
    func main(n) {
      var i; var acc;
      acc = 0;
      for (i = 0; i < n; i = i + 1) {
        acc = acc + sig[i & 63] * co[i & 7];
      }
      return acc >> 4;
    })");
  const std::string v = EmitVerilog(b.core, b.dp);
  // Module shell with the Fig. 2a bus handshake.
  EXPECT_NE(v.find("module core_fir_kernel"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("bus_req"), std::string::npos);
  EXPECT_NE(v.find("bus_gnt"), std::string::npos);
  // One instance per allocated unit.
  EXPECT_NE(v.find("sl_mul32x32 multiplier_0"), std::string::npos);
  EXPECT_NE(v.find("sl_memport memport_0"), std::string::npos);
  // FSM sized for the schedule.
  EXPECT_NE(v.find("Controller FSM"), std::string::npos);
  // Steering commentary for shared units.
  EXPECT_NE(v.find("input steering"), std::string::npos);
}

TEST(Verilog, SanitizesModuleNames) {
  Built b = Build("func main(a) { return a * 2 + 1; }");
  b.core.name = "for@21 weird-name";
  const std::string v = EmitVerilog(b.core, b.dp);
  EXPECT_NE(v.find("module core_for_21_weird_name"), std::string::npos);
  VerilogOptions opt;
  opt.module_name = "my_core";
  EXPECT_NE(EmitVerilog(b.core, b.dp, opt).find("module my_core"), std::string::npos);
}

TEST(Verilog, ExactlyOneModuleShell) {
  Built b = Build("func main(a) { return (a * a) / 3 + (a << 2); }");
  const std::string v = EmitVerilog(b.core, b.dp);
  auto count = [&](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = v.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count("\nmodule "), 1u);
  EXPECT_EQ(count("endmodule"), 1u);
  // The divider and shifter units both appear as instances.
  EXPECT_EQ(count("sl_divseq32 divider_0"), 1u);
  EXPECT_EQ(count("sl_bshift32 shifter_0"), 1u);
}

}  // namespace
}  // namespace lopass::asic
