// Deterministic fault-injection harness: arm each pipeline site in
// turn and prove the flow either isolates the failure (valid fallback
// partition + error diagnostic) or fails fast with InjectedFault —
// never crashes, never hangs, never silently returns a bogus result.

#include <gtest/gtest.h>

#include "common/fault.h"
#include "core/partitioner.h"
#include "dsl/lower.h"

namespace lopass::core {
namespace {

// A small FIR-style program (hot convolution + cold peak loop) whose
// hot cluster is profitably partitionable, so every pipeline stage
// (including synthesis and the partitioned re-simulation) runs.
constexpr const char* kApp = R"(
var n;
array sig[128];
array coef[16];
array out[128];
var peak;
func main() {
  var i; var j;
  for (i = 0; i < n - 16; i = i + 1) {
    var acc;
    acc = 0;
    for (j = 0; j < 16; j = j + 1) {
      acc = acc + sig[i + j] * coef[j];
    }
    out[i] = acc >> 8;
  }
  peak = 0;
  for (i = 0; i < n - 16; i = i + 1) {
    peak = max(peak, abs(out[i]));
  }
  return peak;
}
)";

Workload MakeWorkload() {
  Workload w;
  w.setup = [](DataTarget& t) {
    t.SetScalar("n", 96);
    std::vector<std::int64_t> sig, coef;
    for (int i = 0; i < 128; ++i) sig.push_back((i * 37) % 101 - 50);
    for (int i = 0; i < 16; ++i) coef.push_back(2 * i);
    t.FillArray("sig", sig);
    t.FillArray("coef", coef);
  };
  return w;
}

// Every result now leads with the kNote run-context header (PRNG seed
// + live fault spec); error-level assertions must look past it.
const Diagnostic* FirstError(const PartitionResult& r) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_ = dsl::Compile(kApp);
    workload_ = MakeWorkload();
  }
  dsl::LoweredProgram program_;
  Workload workload_;
};

TEST_F(FaultInjectionTest, BaselinePartitionsAndIsClean) {
  ASSERT_FALSE(fault::Enabled());
  Partitioner part(program_.module, program_.regions);
  const PartitionResult r = part.Run(workload_);
  EXPECT_TRUE(r.partitioned());
  EXPECT_FALSE(r.degraded());
  // A clean run carries exactly the reproducibility header and nothing
  // else: the note naming the PRNG seed and the (empty) fault spec.
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].severity, Severity::kNote);
  EXPECT_EQ(r.diagnostics[0].code, "run.context");
  EXPECT_NE(r.diagnostics[0].message.find("prng seed 0x9e3779b97f4a7c15"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("fault spec ''"), std::string::npos);
  EXPECT_EQ(r.partitioned_run.return_value, r.initial_run.return_value);
}

TEST_F(FaultInjectionTest, FatalSitesFailFastWithInjectedFault) {
  for (const char* site : {"profile", "sim"}) {
    fault::ScopedSpec spec(site);
    Partitioner part(program_.module, program_.regions);
    EXPECT_THROW((void)part.Run(workload_), InjectedFault) << site;
  }
}

TEST_F(FaultInjectionTest, ClusterDecompositionFaultFallsBackToAllSoftware) {
  fault::ScopedSpec spec("alloc");
  Partitioner part(program_.module, program_.regions);
  const PartitionResult r = part.Run(workload_);
  EXPECT_FALSE(r.partitioned());
  EXPECT_TRUE(r.degraded());
  const Diagnostic* err = FirstError(r);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, "partition.cluster");
  // The header must name the spec that produced this failure.
  EXPECT_NE(r.diagnostics[0].message.find("fault spec 'alloc'"), std::string::npos);
  EXPECT_EQ(r.partitioned_run.return_value, r.initial_run.return_value);
}

TEST_F(FaultInjectionTest, IsolatedSitesProduceValidFallbacks) {
  struct Case {
    const char* site;
    const char* code;
  };
  for (const Case& c : {Case{"schedule", "partition.evaluate"},
                        Case{"estimate", "partition.evaluate"},
                        Case{"synth", "partition.synthesize"}}) {
    fault::ScopedSpec spec(c.site);
    Partitioner part(program_.module, program_.regions);
    PartitionResult r;
    ASSERT_NO_THROW(r = part.Run(workload_)) << c.site;
    // The failed candidate/core is skipped; the result is still a
    // valid partition — worst case all-software.
    EXPECT_FALSE(r.partitioned()) << c.site;
    EXPECT_TRUE(r.degraded()) << c.site;
    ASSERT_FALSE(r.diagnostics.empty()) << c.site;
    bool found = false;
    for (const Diagnostic& d : r.diagnostics) {
      if (d.severity != Severity::kError) continue;  // skip the context note
      if (d.code == c.code) found = true;
      EXPECT_NE(d.message.find("injected fault at site '" + std::string(c.site) + "'"),
                std::string::npos)
          << c.site;
      EXPECT_TRUE(fault::IsTransientMessage(d.message)) << c.site;
    }
    EXPECT_TRUE(found) << c.site << " missing code " << c.code;
    EXPECT_EQ(r.partitioned_run.return_value, r.initial_run.return_value) << c.site;
    EXPECT_EQ(r.asic_cycles, 0u) << c.site;
  }
}

TEST_F(FaultInjectionTest, ResimFaultRollsBackToInitialRun) {
  // sim:2 — the initial simulation succeeds, the partitioned
  // re-simulation is the second hit and fails; the partitioner must
  // roll the decision back instead of reporting half a system.
  fault::ScopedSpec spec("sim:2");
  Partitioner part(program_.module, program_.regions);
  PartitionResult r;
  ASSERT_NO_THROW(r = part.Run(workload_));
  EXPECT_FALSE(r.partitioned());
  EXPECT_TRUE(r.degraded());
  const Diagnostic* err = FirstError(r);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, "partition.resim");
  EXPECT_EQ(r.asic_cycles, 0u);
  EXPECT_EQ(r.partitioned_run.return_value, r.initial_run.return_value);
}

TEST_F(FaultInjectionTest, ParseSiteFailsCompileToResult) {
  fault::ScopedSpec spec("parse");
  Result<dsl::LoweredProgram> r = dsl::CompileToResult(kApp);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.diagnostics().empty());
  EXPECT_NE(r.diagnostics()[0].message.find("injected fault at site 'parse'"),
            std::string::npos);
}

TEST_F(FaultInjectionTest, InjectionIsDeterministic) {
  auto run_once = [&]() {
    fault::ScopedSpec spec("schedule");
    Partitioner part(program_.module, program_.regions);
    return part.Run(workload_);
  };
  const PartitionResult a = run_once();
  const PartitionResult b = run_once();
  EXPECT_EQ(a.diagnostics.size(), b.diagnostics.size());
  ASSERT_FALSE(a.diagnostics.empty());
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message);
  }
  EXPECT_EQ(a.initial_run.return_value, b.initial_run.return_value);
}

TEST_F(FaultInjectionTest, ScopedSpecRestoresAndCounts) {
  EXPECT_FALSE(fault::Enabled());
  {
    fault::ScopedSpec spec("schedule:3");
    EXPECT_TRUE(fault::Enabled());
    EXPECT_EQ(fault::HitCount("schedule"), 0u);
    fault::MaybeInject("schedule");  // hit 1: armed for hit 3 only
    fault::MaybeInject("schedule");  // hit 2
    EXPECT_THROW(fault::MaybeInject("schedule"), InjectedFault);
    fault::MaybeInject("schedule");  // hit 4: disarmed after firing
    EXPECT_EQ(fault::HitCount("schedule"), 4u);
  }
  EXPECT_FALSE(fault::Enabled());
  fault::MaybeInject("schedule");  // disarmed: must be a no-op
}

}  // namespace
}  // namespace lopass::core
