#include "core/report.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace lopass::core {
namespace {

AppRow MakeRow() {
  AppRow r;
  r.app = "demo";
  r.initial.icache = Energy::from_microjoules(100);
  r.initial.dcache = Energy::from_microjoules(50);
  r.initial.mem = Energy::from_microjoules(30);
  r.initial.bus = Energy::from_microjoules(20);
  r.initial.up_core = Energy::from_microjoules(800);
  r.partitioned.icache = Energy::from_microjoules(10);
  r.partitioned.dcache = Energy::from_microjoules(5);
  r.partitioned.mem = Energy::from_microjoules(25);
  r.partitioned.bus = Energy::from_microjoules(10);
  r.partitioned.up_core = Energy::from_microjoules(200);
  r.partitioned.asic_core = Energy::from_microjoules(50);
  r.initial_time.up_cycles = 1'000'000;
  r.partitioned_time.up_cycles = 300'000;
  r.partitioned_time.asic_cycles = 200'000;
  r.asic_cells = 12345;
  r.asic_utilization = 0.42;
  r.resource_set = "rs-small";
  r.cluster = "for@7";
  return r;
}

TEST(Report, TotalsAndPercentages) {
  const AppRow r = MakeRow();
  EXPECT_NEAR(r.initial.total().microjoules(), 1000.0, 1e-9);
  EXPECT_NEAR(r.partitioned.total().microjoules(), 300.0, 1e-9);
  EXPECT_NEAR(r.saving_percent(), -70.0, 1e-9);
  EXPECT_EQ(r.initial_time.total(), 1'000'000u);
  EXPECT_EQ(r.partitioned_time.total(), 500'000u);
  EXPECT_NEAR(r.time_change_percent(), -50.0, 1e-9);
}

TEST(Report, ZeroBaselineIsSafe) {
  AppRow r;
  EXPECT_DOUBLE_EQ(r.saving_percent(), 0.0);
  EXPECT_DOUBLE_EQ(r.time_change_percent(), 0.0);
}

TEST(Report, Table1LayoutAndBusFolding) {
  const AppRow r = MakeRow();
  const std::string t = RenderTable1({r}).ToString();
  EXPECT_NE(t.find("demo"), std::string::npos);
  EXPECT_NE(t.find("i-cache"), std::string::npos);
  EXPECT_NE(t.find("ASIC core"), std::string::npos);
  // The paper's "mem" column folds the bus: 30+20 uJ initial.
  EXPECT_NE(t.find("50.000uJ"), std::string::npos);
  // Cycles grouped like the paper: 1,000,000.
  EXPECT_NE(t.find("1,000,000"), std::string::npos);
  EXPECT_NE(t.find("-70.00"), std::string::npos);
  // Initial rows have no ASIC entry.
  EXPECT_NE(t.find("n/a"), std::string::npos);
}

TEST(Report, Fig6SeriesAndBars) {
  const AppRow r = MakeRow();
  const std::string f = RenderFig6({r});
  EXPECT_NE(f.find("Energy Sav%"), std::string::npos);
  EXPECT_NE(f.find("-70.00"), std::string::npos);
  EXPECT_NE(f.find("rs-small"), std::string::npos);
  // Bars use '#' for energy and '%' for a time reduction.
  EXPECT_NE(f.find('#'), std::string::npos);
  EXPECT_NE(f.find('%'), std::string::npos);
}

TEST(Report, Fig6MarksSlowdownsDifferently) {
  AppRow slow = MakeRow();
  slow.partitioned_time.asic_cycles = 2'000'000;  // net slowdown
  const std::string f = RenderFig6({slow});
  EXPECT_NE(f.find('+'), std::string::npos);
}

TEST(Report, CsvSchemaIsStable) {
  const AppRow r = MakeRow();
  const std::string csv = ToCsv({r});
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(header,
            "app,icache_i,dcache_i,mem_i,bus_i,up_i,total_i,"
            "icache_p,dcache_p,mem_p,bus_p,up_p,asic_p,total_p,"
            "cycles_i,up_cycles_p,asic_cycles_p,saving_pct,time_change_pct,"
            "asic_cells,asic_utilization,resource_set,cluster");
  EXPECT_NE(csv.find("demo,"), std::string::npos);
  EXPECT_NE(csv.find("\"for@7\""), std::string::npos);
  // Exactly 23 columns in the data row.
  const std::string data = csv.substr(csv.find('\n') + 1);
  EXPECT_EQ(std::count(data.begin(), data.end(), ','), 22);
}

}  // namespace
}  // namespace lopass::core
