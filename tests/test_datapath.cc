#include "asic/datapath.h"

#include <gtest/gtest.h>

#include "asic/synthesis.h"
#include "dsl/lower.h"
#include "sched/list_scheduler.h"

namespace lopass::asic {
namespace {

using power::ResourceType;
using power::TechLibrary;

struct Built {
  std::vector<sched::BlockDfg> dfgs;
  std::vector<sched::BlockSchedule> schedules;
  std::vector<ScheduledBlock> blocks;
  UtilizationResult util;
};

Built Build(const std::string& src, const sched::ResourceSet& rs,
            std::uint64_t ex = 10) {
  const dsl::LoweredProgram p = dsl::Compile(src);
  Built out;
  for (const ir::BasicBlock& b : p.module.function(0).blocks) {
    out.dfgs.push_back(sched::BuildBlockDfg(b));
  }
  for (const sched::BlockDfg& g : out.dfgs) {
    out.schedules.push_back(sched::ListSchedule(g, rs, TechLibrary::Cmos6()));
  }
  for (std::size_t i = 0; i < out.dfgs.size(); ++i) {
    out.blocks.push_back(ScheduledBlock{&out.dfgs[i], &out.schedules[i], ex});
  }
  out.util = ComputeUtilization(out.blocks, rs, TechLibrary::Cmos6());
  return out;
}

sched::ResourceSet LeanSet() {
  sched::ResourceSet rs;
  rs.name = "lean";
  rs.set(ResourceType::kAlu, 1)
      .set(ResourceType::kAdder, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMultiplier, 1)
      .set(ResourceType::kDivider, 1)
      .set(ResourceType::kMemoryPort, 1);
  return rs;
}

TEST(Datapath, UnitsMatchUtilization) {
  Built b = Build("func main(a, c) { return a * c + (a << 1); }", LeanSet());
  const Datapath dp = BuildDatapath(b.blocks, b.util, TechLibrary::Cmos6());
  EXPECT_EQ(dp.units.size(), b.util.instance_util.size());
  std::uint64_t ops = 0;
  for (const DatapathUnit& u : dp.units) ops += u.ops;
  std::uint64_t expect = 0;
  for (const InstanceUtil& u : b.util.instance_util) expect += u.ops;
  EXPECT_EQ(ops, expect);
}

TEST(Datapath, ProducerEdgesFollowDataflow) {
  // mul feeds add: the adder-class consumer lists the multiplier as a
  // producer; the mul itself reads the register file.
  Built b = Build("func main(a, c) { return a * c + 1; }", LeanSet());
  const Datapath dp = BuildDatapath(b.blocks, b.util, TechLibrary::Cmos6());
  const DatapathUnit* mul = nullptr;
  const DatapathUnit* add = nullptr;
  for (const DatapathUnit& u : dp.units) {
    if (u.type == ResourceType::kMultiplier) mul = &u;
    if (u.type == ResourceType::kAdder) add = &u;
  }
  ASSERT_NE(mul, nullptr);
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(mul->producers, std::vector<int>{-1});  // register file only
  bool add_sees_mul = false;
  for (int p : add->producers) {
    if (p >= 0 && p / 256 == static_cast<int>(ResourceType::kMultiplier)) {
      add_sees_mul = true;
    }
  }
  EXPECT_TRUE(add_sees_mul);
}

TEST(Datapath, FsmStatesCoverAllBlocks) {
  Built b = Build(R"(
    func main(a) {
      var s; var i;
      s = 0;
      for (i = 0; i < a; i = i + 1) { s = s + i * 3; }
      return s;
    })", LeanSet());
  const Datapath dp = BuildDatapath(b.blocks, b.util, TechLibrary::Cmos6());
  std::uint32_t steps = 0;
  for (const ScheduledBlock& sb : b.blocks) steps += std::max(sb.schedule->num_steps, 1u);
  EXPECT_EQ(dp.fsm_states, steps + 1);
}

TEST(Datapath, SharedUnitAccumulatesMuxLegs) {
  // One adder serves adds fed by a mul, a shift and the register file:
  // at least three distinct producers -> mux legs > 1.
  Built b = Build("func main(a, c) { return (a * c + 1) + ((a << 2) + 3) + (a + c); }",
                  LeanSet());
  const Datapath dp = BuildDatapath(b.blocks, b.util, TechLibrary::Cmos6());
  int max_legs = 0;
  for (const DatapathUnit& u : dp.units) max_legs = std::max(max_legs, u.mux_legs());
  EXPECT_GE(max_legs, 3);
  EXPECT_GT(dp.mux_geq, 0.0);
}

TEST(Datapath, RenderedNetlistMentionsUnits) {
  Built b = Build("func main(a, c) { return a * c + (a / 3); }", LeanSet());
  const Datapath dp = BuildDatapath(b.blocks, b.util, TechLibrary::Cmos6());
  const std::string text = dp.ToString(TechLibrary::Cmos6());
  EXPECT_NE(text.find("multiplier#0"), std::string::npos);
  EXPECT_NE(text.find("divider#0"), std::string::npos);
  EXPECT_NE(text.find("FSM"), std::string::npos);
  EXPECT_NE(text.find("regfile"), std::string::npos);
}

TEST(Datapath, InterconnectCostFoldsIntoSynthesis) {
  Built b = Build("func main(a, c) { return (a * c + 1) + ((a << 2) + 3) + (a + c); }",
                  LeanSet(), 100);
  const Datapath dp = BuildDatapath(b.blocks, b.util, TechLibrary::Cmos6());
  const AsicCore plain = Synthesize("p", "lean", b.util, TechLibrary::Cmos6(), 8);
  const AsicCore muxed = Synthesize("m", "lean", b.util, TechLibrary::Cmos6(), 8,
                                     SynthesisOptions{}, &dp);
  EXPECT_GT(muxed.geq, plain.geq);
  EXPECT_GT(muxed.refined_energy, plain.refined_energy);
}

}  // namespace
}  // namespace lopass::asic
