#include "opt/passes.h"

#include <gtest/gtest.h>

#include "common/prng.h"
#include "dsl/lower.h"
#include "interp/interpreter.h"
#include "ir/print.h"
#include "isa/codegen.h"
#include "iss/simulator.h"

namespace lopass::opt {
namespace {

dsl::LoweredProgram Prog(const std::string& src) { return dsl::Compile(src); }

std::size_t OpCount(const ir::Module& m) { return m.num_ops(); }

std::int64_t Interp(const ir::Module& m, std::vector<std::int64_t> args = {}) {
  interp::Interpreter it(m);
  return it.Run("main", args).return_value;
}

TEST(ConstantFold, FoldsPureArithmetic) {
  dsl::LoweredProgram p = Prog("func main() { return 2 + 3 * 4 - (10 / 2); }");
  const PassStats s = ConstantFold(p.module);
  EXPECT_GT(s.folded_ops, 0u);
  EXPECT_EQ(Interp(p.module), 9);
}

TEST(ConstantFold, PropagatesThroughChains) {
  dsl::LoweredProgram p = Prog(R"(
    func main() {
      var a; var b;
      a = 6;
      b = a;      // not folded (variables live in memory), but the
      return 4 << 3;  // pure chain folds
    })");
  ConstantFold(p.module);
  EXPECT_EQ(Interp(p.module), 32);
}

TEST(ConstantFold, SimplifiesConstantBranches) {
  dsl::LoweredProgram p = Prog(R"(
    func main() {
      var r;
      if (1 < 2) { r = 10; } else { r = 20; }
      return r;
    })");
  const PassStats s = RunStandardPasses(p.module);
  EXPECT_GT(s.branches_simplified, 0u);
  EXPECT_EQ(Interp(p.module), 10);
}

TEST(ConstantFold, KeepsDivisionByZeroTrap) {
  dsl::LoweredProgram p = Prog("func main() { return 1 / 0; }");
  ConstantFold(p.module);
  // Still traps at runtime; not folded away.
  interp::Interpreter it(p.module);
  EXPECT_THROW(it.Run("main"), Error);
}

TEST(LocalCse, ReusesRepeatedExpressions) {
  dsl::LoweredProgram p = Prog(R"(
    var x;
    func main(a, b) {
      return (a * b + 1) + (a * b + 1);
    })");
  const std::size_t before = OpCount(p.module);
  const PassStats s = RunStandardPasses(p.module);
  EXPECT_GT(s.cse_reused, 0u);
  // CSE turns the duplicate into a copy; copy propagation + DCE then
  // remove it, shrinking the op count.
  EXPECT_LT(OpCount(p.module), before);
  EXPECT_EQ(Interp(p.module, {3, 4}), 26);
}

TEST(LocalCse, WriteVarInvalidatesReadVar) {
  dsl::LoweredProgram p = Prog(R"(
    var x;
    func main(a) {
      var t;
      x = a;
      t = x + 1;
      x = a * 2;
      return t + (x + 1);   // second x+1 must NOT reuse the first
    })");
  RunStandardPasses(p.module);
  EXPECT_EQ(Interp(p.module, {5}), 6 + 11);
}

TEST(LocalCse, StoreInvalidatesLoad) {
  dsl::LoweredProgram p = Prog(R"(
    array m[4];
    func main(a) {
      var t;
      m[0] = a;
      t = m[0];
      m[0] = a + 1;
      return t + m[0];
    })");
  RunStandardPasses(p.module);
  EXPECT_EQ(Interp(p.module, {7}), 7 + 8);
}

TEST(LocalCse, CallInvalidatesMemoryReads) {
  dsl::LoweredProgram p = Prog(R"(
    var g;
    func bump() { g = g + 1; return 0; }
    func main() {
      var a; var b;
      g = 5;
      a = g;
      bump();
      b = g;
      return a * 100 + b;
    })");
  RunStandardPasses(p.module);
  EXPECT_EQ(Interp(p.module), 506);
}

TEST(DeadCodeElim, RemovesUnusedPureOps) {
  dsl::LoweredProgram p = Prog(R"(
    func main(a) {
      var unused;
      unused = a * 3;   // the writevar keeps the mul alive
      return a + (7 - 7) * a;
    })");
  const PassStats s = RunStandardPasses(p.module);
  EXPECT_GT(s.total(), 0u);
  EXPECT_EQ(Interp(p.module, {9}), 9);
}

TEST(DeadCodeElim, KeepsSideEffects) {
  dsl::LoweredProgram p = Prog(R"(
    var g;
    array m[4];
    func main(a) {
      g = a;       // kept
      m[0] = a;    // kept
      return 0;
    })");
  DeadCodeElim(p.module);
  interp::Interpreter it(p.module);
  const std::vector<std::int64_t> args{42};
  it.Run("main", args);
  EXPECT_EQ(it.GetScalar("g"), 42);
}

TEST(Passes, ReduceDynamicWork) {
  // The FIR kernel recomputes `i + j` addressing; CSE + folding shrink
  // both the static op count and the dynamic instruction count.
  const char* src = R"(
    var n;
    array sig[256]; array out[256];
    func main() {
      var i;
      for (i = 0; i < n; i = i + 1) {
        out[i] = (sig[i] * 3 + sig[i] * 3) + (2 * 8);
      }
      return out[0];
    })";
  dsl::LoweredProgram a = Prog(src);
  dsl::LoweredProgram b = Prog(src);
  RunStandardPasses(b.module);
  EXPECT_LT(OpCount(b.module), OpCount(a.module));

  auto run = [](const ir::Module& m) {
    interp::Interpreter it(m);
    it.SetScalar("n", 128);
    std::vector<std::int64_t> sig(256, 5);
    it.FillArray("sig", sig);
    const auto r = it.Run("main");
    return std::pair(r.return_value, r.steps);
  };
  const auto [va, sa] = run(a.module);
  const auto [vb, sb] = run(b.module);
  EXPECT_EQ(va, vb);
  EXPECT_LT(sb, sa);
}

// Randomized semantic-preservation property: optimized and unoptimized
// programs agree on both engines.
class OptEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptEquivalence, PassesPreserveSemantics) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  // Random but structured program (same generator family as the
  // codegen equivalence test, inlined here with more constants so the
  // folder has work to do).
  std::ostringstream os;
  os << "var g0 = " << rng.next_in(-9, 9) << ";\narray m[16];\n";
  os << "func main(a, b) {\n  var t; var i;\n";
  os << "  t = (a * " << rng.next_in(1, 9) << " + " << rng.next_in(0, 99) << ") ^ ("
     << rng.next_in(0, 7) << " << 2);\n";
  os << "  for (i = 0; i < " << rng.next_in(2, 9) << "; i = i + 1) {\n";
  os << "    m[(t + i) & 15] = t + i * (3 - 3) + (2 * " << rng.next_in(0, 5) << ");\n";
  os << "    if ((i & 1) == 1) { g0 = g0 + m[i & 15] + (6 / 3); }\n";
  os << "    t = t + m[(b + i) & 15];\n";
  os << "  }\n  return t + g0;\n}\n";
  const std::string src = os.str();
  SCOPED_TRACE(src);

  dsl::LoweredProgram plain = Prog(src);
  dsl::LoweredProgram optimized = Prog(src);
  RunStandardPasses(optimized.module);

  const std::vector<std::int64_t> args{rng.next_in(-50, 50), rng.next_in(-50, 50)};
  EXPECT_EQ(Interp(plain.module, args), Interp(optimized.module, args));

  // Also through the ISS on the optimized module.
  const isa::SlProgram code = isa::Generate(optimized.module);
  iss::Simulator sim(optimized.module, code, iss::SystemConfig{});
  EXPECT_EQ(sim.Run("main", args).return_value, Interp(plain.module, args));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptEquivalence, ::testing::Range(0, 25));

TEST(Passes, StatsToString) {
  PassStats s;
  s.folded_ops = 3;
  s.cse_reused = 2;
  EXPECT_NE(s.ToString().find("folded=3"), std::string::npos);
  EXPECT_NE(s.ToString().find("cse=2"), std::string::npos);
}

}  // namespace
}  // namespace lopass::opt
