// Supervised exploration runner: journal integrity under corruption
// (truncation, bit flips, duplicates), cooperative cancellation, and
// the retry / circuit-breaker / chaos supervision loop — including the
// contract the crash tests lean on: a resumed or chaos run renders a
// report byte-identical to a clean one.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/prng.h"
#include "runner/explore.h"
#include "runner/journal.h"

namespace lopass::runner {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "lopass_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// --- journal ----------------------------------------------------------

TEST(Crc32Test, KnownAnswer) {
  // The CRC-32 (IEEE) check value from the standard test vector.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(JournalTest, RoundTripsRecords) {
  const std::string path = TempPath("journal_roundtrip.jsonl");
  {
    JournalWriter writer(path, /*truncate=*/true);
    writer.Append("{\"app\":\"3d\",\"saving\":-35.21}");
    writer.Append("{\"app\":\"MPG\",\"detail\":\"quote \\\" inside\"}");
    EXPECT_EQ(writer.lines_written(), 2u);
  }
  const JournalLoad load = LoadJournal(path);
  EXPECT_TRUE(load.warnings.empty());
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records[0], "{\"app\":\"3d\",\"saving\":-35.21}");
  std::remove(path.c_str());
}

TEST(JournalTest, MissingFileIsFreshStart) {
  const JournalLoad load = LoadJournal(TempPath("journal_does_not_exist.jsonl"));
  EXPECT_TRUE(load.records.empty());
  EXPECT_TRUE(load.warnings.empty());
}

TEST(JournalTest, TruncatedFinalLineIsSkippedWithWarning) {
  const std::string path = TempPath("journal_truncated.jsonl");
  const std::string full = WrapRecord("{\"a\":1}") + "\n" + WrapRecord("{\"a\":2}") + "\n";
  // Chop the second line mid-record, as a SIGKILL mid-append would.
  WriteFile(path, full.substr(0, full.size() - 6));
  const JournalLoad load = LoadJournal(path);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0], "{\"a\":1}");
  ASSERT_EQ(load.warnings.size(), 1u);
  EXPECT_NE(load.warnings[0].find("truncated final line"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JournalTest, BitFlippedRecordFailsItsChecksum) {
  const std::string path = TempPath("journal_bitflip.jsonl");
  std::string line = WrapRecord("{\"a\":1,\"b\":2}");
  line[line.size() - 5] ^= 0x01;  // flip a bit inside the record payload
  WriteFile(path, WrapRecord("{\"a\":0}") + "\n" + line + "\n");
  const JournalLoad load = LoadJournal(path);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0], "{\"a\":0}");
  ASSERT_EQ(load.warnings.size(), 1u);
  EXPECT_NE(load.warnings[0].find("checksum mismatch"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JournalTest, MalformedWrapperIsSkippedWithWarning) {
  const std::string path = TempPath("journal_malformed.jsonl");
  WriteFile(path, "not json at all\n" + WrapRecord("{\"ok\":1}") + "\n");
  const JournalLoad load = LoadJournal(path);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.warnings.size(), 1u);
  std::remove(path.c_str());
}

TEST(JournalTest, FieldExtraction) {
  const std::string rec =
      "{\"app\":\"ckey\",\"seed\":\"0xdead\",\"saving_pct\":-12.5,\"errors\":3,"
      "\"detail\":\"a \\\"q\\\" b\"}";
  EXPECT_EQ(JsonStringField(rec, "app").value(), "ckey");
  EXPECT_EQ(JsonStringField(rec, "detail").value(), "a \"q\" b");
  EXPECT_DOUBLE_EQ(JsonNumberField(rec, "saving_pct").value(), -12.5);
  EXPECT_EQ(JsonIntField(rec, "errors").value(), 3);
  EXPECT_FALSE(JsonStringField(rec, "missing").has_value());
  EXPECT_FALSE(JsonIntField(rec, "app").has_value());
}

// --- journal property tests (seeded fuzz) -----------------------------

// Random printable record payloads: flat JSON-ish strings with no
// newline (the one shape constraint Append demands).
std::string RandomPayload(Prng& prng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      " {}[]:,.\"\\_-+";
  const std::size_t length = 1 + prng.next_below(60);
  std::string payload = "{\"p\":\"";
  for (std::size_t i = 0; i < length; ++i) {
    char c = kAlphabet[prng.next_below(sizeof(kAlphabet) - 1)];
    if (c == '"' || c == '\\') c = 'x';  // keep the wrapper parseable
    payload.push_back(c);
  }
  payload += "\"}";
  return payload;
}

TEST(JournalPropertyTest, RandomBatchesRoundTripExactly) {
  const std::string path = TempPath("journal_prop_roundtrip.jsonl");
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Prng prng(seed);
    const std::size_t count = 1 + prng.next_below(40);
    std::vector<std::string> written;
    written.reserve(count);
    {
      JournalWriter writer(path, /*truncate=*/true);
      for (std::size_t i = 0; i < count; ++i) {
        written.push_back(RandomPayload(prng));
        writer.Append(written.back());
      }
      EXPECT_EQ(writer.lines_written(), count);
    }
    const JournalLoad load = LoadJournal(path);
    EXPECT_TRUE(load.warnings.empty()) << "seed " << seed;
    ASSERT_EQ(load.records.size(), count) << "seed " << seed;
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(load.records[i], written[i]) << "seed " << seed << " record " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(JournalPropertyTest, RandomTruncationRecoversExactlyTheIntactPrefix) {
  // For any cut point, the reader must return precisely the records
  // whose full line (terminating newline included) survived, warn once
  // iff the cut tore a line, and never throw.
  const std::string path = TempPath("journal_prop_truncate.jsonl");
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Prng prng(seed ^ 0xdecafbadull);
    const std::size_t count = 1 + prng.next_below(12);
    std::vector<std::string> written;
    std::vector<std::size_t> line_end;  // offset one past each '\n'
    std::string content;
    for (std::size_t i = 0; i < count; ++i) {
      written.push_back(RandomPayload(prng));
      content += WrapRecord(written.back()) + "\n";
      line_end.push_back(content.size());
    }
    const std::size_t cut = prng.next_below(content.size() + 1);
    WriteFile(path, content.substr(0, cut));

    std::size_t intact = 0;
    while (intact < count && line_end[intact] <= cut) ++intact;
    const bool torn =
        cut != 0 && cut != (intact == 0 ? std::size_t{0} : line_end[intact - 1]);

    const JournalLoad load = LoadJournal(path);
    ASSERT_EQ(load.records.size(), intact) << "seed " << seed << " cut " << cut;
    for (std::size_t i = 0; i < intact; ++i) {
      EXPECT_EQ(load.records[i], written[i]) << "seed " << seed;
    }
    EXPECT_EQ(load.warnings.size(), torn ? 1u : 0u)
        << "seed " << seed << " cut " << cut;
  }
  std::remove(path.c_str());
}

TEST(JournalPropertyTest, SingleBitFlipsNeverCorruptOtherLines) {
  // Flip one bit in a random subset of lines (never creating or
  // destroying a newline): every untouched record must load intact and
  // in order, every flipped line must produce exactly one warning.
  const std::string path = TempPath("journal_prop_bitflip.jsonl");
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Prng prng(seed ^ 0xb17f11b5ull);
    const std::size_t count = 2 + prng.next_below(10);
    std::vector<std::string> written;
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < count; ++i) {
      written.push_back(RandomPayload(prng));
      lines.push_back(WrapRecord(written.back()));
    }

    std::vector<bool> flipped(count, false);
    std::string content;
    for (std::size_t i = 0; i < count; ++i) {
      std::string line = lines[i];
      if (prng.next_below(2) == 1) {
        // Re-draw until the flip neither hits nor produces 0x0a.
        for (;;) {
          const std::size_t at = prng.next_below(line.size());
          const char mutated =
              static_cast<char>(line[at] ^ (1 << prng.next_below(8)));
          if (mutated == '\n' || line[at] == '\n') continue;
          line[at] = mutated;
          break;
        }
        flipped[i] = true;
      }
      content += line + "\n";
    }
    WriteFile(path, content);

    const JournalLoad load = LoadJournal(path);
    std::size_t expected_intact = 0, expected_warnings = 0;
    for (std::size_t i = 0; i < count; ++i) {
      (flipped[i] ? expected_warnings : expected_intact)++;
    }
    EXPECT_EQ(load.warnings.size(), expected_warnings) << "seed " << seed;
    ASSERT_EQ(load.records.size(), expected_intact) << "seed " << seed;
    std::size_t at = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (flipped[i]) continue;
      EXPECT_EQ(load.records[at++], written[i]) << "seed " << seed << " line " << i;
    }
  }
  std::remove(path.c_str());
}

// --- cancellation -----------------------------------------------------

TEST(CancelTokenTest, DefaultNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.Check("test"));
  EXPECT_NO_THROW(CheckCancel(nullptr, "test"));
}

TEST(CancelTokenTest, CancelFiresImmediately) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  try {
    token.Check("unit test");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("cancelled in unit test"), std::string::npos);
  }
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, DeadlineFiresAfterElapsing) {
  CancelToken token;
  token.SetDeadlineAfterMs(5);
  EXPECT_FALSE(token.cancelled());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(token.cancelled());
  try {
    token.Check("sweep");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("deadline exceeded in sweep"),
              std::string::npos);
  }
  token.SetDeadlineAfterMs(0);  // disarms
  EXPECT_FALSE(token.cancelled());
}

TEST(TransientClassificationTest, OnlyInjectedFaultsAreTransient) {
  EXPECT_TRUE(fault::IsTransient(InjectedFault("injected fault at site 'sim' (hit 1)")));
  EXPECT_FALSE(fault::IsTransient(CancelledError("deadline exceeded in sweep")));
  EXPECT_FALSE(fault::IsTransient(Error("resource set provides no resource for mul")));
  EXPECT_TRUE(fault::IsTransientMessage("schedule failed: injected fault at site 'x'"));
  EXPECT_FALSE(fault::IsTransientMessage("schedule failed: no resource for mul"));
}

// --- the supervision loop --------------------------------------------

ExploreOptions EngineSweep() {
  ExploreOptions options;
  options.apps = {"engine"};
  options.scale = 1;
  return options;
}

TEST(ExploreTest, CleanSweepIsDeterministic) {
  const ExploreReport a = RunExplore(EngineSweep());
  const ExploreReport b = RunExplore(EngineSweep());
  ASSERT_EQ(a.jobs.size(), 4u);  // engine's four designer resource sets
  EXPECT_EQ(a.failed(), 0);
  EXPECT_EQ(a.degraded(), 0);
  for (const JobResult& job : a.jobs) {
    EXPECT_EQ(job.status, JobStatus::kOk);
    EXPECT_EQ(job.attempts, 1);
    EXPECT_FALSE(job.replayed);
  }
  EXPECT_EQ(a.Render(), b.Render());
}

TEST(ExploreTest, UnknownAppIsAUsageError) {
  ExploreOptions options;
  options.apps = {"nonesuch"};
  EXPECT_THROW((void)RunExplore(options), Error);
}

TEST(ExploreTest, TransientFaultIsRetriedToSuccess) {
  // profile:1 throws out of the first attempt (before the baseline
  // exists -> fail-fast path); one-shot, so the retry runs clean.
  fault::ScopedSpec spec("profile:1");
  ExploreOptions options = EngineSweep();
  options.retry.max_attempts = 3;
  const ExploreReport report = RunExplore(options);
  EXPECT_EQ(report.failed(), 0);
  ASSERT_EQ(report.jobs.size(), 4u);
  EXPECT_EQ(report.jobs[0].attempts, 2);  // fault consumed by job 1
  EXPECT_EQ(report.jobs[0].status, JobStatus::kOk);
  EXPECT_EQ(report.jobs[1].attempts, 1);
  bool retried = false;
  for (const Diagnostic& d : report.notes) retried |= d.code == "runner.retry";
  EXPECT_TRUE(retried);
}

TEST(ExploreTest, ExhaustedRetriesTripTheJob) {
  // Every profile hit fires: all attempts fail, retries run out.
  fault::ScopedSpec spec("profile");
  ExploreOptions options = EngineSweep();
  options.retry.max_attempts = 2;
  const ExploreReport report = RunExplore(options);
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const JobResult& job : report.jobs) {
    EXPECT_EQ(job.status, JobStatus::kFailed);
    EXPECT_EQ(job.attempts, 2);
    EXPECT_NE(job.detail.find("injected fault at site 'profile'"), std::string::npos);
  }
}

TEST(ExploreTest, CompileFaultOpensTheBreakerWithoutSinkingTheSweep) {
  fault::ScopedSpec spec("parse");
  const ExploreReport report = RunExplore(EngineSweep());
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const JobResult& job : report.jobs) {
    EXPECT_EQ(job.status, JobStatus::kFailed);
    EXPECT_EQ(job.attempts, 1);  // permanent: no retry
  }
  bool breaker = false;
  for (const Diagnostic& d : report.notes) breaker |= d.code == "runner.breaker";
  EXPECT_TRUE(breaker);
}

TEST(ExploreTest, DeadlineDegradesInsteadOfHanging) {
  // A 0-ms-equivalent deadline: armed so tight every attempt cancels.
  // CancelledError is permanent — exactly one attempt, breaker opens.
  ExploreOptions options = EngineSweep();
  options.deadline_ms = 1;
  options.retry.max_attempts = 3;
  const ExploreReport report = RunExplore(options);
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const JobResult& job : report.jobs) {
    if (job.status != JobStatus::kFailed) continue;  // fast machines may finish
    EXPECT_EQ(job.attempts, 1) << "deadline failures must not be retried";
    EXPECT_NE(job.detail.find("deadline exceeded"), std::string::npos);
  }
}

TEST(ExploreTest, BackoffSleepHonorsTheJobDeadline) {
  // Every attempt fails transient, and the configured backoff (60 s)
  // dwarfs the 300 ms job deadline. The deadline token spans the
  // backoff sleeps too, so each job must abort its first backoff within
  // ~deadline — a retry can never overshoot its job's budget by
  // sleeping — instead of blocking the sweep for minutes.
  fault::ScopedSpec spec("profile");
  ExploreOptions options = EngineSweep();
  options.deadline_ms = 300;
  options.retry.max_attempts = 3;
  options.retry.base_ms = 60000;
  options.retry.max_ms = 60000;
  const auto start = std::chrono::steady_clock::now();
  const ExploreReport report = RunExplore(options);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // 4 jobs x ~300 ms deadline, with slack for slow machines — but far
  // below even a single completed 60 s backoff.
  EXPECT_LT(elapsed.count(), 30000) << "a backoff sleep ignored the deadline";
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const JobResult& job : report.jobs) {
    EXPECT_EQ(job.status, JobStatus::kFailed);
    EXPECT_EQ(job.attempts, 1) << "the retry should have died in backoff";
    EXPECT_NE(job.detail.find("deadline exceeded during retry backoff"),
              std::string::npos)
        << job.detail;
  }
  bool breaker_on_backoff = false;
  for (const Diagnostic& d : report.notes) {
    breaker_on_backoff |= d.code == "runner.breaker" &&
                          d.message.find("retry backoff") != std::string::npos;
  }
  EXPECT_TRUE(breaker_on_backoff);
}

TEST(ExploreTest, ChaosReportMatchesCleanReport) {
  const ExploreReport clean = RunExplore(EngineSweep());
  for (const std::uint64_t chaos_seed : {7ull, 99ull}) {
    ExploreOptions options = EngineSweep();
    options.chaos = true;
    options.chaos_seed = chaos_seed;
    options.retry.max_attempts = 4;  // room to absorb two one-shot faults
    const ExploreReport chaos = RunExplore(options);
    EXPECT_EQ(chaos.Render(), clean.Render()) << "chaos seed " << chaos_seed;
    bool scheduled = false;
    for (const Diagnostic& d : chaos.notes) scheduled |= d.code == "runner.chaos";
    EXPECT_TRUE(scheduled);
  }
}

TEST(ExploreTest, ResumeReplaysCommittedPrefixByteIdentically) {
  const std::string path = TempPath("explore_resume.jsonl");
  ExploreOptions options = EngineSweep();
  options.journal_path = path;
  const ExploreReport full = RunExplore(options);
  ASSERT_EQ(full.jobs.size(), 4u);

  // Keep only the first two committed records, as if the process had
  // been killed mid-sweep, then resume.
  std::istringstream journal(ReadFile(path));
  std::string line1, line2;
  std::getline(journal, line1);
  std::getline(journal, line2);
  WriteFile(path, line1 + "\n" + line2 + "\n");

  ExploreOptions resume = options;
  resume.resume = true;
  const ExploreReport resumed = RunExplore(resume);
  ASSERT_EQ(resumed.jobs.size(), 4u);
  EXPECT_TRUE(resumed.jobs[0].replayed);
  EXPECT_TRUE(resumed.jobs[1].replayed);
  EXPECT_FALSE(resumed.jobs[2].replayed);
  EXPECT_EQ(resumed.Render(), full.Render());
  // The journal now holds all four records again.
  EXPECT_EQ(LoadJournal(path).records.size(), 4u);
  std::remove(path.c_str());
}

TEST(ExploreTest, DuplicateJournalRecordIsSkippedWithWarning) {
  const std::string path = TempPath("explore_duplicate.jsonl");
  ExploreOptions options = EngineSweep();
  options.journal_path = path;
  const ExploreReport full = RunExplore(options);

  // Duplicate the first committed line (a crash between append and the
  // in-memory dedup could produce this on a pathological resume chain).
  const std::string content = ReadFile(path);
  const std::string first = content.substr(0, content.find('\n') + 1);
  WriteFile(path, first + content);

  ExploreOptions resume = options;
  resume.resume = true;
  const ExploreReport resumed = RunExplore(resume);
  EXPECT_EQ(resumed.Render(), full.Render());
  bool warned = false;
  for (const Diagnostic& d : resumed.notes) {
    warned |= d.code == "runner.journal" &&
              d.message.find("duplicate journal record") != std::string::npos;
  }
  EXPECT_TRUE(warned);
  std::remove(path.c_str());
}

TEST(ExploreTest, CorruptJournalRecordIsReEvaluatedOnResume) {
  const std::string path = TempPath("explore_corrupt.jsonl");
  ExploreOptions options = EngineSweep();
  options.journal_path = path;
  const ExploreReport full = RunExplore(options);

  // Flip a bit in the third record: resume must warn, re-run that job,
  // and still converge to the same report.
  std::string content = ReadFile(path);
  std::size_t at = 0;
  for (int i = 0; i < 2; ++i) at = content.find('\n', at) + 1;
  content[at + 40] ^= 0x01;
  WriteFile(path, content);

  ExploreOptions resume = options;
  resume.resume = true;
  const ExploreReport resumed = RunExplore(resume);
  EXPECT_EQ(resumed.Render(), full.Render());
  EXPECT_FALSE(resumed.jobs[2].replayed);
  bool warned = false;
  for (const Diagnostic& d : resumed.notes) {
    warned |= d.message.find("checksum mismatch") != std::string::npos;
  }
  EXPECT_TRUE(warned);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lopass::runner
