// Supervised exploration runner: journal integrity under corruption
// (truncation, bit flips, duplicates), cooperative cancellation, and
// the retry / circuit-breaker / chaos supervision loop — including the
// contract the crash tests lean on: a resumed or chaos run renders a
// report byte-identical to a clean one.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/prng.h"
#include "runner/explore.h"
#include "runner/journal.h"
#include "runner/merge.h"
#include "runner/shard.h"

namespace lopass::runner {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "lopass_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// --- journal ----------------------------------------------------------

TEST(Crc32Test, KnownAnswer) {
  // The CRC-32 (IEEE) check value from the standard test vector.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(JournalTest, RoundTripsRecords) {
  const std::string path = TempPath("journal_roundtrip.jsonl");
  {
    JournalWriter writer(path, /*truncate=*/true);
    writer.Append("{\"app\":\"3d\",\"saving\":-35.21}");
    writer.Append("{\"app\":\"MPG\",\"detail\":\"quote \\\" inside\"}");
    EXPECT_EQ(writer.lines_written(), 2u);
  }
  const JournalLoad load = LoadJournal(path);
  EXPECT_TRUE(load.warnings.empty());
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records[0], "{\"app\":\"3d\",\"saving\":-35.21}");
  std::remove(path.c_str());
}

TEST(JournalTest, MissingFileIsFreshStart) {
  const JournalLoad load = LoadJournal(TempPath("journal_does_not_exist.jsonl"));
  EXPECT_TRUE(load.records.empty());
  EXPECT_TRUE(load.warnings.empty());
}

TEST(JournalTest, TruncatedFinalLineIsSkippedWithWarning) {
  const std::string path = TempPath("journal_truncated.jsonl");
  const std::string full = WrapRecord("{\"a\":1}") + "\n" + WrapRecord("{\"a\":2}") + "\n";
  // Chop the second line mid-record, as a SIGKILL mid-append would.
  WriteFile(path, full.substr(0, full.size() - 6));
  const JournalLoad load = LoadJournal(path);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0], "{\"a\":1}");
  ASSERT_EQ(load.record_lines.size(), 1u);
  EXPECT_EQ(load.record_lines[0], 1u);
  // One warning for the torn line, plus the reader's skip summary.
  ASSERT_EQ(load.warnings.size(), 2u);
  EXPECT_NE(load.warnings[0].find("truncated final line"), std::string::npos);
  ASSERT_EQ(load.warning_lines.size(), 2u);
  EXPECT_EQ(load.warning_lines[0], 2u);
  EXPECT_EQ(load.corrupt, 1u);
  EXPECT_EQ(load.duplicates, 0u);
  EXPECT_NE(load.warnings[1].find("skipped 1 corrupt / 0 duplicate records"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(JournalTest, BitFlippedRecordFailsItsChecksum) {
  const std::string path = TempPath("journal_bitflip.jsonl");
  std::string line = WrapRecord("{\"a\":1,\"b\":2}");
  line[line.size() - 5] ^= 0x01;  // flip a bit inside the record payload
  WriteFile(path, WrapRecord("{\"a\":0}") + "\n" + line + "\n");
  const JournalLoad load = LoadJournal(path);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0], "{\"a\":0}");
  ASSERT_EQ(load.warnings.size(), 2u);
  EXPECT_NE(load.warnings[0].find("checksum mismatch"), std::string::npos);
  EXPECT_NE(load.warnings[1].find("skipped 1 corrupt / 0 duplicate records"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(JournalTest, MalformedWrapperIsSkippedWithWarning) {
  const std::string path = TempPath("journal_malformed.jsonl");
  WriteFile(path, "not json at all\n" + WrapRecord("{\"ok\":1}") + "\n");
  const JournalLoad load = LoadJournal(path);
  ASSERT_EQ(load.records.size(), 1u);
  ASSERT_EQ(load.record_lines.size(), 1u);
  EXPECT_EQ(load.record_lines[0], 2u);  // physical line, corrupt line counted
  EXPECT_EQ(load.warnings.size(), 2u);
  EXPECT_NE(load.warnings[1].find("skipped 1 corrupt / 0 duplicate records"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(JournalTest, FieldExtraction) {
  const std::string rec =
      "{\"app\":\"ckey\",\"seed\":\"0xdead\",\"saving_pct\":-12.5,\"errors\":3,"
      "\"detail\":\"a \\\"q\\\" b\"}";
  EXPECT_EQ(JsonStringField(rec, "app").value(), "ckey");
  EXPECT_EQ(JsonStringField(rec, "detail").value(), "a \"q\" b");
  EXPECT_DOUBLE_EQ(JsonNumberField(rec, "saving_pct").value(), -12.5);
  EXPECT_EQ(JsonIntField(rec, "errors").value(), 3);
  EXPECT_FALSE(JsonStringField(rec, "missing").has_value());
  EXPECT_FALSE(JsonIntField(rec, "app").has_value());
}

// --- journal property tests (seeded fuzz) -----------------------------

// Random printable record payloads: flat JSON-ish strings with no
// newline (the one shape constraint Append demands).
std::string RandomPayload(Prng& prng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      " {}[]:,.\"\\_-+";
  const std::size_t length = 1 + prng.next_below(60);
  std::string payload = "{\"p\":\"";
  for (std::size_t i = 0; i < length; ++i) {
    char c = kAlphabet[prng.next_below(sizeof(kAlphabet) - 1)];
    if (c == '"' || c == '\\') c = 'x';  // keep the wrapper parseable
    payload.push_back(c);
  }
  payload += "\"}";
  return payload;
}

TEST(JournalPropertyTest, RandomBatchesRoundTripExactly) {
  const std::string path = TempPath("journal_prop_roundtrip.jsonl");
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Prng prng(seed);
    const std::size_t count = 1 + prng.next_below(40);
    std::vector<std::string> written;
    written.reserve(count);
    {
      JournalWriter writer(path, /*truncate=*/true);
      for (std::size_t i = 0; i < count; ++i) {
        written.push_back(RandomPayload(prng));
        writer.Append(written.back());
      }
      EXPECT_EQ(writer.lines_written(), count);
    }
    const JournalLoad load = LoadJournal(path);
    EXPECT_TRUE(load.warnings.empty()) << "seed " << seed;
    ASSERT_EQ(load.records.size(), count) << "seed " << seed;
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(load.records[i], written[i]) << "seed " << seed << " record " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(JournalPropertyTest, RandomTruncationRecoversExactlyTheIntactPrefix) {
  // For any cut point, the reader must return precisely the records
  // whose full line (terminating newline included) survived, warn once
  // iff the cut tore a line, and never throw.
  const std::string path = TempPath("journal_prop_truncate.jsonl");
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Prng prng(seed ^ 0xdecafbadull);
    const std::size_t count = 1 + prng.next_below(12);
    std::vector<std::string> written;
    std::vector<std::size_t> line_end;  // offset one past each '\n'
    std::string content;
    for (std::size_t i = 0; i < count; ++i) {
      written.push_back(RandomPayload(prng));
      content += WrapRecord(written.back()) + "\n";
      line_end.push_back(content.size());
    }
    const std::size_t cut = prng.next_below(content.size() + 1);
    WriteFile(path, content.substr(0, cut));

    std::size_t intact = 0;
    while (intact < count && line_end[intact] <= cut) ++intact;
    const bool torn =
        cut != 0 && cut != (intact == 0 ? std::size_t{0} : line_end[intact - 1]);

    const JournalLoad load = LoadJournal(path);
    ASSERT_EQ(load.records.size(), intact) << "seed " << seed << " cut " << cut;
    for (std::size_t i = 0; i < intact; ++i) {
      EXPECT_EQ(load.records[i], written[i]) << "seed " << seed;
      EXPECT_EQ(load.record_lines[i], i + 1) << "seed " << seed;
    }
    // A torn tail produces the warning itself plus the skip summary.
    EXPECT_EQ(load.warnings.size(), torn ? 2u : 0u)
        << "seed " << seed << " cut " << cut;
  }
  std::remove(path.c_str());
}

TEST(JournalPropertyTest, SingleBitFlipsNeverCorruptOtherLines) {
  // Flip one bit in a random subset of lines (never creating or
  // destroying a newline): every untouched record must load intact and
  // in order, every flipped line must produce exactly one warning.
  const std::string path = TempPath("journal_prop_bitflip.jsonl");
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Prng prng(seed ^ 0xb17f11b5ull);
    const std::size_t count = 2 + prng.next_below(10);
    std::vector<std::string> written;
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < count; ++i) {
      written.push_back(RandomPayload(prng));
      lines.push_back(WrapRecord(written.back()));
    }

    std::vector<bool> flipped(count, false);
    std::string content;
    for (std::size_t i = 0; i < count; ++i) {
      std::string line = lines[i];
      if (prng.next_below(2) == 1) {
        // Re-draw until the flip neither hits nor produces 0x0a.
        for (;;) {
          const std::size_t at = prng.next_below(line.size());
          const char mutated =
              static_cast<char>(line[at] ^ (1 << prng.next_below(8)));
          if (mutated == '\n' || line[at] == '\n') continue;
          line[at] = mutated;
          break;
        }
        flipped[i] = true;
      }
      content += line + "\n";
    }
    WriteFile(path, content);

    const JournalLoad load = LoadJournal(path);
    std::size_t expected_intact = 0, expected_flipped = 0;
    for (std::size_t i = 0; i < count; ++i) {
      (flipped[i] ? expected_flipped : expected_intact)++;
    }
    // One warning per flipped line, plus one skip summary iff any.
    EXPECT_EQ(load.warnings.size(),
              expected_flipped + (expected_flipped > 0 ? 1u : 0u))
        << "seed " << seed;
    EXPECT_EQ(load.corrupt, expected_flipped) << "seed " << seed;
    ASSERT_EQ(load.records.size(), expected_intact) << "seed " << seed;
    std::size_t at = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (flipped[i]) continue;
      EXPECT_EQ(load.record_lines[at], i + 1) << "seed " << seed << " line " << i;
      EXPECT_EQ(load.records[at++], written[i]) << "seed " << seed << " line " << i;
    }
  }
  std::remove(path.c_str());
}

// --- cancellation -----------------------------------------------------

TEST(CancelTokenTest, DefaultNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.Check("test"));
  EXPECT_NO_THROW(CheckCancel(nullptr, "test"));
}

TEST(CancelTokenTest, CancelFiresImmediately) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  try {
    token.Check("unit test");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("cancelled in unit test"), std::string::npos);
  }
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, DeadlineFiresAfterElapsing) {
  CancelToken token;
  token.SetDeadlineAfterMs(5);
  EXPECT_FALSE(token.cancelled());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(token.cancelled());
  try {
    token.Check("sweep");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("deadline exceeded in sweep"),
              std::string::npos);
  }
  token.SetDeadlineAfterMs(0);  // disarms
  EXPECT_FALSE(token.cancelled());
}

TEST(TransientClassificationTest, OnlyInjectedFaultsAreTransient) {
  EXPECT_TRUE(fault::IsTransient(InjectedFault("injected fault at site 'sim' (hit 1)")));
  EXPECT_FALSE(fault::IsTransient(CancelledError("deadline exceeded in sweep")));
  EXPECT_FALSE(fault::IsTransient(Error("resource set provides no resource for mul")));
  EXPECT_TRUE(fault::IsTransientMessage("schedule failed: injected fault at site 'x'"));
  EXPECT_FALSE(fault::IsTransientMessage("schedule failed: no resource for mul"));
}

// --- the supervision loop --------------------------------------------

ExploreOptions EngineSweep() {
  ExploreOptions options;
  options.apps = {"engine"};
  options.scale = 1;
  return options;
}

TEST(ExploreTest, CleanSweepIsDeterministic) {
  const ExploreReport a = RunExplore(EngineSweep());
  const ExploreReport b = RunExplore(EngineSweep());
  ASSERT_EQ(a.jobs.size(), 4u);  // engine's four designer resource sets
  EXPECT_EQ(a.failed(), 0);
  EXPECT_EQ(a.degraded(), 0);
  for (const JobResult& job : a.jobs) {
    EXPECT_EQ(job.status, JobStatus::kOk);
    EXPECT_EQ(job.attempts, 1);
    EXPECT_FALSE(job.replayed);
  }
  EXPECT_EQ(a.Render(), b.Render());
}

TEST(ExploreTest, UnknownAppIsAUsageError) {
  ExploreOptions options;
  options.apps = {"nonesuch"};
  EXPECT_THROW((void)RunExplore(options), Error);
}

TEST(ExploreTest, TransientFaultIsRetriedToSuccess) {
  // profile:1 throws out of the first attempt (before the baseline
  // exists -> fail-fast path); one-shot, so the retry runs clean.
  fault::ScopedSpec spec("profile:1");
  ExploreOptions options = EngineSweep();
  options.retry.max_attempts = 3;
  const ExploreReport report = RunExplore(options);
  EXPECT_EQ(report.failed(), 0);
  ASSERT_EQ(report.jobs.size(), 4u);
  EXPECT_EQ(report.jobs[0].attempts, 2);  // fault consumed by job 1
  EXPECT_EQ(report.jobs[0].status, JobStatus::kOk);
  EXPECT_EQ(report.jobs[1].attempts, 1);
  bool retried = false;
  for (const Diagnostic& d : report.notes) retried |= d.code == "runner.retry";
  EXPECT_TRUE(retried);
}

TEST(ExploreTest, ExhaustedRetriesTripTheJob) {
  // Every profile hit fires: all attempts fail, retries run out.
  fault::ScopedSpec spec("profile");
  ExploreOptions options = EngineSweep();
  options.retry.max_attempts = 2;
  const ExploreReport report = RunExplore(options);
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const JobResult& job : report.jobs) {
    EXPECT_EQ(job.status, JobStatus::kFailed);
    EXPECT_EQ(job.attempts, 2);
    EXPECT_NE(job.detail.find("injected fault at site 'profile'"), std::string::npos);
  }
}

TEST(ExploreTest, CompileFaultOpensTheBreakerWithoutSinkingTheSweep) {
  fault::ScopedSpec spec("parse");
  const ExploreReport report = RunExplore(EngineSweep());
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const JobResult& job : report.jobs) {
    EXPECT_EQ(job.status, JobStatus::kFailed);
    EXPECT_EQ(job.attempts, 1);  // permanent: no retry
  }
  bool breaker = false;
  for (const Diagnostic& d : report.notes) breaker |= d.code == "runner.breaker";
  EXPECT_TRUE(breaker);
}

TEST(ExploreTest, DeadlineDegradesInsteadOfHanging) {
  // A 0-ms-equivalent deadline: armed so tight every attempt cancels.
  // CancelledError is permanent — exactly one attempt, breaker opens.
  ExploreOptions options = EngineSweep();
  options.deadline_ms = 1;
  options.retry.max_attempts = 3;
  const ExploreReport report = RunExplore(options);
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const JobResult& job : report.jobs) {
    if (job.status != JobStatus::kFailed) continue;  // fast machines may finish
    EXPECT_EQ(job.attempts, 1) << "deadline failures must not be retried";
    EXPECT_NE(job.detail.find("deadline exceeded"), std::string::npos);
  }
}

TEST(ExploreTest, BackoffSleepHonorsTheJobDeadline) {
  // Every attempt fails transient, and the configured backoff (60 s)
  // dwarfs the 300 ms job deadline. The deadline token spans the
  // backoff sleeps too, so each job must abort its first backoff within
  // ~deadline — a retry can never overshoot its job's budget by
  // sleeping — instead of blocking the sweep for minutes.
  fault::ScopedSpec spec("profile");
  ExploreOptions options = EngineSweep();
  options.deadline_ms = 300;
  options.retry.max_attempts = 3;
  options.retry.base_ms = 60000;
  options.retry.max_ms = 60000;
  const auto start = std::chrono::steady_clock::now();
  const ExploreReport report = RunExplore(options);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // 4 jobs x ~300 ms deadline, with slack for slow machines — but far
  // below even a single completed 60 s backoff.
  EXPECT_LT(elapsed.count(), 30000) << "a backoff sleep ignored the deadline";
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const JobResult& job : report.jobs) {
    EXPECT_EQ(job.status, JobStatus::kFailed);
    EXPECT_EQ(job.attempts, 1) << "the retry should have died in backoff";
    EXPECT_NE(job.detail.find("deadline exceeded during retry backoff"),
              std::string::npos)
        << job.detail;
  }
  bool breaker_on_backoff = false;
  for (const Diagnostic& d : report.notes) {
    breaker_on_backoff |= d.code == "runner.breaker" &&
                          d.message.find("retry backoff") != std::string::npos;
  }
  EXPECT_TRUE(breaker_on_backoff);
}

TEST(ExploreTest, ChaosReportMatchesCleanReport) {
  const ExploreReport clean = RunExplore(EngineSweep());
  for (const std::uint64_t chaos_seed : {7ull, 99ull}) {
    ExploreOptions options = EngineSweep();
    options.chaos = true;
    options.chaos_seed = chaos_seed;
    options.retry.max_attempts = 4;  // room to absorb two one-shot faults
    const ExploreReport chaos = RunExplore(options);
    EXPECT_EQ(chaos.Render(), clean.Render()) << "chaos seed " << chaos_seed;
    bool scheduled = false;
    for (const Diagnostic& d : chaos.notes) scheduled |= d.code == "runner.chaos";
    EXPECT_TRUE(scheduled);
  }
}

TEST(ExploreTest, ResumeReplaysCommittedPrefixByteIdentically) {
  const std::string path = TempPath("explore_resume.jsonl");
  ExploreOptions options = EngineSweep();
  options.journal_path = path;
  const ExploreReport full = RunExplore(options);
  ASSERT_EQ(full.jobs.size(), 4u);

  // Keep only the first two committed records, as if the process had
  // been killed mid-sweep, then resume.
  std::istringstream journal(ReadFile(path));
  std::string line1, line2;
  std::getline(journal, line1);
  std::getline(journal, line2);
  WriteFile(path, line1 + "\n" + line2 + "\n");

  ExploreOptions resume = options;
  resume.resume = true;
  const ExploreReport resumed = RunExplore(resume);
  ASSERT_EQ(resumed.jobs.size(), 4u);
  EXPECT_TRUE(resumed.jobs[0].replayed);
  EXPECT_TRUE(resumed.jobs[1].replayed);
  EXPECT_FALSE(resumed.jobs[2].replayed);
  EXPECT_EQ(resumed.Render(), full.Render());
  // The journal now holds all four records again.
  EXPECT_EQ(LoadJournal(path).records.size(), 4u);
  std::remove(path.c_str());
}

TEST(ExploreTest, AdjacentDuplicateLineIsSkippedByTheReader) {
  const std::string path = TempPath("explore_duplicate.jsonl");
  ExploreOptions options = EngineSweep();
  options.journal_path = path;
  const ExploreReport full = RunExplore(options);

  // Duplicate the first committed line in place (a crash between append
  // and fsync replayed by a journaling filesystem lands the same bytes
  // twice, adjacent). The journal reader itself skips it.
  const std::string content = ReadFile(path);
  const std::string first = content.substr(0, content.find('\n') + 1);
  WriteFile(path, first + content);
  const JournalLoad load = LoadJournal(path);
  EXPECT_EQ(load.records.size(), 4u);
  EXPECT_EQ(load.duplicates, 1u);
  ASSERT_EQ(load.warnings.size(), 2u);
  EXPECT_NE(load.warnings[0].find("byte-identical duplicate"), std::string::npos);
  EXPECT_NE(load.warnings[1].find("skipped 0 corrupt / 1 duplicate records"),
            std::string::npos);

  ExploreOptions resume = options;
  resume.resume = true;
  const ExploreReport resumed = RunExplore(resume);
  EXPECT_EQ(resumed.Render(), full.Render());
  bool warned = false;
  for (const Diagnostic& d : resumed.notes) {
    warned |= d.code == "runner.journal" &&
              d.message.find("skipped 0 corrupt / 1 duplicate records") !=
                  std::string::npos;
  }
  EXPECT_TRUE(warned);
  std::remove(path.c_str());
}

TEST(ExploreTest, ByKeyDuplicateRecordKeepsTheFirstWithWarning) {
  const std::string path = TempPath("explore_key_duplicate.jsonl");
  ExploreOptions options = EngineSweep();
  options.journal_path = path;
  const ExploreReport full = RunExplore(options);

  // Append a byte-DIFFERENT record for a job already in the journal —
  // the reader's adjacency dedup must not fire, but the runner's by-key
  // dedup must keep the first record and warn.
  const JournalLoad before = LoadJournal(path);
  ASSERT_EQ(before.records.size(), 4u);
  JobResult twin;
  ASSERT_TRUE(ParseJobRecord(before.records[0], twin));
  twin.attempts += 1;  // different bytes, same app/resource_set key
  {
    JournalWriter writer(path, /*truncate=*/false);
    writer.Append(JobRecordJson(twin));
  }

  ExploreOptions resume = options;
  resume.resume = true;
  const ExploreReport resumed = RunExplore(resume);
  EXPECT_EQ(resumed.Render(), full.Render());
  EXPECT_EQ(resumed.jobs[0].attempts, full.jobs[0].attempts) << "kept the first";
  bool warned = false;
  for (const Diagnostic& d : resumed.notes) {
    warned |= d.code == "runner.journal" &&
              d.message.find("duplicate journal record") != std::string::npos;
  }
  EXPECT_TRUE(warned);
  std::remove(path.c_str());
}

TEST(ExploreTest, CorruptJournalRecordIsReEvaluatedOnResume) {
  const std::string path = TempPath("explore_corrupt.jsonl");
  ExploreOptions options = EngineSweep();
  options.journal_path = path;
  const ExploreReport full = RunExplore(options);

  // Flip a bit in the third record: resume must warn, re-run that job,
  // and still converge to the same report.
  std::string content = ReadFile(path);
  std::size_t at = 0;
  for (int i = 0; i < 2; ++i) at = content.find('\n', at) + 1;
  content[at + 40] ^= 0x01;
  WriteFile(path, content);

  ExploreOptions resume = options;
  resume.resume = true;
  const ExploreReport resumed = RunExplore(resume);
  EXPECT_EQ(resumed.Render(), full.Render());
  EXPECT_FALSE(resumed.jobs[2].replayed);
  bool warned = false;
  for (const Diagnostic& d : resumed.notes) {
    warned |= d.message.find("checksum mismatch") != std::string::npos;
  }
  EXPECT_TRUE(warned);
  std::remove(path.c_str());
}

// --- sharding: spec, header, chaos schedule ---------------------------

TEST(ShardSpecTest, ParsesWellFormedSpecs) {
  const auto spec = ParseShardSpec("1/3");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->index, 1);
  EXPECT_EQ(spec->count, 3);
  EXPECT_EQ(ShardJournalPath("sweep.jsonl", *spec), "sweep.jsonl.shard-1-of-3");
  const auto max = ParseShardSpec("1023/1024");
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(max->index, 1023);
}

TEST(ShardSpecTest, RejectsMalformedSpecs) {
  for (const char* bad : {"", "/", "1/", "/3", "3/3", "4/3", "-1/3", "0/0",
                          "0/1025", "a/b", "1/3x", "1//3", "1 / 3"}) {
    EXPECT_FALSE(ParseShardSpec(bad).has_value()) << "'" << bad << "'";
  }
}

TEST(ShardHeaderTest, JsonRoundTripsAndIsRecognized) {
  ShardHeader header;
  header.shard = ShardSpec{2, 5};
  header.total_jobs = 24;
  header.apps = "3d,MPG,ckey,digs,engine,trick";
  header.scale = 3;
  header.base_seed = 0x9e3779b97f4a7c15ull;
  header.chaos = true;
  header.chaos_seed = 77;
  const std::string json = ShardHeaderJson(header);
  EXPECT_TRUE(IsShardHeader(json));
  EXPECT_FALSE(IsShardHeader("{\"app\":\"3d\"}"));
  const auto parsed = ParseShardHeader(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->shard.index, 2);
  EXPECT_EQ(parsed->shard.count, 5);
  EXPECT_EQ(parsed->total_jobs, 24);
  EXPECT_EQ(parsed->apps, header.apps);
  EXPECT_EQ(parsed->scale, 3);
  EXPECT_EQ(parsed->base_seed, header.base_seed);
  EXPECT_TRUE(parsed->chaos);
  EXPECT_EQ(parsed->chaos_seed, 77u);
  // Serialization is deterministic: a round-trip reproduces the bytes.
  EXPECT_EQ(ShardHeaderJson(*parsed), json);
}

TEST(ChaosScheduleTest, IsAPureFunctionOfSeedAndKey) {
  const std::vector<std::string_view> sites = {"parse", "profile", "sim"};
  const std::string a = fault::ChaosSchedule(7, "engine/minimal", sites);
  EXPECT_EQ(a, fault::ChaosSchedule(7, "engine/minimal", sites));
  EXPECT_NE(a, fault::ChaosSchedule(8, "engine/minimal", sites));
  EXPECT_NE(a, fault::ChaosSchedule(7, "engine/rich", sites));
  // Every armed site comes from the menu, one-shot style site:N.
  std::stringstream arms(a);
  std::string arm;
  int count = 0;
  while (std::getline(arms, arm, ',')) {
    ++count;
    const std::size_t colon = arm.find(':');
    ASSERT_NE(colon, std::string::npos) << arm;
    const std::string site = arm.substr(0, colon);
    EXPECT_TRUE(site == "parse" || site == "profile" || site == "sim") << arm;
    const int hit = std::stoi(arm.substr(colon + 1));
    EXPECT_GE(hit, 1);
    EXPECT_LE(hit, 3);
  }
  EXPECT_GE(count, 1);
  EXPECT_LE(count, 2);
}

// --- merge-journals: splice property tests ----------------------------

// A synthetic sweep of `count` jobs with unique keys and randomized
// payload fields, round-trippable through JobRecordJson/ParseJobRecord.
std::vector<JobResult> SyntheticJobs(Prng& prng, std::size_t count) {
  std::vector<JobResult> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    JobResult job;
    job.app = "app" + std::to_string(i / 4);
    job.resource_set = "rs" + std::to_string(i % 4) + "_" + std::to_string(i);
    job.seed = prng.next_u64();
    job.status = static_cast<JobStatus>(prng.next_below(3));
    job.attempts = 1 + static_cast<int>(prng.next_below(4));
    job.fault_spec = prng.next_below(2) ? "sim:2" : "";
    job.initial_energy_j = 1e-3 * static_cast<double>(prng.next_below(100000));
    job.partitioned_energy_j = 1e-3 * static_cast<double>(prng.next_below(100000));
    job.saving_percent = -50.0 + static_cast<double>(prng.next_below(100));
    job.time_change_percent = -10.0 + static_cast<double>(prng.next_below(20));
    job.errors = static_cast<std::int64_t>(prng.next_below(3));
    job.detail = job.errors > 0 ? "synthetic error " + std::to_string(i) : "";
    jobs.push_back(std::move(job));
  }
  return jobs;
}

ShardHeader SyntheticHeader(int index, int count, std::int64_t total_jobs) {
  ShardHeader header;
  header.shard = ShardSpec{index, count};
  header.total_jobs = total_jobs;
  header.apps = "synthetic";
  header.scale = 1;
  header.base_seed = 0x9e3779b97f4a7c15ull;
  header.chaos = false;
  header.chaos_seed = 0;
  return header;
}

// Writes one shard journal (header + every count-th record from
// `records` starting at `index`) and returns its full byte content.
std::string WriteShardFile(const std::string& path, int index, int count,
                           const std::vector<std::string>& records) {
  JournalWriter writer(path, /*truncate=*/true);
  writer.Append(ShardHeaderJson(
      SyntheticHeader(index, count, static_cast<std::int64_t>(records.size()))));
  for (std::size_t i = static_cast<std::size_t>(index); i < records.size();
       i += static_cast<std::size_t>(count)) {
    writer.Append(records[i]);
  }
  return ReadFile(path);
}

TEST(MergePropertyTest, RandomSplitsSpliceBackToTheSequentialBytes) {
  // For random job counts and shard widths M, with the shard files
  // offered in random order, the merged journal must be byte-identical
  // to what a sequential run would have journaled.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Prng prng(seed ^ 0x5face0ffull);
    const std::size_t count = 1 + prng.next_below(30);
    const int shards = 1 + static_cast<int>(prng.next_below(6));
    const std::vector<JobResult> jobs = SyntheticJobs(prng, count);
    std::vector<std::string> records;
    for (const JobResult& job : jobs) records.push_back(JobRecordJson(job));

    // The sequential reference: every record in queue order.
    const std::string seq_path = TempPath("merge_prop_seq.jsonl");
    {
      JournalWriter writer(seq_path, /*truncate=*/true);
      for (const std::string& record : records) writer.Append(record);
    }
    const std::string expected = ReadFile(seq_path);

    std::vector<std::string> paths;
    for (int s = 0; s < shards; ++s) {
      const std::string path =
          TempPath("merge_prop_shard" + std::to_string(s) + ".jsonl");
      WriteShardFile(path, s, shards, records);
      paths.push_back(path);
    }
    // Shuffle the argument order: the splice must not care.
    for (std::size_t i = paths.size(); i > 1; --i) {
      std::swap(paths[i - 1], paths[prng.next_below(i)]);
    }

    const MergeResult merged = MergeJournals(paths);
    EXPECT_FALSE(merged.malformed()) << "seed " << seed;
    EXPECT_TRUE(merged.complete()) << "seed " << seed;
    ASSERT_EQ(merged.records.size(), count) << "seed " << seed;
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(merged.records[i], records[i]) << "seed " << seed;
      EXPECT_EQ(merged.indices[i], static_cast<std::int64_t>(i)) << "seed " << seed;
    }
    const std::string out_path = TempPath("merge_prop_out.jsonl");
    WriteMergedJournal(merged, out_path);
    EXPECT_EQ(ReadFile(out_path), expected) << "seed " << seed;

    std::remove(seq_path.c_str());
    std::remove(out_path.c_str());
    for (const std::string& path : paths) std::remove(path.c_str());
  }
}

TEST(MergePropertyTest, RandomTruncationLosesOnlyTheTornShardsTail) {
  // Truncate each shard file at a random byte. If every header survives
  // the merge must succeed and recover exactly the records whose full
  // line survived; if a cut destroys a header the set is rejected.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Prng prng(seed ^ 0x70bb1edull);
    const std::size_t count = 1 + prng.next_below(24);
    const int shards = 1 + static_cast<int>(prng.next_below(4));
    const std::vector<JobResult> jobs = SyntheticJobs(prng, count);
    std::vector<std::string> records;
    for (const JobResult& job : jobs) records.push_back(JobRecordJson(job));

    std::vector<std::string> paths;
    std::vector<bool> survives(count, false);
    bool any_header_lost = false;
    for (int s = 0; s < shards; ++s) {
      const std::string path =
          TempPath("merge_trunc_shard" + std::to_string(s) + ".jsonl");
      const std::string full = WriteShardFile(path, s, shards, records);
      // Cut at a random point — possibly before the header's newline.
      const std::size_t cut = prng.next_below(full.size() + 1);
      WriteFile(path, full.substr(0, cut));
      paths.push_back(path);

      const std::size_t header_end = full.find('\n') + 1;
      if (cut < header_end) {
        any_header_lost = true;
        continue;
      }
      // Mark the shard's records whose terminating newline survived.
      std::size_t line_end = header_end;
      for (std::size_t i = static_cast<std::size_t>(s); i < count;
           i += static_cast<std::size_t>(shards)) {
        line_end = full.find('\n', line_end) + 1;
        if (line_end != 0 && line_end <= cut) survives[i] = true;
      }
    }
    for (std::size_t i = paths.size(); i > 1; --i) {
      std::swap(paths[i - 1], paths[prng.next_below(i)]);
    }

    const MergeResult merged = MergeJournals(paths);
    if (any_header_lost) {
      EXPECT_TRUE(merged.malformed()) << "seed " << seed;
      bool diagnosed = false;
      for (const MergeFinding& f : merged.findings) {
        diagnosed |= f.fatal && (f.message.find("shard header") != std::string::npos);
      }
      EXPECT_TRUE(diagnosed) << "seed " << seed;
    } else {
      EXPECT_FALSE(merged.malformed()) << "seed " << seed;
      std::size_t expected = 0;
      for (std::size_t i = 0; i < count; ++i) expected += survives[i] ? 1 : 0;
      ASSERT_EQ(merged.records.size(), expected) << "seed " << seed;
      EXPECT_EQ(merged.missing,
                static_cast<std::int64_t>(count) -
                    static_cast<std::int64_t>(expected))
          << "seed " << seed;
      EXPECT_EQ(merged.complete(), expected == count) << "seed " << seed;
      std::size_t at = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (!survives[i]) continue;
        EXPECT_EQ(merged.indices[at], static_cast<std::int64_t>(i))
            << "seed " << seed;
        EXPECT_EQ(merged.records[at++], records[i]) << "seed " << seed;
      }
    }
    for (const std::string& path : paths) std::remove(path.c_str());
  }
}

TEST(MergeTest, OverlappingShardSetIsRejected) {
  Prng prng(42);
  const std::vector<JobResult> jobs = SyntheticJobs(prng, 8);
  std::vector<std::string> records;
  for (const JobResult& job : jobs) records.push_back(JobRecordJson(job));
  const std::string a = TempPath("merge_overlap_a.jsonl");
  const std::string b = TempPath("merge_overlap_b.jsonl");
  const std::string c = TempPath("merge_overlap_c.jsonl");
  WriteShardFile(a, 0, 2, records);
  WriteShardFile(b, 1, 2, records);
  WriteShardFile(c, 1, 2, records);  // shard 1 twice
  const MergeResult merged = MergeJournals({a, b, c});
  EXPECT_TRUE(merged.malformed());
  EXPECT_TRUE(merged.records.empty()) << "nothing may be merged from a bad set";
  bool diagnosed = false;
  for (const MergeFinding& f : merged.findings) {
    if (!f.fatal || f.message.find("overlap: shard 1/2") == std::string::npos)
      continue;
    diagnosed = true;
    EXPECT_EQ(f.file, c);  // the later file is the culprit...
    EXPECT_EQ(f.line, 1u);
    EXPECT_NE(f.message.find(b), std::string::npos) << "...and names the first";
  }
  EXPECT_TRUE(diagnosed);
  for (const std::string& p : {a, b, c}) std::remove(p.c_str());
}

TEST(MergeTest, GappedShardSetIsRejected) {
  Prng prng(43);
  const std::vector<JobResult> jobs = SyntheticJobs(prng, 9);
  std::vector<std::string> records;
  for (const JobResult& job : jobs) records.push_back(JobRecordJson(job));
  const std::string a = TempPath("merge_gap_a.jsonl");
  const std::string c = TempPath("merge_gap_c.jsonl");
  WriteShardFile(a, 0, 3, records);
  WriteShardFile(c, 2, 3, records);  // shard 1/3 missing
  const MergeResult merged = MergeJournals({a, c});
  EXPECT_TRUE(merged.malformed());
  bool diagnosed = false;
  for (const MergeFinding& f : merged.findings) {
    diagnosed |= f.fatal &&
                 f.message.find("gap: shard 1/3 is missing") != std::string::npos;
  }
  EXPECT_TRUE(diagnosed);
  for (const std::string& p : {a, c}) std::remove(p.c_str());
}

TEST(MergeTest, MixedSweepConfigurationsAreRejected) {
  Prng prng(44);
  const std::vector<JobResult> jobs = SyntheticJobs(prng, 6);
  std::vector<std::string> records;
  for (const JobResult& job : jobs) records.push_back(JobRecordJson(job));
  const std::string a = TempPath("merge_mixed_a.jsonl");
  const std::string b = TempPath("merge_mixed_b.jsonl");
  WriteShardFile(a, 0, 2, records);
  {
    // Shard 1 of a *different* sweep: same width, different seed.
    JournalWriter writer(b, /*truncate=*/true);
    ShardHeader header = SyntheticHeader(1, 2, 6);
    header.base_seed ^= 1;
    writer.Append(ShardHeaderJson(header));
    for (std::size_t i = 1; i < records.size(); i += 2) writer.Append(records[i]);
  }
  const MergeResult merged = MergeJournals({a, b});
  EXPECT_TRUE(merged.malformed());
  bool diagnosed = false;
  for (const MergeFinding& f : merged.findings) {
    diagnosed |= f.fatal && f.file == b &&
                 f.message.find("different sweep configuration") != std::string::npos;
  }
  EXPECT_TRUE(diagnosed);
  for (const std::string& p : {a, b}) std::remove(p.c_str());
}

TEST(MergeTest, DuplicateJobAcrossShardsIsRejected) {
  Prng prng(45);
  const std::vector<JobResult> jobs = SyntheticJobs(prng, 4);
  std::vector<std::string> records;
  for (const JobResult& job : jobs) records.push_back(JobRecordJson(job));
  const std::string a = TempPath("merge_dupjob_a.jsonl");
  const std::string b = TempPath("merge_dupjob_b.jsonl");
  WriteShardFile(a, 0, 2, records);
  {
    // Shard 1 whose first record re-evaluates shard 0's first job.
    JournalWriter writer(b, /*truncate=*/true);
    writer.Append(ShardHeaderJson(SyntheticHeader(1, 2, 4)));
    writer.Append(records[0]);
    writer.Append(records[3]);
  }
  const MergeResult merged = MergeJournals({a, b});
  EXPECT_TRUE(merged.malformed());
  EXPECT_TRUE(merged.records.empty());
  bool diagnosed = false;
  for (const MergeFinding& f : merged.findings) {
    diagnosed |= f.fatal && f.message.find("duplicate job '") != std::string::npos;
  }
  EXPECT_TRUE(diagnosed);
  for (const std::string& p : {a, b}) std::remove(p.c_str());
}

TEST(MergeTest, NonShardJournalIsRejected) {
  Prng prng(46);
  const std::vector<JobResult> jobs = SyntheticJobs(prng, 2);
  const std::string path = TempPath("merge_notashard.jsonl");
  {
    JournalWriter writer(path, /*truncate=*/true);
    for (const JobResult& job : jobs) writer.Append(JobRecordJson(job));
  }
  const MergeResult merged = MergeJournals({path});
  EXPECT_TRUE(merged.malformed());
  bool diagnosed = false;
  for (const MergeFinding& f : merged.findings) {
    diagnosed |= f.fatal && f.file == path && f.line == 1 &&
                 f.message.find("not a shard header") != std::string::npos;
  }
  EXPECT_TRUE(diagnosed);
  std::remove(path.c_str());
}

TEST(MergeTest, MissingShardFileIsRejected) {
  const MergeResult merged =
      MergeJournals({TempPath("merge_no_such_file.jsonl")});
  EXPECT_TRUE(merged.malformed());
  ASSERT_FALSE(merged.findings.empty());
  EXPECT_NE(merged.findings[0].message.find("cannot open"), std::string::npos);
}

// --- sharded exploration end-to-end (in-process) ----------------------

TEST(ExploreShardTest, ShardedSweepSplicesToTheSequentialJournal) {
  const std::string base = TempPath("explore_shard.jsonl");
  ExploreOptions seq;
  seq.apps = {"engine", "trick"};
  seq.journal_path = base + ".seq";
  const ExploreReport sequential = RunExplore(seq);
  const std::string expected = ReadFile(seq.journal_path);

  std::vector<std::string> shard_paths;
  for (int s = 0; s < 3; ++s) {
    ExploreOptions opt = seq;
    opt.journal_path = base;
    opt.shard = ShardSpec{s, 3};
    const ExploreReport part = RunExplore(opt);
    EXPECT_EQ(part.failed(), 0);
    shard_paths.push_back(ShardJournalPath(base, *opt.shard));
  }

  const MergeResult merged = MergeJournals(shard_paths);
  EXPECT_FALSE(merged.malformed());
  EXPECT_TRUE(merged.complete());
  const std::string out = base + ".merged";
  WriteMergedJournal(merged, out);
  EXPECT_EQ(ReadFile(out), expected);

  // The merged jobs render the sequential report byte-for-byte.
  ExploreReport report;
  report.jobs = merged.jobs;
  EXPECT_EQ(report.Render(), sequential.Render());

  std::remove(seq.journal_path.c_str());
  std::remove(out.c_str());
  for (const std::string& p : shard_paths) std::remove(p.c_str());
}

TEST(ExploreShardTest, ShardResumeValidatesTheHeader) {
  const std::string base = TempPath("explore_shard_resume.jsonl");
  ExploreOptions opt;
  opt.apps = {"engine"};
  opt.journal_path = base;
  opt.shard = ShardSpec{0, 2};
  const ExploreReport first = RunExplore(opt);
  const std::string shard_path = ShardJournalPath(base, *opt.shard);

  // Same configuration resumes cleanly, fully replayed.
  ExploreOptions resume = opt;
  resume.resume = true;
  resume.journal_path = base;
  const ExploreReport resumed = RunExplore(resume);
  EXPECT_EQ(resumed.Render(), first.Render());
  for (const JobResult& job : resumed.jobs) EXPECT_TRUE(job.replayed);

  // A different sweep configuration must refuse the journal.
  ExploreOptions other = resume;
  other.base_seed ^= 1;
  EXPECT_THROW((void)RunExplore(other), Error);
  std::remove(shard_path.c_str());
}

}  // namespace
}  // namespace lopass::runner
