#include "common/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace lopass {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"a", "long-header"});
  t.add_row({"xx", "y"});
  const std::string s = t.ToString();
  // Every line has the same width.
  std::size_t width = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, width) << s;
    pos = next + 1;
  }
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("xx"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, SeparatorRows) {
  TextTable t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.ToString();
  // header sep + top + bottom + middle separator = 4 separator lines.
  int dashes = 0;
  std::size_t pos = 0;
  while ((pos = s.find("+-", pos)) != std::string::npos) {
    ++dashes;
    pos += 2;
  }
  EXPECT_EQ(dashes, 4);
  EXPECT_EQ(t.row_count(), 3u);  // 2 data rows + 1 separator
}

TEST(TextTable, EmptyTableStillRenders) {
  TextTable t;
  t.set_header({"x"});
  EXPECT_FALSE(t.ToString().empty());
}

}  // namespace
}  // namespace lopass
