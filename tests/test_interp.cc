#include "interp/interpreter.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "dsl/lower.h"

namespace lopass::interp {
namespace {

std::int64_t Eval(const std::string& body_expr, std::vector<std::int64_t> args = {},
                  const std::string& params = "") {
  const std::string src =
      "func main(" + params + ") { return " + body_expr + "; }";
  const dsl::LoweredProgram p = dsl::Compile(src);
  Interpreter it(p.module);
  return it.Run("main", args).return_value;
}

TEST(Interp, Arithmetic) {
  EXPECT_EQ(Eval("2 + 3 * 4"), 14);
  EXPECT_EQ(Eval("(2 + 3) * 4"), 20);
  EXPECT_EQ(Eval("7 / 2"), 3);
  EXPECT_EQ(Eval("-7 / 2"), -3);  // C-style truncation
  EXPECT_EQ(Eval("7 % 3"), 1);
  EXPECT_EQ(Eval("-7 % 3"), -1);
  EXPECT_EQ(Eval("5 - 9"), -4);
  EXPECT_EQ(Eval("-(3)"), -3);
}

TEST(Interp, BitwiseAndShifts) {
  EXPECT_EQ(Eval("12 & 10"), 8);
  EXPECT_EQ(Eval("12 | 10"), 14);
  EXPECT_EQ(Eval("12 ^ 10"), 6);
  EXPECT_EQ(Eval("~0"), -1);
  EXPECT_EQ(Eval("1 << 10"), 1024);
  EXPECT_EQ(Eval("-8 >> 1"), -4);  // arithmetic shift in the DSL
}

TEST(Interp, Comparisons) {
  EXPECT_EQ(Eval("3 < 4"), 1);
  EXPECT_EQ(Eval("4 < 4"), 0);
  EXPECT_EQ(Eval("4 <= 4"), 1);
  EXPECT_EQ(Eval("5 > 4"), 1);
  EXPECT_EQ(Eval("5 >= 6"), 0);
  EXPECT_EQ(Eval("5 == 5"), 1);
  EXPECT_EQ(Eval("5 != 5"), 0);
}

TEST(Interp, LogicalOps) {
  EXPECT_EQ(Eval("2 && 3"), 1);
  EXPECT_EQ(Eval("2 && 0"), 0);
  EXPECT_EQ(Eval("0 || 7"), 1);
  EXPECT_EQ(Eval("0 || 0"), 0);
  EXPECT_EQ(Eval("!5"), 0);
  EXPECT_EQ(Eval("!0"), 1);
}

TEST(Interp, Builtins) {
  EXPECT_EQ(Eval("min(3, -2)"), -2);
  EXPECT_EQ(Eval("max(3, -2)"), 3);
  EXPECT_EQ(Eval("abs(-9)"), 9);
  EXPECT_EQ(Eval("abs(9)"), 9);
}

TEST(Interp, Parameters) {
  EXPECT_EQ(Eval("a * b + c", {2, 3, 4}, "a, b, c"), 10);
}

TEST(Interp, ControlFlow) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    func collatz_steps(n) {
      var steps;
      steps = 0;
      while (n != 1) {
        if (n % 2 == 0) { n = n / 2; }
        else { n = 3 * n + 1; }
        steps = steps + 1;
      }
      return steps;
    }
    func main(n) { return collatz_steps(n); }
  )");
  Interpreter it(p.module);
  const std::vector<std::int64_t> args{27};
  EXPECT_EQ(it.Run("main", args).return_value, 111);
}

TEST(Interp, ForLoopSum) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    func main(n) {
      var i; var s;
      s = 0;
      for (i = 1; i <= n; i = i + 1) { s = s + i; }
      return s;
    })");
  Interpreter it(p.module);
  const std::vector<std::int64_t> args{100};
  EXPECT_EQ(it.Run("main", args).return_value, 5050);
}

TEST(Interp, ArraysAndGlobals) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    var total = 0;
    array data[8];
    func main(n) {
      var i;
      for (i = 0; i < n; i = i + 1) { data[i] = i * i; }
      for (i = 0; i < n; i = i + 1) { total = total + data[i]; }
      return total;
    })");
  Interpreter it(p.module);
  const std::vector<std::int64_t> args{8};
  EXPECT_EQ(it.Run("main", args).return_value, 140);
  EXPECT_EQ(it.GetScalar("total"), 140);
  EXPECT_EQ(it.GetArrayElem(*p.module.FindSymbol("data", -1), 3), 9);
}

TEST(Interp, WorkloadInstallation) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    var k;
    array v[4];
    func main() { return k * (v[0] + v[1] + v[2] + v[3]); })");
  Interpreter it(p.module);
  it.SetScalar("k", 3);
  const std::vector<std::int64_t> vals{1, 2, 3, 4};
  it.FillArray("v", vals);
  EXPECT_EQ(it.Run("main").return_value, 30);
  // Reset clears state back to declared initializers.
  it.Reset();
  EXPECT_EQ(it.GetScalar("k"), 0);
}

TEST(Interp, GlobalInitializers) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    var a = 41;
    func main() { return a + 1; })");
  Interpreter it(p.module);
  EXPECT_EQ(it.Run("main").return_value, 42);
}

TEST(Interp, ProfileCountsBlocks) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    func main(n) {
      var i; var s;
      for (i = 0; i < n; i = i + 1) { s = s + 1; }
      return s;
    })");
  Interpreter it(p.module);
  const std::vector<std::int64_t> args{10};
  it.Run("main", args);
  const Profile& prof = it.profile();
  // Some block ran exactly 10 times (the loop body).
  bool found10 = false, found11 = false;
  for (std::uint64_t c : prof.block_counts[0]) {
    if (c == 10) found10 = true;
    if (c == 11) found11 = true;  // the loop condition block
  }
  EXPECT_TRUE(found10);
  EXPECT_TRUE(found11);
  EXPECT_GT(prof.total_dynamic_ops, 0u);
  EXPECT_EQ(prof.call_count, 1u);
}

TEST(Interp, DataTraceIsEmitted) {
  struct Collector : TraceSink {
    std::vector<std::pair<std::uint32_t, bool>> events;
    void OnDataAccess(std::uint32_t address, bool is_write) override {
      events.emplace_back(address, is_write);
    }
  };
  const dsl::LoweredProgram p = dsl::Compile(R"(
    array a[4];
    func main() { a[1] = 5; return a[1]; })");
  Interpreter it(p.module);
  Collector sink;
  it.set_trace_sink(&sink);
  it.Run("main");
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_TRUE(sink.events[0].second);    // store first
  EXPECT_FALSE(sink.events[1].second);   // then load
  EXPECT_EQ(sink.events[0].first, sink.events[1].first);
}


TEST(Interp, BreakExitsInnermostLoop) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    func main(n) {
      var i; var s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        if (i == 5) { break; }
        s = s + i;
      }
      return s * 100 + i;
    })");
  Interpreter it(p.module);
  const std::vector<std::int64_t> args{100};
  // 0+1+2+3+4 = 10, i stops at 5.
  EXPECT_EQ(it.Run("main", args).return_value, 1005);
}

TEST(Interp, ContinueSkipsToStep) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    func main(n) {
      var i; var s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) { continue; }
        s = s + i;
      }
      return s;
    })");
  Interpreter it(p.module);
  const std::vector<std::int64_t> args{10};
  EXPECT_EQ(it.Run("main", args).return_value, 1 + 3 + 5 + 7 + 9);
}

TEST(Interp, ContinueInWhileReentersCondition) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    func main(n) {
      var s;
      s = 0;
      while (n > 0) {
        n = n - 1;
        if (n % 3 == 0) { continue; }
        s = s + n;
      }
      return s;
    })");
  Interpreter it(p.module);
  const std::vector<std::int64_t> args{10};
  // sums 1..9 minus multiples of 3 (and 0): 1+2+4+5+7+8 = 27
  EXPECT_EQ(it.Run("main", args).return_value, 27);
}

TEST(Interp, BreakInNestedLoopOnlyExitsInner) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    func main() {
      var i; var j; var s;
      s = 0;
      for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 10; j = j + 1) {
          if (j == 2) { break; }
          s = s + 1;
        }
      }
      return s;
    })");
  Interpreter it(p.module);
  EXPECT_EQ(it.Run("main").return_value, 8);  // 4 outer x 2 inner
}

TEST(Interp, RuntimeFaults) {
  const dsl::LoweredProgram oob = dsl::Compile(R"(
    array a[4];
    func main(i) { return a[i]; })");
  Interpreter it(oob.module);
  const std::vector<std::int64_t> bad{4};
  EXPECT_THROW(it.Run("main", bad), Error);
  const std::vector<std::int64_t> neg{-1};
  EXPECT_THROW(it.Run("main", neg), Error);

  const dsl::LoweredProgram div0 = dsl::Compile("func main(d) { return 1 / d; }");
  Interpreter it2(div0.module);
  const std::vector<std::int64_t> zero{0};
  EXPECT_THROW(it2.Run("main", zero), Error);

  const dsl::LoweredProgram inf = dsl::Compile(
      "func main() { while (1) { } return 0; }");
  Interpreter it3(inf.module);
  EXPECT_THROW(it3.Run("main", {}, 1000), Error);  // step limit
}

TEST(Interp, UnknownEntryThrows) {
  const dsl::LoweredProgram p = dsl::Compile("func main() { return 0; }");
  Interpreter it(p.module);
  EXPECT_THROW(it.Run("nope"), Error);
}

}  // namespace
}  // namespace lopass::interp
