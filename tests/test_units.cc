#include "common/units.h"

#include <gtest/gtest.h>

namespace lopass {
namespace {

TEST(Units, EnergyConversions) {
  const Energy e = Energy::from_millijoules(2.5);
  EXPECT_DOUBLE_EQ(e.joules, 2.5e-3);
  EXPECT_DOUBLE_EQ(e.millijoules(), 2.5);
  EXPECT_DOUBLE_EQ(e.microjoules(), 2500.0);
  EXPECT_DOUBLE_EQ(Energy::from_picojoules(1e6).microjoules(), 1.0);
  EXPECT_DOUBLE_EQ(Energy::from_nanojoules(1.0).picojoules(), 1000.0);
}

TEST(Units, EnergyArithmetic) {
  Energy a = Energy::from_microjoules(3.0);
  const Energy b = Energy::from_microjoules(1.5);
  EXPECT_DOUBLE_EQ((a + b).microjoules(), 4.5);
  EXPECT_DOUBLE_EQ((a - b).microjoules(), 1.5);
  EXPECT_DOUBLE_EQ((a * 2.0).microjoules(), 6.0);
  EXPECT_DOUBLE_EQ((2.0 * a).microjoules(), 6.0);
  EXPECT_DOUBLE_EQ((a / 3.0).microjoules(), 1.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.microjoules(), 4.5);
  a -= b;
  EXPECT_DOUBLE_EQ(a.microjoules(), 3.0);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(a.microjoules(), 12.0);
}

TEST(Units, EnergyComparison) {
  EXPECT_LT(Energy::from_nanojoules(1.0), Energy::from_nanojoules(2.0));
  EXPECT_NEAR(Energy::from_microjoules(1.0).joules,
              Energy::from_nanojoules(1000.0).joules, 1e-18);
  EXPECT_EQ(Energy::from_microjoules(2.0), Energy::from_microjoules(2.0));
}

TEST(Units, PowerTimesDurationIsEnergy) {
  const Power p = Power::from_milliwatts(10.0);        // 10 mW
  const Duration t = Duration::from_microseconds(5.0); // 5 us
  EXPECT_DOUBLE_EQ((p * t).nanojoules(), 50.0);
  EXPECT_DOUBLE_EQ((t * p).nanojoules(), 50.0);
}

TEST(Units, DurationConversions) {
  EXPECT_DOUBLE_EQ(Duration::from_nanoseconds(40.0).seconds, 40e-9);
  EXPECT_DOUBLE_EQ(Duration::from_milliseconds(1.0).microseconds(), 1000.0);
  EXPECT_LT(Duration::from_nanoseconds(10.0), Duration::from_nanoseconds(20.0));
}

TEST(Units, FormatEnergyPicksReadableSuffix) {
  EXPECT_EQ(FormatEnergy(Energy{0.0}), "0.0");
  EXPECT_EQ(FormatEnergy(Energy::from_millijoules(140.92)), "140.920mJ");
  EXPECT_EQ(FormatEnergy(Energy::from_microjoules(727.68)), "727.680uJ");
  EXPECT_EQ(FormatEnergy(Energy::from_nanojoules(12.5)), "12.500nJ");
  EXPECT_EQ(FormatEnergy(Energy::from_picojoules(3.0)), "3.000pJ");
  EXPECT_EQ(FormatEnergy(Energy{1.5}), "1.500J");
  // Negative values keep their sign.
  EXPECT_EQ(FormatEnergy(Energy::from_microjoules(-2.0)), "-2.000uJ");
}

TEST(Units, FormatPercent) {
  EXPECT_EQ(FormatPercent(-35.21), "-35.21");
  EXPECT_EQ(FormatPercent(69.64), "+69.64");
  EXPECT_EQ(FormatPercent(0.0), "+0.00");
}

}  // namespace
}  // namespace lopass
