#include "power/tech_library.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace lopass::power {
namespace {

TEST(TechLibrary, Cmos6HasAllResources) {
  const TechLibrary& lib = TechLibrary::Cmos6();
  for (int t = 0; t < kNumResourceTypes; ++t) {
    const ResourceSpec& s = lib.spec(static_cast<ResourceType>(t));
    EXPECT_GT(s.geq, 0.0) << ResourceTypeName(s.type);
    EXPECT_GT(s.average_power.watts, 0.0) << ResourceTypeName(s.type);
    EXPECT_GT(s.min_cycle_time.seconds, 0.0) << ResourceTypeName(s.type);
    EXPECT_GE(s.op_latency, 1u) << ResourceTypeName(s.type);
    EXPECT_GT(s.energy_per_op.joules, 0.0) << ResourceTypeName(s.type);
  }
}

TEST(TechLibrary, RelativeMagnitudesMatchDatapathReality) {
  // The algorithms depend on these orderings (e.g. sorted candidate
  // lists prefer the smaller adder over the ALU, Fig. 4 footnote 13).
  const TechLibrary& lib = TechLibrary::Cmos6();
  const auto geq = [&](ResourceType t) { return lib.spec(t).geq; };
  EXPECT_LT(geq(ResourceType::kAdder), geq(ResourceType::kAlu));
  EXPECT_LT(geq(ResourceType::kComparator), geq(ResourceType::kAdder));
  EXPECT_LT(geq(ResourceType::kAlu), geq(ResourceType::kMultiplier));
  EXPECT_LT(geq(ResourceType::kMultiplier), geq(ResourceType::kDivider));
  EXPECT_LT(geq(ResourceType::kRegister), geq(ResourceType::kComparator));

  const auto p = [&](ResourceType t) { return lib.spec(t).average_power; };
  EXPECT_LT(p(ResourceType::kAdder), p(ResourceType::kAlu));
  EXPECT_LT(p(ResourceType::kAlu), p(ResourceType::kMultiplier));
}

TEST(TechLibrary, SequentialDividerIsSlowButFrugal) {
  // The area-efficient radix-2 divider: long latency, below-multiplier
  // power. This is what makes the paper's "trick" trade time for
  // energy.
  const TechLibrary& lib = TechLibrary::Cmos6();
  EXPECT_GE(lib.spec(ResourceType::kDivider).op_latency, 16u);
  EXPECT_LT(lib.spec(ResourceType::kDivider).average_power,
            lib.spec(ResourceType::kMultiplier).average_power);
}

TEST(TechLibrary, IdleEnergyScalesWithCyclesAndFraction) {
  TechLibrary lib = TechLibrary::Cmos6();
  const Energy e1 = lib.idle_energy(ResourceType::kAlu, 1000);
  const Energy e2 = lib.idle_energy(ResourceType::kAlu, 2000);
  EXPECT_NEAR(e2.joules, 2.0 * e1.joules, 1e-18);

  lib.set_idle_power_fraction(0.9);
  const Energy e3 = lib.idle_energy(ResourceType::kAlu, 1000);
  EXPECT_GT(e3, e1);
  // An idle, non-gated resource burns less than an active one per cycle.
  const TechLibrary& ref = TechLibrary::Cmos6();
  const Energy active = ref.active_energy(ResourceType::kAlu, 1);
  const Energy idle_per_cycle = ref.idle_energy(ResourceType::kAlu, 1);
  EXPECT_LT(idle_per_cycle, active);
}

TEST(TechLibrary, ActiveEnergyScalesWithOps) {
  const TechLibrary& lib = TechLibrary::Cmos6();
  EXPECT_DOUBLE_EQ(lib.active_energy(ResourceType::kMultiplier, 10).joules,
                   10.0 * lib.spec(ResourceType::kMultiplier).energy_per_op.joules);
  EXPECT_DOUBLE_EQ(lib.active_energy(ResourceType::kAlu, 0).joules, 0.0);
}

TEST(TechLibrary, BusWriteCostsMoreThanRead) {
  // Footnote 9: reads and writes imply different amounts of energy.
  const TechLibrary& lib = TechLibrary::Cmos6();
  EXPECT_GT(lib.bus_write_energy(), lib.bus_read_energy());
  EXPECT_GT(lib.bus_read_energy().joules, 0.0);
  // A bus transfer is in the nJ range for a 0.8u shared bus.
  EXPECT_GT(lib.bus_read_energy().nanojoules(), 0.1);
  EXPECT_LT(lib.bus_read_energy().nanojoules(), 100.0);
}

TEST(TechLibrary, IdleFractionValidation) {
  TechLibrary lib;
  EXPECT_THROW(lib.set_idle_power_fraction(-0.1), lopass::Error);
  EXPECT_THROW(lib.set_idle_power_fraction(1.5), lopass::Error);
  EXPECT_NO_THROW(lib.set_idle_power_fraction(0.0));
  EXPECT_NO_THROW(lib.set_idle_power_fraction(1.0));
}

TEST(TechLibrary, ClockPeriodFromFrequency) {
  TechParams p;
  p.clock_mhz = 25.0;
  EXPECT_NEAR(p.clock_period().nanoseconds(), 40.0, 1e-9);
}

TEST(TechLibrary, EveryResourceMeetsTheSystemClock) {
  const TechLibrary& lib = TechLibrary::Cmos6();
  for (int t = 0; t < kNumResourceTypes; ++t) {
    EXPECT_LE(lib.spec(static_cast<ResourceType>(t)).min_cycle_time.seconds,
              lib.params().clock_period().seconds)
        << ResourceTypeName(static_cast<ResourceType>(t));
  }
}


TEST(TechLibrary, ConstantFieldScaling) {
  const TechLibrary& base = TechLibrary::Cmos6();
  const TechLibrary half = base.ScaledTo(0.4);  // s = 0.5
  EXPECT_DOUBLE_EQ(half.params().feature_um, 0.4);
  EXPECT_NEAR(half.params().vdd, base.params().vdd * 0.5, 1e-12);
  EXPECT_NEAR(half.params().clock_mhz, base.params().clock_mhz * 2.0, 1e-9);
  for (int t = 0; t < kNumResourceTypes; ++t) {
    const ResourceSpec& a = base.spec(static_cast<ResourceType>(t));
    const ResourceSpec& b = half.spec(static_cast<ResourceType>(t));
    // Gate counts are node independent; energy ~ s^3; delay ~ s;
    // power ~ s^2.
    EXPECT_DOUBLE_EQ(b.geq, a.geq);
    EXPECT_NEAR(b.energy_per_op.joules, a.energy_per_op.joules * 0.125, 1e-18);
    EXPECT_NEAR(b.min_cycle_time.seconds, a.min_cycle_time.seconds * 0.5, 1e-15);
    EXPECT_NEAR(b.average_power.watts, a.average_power.watts * 0.25, 1e-12);
    EXPECT_EQ(b.op_latency, a.op_latency);
  }
  // Scaling up also works and rejects nonsense.
  EXPECT_NO_THROW(base.ScaledTo(1.6));
  EXPECT_THROW(base.ScaledTo(0.0), lopass::Error);
}

TEST(TechLibrary, ResourceTypeNames) {
  EXPECT_STREQ(ResourceTypeName(ResourceType::kAlu), "ALU");
  EXPECT_STREQ(ResourceTypeName(ResourceType::kMultiplier), "multiplier");
  EXPECT_STREQ(ResourceTypeName(ResourceType::kMemoryPort), "memport");
}

}  // namespace
}  // namespace lopass::power
