#include "core/partitioner.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/hotspots.h"
#include "dsl/lower.h"

namespace lopass::core {
namespace {

// A program with one clearly profitable hot loop and cold neighbors.
const char* kHotCold = R"(
  var n;
  array sig[1024];
  array coeff[16];
  array out[1024];
  var peak;
  func main() {
    var i; var j;
    for (i = 0; i < n - 16; i = i + 1) {
      var acc;
      acc = 0;
      for (j = 0; j < 16; j = j + 1) { acc = acc + sig[i + j] * coeff[j]; }
      out[i] = acc >> 8;
    }
    peak = 0;
    for (i = 0; i < n - 16; i = i + 8) { peak = max(peak, abs(out[i])); }
    return peak;
  })";

Workload HotColdWorkload(int n = 512) {
  Workload w;
  w.setup = [n](DataTarget& t) {
    t.SetScalar("n", n);
    std::vector<std::int64_t> sig, co;
    for (int i = 0; i < n; ++i) sig.push_back((i * 37) % 256 - 128);
    for (int i = 0; i < 16; ++i) co.push_back(8 + (i % 5));
    t.FillArray("sig", sig);
    t.FillArray("coeff", co);
  };
  return w;
}

PartitionResult RunDefault(const std::string& src, const Workload& w,
                           PartitionOptions opts = PartitionOptions{}) {
  const dsl::LoweredProgram p = dsl::Compile(src);
  Partitioner part(p.module, p.regions, std::move(opts));
  return part.Run(w);
}

TEST(Partitioner, SelectsTheHotLoop) {
  const PartitionResult r = RunDefault(kHotCold, HotColdWorkload());
  ASSERT_TRUE(r.partitioned());
  ASSERT_EQ(r.selected.size(), 1u);
  // The selected cluster is the FIR loop (first loop in the program).
  const Cluster& c = r.chain.clusters[static_cast<std::size_t>(r.selected[0].cluster_id)];
  EXPECT_EQ(c.kind, ir::RegionKind::kLoop);
  EXPECT_GT(r.selected[0].core.utilization, 0.0);
}

TEST(Partitioner, SavesEnergy) {
  const PartitionResult r = RunDefault(kHotCold, HotColdWorkload());
  const AppRow row = r.ToRow("fir");
  EXPECT_LT(row.saving_percent(), -10.0);
  EXPECT_LT(row.partitioned.total(), row.initial.total());
  // The ASIC core consumes something, the residual µP less than before.
  EXPECT_GT(row.partitioned.asic_core.joules, 0.0);
  EXPECT_LT(row.partitioned.up_core, row.initial.up_core);
}

TEST(Partitioner, PartitionedRunComputesTheSameResult) {
  // Eq. 3's premise: the partition changes *where* code runs, never
  // what it computes.
  const PartitionResult r = RunDefault(kHotCold, HotColdWorkload());
  EXPECT_EQ(r.initial_run.return_value, r.partitioned_run.return_value);
}

TEST(Partitioner, RespectsUtilizationGate) {
  // Every feasible evaluation satisfied U_R > U_µP (Fig. 1 line 9).
  const PartitionResult r = RunDefault(kHotCold, HotColdWorkload());
  for (const ClusterEvaluation& ev : r.evaluations) {
    if (ev.feasible) { EXPECT_GT(ev.u_asic, ev.u_up) << ev.cluster_label; }
  }
}

TEST(Partitioner, CellCapRejectsLargeCores) {
  PartitionOptions opts;
  opts.max_cells = 100.0;  // absurdly small: nothing fits
  const PartitionResult r = RunDefault(kHotCold, HotColdWorkload(), opts);
  EXPECT_FALSE(r.partitioned());
  for (const ClusterEvaluation& ev : r.evaluations) {
    EXPECT_FALSE(ev.feasible);
  }
}

TEST(Partitioner, HardwareWeightCanVeto) {
  // With a huge G weight in the objective function, additional hardware
  // is never worth it (the paper's F-balance rejecting trick's costly
  // clusters).
  PartitionOptions opts;
  opts.objective.g = 1000.0;
  const PartitionResult r = RunDefault(kHotCold, HotColdWorkload(), opts);
  EXPECT_FALSE(r.partitioned());
}

TEST(Partitioner, PreselectLimitsEvaluations) {
  PartitionOptions narrow;
  narrow.max_preselect = 1;
  const PartitionResult r1 = RunDefault(kHotCold, HotColdWorkload(), narrow);
  PartitionOptions wide;
  wide.max_preselect = 8;
  const PartitionResult r2 = RunDefault(kHotCold, HotColdWorkload(), wide);
  // Evaluations scale with the pre-selection width.
  EXPECT_LT(r1.evaluations.size(), r2.evaluations.size() + 1);
  std::set<int> c1, c2;
  for (const auto& ev : r1.evaluations) c1.insert(ev.cluster_id);
  for (const auto& ev : r2.evaluations) c2.insert(ev.cluster_id);
  EXPECT_EQ(c1.size(), 1u);
  EXPECT_GE(c2.size(), c1.size());
}

TEST(Partitioner, EvaluationsRecordBothOutcomes) {
  const PartitionResult r = RunDefault(kHotCold, HotColdWorkload());
  bool any_feasible = false;
  for (const ClusterEvaluation& ev : r.evaluations) {
    if (ev.feasible) {
      any_feasible = true;
      EXPECT_GT(ev.objective, 0.0);
      EXPECT_GT(ev.geq, 0.0);
      EXPECT_GT(ev.asic_cycles, 0u);
    } else {
      EXPECT_FALSE(ev.reject_reason.empty());
    }
  }
  EXPECT_TRUE(any_feasible);
}

TEST(Partitioner, CacheAdaptationChangesPartitionedEnergy) {
  // Footnote 4: the partitioned system may adapt its caches. A smaller
  // i-cache for the shrunken residual code changes the i-cache energy.
  PartitionOptions adapted;
  adapted.partitioned_config = iss::SystemConfig{};
  adapted.partitioned_config->icache.capacity_bytes = 512;
  const PartitionResult ra = RunDefault(kHotCold, HotColdWorkload(), adapted);
  const PartitionResult rb = RunDefault(kHotCold, HotColdWorkload());
  ASSERT_TRUE(ra.partitioned());
  ASSERT_TRUE(rb.partitioned());
  EXPECT_NE(ra.partitioned_run.energy.icache.joules,
            rb.partitioned_run.energy.icache.joules);
}

TEST(Partitioner, TransfersAppearInThePartitionedRun) {
  const PartitionResult r = RunDefault(kHotCold, HotColdWorkload());
  ASSERT_TRUE(r.partitioned());
  if (r.selected[0].transfers.total_words() > 0) {
    EXPECT_GT(r.partitioned_run.transfer_words_in +
                  r.partitioned_run.transfer_words_out,
              0u);
  }
}

TEST(Partitioner, NoCandidatesMeansNoPartition) {
  // Straight-line program: no loops, no if-else, nothing to map.
  const PartitionResult r =
      RunDefault("var a; func main() { return a * 3 + 1; }", Workload{});
  EXPECT_FALSE(r.partitioned());
  const AppRow row = r.ToRow("straight");
  EXPECT_DOUBLE_EQ(row.saving_percent(), 0.0);
  EXPECT_EQ(row.cluster, "(none)");
}

TEST(Partitioner, MultiClusterGreedySelection) {
  // Two hot independent loops; allow two HW clusters.
  const char* two_hot = R"(
    var n;
    array a1[512]; array b1[512];
    var s1; var s2;
    func main() {
      var i;
      for (i = 0; i < n; i = i + 1) { s1 = s1 + a1[i] * 3 + (a1[i] >> 2); }
      for (i = 0; i < n; i = i + 1) { s2 = s2 + b1[i] * 5 - (b1[i] >> 1); }
      return s1 + s2;
    })";
  Workload w;
  w.setup = [](DataTarget& t) {
    t.SetScalar("n", 512);
    std::vector<std::int64_t> v;
    for (int i = 0; i < 512; ++i) v.push_back(i % 97);
    t.FillArray("a1", v);
    t.FillArray("b1", v);
  };
  PartitionOptions opts;
  opts.max_hw_clusters = 2;
  const PartitionResult r = RunDefault(two_hot, w, opts);
  ASSERT_TRUE(r.partitioned());
  EXPECT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.initial_run.return_value, r.partitioned_run.return_value);
  const AppRow row = r.ToRow("two-hot");
  EXPECT_LT(row.saving_percent(), -20.0);
}


TEST(Partitioner, PerformanceStrategySkipsUtilizationGate) {
  PartitionOptions opts;
  opts.strategy = Strategy::kPerformance;
  const PartitionResult r = RunDefault(kHotCold, HotColdWorkload(), opts);
  ASSERT_TRUE(r.partitioned());
  // Same functional behaviour either way.
  EXPECT_EQ(r.initial_run.return_value, r.partitioned_run.return_value);
  const AppRow row = r.ToRow("fir");
  EXPECT_LT(row.time_change_percent(), 0.0);
}

TEST(Partitioner, PerformanceStrategyRefusesSlowerHardware) {
  // A division recurrence: the ASIC's 32-cycle sequential divider makes
  // hardware slower. The performance baseline must decline; the
  // low-power strategy accepts (it is an energy win).
  const char* divy = R"(
    var n; var x; var acc;
    func main() {
      var i;
      for (i = 0; i < n; i = i + 1) {
        x = x + (4096 - x) / 17;
        x = x - x / 9;
        acc = acc + x / 7;
      }
      return acc;
    })";
  Workload w;
  w.setup = [](DataTarget& t) {
    t.SetScalar("n", 4000);
    t.SetScalar("x", 100);
  };
  PartitionOptions perf;
  perf.strategy = Strategy::kPerformance;
  const PartitionResult rp = RunDefault(divy, w, perf);
  EXPECT_FALSE(rp.partitioned());

  const PartitionResult rl = RunDefault(divy, w);
  ASSERT_TRUE(rl.partitioned());
  const AppRow row = rl.ToRow("divy");
  EXPECT_LT(row.saving_percent(), -50.0);
  EXPECT_GT(row.time_change_percent(), 0.0);
}

TEST(Partitioner, ChainingReducesAsicControlSteps) {
  // Chaining packs dependent single-cycle ops into shared steps: for
  // every (cluster, resource set) pairing that schedules, the chained
  // schedule needs at most as many ASIC control steps. Note it may
  // *lower* U_R (chained ops occupy separate functional units), so
  // feasibility can legitimately change — compare per evaluation, not
  // the final selection.
  PartitionOptions chained;
  chained.scheduler.enable_chaining = true;
  const PartitionResult rc = RunDefault(kHotCold, HotColdWorkload(), chained);
  const PartitionResult rp = RunDefault(kHotCold, HotColdWorkload());
  int compared = 0;
  for (const ClusterEvaluation& ec : rc.evaluations) {
    for (const ClusterEvaluation& ep : rp.evaluations) {
      if (ec.cluster_id == ep.cluster_id && ec.resource_set == ep.resource_set &&
          ec.asic_cycles > 0 && ep.asic_cycles > 0) {
        EXPECT_LE(ec.asic_cycles, ep.asic_cycles)
            << ec.cluster_label << " / " << ec.resource_set;
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 0);
  // Functional behaviour is unchanged regardless of selection.
  EXPECT_EQ(rc.initial_run.return_value, rp.initial_run.return_value);
}

TEST(Report, CsvExportHasHeaderAndRows) {
  const PartitionResult r = RunDefault(kHotCold, HotColdWorkload());
  const std::string csv = ToCsv({r.ToRow("fir")});
  EXPECT_NE(csv.find("app,icache_i"), std::string::npos);
  EXPECT_NE(csv.find("fir,"), std::string::npos);
  // Two lines: header + one row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}


TEST(Hotspots, SharesSumAndOrder) {
  const PartitionResult r = RunDefault(kHotCold, HotColdWorkload());
  const auto hs = ComputeHotspots(r.chain, r.initial_run);
  ASSERT_FALSE(hs.empty());
  // Sorted by energy descending; shares within [0,1]; totals match the
  // initial run (every block belongs to exactly one chain member, and
  // shadow function clusters are absent here).
  double cycle_total = 0.0;
  for (std::size_t i = 0; i < hs.size(); ++i) {
    if (i) EXPECT_LE(hs[i].energy.joules, hs[i - 1].energy.joules);
    EXPECT_GE(hs[i].cycle_share, 0.0);
    EXPECT_LE(hs[i].cycle_share, 1.0);
    if (hs[i].cluster_id < r.chain.chain_length) cycle_total += hs[i].cycle_share;
  }
  EXPECT_NEAR(cycle_total, 1.0, 1e-9);
  // The FIR loop dominates.
  EXPECT_GT(hs.front().energy_share, 0.5);
  EXPECT_TRUE(hs.front().hw_candidate);
  // Render mentions the top cluster.
  const std::string text = RenderHotspots(hs);
  EXPECT_NE(text.find(hs.front().label), std::string::npos);
}

TEST(Partitioner, ObjectiveFunctionHelpers) {
  ObjectiveParams p;
  p.f = 2.0;
  p.g = 0.5;
  p.geq_norm = 1000.0;
  EXPECT_DOUBLE_EQ(BaselineObjective(p), 2.0);
  EXPECT_DOUBLE_EQ(
      Objective(Energy{0.5}, Energy{1.0}, 500.0, p),
      2.0 * 0.5 + 0.5 * 0.5);
  // Zero reference energy does not divide by zero.
  EXPECT_NO_THROW(Objective(Energy{1.0}, Energy{0.0}, 0.0, p));
}

}  // namespace
}  // namespace lopass::core
