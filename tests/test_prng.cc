#include "common/prng.h"

#include <gtest/gtest.h>

namespace lopass {
namespace {

TEST(Prng, DeterministicForSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Prng, NextBelowRespectsBound) {
  Prng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Prng, NextInIsInclusive) {
  Prng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, NextDoubleInUnitInterval) {
  Prng r(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace lopass
