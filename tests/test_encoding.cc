#include "isa/encoding.h"

#include <gtest/gtest.h>

#include "apps/app.h"
#include "common/prng.h"
#include "dsl/lower.h"
#include "isa/codegen.h"

namespace lopass::isa {
namespace {

SlInstr RoundTrip(const SlInstr& in, int expect_words = 0) {
  std::vector<std::uint32_t> words;
  const int emitted = Encode(in, words);
  if (expect_words > 0) { EXPECT_EQ(emitted, expect_words); }
  int consumed = 0;
  const SlInstr back = Decode(words, consumed);
  EXPECT_EQ(consumed, emitted);
  EXPECT_TRUE(ArchEqual(in, back)) << SlOpName(in.op);
  return back;
}

TEST(Encoding, SimpleForms) {
  SlInstr nop;
  nop.op = SlOp::kNop;
  RoundTrip(nop, 1);

  SlInstr ret;
  ret.op = SlOp::kRet;
  RoundTrip(ret, 1);

  SlInstr add;
  add.op = SlOp::kAdd;
  add.rd = 8;
  add.rs1 = 9;
  add.rs2 = 10;
  RoundTrip(add, 1);

  SlInstr addi;
  addi.op = SlOp::kAdd;
  addi.rd = 8;
  addi.rs1 = 8;
  addi.use_imm = true;
  addi.imm = -1;
  RoundTrip(addi, 1);
}

TEST(Encoding, ImmediateBoundaries) {
  SlInstr li;
  li.op = SlOp::kLi;
  li.rd = 5;
  li.imm = (1 << 20) - 1;  // max single-word simm21
  RoundTrip(li, 1);
  li.imm = 1 << 20;  // needs extension
  RoundTrip(li, 2);
  li.imm = -(1 << 20) + 1;
  RoundTrip(li, 1);
  li.imm = -(1 << 20);  // the sentinel itself must take the extension
  RoundTrip(li, 2);
  li.imm = INT32_MIN;
  RoundTrip(li, 2);
  li.imm = INT32_MAX;
  RoundTrip(li, 2);
}

TEST(Encoding, MemoryOffsets) {
  SlInstr ld;
  ld.op = SlOp::kLd;
  ld.rd = 8;
  ld.rs1 = 0;
  ld.imm = 32767;
  RoundTrip(ld, 1);
  ld.imm = 70000;  // big static data offset: extended form
  RoundTrip(ld, 2);
  SlInstr st = ld;
  st.op = SlOp::kSt;
  st.imm = 131072;
  RoundTrip(st, 2);
}

TEST(Encoding, Branches) {
  SlInstr b;
  b.op = SlOp::kBnez;
  b.rs1 = 12;
  b.target = 123456;
  RoundTrip(b, 1);
  SlInstr j;
  j.op = SlOp::kJ;
  j.target = (1 << 26) - 1;
  RoundTrip(j, 1);
  SlInstr call;
  call.op = SlOp::kCall;
  call.target = 42;
  RoundTrip(call, 1);
}

TEST(Encoding, RejectsBadFields) {
  SlInstr add;
  add.op = SlOp::kAdd;
  add.rd = 40;  // no such register
  std::vector<std::uint32_t> out;
  EXPECT_THROW(Encode(add, out), Error);

  SlInstr b;
  b.op = SlOp::kBeqz;
  b.rs1 = 1;
  b.target = -1;
  EXPECT_THROW(Encode(b, out), Error);
}

TEST(Encoding, RandomizedRoundTrip) {
  Prng rng(0xc0de);
  static const SlOp kOps[] = {SlOp::kAdd, SlOp::kSub, SlOp::kAnd, SlOp::kOr,
                              SlOp::kXor, SlOp::kSll, SlOp::kSrl, SlOp::kSra,
                              SlOp::kMul, SlOp::kDiv, SlOp::kMod, SlOp::kMin,
                              SlOp::kMax, SlOp::kSeq, SlOp::kSne, SlOp::kSlt,
                              SlOp::kSle, SlOp::kSgt, SlOp::kSge};
  for (int i = 0; i < 3000; ++i) {
    SlInstr in;
    in.op = kOps[rng.next_below(sizeof(kOps) / sizeof(kOps[0]))];
    in.rd = static_cast<std::int16_t>(rng.next_below(32));
    in.rs1 = static_cast<std::int16_t>(rng.next_below(32));
    if (rng.next_below(2)) {
      in.use_imm = true;
      in.imm = rng.next_in(INT32_MIN / 2, INT32_MAX / 2);
    } else {
      in.rs2 = static_cast<std::int16_t>(rng.next_below(32));
    }
    RoundTrip(in);
  }
}

TEST(Encoding, WholeAppProgramsRoundTrip) {
  for (const char* name : {"3d", "engine"}) {
    const apps::Application app = apps::GetApplication(name);
    const dsl::LoweredProgram p = dsl::Compile(app.dsl_source);
    const SlProgram prog = Generate(p.module);
    const EncodedProgram image = EncodeProgram(prog);
    EXPECT_EQ(image.word_of.size(), prog.code.size());
    // Image is at least one word per instruction, at most two.
    EXPECT_GE(image.words.size(), prog.code.size());
    EXPECT_LE(image.words.size(), 2 * prog.code.size());

    const std::vector<SlInstr> back = DecodeProgram(image);
    ASSERT_EQ(back.size(), prog.code.size()) << name;
    for (std::size_t i = 0; i < back.size(); ++i) {
      EXPECT_TRUE(ArchEqual(prog.code[i], back[i])) << name << " @" << i;
    }
  }
}

TEST(Encoding, ImageSizeAccounting) {
  const dsl::LoweredProgram p =
      dsl::Compile("func main(a) { return a * 5000000 + 3; }");
  const SlProgram prog = Generate(p.module);
  const EncodedProgram image = EncodeProgram(prog);
  EXPECT_EQ(image.size_bytes(), image.words.size() * 4);
  // The large constant forces at least one extended (2-word) encoding.
  EXPECT_GT(image.words.size(), prog.code.size());
}

}  // namespace
}  // namespace lopass::isa
