// The diagnostics engine and its golden outputs: the structured
// Diagnostic/DiagnosticSink/Result<T> layer, DSL error *recovery* (all
// the errors of a bad file, with source locations, in one pass), and
// the CLI-facing fill-spec parser.

#include <gtest/gtest.h>

#include "common/diag.h"
#include "core/workload.h"
#include "dsl/lexer.h"
#include "dsl/lower.h"
#include "dsl/parser.h"

namespace lopass {
namespace {

// --- engine ------------------------------------------------------------

TEST(Diag, ToStringFormats) {
  const Diagnostic d{Severity::kError, "parse.syntax", SourceLoc{3, 7},
                     "expected ';'"};
  EXPECT_EQ(d.ToString(), "error[parse.syntax] 3:7: expected ';'");
  const Diagnostic no_loc{Severity::kWarning, "sched.cap", SourceLoc{}, "capped"};
  EXPECT_EQ(no_loc.ToString(), "warning[sched.cap]: capped");
}

TEST(Diag, SinkCountsAndSeverities) {
  DiagnosticSink sink;
  EXPECT_FALSE(sink.has_errors());
  sink.AddNote("a.b", "note");
  sink.AddWarning("a.b", "warn");
  EXPECT_FALSE(sink.has_errors());
  sink.AddError("a.b", "err", SourceLoc{2, 1});
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.error_count(), 1u);
  EXPECT_EQ(sink.diagnostics().size(), 3u);
}

TEST(Diag, SinkIsBoundedButKeepsCounting) {
  DiagnosticSink sink(/*max_diagnostics=*/2);
  for (int i = 0; i < 5; ++i) sink.AddError("x.y", "e" + std::to_string(i));
  EXPECT_EQ(sink.diagnostics().size(), 2u);
  EXPECT_EQ(sink.error_count(), 5u);
  EXPECT_EQ(sink.dropped(), 3u);
  EXPECT_TRUE(sink.overflowed());
  EXPECT_NE(sink.ToString().find("3 further diagnostic"), std::string::npos);
}

TEST(Diag, ResultValueAndFailure) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.ValueOrThrow(), 42);

  Result<int> bad = Result<int>::Failure(
      Diagnostic{Severity::kError, "t.f", SourceLoc{1, 2}, "nope"});
  EXPECT_FALSE(bad.ok());
  ASSERT_EQ(bad.diagnostics().size(), 1u);
  EXPECT_THROW(bad.ValueOrThrow(), Error);
}

// --- golden malformed-DSL diagnostics ----------------------------------

std::vector<Diagnostic> CompileDiags(const std::string& src) {
  Result<dsl::LoweredProgram> r = dsl::CompileToResult(src);
  EXPECT_FALSE(r.ok()) << "expected compilation to fail";
  return r.diagnostics();
}

TEST(DiagGolden, UnterminatedStringLiteral) {
  const auto diags = CompileDiags(
      "var x;\n"
      "func main() {\n"
      "  x = \"oops;\n"
      "  return x;\n"
      "}\n");
  ASSERT_FALSE(diags.empty());
  const Diagnostic& d = diags.front();
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.code, "lex.invalid");
  EXPECT_EQ(d.message, "unterminated string literal");
  EXPECT_EQ(d.loc.line, 3);
  EXPECT_EQ(d.loc.col, 7);
}

TEST(DiagGolden, StringLiteralsRejectedWithLocation) {
  const auto diags = CompileDiags(
      "var x;\n"
      "func main() { x = \"hi\"; return x; }\n");
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags.front().code, "lex.invalid");
  EXPECT_EQ(diags.front().message,
            "string literals are not supported in the lopass DSL");
  EXPECT_EQ(diags.front().loc.line, 2);
}

TEST(DiagGolden, UnknownIdentifier) {
  const auto diags = CompileDiags(
      "var x;\n"
      "func main() {\n"
      "  x = nonesuch + 1;\n"
      "  return x;\n"
      "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "lower.semantic");
  EXPECT_EQ(diags[0].message, "undeclared identifier 'nonesuch'");
  EXPECT_EQ(diags[0].loc.line, 3);
}

TEST(DiagGolden, RecoveryReportsEverySyntaxError) {
  // Two independent statement-level syntax errors: recovery must
  // synchronize past the first and still find the second.
  const auto diags = CompileDiags(
      "var a; var b;\n"
      "func main() {\n"
      "  a = 1 +;\n"
      "  b = 2;\n"
      "  b = * 3;\n"
      "  return a + b;\n"
      "}\n");
  ASSERT_GE(diags.size(), 2u);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_EQ(d.code, "parse.syntax");
  }
  EXPECT_EQ(diags[0].loc.line, 3);
  EXPECT_EQ(diags[1].loc.line, 5);
}

TEST(DiagGolden, RecoveryNeverLoopsOnGarbage) {
  // Pathological soup: must terminate with diagnostics, not hang.
  const auto diags = CompileDiags("func { } } ) ( ; ; @ # $ func var }{");
  EXPECT_FALSE(diags.empty());
}

TEST(DiagGolden, ThrowingEntryPointsStillThrow) {
  EXPECT_THROW((void)dsl::Compile("func main( { return 0; }"), Error);
  EXPECT_THROW((void)dsl::Tokenize("func main() { @ }"), Error);
}

// --- fill-spec parsing (the CLI's --fill) ------------------------------

TEST(FillSpec, RampAndRandParse) {
  Result<core::FillSpec> ramp = core::ParseFillSpec("a=ramp:4:3");
  ASSERT_TRUE(ramp.ok());
  EXPECT_EQ(ramp.value().name, "a");
  EXPECT_EQ(ramp.value().values, (std::vector<std::int64_t>{0, 3, 6, 9}));

  Result<core::FillSpec> rand = core::ParseFillSpec("sig=rand:16:-5:5:99");
  ASSERT_TRUE(rand.ok());
  EXPECT_EQ(rand.value().values.size(), 16u);
  for (std::int64_t v : rand.value().values) {
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  // Deterministic per seed.
  Result<core::FillSpec> again = core::ParseFillSpec("sig=rand:16:-5:5:99");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(rand.value().values, again.value().values);
}

TEST(FillSpec, GoldenBadSpecs) {
  struct Case {
    const char* spec;
    const char* message;
  };
  const Case cases[] = {
      {"noequals", "fill spec 'noequals' is missing '=' (want NAME=KIND:...)"},
      {"a=wave:4", "unknown fill kind 'wave' for 'a' (want rand or ramp)"},
      {"a=rand:4:1", "rand fill for 'a' wants rand:COUNT:LO:HI[:SEED], got 'rand:4:1'"},
      {"a=rand:many:0:9", "rand fill for 'a': COUNT 'many' is not an integer"},
      {"a=rand:4:9:0", "rand fill for 'a': LO 9 exceeds HI 0"},
      {"a=ramp:-3", "ramp fill for 'a': COUNT -3 out of range [0, 16777216]"},
      {"a=ramp:4:x", "ramp fill for 'a': STEP 'x' is not an integer"},
      {"=ramp:4", "fill spec '=ramp:4' has an empty array name"},
  };
  for (const Case& c : cases) {
    Result<core::FillSpec> r = core::ParseFillSpec(c.spec);
    ASSERT_FALSE(r.ok()) << c.spec;
    ASSERT_EQ(r.diagnostics().size(), 1u) << c.spec;
    EXPECT_EQ(r.diagnostics()[0].code, "cli.fill") << c.spec;
    EXPECT_EQ(r.diagnostics()[0].message, c.message) << c.spec;
  }
}

}  // namespace
}  // namespace lopass
