#include "dsl/lexer.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace lopass::dsl {
namespace {

std::vector<TokKind> KindsOf(std::string_view src) {
  std::vector<TokKind> kinds;
  for (const Token& t : Tokenize(src)) kinds.push_back(t.kind);
  return kinds;
}

TEST(Lexer, Keywords) {
  const auto k = KindsOf("func var array if else while for return");
  const std::vector<TokKind> want = {
      TokKind::kFunc, TokKind::kVar, TokKind::kArray, TokKind::kIf, TokKind::kElse,
      TokKind::kWhile, TokKind::kFor, TokKind::kReturn, TokKind::kEof};
  EXPECT_EQ(k, want);
}

TEST(Lexer, IdentifiersAndIntegers) {
  const auto toks = Tokenize("abc _x9 42 0x1F");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "abc");
  EXPECT_EQ(toks[1].text, "_x9");
  EXPECT_EQ(toks[2].kind, TokKind::kInt);
  EXPECT_EQ(toks[2].value, 42);
  EXPECT_EQ(toks[3].value, 0x1F);
}

TEST(Lexer, TwoCharOperators) {
  const auto k = KindsOf("== != <= >= << >> && ||");
  const std::vector<TokKind> want = {TokKind::kEq, TokKind::kNe, TokKind::kLe,
                                     TokKind::kGe, TokKind::kShl, TokKind::kShr,
                                     TokKind::kAmpAmp, TokKind::kPipePipe, TokKind::kEof};
  EXPECT_EQ(k, want);
}

TEST(Lexer, SingleCharOperatorsDontEatNeighbors) {
  const auto k = KindsOf("<= < =");
  const std::vector<TokKind> want = {TokKind::kLe, TokKind::kLt, TokKind::kAssign,
                                     TokKind::kEof};
  EXPECT_EQ(k, want);
}

TEST(Lexer, CommentsAreSkipped) {
  const auto k = KindsOf("a // line comment\n b /* block\n comment */ c");
  const std::vector<TokKind> want = {TokKind::kIdent, TokKind::kIdent, TokKind::kIdent,
                                     TokKind::kEof};
  EXPECT_EQ(k, want);
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = Tokenize("a\nb\n  c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_EQ(toks[2].col, 3);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(Tokenize("a /* never closed"), Error);
}

TEST(Lexer, UnknownCharacterThrows) {
  EXPECT_THROW(Tokenize("a $ b"), Error);
  EXPECT_THROW(Tokenize("a @ b"), Error);
}

TEST(Lexer, MalformedHexThrows) {
  EXPECT_THROW(Tokenize("0x"), Error);
  EXPECT_THROW(Tokenize("0xZ"), Error);
}

TEST(Lexer, Punctuation) {
  const auto k = KindsOf("( ) { } [ ] , ;");
  const std::vector<TokKind> want = {
      TokKind::kLParen, TokKind::kRParen, TokKind::kLBrace, TokKind::kRBrace,
      TokKind::kLBracket, TokKind::kRBracket, TokKind::kComma, TokKind::kSemi,
      TokKind::kEof};
  EXPECT_EQ(k, want);
}

}  // namespace
}  // namespace lopass::dsl
