#include "core/cluster.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "dsl/lower.h"

namespace lopass::core {
namespace {

ClusterChain ChainOf(const std::string& src, const std::string& entry = "main") {
  const dsl::LoweredProgram p = dsl::Compile(src);
  return DecomposeIntoClusters(p.module, p.regions, entry);
}

TEST(Cluster, ChainFollowsTopLevelRegions) {
  const ClusterChain c = ChainOf(R"(
    func main(n) {
      var i; var s;
      s = 0;                                   // leaf
      for (i = 0; i < n; i = i + 1) { s = s + i; }   // loop
      s = s * 2;                               // leaf
      while (s > 10) { s = s - 3; }            // loop
      return s;                                // leaf
    })");
  ASSERT_GE(c.chain_length, 5);
  int loops = 0;
  for (const Cluster& cl : c.clusters) {
    if (cl.kind == ir::RegionKind::kLoop) {
      ++loops;
      EXPECT_TRUE(cl.hw_candidate) << cl.label;
    }
    if (cl.kind == ir::RegionKind::kLeaf) { EXPECT_FALSE(cl.hw_candidate); }
  }
  EXPECT_EQ(loops, 2);
  // Chain positions are dense and ordered.
  for (int pos = 0; pos < c.chain_length; ++pos) {
    EXPECT_NO_THROW(c.at_chain_pos(pos));
  }
}

TEST(Cluster, NestedLoopIsOneCluster) {
  // "nested loops" form a single cluster covering the whole nest.
  const ClusterChain c = ChainOf(R"(
    func main(n) {
      var i; var j; var s;
      for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) { s = s + i * j; }
      }
      return s;
    })");
  int loop_clusters = 0;
  std::size_t loop_blocks = 0;
  for (const Cluster& cl : c.clusters) {
    if (cl.kind == ir::RegionKind::kLoop) {
      ++loop_clusters;
      loop_blocks = cl.blocks.size();
    }
  }
  EXPECT_EQ(loop_clusters, 1);
  EXPECT_GE(loop_blocks, 5u);  // outer cond/step + inner cond/body/step
}

TEST(Cluster, IfElseIsACandidate) {
  const ClusterChain c = ChainOf(R"(
    func main(a) {
      var r;
      if (a > 0) { r = a * 2; } else { r = a / 2; }
      return r;
    })");
  bool found = false;
  for (const Cluster& cl : c.clusters) {
    if (cl.kind == ir::RegionKind::kIfElse) {
      found = true;
      EXPECT_TRUE(cl.hw_candidate);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cluster, LoopWithCallIsNotACandidate) {
  const ClusterChain c = ChainOf(R"(
    func helper(x) { return x * 2; }
    func main(n) {
      var i; var s;
      for (i = 0; i < n; i = i + 1) { s = s + helper(i); }
      return s;
    })");
  for (const Cluster& cl : c.clusters) {
    if (cl.kind == ir::RegionKind::kLoop) {
      EXPECT_TRUE(cl.contains_calls);
      EXPECT_FALSE(cl.hw_candidate);
    }
  }
}

TEST(Cluster, SingleCallFunctionBecomesFunctionCluster) {
  const ClusterChain c = ChainOf(R"(
    func kernel(x) { return x * x + 3; }
    func main(a) {
      var r;
      r = kernel(a);
      return r + 1;
    })");
  bool found = false;
  for (const Cluster& cl : c.clusters) {
    if (cl.kind == ir::RegionKind::kFunction) {
      found = true;
      EXPECT_TRUE(cl.hw_candidate);
      EXPECT_GE(cl.callee, 0);
      EXPECT_GE(cl.chain_pos, 0);
      EXPECT_LT(cl.chain_pos, c.chain_length);
      // Its blocks belong to the callee, not main.
      for (const auto& [fn, b] : cl.blocks) {
        EXPECT_EQ(fn, cl.callee);
        (void)b;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cluster, TwiceCalledFunctionIsNotACluster) {
  const ClusterChain c = ChainOf(R"(
    func kernel(x) { return x * x; }
    func main(a) {
      var r;
      r = kernel(a);
      r = r + kernel(a + 1);
      return r;
    })");
  for (const Cluster& cl : c.clusters) {
    EXPECT_NE(cl.kind, ir::RegionKind::kFunction);
  }
}

TEST(Cluster, FunctionClusterIncludesTransitiveCallees) {
  const ClusterChain c = ChainOf(R"(
    func inner(x) { return x + 1; }
    func outer(x) { return inner(x) * 2; }
    func main(a) { return outer(a); })");
  bool found = false;
  for (const Cluster& cl : c.clusters) {
    if (cl.kind != ir::RegionKind::kFunction) continue;
    found = true;
    // Covers blocks from both outer and inner.
    std::set<ir::FunctionId> fns;
    for (const auto& [fn, b] : cl.blocks) {
      fns.insert(fn);
      (void)b;
    }
    EXPECT_EQ(fns.size(), 2u);
    // Still contains a call, so it is not HW mappable as-is.
    EXPECT_TRUE(cl.contains_calls);
    EXPECT_FALSE(cl.hw_candidate);
  }
  EXPECT_TRUE(found);
}

TEST(Cluster, UnknownEntryThrows) {
  const dsl::LoweredProgram p = dsl::Compile("func main() { return 0; }");
  EXPECT_THROW(DecomposeIntoClusters(p.module, p.regions, "nope"), Error);
}

TEST(Cluster, BlocksAreDisjointAcrossChainMembers) {
  const ClusterChain c = ChainOf(R"(
    func main(n) {
      var i; var s;
      for (i = 0; i < n; i = i + 1) { s = s + 1; }
      if (s > 3) { s = 0; } else { s = 1; }
      return s;
    })");
  std::set<std::pair<ir::FunctionId, ir::BlockId>> seen;
  for (const Cluster& cl : c.clusters) {
    if (cl.id >= c.chain_length) continue;  // skip shadow candidates
    for (const auto& ref : cl.blocks) {
      EXPECT_TRUE(seen.insert(ref).second)
          << "block owned by two chain members: fn " << ref.first << " bb "
          << ref.second;
    }
  }
}

}  // namespace
}  // namespace lopass::core
