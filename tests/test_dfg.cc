#include "sched/dfg.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dsl/lower.h"

namespace lopass::sched {
namespace {

// Builds the DFG of the first block that has at least `min_ops` nodes.
BlockDfg DfgOf(const std::string& src, std::size_t min_ops = 1) {
  const dsl::LoweredProgram p = dsl::Compile(src);
  for (const ir::BasicBlock& b : p.module.function(0).blocks) {
    BlockDfg g = BuildBlockDfg(b);
    if (g.size() >= min_ops) return g;
  }
  return {};
}

bool HasEdge(const BlockDfg& g, ir::Opcode from, ir::Opcode to) {
  for (const DfgNode& n : g.nodes) {
    if (n.op != from) continue;
    for (std::size_t s : n.succs) {
      if (g.nodes[s].op == to) return true;
    }
  }
  return false;
}

std::size_t CountOp(const BlockDfg& g, ir::Opcode op) {
  std::size_t c = 0;
  for (const DfgNode& n : g.nodes) {
    if (n.op == op) ++c;
  }
  return c;
}

TEST(Dfg, RegisterTransfersAreContracted) {
  const BlockDfg g = DfgOf("var x; func main(a) { x = a * 2; return x + 1; }", 2);
  EXPECT_EQ(CountOp(g, ir::Opcode::kReadVar), 0u);
  EXPECT_EQ(CountOp(g, ir::Opcode::kWriteVar), 0u);
  EXPECT_EQ(CountOp(g, ir::Opcode::kConst), 0u);
  // The value flows mul -> add through the contracted writevar/readvar.
  EXPECT_TRUE(HasEdge(g, ir::Opcode::kMul, ir::Opcode::kAdd));
}

TEST(Dfg, IsRegisterTransferPredicate) {
  EXPECT_TRUE(IsRegisterTransfer(ir::Opcode::kConst));
  EXPECT_TRUE(IsRegisterTransfer(ir::Opcode::kMov));
  EXPECT_TRUE(IsRegisterTransfer(ir::Opcode::kReadVar));
  EXPECT_TRUE(IsRegisterTransfer(ir::Opcode::kWriteVar));
  EXPECT_FALSE(IsRegisterTransfer(ir::Opcode::kAdd));
  EXPECT_FALSE(IsRegisterTransfer(ir::Opcode::kLoadElem));
}

TEST(Dfg, VregDataflowEdges) {
  const BlockDfg g = DfgOf("func main(a, b) { return (a + b) * (a - b); }", 3);
  EXPECT_TRUE(HasEdge(g, ir::Opcode::kAdd, ir::Opcode::kMul));
  EXPECT_TRUE(HasEdge(g, ir::Opcode::kSub, ir::Opcode::kMul));
  EXPECT_FALSE(HasEdge(g, ir::Opcode::kAdd, ir::Opcode::kSub));
}

TEST(Dfg, ArrayOrderingDependencies) {
  // A store must order before a later load of the same array, and loads
  // before the next store (WAR).
  const BlockDfg g = DfgOf(R"(
    array m[8];
    func main(a) {
      m[0] = a;
      var t;
      t = m[1];
      m[2] = t + 1;
      return t;
    })", 3);
  EXPECT_TRUE(HasEdge(g, ir::Opcode::kStoreElem, ir::Opcode::kLoadElem));
  EXPECT_TRUE(HasEdge(g, ir::Opcode::kLoadElem, ir::Opcode::kStoreElem));
}

TEST(Dfg, IndependentArraysHaveNoEdges) {
  const BlockDfg g = DfgOf(R"(
    array a[4]; array b[4];
    func main(i) {
      a[0] = i;
      var t;
      t = b[0];
      return t;
    })", 2);
  EXPECT_FALSE(HasEdge(g, ir::Opcode::kStoreElem, ir::Opcode::kLoadElem));
}

TEST(Dfg, TerminatorExcluded) {
  const BlockDfg g = DfgOf("func main(a) { return a + 1; }", 1);
  for (const DfgNode& n : g.nodes) {
    EXPECT_FALSE(ir::IsTerminator(n.op));
  }
}

TEST(Dfg, DepthIsLongestPathToSink) {
  // a*b + c*d + e: muls feed adds, the final add is a sink (depth 0).
  const BlockDfg g =
      DfgOf("func main(a, b, c, d, e) { return a * b + c * d + e; }", 4);
  int max_mul_depth = -1;
  int final_add_depth = 99;
  for (const DfgNode& n : g.nodes) {
    if (n.op == ir::Opcode::kMul) max_mul_depth = std::max(max_mul_depth, n.depth);
    if (n.op == ir::Opcode::kAdd) final_add_depth = std::min(final_add_depth, n.depth);
  }
  EXPECT_EQ(final_add_depth, 0);
  EXPECT_GE(max_mul_depth, 1);
}

TEST(Dfg, PredsAndSuccsAreConsistent) {
  const BlockDfg g = DfgOf(R"(
    array m[16];
    func main(a, b) {
      var t;
      t = m[a & 15] * b + m[b & 15];
      m[0] = t;
      return t;
    })", 4);
  for (std::size_t n = 0; n < g.size(); ++n) {
    for (std::size_t s : g.nodes[n].succs) {
      const auto& preds = g.nodes[s].preds;
      EXPECT_NE(std::find(preds.begin(), preds.end(), n), preds.end());
      EXPECT_GT(s, n);  // edges point forward in program order
    }
  }
}

TEST(Dfg, ScalarRawThroughWriteRead) {
  // x written from a mul, then read into an add in the same block:
  // contraction must produce mul -> add.
  const BlockDfg g = DfgOf(R"(
    var x;
    func main(a) {
      x = a * a;
      var y;
      y = x + 3;
      return y;
    })", 2);
  EXPECT_TRUE(HasEdge(g, ir::Opcode::kMul, ir::Opcode::kAdd));
}

TEST(Dfg, EmptyBlockYieldsEmptyDfg) {
  const dsl::LoweredProgram p = dsl::Compile("func main() { return 0; }");
  bool saw_empty = false;
  for (const ir::BasicBlock& b : p.module.function(0).blocks) {
    if (BuildBlockDfg(b).size() == 0) saw_empty = true;
  }
  EXPECT_TRUE(saw_empty);
}

}  // namespace
}  // namespace lopass::sched
