#include "ir/infer_regions.h"

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/partitioner.h"
#include "dsl/lower.h"

namespace lopass::ir {
namespace {

// Hand-builds: entry -> loop(cond, body) -> exit (a simple counted loop
// over an array), without the DSL frontend.
Module BuildLoopModule() {
  Module m;
  const SymbolId n = m.AddScalar("n");
  const SymbolId s = m.AddScalar("s");
  const SymbolId i = m.AddScalar("i");
  const SymbolId arr = m.AddArray("arr", 64);
  const FunctionId f = m.AddFunction("main");
  FunctionBuilder fb(m, f);

  const BlockId entry = fb.NewBlock();
  const BlockId cond = fb.NewBlock();
  const BlockId body = fb.NewBlock();
  const BlockId exit = fb.NewBlock();

  fb.SetBlock(entry);
  fb.EmitWriteVar(i, Operand::Imm(0));
  fb.EmitWriteVar(s, Operand::Imm(0));
  fb.EmitBr(cond);

  fb.SetBlock(cond);
  const VregId vi = fb.EmitReadVar(i);
  const VregId vn = fb.EmitReadVar(n);
  const VregId c = fb.EmitBinary(Opcode::kCmpLt, Operand::Vreg(vi), Operand::Vreg(vn));
  fb.EmitCondBr(Operand::Vreg(c), body, exit);

  fb.SetBlock(body);
  const VregId bi = fb.EmitReadVar(i);
  const VregId masked = fb.EmitBinary(Opcode::kAnd, Operand::Vreg(bi), Operand::Imm(63));
  const VregId elem = fb.EmitLoadElem(arr, Operand::Vreg(masked));
  const VregId scaled = fb.EmitBinary(Opcode::kMul, Operand::Vreg(elem), Operand::Imm(3));
  const VregId vs = fb.EmitReadVar(s);
  const VregId sum = fb.EmitBinary(Opcode::kAdd, Operand::Vreg(vs), Operand::Vreg(scaled));
  fb.EmitWriteVar(s, Operand::Vreg(sum));
  const VregId inc = fb.EmitBinary(Opcode::kAdd, Operand::Vreg(bi), Operand::Imm(1));
  fb.EmitWriteVar(i, Operand::Vreg(inc));
  fb.EmitBr(cond);

  fb.SetBlock(exit);
  const VregId ret = fb.EmitReadVar(s);
  fb.EmitRet(Operand::Vreg(ret));

  m.AssignAddresses();
  return m;
}

TEST(Dominators, SimpleLoop) {
  const Module m = BuildLoopModule();
  const auto idom = ComputeDominators(m.function(0));
  EXPECT_EQ(idom[0], 0);  // entry dominates itself
  EXPECT_EQ(idom[1], 0);  // cond's idom is entry
  EXPECT_EQ(idom[2], 1);  // body's idom is cond
  EXPECT_EQ(idom[3], 1);  // exit's idom is cond
}

TEST(NaturalLoops, SimpleLoopFound) {
  const Module m = BuildLoopModule();
  const auto loops = FindNaturalLoops(m.function(0));
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, 1);
  EXPECT_EQ(loops[0].blocks, (std::vector<BlockId>{1, 2}));
}

TEST(InferRegions, ProgrammaticIrGetsALoopRegion) {
  const Module m = BuildLoopModule();
  const RegionTree tree = InferRegions(m);
  int loop_regions = 0;
  for (const RegionNode& n : tree.nodes()) {
    if (n.kind == RegionKind::kLoop) ++loop_regions;
  }
  EXPECT_EQ(loop_regions, 1);
  // Every block owned exactly once.
  std::vector<int> owners(m.function(0).blocks.size(), 0);
  for (const RegionNode& n : tree.nodes()) {
    for (BlockId b : n.blocks) ++owners[static_cast<std::size_t>(b)];
  }
  for (int o : owners) EXPECT_EQ(o, 1);
}

TEST(InferRegions, ClustererFindsTheLoopCandidate) {
  const Module m = BuildLoopModule();
  const RegionTree tree = InferRegions(m);
  const core::ClusterChain chain = core::DecomposeIntoClusters(m, tree);
  int candidates = 0;
  for (const core::Cluster& c : chain.clusters) {
    if (c.hw_candidate) {
      ++candidates;
      EXPECT_EQ(c.kind, RegionKind::kLoop);
    }
  }
  EXPECT_EQ(candidates, 1);
}

TEST(InferRegions, PartitionerRunsOnHandBuiltIr) {
  const Module m = BuildLoopModule();
  const RegionTree tree = InferRegions(m);
  core::Partitioner part(m, tree);
  core::Workload w;
  w.setup = [](core::DataTarget& t) {
    t.SetScalar("n", 4000);
    std::vector<std::int64_t> arr;
    for (int i = 0; i < 64; ++i) arr.push_back(i * 5 % 97);
    t.FillArray("arr", arr);
  };
  const core::PartitionResult r = part.Run(w);
  EXPECT_EQ(r.initial_run.return_value, r.partitioned_run.return_value);
  if (r.partitioned()) {
    EXPECT_LT(r.ToRow("handbuilt").saving_percent(), 0.0);
  }
}

TEST(InferRegions, MatchesFrontendLoopCount) {
  // On DSL-compiled programs, inference finds the same number of loop
  // regions as the frontend recorded.
  for (const char* src : {
           "func main(n) { var i; var s; for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }",
           R"(func main(n) {
                var i; var j; var s;
                for (i = 0; i < n; i = i + 1) {
                  for (j = 0; j < n; j = j + 1) { s = s + i * j; }
                }
                while (s > 10) { s = s / 2; }
                return s;
              })"}) {
    const dsl::LoweredProgram p = dsl::Compile(src);
    const RegionTree inferred = InferRegions(p.module);
    auto count_loops = [](const RegionTree& t) {
      int n = 0;
      for (const RegionNode& r : t.nodes()) {
        if (r.kind == RegionKind::kLoop) ++n;
      }
      return n;
    };
    EXPECT_EQ(count_loops(inferred), count_loops(p.regions)) << src;
  }
}

TEST(InferRegions, NestedLoopDepths) {
  const dsl::LoweredProgram p = dsl::Compile(R"(
    func main(n) {
      var i; var j; var s;
      for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) { s = s + 1; }
      }
      return s;
    })");
  const RegionTree inferred = InferRegions(p.module);
  int depth1 = 0, depth2 = 0;
  for (const RegionNode& n : inferred.nodes()) {
    if (n.kind != RegionKind::kLoop) continue;
    if (n.loop_depth == 1) ++depth1;
    if (n.loop_depth == 2) ++depth2;
  }
  EXPECT_EQ(depth1, 1);
  EXPECT_EQ(depth2, 1);
}

}  // namespace
}  // namespace lopass::ir
