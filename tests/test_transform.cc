#include "dsl/transform.h"

#include <gtest/gtest.h>

#include "common/prng.h"
#include "dsl/lower.h"
#include "dsl/parser.h"
#include "interp/interpreter.h"

namespace lopass::dsl {
namespace {

std::int64_t RunPlain(const std::string& src, std::vector<std::int64_t> args = {}) {
  const LoweredProgram p = Compile(src);
  interp::Interpreter it(p.module);
  return it.Run("main", args).return_value;
}

std::int64_t RunUnrolled(const std::string& src, int factor,
                         std::vector<std::int64_t> args = {}) {
  const LoweredProgram p = CompileWithUnroll(src, factor);
  interp::Interpreter it(p.module);
  return it.Run("main", args).return_value;
}

TEST(Unroll, FactorOneIsNoOp) {
  Program ast = Parse("func main(n) { var i; for (i = 0; i < n; i = i + 1) { } }");
  EXPECT_EQ(UnrollLoops(ast, 1), 0);
}

TEST(Unroll, CountsUnrolledLoops) {
  Program ast = Parse(R"(
    func main(n) {
      var i; var j; var s;
      for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) { s = s + 1; }
      }
      while (s > 0) { s = s - 1; }
      return s;
    })");
  // Both for loops unroll; the while loop (no step) does not.
  EXPECT_EQ(UnrollLoops(ast, 2), 2);
}

TEST(Unroll, PreservesSumsForAllResidues) {
  // Trip counts that are and are not multiples of the factor.
  const char* src = R"(
    func main(n) {
      var i; var s;
      s = 0;
      for (i = 0; i < n; i = i + 1) { s = s + i * i; }
      return s;
    })";
  for (int factor : {2, 3, 4, 7}) {
    for (std::int64_t n : {0, 1, 2, 5, 12, 13, 100}) {
      EXPECT_EQ(RunUnrolled(src, factor, {n}), RunPlain(src, {n}))
          << "factor=" << factor << " n=" << n;
    }
  }
}

TEST(Unroll, BodyDeclarationsSurviveReplication) {
  const char* src = R"(
    func main(n) {
      var i; var s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        var t;
        t = i * 3;
        s = s + t;
      }
      return s;
    })";
  EXPECT_EQ(RunUnrolled(src, 4, {11}), RunPlain(src, {11}));
}

TEST(Unroll, BreakInsideBodyStillExitsTheLoop) {
  const char* src = R"(
    func main(n) {
      var i; var s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        if (i == 7) { break; }
        s = s + i;
      }
      return s * 100 + i;
    })";
  EXPECT_EQ(RunUnrolled(src, 3, {50}), RunPlain(src, {50}));
}

TEST(Unroll, ContinueBodiesAreSkipped) {
  Program ast = Parse(R"(
    func main(n) {
      var i; var s;
      for (i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) { continue; }
        s = s + i;
      }
      return s;
    })");
  EXPECT_EQ(UnrollLoops(ast, 2), 0);  // left alone — and still correct
  const char* src = R"(
    func main(n) {
      var i; var s;
      for (i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) { continue; }
        s = s + i;
      }
      return s;
    })";
  EXPECT_EQ(RunUnrolled(src, 2, {10}), RunPlain(src, {10}));
}

TEST(Unroll, NestedLoopsUnrollInnerFirst) {
  const char* src = R"(
    array m[64];
    func main(n) {
      var i; var j; var s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < 8; j = j + 1) { m[((i << 3) + j) & 63] = i * j; }
      }
      for (i = 0; i < 64; i = i + 1) { s = s + m[i]; }
      return s;
    })";
  EXPECT_EQ(RunUnrolled(src, 4, {8}), RunPlain(src, {8}));
}

TEST(Unroll, OversizedBodiesAreLeftAlone) {
  std::string body;
  for (int i = 0; i < 20; ++i) body += "s = s + " + std::to_string(i) + ";\n";
  Program ast = Parse("func main(n) { var i; var s; for (i = 0; i < n; i = i + 1) {\n" +
                      body + "} return s; }");
  EXPECT_EQ(UnrollLoops(ast, 2, /*max_body_stmts=*/16), 0);
}

TEST(Unroll, RandomizedEquivalence) {
  Prng rng(4242);
  for (int trial = 0; trial < 12; ++trial) {
    std::ostringstream os;
    os << "var g;\narray m[16];\nfunc main(a) {\n  var i; var s;\n  s = a;\n";
    os << "  for (i = " << rng.next_in(0, 3) << "; i < " << rng.next_in(4, 23)
       << "; i = i + " << rng.next_in(1, 3) << ") {\n";
    os << "    m[i & 15] = s + i;\n";
    os << "    if ((s & 3) == 1) { g = g + 1; }\n";
    os << "    s = s + m[(s + i) & 15];\n";
    os << "  }\n  return s + g;\n}\n";
    const std::string src = os.str();
    const int factor = 2 + static_cast<int>(rng.next_below(4));
    const std::int64_t arg = rng.next_in(-9, 9);
    SCOPED_TRACE(src);
    EXPECT_EQ(RunUnrolled(src, factor, {arg}), RunPlain(src, {arg})) << factor;
  }
}

TEST(Clone, DeepCopiesAreIndependent) {
  Program ast = Parse("func main(a) { if (a > 0) { a = a + 1; } return a; }");
  const Stmt& original = *ast.functions[0].body[0];
  StmtPtr copy = CloneStmt(original);
  // Mutating the copy leaves the original untouched.
  copy->body.clear();
  EXPECT_EQ(original.body.size(), 1u);
  EXPECT_EQ(copy->kind, Stmt::Kind::kIf);
  ASSERT_NE(copy->cond, nullptr);
  EXPECT_NE(copy->cond.get(), original.cond.get());
}

}  // namespace
}  // namespace lopass::dsl
