#include "sched/list_scheduler.h"

#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "common/prng.h"
#include "dsl/lower.h"
#include "sched/dfg.h"

namespace lopass::sched {
namespace {

using power::ResourceType;
using power::TechLibrary;

BlockDfg HotDfg(const std::string& src, std::size_t min_ops) {
  const dsl::LoweredProgram p = dsl::Compile(src);
  BlockDfg best;
  for (const ir::BasicBlock& b : p.module.function(0).blocks) {
    BlockDfg g = BuildBlockDfg(b);
    if (g.size() >= min_ops && g.size() > best.size()) best = std::move(g);
  }
  return best;
}

ResourceSet OneOfEach() {
  ResourceSet rs;
  rs.name = "one-of-each";
  rs.set(ResourceType::kAlu, 1)
      .set(ResourceType::kAdder, 1)
      .set(ResourceType::kShifter, 1)
      .set(ResourceType::kMultiplier, 1)
      .set(ResourceType::kDivider, 1)
      .set(ResourceType::kMemoryPort, 1);
  return rs;
}

// Validates the structural invariants of a schedule: precedence (an op
// starts after all predecessors finish) and resource-capacity limits
// (per step, per type, occupied instances <= budget).
void ValidateSchedule(const BlockDfg& g, const BlockSchedule& s, const ResourceSet& rs) {
  ASSERT_EQ(s.ops.size(), g.size());
  for (std::size_t n = 0; n < g.size(); ++n) {
    const ScheduledOp& op = s.ops[n];
    EXPECT_LT(op.step, s.num_steps);
    for (std::size_t pred : g.nodes[n].preds) {
      const ScheduledOp& p = s.ops[pred];
      EXPECT_GE(op.step, p.step + p.latency)
          << "op " << n << " starts before pred " << pred << " finishes";
    }
  }
  // Occupancy per (step, type) never exceeds the budget.
  std::map<std::pair<std::uint32_t, int>, int> busy;
  for (const ScheduledOp& op : s.ops) {
    for (std::uint32_t c = 0; c < op.latency; ++c) {
      busy[{op.step + c, static_cast<int>(op.type)}]++;
    }
  }
  for (const auto& [key, n] : busy) {
    EXPECT_LE(n, rs.count[static_cast<std::size_t>(key.second)])
        << "step " << key.first << " type " << key.second;
  }
}

TEST(ListScheduler, EmptyDfg) {
  const BlockSchedule s = ListSchedule(BlockDfg{}, OneOfEach(), TechLibrary::Cmos6());
  EXPECT_EQ(s.num_steps, 0u);
  EXPECT_TRUE(s.ops.empty());
}

TEST(ListScheduler, SerializesOnSingleResource) {
  // Four independent adds, one adder+one ALU: two per step at best.
  const BlockDfg g = HotDfg(
      "func main(a, b, c, d) { return (a + 1) + 0 * ((b + 1) + (c + 1) + (d + 1)); }", 4);
  ResourceSet rs;
  rs.name = "adder-only";
  rs.set(ResourceType::kAdder, 1).set(ResourceType::kAlu, 1)
    .set(ResourceType::kMultiplier, 1);
  const BlockSchedule s = ListSchedule(g, rs, TechLibrary::Cmos6());
  ValidateSchedule(g, s, rs);
}

TEST(ListScheduler, MoreResourcesNeverLengthenTheSchedule) {
  const char* src = R"(
    array m[32];
    func main(a, b) {
      var t;
      t = m[a & 31] * b + m[b & 31] * a + (a << 2) + (b >> 1)
        + m[(a + b) & 31] * 3 + abs(a - b);
      m[0] = t;
      return t;
    })";
  const BlockDfg g = HotDfg(src, 8);
  ResourceSet small = OneOfEach();
  ResourceSet big = OneOfEach();
  big.set(ResourceType::kAlu, 4)
      .set(ResourceType::kAdder, 4)
      .set(ResourceType::kMultiplier, 3)
      .set(ResourceType::kMemoryPort, 3);
  const BlockSchedule s1 = ListSchedule(g, small, TechLibrary::Cmos6());
  const BlockSchedule s2 = ListSchedule(g, big, TechLibrary::Cmos6());
  ValidateSchedule(g, s1, small);
  ValidateSchedule(g, s2, big);
  EXPECT_LE(s2.num_steps, s1.num_steps);
}

TEST(ListScheduler, MultiCycleLatencyRespected) {
  // A chain of dependent multiplies occupies the 2-cycle multiplier
  // back to back: makespan >= 2 * chain length.
  const BlockDfg g = HotDfg("func main(a) { return a * a * a * a; }", 3);
  const BlockSchedule s = ListSchedule(g, OneOfEach(), TechLibrary::Cmos6());
  const Cycles lat = TechLibrary::Cmos6().spec(ResourceType::kMultiplier).op_latency;
  EXPECT_GE(s.num_steps, 3 * static_cast<std::uint32_t>(lat));
  ValidateSchedule(g, s, OneOfEach());
}

TEST(ListScheduler, ThrowsWhenNoResourceForOp) {
  const BlockDfg g = HotDfg("func main(a) { return a * a; }", 1);
  ResourceSet rs;
  rs.name = "no-mult";
  rs.set(ResourceType::kAlu, 1).set(ResourceType::kAdder, 1);
  EXPECT_THROW(ListSchedule(g, rs, TechLibrary::Cmos6()), Error);
}

TEST(ListScheduler, PrefersSmallerResource) {
  // A lone add should land on the adder, not the ALU (sorted candidate
  // list, Fig. 4 footnote 13).
  const BlockDfg g = HotDfg("func main(a, b) { return a + b; }", 1);
  const BlockSchedule s = ListSchedule(g, OneOfEach(), TechLibrary::Cmos6());
  ASSERT_EQ(s.ops.size(), 1u);
  EXPECT_EQ(s.ops[0].type, ResourceType::kAdder);
}

TEST(ListScheduler, ComparisonFallsBackWhenNoComparator) {
  // Candidate order is comparator -> adder -> ALU; with no comparator
  // in the set the adder takes it.
  const BlockDfg g = HotDfg("func main(a, b) { return a < b; }", 1);
  const BlockSchedule s = ListSchedule(g, OneOfEach(), TechLibrary::Cmos6());
  ASSERT_EQ(s.ops.size(), 1u);
  EXPECT_EQ(s.ops[0].type, ResourceType::kAdder);
}

// Property sweep: random expression blocks scheduled under various
// budgets always satisfy the structural invariants.
class SchedulerSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerSweep, RandomBlocksAreValid) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  // Build a random big expression.
  std::string expr = "a";
  const char* ops[] = {" + ", " - ", " * ", " & ", " ^ ", " << ", " >> "};
  for (int i = 0; i < 24; ++i) {
    const std::string rhs =
        rng.next_below(3) == 0 ? "m[(a + " + std::to_string(i) + ") & 15]"
                               : "(b + " + std::to_string(i) + ")";
    expr = "(" + expr + ops[rng.next_below(7)] + rhs + ")";
  }
  const std::string src =
      "array m[16];\nfunc main(a, b) { return " + expr + "; }";
  const BlockDfg g = HotDfg(src, 10);
  ASSERT_GT(g.size(), 10u);

  ResourceSet rs = OneOfEach();
  rs.set(ResourceType::kAlu, 1 + static_cast<int>(rng.next_below(3)))
      .set(ResourceType::kAdder, 1 + static_cast<int>(rng.next_below(3)))
      .set(ResourceType::kMemoryPort, 1 + static_cast<int>(rng.next_below(2)));
  const BlockSchedule s = ListSchedule(g, rs, TechLibrary::Cmos6());
  ValidateSchedule(g, s, rs);
  EXPECT_GT(s.num_steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerSweep, ::testing::Range(0, 20));

TEST(ResourceSet, BudgetGeq) {
  ResourceSet rs;
  rs.set(ResourceType::kAlu, 2).set(ResourceType::kMultiplier, 1);
  const TechLibrary& lib = TechLibrary::Cmos6();
  EXPECT_DOUBLE_EQ(rs.BudgetGeq(lib),
                   2 * lib.spec(ResourceType::kAlu).geq +
                       lib.spec(ResourceType::kMultiplier).geq);
}

TEST(ResourceSet, DefaultDesignerSetsAreOrderedBySize) {
  const auto sets = DefaultDesignerSets();
  ASSERT_GE(sets.size(), 3u);
  const TechLibrary& lib = TechLibrary::Cmos6();
  for (std::size_t i = 1; i < sets.size(); ++i) {
    EXPECT_GT(sets[i].BudgetGeq(lib), sets[i - 1].BudgetGeq(lib)) << sets[i].name;
  }
}

TEST(ResourceSet, CandidateListsSortedBySize) {
  const TechLibrary& lib = TechLibrary::Cmos6();
  for (ir::Opcode op : {ir::Opcode::kAdd, ir::Opcode::kCmpLt, ir::Opcode::kMul,
                        ir::Opcode::kShl, ir::Opcode::kLoadElem}) {
    const auto cands = CandidateResources(op);
    for (std::size_t i = 1; i < cands.size(); ++i) {
      EXPECT_LE(lib.spec(cands[i - 1]).geq, lib.spec(cands[i]).geq)
          << ir::OpcodeName(op);
    }
  }
}


TEST(Chaining, PacksDependentFastOps) {
  // A pure dependency chain of adds: without chaining one per step;
  // with chaining, two 16ns adder delays fit the 40ns period.
  const BlockDfg g =
      HotDfg("func main(a) { return ((((a + 1) + 2) + 3) + 4) + 5; }", 5);
  SchedulerOptions off;
  SchedulerOptions on;
  on.enable_chaining = true;
  ResourceSet rs;
  rs.name = "adders";
  rs.set(ResourceType::kAdder, 4).set(ResourceType::kAlu, 1);
  const BlockSchedule s_off = ListSchedule(g, rs, TechLibrary::Cmos6(), off);
  const BlockSchedule s_on = ListSchedule(g, rs, TechLibrary::Cmos6(), on);
  EXPECT_EQ(s_off.chained_ops, 0u);
  EXPECT_GT(s_on.chained_ops, 0u);
  EXPECT_LT(s_on.num_steps, s_off.num_steps);
}

TEST(Chaining, NeverChainsThroughMultiCycleOps) {
  const BlockDfg g = HotDfg("func main(a) { return (a * a) + 1; }", 2);
  SchedulerOptions on;
  on.enable_chaining = true;
  const BlockSchedule s = ListSchedule(g, OneOfEach(), TechLibrary::Cmos6(), on);
  // The add must start at or after the multiplier's finish step.
  const ScheduledOp* mul = nullptr;
  const ScheduledOp* add = nullptr;
  for (std::size_t n = 0; n < g.size(); ++n) {
    if (g.nodes[n].op == ir::Opcode::kMul) mul = &s.ops[n];
    if (g.nodes[n].op == ir::Opcode::kAdd) add = &s.ops[n];
  }
  ASSERT_TRUE(mul && add);
  EXPECT_GE(add->step, mul->step + mul->latency);
}

TEST(Chaining, RespectsThePeriodBudget) {
  // Three dependent ALU ops at 22ns each cannot all share a 40ns step;
  // at most two chain.
  const BlockDfg g = HotDfg("func main(a, b) { return ((a & b) | a) ^ b; }", 3);
  SchedulerOptions on;
  on.enable_chaining = true;
  ResourceSet rs;
  rs.name = "alus";
  rs.set(ResourceType::kAlu, 3);
  const BlockSchedule s = ListSchedule(g, rs, TechLibrary::Cmos6(), on);
  EXPECT_GE(s.num_steps, 2u);
  // Precedence still holds step-wise (chained ops share a step).
  for (std::size_t n = 0; n < g.size(); ++n) {
    for (std::size_t p : g.nodes[n].preds) {
      EXPECT_GE(s.ops[n].step, s.ops[p].step);
    }
  }
}

TEST(Chaining, SemanticsOfScheduleUnchanged) {
  // Chaining only compresses steps: the binding/utilization pipeline
  // still sees every op exactly once.
  const BlockDfg g = HotDfg(
      "array m[8];\nfunc main(a) { m[0] = a + 1 + 2 + 3; return m[0]; }", 3);
  SchedulerOptions on;
  on.enable_chaining = true;
  const BlockSchedule s = ListSchedule(g, OneOfEach(), TechLibrary::Cmos6(), on);
  EXPECT_EQ(s.ops.size(), g.size());
}

}  // namespace
}  // namespace lopass::sched
