#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/diag.h"
#include "common/error.h"
#include "ir/module.h"
#include "ir/print.h"
#include "ir/region.h"
#include "ir/verify.h"

namespace lopass::ir {
namespace {

// Runs the verifier and returns the codes it reported (in order).
std::vector<std::string> VerifyCodes(const Module& m) {
  DiagnosticSink sink;
  Verify(m, sink);
  std::vector<std::string> codes;
  for (const Diagnostic& d : sink.diagnostics()) codes.push_back(d.code);
  return codes;
}

bool HasCode(const std::vector<std::string>& codes, const std::string& want) {
  return std::find(codes.begin(), codes.end(), want) != codes.end();
}

Module MakeMinimalModule() {
  Module m;
  const FunctionId f = m.AddFunction("main");
  FunctionBuilder fb(m, f);
  const BlockId b = fb.NewBlock();
  fb.SetBlock(b);
  fb.EmitRet(Operand::Imm(0));
  m.AssignAddresses();
  return m;
}

TEST(IrModule, SymbolTable) {
  Module m;
  const SymbolId g = m.AddScalar("g");
  const SymbolId a = m.AddArray("arr", 10);
  EXPECT_EQ(m.symbol(g).kind, SymbolKind::kScalar);
  EXPECT_EQ(m.symbol(a).kind, SymbolKind::kArray);
  EXPECT_EQ(m.symbol(a).length, 10u);
  EXPECT_TRUE(m.FindSymbol("g", -1).has_value());
  EXPECT_FALSE(m.FindSymbol("nope", -1).has_value());
  EXPECT_THROW(m.AddArray("zero", 0), Error);
}

TEST(IrModule, LocalSymbolsShadowGlobals) {
  Module m;
  const SymbolId g = m.AddScalar("x");
  m.AddFunction("f");
  const SymbolId l = m.AddScalar("x", 0);
  EXPECT_EQ(m.FindSymbol("x", 0).value(), l);
  EXPECT_EQ(m.FindSymbol("x", -1).value(), g);
  // A different function falls back to the global.
  m.AddFunction("h");
  EXPECT_EQ(m.FindSymbol("x", 1).value(), g);
}

TEST(IrModule, AddressAssignment) {
  Module m;
  const SymbolId a = m.AddScalar("a");
  const SymbolId b = m.AddArray("b", 3);
  const SymbolId c = m.AddScalar("c");
  const std::uint32_t total = m.AssignAddresses();
  EXPECT_EQ(total, 4u + 12u + 4u);
  EXPECT_EQ(m.symbol(a).address, 0u);
  EXPECT_EQ(m.symbol(b).address, 4u);
  EXPECT_EQ(m.symbol(c).address, 16u);
}

TEST(IrModule, BlockSuccessors) {
  Module m;
  const FunctionId f = m.AddFunction("f");
  FunctionBuilder fb(m, f);
  const BlockId b0 = fb.NewBlock();
  const BlockId b1 = fb.NewBlock();
  const BlockId b2 = fb.NewBlock();
  fb.SetBlock(b0);
  const VregId c = fb.EmitConst(1);
  fb.EmitCondBr(Operand::Vreg(c), b1, b2);
  fb.SetBlock(b1);
  fb.EmitBr(b2);
  fb.SetBlock(b2);
  fb.EmitRet();

  const Function& fn = m.function(f);
  EXPECT_EQ(fn.block(b0).successors(), (std::vector<BlockId>{b1, b2}));
  EXPECT_EQ(fn.block(b1).successors(), (std::vector<BlockId>{b2}));
  EXPECT_TRUE(fn.block(b2).successors().empty());

  const auto preds = fn.ComputePredecessors();
  EXPECT_EQ(preds[static_cast<std::size_t>(b2)].size(), 2u);
}

TEST(IrVerify, AcceptsMinimalModule) {
  const Module m = MakeMinimalModule();
  DiagnosticSink sink;
  EXPECT_TRUE(Verify(m, sink));
  EXPECT_FALSE(sink.has_errors());
  EXPECT_NO_THROW(VerifyOrThrow(m));
}

TEST(IrVerify, RejectsEmptyModule) {
  Module m;
  EXPECT_TRUE(HasCode(VerifyCodes(m), "L100"));
  EXPECT_THROW(VerifyOrThrow(m), Error);
}

TEST(IrVerify, RejectsMissingTerminator) {
  Module m;
  const FunctionId f = m.AddFunction("f");
  FunctionBuilder fb(m, f);
  const BlockId b = fb.NewBlock();
  fb.SetBlock(b);
  fb.EmitConst(1);  // no terminator
  EXPECT_TRUE(HasCode(VerifyCodes(m), "L102"));
}

TEST(IrVerify, RejectsUseBeforeDef) {
  Module m;
  const FunctionId f = m.AddFunction("f");
  FunctionBuilder fb(m, f);
  const BlockId b = fb.NewBlock();
  fb.SetBlock(b);
  // Manufacture an instruction reading an undefined vreg.
  Instr in;
  in.op = Opcode::kMov;
  in.result = 5;
  in.args = {Operand::Vreg(3)};
  m.function(f).block(b).instrs.push_back(in);
  Instr ret;
  ret.op = Opcode::kRet;
  m.function(f).block(b).instrs.push_back(ret);
  m.function(f).next_vreg = 10;
  EXPECT_TRUE(HasCode(VerifyCodes(m), "L106"));
}

TEST(IrVerify, RejectsBranchOutOfRange) {
  Module m;
  const FunctionId f = m.AddFunction("f");
  FunctionBuilder fb(m, f);
  const BlockId b = fb.NewBlock();
  fb.SetBlock(b);
  Instr br;
  br.op = Opcode::kBr;
  br.target0 = 99;
  m.function(f).block(b).instrs.push_back(br);
  EXPECT_TRUE(HasCode(VerifyCodes(m), "L107"));
}

TEST(IrVerify, RejectsCallArityMismatch) {
  Module m;
  const FunctionId callee = m.AddFunction("callee");
  {
    FunctionBuilder fb(m, callee);
    const BlockId b = fb.NewBlock();
    fb.SetBlock(b);
    fb.EmitRet(Operand::Imm(0));
    m.function(callee).params.push_back(m.AddScalar("p", callee));
  }
  const FunctionId caller = m.AddFunction("caller");
  {
    FunctionBuilder fb(m, caller);
    const BlockId b = fb.NewBlock();
    fb.SetBlock(b);
    fb.EmitCall(m.function(callee).symbol, {});  // 0 args vs 1 param
    fb.EmitRet();
  }
  EXPECT_TRUE(HasCode(VerifyCodes(m), "L111"));
}

// One pass over a module with several independent defects reports each
// of them — the verifier no longer stops at the first violation.
TEST(IrVerify, AccumulatesMultipleFindings) {
  Module m;
  const FunctionId f = m.AddFunction("f");
  FunctionBuilder fb(m, f);
  const BlockId b0 = fb.NewBlock();
  const BlockId b1 = fb.NewBlock();
  fb.SetBlock(b0);
  Instr use;  // use-before-def (L106)
  use.op = Opcode::kMov;
  use.result = 7;
  use.args = {Operand::Vreg(3)};
  m.function(f).block(b0).instrs.push_back(use);
  Instr br;  // branch out of range (L107)
  br.op = Opcode::kBr;
  br.target0 = 42;
  m.function(f).block(b0).instrs.push_back(br);
  // b1 left without a terminator (L102).
  (void)b1;
  m.function(f).next_vreg = 10;

  const auto codes = VerifyCodes(m);
  EXPECT_TRUE(HasCode(codes, "L106"));
  EXPECT_TRUE(HasCode(codes, "L107"));
  EXPECT_TRUE(HasCode(codes, "L102"));
}

// A corrupt symbol id used to trip an internal check mid-verify; it is
// now an ordinary finding so later references are still examined.
TEST(IrVerify, ReportsCorruptSymbolIdsAsFindings) {
  Module m;
  const FunctionId f = m.AddFunction("f");
  FunctionBuilder fb(m, f);
  const BlockId b = fb.NewBlock();
  fb.SetBlock(b);
  Instr rd;
  rd.op = Opcode::kReadVar;
  rd.result = 0;
  rd.sym = 999;  // out of range
  m.function(f).block(b).instrs.push_back(rd);
  Instr br;  // also out of range: both must be reported
  br.op = Opcode::kBr;
  br.target0 = 5;
  m.function(f).block(b).instrs.push_back(br);
  m.function(f).next_vreg = 1;

  const auto codes = VerifyCodes(m);
  EXPECT_TRUE(HasCode(codes, "L108"));
  EXPECT_TRUE(HasCode(codes, "L107"));
}

TEST(IrPrint, ContainsSymbolsAndOpcodes) {
  Module m;
  const SymbolId g = m.AddScalar("counter");
  const FunctionId f = m.AddFunction("main");
  FunctionBuilder fb(m, f);
  const BlockId b = fb.NewBlock();
  fb.SetBlock(b);
  const VregId v = fb.EmitReadVar(g);
  const VregId w = fb.EmitBinary(Opcode::kAdd, Operand::Vreg(v), Operand::Imm(1));
  fb.EmitWriteVar(g, Operand::Vreg(w));
  fb.EmitRet();
  m.AssignAddresses();
  const std::string text = ToString(m);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("readvar"), std::string::npos);
  EXPECT_NE(text.find("add"), std::string::npos);
  EXPECT_NE(text.find("func main"), std::string::npos);
}

TEST(Region, CoveredBlocksIsRecursive) {
  RegionTree tree;
  const RegionId root = tree.AddNode(RegionKind::kFunction, 0, kNoRegion, "f");
  tree.SetFunctionRoot(0, root);
  const RegionId loop = tree.AddNode(RegionKind::kLoop, 0, root, "loop");
  const RegionId leaf = tree.AddNode(RegionKind::kLeaf, 0, loop, "leaf");
  tree.AddBlock(loop, 1);
  tree.AddBlock(leaf, 2);
  tree.AddBlock(root, 0);
  const auto blocks = tree.CoveredBlocks(root);
  EXPECT_EQ(blocks.size(), 3u);
  const auto loop_blocks = tree.CoveredBlocks(loop);
  EXPECT_EQ(loop_blocks, (std::vector<BlockId>{1, 2}));
}

TEST(Region, LoopDepths) {
  RegionTree tree;
  const RegionId root = tree.AddNode(RegionKind::kFunction, 0, kNoRegion, "f");
  const RegionId l1 = tree.AddNode(RegionKind::kLoop, 0, root, "outer");
  const RegionId seq = tree.AddNode(RegionKind::kSequence, 0, l1, "body");
  const RegionId l2 = tree.AddNode(RegionKind::kLoop, 0, seq, "inner");
  tree.ComputeLoopDepths();
  EXPECT_EQ(tree.node(root).loop_depth, 0);
  EXPECT_EQ(tree.node(l1).loop_depth, 1);
  EXPECT_EQ(tree.node(seq).loop_depth, 1);
  EXPECT_EQ(tree.node(l2).loop_depth, 2);
}

TEST(Opcode, Metadata) {
  EXPECT_TRUE(IsTerminator(Opcode::kRet));
  EXPECT_TRUE(IsTerminator(Opcode::kCondBr));
  EXPECT_FALSE(IsTerminator(Opcode::kAdd));
  EXPECT_TRUE(IsBinaryArith(Opcode::kXor));
  EXPECT_FALSE(IsBinaryArith(Opcode::kCmpLt));
  EXPECT_TRUE(IsComparison(Opcode::kCmpLt));
  EXPECT_TRUE(ProducesResult(Opcode::kLoadElem));
  EXPECT_FALSE(ProducesResult(Opcode::kStoreElem));
  EXPECT_EQ(OpcodeArity(Opcode::kAdd), 2);
  EXPECT_EQ(OpcodeArity(Opcode::kNeg), 1);
  EXPECT_EQ(OpcodeArity(Opcode::kReadVar), 0);
  EXPECT_STREQ(OpcodeName(Opcode::kStoreElem), "storeelem");
}

}  // namespace
}  // namespace lopass::ir
