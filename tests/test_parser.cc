#include "dsl/parser.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/prng.h"

namespace lopass::dsl {
namespace {

TEST(Parser, TopLevelDeclarations) {
  const Program p = Parse("var g = 5; array buf[64]; func main() { return 0; }");
  ASSERT_EQ(p.globals.size(), 2u);
  EXPECT_EQ(p.globals[0]->kind, Stmt::Kind::kVarDecl);
  EXPECT_EQ(p.globals[0]->name, "g");
  ASSERT_NE(p.globals[0]->value, nullptr);
  EXPECT_EQ(p.globals[0]->value->value, 5);
  EXPECT_EQ(p.globals[1]->kind, Stmt::Kind::kArrayDecl);
  EXPECT_EQ(p.globals[1]->array_len, 64u);
  ASSERT_EQ(p.functions.size(), 1u);
  EXPECT_EQ(p.functions[0].name, "main");
}

TEST(Parser, FunctionParameters) {
  const Program p = Parse("func f(a, b, c) { return a; }");
  EXPECT_EQ(p.functions[0].params, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Parser, PrecedenceMulOverAdd) {
  const Program p = Parse("func f() { var x; x = 1 + 2 * 3; }");
  const Stmt& s = *p.functions[0].body[1];
  ASSERT_EQ(s.kind, Stmt::Kind::kAssign);
  const Expr& e = *s.value;
  ASSERT_EQ(e.kind, Expr::Kind::kBinary);
  EXPECT_EQ(e.bin_op, BinOp::kAdd);
  EXPECT_EQ(e.args[1]->bin_op, BinOp::kMul);
}

TEST(Parser, PrecedenceShiftBelowAdd) {
  // 1 << 2 + 3 parses as 1 << (2 + 3) in C.
  const Program p = Parse("func f() { var x; x = 1 << 2 + 3; }");
  const Expr& e = *p.functions[0].body[1]->value;
  EXPECT_EQ(e.bin_op, BinOp::kShl);
  EXPECT_EQ(e.args[1]->bin_op, BinOp::kAdd);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const Program p = Parse("func f() { var x; x = (1 + 2) * 3; }");
  const Expr& e = *p.functions[0].body[1]->value;
  EXPECT_EQ(e.bin_op, BinOp::kMul);
  EXPECT_EQ(e.args[0]->bin_op, BinOp::kAdd);
}

TEST(Parser, UnaryOperators) {
  const Program p = Parse("func f() { var x; x = -1; x = ~x; x = !x; x = +5; }");
  EXPECT_EQ(p.functions[0].body[1]->value->un_op, UnOp::kNeg);
  EXPECT_EQ(p.functions[0].body[2]->value->un_op, UnOp::kBitNot);
  EXPECT_EQ(p.functions[0].body[3]->value->un_op, UnOp::kLogicalNot);
  EXPECT_EQ(p.functions[0].body[4]->value->kind, Expr::Kind::kInt);
}

TEST(Parser, IfElseChain) {
  const Program p = Parse(R"(
    func f(a) {
      if (a > 2) { return 2; }
      else if (a > 1) { return 1; }
      else { return 0; }
    })");
  const Stmt& s = *p.functions[0].body[0];
  ASSERT_EQ(s.kind, Stmt::Kind::kIf);
  ASSERT_EQ(s.else_body.size(), 1u);
  EXPECT_EQ(s.else_body[0]->kind, Stmt::Kind::kIf);
  EXPECT_EQ(s.else_body[0]->else_body.size(), 1u);
}

TEST(Parser, ForLoopParts) {
  const Program p = Parse("func f() { var i; for (i = 0; i < 4; i = i + 1) { } }");
  const Stmt& s = *p.functions[0].body[1];
  ASSERT_EQ(s.kind, Stmt::Kind::kFor);
  ASSERT_NE(s.init, nullptr);
  ASSERT_NE(s.cond, nullptr);
  ASSERT_NE(s.step, nullptr);
  EXPECT_EQ(s.init->kind, Stmt::Kind::kAssign);
}

TEST(Parser, ForLoopPartsMayBeEmpty) {
  const Program p = Parse("func f() { for (;;) { return 0; } }");
  const Stmt& s = *p.functions[0].body[0];
  EXPECT_EQ(s.init, nullptr);
  EXPECT_EQ(s.cond, nullptr);
  EXPECT_EQ(s.step, nullptr);
}

TEST(Parser, ArrayStoreAndLoad) {
  const Program p = Parse("array a[8]; func f(i) { a[i] = a[i + 1]; }");
  const Stmt& s = *p.functions[0].body[0];
  ASSERT_EQ(s.kind, Stmt::Kind::kStore);
  EXPECT_EQ(s.name, "a");
  EXPECT_EQ(s.value->kind, Expr::Kind::kIndex);
}

TEST(Parser, CallsAndBuiltins) {
  const Program p = Parse(R"(
    func g(x) { return x; }
    func f() { var y; y = g(3) + min(1, 2) + max(3, 4) + abs(-5); })");
  const Expr& e = *p.functions[1].body[1]->value;
  EXPECT_EQ(e.kind, Expr::Kind::kBinary);  // the + chain
}

TEST(Parser, ExpressionStatement) {
  const Program p = Parse("func g() { return 0; } func f() { g(); }");
  EXPECT_EQ(p.functions[1].body[0]->kind, Stmt::Kind::kExpr);
}

TEST(Parser, WhileLoop) {
  const Program p = Parse("func f(n) { while (n > 0) { n = n - 1; } return n; }");
  EXPECT_EQ(p.functions[0].body[0]->kind, Stmt::Kind::kWhile);
}

// Malformed inputs, parameterized.
class ParserErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserErrors, Throws) { EXPECT_THROW(Parse(GetParam()), lopass::Error); }

INSTANTIATE_TEST_SUITE_P(
    BadPrograms, ParserErrors,
    ::testing::Values("func f( { }",                      // bad param list
                      "func f() { var; }",                // missing name
                      "func f() { x = ; }",               // missing expr
                      "func f() { if a > 1 { } }",        // missing parens
                      "array a[0];",                      // zero length
                      "array a[-4];",                     // negative length
                      "var g = x;",                       // non-const global init
                      "func f() { return 1 }",            // missing semicolon
                      "func f() { a[1 = 2; }",            // unclosed index
                      "stray",                            // garbage at top level
                      "func f() { for (return 0;;) {} }"  // bad for-init
                      ));


// Robustness: random token soup must never crash or hang — the parser
// either produces a program or throws lopass::Error.
class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, NeverCrashes) {
  lopass::Prng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  static const char* kTokens[] = {
      "func", "var",  "array", "if",    "else", "while", "for",  "return",
      "main", "x",    "y",     "0",     "1",    "42",    "(",    ")",
      "{",    "}",    "[",     "]",     ";",    ",",     "=",    "+",
      "-",    "*",    "/",     "%",     "<",    ">",     "==",   "!=",
      "<<",   ">>",   "&&",    "||",    "&",    "|",     "^",    "~",
      "!",    "min",  "max",   "abs"};
  std::string src;
  const int len = 5 + static_cast<int>(rng.next_below(60));
  for (int i = 0; i < len; ++i) {
    src += kTokens[rng.next_below(sizeof(kTokens) / sizeof(kTokens[0]))];
    src += ' ';
  }
  try {
    (void)Parse(src);
  } catch (const lopass::Error&) {
    // expected for most soups
  }
}

INSTANTIATE_TEST_SUITE_P(Soups, ParserFuzz, ::testing::Range(0, 200));

}  // namespace
}  // namespace lopass::dsl
