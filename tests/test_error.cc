#include "common/error.h"

#include <gtest/gtest.h>

namespace lopass {
namespace {

TEST(Error, CheckPassesOnTrue) {
  EXPECT_NO_THROW(LOPASS_CHECK(1 + 1 == 2, "arithmetic"));
}

TEST(Error, CheckThrowsWithExpressionAndDetail) {
  try {
    LOPASS_CHECK(false, "the detail text");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("the detail text"), std::string::npos);
    EXPECT_NE(what.find("test_error.cc"), std::string::npos);
  }
}

TEST(Error, ThrowCarriesMessageAndLocation) {
  try {
    LOPASS_THROW("user facing message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("user facing message"), std::string::npos);
  }
}

TEST(Error, IsARuntimeError) {
  EXPECT_THROW(LOPASS_THROW("x"), std::runtime_error);
}

}  // namespace
}  // namespace lopass
