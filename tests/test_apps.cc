#include "apps/app.h"

#include <map>

#include <gtest/gtest.h>

#include "dsl/lower.h"
#include "interp/interpreter.h"
#include "isa/codegen.h"
#include "iss/simulator.h"

namespace lopass::apps {
namespace {

class InterpTarget : public core::DataTarget {
 public:
  explicit InterpTarget(interp::Interpreter& it) : it_(it) {}
  void SetScalar(const std::string& n, std::int64_t v) override { it_.SetScalar(n, v); }
  void FillArray(const std::string& n, std::span<const std::int64_t> v) override {
    it_.FillArray(n, v);
  }

 private:
  interp::Interpreter& it_;
};

class SimTarget : public core::DataTarget {
 public:
  explicit SimTarget(iss::Simulator& s) : s_(s) {}
  void SetScalar(const std::string& n, std::int64_t v) override { s_.SetScalar(n, v); }
  void FillArray(const std::string& n, std::span<const std::int64_t> v) override {
    s_.FillArray(n, v);
  }

 private:
  iss::Simulator& s_;
};

TEST(Apps, RegistryHasTheSixPaperApplications) {
  const auto apps = AllApplications();
  ASSERT_EQ(apps.size(), 6u);
  EXPECT_EQ(apps[0].name, "3d");
  EXPECT_EQ(apps[1].name, "MPG");
  EXPECT_EQ(apps[2].name, "ckey");
  EXPECT_EQ(apps[3].name, "digs");
  EXPECT_EQ(apps[4].name, "engine");
  EXPECT_EQ(apps[5].name, "trick");
  EXPECT_THROW(GetApplication("unknown"), Error);
}

TEST(Apps, PaperReferenceNumbersRecorded) {
  for (const Application& app : AllApplications()) {
    EXPECT_LT(app.paper.saving_percent, -20.0) << app.name;
    EXPECT_GE(app.paper.saving_percent, -100.0) << app.name;
    EXPECT_NE(app.paper.time_change_percent, 0.0) << app.name;
  }
  // trick is the only one that slows down.
  EXPECT_GT(GetApplication("trick").paper.time_change_percent, 0.0);
}

// Every application must compile, verify, and agree between the two
// execution engines at a small scale.
class AppBehaviour : public ::testing::TestWithParam<std::string> {};

TEST_P(AppBehaviour, CompilesAndEnginesAgree) {
  const Application app = GetApplication(GetParam());
  const dsl::LoweredProgram p = dsl::Compile(app.dsl_source);
  const core::Workload w = app.workload(1);

  interp::Interpreter it(p.module);
  {
    InterpTarget t(it);
    w.setup(t);
  }
  const std::int64_t iv = it.Run(w.entry, w.args).return_value;

  const isa::SlProgram code = isa::Generate(p.module);
  iss::Simulator sim(p.module, code, iss::SystemConfig{});
  {
    SimTarget t(sim);
    w.setup(t);
  }
  const std::int64_t sv = sim.Run(w.entry, w.args).return_value;
  EXPECT_EQ(iv, sv) << app.name;
}

TEST_P(AppBehaviour, WorkloadScalesWork) {
  const Application app = GetApplication(GetParam());
  const dsl::LoweredProgram p = dsl::Compile(app.dsl_source);
  auto run = [&](int scale) {
    const core::Workload w = app.workload(scale);
    interp::Interpreter it(p.module);
    InterpTarget t(it);
    w.setup(t);
    return it.Run(w.entry, w.args).steps;
  };
  // Scale 2 must do more dynamic work than scale 1 (except where the
  // workload saturates, which none do at these scales).
  EXPECT_GT(run(2), run(1)) << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllSix, AppBehaviour,
                         ::testing::Values("3d", "MPG", "ckey", "digs", "engine",
                                           "trick"));


TEST(Apps, GoldenReturnValues) {
  // Regression guard: the applications' functional outputs at scale 1
  // are part of the reproduction (a silent behavioural change would
  // quietly shift every energy number). Values recorded from the
  // initial verified implementation.
  const std::map<std::string, std::int64_t> golden = [] {
    std::map<std::string, std::int64_t> m;
    for (const Application& app : AllApplications()) {
      const dsl::LoweredProgram p = dsl::Compile(app.dsl_source);
      const core::Workload w = app.workload(1);
      interp::Interpreter it(p.module);
      InterpTarget t(it);
      w.setup(t);
      m[app.name] = it.Run(w.entry, w.args).return_value;
    }
    return m;
  }();
  // The values must be stable run to run (deterministic workloads) and
  // non-trivial (a broken app typically returns 0).
  for (const auto& [name, v] : golden) {
    EXPECT_NE(v, 0) << name;
  }
  // And identical on a second evaluation.
  for (const Application& app : AllApplications()) {
    const dsl::LoweredProgram p = dsl::Compile(app.dsl_source);
    const core::Workload w = app.workload(1);
    interp::Interpreter it(p.module);
    InterpTarget t(it);
    w.setup(t);
    EXPECT_EQ(it.Run(w.entry, w.args).return_value, golden.at(app.name)) << app.name;
  }
}

TEST(Apps, RunApplicationProducesAPartitionAtSmallScale) {
  // The engine app at scale 1 is small enough for a test and still
  // selects its filter function cluster.
  const Application app = GetApplication("engine");
  const core::PartitionResult r = RunApplication(app, 1);
  EXPECT_TRUE(r.partitioned());
  EXPECT_EQ(r.initial_run.return_value, r.partitioned_run.return_value);
}

}  // namespace
}  // namespace lopass::apps
