#include "isa/isa.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "dsl/lower.h"
#include "isa/codegen.h"

namespace lopass::isa {
namespace {

TEST(Isa, InstructionClasses) {
  EXPECT_EQ(ClassOf(SlOp::kAdd), InstrClass::kAlu);
  EXPECT_EQ(ClassOf(SlOp::kSll), InstrClass::kShift);
  EXPECT_EQ(ClassOf(SlOp::kMul), InstrClass::kMul);
  EXPECT_EQ(ClassOf(SlOp::kDiv), InstrClass::kDiv);
  EXPECT_EQ(ClassOf(SlOp::kMod), InstrClass::kDiv);
  EXPECT_EQ(ClassOf(SlOp::kLd), InstrClass::kLoad);
  EXPECT_EQ(ClassOf(SlOp::kSt), InstrClass::kStore);
  EXPECT_EQ(ClassOf(SlOp::kBeqz), InstrClass::kBranch);
  EXPECT_EQ(ClassOf(SlOp::kJ), InstrClass::kJump);
  EXPECT_EQ(ClassOf(SlOp::kRet), InstrClass::kJump);
  EXPECT_EQ(ClassOf(SlOp::kCall), InstrClass::kCall);
  EXPECT_EQ(ClassOf(SlOp::kNop), InstrClass::kNop);
  EXPECT_EQ(ClassOf(SlOp::kLi), InstrClass::kAlu);
}

TEST(Isa, BaseCycles) {
  EXPECT_EQ(BaseCycles(SlOp::kAdd), 1u);
  EXPECT_EQ(BaseCycles(SlOp::kMul), 3u);
  EXPECT_EQ(BaseCycles(SlOp::kDiv), 8u);
  EXPECT_EQ(BaseCycles(SlOp::kJ), 2u);
  EXPECT_EQ(BaseCycles(SlOp::kCall), 2u);
}

TEST(Isa, FetchAddresses) {
  SlProgram p;
  p.code.resize(4);
  EXPECT_EQ(p.FetchAddress(0), p.code_base);
  EXPECT_EQ(p.FetchAddress(3), p.code_base + 12);
}

TEST(Codegen, ProducesLinkedProgram) {
  const dsl::LoweredProgram lp = dsl::Compile(R"(
    var g;
    func helper(a) { return a * 2; }
    func main() { g = helper(21); return g; })");
  const SlProgram prog = Generate(lp.module);
  ASSERT_EQ(prog.functions.size(), 2u);
  EXPECT_GT(prog.code.size(), 0u);
  // Every branch/call target is a valid instruction index.
  for (const SlInstr& in : prog.code) {
    if (in.op == SlOp::kBeqz || in.op == SlOp::kBnez || in.op == SlOp::kJ ||
        in.op == SlOp::kCall) {
      EXPECT_GE(in.target, 0);
      EXPECT_LT(static_cast<std::size_t>(in.target), prog.code.size());
    }
  }
  // Every instruction is attributed to a function block.
  for (const SlInstr& in : prog.code) {
    EXPECT_GE(in.fn, 0);
    EXPECT_NE(in.block, ir::kNoBlock);
  }
  // Function ranges cover the code exactly.
  std::size_t covered = 0;
  for (const FuncInfo& f : prog.functions) covered += f.end - f.entry;
  EXPECT_EQ(covered, prog.code.size());
}

TEST(Codegen, SpillsUnderRegisterPressure) {
  // A single expression with more live temporaries than the 18
  // allocatable registers forces spills to the function's spill area.
  // Right-nested so every level's left temporary stays live while the
  // right subtree evaluates: ~24 simultaneously live values.
  std::string expr = "(a + 24)";
  for (int i = 23; i >= 1; --i) {
    expr = "((a + " + std::to_string(i) + ") * " + expr + ")";
  }
  const dsl::LoweredProgram lp =
      dsl::Compile("func main(a) { return " + expr + "; }");
  const SlProgram prog = Generate(lp.module);
  EXPECT_GT(prog.functions[0].spill_words, 0u);
  EXPECT_GT(prog.data_size_bytes, lp.module.data_size_bytes());
}

TEST(Codegen, DisassemblyContainsFunctionNames) {
  const dsl::LoweredProgram lp = dsl::Compile("func main() { return 1 + 2; }");
  const SlProgram prog = Generate(lp.module);
  const std::string text = ToString(prog);
  EXPECT_NE(text.find("main"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(Codegen, FallThroughAvoidsRedundantJumps) {
  // An if-else where both arms fall to the join needs at most one J.
  const dsl::LoweredProgram lp = dsl::Compile(R"(
    func main(a) {
      var r;
      if (a > 0) { r = 1; } else { r = 2; }
      return r;
    })");
  const SlProgram prog = Generate(lp.module);
  int jumps = 0;
  for (const SlInstr& in : prog.code) {
    if (in.op == SlOp::kJ) ++jumps;
  }
  EXPECT_LE(jumps, 2);
}

TEST(Program, FunctionLookupThrowsOnUnknown) {
  SlProgram p;
  EXPECT_THROW(p.function(3), Error);
}

}  // namespace
}  // namespace lopass::isa
