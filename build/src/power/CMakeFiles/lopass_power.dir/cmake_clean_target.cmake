file(REMOVE_RECURSE
  "liblopass_power.a"
)
