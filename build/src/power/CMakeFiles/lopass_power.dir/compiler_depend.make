# Empty compiler generated dependencies file for lopass_power.
# This may be replaced when dependencies are built.
