file(REMOVE_RECURSE
  "CMakeFiles/lopass_power.dir/cache_energy.cc.o"
  "CMakeFiles/lopass_power.dir/cache_energy.cc.o.d"
  "CMakeFiles/lopass_power.dir/tech_library.cc.o"
  "CMakeFiles/lopass_power.dir/tech_library.cc.o.d"
  "liblopass_power.a"
  "liblopass_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
